file(REMOVE_RECURSE
  "CMakeFiles/ablation_reducers.dir/ablation_reducers.cc.o"
  "CMakeFiles/ablation_reducers.dir/ablation_reducers.cc.o.d"
  "ablation_reducers"
  "ablation_reducers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reducers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
