// Ablation: what does the static memory planner (src/analysis/liveness.h +
// memory_plan.h) buy at runtime? The app step graphs — an elementwise
// chain, the CG worker step, and the FFT worker step — run with memory
// planning on (arena execution) and off (per-output pool allocation):
//
//   - allocator traffic: allocations/step and pooled bytes/step from the
//     device allocator stats (the planner's whole point is collapsing N
//     per-output pool trips into one arena block);
//   - bounds: the compile-time static peak (Executable::static_peak_bytes)
//     against the measured per-step peak from the MemoryLimiter
//     (RunMetadata::step_peak_bytes);
//   - safety: fetched tensors must be bitwise identical between modes.
//
// The binary asserts (exit 1 on violation): plan-on strictly reduces
// allocator calls per step on at least one workload, fetches agree
// bitwise on every workload, and static peak >= measured peak on every
// workload where a plan exists (plan-off sessions skip planning, so
// only plan-on cells carry a bound). Results land in BENCH_memplan.json;
// ci.sh runs
// `ablation_memplan --smoke` as a gate.
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "apps/app_graphs.h"
#include "bench_util.h"
#include "graph/ops.h"
#include "runtime/session.h"

using namespace tfhpc;

namespace {

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Workload {
  std::string name;
  std::map<std::string, Tensor> feeds;
  std::vector<std::string> fetches;
  std::map<std::string, Tensor> setup_feeds;  // run once, before timing
  std::vector<std::string> setup_targets;
};

// Per-(workload, plan mode) measurements.
struct Cell {
  double us_per_step = 0;
  double allocs_per_step = 0;
  double pool_bytes_per_step = 0;
  int64_t static_peak_bytes = 0;   // compile-time bound (same plan both modes)
  int64_t measured_peak_bytes = 0; // max MemoryLimiter peak across steps
  int64_t arena_bytes = 0;
  int planned_nodes = 0;
  std::vector<Tensor> values;      // fetched tensors, for cross-mode identity
  bool ok = false;
};

Tensor RampF64(int64_t n, double scale) {
  std::vector<double> v(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    v[static_cast<size_t>(i)] = scale * (1.0 + 0.25 * static_cast<double>(i));
  }
  return Tensor::FromVector(std::move(v));
}

// A 10-stage elementwise chain over one fed vector: every intermediate is
// arena-eligible (overwriting producer, overwriting consumers, static
// shape), so this is the planner's best case.
Workload BuildChain(const Scope& s, int64_t n) {
  auto x = ops::Placeholder(s, DType::kF64, Shape{n}, "x");
  auto c2 = ops::Const(s, Tensor::Scalar(2.0), "c2");
  auto c3 = ops::Const(s, Tensor::Scalar(3.0), "c3");
  Output t = ops::Add(s, x, c2);
  t = ops::Mul(s, t, c3);
  t = ops::Sub(s, t, c2);
  t = ops::Mul(s, t, t);
  t = ops::Sqrt(s, t);
  t = ops::Add(s, t, c3);
  t = ops::Div(s, t, c2);
  t = ops::Mul(s, t, c2);
  t = ops::Sub(s, t, c3);
  t = ops::Add(s, t, x);
  Workload w;
  w.name = "chain10";
  w.feeds.emplace("x", RampF64(n, 1e-3));
  w.fetches = {t.name()};
  return w;
}

Workload BuildCg(const Scope& s, int64_t rows, int64_t n) {
  const apps::CgWorkerGraph g = apps::BuildCgWorkerGraph(s, rows, n);
  Workload w;
  w.name = "cg_worker";
  {
    std::vector<double> a(static_cast<size_t>(rows * n));
    for (size_t i = 0; i < a.size(); ++i) {
      a[i] = 1e-4 * (1.0 + 0.25 * static_cast<double>(i % 97));
    }
    w.setup_feeds.emplace(g.a_feed, Tensor::FromVector(Shape{rows, n}, a));
  }
  w.setup_targets = {g.a_init};
  w.feeds.emplace(g.p, RampF64(n, 1.0));
  w.feeds.emplace(g.u, RampF64(rows, 0.5));
  w.feeds.emplace(g.v, RampF64(rows, 0.25));
  w.feeds.emplace(g.alpha, Tensor::Scalar(0.125));
  w.feeds.emplace(g.ax, RampF64(n, 2.0));
  w.feeds.emplace(g.ay, RampF64(n, -1.0));
  w.fetches = {g.ap, g.dot, g.axpy};
  return w;
}

Workload BuildFft(const Scope& s, int64_t m) {
  const apps::FftWorkerGraph g = apps::BuildFftWorkerGraph(s, m);
  Tensor x(DType::kC128, Shape{m});
  auto* lanes = static_cast<std::complex<double>*>(x.raw_data());
  for (int64_t i = 0; i < m; ++i) {
    const double ph = 2.0 * 3.14159265358979323846 * static_cast<double>(i) /
                      static_cast<double>(m);
    lanes[i] = {std::cos(3 * ph), std::sin(5 * ph)};
  }
  Workload w;
  w.name = "fft_worker";
  w.feeds.emplace(g.x, std::move(x));
  w.fetches = {g.spectrum};
  return w;
}

Cell Measure(const std::function<Workload(const Scope&)>& build, bool plan,
             int steps) {
  Cell cell;
  LocalRuntime rt(/*num_gpus=*/0);
  Scope s = rt.root_scope();
  const Workload w = build(s);

  SessionOptions opts;
  opts.memory_planning = plan;
  auto session = rt.NewSession(opts);
  if (!w.setup_targets.empty()) {
    auto r = session->Run(w.setup_feeds, {}, w.setup_targets);
    if (!r.ok()) {
      std::fprintf(stderr, "%s: setup failed: %s\n", w.name.c_str(),
                   r.status().ToString().c_str());
      return cell;
    }
  }

  std::vector<std::string> feed_keys;
  for (const auto& [name, tensor] : w.feeds) feed_keys.push_back(name);
  auto exe = session->Prepare(feed_keys, w.fetches);
  if (!exe.ok()) {
    std::fprintf(stderr, "%s: compile failed: %s\n", w.name.c_str(),
                 exe.status().ToString().c_str());
    return cell;
  }
  cell.static_peak_bytes = (*exe)->static_peak_bytes();
  cell.arena_bytes = (*exe)->arena_bytes();
  cell.planned_nodes = (*exe)->num_planned_nodes();

  // Arm the step limiter (ceiling never binds) so every step reports its
  // true high-water mark through RunMetadata.
  RunOptions ropts;
  ropts.step_memory_limit_bytes = int64_t{1} << 40;

  // Warm run: populates the signature cache and yields the identity values.
  RunMetadata meta;
  auto warm = session->RunPrepared(**exe, w.feeds, ropts, &meta);
  if (!warm.ok()) {
    std::fprintf(stderr, "%s: step failed: %s\n", w.name.c_str(),
                 warm.status().ToString().c_str());
    return cell;
  }
  cell.values = *warm;
  cell.measured_peak_bytes = meta.step_peak_bytes;

  int64_t allocs0 = 0, pool0 = 0;
  for (const auto& d : rt.devices().devices()) {
    allocs0 += d->allocator_stats()->allocs();
    pool0 += d->allocator_stats()->pool_bytes();
  }
  const double start = NowUs();
  for (int i = 0; i < steps; ++i) {
    RunMetadata step_meta;
    auto r = session->RunPrepared(**exe, w.feeds, ropts, &step_meta);
    if (!r.ok()) {
      std::fprintf(stderr, "%s: step failed: %s\n", w.name.c_str(),
                   r.status().ToString().c_str());
      return cell;
    }
    if (step_meta.step_peak_bytes > cell.measured_peak_bytes) {
      cell.measured_peak_bytes = step_meta.step_peak_bytes;
    }
  }
  cell.us_per_step = (NowUs() - start) / steps;
  int64_t allocs1 = 0, pool1 = 0;
  for (const auto& d : rt.devices().devices()) {
    allocs1 += d->allocator_stats()->allocs();
    pool1 += d->allocator_stats()->pool_bytes();
  }
  cell.allocs_per_step = static_cast<double>(allocs1 - allocs0) / steps;
  cell.pool_bytes_per_step = static_cast<double>(pool1 - pool0) / steps;
  cell.ok = true;
  return cell;
}

bool BitIdentical(const std::vector<Tensor>& a, const std::vector<Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].BitwiseEquals(b[i])) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int steps = smoke ? 40 : 400;
  const int64_t chain_n = smoke ? 1024 : 65536;
  const int64_t cg_rows = smoke ? 32 : 256;
  const int64_t cg_n = smoke ? 128 : 1024;
  const int64_t fft_m = smoke ? 256 : 4096;

  bench::Header("Ablation — static memory planner",
                "compile-time liveness + arena execution vs per-output pool "
                "allocation on the app step graphs");
  bench::JsonResults json("memplan");
  json.Meta("mode", smoke ? "smoke" : "full")
      .Meta("steps", static_cast<double>(steps));

  struct Entry {
    std::string name;
    std::function<Workload(const Scope&)> build;
  };
  const std::vector<Entry> entries = {
      {"chain10", [&](const Scope& s) { return BuildChain(s, chain_n); }},
      {"cg_worker", [&](const Scope& s) { return BuildCg(s, cg_rows, cg_n); }},
      {"fft_worker", [&](const Scope& s) { return BuildFft(s, fft_m); }},
  };

  bool failed = false;
  bool any_alloc_reduction = false;
  std::printf("%-11s %-5s | %11s %9s %12s | %7s %12s %12s | %9s\n",
              "workload", "plan", "us/step", "allocs/st", "pool B/step",
              "planned", "static peak", "meas. peak", "identical");
  bench::Rule();
  for (const Entry& e : entries) {
    Cell off = Measure(e.build, /*plan=*/false, steps);
    Cell on = Measure(e.build, /*plan=*/true, steps);
    if (!off.ok || !on.ok) return 1;
    const bool identical = BitIdentical(off.values, on.values);
    for (const auto* c : {&off, &on}) {
      const bool is_on = c == &on;
      std::printf(
          "%-11s %-5s | %11.1f %9.1f %12.0f | %7d %12lld %12lld | %9s\n",
          e.name.c_str(), is_on ? "on" : "off", c->us_per_step,
          c->allocs_per_step, c->pool_bytes_per_step, c->planned_nodes,
          static_cast<long long>(c->static_peak_bytes),
          static_cast<long long>(c->measured_peak_bytes),
          is_on ? (identical ? "yes" : "NO") : "-");
      json.Record()
          .Str("workload", e.name)
          .Str("plan", is_on ? "on" : "off")
          .Num("us_per_step", c->us_per_step)
          .Num("allocs_per_step", c->allocs_per_step)
          .Num("pool_bytes_per_step", c->pool_bytes_per_step)
          .Num("planned_nodes", c->planned_nodes)
          .Num("arena_bytes", static_cast<double>(c->arena_bytes))
          .Num("static_peak_bytes", static_cast<double>(c->static_peak_bytes))
          .Num("measured_peak_bytes",
               static_cast<double>(c->measured_peak_bytes))
          .Num("bit_identical", identical ? 1 : 0);

      // Soundness gate: wherever a plan was computed (plan-off sessions
      // skip planning entirely, so their static peak reads 0), the
      // compile-time bound must dominate the measured high-water mark.
      if (c->static_peak_bytes > 0 &&
          c->static_peak_bytes < c->measured_peak_bytes) {
        std::fprintf(
            stderr, "FAIL: %s plan=%s static peak %lld < measured %lld\n",
            e.name.c_str(), is_on ? "on" : "off",
            static_cast<long long>(c->static_peak_bytes),
            static_cast<long long>(c->measured_peak_bytes));
        failed = true;
      }
    }
    // Safety gate: arena execution must not perturb a single bit.
    if (!identical) {
      std::fprintf(stderr, "FAIL: %s fetches differ between plan modes\n",
                   e.name.c_str());
      failed = true;
    }
    if (on.planned_nodes > 0 && on.allocs_per_step < off.allocs_per_step) {
      any_alloc_reduction = true;
    }
    bench::Rule();
  }

  // Coverage gate: the planner must pay for itself somewhere — fewer
  // allocator calls per step on at least one app graph.
  if (!any_alloc_reduction) {
    std::fprintf(stderr,
                 "FAIL: no workload reduced allocator calls with planning on\n");
    failed = true;
  }

  json.WriteFile("BENCH_memplan.json");
  if (failed) return 1;
  std::printf(
      "memplan ablation: fetches bit-identical, static peak bounds hold\n");
  return 0;
}
