#include "optimizer/fused_spec.h"

namespace tfhpc::optimizer {
namespace {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (;;) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

int ExpectedArity(const std::string& op) {
  if (op == "Add" || op == "Sub" || op == "Mul" || op == "Div") return 2;
  if (op == "Axpy") return 3;
  if (op == "Sqrt" || op == "Neg" || op == "Cast") return 1;
  if (op == "Dot") return 2;
  if (op == "ReduceSum") return 1;
  return -1;
}

}  // namespace

bool IsFusedReduction(const std::string& op) {
  return op == "Dot" || op == "ReduceSum";
}

Result<std::vector<FusedStage>> ParseFusedStages(const wire::NodeDef& def,
                                                 int num_inputs) {
  auto attr_str = [&](const std::string& name) -> Result<std::string> {
    auto it = def.attrs.find(name);
    if (it == def.attrs.end() ||
        it->second.kind != wire::AttrValue::Kind::kString) {
      return InvalidArgument("FusedElementwise node '" + def.name +
                             "' missing string attr '" + name + "'");
    }
    return it->second.s;
  };
  TFHPC_ASSIGN_OR_RETURN(std::string ops, attr_str("ops"));
  TFHPC_ASSIGN_OR_RETURN(std::string args, attr_str("args"));

  const std::vector<std::string> op_list = Split(ops, ';');
  const std::vector<std::string> arg_list = Split(args, ';');
  if (op_list.empty() || op_list.size() != arg_list.size()) {
    return InvalidArgument("FusedElementwise node '" + def.name + "' has " +
                           std::to_string(op_list.size()) + " ops but " +
                           std::to_string(arg_list.size()) + " arg groups");
  }

  std::vector<FusedStage> stages;
  stages.reserve(op_list.size());
  for (size_t k = 0; k < op_list.size(); ++k) {
    FusedStage stage;
    stage.op = op_list[k];
    const int arity = ExpectedArity(stage.op);
    if (arity < 0) {
      return InvalidArgument("FusedElementwise node '" + def.name +
                             "' stage " + std::to_string(k) +
                             " has non-fusable op '" + stage.op + "'");
    }
    int prev_uses = 0;
    for (const std::string& ref : Split(arg_list[k], ',')) {
      if (ref == "p") {
        stage.operands.push_back(FusedStage::kPrev);
        prev_uses++;
        continue;
      }
      if (ref.size() < 2 || ref[0] != 'i') {
        return InvalidArgument("FusedElementwise node '" + def.name +
                               "' stage " + std::to_string(k) +
                               " has malformed operand ref '" + ref + "'");
      }
      int idx = 0;
      for (size_t c = 1; c < ref.size(); ++c) {
        if (ref[c] < '0' || ref[c] > '9') {
          return InvalidArgument("FusedElementwise node '" + def.name +
                                 "' stage " + std::to_string(k) +
                                 " has malformed operand ref '" + ref + "'");
        }
        idx = idx * 10 + (ref[c] - '0');
      }
      if (idx >= num_inputs) {
        return InvalidArgument("FusedElementwise node '" + def.name +
                               "' stage " + std::to_string(k) + " ref '" +
                               ref + "' exceeds " +
                               std::to_string(num_inputs) + " data inputs");
      }
      stage.operands.push_back(idx);
    }
    if (static_cast<int>(stage.operands.size()) != arity) {
      return InvalidArgument(
          "FusedElementwise node '" + def.name + "' stage " +
          std::to_string(k) + " op " + stage.op + " expects " +
          std::to_string(arity) + " operands, got " +
          std::to_string(stage.operands.size()));
    }
    if (k == 0 && prev_uses > 0) {
      return InvalidArgument("FusedElementwise node '" + def.name +
                             "' stage 0 references the previous result");
    }
    if (k > 0 && prev_uses == 0) {
      return InvalidArgument("FusedElementwise node '" + def.name +
                             "' stage " + std::to_string(k) +
                             " never consumes the previous result");
    }
    if (IsFusedReduction(stage.op) &&
        (k + 1 != op_list.size() || k == 0)) {
      return InvalidArgument("FusedElementwise node '" + def.name + "' " +
                             stage.op + " stage " + std::to_string(k) +
                             " must be the final stage of a 2+ stage chain");
    }
    if (stage.op == "Cast") {
      const std::string attr = "to_" + std::to_string(k);
      auto it = def.attrs.find(attr);
      if (it == def.attrs.end() ||
          it->second.kind != wire::AttrValue::Kind::kType) {
        return InvalidArgument("FusedElementwise node '" + def.name +
                               "' Cast stage " + std::to_string(k) +
                               " missing Type attr '" + attr + "'");
      }
      stage.cast_to = it->second.type;
    }
    stages.push_back(std::move(stage));
  }
  return stages;
}

}  // namespace tfhpc::optimizer
