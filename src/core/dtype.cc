#include "core/dtype.h"

#include "core/logging.h"

namespace tfhpc {

size_t DTypeSize(DType dtype) {
  switch (dtype) {
    case DType::kInvalid: return 0;
    case DType::kF32: return 4;
    case DType::kF64: return 8;
    case DType::kC64: return 8;
    case DType::kC128: return 16;
    case DType::kI32: return 4;
    case DType::kI64: return 8;
    case DType::kU8: return 1;
    case DType::kBool: return 1;
  }
  TFHPC_CHECK(false) << "bad dtype";
  return 0;
}

const char* DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kInvalid: return "invalid";
    case DType::kF32: return "float32";
    case DType::kF64: return "float64";
    case DType::kC64: return "complex64";
    case DType::kC128: return "complex128";
    case DType::kI32: return "int32";
    case DType::kI64: return "int64";
    case DType::kU8: return "uint8";
    case DType::kBool: return "bool";
  }
  return "invalid";
}

DType DTypeFromName(const std::string& name) {
  for (DType d : {DType::kF32, DType::kF64, DType::kC64, DType::kC128,
                  DType::kI32, DType::kI64, DType::kU8, DType::kBool}) {
    if (name == DTypeName(d)) return d;
  }
  return DType::kInvalid;
}

bool IsFloating(DType dtype) {
  return dtype == DType::kF32 || dtype == DType::kF64 || IsComplex(dtype);
}

bool IsComplex(DType dtype) {
  return dtype == DType::kC64 || dtype == DType::kC128;
}

bool IsKnownDType(uint64_t raw) {
  return raw >= static_cast<uint64_t>(DType::kF32) &&
         raw <= static_cast<uint64_t>(DType::kBool);
}

}  // namespace tfhpc
