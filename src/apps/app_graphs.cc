#include "apps/app_graphs.h"

namespace tfhpc::apps {

StreamGraph BuildStreamPushGraph(const Scope& scope, int64_t elements) {
  StreamGraph g;
  auto acc =
      ops::Variable(scope, "acc", DType::kF64, Shape{elements});
  auto src =
      ops::Placeholder(scope, DType::kF64, Shape{elements}, "src");
  auto init = ops::Assign(scope, acc, src);
  auto add = ops::AssignAdd(scope, acc, src);
  g.acc = acc.node->name();
  g.src = src.node->name();
  g.init = init.node->name();
  g.add = add.node->name();
  return g;
}

TiledMatmulGraph BuildTiledMatmulGraph(const Scope& scope, int64_t tile) {
  TiledMatmulGraph g;
  auto pa = ops::Placeholder(scope, DType::kF32, Shape{tile, tile}, "a");
  auto pb = ops::Placeholder(scope, DType::kF32, Shape{tile, tile}, "b");
  auto pc = ops::MatMul(scope, pa, pb);
  g.a = pa.node->name();
  g.b = pb.node->name();
  g.product = pc.name();
  return g;
}

CgWorkerGraph BuildCgWorkerGraph(const Scope& scope, int64_t rows,
                                 int64_t n) {
  CgWorkerGraph g;
  auto a_var = ops::Variable(scope, "A_block", DType::kF64, Shape{rows, n});
  auto a_feed = ops::Placeholder(scope, DType::kF64, Shape{rows, n}, "a_feed");
  auto a_init = ops::Assign(scope, a_var, a_feed);
  auto p_ph = ops::Placeholder(scope, DType::kF64, Shape{n}, "p");
  auto ap = ops::MatVec(scope, a_var, p_ph);
  auto u_ph = ops::Placeholder(scope, DType::kF64, Shape{rows}, "u");
  auto v_ph = ops::Placeholder(scope, DType::kF64, Shape{rows}, "v");
  auto dot = ops::Dot(scope, u_ph, v_ph);
  auto alpha_ph = ops::Placeholder(scope, DType::kF64, Shape{}, "alpha");
  auto ax_ph = ops::Placeholder(scope, DType::kF64, Shape{n}, "ax");
  auto ay_ph = ops::Placeholder(scope, DType::kF64, Shape{n}, "ay");
  auto axpy = ops::Axpy(scope, alpha_ph, ax_ph, ay_ph);
  g.a_var = a_var.node->name();
  g.a_feed = a_feed.node->name();
  g.a_init = a_init.node->name();
  g.p = p_ph.node->name();
  g.ap = ap.name();
  g.u = u_ph.node->name();
  g.v = v_ph.node->name();
  g.dot = dot.name();
  g.alpha = alpha_ph.node->name();
  g.ax = ax_ph.node->name();
  g.ay = ay_ph.node->name();
  g.axpy = axpy.name();
  return g;
}

FftWorkerGraph BuildFftWorkerGraph(const Scope& scope, int64_t m) {
  FftWorkerGraph g;
  auto x_ph = ops::Placeholder(scope, DType::kC128, Shape{m}, "x");
  auto spectrum = ops::Fft(scope, x_ph);
  g.x = x_ph.node->name();
  g.spectrum = spectrum.name();
  return g;
}

}  // namespace tfhpc::apps
