// Microbenchmarks of the compute substrate: GEMM, GEMV, FFT, RNG fills,
// the pooled allocator. google-benchmark; real execution, wall-clock.
// Custom main mirrors the console run into BENCH_microkernels.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/buffer.h"
#include "core/rng.h"
#include "kernels/fft_impl.h"
#include "kernels/gemm.h"
#include "kernels/reduction.h"

namespace tfhpc {
namespace {

void BM_GemmF32(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<float> a(static_cast<size_t>(n * n), 1.0f);
  std::vector<float> b(static_cast<size_t>(n * n), 2.0f);
  std::vector<float> c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    blas::Gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_GemmF32)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmF64(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<double> a(static_cast<size_t>(n * n), 1.0);
  std::vector<double> b(static_cast<size_t>(n * n), 2.0);
  std::vector<double> c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    blas::Gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_GemmF64)->Arg(64)->Arg(256);

void BM_GemvF64(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<double> a(static_cast<size_t>(n * n), 1.0);
  std::vector<double> x(static_cast<size_t>(n), 1.0);
  std::vector<double> y(static_cast<size_t>(n));
  for (auto _ : state) {
    blas::Gemv(a.data(), x.data(), y.data(), n, n);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_GemvF64)->Arg(256)->Arg(1024);

void BM_DotF64(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<double> a(static_cast<size_t>(n), 1.5);
  std::vector<double> b(static_cast<size_t>(n), -0.5);
  for (auto _ : state) {
    double d = blas::ParallelDot(a.data(), b.data(), n);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(state.iterations() * n * 2 *
                          static_cast<int64_t>(sizeof(double)));
}
BENCHMARK(BM_DotF64)->Arg(1 << 12)->Arg(1 << 20)->Arg(1 << 24);

void BM_DotF32(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<float> a(static_cast<size_t>(n), 1.5f);
  std::vector<float> b(static_cast<size_t>(n), -0.5f);
  for (auto _ : state) {
    double d = blas::ParallelDot(a.data(), b.data(), n);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(state.iterations() * n * 2 *
                          static_cast<int64_t>(sizeof(float)));
}
BENCHMARK(BM_DotF32)->Arg(1 << 12)->Arg(1 << 20)->Arg(1 << 24);

void BM_ReduceSumF64(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<double> x(static_cast<size_t>(n), 0.25);
  for (auto _ : state) {
    double s = blas::ParallelSum(x.data(), n);
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(state.iterations() * n *
                          static_cast<int64_t>(sizeof(double)));
}
BENCHMARK(BM_ReduceSumF64)->Arg(1 << 12)->Arg(1 << 20)->Arg(1 << 24);

void BM_ReduceSumF32(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<float> x(static_cast<size_t>(n), 0.25f);
  for (auto _ : state) {
    double s = blas::ParallelSum(x.data(), n);
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(state.iterations() * n *
                          static_cast<int64_t>(sizeof(float)));
}
BENCHMARK(BM_ReduceSumF32)->Arg(1 << 12)->Arg(1 << 20)->Arg(1 << 24);

void BM_FftRadix2(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::complex<double>> sig(n, {1.0, -1.0});
  for (auto _ : state) {
    auto out = fft::Forward(sig);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["GFlops"] = benchmark::Counter(
      5.0 * static_cast<double>(n) * std::log2(static_cast<double>(n)) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_FftRadix2)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_FftBluestein(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::complex<double>> sig(n, {1.0, -1.0});
  for (auto _ : state) {
    auto out = fft::Forward(sig);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FftBluestein)->Arg(1000)->Arg(10007);

void BM_CooleyTukeyMerge(benchmark::State& state) {
  const size_t s = static_cast<size_t>(state.range(0));
  const size_t m = 1 << 12;
  std::vector<std::vector<std::complex<double>>> sub(
      s, std::vector<std::complex<double>>(m, {0.5, 0.5}));
  for (auto _ : state) {
    auto out = fft::CooleyTukeyMerge(sub);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CooleyTukeyMerge)->Arg(4)->Arg(16)->Arg(64);

void BM_PhiloxFill(benchmark::State& state) {
  Tensor t(DType::kF32, Shape{state.range(0)});
  uint64_t seed = 0;
  for (auto _ : state) {
    FillUniform(t, seed++);
    benchmark::DoNotOptimize(t.raw_data());
  }
  state.SetBytesProcessed(state.iterations() * t.bytes());
}
BENCHMARK(BM_PhiloxFill)->Arg(1 << 12)->Arg(1 << 20);

void BM_SpdMatrix(benchmark::State& state) {
  const int64_t n = state.range(0);
  uint64_t seed = 0;
  for (auto _ : state) {
    Tensor t = RandomSpdMatrix(n, seed++);
    benchmark::DoNotOptimize(t.raw_data());
  }
}
BENCHMARK(BM_SpdMatrix)->Arg(128)->Arg(512);

// Pooled allocator: steady-state Allocate/free recycles one size class, so
// the pool-hit path (free-list pop, no memset) is what's measured; the
// ZeroInit::kYes variant adds back the memset for comparison.
void BM_PooledAlloc(benchmark::State& state) {
  const size_t bytes = static_cast<size_t>(state.range(0));
  const ZeroInit zero = state.range(1) != 0 ? ZeroInit::kYes : ZeroInit::kNo;
  for (auto _ : state) {
    auto buf = Buffer::Allocate(bytes, nullptr, zero);
    benchmark::DoNotOptimize(buf->data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bytes));
  state.counters["pool_hit_rate"] = static_cast<double>(
      BufferPool::Global().total_hits()) /
      static_cast<double>(std::max<int64_t>(
          1, BufferPool::Global().total_acquires()));
}
BENCHMARK(BM_PooledAlloc)
    ->Args({4 << 10, 0})
    ->Args({4 << 10, 1})
    ->Args({4 << 20, 0})
    ->Args({4 << 20, 1});

}  // namespace
}  // namespace tfhpc

// Custom main: identical console output to benchmark_main, plus a JSON
// mirror (injected --benchmark_out, overridable on the command line) for
// diffing runs without re-parsing text tables.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_microkernels.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!has_out) std::printf("results -> BENCH_microkernels.json\n");
  return 0;
}
