// Randomized property tests over subsystem invariants: executor vs a
// reference evaluator on random DAGs, flow-network work conservation,
// nodelist grammar round trips, and algebraic kernel identities.
#include <gtest/gtest.h>

#include <random>

#include "cluster/slurm.h"
#include "core/rng.h"
#include "graph/ops.h"
#include "kernels/gemm.h"
#include "runtime/optimize.h"
#include "runtime/session.h"
#include "sim/network.h"

namespace tfhpc {
namespace {

// ---- Random scalar DAGs: session result == reference interpreter ----------------

class RandomDagTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagTest, SessionMatchesReferenceEvaluator) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()));
  std::uniform_real_distribution<double> val(-2, 2);
  std::uniform_int_distribution<int> op_pick(0, 2);

  Graph g;
  Scope s(&g);
  std::vector<Output> nodes;
  std::vector<double> reference;

  // Leaves.
  for (int i = 0; i < 4; ++i) {
    const double v = val(rng);
    nodes.push_back(ops::Const(s, Tensor::Scalar(v)));
    reference.push_back(v);
  }
  // Interior ops drawing random operands from anything built so far.
  for (int i = 0; i < 24; ++i) {
    std::uniform_int_distribution<size_t> operand(0, nodes.size() - 1);
    const size_t a = operand(rng);
    const size_t b = operand(rng);
    switch (op_pick(rng)) {
      case 0:
        nodes.push_back(ops::Add(s, nodes[a], nodes[b]));
        reference.push_back(reference[a] + reference[b]);
        break;
      case 1:
        nodes.push_back(ops::Mul(s, nodes[a], nodes[b]));
        reference.push_back(reference[a] * reference[b]);
        break;
      default:
        nodes.push_back(ops::Sub(s, nodes[a], nodes[b]));
        reference.push_back(reference[a] - reference[b]);
        break;
    }
  }

  LocalRuntime rt(1);
  for (const auto& nd : g.ToGraphDef().nodes) {
    ASSERT_TRUE(rt.graph().AddNode(nd).ok());
  }
  std::vector<std::string> fetches;
  for (const auto& n : nodes) fetches.push_back(n.name());
  auto r = rt.NewSession()->Run({}, fetches);
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_NEAR((*r)[i].scalar<double>(), reference[i],
                1e-9 * std::max(1.0, std::abs(reference[i])))
        << "node " << i;
  }

  // Property extension: the optimized graph evaluates identically.
  auto opt = OptimizeGraphDef(g.ToGraphDef(), {fetches.back()});
  ASSERT_TRUE(opt.ok());
  LocalRuntime rt2(0);
  for (const auto& nd : opt->nodes) ASSERT_TRUE(rt2.graph().AddNode(nd).ok());
  auto r2 = rt2.NewSession()->Run({}, {fetches.back()});
  ASSERT_TRUE(r2.ok());
  EXPECT_NEAR((*r2)[0].scalar<double>(), reference.back(),
              1e-9 * std::max(1.0, std::abs(reference.back())));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagTest, ::testing::Range(1, 11));

// ---- Flow network: work conservation --------------------------------------------

class FlowConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(FlowConservationTest, SingleLinkIsWorkConserving) {
  // Whatever the arrival pattern, a single link at capacity C finishing
  // total B bytes with no idle gaps completes at exactly B / C.
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()));
  std::uniform_int_distribution<int64_t> size(1 << 10, 1 << 24);
  sim::Simulation sim;
  sim::FlowNetwork net(&sim);
  const double cap = 1e9;
  sim::LinkId l = net.AddLink("wire", cap);
  int64_t total = 0;
  double last_finish = 0;
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    const int64_t bytes = size(rng);
    total += bytes;
    net.StartFlow({l}, bytes, [&] { last_finish = sim.now(); });
  }
  sim.Run();
  EXPECT_NEAR(last_finish, static_cast<double>(total) / cap,
              1e-6 * last_finish);
}

TEST_P(FlowConservationTest, MakespanBoundedByBusiestLink) {
  // Random flows over random 2-link paths: makespan >= max_l (bytes through
  // l / capacity_l), and every flow finishes.
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 77 + 5);
  sim::Simulation sim;
  sim::FlowNetwork net(&sim);
  std::vector<sim::LinkId> links;
  std::vector<double> caps;
  std::uniform_real_distribution<double> cap(0.5e9, 4e9);
  for (int i = 0; i < 5; ++i) {
    caps.push_back(cap(rng));
    links.push_back(net.AddLink("l" + std::to_string(i), caps.back()));
  }
  std::vector<double> through(links.size(), 0);
  std::uniform_int_distribution<size_t> pick(0, links.size() - 1);
  std::uniform_int_distribution<int64_t> size(1 << 16, 1 << 24);
  int finished = 0;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    size_t a = pick(rng), b = pick(rng);
    if (a == b) b = (b + 1) % links.size();
    const int64_t bytes = size(rng);
    through[a] += static_cast<double>(bytes);
    through[b] += static_cast<double>(bytes);
    net.StartFlow({links[a], links[b]}, bytes, [&] { ++finished; });
  }
  sim.Run();
  EXPECT_EQ(finished, n);
  double lower_bound = 0;
  for (size_t i = 0; i < links.size(); ++i) {
    lower_bound = std::max(lower_bound, through[i] / caps[i]);
  }
  EXPECT_GE(sim.now() + 1e-9, lower_bound);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowConservationTest, ::testing::Range(1, 9));

// ---- Slurm nodelist grammar round trips --------------------------------------------

class NodeListFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(NodeListFuzzTest, GeneratedListsExpandToExpectedHosts) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 131);
  std::uniform_int_distribution<int> num_items(1, 4);
  std::uniform_int_distribution<int> lo_pick(0, 30);
  std::uniform_int_distribution<int> len_pick(1, 5);
  std::uniform_int_distribution<int> width_pick(1, 3);
  std::uniform_int_distribution<int> style(0, 2);

  std::string list;
  std::vector<std::string> expected;
  const int items = num_items(rng);
  for (int i = 0; i < items; ++i) {
    if (i) list += ",";
    const std::string prefix = "n" + std::to_string(i) + "x";
    const int kind = style(rng);
    if (kind == 0) {
      list += prefix;
      expected.push_back(prefix);
      continue;
    }
    const int lo = lo_pick(rng);
    const int len = len_pick(rng);
    const int width = width_pick(rng);
    auto pad = [&](int v) {
      std::string s = std::to_string(v);
      while (static_cast<int>(s.size()) < width) s.insert(0, 1, '0');
      return s;
    };
    if (kind == 1) {
      list += prefix + "[" + pad(lo) + "-" + pad(lo + len - 1) + "]";
    } else {
      list += prefix + "[";
      for (int k = 0; k < len; ++k) {
        if (k) list += ",";
        list += pad(lo + k);
      }
      list += "]";
    }
    for (int k = 0; k < len; ++k) expected.push_back(prefix + pad(lo + k));
  }

  auto hosts = cluster::ExpandNodeList(list);
  ASSERT_TRUE(hosts.ok()) << list;
  EXPECT_EQ(*hosts, expected) << list;
}

TEST_P(NodeListFuzzTest, GarbageNeverCrashes) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 977 + 13);
  const char alphabet[] = "abc019[],-";
  std::uniform_int_distribution<size_t> len(0, 20);
  std::uniform_int_distribution<size_t> pick(0, sizeof(alphabet) - 2);
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    const size_t n = len(rng);
    for (size_t i = 0; i < n; ++i) input.push_back(alphabet[pick(rng)]);
    // Must return either hosts or an error — never crash or hang.
    auto r = cluster::ExpandNodeList(input);
    (void)r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NodeListFuzzTest, ::testing::Range(1, 6));

// ---- Kernel algebra ----------------------------------------------------------------

class GemmAlgebraTest : public ::testing::TestWithParam<int> {};

TEST_P(GemmAlgebraTest, AssociativityHolds) {
  // (A B) C == A (B C) within f64 round-off.
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 31);
  std::uniform_int_distribution<int64_t> dim(1, 24);
  const int64_t m = dim(rng), k = dim(rng), l = dim(rng), n = dim(rng);
  auto make = [&](int64_t r, int64_t c, uint64_t seed) {
    Tensor t(DType::kF64, Shape{r, c});
    FillUniform(t, seed, -1, 1);
    return t;
  };
  Tensor a = make(m, k, 1), b = make(k, l, 2), c = make(l, n, 3);
  std::vector<double> ab(static_cast<size_t>(m * l)), abc1(static_cast<size_t>(m * n));
  std::vector<double> bc(static_cast<size_t>(k * n)), abc2(static_cast<size_t>(m * n));
  blas::Gemm(a.data<double>().data(), b.data<double>().data(), ab.data(), m, l, k);
  blas::Gemm(ab.data(), c.data<double>().data(), abc1.data(), m, n, l);
  blas::Gemm(b.data<double>().data(), c.data<double>().data(), bc.data(), k, n, l);
  blas::Gemm(a.data<double>().data(), bc.data(), abc2.data(), m, n, k);
  for (size_t i = 0; i < abc1.size(); ++i) {
    EXPECT_NEAR(abc1[i], abc2[i], 1e-10 * static_cast<double>(k * l));
  }
}

TEST_P(GemmAlgebraTest, TransposeIdentityHolds) {
  // (A B)^T == B^T A^T, computed through session ops end to end.
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 97 + 7);
  std::uniform_int_distribution<int64_t> dim(1, 16);
  const int64_t m = dim(rng), k = dim(rng), n = dim(rng);
  Tensor a(DType::kF64, Shape{m, k});
  Tensor b(DType::kF64, Shape{k, n});
  FillUniform(a, 11, -1, 1);
  FillUniform(b, 12, -1, 1);

  LocalRuntime rt(1);
  Scope s = rt.root_scope();
  auto ca = ops::Const(s, a);
  auto cb = ops::Const(s, b);
  auto lhs = ops::Transpose(s, ops::MatMul(s, ca, cb));
  auto rhs = ops::MatMul(s, ops::Transpose(s, cb), ops::Transpose(s, ca));
  auto r = rt.NewSession()->Run({}, {lhs.name(), rhs.name()});
  ASSERT_TRUE(r.ok());
  const auto x = (*r)[0].data<double>();
  const auto y = (*r)[1].data<double>();
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], y[i], 1e-10 * static_cast<double>(k));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GemmAlgebraTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace tfhpc
