# Empty dependencies file for ablation_stepoverhead.
# This may be replaced when dependencies are built.
