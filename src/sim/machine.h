// Machine models of the paper's two platforms (§V, Table I, Fig. 9) and the
// ClusterModel façade the application drivers use to emit timed traces.
//
// A ClusterModel instantiates per-node links (GPU PCIe, per-card shared PCIe
// switch, QPI between NUMA islands, InfiniBand NIC, Ethernet, host-memory
// staging, a serialization "link" modelling CPU-bound protobuf work, and a
// Lustre disk link), places GPUs on nodes exactly as the paper does
// (instances-per-node per Table I), and translates application-level events
// — GPU kernels, host work, protocol transfers, tile loads — into SimOps.
//
// Link bandwidths are *effective* calibrated values (what verbs/MPI achieve,
// not datasheet numbers); the calibration targets are the measured medians
// in the paper's Fig. 7 and the scaling factors of Figs. 8/10/11, recorded
// in EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

#include "runtime/device.h"
#include "sim/trace.h"

namespace tfhpc::sim {

enum class Protocol { kGrpc, kMpi, kRdma };
const char* ProtocolName(Protocol p);

enum class GpuKind { kK420, kK80, kV100 };
const char* GpuKindName(GpuKind k);

struct MachineConfig {
  std::string name;      // "Tegner" | "Kebnekaise"
  GpuKind gpu_kind = GpuKind::kK80;
  int gpus_per_node = 1;          // TF instances per node (Table I)
  int islands_per_node = 2;       // NUMA islands
  // Which island each local GPU sits on, and whether engine pairs share a
  // per-card PCIe switch link (K80 cards hold two GK210 engines).
  bool paired_engines = false;

  // Effective bandwidths, bytes/second.
  double pcie_bps = 0;        // per-GPU PCIe
  double card_bps = 0;        // per-card shared link (0 = none)
  double qpi_bps = 0;         // inter-island interconnect
  double nic_bps = 0;         // InfiniBand per node
  double eth_bps = 0;         // Ethernet per node
  double hostmem_bps = 0;     // host staging-copy bandwidth
  double serialize_bps = 0;   // MPI tensor serialization rate (CPU-bound)
  double grpc_serialize_bps = 0;  // protobuf+framing rate for gRPC
  double disk_bps = 0;        // Lustre read bandwidth per node
  bool grpc_over_ethernet = false;  // Tegner: gRPC resolves to the eth iface
  double rpc_latency_s = 30e-6;     // per-message overhead
  double grpc_latency_s = 120e-6;
  // Client-side cost of dispatching one session step / queue op: Python
  // dispatch, GIL, RPC setup, executor startup. Dominates latency-bound
  // phases (CG's scalar reductions) and throttles small transfers.
  double step_overhead_s = 1e-3;
  // Rate at which a single Python consumer (reducer/merger task) can drain
  // its queue into host arrays — the paper's §VIII "Python's relatively low
  // performance" bottleneck; one link per consumer task. Store-only
  // consumers (the FFT merger) run at this default; consumers doing per-
  // element work override it (the matmul reducers' decode + accumulate).
  double ingest_bps = 2.8e9;

  ComputeModel gpu_model;
  ComputeModel cpu_model;

  // Fig. 9: the NIC and I/O hang off island 0 only.
  int nic_island = 0;
  // Ablation switch: false multiplies shared links by the per-node instance
  // count, i.e. removes all intra-node contention.
  bool contention = true;
};

// The paper's platforms. Tegner supports K420 (1 instance/node) and K80
// (2 instances/node); Kebnekaise supports K80 (4/node) and V100 (2/node).
MachineConfig TegnerConfig(GpuKind kind);
MachineConfig KebnekaiseConfig(GpuKind kind);

// A physical location: a node plus either a GPU (gpu >= 0) or the host CPU.
struct Loc {
  int node = 0;
  int gpu = -1;  // local GPU index on that node; -1 = host
  bool is_host() const { return gpu < 0; }
};

class ClusterModel {
 public:
  // Builds enough nodes to host `num_gpus` at cfg.gpus_per_node each
  // (+`extra_host_nodes` GPU-less nodes for parameter servers/reducers, as
  // the paper's STREAM places PS and worker on distinct nodes).
  ClusterModel(MachineConfig cfg, int num_gpus, int extra_host_nodes = 0);

  const MachineConfig& config() const { return cfg_; }
  int num_nodes() const { return num_nodes_; }
  int num_gpus() const { return num_gpus_; }

  // Global GPU rank -> location (ranks fill nodes in order).
  Loc GpuLoc(int rank) const;
  Loc HostLoc(int node) const { return Loc{node, -1}; }
  int IslandOf(const Loc& loc) const;

  // --- trace building -------------------------------------------------------
  // GPU kernel: roofline-timed, serialized per GPU.
  OpId GpuCompute(int rank, double flops, int64_t bytes, bool fp64,
                  std::vector<OpId> deps, std::string label = "");
  // Host work on a numbered lane (distinct lanes run concurrently; host
  // memory contention is modelled by the hostmem link for copies, not here).
  OpId HostCompute(int node, int lane, double flops, int64_t bytes,
                   std::vector<OpId> deps, std::string label = "");
  // Protocol transfer between two locations. RDMA is one cut-through flow;
  // MPI/gRPC are staged: D2H copy, serialize, wire, deserialize, H2D.
  // Returns the id of the final stage.
  OpId Transfer(const Loc& from, const Loc& to, int64_t bytes, Protocol proto,
                std::vector<OpId> deps, std::string label = "");
  // Lustre tile read into host memory of `node`.
  OpId DiskRead(int node, int64_t bytes, std::vector<OpId> deps,
                std::string label = "");
  // Queue-drain by the single consumer task on (node, lane): tiles pass a
  // per-consumer ingest link. `bps` overrides cfg.ingest_bps (0 = default);
  // consumers that post-process each element (decode + accumulate) are
  // slower than ones that only store. The first call for a (node, lane)
  // fixes that consumer's rate.
  OpId HostIngest(int node, int lane, int64_t bytes, std::vector<OpId> deps,
                  std::string label = "", double bps = 0);
  // Fixed host-side delay (client/Python overheads).
  OpId Delay(double seconds, std::vector<OpId> deps, std::string label = "");
  // Convenience: one client step-dispatch overhead.
  OpId StepOverhead(std::vector<OpId> deps, std::string label = "step") {
    return Delay(cfg_.step_overhead_s, std::move(deps), std::move(label));
  }

  // Timing helpers exposed for app-side sizing decisions.
  double GpuSeconds(double flops, int64_t bytes, bool fp64) const {
    return cfg_.gpu_model.EstimateSeconds(flops, bytes, fp64);
  }
  double HostSeconds(double flops, int64_t bytes) const {
    return cfg_.cpu_model.EstimateSeconds(flops, bytes, true);
  }

  Result<ReplayResult> Replay();

 private:
  struct NodeLinks {
    std::vector<LinkId> pcie;  // per local GPU
    std::vector<LinkId> card;  // per card (paired engines)
    LinkId qpi = -1;
    LinkId nic = -1;
    LinkId eth = -1;
    LinkId hostmem = -1;
    LinkId serialize = -1;
    LinkId disk = -1;
  };

  // Links from a GPU/host down to that node's wire attach point; `to_wire`
  // appends QPI when the source island differs from the NIC island.
  std::vector<LinkId> LocalPath(const Loc& loc, bool to_wire) const;
  LinkId WireLink(int node, Protocol proto) const;
  double WireLatency(Protocol proto) const;

  MachineConfig cfg_;
  int num_gpus_;
  int num_nodes_;
  Simulation sim_;
  FlowNetwork net_{&sim_};
  TraceReplayer trace_{&net_};
  std::vector<NodeLinks> nodes_;
  std::map<std::pair<int, int>, LinkId> ingest_links_;  // (node, lane)
  bool replayed_ = false;
};

}  // namespace tfhpc::sim
