// Tests for GraphCheck (src/analysis): structural verifier, static
// shape/dtype inference, dataflow lints, partition-plan checks, and the
// Session strict/warn integration (including executor buffer pre-sizing).
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/verifier.h"
#include "apps/app_graphs.h"
#include "graph/ops.h"
#include "runtime/session.h"
#include "wire/messages.h"

namespace tfhpc {
namespace {

using analysis::AnalysisOptions;
using analysis::Diagnostic;
using analysis::GraphAnalysis;
using analysis::InferredShape;
using analysis::InferredTensor;
using analysis::MergeShapes;
using analysis::Severity;
using analysis::VerifyGraph;
using analysis::VerifyPartitions;

wire::NodeDef MakeNode(std::string name, std::string op,
                       std::vector<std::string> inputs = {},
                       std::map<std::string, wire::AttrValue> attrs = {}) {
  wire::NodeDef nd;
  nd.name = std::move(name);
  nd.op = std::move(op);
  nd.inputs = std::move(inputs);
  nd.attrs = std::move(attrs);
  return nd;
}

wire::NodeDef Typed(wire::NodeDef nd, DType dtype, Shape shape) {
  nd.attrs["dtype"] = wire::AttrValue::Type(dtype);
  nd.attrs["shape"] = wire::AttrValue::OfShape(std::move(shape));
  return nd;
}

// Returns the first diagnostic with `code`, or null.
const Diagnostic* Find(const std::vector<Diagnostic>& diags,
                       const std::string& code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

int CountCode(const std::vector<Diagnostic>& diags, const std::string& code) {
  return static_cast<int>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.code == code; }));
}

// ---- structural verifier ----------------------------------------------------

TEST(GraphCheckStructuralTest, CleanGraphHasNoFindings) {
  wire::GraphDef def;
  def.nodes.push_back(
      Typed(MakeNode("a", "Placeholder"), DType::kF32, Shape{4}));
  def.nodes.push_back(
      Typed(MakeNode("b", "Placeholder"), DType::kF32, Shape{4}));
  def.nodes.push_back(MakeNode("sum", "Add", {"a", "b"}));
  const GraphAnalysis ga = VerifyGraph(def, {{}, {"sum"}, {}});
  EXPECT_TRUE(ga.diagnostics.empty())
      << analysis::FormatDiagnostics(ga.diagnostics);
}

TEST(GraphCheckStructuralTest, GC001DuplicateName) {
  wire::GraphDef def;
  def.nodes.push_back(
      Typed(MakeNode("x", "Placeholder"), DType::kF32, Shape{2}));
  def.nodes.push_back(
      Typed(MakeNode("x", "Placeholder"), DType::kF32, Shape{2}));
  const GraphAnalysis ga = VerifyGraph(def);
  const Diagnostic* d = Find(ga.diagnostics, "GC001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->node, "x");

  wire::GraphDef ok;
  ok.nodes.push_back(
      Typed(MakeNode("x", "Placeholder"), DType::kF32, Shape{2}));
  ok.nodes.push_back(
      Typed(MakeNode("y", "Placeholder"), DType::kF32, Shape{2}));
  EXPECT_EQ(Find(VerifyGraph(ok).diagnostics, "GC001"), nullptr);
}

TEST(GraphCheckStructuralTest, GC001EmptyName) {
  wire::GraphDef def;
  def.nodes.push_back(
      Typed(MakeNode("", "Placeholder"), DType::kF32, Shape{2}));
  EXPECT_NE(Find(VerifyGraph(def).diagnostics, "GC001"), nullptr);
}

TEST(GraphCheckStructuralTest, GC002UnknownOp) {
  wire::GraphDef def;
  def.nodes.push_back(MakeNode("m", "MisteryOp"));
  const GraphAnalysis ga_ = VerifyGraph(def);
  const Diagnostic* d = Find(ga_.diagnostics, "GC002");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("MisteryOp"), std::string::npos);

  wire::GraphDef ok;
  ok.nodes.push_back(MakeNode("n", "NoOp"));
  EXPECT_EQ(Find(VerifyGraph(ok).diagnostics, "GC002"), nullptr);
}

TEST(GraphCheckStructuralTest, GC003UnresolvableInput) {
  wire::GraphDef def;
  def.nodes.push_back(MakeNode("i", "Identity", {"ghost"}));
  const GraphAnalysis ga_ = VerifyGraph(def);
  const Diagnostic* d = Find(ga_.diagnostics, "GC003");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->node, "i");

  wire::GraphDef ok;
  ok.nodes.push_back(
      Typed(MakeNode("src", "Placeholder"), DType::kF32, Shape{2}));
  ok.nodes.push_back(MakeNode("i", "Identity", {"src"}));
  EXPECT_EQ(Find(VerifyGraph(ok).diagnostics, "GC003"), nullptr);
}

TEST(GraphCheckStructuralTest, GC003UnresolvableFetch) {
  wire::GraphDef def;
  def.nodes.push_back(
      Typed(MakeNode("a", "Placeholder"), DType::kF32, Shape{2}));
  const GraphAnalysis ga = VerifyGraph(def, {{}, {"nothere"}, {}});
  EXPECT_NE(Find(ga.diagnostics, "GC003"), nullptr);
}

TEST(GraphCheckStructuralTest, GC004SlotOutOfRange) {
  wire::GraphDef def;
  def.nodes.push_back(
      Typed(MakeNode("src", "Placeholder"), DType::kF32, Shape{2}));
  def.nodes.push_back(MakeNode("i", "Identity", {"src:3"}));
  const GraphAnalysis ga_ = VerifyGraph(def);
  const Diagnostic* d = Find(ga_.diagnostics, "GC004");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("slot 3"), std::string::npos);

  wire::GraphDef ok;
  ok.nodes.push_back(
      Typed(MakeNode("src", "Placeholder"), DType::kF32, Shape{2}));
  ok.nodes.push_back(MakeNode("i", "Identity", {"src:0"}));
  EXPECT_EQ(Find(VerifyGraph(ok).diagnostics, "GC004"), nullptr);
}

TEST(GraphCheckStructuralTest, GC005ArityViolation) {
  wire::GraphDef def;
  def.nodes.push_back(
      Typed(MakeNode("a", "Placeholder"), DType::kF32, Shape{2}));
  def.nodes.push_back(MakeNode("sum", "Add", {"a"}));  // Add wants 2
  const GraphAnalysis ga_ = VerifyGraph(def);
  const Diagnostic* d = Find(ga_.diagnostics, "GC005");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->node, "sum");

  wire::GraphDef ok;
  ok.nodes.push_back(
      Typed(MakeNode("a", "Placeholder"), DType::kF32, Shape{2}));
  ok.nodes.push_back(MakeNode("sum", "Add", {"a", "a"}));
  EXPECT_EQ(Find(VerifyGraph(ok).diagnostics, "GC005"), nullptr);
}

TEST(GraphCheckStructuralTest, GC006CycleNamesThePath) {
  wire::GraphDef def;
  def.nodes.push_back(MakeNode("a", "Identity", {"c"}));
  def.nodes.push_back(MakeNode("b", "Identity", {"a"}));
  def.nodes.push_back(MakeNode("c", "Identity", {"b"}));
  const GraphAnalysis ga = VerifyGraph(def);
  const Diagnostic* d = Find(ga.diagnostics, "GC006");
  ASSERT_NE(d, nullptr);
  // The trace follows dataflow direction and closes the loop.
  EXPECT_NE(d->message.find("a -> b -> c -> a"), std::string::npos)
      << d->message;
  // Cycle members produce no annotations (their shapes are undefined).
  EXPECT_EQ(ga.annotations.count("a"), 0u);

  wire::GraphDef ok;
  ok.nodes.push_back(
      Typed(MakeNode("a", "Placeholder"), DType::kF32, Shape{2}));
  ok.nodes.push_back(MakeNode("b", "Identity", {"a"}));
  EXPECT_EQ(Find(VerifyGraph(ok).diagnostics, "GC006"), nullptr);
}

TEST(GraphCheckStructuralTest, GC006TwoNodeCycle) {
  wire::GraphDef def;
  def.nodes.push_back(MakeNode("a", "Identity", {"b"}));
  def.nodes.push_back(MakeNode("b", "Identity", {"a"}));
  const GraphAnalysis ga_ = VerifyGraph(def);
  const Diagnostic* d = Find(ga_.diagnostics, "GC006");
  ASSERT_NE(d, nullptr);
  const bool named = d->message.find("a -> b -> a") != std::string::npos ||
                     d->message.find("b -> a -> b") != std::string::npos;
  EXPECT_TRUE(named) << d->message;
}

TEST(GraphCheckStructuralTest, GC007InvalidDevice) {
  wire::GraphDef def;
  wire::NodeDef nd = Typed(MakeNode("a", "Placeholder"), DType::kF32, Shape{2});
  nd.device = "/bogus::!";
  def.nodes.push_back(nd);
  EXPECT_NE(Find(VerifyGraph(def).diagnostics, "GC007"), nullptr);

  wire::GraphDef ok;
  wire::NodeDef good =
      Typed(MakeNode("a", "Placeholder"), DType::kF32, Shape{2});
  good.device = "/job:worker/task:0/gpu:0";
  ok.nodes.push_back(good);
  EXPECT_EQ(Find(VerifyGraph(ok).diagnostics, "GC007"), nullptr);
}

TEST(GraphCheckStructuralTest, GC008DuplicateControlEdge) {
  wire::GraphDef def;
  def.nodes.push_back(
      Typed(MakeNode("a", "Placeholder"), DType::kF32, Shape{2}));
  def.nodes.push_back(MakeNode("n", "NoOp", {"^a", "^a"}));
  const GraphAnalysis ga_ = VerifyGraph(def);
  const Diagnostic* d = Find(ga_.diagnostics, "GC008");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);

  wire::GraphDef ok;
  ok.nodes.push_back(
      Typed(MakeNode("a", "Placeholder"), DType::kF32, Shape{2}));
  ok.nodes.push_back(MakeNode("n", "NoOp", {"^a"}));
  EXPECT_EQ(Find(VerifyGraph(ok).diagnostics, "GC008"), nullptr);
}

TEST(GraphCheckStructuralTest, GC008ControlEdgeShadowedByDataEdge) {
  wire::GraphDef def;
  def.nodes.push_back(
      Typed(MakeNode("a", "Placeholder"), DType::kF32, Shape{2}));
  def.nodes.push_back(MakeNode("i", "Identity", {"a", "^a"}));
  const GraphAnalysis ga_ = VerifyGraph(def);
  const Diagnostic* d = Find(ga_.diagnostics, "GC008");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("redundant"), std::string::npos);
}

// ---- shape & dtype inference ------------------------------------------------

TEST(ShapeInferenceTest, MergeShapesUnifiesUnknowns) {
  const InferredShape a = InferredShape::Of({128, -1});
  const InferredShape b = InferredShape::Of({-1, 64});
  const auto merged = MergeShapes(a, b);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->dims, (std::vector<int64_t>{128, 64}));
  EXPECT_TRUE(merged->fully_known());

  // Unknown rank defers entirely to the known side.
  const auto deferred = MergeShapes(InferredShape::Unknown(), a);
  ASSERT_TRUE(deferred.ok());
  EXPECT_EQ(*deferred, a);
}

TEST(ShapeInferenceTest, MergeShapesRejectsProvableConflicts) {
  const auto rank = MergeShapes(InferredShape::Of({2}), InferredShape::Of({2, 2}));
  ASSERT_FALSE(rank.ok());
  EXPECT_EQ(analysis::ExtractCode(rank.status().message()), "GC010");

  const auto extent =
      MergeShapes(InferredShape::Of({4}), InferredShape::Of({5}));
  ASSERT_FALSE(extent.ok());
  EXPECT_EQ(analysis::ExtractCode(extent.status().message()), "GC010");
}

TEST(ShapeInferenceTest, ToStringFormats) {
  EXPECT_EQ(InferredShape::Unknown().ToString(), "?");
  EXPECT_EQ(InferredShape::Scalar().ToString(), "[]");
  EXPECT_EQ(InferredShape::Of({128, -1}).ToString(), "[128, ?]");
}

TEST(GraphCheckInferenceTest, AnnotatesKnownShapes) {
  wire::GraphDef def;
  def.nodes.push_back(
      Typed(MakeNode("a", "Placeholder"), DType::kF32, Shape{3, 4}));
  def.nodes.push_back(
      Typed(MakeNode("b", "Placeholder"), DType::kF32, Shape{4, 5}));
  def.nodes.push_back(MakeNode("mm", "MatMul", {"a", "b"}));
  def.nodes.push_back(MakeNode("tot", "ReduceSum", {"mm"}));
  const GraphAnalysis ga = VerifyGraph(def);
  EXPECT_FALSE(ga.has_errors()) << analysis::FormatDiagnostics(ga.diagnostics);

  ASSERT_EQ(ga.annotations.count("mm"), 1u);
  const InferredTensor& mm = ga.annotations.at("mm")[0];
  EXPECT_EQ(mm.dtype, DType::kF32);
  EXPECT_EQ(mm.shape, InferredShape::Of({3, 5}));

  const InferredTensor& tot = ga.annotations.at("tot")[0];
  EXPECT_EQ(tot.shape, InferredShape::Scalar());
}

TEST(GraphCheckInferenceTest, UnknownDimsPropagate) {
  wire::GraphDef def;
  // No shape attr: rank and extents unknown.
  wire::NodeDef a = MakeNode("a", "Placeholder");
  a.attrs["dtype"] = wire::AttrValue::Type(DType::kF32);
  def.nodes.push_back(a);
  def.nodes.push_back(
      Typed(MakeNode("b", "Placeholder"), DType::kF32, Shape{7}));
  def.nodes.push_back(MakeNode("sum", "Add", {"a", "b"}));
  const GraphAnalysis ga = VerifyGraph(def);
  EXPECT_FALSE(ga.has_errors()) << analysis::FormatDiagnostics(ga.diagnostics);
  // Elementwise unifies toward the known side.
  EXPECT_EQ(ga.annotations.at("sum")[0].shape, InferredShape::Of({7}));
  EXPECT_EQ(ga.annotations.at("sum")[0].dtype, DType::kF32);
}

TEST(GraphCheckInferenceTest, GC009DtypeConflict) {
  wire::GraphDef def;
  def.nodes.push_back(
      Typed(MakeNode("a", "Placeholder"), DType::kF32, Shape{4}));
  def.nodes.push_back(
      Typed(MakeNode("b", "Placeholder"), DType::kF64, Shape{4}));
  def.nodes.push_back(MakeNode("sum", "Add", {"a", "b"}));
  const GraphAnalysis ga_ = VerifyGraph(def);
  const Diagnostic* d = Find(ga_.diagnostics, "GC009");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->node, "sum");

  wire::GraphDef ok;
  ok.nodes.push_back(
      Typed(MakeNode("a", "Placeholder"), DType::kF32, Shape{4}));
  ok.nodes.push_back(
      Typed(MakeNode("b", "Placeholder"), DType::kF32, Shape{4}));
  ok.nodes.push_back(MakeNode("sum", "Add", {"a", "b"}));
  EXPECT_EQ(Find(VerifyGraph(ok).diagnostics, "GC009"), nullptr);
}

TEST(GraphCheckInferenceTest, GC010MatMulInnerDimMismatch) {
  wire::GraphDef def;
  def.nodes.push_back(
      Typed(MakeNode("a", "Placeholder"), DType::kF32, Shape{3, 4}));
  def.nodes.push_back(
      Typed(MakeNode("b", "Placeholder"), DType::kF32, Shape{9, 5}));
  def.nodes.push_back(MakeNode("mm", "MatMul", {"a", "b"}));
  const GraphAnalysis ga_ = VerifyGraph(def);
  const Diagnostic* d = Find(ga_.diagnostics, "GC010");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->node, "mm");
  // Downstream of the failed node stays unknown rather than cascading.
  const GraphAnalysis ga = VerifyGraph(def);
  EXPECT_FALSE(ga.annotations.at("mm")[0].shape.rank_known);

  wire::GraphDef ok;
  ok.nodes.push_back(
      Typed(MakeNode("a", "Placeholder"), DType::kF32, Shape{3, 4}));
  ok.nodes.push_back(
      Typed(MakeNode("b", "Placeholder"), DType::kF32, Shape{4, 5}));
  ok.nodes.push_back(MakeNode("mm", "MatMul", {"a", "b"}));
  EXPECT_EQ(Find(VerifyGraph(ok).diagnostics, "GC010"), nullptr);
}

TEST(GraphCheckInferenceTest, GC017MissingRequiredAttr) {
  wire::GraphDef def;
  def.nodes.push_back(MakeNode("v", "Variable"));  // no dtype/shape attrs
  const GraphAnalysis ga_ = VerifyGraph(def);
  const Diagnostic* d = Find(ga_.diagnostics, "GC017");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->node, "v");

  wire::GraphDef ok;
  ok.nodes.push_back(Typed(MakeNode("v", "Variable"), DType::kF32, Shape{2}));
  EXPECT_EQ(Find(VerifyGraph(ok).diagnostics, "GC017"), nullptr);
}

// ---- dataflow lints ---------------------------------------------------------

TEST(GraphCheckLintTest, GC011DeadNodeWholeGraphOnly) {
  wire::GraphDef def;
  def.nodes.push_back(
      Typed(MakeNode("a", "Placeholder"), DType::kF32, Shape{2}));
  def.nodes.push_back(MakeNode("used", "Identity", {"a"}));
  def.nodes.push_back(MakeNode("orphan", "Neg", {"a"}));
  // Whole-graph mode: `used` is unconsumed too, but `orphan` must appear.
  const GraphAnalysis whole = VerifyGraph(def);
  const Diagnostic* d = Find(whole.diagnostics, "GC011");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kInfo);

  // Closure mode: unreached nodes are normal step subsetting, not findings.
  const GraphAnalysis closure = VerifyGraph(def, {{}, {"used"}, {}});
  EXPECT_EQ(Find(closure.diagnostics, "GC011"), nullptr);
}

TEST(GraphCheckLintTest, GC012VariableReadWithoutInitializer) {
  wire::GraphDef def;
  def.nodes.push_back(Typed(MakeNode("v", "Variable"), DType::kF64, Shape{8}));
  def.nodes.push_back(MakeNode("read", "Identity", {"v"}));
  const GraphAnalysis ga_ = VerifyGraph(def);
  const Diagnostic* d = Find(ga_.diagnostics, "GC012");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->node, "v");

  // An Assign anywhere in the graph counts as an initializer.
  wire::GraphDef ok = def;
  ok.nodes.push_back(
      Typed(MakeNode("zero", "Placeholder"), DType::kF64, Shape{8}));
  ok.nodes.push_back(MakeNode("init", "Assign", {"zero"},
                              {{"var", wire::AttrValue::Str("v")}}));
  EXPECT_EQ(Find(VerifyGraph(ok).diagnostics, "GC012"), nullptr);
}

TEST(GraphCheckLintTest, GC013DequeueWithNoEnqueueAnywhere) {
  wire::GraphDef def;
  def.nodes.push_back(MakeNode("drain", "QueueDequeue", {},
                               {{"queue", wire::AttrValue::Str("q")},
                                {"capacity", wire::AttrValue::Int(0)}}));
  const GraphAnalysis ga_ = VerifyGraph(def);
  const Diagnostic* d = Find(ga_.diagnostics, "GC013");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->node, "drain");

  // An enqueue for the queue — even outside the step closure — clears it:
  // another step may fill the queue first (the paper's pipelines do this).
  wire::GraphDef ok = def;
  ok.nodes.push_back(
      Typed(MakeNode("x", "Placeholder"), DType::kF32, Shape{2}));
  ok.nodes.push_back(MakeNode("fill", "QueueEnqueue", {"x"},
                              {{"queue", wire::AttrValue::Str("q")},
                               {"capacity", wire::AttrValue::Int(0)}}));
  EXPECT_EQ(Find(VerifyGraph(ok, {{}, {"drain"}, {}}).diagnostics, "GC013"),
            nullptr);
}

TEST(GraphCheckLintTest, GC013BoundedQueueOverfilledInOneStep) {
  wire::GraphDef def;
  def.nodes.push_back(
      Typed(MakeNode("x", "Placeholder"), DType::kF32, Shape{2}));
  for (int i = 0; i < 3; ++i) {
    def.nodes.push_back(
        MakeNode("fill" + std::to_string(i), "QueueEnqueue", {"x"},
                 {{"queue", wire::AttrValue::Str("q")},
                  {"capacity", wire::AttrValue::Int(2)}}));
  }
  // 3 enqueues into capacity 2 with no dequeue: guaranteed deadlock.
  const GraphAnalysis ga_ = VerifyGraph(def);
  const Diagnostic* d = Find(ga_.diagnostics, "GC013");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("capacity 2"), std::string::npos);

  // A dequeue in the same step keeps the queue draining.
  wire::GraphDef ok = def;
  ok.nodes.push_back(MakeNode("drain", "QueueDequeue", {},
                              {{"queue", wire::AttrValue::Str("q")},
                               {"capacity", wire::AttrValue::Int(2)}}));
  EXPECT_EQ(Find(VerifyGraph(ok).diagnostics, "GC013"), nullptr);
}

TEST(GraphCheckLintTest, GC014QueueDtypeProtocol) {
  wire::GraphDef def;
  def.nodes.push_back(
      Typed(MakeNode("x", "Placeholder"), DType::kF32, Shape{2}));
  def.nodes.push_back(MakeNode("fill", "QueueEnqueue", {"x"},
                               {{"queue", wire::AttrValue::Str("q")},
                                {"capacity", wire::AttrValue::Int(0)}}));
  def.nodes.push_back(MakeNode("drain", "QueueDequeue", {},
                               {{"queue", wire::AttrValue::Str("q")},
                                {"capacity", wire::AttrValue::Int(0)},
                                {"dtype", wire::AttrValue::Type(DType::kF64)}}));
  const GraphAnalysis ga_ = VerifyGraph(def);
  const Diagnostic* d = Find(ga_.diagnostics, "GC014");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->node, "drain");

  wire::GraphDef ok = def;
  ok.nodes.back().attrs["dtype"] = wire::AttrValue::Type(DType::kF32);
  EXPECT_EQ(Find(VerifyGraph(ok).diagnostics, "GC014"), nullptr);
}

TEST(GraphCheckLintTest, GC014MixedEnqueueDtypes) {
  wire::GraphDef def;
  def.nodes.push_back(
      Typed(MakeNode("x", "Placeholder"), DType::kF32, Shape{2}));
  def.nodes.push_back(
      Typed(MakeNode("y", "Placeholder"), DType::kC128, Shape{2}));
  for (const char* src : {"x", "y"}) {
    def.nodes.push_back(
        MakeNode(std::string("fill_") + src, "QueueEnqueue", {src},
                 {{"queue", wire::AttrValue::Str("q")},
                  {"capacity", wire::AttrValue::Int(0)}}));
  }
  EXPECT_NE(Find(VerifyGraph(def).diagnostics, "GC014"), nullptr);
}

TEST(GraphCheckLintTest, GC016AssignTargetMustBeCoLocatedVariable) {
  // Target is not a Variable at all.
  wire::GraphDef def;
  def.nodes.push_back(
      Typed(MakeNode("x", "Placeholder"), DType::kF32, Shape{2}));
  def.nodes.push_back(MakeNode("w", "Assign", {"x"},
                               {{"var", wire::AttrValue::Str("x")}}));
  EXPECT_NE(Find(VerifyGraph(def).diagnostics, "GC016"), nullptr);

  // Target does not exist.
  wire::GraphDef undefined;
  undefined.nodes.push_back(
      Typed(MakeNode("x", "Placeholder"), DType::kF32, Shape{2}));
  undefined.nodes.push_back(MakeNode("w", "Assign", {"x"},
                                     {{"var", wire::AttrValue::Str("gone")}}));
  EXPECT_NE(Find(VerifyGraph(undefined).diagnostics, "GC016"), nullptr);

  // Writer and variable on different tasks: resource state is task-local.
  wire::GraphDef cross;
  wire::NodeDef v = Typed(MakeNode("v", "Variable"), DType::kF32, Shape{2});
  v.device = "/job:worker/task:0/cpu:0";
  cross.nodes.push_back(v);
  cross.nodes.push_back(
      Typed(MakeNode("x", "Placeholder"), DType::kF32, Shape{2}));
  wire::NodeDef w = MakeNode("w", "Assign", {"x"},
                             {{"var", wire::AttrValue::Str("v")}});
  w.device = "/job:worker/task:1/cpu:0";
  cross.nodes.push_back(w);
  const GraphAnalysis ga_ = VerifyGraph(cross);
  const Diagnostic* d = Find(ga_.diagnostics, "GC016");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("task-local"), std::string::npos);

  // Same task: fine.
  wire::GraphDef ok = cross;
  ok.nodes.back().device = "/job:worker/task:0/cpu:0";
  EXPECT_EQ(Find(VerifyGraph(ok).diagnostics, "GC016"), nullptr);
}

// ---- partition-plan verification (GC015) ------------------------------------

wire::NodeDef SendNode(const std::string& name, const std::string& key,
                       const std::string& target) {
  return MakeNode(name, "_Send", {},
                  {{"key", wire::AttrValue::Str(key)},
                   {"target", wire::AttrValue::Str(target)}});
}

wire::NodeDef RecvNode(const std::string& name, const std::string& key) {
  return MakeNode(name, "_Recv", {}, {{"key", wire::AttrValue::Str(key)}});
}

TEST(GraphCheckPartitionTest, MatchedSendRecvIsClean) {
  std::map<std::string, wire::GraphDef> parts;
  parts["hostA:1"].nodes.push_back(SendNode("s", "edge0", "hostB:2"));
  parts["hostB:2"].nodes.push_back(RecvNode("r", "edge0"));
  EXPECT_TRUE(VerifyPartitions(parts).empty());
}

TEST(GraphCheckPartitionTest, GC015SendWithoutRecv) {
  std::map<std::string, wire::GraphDef> parts;
  parts["hostA:1"].nodes.push_back(SendNode("s", "edge0", "hostB:2"));
  parts["hostB:2"];  // target partition exists but holds no matching recv
  const auto diags = VerifyPartitions(parts);
  const Diagnostic* d = Find(diags, "GC015");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->node, "s");
  EXPECT_NE(d->message.find("no matching _Recv"), std::string::npos);
}

TEST(GraphCheckPartitionTest, GC015SendToUnknownPartition) {
  std::map<std::string, wire::GraphDef> parts;
  parts["hostA:1"].nodes.push_back(SendNode("s", "edge0", "nowhere:9"));
  const auto diags = VerifyPartitions(parts);
  const Diagnostic* d = Find(diags, "GC015");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("unknown partition"), std::string::npos);
}

TEST(GraphCheckPartitionTest, GC015RecvWithoutSend) {
  std::map<std::string, wire::GraphDef> parts;
  parts["hostB:2"].nodes.push_back(RecvNode("r", "edge7"));
  const auto diags = VerifyPartitions(parts);
  const Diagnostic* d = Find(diags, "GC015");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->node, "r");
  EXPECT_NE(d->message.find("no matching _Send"), std::string::npos);
}

TEST(GraphCheckPartitionTest, GC017SendMissingKey) {
  std::map<std::string, wire::GraphDef> parts;
  parts["hostA:1"].nodes.push_back(MakeNode("s", "_Send"));
  EXPECT_NE(Find(VerifyPartitions(parts), "GC017"), nullptr);
}

// ---- Session integration: strict / warn modes -------------------------------

TEST(SessionGraphCheckTest, StrictModeRejectsProvableConflict) {
  LocalRuntime rt(1);
  Scope s = rt.root_scope();
  auto a = ops::Placeholder(s, DType::kF32, Shape{4}, "a");
  auto b = ops::Placeholder(s, DType::kF64, Shape{4}, "b");
  auto sum = ops::Add(s, a, b);

  SessionOptions opts;
  opts.graph_check = GraphCheckMode::kStrict;
  auto sess = rt.NewSession(opts);
  const Tensor f32 = Tensor(DType::kF32, Shape{4});
  auto result = sess->Run({{"a", f32}, {"b", f32}}, {sum.name()});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Code::kInvalidArgument);
  EXPECT_NE(result.status().message().find("graphcheck rejected"),
            std::string::npos);
  EXPECT_NE(result.status().message().find("GC009"), std::string::npos);
}

TEST(SessionGraphCheckTest, WarnModeRunsTheSameGraph) {
  LocalRuntime rt(1);
  Scope s = rt.root_scope();
  auto a = ops::Placeholder(s, DType::kF32, Shape{4}, "a");
  auto b = ops::Placeholder(s, DType::kF64, Shape{4}, "b");
  auto sum = ops::Add(s, a, b);

  // Default mode is kWarn: the finding is reported but the step runs —
  // both placeholders are fed f32 at runtime, so the kernel is fine.
  auto sess = rt.NewSession();
  Tensor f32(DType::kF32, Shape{4});
  for (int i = 0; i < 4; ++i) f32.mutable_span<float>()[i] = 1.0f;
  auto result = sess->Run({{"a", f32}, {"b", f32}}, {sum.name()});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FLOAT_EQ((*result)[0].data<float>()[0], 2.0f);
}

TEST(SessionGraphCheckTest, OffModeSkipsAnalysis) {
  LocalRuntime rt(1);
  Scope s = rt.root_scope();
  auto a = ops::Placeholder(s, DType::kF32, Shape{4}, "a");
  auto b = ops::Placeholder(s, DType::kF64, Shape{4}, "b");
  auto sum = ops::Add(s, a, b);

  SessionOptions opts;
  opts.graph_check = GraphCheckMode::kOff;
  auto sess = rt.NewSession(opts);
  Tensor f32(DType::kF32, Shape{4});
  auto result = sess->Run({{"a", f32}, {"b", f32}}, {sum.name()});
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

TEST(SessionGraphCheckTest, StrictModeRejectsGuaranteedDeadlockWithoutHanging) {
  // A dequeue on a queue nothing enqueues into would hang the executor
  // forever; strict GraphCheck rejects it at compile time instead. The test
  // completing at all is the "no hang" assertion.
  LocalRuntime rt(1);
  Scope s = rt.root_scope();
  auto out = ops::QueueDequeue(s, "never_filled");

  SessionOptions opts;
  opts.graph_check = GraphCheckMode::kStrict;
  auto sess = rt.NewSession(opts);
  auto result = sess->Run({}, {out.name()});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("GC013"), std::string::npos);
}

TEST(SessionGraphCheckTest, StrictModeAllowsCleanGraphs) {
  LocalRuntime rt(1);
  Scope s = rt.root_scope();
  auto a = ops::Const(s, Tensor::Scalar(2.0));
  auto b = ops::Const(s, Tensor::Scalar(3.0));
  auto prod = ops::Mul(s, a, b);

  SessionOptions opts;
  opts.graph_check = GraphCheckMode::kStrict;
  auto sess = rt.NewSession(opts);
  auto result = sess->Run({}, {prod.name()});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ((*result)[0].data<double>()[0], 6.0);
}

// ---- executor pre-sizing from static shapes ---------------------------------

TEST(PresizeTest, StaticallyKnownOutputsUsePresizedBuffers) {
  LocalRuntime rt(1);
  Scope s = rt.root_scope();
  Tensor ta(DType::kF32, Shape{8, 8});
  Tensor tb(DType::kF32, Shape{8, 8});
  for (int i = 0; i < 64; ++i) {
    ta.mutable_span<float>()[i] = 1.0f;
    tb.mutable_span<float>()[i] = 2.0f;
  }
  auto a = ops::Const(s, ta);
  auto b = ops::Const(s, tb);
  auto mm = ops::MatMul(s, a, b);
  auto total = ops::ReduceSum(s, mm);

  auto sess = rt.NewSession();
  auto result = sess->Run({}, {total.name()});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FLOAT_EQ((*result)[0].data<float>()[0], 8 * 2.0f * 64);

  // MatMul and ReduceSum have fully-known output shapes, so the executor
  // handed their kernels pre-sized buffers; the allocator counted them.
  int64_t presized = 0;
  for (const auto& d : rt.devices().devices()) {
    presized += d->allocator_stats()->presized();
  }
  EXPECT_GE(presized, 2);
}

TEST(PresizeTest, GraphCheckOffDisablesPresizing) {
  LocalRuntime rt(1);
  Scope s = rt.root_scope();
  auto a = ops::Const(s, Tensor(DType::kF32, Shape{4, 4}));
  auto b = ops::Const(s, Tensor(DType::kF32, Shape{4, 4}));
  auto mm = ops::MatMul(s, a, b);

  SessionOptions opts;
  opts.graph_check = GraphCheckMode::kOff;
  auto sess = rt.NewSession(opts);
  ASSERT_TRUE(sess->Run({}, {mm.name()}).ok());
  int64_t presized = 0;
  for (const auto& d : rt.devices().devices()) {
    presized += d->allocator_stats()->presized();
  }
  EXPECT_EQ(presized, 0);
}

// ---- application graphs pass the verifier -----------------------------------

TEST(AppGraphCheckTest, AllFourAppGraphsAreErrorFree) {
  {
    Graph g;
    Scope root(&g);
    apps::BuildStreamPushGraph(root, 1024);
    const GraphAnalysis ga = VerifyGraph(g.ToGraphDef());
    EXPECT_FALSE(ga.has_errors())
        << analysis::FormatDiagnostics(ga.diagnostics);
  }
  {
    Graph g;
    Scope root(&g);
    apps::BuildTiledMatmulGraph(root, 32);
    const GraphAnalysis ga = VerifyGraph(g.ToGraphDef());
    EXPECT_FALSE(ga.has_errors())
        << analysis::FormatDiagnostics(ga.diagnostics);
  }
  {
    Graph g;
    Scope root(&g);
    apps::BuildCgWorkerGraph(root, 16, 64);
    const GraphAnalysis ga = VerifyGraph(g.ToGraphDef());
    EXPECT_FALSE(ga.has_errors())
        << analysis::FormatDiagnostics(ga.diagnostics);
  }
  {
    Graph g;
    Scope root(&g);
    apps::BuildFftWorkerGraph(root, 128);
    const GraphAnalysis ga = VerifyGraph(g.ToGraphDef());
    EXPECT_FALSE(ga.has_errors())
        << analysis::FormatDiagnostics(ga.diagnostics);
  }
}

TEST(AppGraphCheckTest, AppGraphsGetFullShapeAnnotations) {
  Graph g;
  Scope root(&g);
  const apps::TiledMatmulGraph wg = apps::BuildTiledMatmulGraph(root, 32);
  const GraphAnalysis ga = VerifyGraph(g.ToGraphDef());
  const auto [name, slot] = std::pair<std::string, int>{wg.product, 0};
  const std::string base = name.substr(0, name.find(':'));
  ASSERT_EQ(ga.annotations.count(base), 1u);
  EXPECT_EQ(ga.annotations.at(base)[slot].shape, InferredShape::Of({32, 32}));
}

}  // namespace
}  // namespace tfhpc
