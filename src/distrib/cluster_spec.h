// ClusterSpec: jobs -> task address lists (tf.train.ClusterSpec). Thin
// validated wrapper over the wire ClusterDef.
#pragma once

#include <string>
#include <vector>

#include "core/status.h"
#include "wire/messages.h"

namespace tfhpc::distrib {

class ClusterSpec {
 public:
  static Result<ClusterSpec> Create(wire::ClusterDef def);

  const wire::ClusterDef& def() const { return def_; }
  std::vector<std::string> JobNames() const;
  // Number of tasks in `job`; 0 when absent.
  int NumTasks(const std::string& job) const;
  Result<std::string> TaskAddress(const std::string& job, int task) const;
  int TotalTasks() const;

 private:
  explicit ClusterSpec(wire::ClusterDef def) : def_(std::move(def)) {}
  wire::ClusterDef def_;
};

}  // namespace tfhpc::distrib
