// Fluid-flow network model with max-min fair bandwidth sharing.
//
// Links are capacity-limited resources (PCIe lanes, QPI, NIC, Ethernet, host
// memory). A flow occupies a path of links and transfers a byte count; all
// concurrently active flows share every link max-min fairly (water-filling),
// recomputed on each flow arrival/departure. This is what produces the
// paper's Kebnekaise contention story (Fig. 9): four TensorFlow instances
// per node pushing tiles through shared PCIe/QPI/NIC links.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/event.h"

namespace tfhpc::sim {

using LinkId = int;
using FlowId = int64_t;

struct Link {
  std::string name;
  double bandwidth_bps = 0;  // bytes per second
  double latency_s = 0;      // per-flow fixed latency contribution
};

class FlowNetwork {
 public:
  explicit FlowNetwork(Simulation* sim) : sim_(sim) {}

  LinkId AddLink(std::string name, double bandwidth_bps, double latency_s = 0);
  const Link& link(LinkId id) const { return links_[static_cast<size_t>(id)]; }
  int num_links() const { return static_cast<int>(links_.size()); }

  // Starts a flow of `bytes` over `path` at the current sim time; `done`
  // fires (as a sim event) when the last byte arrives. Zero-byte flows
  // complete after latency only. An empty path is an intra-device move and
  // completes immediately after latency 0.
  FlowId StartFlow(const std::vector<LinkId>& path, int64_t bytes,
                   std::function<void()> done);

  // Current max-min fair rate of an active flow (bytes/s); 0 if finished.
  double FlowRate(FlowId id) const;
  int active_flows() const { return static_cast<int>(flows_.size()); }

 private:
  struct Flow {
    std::vector<LinkId> path;
    double remaining_bytes = 0;
    double rate = 0;          // current fair-share allocation
    uint64_t epoch = 0;       // invalidates stale completion events
    std::function<void()> done;
  };

  // Recomputes all flow rates (water-filling) and reschedules completions.
  void Reallocate();
  void Advance();  // progress remaining_bytes to sim_->now()
  void FinishFlow(FlowId id);

  Simulation* sim_;
  std::vector<Link> links_;
  std::map<FlowId, Flow> flows_;
  FlowId next_flow_id_ = 0;
  SimTime last_update_ = 0;
};

}  // namespace tfhpc::sim
