# Empty compiler generated dependencies file for tfhpc.
# This may be replaced when dependencies are built.
