// Deterministic parallel reductions — the substrate behind Dot/ReduceSum and
// the FusedElementwise trailing-reduction stages.
//
// Determinism contract: the input is partitioned into fixed-length chunks of
// kReduceChunk elements (never a function of thread count or scheduling).
// Each chunk is summed with kReduceLanes independent interleaved accumulators
// (lane l takes elements i where i % lanes == l, giving the compiler an
// obviously vectorizable loop), the lanes are collapsed with a fixed-order
// binary tree, and the per-chunk partials are combined serially in chunk
// order. Any two runs — any thread count, any ParallelFor partitioning —
// produce bit-identical results; and a fused kernel that evaluates its
// elementwise chain chunk-by-chunk and feeds the same ChunkSum/ChunkDot
// produces results bit-identical to the unfused reduce-over-materialized-
// buffer path, because elementwise values are pointwise and the reduction
// sees them in the identical order.
//
// Accumulator precision mirrors the historical scalar kernels: f32 reduces
// in f64 (the Dot/ReduceSum kernels always did), f64 in f64, c128 in c128.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace tfhpc::blas {

// Fixed reduction chunk length, in elements. Also the block size the fused
// kernel streams elementwise chains through, so fused and unfused reductions
// share chunk boundaries.
inline constexpr int64_t kReduceChunk = 4096;
// Independent accumulators per chunk.
inline constexpr int kReduceLanes = 8;
// ParallelFor grain over chunks: ~64k elements per task minimum, so short
// vectors never shard.
inline constexpr int64_t kReduceGrainChunks = 16;

// f32 accumulates in f64; everything else in its own type.
template <typename T>
struct ReduceAccum {
  using type = T;
};
template <>
struct ReduceAccum<float> {
  using type = double;
};

// Multi-accumulator sum of x[0..n) for one chunk (n <= kReduceChunk by
// convention, though any n is correct).
template <typename T>
typename ReduceAccum<T>::type ChunkSum(const T* x, int64_t n) {
  using Acc = typename ReduceAccum<T>::type;
  Acc lanes[kReduceLanes] = {};
  int64_t i = 0;
  for (; i + kReduceLanes <= n; i += kReduceLanes) {
    for (int l = 0; l < kReduceLanes; ++l) {
      lanes[l] += static_cast<Acc>(x[i + l]);
    }
  }
  for (int l = 0; i + l < n; ++l) lanes[l] += static_cast<Acc>(x[i + l]);
  for (int w = kReduceLanes / 2; w > 0; w /= 2) {
    for (int l = 0; l < w; ++l) lanes[l] += lanes[l + w];
  }
  return lanes[0];
}

// Multi-accumulator inner product over one chunk.
template <typename T>
typename ReduceAccum<T>::type ChunkDot(const T* x, const T* y, int64_t n) {
  using Acc = typename ReduceAccum<T>::type;
  Acc lanes[kReduceLanes] = {};
  int64_t i = 0;
  for (; i + kReduceLanes <= n; i += kReduceLanes) {
    for (int l = 0; l < kReduceLanes; ++l) {
      lanes[l] += static_cast<Acc>(x[i + l]) * static_cast<Acc>(y[i + l]);
    }
  }
  for (int l = 0; i + l < n; ++l) {
    lanes[l] += static_cast<Acc>(x[i + l]) * static_cast<Acc>(y[i + l]);
  }
  for (int w = kReduceLanes / 2; w > 0; w /= 2) {
    for (int l = 0; l < w; ++l) lanes[l] += lanes[l + w];
  }
  return lanes[0];
}

// Serial in-order combine of per-chunk partials — the scheduling-independent
// final step every parallel reduction funnels through.
template <typename A>
A CombineChunks(const std::vector<A>& partials) {
  A total{};
  for (const A& p : partials) total += p;
  return total;
}

inline int64_t NumReduceChunks(int64_t n) {
  return (n + kReduceChunk - 1) / kReduceChunk;
}

// Parallel drivers over the global thread pool (deterministic per the file
// contract above). f32 overloads return the f64 accumulator; callers cast.
double ParallelSum(const float* x, int64_t n);
double ParallelSum(const double* x, int64_t n);
std::complex<double> ParallelSum(const std::complex<double>* x, int64_t n);
double ParallelDot(const float* x, const float* y, int64_t n);
double ParallelDot(const double* x, const double* y, int64_t n);

}  // namespace tfhpc::blas
