// NumPy .npy v1.0 file format reader/writer. The paper's applications store
// matrix/vector tiles as .npy files loaded by workers; tfhpc reads and
// writes the real format (little-endian descr codes, C-order only) so tiles
// interoperate with NumPy itself.
#pragma once

#include <string>

#include "core/status.h"
#include "core/tensor.h"

namespace tfhpc::io {

// Writes `t` to `path` as .npy v1.0. Meta tensors are rejected.
Status SaveNpy(const std::string& path, const Tensor& t);

// Reads an .npy file. Supports v1.0 and v2.0 headers, C-order arrays with
// descr in {<f4, <f8, <c8, <c16, <i4, <i8, |u1, |b1}.
Result<Tensor> LoadNpy(const std::string& path);

// In-memory encode/decode (used by tests and by TileStore's cache path).
std::string EncodeNpy(const Tensor& t);
Result<Tensor> DecodeNpy(const std::string& bytes);

}  // namespace tfhpc::io
