// Fault-tolerance layer tests: chaos transport schedules (drop / delay /
// duplicate / corrupt / partition), retry policies with deadlines,
// server-side request dedup (exactly-once for non-idempotent ops) and
// DistributedSession step-level recovery with checkpoint restore.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "core/rng.h"
#include "distrib/dist_session.h"
#include "distrib/server.h"
#include "graph/ops.h"

namespace tfhpc::distrib {
namespace {

wire::ClusterDef FtCluster() {
  wire::ClusterDef def;
  wire::JobDef ps;
  ps.name = "ps";
  ps.task_addrs = {"ft-ps:1"};
  wire::JobDef workers;
  workers.name = "worker";
  workers.task_addrs = {"ft-w0:1", "ft-w1:1"};
  def.jobs = {ps, workers};
  return def;
}

DeviceName WorkerDev() {
  DeviceName d;
  d.job = "worker";
  d.task = 0;
  return d;
}

// Chaos profile from the acceptance criteria: drops + duplicates + delays
// at >= 10% aggregate fault rate, deterministic in the seed.
ChaosConfig AcceptanceChaos(uint64_t seed) {
  ChaosConfig chaos;
  chaos.seed = seed;
  chaos.drop_request_rate = 0.05;
  chaos.drop_response_rate = 0.05;
  chaos.duplicate_rate = 0.05;
  chaos.delay_rate = 0.05;
  chaos.max_delay_ms = 2;
  chaos.corrupt_rate = 0.03;
  return chaos;
}

class FaultToleranceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = std::make_unique<ClusterSpec>(
        ClusterSpec::Create(FtCluster()).value());
    RetryPolicy send_retry = RetryPolicy::Aggressive(5000);
    ServerDef ps_def{*spec_, "ps", 0, 0};
    ServerDef w0_def{*spec_, "worker", 0, 0};
    ServerDef w1_def{*spec_, "worker", 1, 0};
    ps_def.send_retry = w0_def.send_retry = w1_def.send_retry = send_retry;
    ps_ = Server::Create(ps_def, &router_).value();
    w0_ = Server::Create(w0_def, &router_).value();
    w1_ = Server::Create(w1_def, &router_).value();
  }

  InProcessRouter router_;
  std::unique_ptr<ClusterSpec> spec_;
  std::unique_ptr<Server> ps_, w0_, w1_;
};

// ---- retry policy unit behaviour ------------------------------------------------

TEST(RetryPolicyTest, RetryableCodeClassification) {
  EXPECT_TRUE(IsRetryableCode(Code::kUnavailable));
  EXPECT_FALSE(IsRetryableCode(Code::kInvalidArgument));
  EXPECT_FALSE(IsRetryableCode(Code::kNotFound));
  EXPECT_FALSE(IsRetryableCode(Code::kResourceExhausted));
  EXPECT_FALSE(IsRetryableCode(Code::kCancelled));
  EXPECT_FALSE(IsRetryableCode(Code::kDeadlineExceeded));
  EXPECT_FALSE(IsRetryableCode(Code::kOk));
}

TEST(RetryPolicyTest, RetriesUntilSuccess) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_ms = 0;
  int calls = 0;
  int64_t retries = 0;
  Status st = CallWithRetry(
      policy, 1,
      [&]() -> Status {
        return ++calls < 4 ? Unavailable("flaky") : Status::OK();
      },
      &retries);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(retries, 3);
}

TEST(RetryPolicyTest, NonRetryableSurfacesImmediately) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  int calls = 0;
  Status st = CallWithRetry(policy, 1, [&]() -> Status {
    ++calls;
    return InvalidArgument("bad");
  });
  EXPECT_EQ(st.code(), Code::kInvalidArgument);
  EXPECT_EQ(calls, 1);
}

TEST(RetryPolicyTest, AttemptBudgetReturnsLastError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 0;
  int calls = 0;
  Status st = CallWithRetry(policy, 1, [&]() -> Status {
    ++calls;
    return Unavailable("always down");
  });
  EXPECT_EQ(st.code(), Code::kUnavailable);
  EXPECT_EQ(calls, 3);
}

TEST(RetryPolicyTest, DeadlineExpiryReturnsDeadlineExceeded) {
  RetryPolicy policy = RetryPolicy::Aggressive(/*deadline_ms=*/150);
  const auto start = std::chrono::steady_clock::now();
  Status st = CallWithRetry(policy, 1,
                            [&]() -> Status { return Unavailable("down"); });
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_EQ(st.code(), Code::kDeadlineExceeded);
  EXPECT_LT(elapsed, 5000) << "deadline must bound the retry loop";
}

// ---- chaos transport ------------------------------------------------------------

TEST(ChaosTransportTest, ScheduleIsDeterministicInSeed) {
  // Two routers with the same seed inject the identical fault sequence.
  auto run_schedule = [](uint64_t seed) {
    InProcessRouter router;
    EXPECT_TRUE(router
                    .Register("c:1",
                              [](const wire::RpcEnvelope& req) {
                                wire::RpcEnvelope resp;
                                resp.request_id = req.request_id;
                                return resp;
                              })
                    .ok());
    ChaosConfig chaos;
    chaos.seed = seed;
    chaos.drop_request_rate = 0.2;
    chaos.duplicate_rate = 0.1;
    router.EnableChaos(chaos);
    std::vector<bool> dropped;
    for (int i = 0; i < 64; ++i) {
      wire::RpcEnvelope req;
      req.method = "Ping";
      dropped.push_back(!router.Call("c:1", WireProtocol::kRdma, req).ok());
    }
    return dropped;
  };
  EXPECT_EQ(run_schedule(7), run_schedule(7));
  EXPECT_NE(run_schedule(7), run_schedule(8));
}

TEST(ChaosTransportTest, StatsCountFaultsPerProtocolAndReset) {
  InProcessRouter router;
  ASSERT_TRUE(router
                  .Register("c:1",
                            [](const wire::RpcEnvelope& req) {
                              wire::RpcEnvelope resp;
                              resp.request_id = req.request_id;
                              return resp;
                            })
                  .ok());
  ChaosConfig chaos;
  chaos.seed = 99;
  chaos.drop_request_rate = 0.5;
  router.EnableChaos(chaos);
  for (int i = 0; i < 100; ++i) {
    wire::RpcEnvelope req;
    req.method = "Ping";
    (void)router.Call("c:1", WireProtocol::kGrpc, req);
  }
  const TransportStats& st = router.stats(WireProtocol::kGrpc);
  EXPECT_GT(st.faults_dropped_request.load(), 20);
  EXPECT_LT(st.faults_dropped_request.load(), 80);
  EXPECT_EQ(router.stats(WireProtocol::kRdma).total_faults(), 0);

  router.ResetStats();
  EXPECT_EQ(st.calls.load(), 0);
  EXPECT_EQ(st.total_faults(), 0);
}

TEST_F(FaultToleranceTest, PartitionRefusesCallsUntilHealed) {
  RemoteTask ps(&router_, "ft-ps:1", WireProtocol::kRdma);
  ASSERT_TRUE(ps.Ping().ok());
  router_.Partition("ft-ps:1");
  EXPECT_TRUE(router_.IsPartitioned("ft-ps:1"));
  EXPECT_EQ(ps.Ping().code(), Code::kUnavailable);
  // Other tasks are unaffected.
  EXPECT_TRUE(RemoteTask(&router_, "ft-w0:1", WireProtocol::kRdma).Ping().ok());
  router_.Heal("ft-ps:1");
  EXPECT_TRUE(ps.Ping().ok());
  EXPECT_GT(
      router_.stats(WireProtocol::kRdma).faults_partition_refused.load(), 0);
}

TEST_F(FaultToleranceTest, CorruptedPayloadIsRejectedNotApplied) {
  ChaosConfig chaos;
  chaos.seed = 5;
  chaos.corrupt_rate = 1.0;  // corrupt every call
  router_.EnableChaos(chaos);
  RemoteTask ps(&router_, "ft-ps:1", WireProtocol::kGrpc);
  auto st = ps.VarAssign("x", Tensor::Scalar(1.0));
  EXPECT_EQ(st.code(), Code::kUnavailable);
  EXPECT_GT(ps_->checksum_rejects(), 0);
  router_.DisableChaos();
  // The corrupted write was never applied.
  EXPECT_EQ(ps.VarRead("x").status().code(), Code::kFailedPrecondition);
}

// ---- exactly-once under retry + duplication -------------------------------------

TEST_F(FaultToleranceTest, LostResponseRetryDoesNotDoubleApply) {
  // Every first response is dropped; with retry the op must apply once, not
  // once per attempt.
  ChaosConfig chaos;
  chaos.seed = 11;
  chaos.drop_response_rate = 0.5;
  router_.EnableChaos(chaos);

  RemoteTask ps(&router_, "ft-ps:1", WireProtocol::kRdma,
                RetryPolicy::Aggressive(10000));
  const int kPushes = 50;
  for (int i = 0; i < kPushes; ++i) {
    ASSERT_TRUE(ps.VarAssignAdd("acc", Tensor::Scalar(1.0)).ok());
  }
  router_.DisableChaos();
  EXPECT_DOUBLE_EQ(ps.VarRead("acc")->scalar<double>(),
                   static_cast<double>(kPushes));
  // The chaos dropped some responses, so some retries replayed from cache.
  EXPECT_GT(ps.retries(), 0);
  EXPECT_GT(ps_->dedup_hits(), 0);
}

TEST_F(FaultToleranceTest, DuplicatedEnqueueAppliesOnce) {
  ChaosConfig chaos;
  chaos.seed = 23;
  chaos.duplicate_rate = 1.0;  // every request delivered twice
  router_.EnableChaos(chaos);

  RemoteTask ps(&router_, "ft-ps:1", WireProtocol::kMpi);
  const int kItems = 10;
  for (int i = 0; i < kItems; ++i) {
    ASSERT_TRUE(
        ps.Enqueue("dupq", Tensor::Scalar(static_cast<double>(i))).ok());
  }
  router_.DisableChaos();
  ASSERT_TRUE(ps.CloseQueue("dupq").ok());
  // Exactly kItems survive (each duplicate was deduped), in order.
  for (int i = 0; i < kItems; ++i) {
    auto r = ps.Dequeue("dupq");
    ASSERT_TRUE(r.ok()) << "item " << i;
    EXPECT_DOUBLE_EQ(r->scalar<double>(), static_cast<double>(i));
  }
  EXPECT_EQ(ps.Dequeue("dupq").status().code(), Code::kOutOfRange);
  EXPECT_GE(ps_->dedup_hits(), kItems);
}

// ---- the acceptance scenario: STREAM + matmul step under chaos -------------------

TEST_F(FaultToleranceTest, ChaoticStreamStepMatchesFaultFreeRun) {
  // The paper's STREAM push: workers assign_add partial sums into a PS
  // variable. Run it fault-free, then replay under a seeded chaos schedule
  // (drops + duplicates + delays + corruption >= 10% aggregate) — the final
  // variable must be numerically identical.
  auto run_stream = [&](const std::string& var, bool chaotic) -> double {
    if (chaotic) router_.EnableChaos(AcceptanceChaos(20260806));
    std::vector<std::thread> workers;
    for (int w = 0; w < 2; ++w) {
      workers.emplace_back([&, w] {
        RemoteTask ps(&router_, "ft-ps:1", WireProtocol::kRdma,
                      RetryPolicy::Aggressive(20000));
        for (int i = 0; i < 40; ++i) {
          Tensor delta = Tensor::FromVector(
              std::vector<double>{1.0 * (w + 1), 0.5 * (i + 1)});
          ASSERT_TRUE(ps.VarAssignAdd(var, delta).ok());
        }
      });
    }
    for (auto& t : workers) t.join();
    if (chaotic) router_.DisableChaos();
    RemoteTask reader(&router_, "ft-ps:1", WireProtocol::kRdma,
                      RetryPolicy::Aggressive(20000));
    auto v = reader.VarRead(var);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return v->data<double>()[0] + v->data<double>()[1];
  };

  const double clean = run_stream("stream_clean", false);
  const double chaotic = run_stream("stream_chaos", true);
  EXPECT_DOUBLE_EQ(clean, chaotic);
  // The schedule actually faulted a nontrivial share of the traffic.
  EXPECT_GT(router_.stats(WireProtocol::kRdma).total_faults(), 5);
}

TEST_F(FaultToleranceTest, ChaoticMatmulStepMatchesFaultFreeRun) {
  // A cross-task matmul pipeline (x@w1 on worker 0, @w2 on worker 1) run
  // through DistributedSession, fault-free vs chaotic: identical outputs.
  const int64_t n = 12;
  Tensor x(DType::kF32, Shape{n, n});
  Tensor w1(DType::kF32, Shape{n, n});
  Tensor w2(DType::kF32, Shape{n, n});
  FillUniform(x, 101);
  FillUniform(w1, 102, -0.1, 0.1);
  FillUniform(w2, 103, -0.1, 0.1);

  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto h = ops::MatMul(t0, ops::Const(t0, x), ops::Const(t0, w1));
  auto y = ops::MatMul(t1, h, ops::Const(t1, w2));

  auto session =
      DistributedSession::Create(&router_, *spec_, WireProtocol::kRdma,
                                 g.ToGraphDef(), WorkerDev());
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  auto clean = (*session)->Run({}, {y.name()});
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  // A single step issues only a handful of RPCs (two RunSteps plus one
  // rendezvous send), so run several chaotic steps to give the 23% schedule
  // a wide enough window that drawing zero faults is astronomically unlikely.
  router_.EnableChaos(AcceptanceChaos(424242));
  StepRecoveryOptions recovery;
  recovery.max_step_attempts = 8;
  recovery.rpc_retry = RetryPolicy::Aggressive(20000);
  const auto want = (*clean)[0].data<float>();
  for (int step = 0; step < 8; ++step) {
    FaultReport report;
    auto chaotic = (*session)->Run({}, {y.name()}, recovery, &report);
    ASSERT_TRUE(chaotic.ok()) << "step " << step << ": "
                              << chaotic.status().ToString() << " "
                              << report.ToString();
    const auto got = (*chaotic)[0].data<float>();
    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i], got[i])
          << "step " << step << " index " << i;  // bitwise identical
    }
  }
  router_.DisableChaos();
  EXPECT_GT(router_.chaos_calls(), 20);
  EXPECT_GT(router_.stats(WireProtocol::kRdma).total_faults(), 0);
}

// ---- deadlines: a lost rank fails the step, never hangs it -----------------------

TEST_F(FaultToleranceTest, PartitionedTaskFailsRunWithDeadlineNotHang) {
  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto a = ops::Const(t0, Tensor::Scalar(5.0), "a");
  auto y = ops::Mul(t1, a, ops::Const(t1, Tensor::Scalar(2.0)));

  auto session =
      DistributedSession::Create(&router_, *spec_, WireProtocol::kRdma,
                                 g.ToGraphDef(), WorkerDev());
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  router_.Partition("ft-w0:1");
  StepRecoveryOptions recovery;
  recovery.max_step_attempts = 2;
  recovery.rpc_retry = RetryPolicy::Aggressive(/*deadline_ms=*/300);
  FaultReport report;
  const auto start = std::chrono::steady_clock::now();
  auto r = (*session)->Run({}, {y.name()}, recovery, &report);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kDeadlineExceeded)
      << r.status().ToString();
  EXPECT_EQ(report.final_status.code(), Code::kDeadlineExceeded);
  EXPECT_EQ(report.failed_partition, "ft-w0:1");
  EXPECT_EQ(report.step_attempts, 2);
  EXPECT_FALSE(report.recovered);
  // Two attempts, each deadline-bounded at 300ms, plus overhead: well under
  // a hang. Generous bound for slow CI.
  EXPECT_LT(elapsed_ms, 10000);

  // Heal and re-run: the session recovered its tasks (abort/reset) and the
  // same step now succeeds.
  router_.Heal("ft-w0:1");
  auto r2 = (*session)->Run({}, {y.name()});
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_DOUBLE_EQ((*r2)[0].scalar<double>(), 10.0);
}

// ---- step-level recovery with checkpoint restore ---------------------------------

TEST_F(FaultToleranceTest, StepRecoveryRestoresVariablesAndReruns) {
  // The step accumulates into a task-0 variable (AssignAdd) and fetches the
  // result on task 1. A transient fault mid-step would double-accumulate on
  // blind re-run; checkpoint restore makes the re-run start from the
  // pre-step value, so the recovered result equals the fault-free one.
  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto v = ops::Variable(t0, "acc", DType::kF64, Shape{});
  auto bump = ops::AssignAdd(t0, v, ops::Const(t0, Tensor::Scalar(1.0)));
  auto y = ops::Mul(t1, bump, ops::Const(t1, Tensor::Scalar(10.0)));

  auto session =
      DistributedSession::Create(&router_, *spec_, WireProtocol::kRdma,
                                 g.ToGraphDef(), WorkerDev());
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  // Initialize acc = 5 on worker 0.
  RemoteTask w0(&router_, "ft-w0:1", WireProtocol::kRdma);
  ASSERT_TRUE(w0.VarAssign("acc", Tensor::Scalar(5.0)).ok());

  const std::string ckpt =
      ::testing::TempDir() + "/ft_step_recovery.ckpt";
  std::remove(ckpt.c_str());

  // Worker 0's step application fails once (after the AssignAdd may have
  // run), then works. Recovery must restore acc=5 before the re-run.
  router_.InjectFault("ft-w1:1", "RunStep", Unavailable("rank lost"), 1);
  StepRecoveryOptions recovery;
  recovery.max_step_attempts = 3;
  recovery.rpc_retry = RetryPolicy::NoRetry();  // force step-level path
  recovery.checkpoint_path = ckpt;
  FaultReport report;
  auto r = (*session)->Run({}, {y.name()}, recovery, &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString() << " " << report.ToString();

  // Exactly one effective increment: (5+1)*10.
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 60.0);
  EXPECT_DOUBLE_EQ(w0.VarRead("acc")->scalar<double>(), 6.0);
  EXPECT_TRUE(report.recovered);
  EXPECT_TRUE(report.checkpoint_saved);
  EXPECT_GT(report.variables_restored, 0);
  EXPECT_EQ(report.step_attempts, 2);
  EXPECT_EQ(report.first_error.code(), Code::kUnavailable);
  std::remove(ckpt.c_str());
}

TEST_F(FaultToleranceTest, SemanticErrorsAreNotRetriedAtStepLevel) {
  Graph g;
  Scope s(&g);
  ops::Const(s.WithDevice("/job:worker/task:0/cpu:0"), Tensor::Scalar(1.0),
             "c");
  auto session =
      DistributedSession::Create(&router_, *spec_, WireProtocol::kRdma,
                                 g.ToGraphDef(), WorkerDev());
  ASSERT_TRUE(session.ok());
  StepRecoveryOptions recovery;
  recovery.max_step_attempts = 5;
  FaultReport report;
  auto r = (*session)->Run({}, {"ghost"}, recovery, &report);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(report.step_attempts, 1) << "NotFound must not be re-attempted";
}

// ---- VarSnapshot / VarRestore wire surface --------------------------------------

TEST_F(FaultToleranceTest, VarSnapshotRoundTripsThroughRestore) {
  RemoteTask ps(&router_, "ft-ps:1", WireProtocol::kGrpc);
  ASSERT_TRUE(ps.VarAssign("a", Tensor::Scalar(1.5)).ok());
  ASSERT_TRUE(
      ps.VarAssign("b", Tensor::FromVector(std::vector<double>{1, 2, 3}))
          .ok());
  auto snap = ps.VarSnapshot();
  ASSERT_TRUE(snap.ok());
  ASSERT_EQ(snap->size(), 2u);

  ASSERT_TRUE(ps.VarAssign("a", Tensor::Scalar(-9.0)).ok());
  ASSERT_TRUE(ps.VarRestore(*snap).ok());
  EXPECT_DOUBLE_EQ(ps.VarRead("a")->scalar<double>(), 1.5);
  EXPECT_DOUBLE_EQ(ps.VarRead("b")->data<double>()[2], 3.0);
}

}  // namespace
}  // namespace tfhpc::distrib
