// Ablation: reducer count in the tiled matmul (DESIGN.md ablation 2). The
// paper fixes 2 reducers with odd/even target parity; this sweeps 1/2/4 to
// show where the single-consumer ingest path saturates.
#include <cstdio>

#include "apps/tiled_matmul.h"
#include "bench_util.h"

using namespace tfhpc;

int main() {
  bench::Header("Ablation — number of reducers in tiled matmul",
                "DESIGN.md ablation 2 (paper fixes 2 reducers)");

  std::printf("%-14s | %12s %12s %12s %12s\n", "platform", "1 reducer",
              "2 reducers", "4 reducers", "8 reducers");
  bench::Rule();
  struct Row {
    const char* label;
    sim::MachineConfig cfg;
    int64_t tile;
    int gpus;
  };
  const Row rows[] = {
      {"Tegner K420", sim::TegnerConfig(sim::GpuKind::kK420), 4096, 8},
      {"Keb K80", sim::KebnekaiseConfig(sim::GpuKind::kK80), 8192, 16},
  };
  for (const Row& row : rows) {
    double gflops[4];
    int idx = 0;
    for (int reducers : {1, 2, 4, 8}) {
      apps::TiledMatmulOptions opts;
      opts.n = 32768;
      opts.tile = row.tile;
      opts.num_workers = row.gpus;
      opts.num_reducers = reducers;
      auto r = apps::SimulateTiledMatmul(row.cfg, sim::Protocol::kRdma, opts);
      if (!r.ok()) {
        std::printf("simulate failed: %s\n", r.status().ToString().c_str());
        return 1;
      }
      gflops[idx++] = r->gflops;
    }
    std::printf("%-14s | %12.0f %12.0f %12.0f %12.0f\n", row.label, gflops[0],
                gflops[1], gflops[2], gflops[3]);
  }
  bench::Rule();
  std::printf("(Gflops/s at fixed GPU count, N=32768)\n");
  return 0;
}
