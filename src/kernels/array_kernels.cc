// Array-manipulation kernels: Transpose, Slice, Concat, Cast, Neg, Reshape,
// Fill, ZerosLike — the data-layout vocabulary the paper's pre-processing
// steps (tiling, splitting, merging) are written in when expressed in-graph.
#include <cstring>

#include "core/threadpool.h"
#include "kernels/kernel.h"

namespace tfhpc {
namespace {

// ---- Transpose (rank 2) -------------------------------------------------------

class TransposeKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    const Tensor& a = ctx->input(0);
    if (!a.shape().IsMatrix()) {
      return InvalidArgument("Transpose requires rank 2, got " +
                             a.shape().ToString());
    }
    const int64_t r = a.shape().dim(0);
    const int64_t c = a.shape().dim(1);
    // Every destination element is written (never forwarded: the blocked
    // transpose would read elements it already overwrote in place).
    Tensor out;
    TFHPC_RETURN_IF_ERROR(
        ctx->AllocateOutput(a.dtype(), Shape{c, r}, &out, ZeroInit::kNo));
    if (!ctx->meta_exec()) {
      const size_t esize = DTypeSize(a.dtype());
      const auto* src = static_cast<const uint8_t*>(a.raw_data());
      auto* dst = static_cast<uint8_t*>(out.raw_data());
      // Blocked transpose for cache behaviour.
      constexpr int64_t kBlock = 32;
      ThreadPool::Global().ParallelFor(
          (r + kBlock - 1) / kBlock, 1, [&](int64_t bb, int64_t be) {
            for (int64_t b = bb; b < be; ++b) {
              const int64_t i0 = b * kBlock;
              const int64_t i1 = std::min(r, i0 + kBlock);
              for (int64_t j0 = 0; j0 < c; j0 += kBlock) {
                const int64_t j1 = std::min(c, j0 + kBlock);
                for (int64_t i = i0; i < i1; ++i) {
                  for (int64_t j = j0; j < j1; ++j) {
                    std::memcpy(dst + (j * r + i) * esize,
                                src + (i * c + j) * esize, esize);
                  }
                }
              }
            }
          });
    }
    ctx->set_output(0, std::move(out));
    return Status::OK();
  }

  CostEstimate Cost(const OpKernelContext& ctx) const override {
    CostEstimate c = OpKernel::Cost(ctx);
    c.bytes_written = ctx.input(0).bytes();
    return c;
  }
};
TFHPC_REGISTER_KERNEL_ALL("Transpose", TransposeKernel);

// ---- Slice ----------------------------------------------------------------------
// attrs: begin (shape-encoded), size (shape-encoded). Rank 1 or 2.

class SliceKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    const Tensor& a = ctx->input(0);
    TFHPC_ASSIGN_OR_RETURN(Shape begin, ctx->node().AttrShape("begin"));
    TFHPC_ASSIGN_OR_RETURN(Shape size, ctx->node().AttrShape("size"));
    if (begin.rank() != a.shape().rank() || size.rank() != a.shape().rank()) {
      return InvalidArgument("Slice begin/size rank mismatch with input " +
                             a.shape().ToString());
    }
    for (int d = 0; d < a.shape().rank(); ++d) {
      if (begin.dim(d) < 0 || size.dim(d) < 0 ||
          begin.dim(d) + size.dim(d) > a.shape().dim(d)) {
        return OutOfRange("Slice [" + begin.ToString() + "+" + size.ToString() +
                          "] outside " + a.shape().ToString());
      }
    }
    Tensor out;
    TFHPC_RETURN_IF_ERROR(
        ctx->AllocateOutput(a.dtype(), size, &out, ZeroInit::kNo));
    if (!ctx->meta_exec()) {
      const size_t esize = DTypeSize(a.dtype());
      const auto* src = static_cast<const uint8_t*>(a.raw_data());
      auto* dst = static_cast<uint8_t*>(out.raw_data());
      if (a.shape().rank() == 1) {
        std::memcpy(dst, src + begin.dim(0) * static_cast<int64_t>(esize),
                    static_cast<size_t>(size.dim(0)) * esize);
      } else if (a.shape().rank() == 2) {
        const int64_t in_w = a.shape().dim(1);
        for (int64_t row = 0; row < size.dim(0); ++row) {
          std::memcpy(
              dst + row * size.dim(1) * static_cast<int64_t>(esize),
              src + ((begin.dim(0) + row) * in_w + begin.dim(1)) *
                        static_cast<int64_t>(esize),
              static_cast<size_t>(size.dim(1)) * esize);
        }
      } else {
        return Unimplemented("Slice supports rank 1-2, got rank " +
                             std::to_string(a.shape().rank()));
      }
    }
    ctx->set_output(0, std::move(out));
    return Status::OK();
  }
};
TFHPC_REGISTER_KERNEL_ALL("Slice", SliceKernel);

// ---- Concat (variadic, rank 1 or rank 2 along axis 0) -----------------------------

class ConcatKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    if (ctx->num_inputs() == 0) return InvalidArgument("Concat of nothing");
    const DType dtype = ctx->input(0).dtype();
    const int rank = ctx->input(0).shape().rank();
    if (rank < 1 || rank > 2) {
      return Unimplemented("Concat supports rank 1-2");
    }
    int64_t rows = 0;
    const int64_t cols = rank == 2 ? ctx->input(0).shape().dim(1) : 1;
    for (int i = 0; i < ctx->num_inputs(); ++i) {
      const Tensor& t = ctx->input(i);
      if (t.dtype() != dtype || t.shape().rank() != rank ||
          (rank == 2 && t.shape().dim(1) != cols)) {
        return InvalidArgument("Concat: inconsistent operand " +
                               std::to_string(i));
      }
      rows += t.shape().dim(0);
    }
    const Shape out_shape = rank == 2 ? Shape{rows, cols} : Shape{rows};
    Tensor out;
    TFHPC_RETURN_IF_ERROR(
        ctx->AllocateOutput(dtype, out_shape, &out, ZeroInit::kNo));
    if (!ctx->meta_exec()) {
      auto* dst = static_cast<uint8_t*>(out.raw_data());
      for (int i = 0; i < ctx->num_inputs(); ++i) {
        const Tensor& t = ctx->input(i);
        std::memcpy(dst, t.raw_data(), static_cast<size_t>(t.bytes()));
        dst += t.bytes();
      }
    }
    ctx->set_output(0, std::move(out));
    return Status::OK();
  }
};
TFHPC_REGISTER_KERNEL_ALL("Concat", ConcatKernel);

// ---- Cast ----------------------------------------------------------------------

template <typename From, typename To>
void CastLoop(const Tensor& in, Tensor& out) {
  const auto src = in.data<From>();
  auto* dst = out.mutable_data<To>();
  for (size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<To>(src[i]);
  }
}

class CastKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    const Tensor& a = ctx->input(0);
    TFHPC_ASSIGN_OR_RETURN(DType to, ctx->node().AttrType("to"));
    // Same-dtype casts forward the input buffer outright (the shape/dtype
    // check inside ForwardOrAllocate only matches when to == a.dtype()).
    Tensor out;
    TFHPC_RETURN_IF_ERROR(ctx->ForwardOrAllocate({0}, to, a.shape(), &out));
    if (!ctx->meta_exec()) {
      const auto pair = std::make_pair(a.dtype(), to);
      if (pair == std::make_pair(DType::kF32, DType::kF64)) {
        CastLoop<float, double>(a, out);
      } else if (pair == std::make_pair(DType::kF64, DType::kF32)) {
        CastLoop<double, float>(a, out);
      } else if (pair == std::make_pair(DType::kI32, DType::kI64)) {
        CastLoop<int32_t, int64_t>(a, out);
      } else if (pair == std::make_pair(DType::kI64, DType::kI32)) {
        CastLoop<int64_t, int32_t>(a, out);
      } else if (pair == std::make_pair(DType::kI64, DType::kF64)) {
        CastLoop<int64_t, double>(a, out);
      } else if (pair == std::make_pair(DType::kF64, DType::kI64)) {
        CastLoop<double, int64_t>(a, out);
      } else if (pair == std::make_pair(DType::kI32, DType::kF32)) {
        CastLoop<int32_t, float>(a, out);
      } else if (a.dtype() == to) {
        if (out.raw_data() != a.raw_data()) {
          std::memcpy(out.raw_data(), a.raw_data(),
                      static_cast<size_t>(a.bytes()));
        }
      } else {
        return Unimplemented(std::string("Cast ") + DTypeName(a.dtype()) +
                             " -> " + DTypeName(to));
      }
    }
    ctx->set_output(0, std::move(out));
    return Status::OK();
  }
};
TFHPC_REGISTER_KERNEL_ALL("Cast", CastKernel);

// ---- Neg -----------------------------------------------------------------------

class NegKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    const Tensor& a = ctx->input(0);
    Tensor out;
    TFHPC_RETURN_IF_ERROR(ctx->ForwardOrAllocate({0}, a.dtype(), a.shape(), &out));
    if (!ctx->meta_exec()) {
      const int64_t n = a.num_elements();
      switch (a.dtype()) {
        case DType::kF32: {
          const auto s = a.data<float>();
          auto* d = out.mutable_data<float>();
          for (int64_t i = 0; i < n; ++i) d[i] = -s[static_cast<size_t>(i)];
          break;
        }
        case DType::kF64: {
          const auto s = a.data<double>();
          auto* d = out.mutable_data<double>();
          for (int64_t i = 0; i < n; ++i) d[i] = -s[static_cast<size_t>(i)];
          break;
        }
        case DType::kC128: {
          const auto s = a.data<std::complex<double>>();
          auto* d = out.mutable_data<std::complex<double>>();
          for (int64_t i = 0; i < n; ++i) d[i] = -s[static_cast<size_t>(i)];
          break;
        }
        default:
          return Unimplemented("Neg for dtype " +
                               std::string(DTypeName(a.dtype())));
      }
    }
    ctx->set_output(0, std::move(out));
    return Status::OK();
  }
};
TFHPC_REGISTER_KERNEL_ALL("Neg", NegKernel);

// ---- ReduceMax / ReduceMin / ReduceMean --------------------------------------------

enum class Agg { kMax, kMin, kMean };

class ReduceAggKernel : public OpKernel {
 public:
  explicit ReduceAggKernel(Agg agg) : agg_(agg) {}

  Status Compute(OpKernelContext* ctx) override {
    const Tensor& a = ctx->input(0);
    if (a.num_elements() == 0) {
      return InvalidArgument("reduction over empty tensor");
    }
    Tensor out;
    TFHPC_RETURN_IF_ERROR(
        ctx->AllocateOutput(a.dtype(), Shape{}, &out, ZeroInit::kNo));
    if (!ctx->meta_exec()) {
      if (a.dtype() == DType::kF64) {
        *out.mutable_data<double>() = Reduce<double>(a);
      } else if (a.dtype() == DType::kF32) {
        *out.mutable_data<float>() = Reduce<float>(a);
      } else {
        return Unimplemented("reduction for dtype " +
                             std::string(DTypeName(a.dtype())));
      }
    }
    ctx->set_output(0, std::move(out));
    return Status::OK();
  }

 private:
  template <typename T>
  T Reduce(const Tensor& a) const {
    const auto s = a.data<T>();
    if (agg_ == Agg::kMean) {
      double acc = 0;
      for (T v : s) acc += static_cast<double>(v);
      return static_cast<T>(acc / static_cast<double>(s.size()));
    }
    T best = s[0];
    for (T v : s) best = agg_ == Agg::kMax ? std::max(best, v) : std::min(best, v);
    return best;
  }

  Agg agg_;
};

class ReduceMaxKernel : public ReduceAggKernel {
 public:
  ReduceMaxKernel() : ReduceAggKernel(Agg::kMax) {}
};
class ReduceMinKernel : public ReduceAggKernel {
 public:
  ReduceMinKernel() : ReduceAggKernel(Agg::kMin) {}
};
class ReduceMeanKernel : public ReduceAggKernel {
 public:
  ReduceMeanKernel() : ReduceAggKernel(Agg::kMean) {}
};
TFHPC_REGISTER_KERNEL_ALL("ReduceMax", ReduceMaxKernel);
TFHPC_REGISTER_KERNEL_ALL("ReduceMin", ReduceMinKernel);
TFHPC_REGISTER_KERNEL_ALL("ReduceMean", ReduceMeanKernel);

// ---- Fill / ZerosLike ----------------------------------------------------------------

class FillKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    TFHPC_ASSIGN_OR_RETURN(DType dtype, ctx->node().AttrType("dtype"));
    TFHPC_ASSIGN_OR_RETURN(Shape shape, ctx->node().AttrShape("shape"));
    TFHPC_ASSIGN_OR_RETURN(double value, ctx->node().AttrFloat("value"));
    Tensor out;
    TFHPC_RETURN_IF_ERROR(
        ctx->AllocateOutput(dtype, std::move(shape), &out, ZeroInit::kNo));
    if (!ctx->meta_exec()) {
      const int64_t n = out.num_elements();
      if (dtype == DType::kF64) {
        auto* d = out.mutable_data<double>();
        for (int64_t i = 0; i < n; ++i) d[i] = value;
      } else if (dtype == DType::kF32) {
        auto* d = out.mutable_data<float>();
        for (int64_t i = 0; i < n; ++i) d[i] = static_cast<float>(value);
      } else {
        return Unimplemented("Fill for dtype " +
                             std::string(DTypeName(dtype)));
      }
    }
    ctx->set_output(0, std::move(out));
    return Status::OK();
  }
};
TFHPC_REGISTER_KERNEL_ALL("Fill", FillKernel);

class ZerosLikeKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    const Tensor& a = ctx->input(0);
    // AllocateOutput's default ZeroInit::kYes IS the kernel: pooled blocks
    // come back dirty, so ZerosLike must keep the explicit zeroing path.
    Tensor out;
    TFHPC_RETURN_IF_ERROR(ctx->AllocateOutput(a.dtype(), a.shape(), &out));
    ctx->set_output(0, std::move(out));
    return Status::OK();
  }
};
TFHPC_REGISTER_KERNEL_ALL("ZerosLike", ZerosLikeKernel);

}  // namespace
}  // namespace tfhpc
