// Protocol-Buffers wire-format primitives (proto3 subset): varints, zigzag,
// fixed-width words, and length-delimited fields with tags. TensorFlow
// serialises graphs, tensors and RPC envelopes with protobuf; tfhpc uses the
// same wire format so serialized artifacts have a well-defined, stable,
// self-skipping binary encoding.
//
// Wire types implemented: 0 (varint), 1 (64-bit), 2 (length-delimited),
// 5 (32-bit). Groups (3/4) are obsolete and rejected.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/status.h"

namespace tfhpc::wire {

enum class WireType : uint32_t {
  kVarint = 0,
  kFixed64 = 1,
  kLengthDelimited = 2,
  kFixed32 = 5,
};

inline uint32_t MakeTag(uint32_t field, WireType type) {
  return (field << 3) | static_cast<uint32_t>(type);
}

inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// Append-only encoder.
class CodedOutput {
 public:
  explicit CodedOutput(std::string* out) : out_(out) {}

  void WriteVarint(uint64_t v);
  void WriteTag(uint32_t field, WireType type) {
    WriteVarint(MakeTag(field, type));
  }
  void WriteFixed32(uint32_t v);
  void WriteFixed64(uint64_t v);

  // Tagged field writers.
  void WriteUInt64(uint32_t field, uint64_t v);
  void WriteInt64(uint32_t field, int64_t v) {
    WriteUInt64(field, static_cast<uint64_t>(v));
  }
  void WriteSInt64(uint32_t field, int64_t v) {
    WriteUInt64(field, ZigZagEncode(v));
  }
  void WriteBool(uint32_t field, bool v) { WriteUInt64(field, v ? 1 : 0); }
  void WriteDouble(uint32_t field, double v);
  void WriteFloat(uint32_t field, float v);
  void WriteString(uint32_t field, const std::string& v);
  void WriteBytes(uint32_t field, const void* data, size_t size);
  // Nested message: serialize into a scratch string, emit length-delimited.
  void WriteMessage(uint32_t field, const std::string& serialized) {
    WriteBytes(field, serialized.data(), serialized.size());
  }

  size_t size() const { return out_->size(); }

 private:
  std::string* out_;
};

// Bounds-checked decoder over a byte range.
class CodedInput {
 public:
  CodedInput(const void* data, size_t size)
      : p_(static_cast<const uint8_t*>(data)), end_(p_ + size) {}
  explicit CodedInput(const std::string& s) : CodedInput(s.data(), s.size()) {}

  bool AtEnd() const { return p_ == end_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  Status ReadVarint(uint64_t* v);
  Status ReadFixed32(uint32_t* v);
  Status ReadFixed64(uint64_t* v);
  // Reads a tag; returns field number and wire type.
  Status ReadTag(uint32_t* field, WireType* type);
  Status ReadDouble(double* v);
  Status ReadFloat(float* v);
  // Reads a length prefix and returns a view over the payload (no copy).
  Status ReadBytesView(const uint8_t** data, size_t* size);
  Status ReadString(std::string* v);
  // Skips one field of the given wire type (unknown-field tolerance).
  Status SkipField(WireType type);

 private:
  const uint8_t* p_;
  const uint8_t* end_;
};

}  // namespace tfhpc::wire
