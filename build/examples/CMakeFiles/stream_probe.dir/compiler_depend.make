# Empty compiler generated dependencies file for stream_probe.
# This may be replaced when dependencies are built.
