file(REMOVE_RECURSE
  "CMakeFiles/fig8_matmul.dir/fig8_matmul.cc.o"
  "CMakeFiles/fig8_matmul.dir/fig8_matmul.cc.o.d"
  "fig8_matmul"
  "fig8_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
