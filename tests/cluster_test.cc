// Tests for the Slurm cluster resolver: nodelist grammar, plane task
// distribution, GPU exposure masks, ClusterSpec generation (paper §III).
#include <gtest/gtest.h>

#include "cluster/slurm.h"

namespace tfhpc::cluster {
namespace {

// ---- Nodelist expansion ------------------------------------------------------

TEST(NodeListTest, SingleHost) {
  auto r = ExpandNodeList("t01n05");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"t01n05"}));
}

TEST(NodeListTest, CommaSeparatedHosts) {
  auto r = ExpandNodeList("alpha,beta,gamma");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[2], "gamma");
}

TEST(NodeListTest, SimpleRange) {
  auto r = ExpandNodeList("t01n[01-03]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"t01n01", "t01n02", "t01n03"}));
}

TEST(NodeListTest, ZeroPaddingPreserved) {
  auto r = ExpandNodeList("n[08-11]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"n08", "n09", "n10", "n11"}));
}

TEST(NodeListTest, PaddingGrowsPastWidth) {
  auto r = ExpandNodeList("n[098-101]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"n098", "n099", "n100", "n101"}));
}

TEST(NodeListTest, MixedRangesAndSingles) {
  auto r = ExpandNodeList("t01n[01-02,07],t02n09");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"t01n01", "t01n02", "t01n07",
                                          "t02n09"}));
}

TEST(NodeListTest, SuffixAfterBrackets) {
  auto r = ExpandNodeList("rack[1-2]-gpu");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"rack1-gpu", "rack2-gpu"}));
}

TEST(NodeListTest, SingleElementRange) {
  auto r = ExpandNodeList("n[5]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"n5"}));
}

TEST(NodeListTest, Errors) {
  EXPECT_FALSE(ExpandNodeList("").ok());
  EXPECT_FALSE(ExpandNodeList("n[1-").ok());
  EXPECT_FALSE(ExpandNodeList("n1]").ok());
  EXPECT_FALSE(ExpandNodeList("n[]").ok());
  EXPECT_FALSE(ExpandNodeList("n[3-1]").ok());       // descending
  EXPECT_FALSE(ExpandNodeList("n[a-b]").ok());       // non-numeric
  EXPECT_FALSE(ExpandNodeList("n[1-2][3-4]").ok());  // multiple groups
}

// ---- Resolver -------------------------------------------------------------------

TEST(SlurmResolverTest, PaperStreamLayout) {
  // The paper's STREAM: ps on one node, worker on the other (Listing 2).
  SlurmClusterResolver resolver({{"ps", 1}, {"worker", 1}}, "t01n[01-02]",
                                /*tasks_per_node=*/1, /*gpus_per_node=*/1);
  auto spec = resolver.ClusterSpec();
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->jobs.size(), 2u);
  EXPECT_EQ(spec->jobs[0].name, "ps");
  EXPECT_EQ(spec->jobs[0].task_addrs[0], "t01n01:8888");
  EXPECT_EQ(spec->jobs[1].task_addrs[0], "t01n02:8888");
}

TEST(SlurmResolverTest, PlaneDistributionFillsNodeFirst) {
  SlurmClusterResolver resolver({{"worker", 4}}, "a,b",
                                /*tasks_per_node=*/2, /*gpus_per_node=*/2);
  auto assignments = resolver.Assignments();
  ASSERT_TRUE(assignments.ok());
  ASSERT_EQ(assignments->size(), 4u);
  EXPECT_EQ((*assignments)[0].host, "a");
  EXPECT_EQ((*assignments)[1].host, "a");
  EXPECT_EQ((*assignments)[2].host, "b");
  EXPECT_EQ((*assignments)[3].host, "b");
  // Distinct ports for co-located tasks.
  EXPECT_NE((*assignments)[0].port, (*assignments)[1].port);
}

TEST(SlurmResolverTest, GpuMasksSplitEvenly) {
  // Kebnekaise K80 layout: 4 tasks per node, 4 engines per node.
  SlurmClusterResolver resolver({{"worker", 4}}, "kn01",
                                /*tasks_per_node=*/4, /*gpus_per_node=*/4);
  auto assignments = resolver.Assignments();
  ASSERT_TRUE(assignments.ok());
  for (int t = 0; t < 4; ++t) {
    const auto& a = (*assignments)[static_cast<size_t>(t)];
    ASSERT_EQ(a.visible_gpus.size(), 1u) << t;
    EXPECT_EQ(a.visible_gpus[0], t);
  }
}

TEST(SlurmResolverTest, GpuRemainderGoesToEarlierSlots) {
  SlurmClusterResolver resolver({{"worker", 2}}, "host",
                                /*tasks_per_node=*/2, /*gpus_per_node=*/3);
  auto assignments = resolver.Assignments();
  ASSERT_TRUE(assignments.ok());
  EXPECT_EQ((*assignments)[0].visible_gpus,
            (std::vector<int>{0, 1}));
  EXPECT_EQ((*assignments)[1].visible_gpus, (std::vector<int>{2}));
}

TEST(SlurmResolverTest, MultiJobSpansNodes) {
  SlurmClusterResolver resolver({{"ps", 1}, {"worker", 3}}, "n[1-2]",
                                /*tasks_per_node=*/2, /*gpus_per_node=*/2);
  auto assignments = resolver.Assignments();
  ASSERT_TRUE(assignments.ok());
  // slot 0: ps on n1; slots 1-3: workers on n1 (1) and n2 (2).
  EXPECT_EQ((*assignments)[0].job, "ps");
  EXPECT_EQ((*assignments)[0].host, "n1");
  EXPECT_EQ((*assignments)[1].job, "worker");
  EXPECT_EQ((*assignments)[1].host, "n1");
  EXPECT_EQ((*assignments)[2].host, "n2");
  EXPECT_EQ((*assignments)[3].host, "n2");
  // task indices are per job.
  EXPECT_EQ((*assignments)[1].task_index, 0);
  EXPECT_EQ((*assignments)[3].task_index, 2);
}

TEST(SlurmResolverTest, OverSubscriptionRejected) {
  SlurmClusterResolver resolver({{"worker", 5}}, "n[1-2]",
                                /*tasks_per_node=*/2, /*gpus_per_node=*/1);
  EXPECT_EQ(resolver.Assignments().status().code(), Code::kResourceExhausted);
}

TEST(SlurmResolverTest, BadSpecsRejected) {
  EXPECT_FALSE(SlurmClusterResolver({{"", 1}}, "n1", 1, 1).Assignments().ok());
  EXPECT_FALSE(
      SlurmClusterResolver({{"w", 0}}, "n1", 1, 1).Assignments().ok());
  EXPECT_FALSE(
      SlurmClusterResolver({{"w", 1}}, "n1", 0, 1).Assignments().ok());
  EXPECT_FALSE(
      SlurmClusterResolver({{"w", 1}}, "n[", 1, 1).Assignments().ok());
}

TEST(SlurmResolverTest, ClusterSpecRoundTripsThroughWire) {
  SlurmClusterResolver resolver({{"ps", 1}, {"worker", 2}}, "n[1-3]", 1, 2);
  auto spec = resolver.ClusterSpec();
  ASSERT_TRUE(spec.ok());
  auto parsed = wire::ClusterDef::Parse(spec->Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->jobs.size(), 2u);
  EXPECT_EQ(parsed->jobs[1].task_addrs.size(), 2u);
}

}  // namespace
}  // namespace tfhpc::cluster
