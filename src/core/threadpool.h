// A fixed-size work-stealing-free thread pool with a shared queue, plus a
// blocking ParallelFor used by the CPU kernels (GEMM, FFT, elementwise).
// Follows CppCoreGuidelines CP rules: joins all threads in the destructor,
// never detaches, and owns all synchronisation internally.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tfhpc {

class ThreadPool {
 public:
  // num_threads <= 0 means hardware_concurrency.
  explicit ThreadPool(int num_threads = 0, std::string name = "pool");
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Enqueue fn for asynchronous execution.
  void Schedule(std::function<void()> fn);

  // Runs fn(begin, end) over [0, total) split into chunks of at least
  // `grain` iterations; blocks until all chunks finish. Safe to call from
  // any thread, including pool workers: chunks are claimed from a shared
  // counter by pool helpers *and* the caller, so the caller always makes
  // progress (never parking on foreign queue entries — deadlock-free) and a
  // kernel running on a pool thread still fans out to idle workers.
  void ParallelFor(int64_t total, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  // Process-wide pool for kernel-internal parallelism.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::string name_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace tfhpc
