// Tiled matrix-matrix multiplication (paper §IV, Fig. 4): matrices too
// large for one GPU are pre-tiled into .npy files; a shared dataset hands
// (i, j, k) products to workers, workers load tiles, multiply on GPU and
// push result tiles into the FIFO queues of parity-partitioned reducers,
// which accumulate into the output matrix — a map-reduce over tiles shaped
// like an ML input pipeline.
#pragma once

#include <string>

#include "distrib/client.h"
#include "io/tile_store.h"
#include "sim/machine.h"

namespace tfhpc::apps {

struct TiledMatmulOptions {
  int64_t n = 0;          // matrix dimension (N x N)
  int64_t tile = 0;       // tile dimension
  int num_workers = 2;    // GPUs in simulation; worker tasks functionally
  int num_reducers = 2;   // the paper fixes 2 (odd/even target parity)
  // Optional tf.data-style shuffle of the product list (functional mode);
  // 0 = paper order (i, j, k). Shuffling spreads reducer load over time.
  uint64_t shuffle_seed = 0;
};

struct TiledMatmulResult {
  double seconds = 0;
  double gflops = 0;  // paper flop model: 2N^3 - N^2
};

// Virtual-time run at paper scale on a machine model.
Result<TiledMatmulResult> SimulateTiledMatmul(const sim::MachineConfig& cfg,
                                              sim::Protocol protocol,
                                              const TiledMatmulOptions& options);

// Real run: generates random A, B, tiles them into `work_dir`, executes the
// distributed map-reduce with one server per worker plus reducer servers,
// reassembles C and (for verify_dense) checks against a direct GEMM.
// Returns the wall-clock result.
Result<TiledMatmulResult> RunTiledMatmulFunctional(
    const TiledMatmulOptions& options, const std::string& work_dir,
    distrib::WireProtocol protocol, bool verify_dense = true);

}  // namespace tfhpc::apps
