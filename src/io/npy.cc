#include "io/npy.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace tfhpc::io {
namespace {

constexpr char kMagic[] = "\x93NUMPY";

const char* DescrFor(DType dtype) {
  switch (dtype) {
    case DType::kF32: return "<f4";
    case DType::kF64: return "<f8";
    case DType::kC64: return "<c8";
    case DType::kC128: return "<c16";
    case DType::kI32: return "<i4";
    case DType::kI64: return "<i8";
    case DType::kU8: return "|u1";
    case DType::kBool: return "|b1";
    default: return nullptr;
  }
}

DType DTypeForDescr(const std::string& descr) {
  if (descr == "<f4") return DType::kF32;
  if (descr == "<f8") return DType::kF64;
  if (descr == "<c8") return DType::kC64;
  if (descr == "<c16") return DType::kC128;
  if (descr == "<i4") return DType::kI32;
  if (descr == "<i8") return DType::kI64;
  if (descr == "|u1") return DType::kU8;
  if (descr == "|b1") return DType::kBool;
  return DType::kInvalid;
}

// Extracts the value of a python-dict-literal key like 'descr': '<f4'.
// Returns the raw token (quotes stripped for strings).
Result<std::string> DictValue(const std::string& header, const std::string& key) {
  const std::string needle = "'" + key + "':";
  const size_t kpos = header.find(needle);
  if (kpos == std::string::npos) return InvalidArgument("npy: missing key " + key);
  size_t p = kpos + needle.size();
  while (p < header.size() && header[p] == ' ') ++p;
  if (p >= header.size()) return InvalidArgument("npy: truncated header");
  if (header[p] == '\'') {
    const size_t end = header.find('\'', p + 1);
    if (end == std::string::npos) return InvalidArgument("npy: bad string value");
    return header.substr(p + 1, end - p - 1);
  }
  if (header[p] == '(') {
    const size_t end = header.find(')', p);
    if (end == std::string::npos) return InvalidArgument("npy: bad tuple value");
    return header.substr(p, end - p + 1);
  }
  // bareword (True/False)
  size_t end = p;
  while (end < header.size() && header[end] != ',' && header[end] != '}') ++end;
  std::string v = header.substr(p, end - p);
  while (!v.empty() && v.back() == ' ') v.pop_back();
  return v;
}

Result<std::vector<int64_t>> ParseShapeTuple(const std::string& tup) {
  // tup looks like "(3, 4)" or "(5,)" or "()".
  std::vector<int64_t> dims;
  std::string inner = tup.substr(1, tup.size() - 2);
  std::istringstream is(inner);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    // strip spaces
    size_t b = tok.find_first_not_of(' ');
    if (b == std::string::npos) continue;
    size_t e = tok.find_last_not_of(' ');
    try {
      dims.push_back(std::stoll(tok.substr(b, e - b + 1)));
    } catch (...) {
      return InvalidArgument("npy: bad shape tuple " + tup);
    }
  }
  return dims;
}

}  // namespace

std::string EncodeNpy(const Tensor& t) {
  TFHPC_CHECK(!t.is_meta()) << "cannot encode meta tensor as npy";
  const char* descr = DescrFor(t.dtype());
  TFHPC_CHECK(descr != nullptr) << "npy: unsupported dtype "
                                << DTypeName(t.dtype());
  std::ostringstream hd;
  hd << "{'descr': '" << descr << "', 'fortran_order': False, 'shape': (";
  for (int i = 0; i < t.shape().rank(); ++i) {
    hd << t.shape().dim(i);
    if (t.shape().rank() == 1 || i + 1 < t.shape().rank()) hd << ",";
    if (i + 1 < t.shape().rank()) hd << " ";
  }
  hd << "), }";
  std::string header = hd.str();
  // Total header block (magic 6 + version 2 + len 2 + dict) padded to 64.
  const size_t base = 6 + 2 + 2;
  size_t total = base + header.size() + 1;  // +1 for trailing '\n'
  const size_t padded = (total + 63) / 64 * 64;
  header.append(padded - total, ' ');
  header.push_back('\n');

  std::string out;
  out.reserve(padded + static_cast<size_t>(t.bytes()));
  out.append(kMagic, 6);
  out.push_back('\x01');
  out.push_back('\x00');
  const uint16_t hlen = static_cast<uint16_t>(header.size());
  out.push_back(static_cast<char>(hlen & 0xFF));
  out.push_back(static_cast<char>(hlen >> 8));
  out.append(header);
  if (t.bytes() > 0) {
    out.append(static_cast<const char*>(t.raw_data()),
               static_cast<size_t>(t.bytes()));
  }
  return out;
}

Result<Tensor> DecodeNpy(const std::string& bytes) {
  if (bytes.size() < 10 || std::memcmp(bytes.data(), kMagic, 6) != 0) {
    return InvalidArgument("npy: bad magic");
  }
  const uint8_t major = static_cast<uint8_t>(bytes[6]);
  size_t header_len = 0;
  size_t header_off = 0;
  if (major == 1) {
    header_len = static_cast<uint8_t>(bytes[8]) |
                 (static_cast<size_t>(static_cast<uint8_t>(bytes[9])) << 8);
    header_off = 10;
  } else if (major == 2) {
    if (bytes.size() < 12) return InvalidArgument("npy: truncated v2 header");
    header_len = 0;
    for (int i = 0; i < 4; ++i) {
      header_len |= static_cast<size_t>(static_cast<uint8_t>(bytes[8 + i]))
                    << (8 * i);
    }
    header_off = 12;
  } else {
    return InvalidArgument("npy: unsupported version " + std::to_string(major));
  }
  if (bytes.size() < header_off + header_len) {
    return InvalidArgument("npy: truncated header");
  }
  const std::string header = bytes.substr(header_off, header_len);

  TFHPC_ASSIGN_OR_RETURN(std::string descr, DictValue(header, "descr"));
  TFHPC_ASSIGN_OR_RETURN(std::string forder, DictValue(header, "fortran_order"));
  TFHPC_ASSIGN_OR_RETURN(std::string shape_tok, DictValue(header, "shape"));
  if (forder != "False") {
    return Unimplemented("npy: fortran_order arrays not supported");
  }
  const DType dtype = DTypeForDescr(descr);
  if (dtype == DType::kInvalid) {
    return Unimplemented("npy: unsupported descr " + descr);
  }
  TFHPC_ASSIGN_OR_RETURN(std::vector<int64_t> dims, ParseShapeTuple(shape_tok));

  Tensor t(dtype, Shape(std::move(dims)));
  const size_t data_off = header_off + header_len;
  if (bytes.size() - data_off < static_cast<size_t>(t.bytes())) {
    return InvalidArgument("npy: truncated data section");
  }
  if (t.bytes() > 0) {
    std::memcpy(t.raw_data(), bytes.data() + data_off,
                static_cast<size_t>(t.bytes()));
  }
  return t;
}

Status SaveNpy(const std::string& path, const Tensor& t) {
  if (t.is_meta() || !t.valid()) {
    return InvalidArgument("SaveNpy: tensor has no data");
  }
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Unavailable("SaveNpy: cannot open " + path);
  const std::string enc = EncodeNpy(t);
  f.write(enc.data(), static_cast<std::streamsize>(enc.size()));
  if (!f) return Unavailable("SaveNpy: write failed for " + path);
  return Status::OK();
}

Result<Tensor> LoadNpy(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return NotFound("LoadNpy: cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return DecodeNpy(ss.str());
}

}  // namespace tfhpc::io
