// Ablation: how much of CG's scaling ceiling is client-side step overhead
// (the paper's §VIII: Python dispatch and the GIL "hamper performance of
// applications where logic is difficult to express in the computation
// graph")? Two halves:
//
//  1. Measured: per-step dispatch cost of this runtime's Session with the
//     compile-once executable cache on vs off. Repeat Runs of one signature
//     hit the cache and skip pruning/placement/kernel lookup; the uncached
//     baseline recompiles every step — the gap is the dispatch overhead the
//     cache removes.
//  2. Simulated: sweep the per-step overhead from zero (a native-runtime
//     ideal) to 4 ms (a congested Python client) on the V100 series and
//     watch CG's scaling ceiling move.
#include <chrono>
#include <cstdio>

#include "apps/cg.h"
#include "bench_util.h"
#include "graph/ops.h"
#include "runtime/session.h"

using namespace tfhpc;

namespace {

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Builds a CHAIN_DEPTH-deep Add chain over tiny tensors — all dispatch, no
// arithmetic to speak of — and returns per-step microseconds over `steps`
// repeat Runs of the same signature.
double MeasurePerStepUs(Session* session, const std::string& fetch,
                        int steps) {
  // Warm once so one-time costs (first compile, thread pool spin-up) don't
  // pollute the per-step average for either configuration.
  auto warm = session->Run({}, {fetch});
  if (!warm.ok()) {
    std::printf("warmup failed: %s\n", warm.status().ToString().c_str());
    return -1;
  }
  const double start = NowUs();
  for (int i = 0; i < steps; ++i) {
    auto r = session->Run({}, {fetch});
    if (!r.ok()) {
      std::printf("run failed: %s\n", r.status().ToString().c_str());
      return -1;
    }
  }
  return (NowUs() - start) / steps;
}

}  // namespace

int main() {
  bench::Header("Ablation — client step overhead vs CG scaling",
                "paper §VIII (Python dispatch limits latency-bound phases)");
  bench::JsonResults json("stepoverhead");

  // ---- Part 1: measured cached-vs-uncached dispatch cost -------------------
  constexpr int kChainDepth = 64;
  constexpr int kSteps = 200;
  LocalRuntime rt(/*num_gpus=*/0);
  Scope s = rt.root_scope();
  auto node = ops::Const(s, Tensor::FromVector(std::vector<double>{1, 2, 3, 4}));
  auto one = ops::Const(s, Tensor::FromVector(std::vector<double>{1, 1, 1, 1}));
  for (int i = 0; i < kChainDepth; ++i) node = ops::Add(s, node, one);

  auto cached = rt.NewSession();
  const double cached_us = MeasurePerStepUs(cached.get(), node.name(), kSteps);
  auto uncached = rt.NewSession();
  uncached->set_max_cached_executables(0);  // every Run recompiles
  const double uncached_us =
      MeasurePerStepUs(uncached.get(), node.name(), kSteps);
  if (cached_us < 0 || uncached_us < 0) return 1;

  std::printf("measured dispatch, %d-op chain, %d steps:\n", kChainDepth,
              kSteps);
  std::printf("  uncached (recompile every step): %8.1f us/step\n",
              uncached_us);
  std::printf("  cached   (compile-once)        : %8.1f us/step  (%.2fx)\n",
              cached_us, uncached_us / cached_us);
  std::printf("  executable cache: %lld hits / %lld misses\n",
              static_cast<long long>(cached->executable_cache_hits()),
              static_cast<long long>(cached->executable_cache_misses()));
  bench::Rule();
  json.Meta("chain_depth", static_cast<double>(kChainDepth))
      .Meta("steps", static_cast<double>(kSteps))
      .Record()
      .Str("config", "uncached")
      .Num("us_per_step", uncached_us);
  json.Record()
      .Str("config", "cached")
      .Num("us_per_step", cached_us)
      .Num("speedup", uncached_us / cached_us)
      .Num("cache_hits", static_cast<double>(cached->executable_cache_hits()))
      .Num("cache_misses",
           static_cast<double>(cached->executable_cache_misses()));

  // ---- Part 2: simulated CG scaling under swept client overhead ------------
  std::printf("%-16s | %9s %9s %9s | 2->4    4->8\n", "step overhead",
              "2 GPU", "4 GPU", "8 GPU");
  bench::Rule();
  for (double overhead : {0.0, 0.25e-3, 1e-3, 4e-3}) {
    sim::MachineConfig cfg = sim::KebnekaiseConfig(sim::GpuKind::kV100);
    cfg.step_overhead_s = overhead;
    double gflops[3];
    int idx = 0;
    for (int gpus : {2, 4, 8}) {
      apps::CgOptions opts;
      opts.n = 32768;
      opts.num_workers = gpus;
      opts.max_iterations = 100;
      auto r = apps::SimulateCg(cfg, sim::Protocol::kRdma, opts);
      if (!r.ok()) {
        std::printf("simulate failed: %s\n", r.status().ToString().c_str());
        return 1;
      }
      gflops[idx] = r->gflops;
      json.Record()
          .Str("config", "simulated_cg")
          .Num("step_overhead_ms", overhead * 1e3)
          .Num("gpus", gpus)
          .Num("gflops", r->gflops);
      ++idx;
    }
    std::printf("%13.2f ms | %9.1f %9.1f %9.1f | %.2fx   %.2fx\n",
                overhead * 1e3, gflops[0], gflops[1], gflops[2],
                gflops[1] / gflops[0], gflops[2] / gflops[1]);
  }
  bench::Rule();
  std::printf("(V100, N=32768, 100 iterations; zero overhead approaches "
              "linear scaling — the ceiling is the client, not the wire)\n");
  json.WriteFile("BENCH_stepoverhead.json");
  return 0;
}
