#include "analysis/shape_inference.h"

#include "core/dtype.h"
#include "graph/op_def.h"
#include "optimizer/fused_spec.h"

namespace tfhpc::analysis {

bool InferredShape::fully_known() const {
  if (!rank_known) return false;
  for (int64_t d : dims) {
    if (d < 0) return false;
  }
  return true;
}

std::string InferredShape::ToString() const {
  if (!rank_known) return "?";
  std::string out = "[";
  for (size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) out += ", ";
    out += dims[i] < 0 ? "?" : std::to_string(dims[i]);
  }
  out += "]";
  return out;
}

Result<InferredShape> MergeShapes(const InferredShape& a,
                                  const InferredShape& b) {
  if (!a.rank_known) return b;
  if (!b.rank_known) return a;
  if (a.dims.size() != b.dims.size()) {
    return InvalidArgument("[GC010] incompatible ranks: " + a.ToString() +
                           " vs " + b.ToString());
  }
  InferredShape merged = a;
  for (size_t i = 0; i < a.dims.size(); ++i) {
    if (a.dims[i] < 0) {
      merged.dims[i] = b.dims[i];
    } else if (b.dims[i] >= 0 && a.dims[i] != b.dims[i]) {
      return InvalidArgument("[GC010] incompatible shapes: " + a.ToString() +
                             " vs " + b.ToString());
    }
  }
  return merged;
}

// ---- InferenceContext -------------------------------------------------------

namespace {
Result<const wire::AttrValue*> FindAttr(const wire::NodeDef& def,
                                        const std::string& name,
                                        wire::AttrValue::Kind kind,
                                        const char* kind_name) {
  auto it = def.attrs.find(name);
  if (it == def.attrs.end() || it->second.kind != kind) {
    return InvalidArgument("[GC017] op " + def.op + " requires " + kind_name +
                           " attr '" + name + "'");
  }
  return &it->second;
}
}  // namespace

Result<DType> InferenceContext::TypeAttr(const std::string& name) const {
  TFHPC_ASSIGN_OR_RETURN(
      const wire::AttrValue* a,
      FindAttr(*def_, name, wire::AttrValue::Kind::kType, "type"));
  return a->type;
}
Result<Shape> InferenceContext::ShapeAttr(const std::string& name) const {
  TFHPC_ASSIGN_OR_RETURN(
      const wire::AttrValue* a,
      FindAttr(*def_, name, wire::AttrValue::Kind::kShape, "shape"));
  return a->shape;
}
Result<std::string> InferenceContext::StringAttr(const std::string& name) const {
  TFHPC_ASSIGN_OR_RETURN(
      const wire::AttrValue* a,
      FindAttr(*def_, name, wire::AttrValue::Kind::kString, "string"));
  return a->s;
}
Result<int64_t> InferenceContext::IntAttr(const std::string& name) const {
  TFHPC_ASSIGN_OR_RETURN(
      const wire::AttrValue* a,
      FindAttr(*def_, name, wire::AttrValue::Kind::kInt, "int"));
  return a->i;
}
Result<bool> InferenceContext::BoolAttr(const std::string& name) const {
  TFHPC_ASSIGN_OR_RETURN(
      const wire::AttrValue* a,
      FindAttr(*def_, name, wire::AttrValue::Kind::kBool, "bool"));
  return a->b;
}
Result<double> InferenceContext::FloatAttr(const std::string& name) const {
  TFHPC_ASSIGN_OR_RETURN(
      const wire::AttrValue* a,
      FindAttr(*def_, name, wire::AttrValue::Kind::kFloat, "float"));
  return a->f;
}

Status InferenceContext::DtypeError(const std::string& msg) const {
  return InvalidArgument("[GC009] " + msg);
}
Status InferenceContext::ShapeError(const std::string& msg) const {
  return InvalidArgument("[GC010] " + msg);
}
Status InferenceContext::AttrError(const std::string& msg) const {
  return InvalidArgument("[GC017] " + msg);
}

Result<DType> InferenceContext::MergeInputDtypes(int a, int b) const {
  const DType da = input(a).dtype;
  const DType db = input(b).dtype;
  if (da == DType::kInvalid) return db;
  if (db == DType::kInvalid) return da;
  if (da != db) {
    return DtypeError("operand dtypes differ: " + std::string(DTypeName(da)) +
                      " vs " + DTypeName(db));
  }
  return da;
}

// ---- built-in inference functions -------------------------------------------

namespace {

// Requires a known rank to equal `rank`; unknown rank passes.
Status RequireRank(InferenceContext& c, int input, int rank,
                   const char* what) {
  const InferredShape& s = c.input(input).shape;
  if (s.rank_known && s.rank() != rank) {
    return c.ShapeError(std::string(what) + " must have rank " +
                        std::to_string(rank) + ", got " + s.ToString());
  }
  return Status::OK();
}

Status ConstFn(InferenceContext& c) {
  auto it = c.def().attrs.find("value");
  if (it == c.def().attrs.end() ||
      it->second.kind != wire::AttrValue::Kind::kString) {
    return c.AttrError("Const requires a serialized-tensor 'value' attr");
  }
  Result<Tensor> t = wire::ParseTensor(it->second.s);
  if (!t.ok()) {
    return c.AttrError("Const 'value' attr does not parse as a tensor: " +
                       t.status().message());
  }
  c.set_output(0, t->dtype(), InferredShape::FromShape(t->shape()));
  return Status::OK();
}

// Placeholder: dtype/shape attrs are advisory (a fed node never runs its
// kernel), so missing attrs mean unknown, not an error.
Status PlaceholderFn(InferenceContext& c) {
  DType dtype = DType::kInvalid;
  InferredShape shape = InferredShape::Unknown();
  if (c.HasAttr("dtype")) {
    TFHPC_ASSIGN_OR_RETURN(dtype, c.TypeAttr("dtype"));
  }
  if (c.HasAttr("shape")) {
    TFHPC_ASSIGN_OR_RETURN(Shape s, c.ShapeAttr("shape"));
    shape = InferredShape::FromShape(s);
  }
  c.set_output(0, dtype, std::move(shape));
  return Status::OK();
}

// Variable/RandomUniform/Fill: the kernel reads dtype+shape attrs, so they
// are required.
Status AttrShapedFn(InferenceContext& c) {
  TFHPC_ASSIGN_OR_RETURN(DType dtype, c.TypeAttr("dtype"));
  TFHPC_ASSIGN_OR_RETURN(Shape shape, c.ShapeAttr("shape"));
  c.set_output(0, dtype, InferredShape::FromShape(shape));
  return Status::OK();
}

Status FillFn(InferenceContext& c) {
  TFHPC_RETURN_IF_ERROR(c.FloatAttr("value").status());
  return AttrShapedFn(c);
}

// Assign/AssignAdd: value passes through; the 'var' binding itself is
// checked by the verifier's lint pass (GC016), which sees the whole graph.
Status AssignFn(InferenceContext& c) {
  TFHPC_RETURN_IF_ERROR(c.StringAttr("var").status());
  c.set_output(0, c.input(0).dtype, c.input(0).shape);
  return Status::OK();
}

Status MatMulFn(InferenceContext& c) {
  TFHPC_RETURN_IF_ERROR(RequireRank(c, 0, 2, "MatMul lhs"));
  TFHPC_RETURN_IF_ERROR(RequireRank(c, 1, 2, "MatMul rhs"));
  TFHPC_ASSIGN_OR_RETURN(DType dtype, c.MergeInputDtypes(0, 1));
  const InferredShape& a = c.input(0).shape;
  const InferredShape& b = c.input(1).shape;
  int64_t m = -1, n = -1;
  if (a.rank_known) m = a.dims[0];
  if (b.rank_known) n = b.dims[1];
  if (a.rank_known && b.rank_known && a.dims[1] >= 0 && b.dims[0] >= 0 &&
      a.dims[1] != b.dims[0]) {
    return c.ShapeError("MatMul inner dims differ: " + a.ToString() + " x " +
                        b.ToString());
  }
  c.set_output(0, dtype, InferredShape::Of({m, n}));
  return Status::OK();
}

Status MatVecFn(InferenceContext& c) {
  TFHPC_RETURN_IF_ERROR(RequireRank(c, 0, 2, "MatVec matrix"));
  TFHPC_RETURN_IF_ERROR(RequireRank(c, 1, 1, "MatVec vector"));
  TFHPC_ASSIGN_OR_RETURN(DType dtype, c.MergeInputDtypes(0, 1));
  const InferredShape& m = c.input(0).shape;
  const InferredShape& v = c.input(1).shape;
  if (m.rank_known && v.rank_known && m.dims[1] >= 0 && v.dims[0] >= 0 &&
      m.dims[1] != v.dims[0]) {
    return c.ShapeError("MatVec shape mismatch: " + m.ToString() + " x " +
                        v.ToString());
  }
  c.set_output(0, dtype, InferredShape::Of({m.rank_known ? m.dims[0] : -1}));
  return Status::OK();
}

// Elementwise binary with scalar broadcast (the kernels' exact contract:
// shapes must be equal unless one side is scalar).
Status ElementwiseFn(InferenceContext& c) {
  TFHPC_ASSIGN_OR_RETURN(DType dtype, c.MergeInputDtypes(0, 1));
  const InferredShape& a = c.input(0).shape;
  const InferredShape& b = c.input(1).shape;
  const bool a_scalar = a.rank_known && a.rank() == 0;
  const bool b_scalar = b.rank_known && b.rank() == 0;
  if (a_scalar) {
    c.set_output(0, dtype, b);
    return Status::OK();
  }
  if (b_scalar) {
    c.set_output(0, dtype, a);
    return Status::OK();
  }
  if (a.rank_known && b.rank_known) {
    // Neither side is a scalar: shapes must unify exactly.
    TFHPC_ASSIGN_OR_RETURN(InferredShape out, MergeShapes(a, b));
    c.set_output(0, dtype, std::move(out));
    return Status::OK();
  }
  // One side of unknown rank: it may be the scalar, so the known side (or
  // nothing) is all we can say.
  c.set_output(0, dtype, a.rank_known ? a : b);
  return Status::OK();
}

Status DotFn(InferenceContext& c) {
  TFHPC_RETURN_IF_ERROR(RequireRank(c, 0, 1, "Dot lhs"));
  TFHPC_RETURN_IF_ERROR(RequireRank(c, 1, 1, "Dot rhs"));
  TFHPC_ASSIGN_OR_RETURN(DType dtype, c.MergeInputDtypes(0, 1));
  TFHPC_RETURN_IF_ERROR(
      MergeShapes(c.input(0).shape, c.input(1).shape).status());
  c.set_output(0, dtype, InferredShape::Scalar());
  return Status::OK();
}

Status ReduceFn(InferenceContext& c) {
  c.set_output(0, c.input(0).dtype, InferredShape::Scalar());
  return Status::OK();
}

Status PassthroughFn(InferenceContext& c) {
  c.set_output(0, c.input(0).dtype, c.input(0).shape);
  return Status::OK();
}

Status AxpyFn(InferenceContext& c) {
  TFHPC_RETURN_IF_ERROR(RequireRank(c, 0, 0, "Axpy alpha"));
  TFHPC_ASSIGN_OR_RETURN(DType dxy, c.MergeInputDtypes(1, 2));
  const DType dalpha = c.input(0).dtype;
  if (dalpha != DType::kInvalid && dxy != DType::kInvalid && dalpha != dxy) {
    return c.DtypeError("Axpy alpha dtype " + std::string(DTypeName(dalpha)) +
                        " differs from operands " + DTypeName(dxy));
  }
  TFHPC_ASSIGN_OR_RETURN(InferredShape out,
                         MergeShapes(c.input(1).shape, c.input(2).shape));
  c.set_output(0, dxy != DType::kInvalid ? dxy : dalpha, std::move(out));
  return Status::OK();
}

Status FftFn(InferenceContext& c) {
  TFHPC_RETURN_IF_ERROR(c.BoolAttr("inverse").status());
  TFHPC_RETURN_IF_ERROR(RequireRank(c, 0, 1, "FFT input"));
  const DType in = c.input(0).dtype;
  if (in != DType::kInvalid && in != DType::kC128) {
    return c.DtypeError("FFT requires complex128 input, got " +
                        std::string(DTypeName(in)));
  }
  c.set_output(0, DType::kC128, c.input(0).shape);
  return Status::OK();
}

Status CastFn(InferenceContext& c) {
  TFHPC_ASSIGN_OR_RETURN(DType to, c.TypeAttr("to"));
  c.set_output(0, to, c.input(0).shape);
  return Status::OK();
}

Status TransposeFn(InferenceContext& c) {
  TFHPC_RETURN_IF_ERROR(RequireRank(c, 0, 2, "Transpose input"));
  const InferredShape& a = c.input(0).shape;
  c.set_output(0, c.input(0).dtype,
               a.rank_known ? InferredShape::Of({a.dims[1], a.dims[0]})
                            : InferredShape::Unknown());
  return Status::OK();
}

Status SliceFn(InferenceContext& c) {
  TFHPC_ASSIGN_OR_RETURN(Shape begin, c.ShapeAttr("begin"));
  TFHPC_ASSIGN_OR_RETURN(Shape size, c.ShapeAttr("size"));
  const InferredShape& a = c.input(0).shape;
  if (begin.rank() != size.rank()) {
    return c.AttrError("Slice begin/size ranks differ");
  }
  if (a.rank_known) {
    if (a.rank() != size.rank()) {
      return c.ShapeError("Slice begin/size rank " +
                          std::to_string(size.rank()) +
                          " does not match input " + a.ToString());
    }
    for (int i = 0; i < a.rank(); ++i) {
      if (a.dims[static_cast<size_t>(i)] >= 0 &&
          begin.dim(i) + size.dim(i) > a.dims[static_cast<size_t>(i)]) {
        return c.ShapeError("Slice extent " + std::to_string(begin.dim(i)) +
                            "+" + std::to_string(size.dim(i)) +
                            " exceeds input dim " +
                            std::to_string(a.dims[static_cast<size_t>(i)]));
      }
    }
  }
  c.set_output(0, c.input(0).dtype, InferredShape::FromShape(size));
  return Status::OK();
}

Status ConcatFn(InferenceContext& c) {
  if (c.num_inputs() == 0) return c.ShapeError("Concat of nothing");
  DType dtype = DType::kInvalid;
  InferredShape tail = InferredShape::Unknown();  // dims past axis 0
  int64_t dim0 = 0;
  bool dim0_known = true;
  for (int i = 0; i < c.num_inputs(); ++i) {
    const InferredTensor& in = c.input(i);
    if (in.dtype != DType::kInvalid) {
      if (dtype != DType::kInvalid && dtype != in.dtype) {
        return c.DtypeError("Concat operand dtypes differ");
      }
      dtype = in.dtype;
    }
    if (!in.shape.rank_known) {
      dim0_known = false;
      continue;
    }
    if (in.shape.rank() == 0) {
      return c.ShapeError("Concat operand is a scalar");
    }
    InferredShape rest = in.shape;
    rest.dims[0] = -1;
    TFHPC_ASSIGN_OR_RETURN(tail, MergeShapes(tail, rest));
    if (in.shape.dims[0] < 0) {
      dim0_known = false;
    } else if (dim0_known) {
      dim0 += in.shape.dims[0];
    }
  }
  if (!tail.rank_known) {
    c.set_output(0, dtype, InferredShape::Unknown());
    return Status::OK();
  }
  InferredShape out = tail;
  out.dims[0] = dim0_known ? dim0 : -1;
  c.set_output(0, dtype, std::move(out));
  return Status::OK();
}

Status QueueEnqueueFn(InferenceContext& c) {
  return c.StringAttr("queue").status();
}

// QueueDequeue may declare what it expects via optional dtype/shape attrs;
// the queue-protocol lint (GC014) cross-checks declarations against what
// enqueues provably push.
Status QueueDequeueFn(InferenceContext& c) {
  TFHPC_RETURN_IF_ERROR(c.StringAttr("queue").status());
  DType dtype = DType::kInvalid;
  InferredShape shape = InferredShape::Unknown();
  if (c.HasAttr("dtype")) {
    TFHPC_ASSIGN_OR_RETURN(dtype, c.TypeAttr("dtype"));
  }
  if (c.HasAttr("shape")) {
    TFHPC_ASSIGN_OR_RETURN(Shape s, c.ShapeAttr("shape"));
    shape = InferredShape::FromShape(s);
  }
  c.set_output(0, dtype, std::move(shape));
  return Status::OK();
}

Status SendFn(InferenceContext& c) { return c.StringAttr("key").status(); }

// _PackedSend: one '\x1f'-separated rendezvous key per input.
Status PackedSendFn(InferenceContext& c) {
  TFHPC_ASSIGN_OR_RETURN(std::string keys, c.StringAttr("keys"));
  int num_keys = keys.empty() ? 0 : 1;
  for (char ch : keys) {
    if (ch == '\x1f') ++num_keys;
  }
  if (num_keys != c.num_inputs()) {
    return c.AttrError("'keys' lists " + std::to_string(num_keys) +
                       " rendezvous keys for " +
                       std::to_string(c.num_inputs()) + " inputs");
  }
  return Status::OK();
}

Status RecvFn(InferenceContext& c) {
  TFHPC_RETURN_IF_ERROR(c.StringAttr("key").status());
  c.set_output(0, DType::kInvalid, InferredShape::Unknown());
  return Status::OK();
}

Status NoOpFn(InferenceContext&) { return Status::OK(); }

// FusedElementwise: replay the chain's stage spec over inferred facts, using
// the same merge rules the constituent ops' functions apply (elementwise
// scalar broadcast, Axpy scalar alpha, Cast dtype from its to_<k> attr).
Status FusedElementwiseFn(InferenceContext& c) {
  auto stages = optimizer::ParseFusedStages(c.def(), c.num_inputs());
  if (!stages.ok()) return c.AttrError(stages.status().message());

  std::vector<InferredTensor> results;
  results.reserve(stages->size());
  for (size_t k = 0; k < stages->size(); ++k) {
    const optimizer::FusedStage& st = (*stages)[k];
    auto opnd = [&](int r) -> const InferredTensor& {
      return r == optimizer::FusedStage::kPrev ? results[k - 1] : c.input(r);
    };
    auto merge_dtypes = [&](const InferredTensor& a,
                            const InferredTensor& b) -> Result<DType> {
      if (a.dtype != DType::kInvalid && b.dtype != DType::kInvalid &&
          a.dtype != b.dtype) {
        return c.DtypeError("fused " + st.op + " stage " + std::to_string(k) +
                            " dtype mismatch: " +
                            std::string(DTypeName(a.dtype)) + " vs " +
                            DTypeName(b.dtype));
      }
      return a.dtype != DType::kInvalid ? a.dtype : b.dtype;
    };

    InferredTensor out;
    if (st.op == "Add" || st.op == "Sub" || st.op == "Mul" || st.op == "Div") {
      const InferredTensor& a = opnd(st.operands[0]);
      const InferredTensor& b = opnd(st.operands[1]);
      TFHPC_ASSIGN_OR_RETURN(out.dtype, merge_dtypes(a, b));
      const bool a_scalar = a.shape.rank_known && a.shape.rank() == 0;
      const bool b_scalar = b.shape.rank_known && b.shape.rank() == 0;
      if (a_scalar) {
        out.shape = b.shape;
      } else if (b_scalar) {
        out.shape = a.shape;
      } else if (a.shape.rank_known && b.shape.rank_known) {
        TFHPC_ASSIGN_OR_RETURN(out.shape, MergeShapes(a.shape, b.shape));
      } else {
        out.shape = a.shape.rank_known ? a.shape : b.shape;
      }
    } else if (st.op == "Axpy") {
      const InferredTensor& alpha = opnd(st.operands[0]);
      const InferredTensor& x = opnd(st.operands[1]);
      const InferredTensor& y = opnd(st.operands[2]);
      if (alpha.shape.rank_known && alpha.shape.rank() != 0) {
        return c.ShapeError("fused Axpy stage " + std::to_string(k) +
                            " alpha must be scalar, got " +
                            alpha.shape.ToString());
      }
      TFHPC_ASSIGN_OR_RETURN(out.dtype, merge_dtypes(x, y));
      TFHPC_ASSIGN_OR_RETURN(DType merged,
                             merge_dtypes(alpha, InferredTensor{out.dtype, {}}));
      if (out.dtype == DType::kInvalid) out.dtype = merged;
      TFHPC_ASSIGN_OR_RETURN(out.shape, MergeShapes(x.shape, y.shape));
    } else if (st.op == "Cast") {
      out.dtype = st.cast_to;
      out.shape = opnd(st.operands[0]).shape;
    } else if (st.op == "Dot") {
      // Trailing inner-product stage: two equal-length vectors -> scalar
      // (mirrors DotFn; ParseFusedStages pins it to the final stage).
      const InferredTensor& a = opnd(st.operands[0]);
      const InferredTensor& b = opnd(st.operands[1]);
      TFHPC_ASSIGN_OR_RETURN(out.dtype, merge_dtypes(a, b));
      if (a.shape.rank_known && a.shape.rank() != 1) {
        return c.ShapeError("fused Dot stage " + std::to_string(k) +
                            " requires vectors, got " + a.shape.ToString());
      }
      if (b.shape.rank_known && b.shape.rank() != 1) {
        return c.ShapeError("fused Dot stage " + std::to_string(k) +
                            " requires vectors, got " + b.shape.ToString());
      }
      if (a.shape.rank_known && b.shape.rank_known) {
        TFHPC_RETURN_IF_ERROR(MergeShapes(a.shape, b.shape).status());
      }
      out.shape = InferredShape::Scalar();
    } else if (st.op == "ReduceSum") {
      out.dtype = opnd(st.operands[0]).dtype;
      out.shape = InferredShape::Scalar();
    } else {  // Sqrt / Neg
      out = opnd(st.operands[0]);
    }
    results.push_back(std::move(out));
  }
  c.set_output(0, results.back().dtype, std::move(results.back().shape));
  return Status::OK();
}

}  // namespace

ShapeFnRegistry::ShapeFnRegistry() {
  Register("Const", ConstFn);
  Register("Placeholder", PlaceholderFn);
  Register("Variable", AttrShapedFn);
  Register("RandomUniform", AttrShapedFn);
  Register("Fill", FillFn);
  Register("Assign", AssignFn);
  Register("AssignAdd", AssignFn);
  Register("MatMul", MatMulFn);
  Register("MatVec", MatVecFn);
  Register("Add", ElementwiseFn);
  Register("Sub", ElementwiseFn);
  Register("Mul", ElementwiseFn);
  Register("Div", ElementwiseFn);
  Register("Dot", DotFn);
  Register("ReduceSum", ReduceFn);
  Register("ReduceMax", ReduceFn);
  Register("ReduceMin", ReduceFn);
  Register("ReduceMean", ReduceFn);
  Register("Sqrt", PassthroughFn);
  Register("Neg", PassthroughFn);
  Register("Identity", PassthroughFn);
  Register("ZerosLike", PassthroughFn);
  Register("Axpy", AxpyFn);
  Register("FFT", FftFn);
  Register("Cast", CastFn);
  Register("Transpose", TransposeFn);
  Register("Slice", SliceFn);
  Register("Concat", ConcatFn);
  Register("FusedElementwise", FusedElementwiseFn);
  Register("QueueEnqueue", QueueEnqueueFn);
  Register("QueueDequeue", QueueDequeueFn);
  Register("_Send", SendFn);
  Register("_PackedSend", PackedSendFn);
  Register("_Recv", RecvFn);
  Register("NoOp", NoOpFn);
  // Deliberately-dynamic allowlist: currently empty — every built-in op has
  // an inference fn (unknowns still flow through them as unknown outputs,
  // e.g. _Recv without a matched send, QueueDequeue with an untyped queue).
  // An op whose output extents truly depend on runtime values goes here,
  // with a comment saying why, instead of silently lacking a fn.
}

ShapeFnRegistry& ShapeFnRegistry::Global() {
  static ShapeFnRegistry* registry = new ShapeFnRegistry();
  return *registry;
}

void ShapeFnRegistry::Register(const std::string& op, ShapeFn fn) {
  fns_[op] = std::move(fn);
}

const ShapeFn* ShapeFnRegistry::Lookup(const std::string& op) const {
  auto it = fns_.find(op);
  return it == fns_.end() ? nullptr : &it->second;
}

void ShapeFnRegistry::MarkDynamic(const std::string& op) {
  dynamic_ops_.insert(op);
}

bool ShapeFnRegistry::IsDynamic(const std::string& op) const {
  return dynamic_ops_.count(op) > 0;
}

std::vector<std::string> ShapeFnRegistry::UncoveredOps() const {
  std::vector<std::string> uncovered;
  for (const std::string& op : OpRegistry::Global().OpNames()) {
    if (Lookup(op) == nullptr && !IsDynamic(op)) uncovered.push_back(op);
  }
  return uncovered;
}

}  // namespace tfhpc::analysis
