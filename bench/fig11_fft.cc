// Reproduces Fig. 11: distributed FFT strong scaling (Gflops/s) on Tegner —
// K420: N = 2^29 in 64 tiles; K80: N = 2^31 in 128 tiles; one merger plus
// 2/4/8 GPUs; the timed region ends when the merger has collected all tiles
// (the serial host-side merge is excluded, as in the paper). A functional
// pass verifies the distributed FFT against a single full-length transform.
#include <cstdio>
#include <filesystem>
#include <vector>

#include "apps/fft.h"
#include "bench_util.h"

using namespace tfhpc;

int main() {
  bench::Header(
      "Fig. 11 — distributed FFT strong scaling",
      "paper Fig. 11 (1.6-1.8x going 2->4 GPUs; flattens 4->8 as tiles/GPU "
      "shrink and the single merger saturates)");

  // Functional validation at reduced scale.
  {
    const std::string dir =
        (std::filesystem::temp_directory_path() / "fig11_func").string();
    std::filesystem::remove_all(dir);
    apps::FftOptions opts;
    opts.signal_size = 1 << 12;
    opts.num_tiles = 8;
    opts.num_workers = 2;
    auto r = apps::RunFftFunctional(opts, dir, 3, distrib::WireProtocol::kRdma);
    std::filesystem::remove_all(dir);
    if (!r.ok()) {
      std::printf("functional FFT failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("functional distributed FFT verified against full-length "
                "transform (merge excluded from timing: %.3fs)\n\n",
                r->merge_seconds);
  }

  struct Series {
    const char* label;
    sim::MachineConfig cfg;
    int64_t signal;
    int64_t tiles;
  };
  const std::vector<Series> series = {
      {"Tegner K420 (N=2^29, 64 tiles)", sim::TegnerConfig(sim::GpuKind::kK420),
       int64_t{1} << 29, 64},
      {"Tegner K80 (N=2^31, 128 tiles)", sim::TegnerConfig(sim::GpuKind::kK80),
       int64_t{1} << 31, 128},
  };

  std::printf("%-34s | %9s %9s %9s | speedups\n", "configuration", "1+2",
              "1+4", "1+8");
  bench::Rule();
  for (const Series& s : series) {
    double gflops[3] = {0, 0, 0};
    int idx = 0;
    for (int gpus : {2, 4, 8}) {
      apps::FftOptions opts;
      opts.signal_size = s.signal;
      opts.num_tiles = s.tiles;
      opts.num_workers = gpus;
      auto r = apps::SimulateFft(s.cfg, sim::Protocol::kRdma, opts);
      if (!r.ok()) {
        std::printf("simulate failed: %s\n", r.status().ToString().c_str());
        return 1;
      }
      gflops[idx++] = r->gflops;
    }
    std::printf("%-34s | %9.1f %9.1f %9.1f | %.2fx %.2fx\n", s.label,
                gflops[0], gflops[1], gflops[2], gflops[1] / gflops[0],
                gflops[2] / gflops[1]);
  }
  bench::Rule();
  std::printf("(axis labels as in the paper: mergers + GPUs; Gflops/s = "
              "5 N log2 N / time-to-collect)\n");
  return 0;
}
