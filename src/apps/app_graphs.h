// The dataflow graphs of the paper's four applications, extracted into
// standalone builders so the apps (src/apps/*.cc) and the static-analysis
// tests verify the exact same structures. Each builder appends its nodes to
// the Scope's graph and returns the node/tensor names the caller feeds and
// fetches.
#pragma once

#include <cstdint>
#include <string>

#include "graph/ops.h"

namespace tfhpc::apps {

// STREAM-style push kernel (paper Listing 2): a device-resident accumulator
// updated in place from a fed source vector, acc += src.
struct StreamGraph {
  std::string acc;       // Variable node
  std::string src;       // Placeholder (feed)
  std::string init;      // Assign target: loads the accumulator
  std::string add;       // AssignAdd target: one timed STREAM update
};
StreamGraph BuildStreamPushGraph(const Scope& scope, int64_t elements);

// Tiled-matmul worker: c = a @ b over one (t x t) tile pair.
struct TiledMatmulGraph {
  std::string a;       // Placeholder (feed)
  std::string b;       // Placeholder (feed)
  std::string product; // MatMul fetch
};
TiledMatmulGraph BuildTiledMatmulGraph(const Scope& scope, int64_t tile);

// CG worker loop body: the A row block lives in a variable (loaded once via
// `a_init`; the paper's data-locality workaround for the 2 GB GraphDef
// limit), loop state is fed per step.
struct CgWorkerGraph {
  std::string a_var;   // Variable holding this worker's row block
  std::string a_feed;  // Placeholder (feed, load once)
  std::string a_init;  // Assign target
  std::string p;       // Placeholder (feed)
  std::string ap;      // MatVec fetch: A_block * p
  std::string u, v;    // Placeholders (feed)
  std::string dot;     // Dot fetch: u . v
  std::string alpha;   // Placeholder (feed)
  std::string ax, ay;  // Placeholders (feed)
  std::string axpy;    // Axpy fetch: alpha * ax + ay
};
CgWorkerGraph BuildCgWorkerGraph(const Scope& scope, int64_t rows, int64_t n);

// FFT worker: spectrum of one fed length-m complex tile.
struct FftWorkerGraph {
  std::string x;         // Placeholder (feed)
  std::string spectrum;  // FFT fetch
};
FftWorkerGraph BuildFftWorkerGraph(const Scope& scope, int64_t m);

}  // namespace tfhpc::apps
