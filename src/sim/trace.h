// Logical trace replay: schedules a DAG of compute / transfer / disk ops
// onto device timelines and the fair-share flow network, producing virtual
// start/finish times and the makespan. The application drivers emit these
// traces while running the real (or meta) execution; benchmarks report the
// replayed virtual time, never host wall-clock.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/status.h"
#include "sim/network.h"

namespace tfhpc::sim {

using OpId = int;

struct SimOp {
  enum class Kind { kCompute, kTransfer, kDelay };
  Kind kind = Kind::kCompute;
  std::string label;

  // kCompute: runs exclusively on `device` (serialized per device), duration
  // precomputed by the caller's roofline model.
  std::string device;
  double duration_s = 0;

  // kTransfer: occupies `path`, moving `bytes` with fair sharing.
  std::vector<LinkId> path;
  int64_t bytes = 0;

  // kDelay: fixed `duration_s` with no resource (host-side python overheads,
  // RPC handling).

  std::vector<OpId> deps;
};

struct OpTiming {
  double start = 0;
  double finish = 0;
};

struct ReplayResult {
  std::vector<OpTiming> timings;  // indexed by OpId
  double makespan = 0;
  // Busy time per device (utilization = busy / makespan).
  std::map<std::string, double> device_busy_s;
};

class TraceReplayer {
 public:
  explicit TraceReplayer(FlowNetwork* net) : net_(net) {}

  // Appends an op; deps must have smaller ids. Returns its id.
  OpId Add(SimOp op);
  OpId AddCompute(std::string device, double duration_s,
                  std::vector<OpId> deps, std::string label = "");
  OpId AddTransfer(std::vector<LinkId> path, int64_t bytes,
                   std::vector<OpId> deps, std::string label = "");
  OpId AddDelay(double duration_s, std::vector<OpId> deps,
                std::string label = "");

  int num_ops() const { return static_cast<int>(ops_.size()); }

  // Runs the whole DAG to completion and returns timings. The replayer is
  // single-shot: build, replay, read.
  Result<ReplayResult> Replay(Simulation* sim);

 private:
  FlowNetwork* net_;
  std::vector<SimOp> ops_;
};

}  // namespace tfhpc::sim
