#include "core/shape.h"

#include <algorithm>
#include <sstream>

#include "core/logging.h"

namespace tfhpc {

int64_t Shape::dim(int i) const {
  TFHPC_CHECK_GE(i, 0);
  TFHPC_CHECK_LT(i, rank()) << " dim index out of range for " << ToString();
  return dims_[static_cast<size_t>(i)];
}

int64_t Shape::num_elements() const {
  int64_t n = 1;
  for (int64_t d : dims_) {
    TFHPC_CHECK_GE(d, 0) << "negative dim in " << ToString();
    if (d != 0) {
      TFHPC_CHECK_LE(n, INT64_MAX / d) << "shape overflow " << ToString();
    }
    n *= d;
  }
  return n;
}

std::vector<int64_t> Shape::Strides() const {
  std::vector<int64_t> s(dims_.size(), 1);
  for (int i = rank() - 2; i >= 0; --i) {
    s[static_cast<size_t>(i)] =
        s[static_cast<size_t>(i) + 1] * dims_[static_cast<size_t>(i) + 1];
  }
  return s;
}

std::string Shape::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ",";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

Result<Shape> Shape::Broadcast(const Shape& a, const Shape& b) {
  const int rank = std::max(a.rank(), b.rank());
  std::vector<int64_t> out(static_cast<size_t>(rank));
  for (int i = 0; i < rank; ++i) {
    // Align from trailing dimensions, missing leading dims behave as 1.
    const int ai = a.rank() - rank + i;
    const int bi = b.rank() - rank + i;
    const int64_t ad = ai >= 0 ? a.dim(ai) : 1;
    const int64_t bd = bi >= 0 ? b.dim(bi) : 1;
    if (ad != bd && ad != 1 && bd != 1) {
      return InvalidArgument("incompatible broadcast shapes " + a.ToString() +
                             " vs " + b.ToString());
    }
    out[static_cast<size_t>(i)] = std::max(ad, bd);
  }
  return Shape(std::move(out));
}

}  // namespace tfhpc
