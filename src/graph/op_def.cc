#include "graph/op_def.h"

namespace tfhpc {

OpRegistry& OpRegistry::Global() {
  static OpRegistry* registry = new OpRegistry();
  return *registry;
}

Status OpRegistry::Register(OpDef def) {
  if (def.name.empty()) return InvalidArgument("op with empty name");
  auto [it, inserted] = ops_.emplace(def.name, std::move(def));
  (void)it;
  if (!inserted) return AlreadyExists("op already registered: " + def.name);
  return Status::OK();
}

Status CheckArity(const OpDef& op, const std::string& node_name,
                  int data_inputs) {
  if (data_inputs >= op.min_inputs &&
      (op.max_inputs < 0 || data_inputs <= op.max_inputs)) {
    return Status::OK();
  }
  return InvalidArgument(
      "[GC005] node '" + node_name + "' (op " + op.name + ") has " +
      std::to_string(data_inputs) + " data inputs, expected [" +
      std::to_string(op.min_inputs) + ", " +
      (op.max_inputs < 0 ? std::string("inf")
                         : std::to_string(op.max_inputs)) +
      "]");
}

const OpDef* OpRegistry::Lookup(const std::string& name) const {
  auto it = ops_.find(name);
  return it == ops_.end() ? nullptr : &it->second;
}

std::vector<std::string> OpRegistry::OpNames() const {
  std::vector<std::string> names;
  names.reserve(ops_.size());
  for (const auto& [name, def] : ops_) names.push_back(name);
  return names;
}

namespace internal {
OpRegistrar::OpRegistrar(OpDef def) {
  const Status s = OpRegistry::Global().Register(std::move(def));
  TFHPC_CHECK(s.ok()) << s.ToString();
}
}  // namespace internal

}  // namespace tfhpc
