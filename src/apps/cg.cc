#include "apps/cg.h"

#include <chrono>
#include <cmath>
#include <filesystem>
#include <thread>

#include "apps/app_graphs.h"
#include "core/rng.h"
#include "graph/ops.h"
#include "io/checkpoint.h"

namespace tfhpc::apps {
namespace {

Status ValidateOptions(const CgOptions& o) {
  if (o.n <= 0 || o.num_workers <= 0) {
    return InvalidArgument("cg: need n > 0 and workers > 0");
  }
  if (o.n % o.num_workers != 0) {
    return InvalidArgument("cg: n must be divisible by num_workers");
  }
  if (o.max_iterations <= 0) return InvalidArgument("cg: need iterations > 0");
  return Status::OK();
}

double PaperFlops(int64_t n, int iterations) {
  return static_cast<double>(iterations) * 2.0 * static_cast<double>(n) *
         static_cast<double>(n);
}

// Queue names of the Fig. 5 reducer: one incoming and one outgoing queue per
// reduction step and worker.
std::string ApIn(int w) { return "ap_in_" + std::to_string(w); }
std::string ApOut(int w) { return "ap_out_" + std::to_string(w); }
std::string DotIn(int w) { return "dot_in_" + std::to_string(w); }
std::string DotOut(int w) { return "dot_out_" + std::to_string(w); }

}  // namespace

Result<CgResult> SimulateCg(const sim::MachineConfig& cfg,
                            sim::Protocol protocol, const CgOptions& options) {
  TFHPC_RETURN_IF_ERROR(ValidateOptions(options));
  const int64_t n = options.n;
  const int W = options.num_workers;
  const int64_t rows = n / W;
  const int64_t slice_bytes = rows * n * 8;  // f64 row block
  if (cfg.gpu_model.mem_bytes > 0 &&
      slice_bytes + 4 * n * 8 > cfg.gpu_model.mem_bytes) {
    return ResourceExhausted("cg: row block of " + std::to_string(slice_bytes) +
                             " bytes does not fit " +
                             cfg.gpu_model.model_name);
  }

  // Workers on GPUs; the reducer task on an extra GPU-less node.
  sim::ClusterModel cm(cfg, W, /*extra_host_nodes=*/1);
  const int ps_node = cm.num_nodes() - 1;
  const sim::Loc ps = cm.HostLoc(ps_node);

  std::vector<sim::OpId> last(static_cast<size_t>(W), cm.Delay(0, {}));
  for (int it = 0; it < options.max_iterations; ++it) {
    // (1) local GEMV slices, pushed to the reducer's incoming queue. Each
    // worker's client dispatches the matvec step (overhead) first.
    std::vector<sim::OpId> arrive;
    for (int w = 0; w < W; ++w) {
      sim::OpId dispatch = cm.StepOverhead({last[static_cast<size_t>(w)]});
      sim::OpId gemv = cm.GpuCompute(
          w, 2.0 * static_cast<double>(rows) * static_cast<double>(n),
          slice_bytes, /*fp64=*/true, {dispatch}, "gemv");
      sim::OpId push = cm.Transfer(cm.GpuLoc(w), ps, rows * 8, protocol,
                                   {gemv}, "ap_push");
      arrive.push_back(cm.HostIngest(ps_node, 0, rows * 8, {push}, "drain"));
    }
    // (2) reducer concatenates and broadcasts the full Ap.
    sim::OpId concat = cm.HostCompute(ps_node, 0, static_cast<double>(n),
                                      2 * n * 8, arrive, "concat");
    std::vector<sim::OpId> have_ap;
    for (int w = 0; w < W; ++w) {
      have_ap.push_back(cm.Transfer(ps, cm.GpuLoc(w), n * 8, protocol,
                                    {concat}, "ap_bcast"));
    }
    // (3) two scalar reductions (p.Ap and, after updates, r.r) — each is a
    // partial dot on the GPU, an 8-byte push, a host sum, an 8-byte
    // broadcast (latency-dominated, exactly the Fig. 5 ping-pong).
    std::vector<sim::OpId> ready = have_ap;
    for (int round = 0; round < 2; ++round) {
      std::vector<sim::OpId> partials;
      for (int w = 0; w < W; ++w) {
        sim::OpId dispatch =
            cm.StepOverhead({ready[static_cast<size_t>(w)]});
        sim::OpId dot = cm.GpuCompute(w, 2.0 * static_cast<double>(rows),
                                      2 * rows * 8, true, {dispatch}, "dot");
        partials.push_back(
            cm.Transfer(cm.GpuLoc(w), ps, 8, protocol, {dot}, "dot_push"));
      }
      sim::OpId sum =
          cm.HostCompute(ps_node, 0, W, W * 8, partials, "dot_sum");
      std::vector<sim::OpId> got;
      for (int w = 0; w < W; ++w) {
        got.push_back(
            cm.Transfer(ps, cm.GpuLoc(w), 8, protocol, {sum}, "dot_bcast"));
      }
      if (round == 0) {
        // After alpha: three full-vector AXPY update steps (x, r, p).
        for (int w = 0; w < W; ++w) {
          sim::OpId dispatch =
              cm.StepOverhead({got[static_cast<size_t>(w)]});
          got[static_cast<size_t>(w)] = cm.GpuCompute(
              w, 3 * 2.0 * static_cast<double>(n), 3 * 3 * n * 8, true,
              {dispatch}, "axpy");
        }
      }
      ready = std::move(got);
    }
    last = ready;
  }

  TFHPC_ASSIGN_OR_RETURN(sim::ReplayResult replay, cm.Replay());
  CgResult result;
  result.seconds = replay.makespan;
  result.iterations = options.max_iterations;
  result.gflops = PaperFlops(n, options.max_iterations) / replay.makespan / 1e9;
  return result;
}

// ------------------------------------------------------------------------------
// Functional distributed CG.
// ------------------------------------------------------------------------------

namespace {

// Shared immutable problem data for one run.
struct CgProblem {
  Tensor a;  // n x n SPD
  Tensor b;  // n, all ones
};

struct CheckpointState {
  Tensor x, r, p;
  double rsold = 0;
  int64_t iteration = 0;
};

Status SaveState(const std::string& path, const CheckpointState& st) {
  std::map<std::string, Tensor> vars;
  vars["x"] = st.x;
  vars["r"] = st.r;
  vars["p"] = st.p;
  vars["rsold"] = Tensor::Scalar(st.rsold);
  vars["iteration"] = Tensor::Scalar<int64_t>(st.iteration);
  return io::SaveCheckpoint(path, vars);
}

Result<CheckpointState> LoadState(const std::string& path) {
  TFHPC_ASSIGN_OR_RETURN(auto vars, io::LoadCheckpoint(path));
  CheckpointState st;
  st.x = vars.at("x");
  st.r = vars.at("r");
  st.p = vars.at("p");
  st.rsold = vars.at("rsold").scalar<double>();
  st.iteration = vars.at("iteration").scalar<int64_t>();
  return st;
}

}  // namespace

Result<CgResult> RunCgFunctional(const CgOptions& options, uint64_t seed,
                                 distrib::WireProtocol protocol,
                                 int interrupt_after) {
  TFHPC_RETURN_IF_ERROR(ValidateOptions(options));
  const int64_t n = options.n;
  const int W = options.num_workers;
  const int64_t rows = n / W;

  CgProblem problem;
  problem.a = RandomSpdMatrix(n, seed);
  problem.b = Tensor(DType::kF64, Shape{n});
  for (auto& v : problem.b.mutable_span<double>()) v = 1.0;

  // Resume or cold-start state.
  CheckpointState st;
  const bool resuming = !options.checkpoint_path.empty() &&
                        std::filesystem::exists(options.checkpoint_path);
  if (resuming) {
    TFHPC_ASSIGN_OR_RETURN(st, LoadState(options.checkpoint_path));
  } else {
    st.x = Tensor(DType::kF64, Shape{n});  // zeros
    st.r = problem.b.Clone();
    st.p = problem.b.Clone();
    double rs = 0;
    for (double v : st.r.data<double>()) rs += v * v;
    st.rsold = rs;
    st.iteration = 0;
  }

  // ---- cluster: W workers (1 GPU each) + 1 ps hosting the reducer queues ----
  wire::ClusterDef cluster_def;
  {
    wire::JobDef ps;
    ps.name = "ps";
    ps.task_addrs = {"cg-ps:3333"};
    wire::JobDef workers;
    workers.name = "worker";
    for (int w = 0; w < W; ++w) {
      workers.task_addrs.push_back("cg-w" + std::to_string(w) + ":3333");
    }
    cluster_def.jobs = {ps, workers};
  }
  TFHPC_ASSIGN_OR_RETURN(distrib::ClusterSpec spec,
                         distrib::ClusterSpec::Create(cluster_def));
  distrib::InProcessRouter router;
  TFHPC_ASSIGN_OR_RETURN(auto ps_server,
                         distrib::Server::Create({spec, "ps", 0, 0}, &router));
  std::vector<std::unique_ptr<distrib::Server>> worker_servers;
  for (int w = 0; w < W; ++w) {
    TFHPC_ASSIGN_OR_RETURN(
        auto s, distrib::Server::Create({spec, "worker", w, 1}, &router));
    worker_servers.push_back(std::move(s));
  }

  const auto start = std::chrono::steady_clock::now();

  // Both workers and the reducer run the same loop-control logic on the same
  // broadcast values, so they stop at the same iteration.
  const double tol = options.tolerance;
  const int max_iter = options.max_iterations;
  const int64_t start_iter = st.iteration;

  // ---- the reducer (Fig. 5): runs against the ps server's queues -------------
  std::thread reducer_thread;
  Status reducer_status;
  reducer_thread = std::thread([&] {
    auto run = [&]() -> Status {
      ResourceMgr& rm = ps_server->resources();
      double rsnew = st.rsold;
      for (int64_t it = start_iter; it < max_iter; ++it) {
        // Vector reduction: gather slices, broadcast concatenation.
        Tensor full(DType::kF64, Shape{n});
        for (int w = 0; w < W; ++w) {
          TFHPC_ASSIGN_OR_RETURN(FIFOQueue * in,
                                 rm.LookupOrCreateQueue(ApIn(w)));
          TFHPC_ASSIGN_OR_RETURN(Tensor slice, in->Dequeue());
          if (slice.num_elements() != rows) {
            return Internal("reducer: bad slice length");
          }
          std::memcpy(full.mutable_data<double>() + w * rows, slice.raw_data(),
                      static_cast<size_t>(rows) * 8);
        }
        for (int w = 0; w < W; ++w) {
          TFHPC_ASSIGN_OR_RETURN(FIFOQueue * out,
                                 rm.LookupOrCreateQueue(ApOut(w)));
          TFHPC_RETURN_IF_ERROR(out->Enqueue(full));
        }
        // Two scalar reductions: p.Ap then rsnew.
        for (int round = 0; round < 2; ++round) {
          double sum = 0;
          for (int w = 0; w < W; ++w) {
            TFHPC_ASSIGN_OR_RETURN(FIFOQueue * in,
                                   rm.LookupOrCreateQueue(DotIn(w)));
            TFHPC_ASSIGN_OR_RETURN(Tensor partial, in->Dequeue());
            sum += partial.scalar<double>();
          }
          for (int w = 0; w < W; ++w) {
            TFHPC_ASSIGN_OR_RETURN(FIFOQueue * out,
                                   rm.LookupOrCreateQueue(DotOut(w)));
            TFHPC_RETURN_IF_ERROR(out->Enqueue(Tensor::Scalar(sum)));
          }
          if (round == 1) rsnew = sum;
        }
        if (rsnew < tol) break;
        if (interrupt_after > 0 && it + 1 - start_iter >= interrupt_after) break;
      }
      return Status::OK();
    };
    reducer_status = run();
  });

  // ---- workers ------------------------------------------------------------------
  std::vector<Status> worker_status(static_cast<size_t>(W));
  std::vector<std::thread> worker_threads;
  std::vector<CheckpointState> final_states(static_cast<size_t>(W));
  for (int w = 0; w < W; ++w) {
    worker_threads.emplace_back([&, w] {
      auto run = [&]() -> Status {
        distrib::Server* server = worker_servers[static_cast<size_t>(w)].get();
        TFHPC_ASSIGN_OR_RETURN(std::string ps_addr, spec.TaskAddress("ps", 0));
        distrib::RemoteTask ps(&router, ps_addr, protocol);

        // Loop-body graph (apps/app_graphs.h): the A row block lives in a
        // variable (loaded once; the paper's data-locality workaround for
        // the 2 GB GraphDef limit), the loop state is fed each step.
        Scope scope = Scope(&server->graph()).WithDevice("/gpu:0");
        const CgWorkerGraph wg = BuildCgWorkerGraph(scope, rows, n);
        auto session = server->NewSession();

        // Load this worker's row block into its variable.
        Tensor block(DType::kF64, Shape{rows, n});
        std::memcpy(block.raw_data(),
                    problem.a.data<double>().data() + w * rows * n,
                    static_cast<size_t>(rows * n) * 8);
        TFHPC_RETURN_IF_ERROR(
            session->Run({{"a_feed", block}}, {}, {wg.a_init})
                .status());

        // Replicated state (checkpoint-resumable).
        Tensor x = st.x.Clone(), r = st.r.Clone(), p = st.p.Clone();
        double rsold = st.rsold;
        int64_t it = start_iter;

        auto segment = [&](const Tensor& vec) {
          Tensor s(DType::kF64, Shape{rows});
          std::memcpy(s.raw_data(), vec.data<double>().data() + w * rows,
                      static_cast<size_t>(rows) * 8);
          return s;
        };

        for (; it < max_iter; ++it) {
          // (1) my slice of A*p -> reducer; get full Ap back.
          TFHPC_ASSIGN_OR_RETURN(std::vector<Tensor> mv,
                                 session->Run({{"p", p}}, {wg.ap}));
          TFHPC_RETURN_IF_ERROR(ps.Enqueue(ApIn(w), mv[0]));
          TFHPC_ASSIGN_OR_RETURN(Tensor full_ap, ps.Dequeue(ApOut(w)));

          // (2) partial p.Ap over my segment -> scalar reduce.
          TFHPC_ASSIGN_OR_RETURN(
              std::vector<Tensor> pap_part,
              session->Run({{"u", segment(p)}, {"v", mv[0]}}, {wg.dot}));
          TFHPC_RETURN_IF_ERROR(ps.Enqueue(DotIn(w), pap_part[0]));
          TFHPC_ASSIGN_OR_RETURN(Tensor pap_t, ps.Dequeue(DotOut(w)));
          const double pap = pap_t.scalar<double>();
          const double alpha = rsold / pap;

          // (3) x += alpha p;  r -= alpha Ap (both graph-side AXPYs).
          TFHPC_ASSIGN_OR_RETURN(
              std::vector<Tensor> xs,
              session->Run({{"alpha", Tensor::Scalar(alpha)},
                            {"ax", p},
                            {"ay", x}},
                           {wg.axpy}));
          x = xs[0];
          TFHPC_ASSIGN_OR_RETURN(
              std::vector<Tensor> rs,
              session->Run({{"alpha", Tensor::Scalar(-alpha)},
                            {"ax", full_ap},
                            {"ay", r}},
                           {wg.axpy}));
          r = rs[0];

          // (4) rsnew = r.r via partial dots.
          TFHPC_ASSIGN_OR_RETURN(
              std::vector<Tensor> rr_part,
              session->Run({{"u", segment(r)}, {"v", segment(r)}},
                           {wg.dot}));
          TFHPC_RETURN_IF_ERROR(ps.Enqueue(DotIn(w), rr_part[0]));
          TFHPC_ASSIGN_OR_RETURN(Tensor rsnew_t, ps.Dequeue(DotOut(w)));
          const double rsnew = rsnew_t.scalar<double>();

          // (5) p = r + (rsnew/rsold) p.
          TFHPC_ASSIGN_OR_RETURN(
              std::vector<Tensor> pn,
              session->Run({{"alpha", Tensor::Scalar(rsnew / rsold)},
                            {"ax", p},
                            {"ay", r}},
                           {wg.axpy}));
          p = pn[0];
          rsold = rsnew;

          // Checkpoint (worker 0 owns the file, like a chief task).
          const int64_t done = it + 1;
          if (w == 0 && options.checkpoint_every > 0 &&
              !options.checkpoint_path.empty() &&
              done % options.checkpoint_every == 0) {
            CheckpointState cs{x, r, p, rsold, done};
            TFHPC_RETURN_IF_ERROR(SaveState(options.checkpoint_path, cs));
          }

          if (rsnew < tol) {
            ++it;
            break;
          }
          if (interrupt_after > 0 && done - start_iter >= interrupt_after) {
            ++it;
            break;
          }
        }
        final_states[static_cast<size_t>(w)] =
            CheckpointState{x, r, p, rsold, it};
        return Status::OK();
      };
      worker_status[static_cast<size_t>(w)] = run();
    });
  }

  for (auto& t : worker_threads) t.join();
  // Unblock the reducer if a worker died mid-iteration.
  const bool workers_ok =
      std::all_of(worker_status.begin(), worker_status.end(),
                  [](const Status& s) { return s.ok(); });
  if (!workers_ok) ps_server->resources().CloseAllQueues();
  reducer_thread.join();
  const auto end = std::chrono::steady_clock::now();
  for (const Status& s : worker_status) TFHPC_RETURN_IF_ERROR(s);
  TFHPC_RETURN_IF_ERROR(reducer_status);

  const CheckpointState& fin = final_states[0];
  // Workers ran in lockstep on identical broadcasts: states must agree.
  for (int w = 1; w < W; ++w) {
    if (!final_states[static_cast<size_t>(w)].x.BitwiseEquals(fin.x)) {
      return Internal("cg: replicated states diverged across workers");
    }
  }

  // Persist the final checkpoint when interrupted so a rerun resumes.
  if (interrupt_after > 0 && !options.checkpoint_path.empty()) {
    TFHPC_RETURN_IF_ERROR(SaveState(options.checkpoint_path, fin));
  }

  CgResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.iterations = static_cast<int>(fin.iteration);
  result.residual = fin.rsold;
  result.solution = fin.x;
  result.gflops =
      PaperFlops(n, static_cast<int>(fin.iteration - start_iter)) /
      result.seconds / 1e9;
  return result;
}

}  // namespace tfhpc::apps
