#include "core/rng.h"

#include "core/threadpool.h"

namespace tfhpc {
namespace {

constexpr uint32_t kPhiloxM0 = 0xD2511F53;
constexpr uint32_t kPhiloxM1 = 0xCD9E8D57;
constexpr uint32_t kPhiloxW0 = 0x9E3779B9;
constexpr uint32_t kPhiloxW1 = 0xBB67AE85;

inline void MulHiLo(uint32_t a, uint32_t b, uint32_t* hi, uint32_t* lo) {
  const uint64_t p = static_cast<uint64_t>(a) * b;
  *hi = static_cast<uint32_t>(p >> 32);
  *lo = static_cast<uint32_t>(p);
}

}  // namespace

Philox::Block Philox::operator()(uint64_t counter) const {
  uint32_t c0 = static_cast<uint32_t>(counter);
  uint32_t c1 = static_cast<uint32_t>(counter >> 32);
  uint32_t c2 = static_cast<uint32_t>(ctr_hi_);
  uint32_t c3 = static_cast<uint32_t>(ctr_hi_ >> 32);
  uint32_t k0 = key0_, k1 = key1_;
  for (int round = 0; round < 10; ++round) {
    uint32_t hi0, lo0, hi1, lo1;
    MulHiLo(kPhiloxM0, c0, &hi0, &lo0);
    MulHiLo(kPhiloxM1, c2, &hi1, &lo1);
    const uint32_t n0 = hi1 ^ c1 ^ k0;
    const uint32_t n1 = lo1;
    const uint32_t n2 = hi0 ^ c3 ^ k1;
    const uint32_t n3 = lo0;
    c0 = n0; c1 = n1; c2 = n2; c3 = n3;
    k0 += kPhiloxW0;
    k1 += kPhiloxW1;
  }
  return Block{{c0, c1, c2, c3}};
}

float UniformFloat(uint32_t bits) {
  // Use the top 24 bits for a uniform float in [0, 1).
  return static_cast<float>(bits >> 8) * (1.0f / 16777216.0f);
}

double UniformDouble(uint32_t hi, uint32_t lo) {
  const uint64_t bits =
      (static_cast<uint64_t>(hi) << 21) ^ (static_cast<uint64_t>(lo) >> 11);
  return static_cast<double>(bits & ((uint64_t{1} << 53) - 1)) *
         (1.0 / 9007199254740992.0);
}

void FillUniform(Tensor& t, uint64_t seed, double lo, double hi) {
  const Philox rng(seed);
  const double scale = hi - lo;
  const int64_t n = t.num_elements();
  if (t.dtype() == DType::kF32) {
    float* out = t.mutable_data<float>();
    ThreadPool::Global().ParallelFor(n, 4096, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) {
        const auto blk = rng(static_cast<uint64_t>(i) / 4);
        out[i] = static_cast<float>(lo) +
                 static_cast<float>(scale) * UniformFloat(blk.v[i % 4]);
      }
    });
  } else if (t.dtype() == DType::kF64) {
    double* out = t.mutable_data<double>();
    ThreadPool::Global().ParallelFor(n, 4096, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) {
        const auto blk = rng(static_cast<uint64_t>(i) / 2);
        const int j = static_cast<int>((i % 2) * 2);
        out[i] = lo + scale * UniformDouble(blk.v[j], blk.v[j + 1]);
      }
    });
  } else if (t.dtype() == DType::kC128) {
    auto* out = t.mutable_data<std::complex<double>>();
    ThreadPool::Global().ParallelFor(n, 4096, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) {
        const auto blk = rng(static_cast<uint64_t>(i));
        out[i] = {lo + scale * UniformDouble(blk.v[0], blk.v[1]),
                  lo + scale * UniformDouble(blk.v[2], blk.v[3])};
      }
    });
  } else {
    TFHPC_CHECK(false) << "FillUniform: unsupported dtype "
                       << DTypeName(t.dtype());
  }
}

Tensor RandomSpdMatrix(int64_t n, uint64_t seed) {
  Tensor b(DType::kF64, Shape{n, n});
  FillUniform(b, seed);
  Tensor a(DType::kF64, Shape{n, n});
  const auto bs = b.data<double>();
  double* ad = a.mutable_data<double>();
  ThreadPool::Global().ParallelFor(n, 16, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      for (int64_t c = 0; c < n; ++c) {
        double v = bs[static_cast<size_t>(r * n + c)] +
                   bs[static_cast<size_t>(c * n + r)];
        if (r == c) v += static_cast<double>(n);  // diagonal dominance => SPD
        ad[r * n + c] = v;
      }
    }
  });
  return a;
}

}  // namespace tfhpc
