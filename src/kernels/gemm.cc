#include "kernels/gemm.h"

#include <algorithm>
#include <cstring>

#include "core/threadpool.h"

namespace tfhpc::blas {
namespace {

// Block sizes tuned for L1/L2 residency of the inner panels.
constexpr int64_t kMc = 64;   // rows of A per panel
constexpr int64_t kKc = 256;  // depth per panel
constexpr int64_t kNc = 512;  // cols of B per panel

// Computes a row panel [r0, r1) of C. The j-loop is innermost and contiguous
// so the compiler vectorises it (i-k-j ordering over row-major operands).
template <typename T>
void GemmPanel(const T* a, const T* b, T* c, int64_t r0, int64_t r1, int64_t n,
               int64_t k) {
  for (int64_t kk = 0; kk < k; kk += kKc) {
    const int64_t kend = std::min(k, kk + kKc);
    for (int64_t jj = 0; jj < n; jj += kNc) {
      const int64_t jend = std::min(n, jj + kNc);
      for (int64_t i = r0; i < r1; ++i) {
        T* crow = c + i * n;
        const T* arow = a + i * k;
        for (int64_t p = kk; p < kend; ++p) {
          const T av = arow[p];
          const T* brow = b + p * n;
          for (int64_t j = jj; j < jend; ++j) {
            crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

template <typename T>
void GemmImpl(const T* a, const T* b, T* c, int64_t m, int64_t n, int64_t k,
              bool beta_zero) {
  if (beta_zero) std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(T));
  ThreadPool::Global().ParallelFor(
      (m + kMc - 1) / kMc, 1, [&](int64_t pb, int64_t pe) {
        for (int64_t p = pb; p < pe; ++p) {
          const int64_t r0 = p * kMc;
          const int64_t r1 = std::min(m, r0 + kMc);
          GemmPanel(a, b, c, r0, r1, n, k);
        }
      });
}

template <typename T>
void GemvImpl(const T* a, const T* x, T* y, int64_t m, int64_t n) {
  ThreadPool::Global().ParallelFor(m, 256, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      const T* row = a + r * n;
      T acc = 0;
      for (int64_t j = 0; j < n; ++j) acc += row[j] * x[j];
      y[r] = acc;
    }
  });
}

}  // namespace

void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t n,
          int64_t k, bool beta_zero) {
  GemmImpl(a, b, c, m, n, k, beta_zero);
}
void Gemm(const double* a, const double* b, double* c, int64_t m, int64_t n,
          int64_t k, bool beta_zero) {
  GemmImpl(a, b, c, m, n, k, beta_zero);
}
void Gemv(const double* a, const double* x, double* y, int64_t m, int64_t n) {
  GemvImpl(a, x, y, m, n);
}
void Gemv(const float* a, const float* x, float* y, int64_t m, int64_t n) {
  GemvImpl(a, x, y, m, n);
}

}  // namespace tfhpc::blas
