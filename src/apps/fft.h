// Distributed 1-D FFT (paper §IV, Fig. 6): the input signal is split into
// interleaved tiles stored in files; workers each load their share of
// tiles, run a GPU FFT per tile and push (index, result) into the merger's
// queue; the merger collects all tiles and recombines with twiddle factors
// ("locally with Python" in the paper — a host-side Cooley-Tukey merge
// here). The paper times the region up to the moment the merger holds all
// tiles (serial merging excluded from scaling).
#pragma once

#include <string>

#include "distrib/client.h"
#include "sim/machine.h"

namespace tfhpc::apps {

struct FftOptions {
  int64_t signal_size = 0;  // N, must be divisible by num_tiles
  int64_t num_tiles = 0;    // interleaved tiles (paper: 64 or 128)
  int num_workers = 2;
};

struct FftResult {
  double seconds = 0;       // up to last tile collected (the paper's region)
  double gflops = 0;        // paper flop model: 5 N log2 N
  double merge_seconds = 0; // the excluded host-side merge (functional mode)
  Tensor spectrum;          // final DFT (functional mode)
};

// Virtual-time FFT at paper scale.
Result<FftResult> SimulateFft(const sim::MachineConfig& cfg,
                              sim::Protocol protocol, const FftOptions& options);

// Real run: random complex signal, tiles staged as .npy files in `work_dir`,
// distributed FFT + merge, verified against a single full-length FFT.
Result<FftResult> RunFftFunctional(const FftOptions& options,
                                   const std::string& work_dir, uint64_t seed,
                                   distrib::WireProtocol protocol);

}  // namespace tfhpc::apps
