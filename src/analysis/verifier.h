// GraphCheck: static verification, shape/dtype inference and dataflow lints
// over a wire::GraphDef — run before anything executes. Three layers:
//
//  1. Structural verifier: unique names (GC001), registered ops (GC002),
//     resolvable inputs (GC003), output slots in range (GC004), OpDef arity
//     (GC005), cycle detection with a readable cycle trace (GC006), valid
//     device strings (GC007), control-edge sanity (GC008).
//  2. Shape & dtype inference (analysis/shape_inference.h) in topological
//     order, rejecting provable conflicts (GC009/GC010/GC017) and producing
//     per-node output annotations the executor uses to pre-size buffers.
//  3. Dataflow lints: dead nodes (GC011), variables read with no
//     initializer (GC012), guaranteed queue deadlocks (GC013), queue dtype
//     protocol violations (GC014), stateful ops bound to resources on other
//     tasks (GC016). Post-partition send/recv matching (GC015) runs
//     separately via VerifyPartitions.
//
// Callers: Session::Prepare runs VerifyGraph once per compiled signature
// (strict mode fails compile on ERROR findings, warn mode prints them);
// DistributedSession verifies the client graph at Create and every
// partition set it ships; tools/graphcheck lints serialized GraphDefs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/shape_inference.h"
#include "wire/messages.h"

namespace tfhpc::analysis {

struct AnalysisOptions {
  // Closure roots. When fetches/targets are non-empty, closure-aware lints
  // (deadlock, read-before-initialize) run against the fetch/target closure
  // with `feeds` acting as cut points — exactly the view Session::Run
  // executes. When both are empty the whole graph is analyzed (graphcheck
  // CLI mode), which additionally reports dead nodes (GC011).
  std::vector<std::string> feeds;
  std::vector<std::string> fetches;
  std::vector<std::string> targets;
};

struct GraphAnalysis {
  std::vector<Diagnostic> diagnostics;
  // Inferred output facts per node name (one entry per output slot). Dtypes
  // may be kInvalid and shapes partial; nodes that failed structural checks
  // are absent.
  std::map<std::string, std::vector<InferredTensor>> annotations;

  bool has_errors() const { return HasErrors(diagnostics); }
};

// Runs all three analysis layers. Never fails: every problem is a
// Diagnostic in the result, ERROR findings mark graphs that cannot run.
GraphAnalysis VerifyGraph(const wire::GraphDef& def,
                          const AnalysisOptions& options = {});

// Post-partition checks over the partitioner's output (task address ->
// partition GraphDef): every _Send targets an existing partition holding a
// _Recv with the same rendezvous key, and every _Recv has a matching _Send
// (GC015) — i.e. no cross-task edge was dropped or left dangling.
std::vector<Diagnostic> VerifyPartitions(
    const std::map<std::string, wire::GraphDef>& partitions);

}  // namespace tfhpc::analysis
