// Tests for the graph partitioner and DistributedSession: cross-task data
// and control edges become matched _Send/_Recv pairs; a multi-task graph
// runs distributed and agrees with local execution.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/rng.h"
#include "distrib/dist_session.h"
#include "distrib/server.h"
#include "graph/ops.h"
#include "runtime/session.h"

namespace tfhpc::distrib {
namespace {

wire::ClusterDef TwoWorkers() {
  wire::ClusterDef def;
  wire::JobDef workers;
  workers.name = "worker";
  workers.task_addrs = {"pt-w0:1", "pt-w1:1"};
  def.jobs = {workers};
  return def;
}

DeviceName DefaultDev() {
  DeviceName d;
  d.job = "worker";
  d.task = 0;
  return d;
}

int CountOp(const wire::GraphDef& def, const std::string& op) {
  int n = 0;
  for (const auto& nd : def.nodes) n += nd.op == op;
  return n;
}

// ---- PartitionGraph ------------------------------------------------------------

TEST(PartitionTest, SingleTaskGraphIsUntouched) {
  Graph g;
  Scope s(&g);
  auto a = ops::Const(s, Tensor::Scalar(1.0));
  ops::Add(s, a, a);
  auto spec = ClusterSpec::Create(TwoWorkers()).value();
  auto parts = PartitionGraph(g, spec, DefaultDev());
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->partitions.size(), 1u);
  const auto& part = parts->partitions.begin()->second;
  EXPECT_EQ(part.nodes.size(), 2u);
  EXPECT_EQ(CountOp(part, "_Send"), 0);
}

TEST(PartitionTest, CrossTaskEdgeGetsSendRecvPair) {
  Graph g;
  Scope s(&g);
  ops::Const(s.WithDevice("/job:worker/task:0/cpu:0"), Tensor::Scalar(2.0),
             "a");
  ops::Const(s.WithDevice("/job:worker/task:1/cpu:0"), Tensor::Scalar(3.0),
             "b");
  wire::NodeDef mul;
  mul.name = "prod";
  mul.op = "Mul";
  mul.inputs = {"a", "b"};
  mul.device = "/job:worker/task:1/cpu:0";
  ASSERT_TRUE(g.AddNode(mul).ok());

  auto spec = ClusterSpec::Create(TwoWorkers()).value();
  auto parts = PartitionGraph(g, spec, DefaultDev());
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->partitions.size(), 2u);
  const auto& p0 = parts->partitions.at("pt-w0:1");
  const auto& p1 = parts->partitions.at("pt-w1:1");
  EXPECT_EQ(CountOp(p0, "_Send"), 1);
  EXPECT_EQ(CountOp(p1, "_Recv"), 1);
  EXPECT_EQ(parts->node_task.at("prod"), "pt-w1:1");
  // Every partition must be a valid graph on its own.
  EXPECT_TRUE(Graph::FromGraphDef(p0).ok());
  EXPECT_TRUE(Graph::FromGraphDef(p1).ok());
}

TEST(PartitionTest, SharedEdgeToOneTaskIsDeduplicated) {
  Graph g;
  Scope s(&g);
  auto a = ops::Const(s.WithDevice("/job:worker/task:0/cpu:0"),
                      Tensor::Scalar(2.0), "a");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  ops::Add(t1, a, a);   // two data inputs from the same remote producer
  ops::Neg(t1, a);      // third consumer
  auto spec = ClusterSpec::Create(TwoWorkers()).value();
  auto parts = PartitionGraph(g, spec, DefaultDev());
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(CountOp(parts->partitions.at("pt-w0:1"), "_Send"), 1);
  EXPECT_EQ(CountOp(parts->partitions.at("pt-w1:1"), "_Recv"), 1);
}

TEST(PartitionTest, ControlEdgeBecomesTokenSend) {
  Graph g;
  Scope s(&g);
  ops::Const(s.WithDevice("/job:worker/task:0/cpu:0"), Tensor::Scalar(1.0),
             "gate");
  wire::NodeDef gated;
  gated.name = "gated";
  gated.op = "Const";
  gated.inputs = {"^gate"};
  gated.device = "/job:worker/task:1/cpu:0";
  gated.attrs["value"] =
      wire::AttrValue::Str(wire::SerializeTensor(Tensor::Scalar(5.0)));
  gated.attrs["dtype"] = wire::AttrValue::Type(DType::kF64);
  ASSERT_TRUE(g.AddNode(gated).ok());

  auto spec = ClusterSpec::Create(TwoWorkers()).value();
  auto parts = PartitionGraph(g, spec, DefaultDev());
  ASSERT_TRUE(parts.ok());
  const auto& p0 = parts->partitions.at("pt-w0:1");
  const auto& p1 = parts->partitions.at("pt-w1:1");
  EXPECT_EQ(CountOp(p0, "_Send"), 1);
  EXPECT_EQ(CountOp(p1, "_Recv"), 1);
  // The consumer's control input now points at the recv node.
  bool rewired = false;
  for (const auto& nd : p1.nodes) {
    if (nd.name == "gated") {
      ASSERT_EQ(nd.inputs.size(), 1u);
      EXPECT_EQ(nd.inputs[0][0], '^');
      EXPECT_NE(nd.inputs[0].find("_recv/"), std::string::npos);
      rewired = true;
    }
  }
  EXPECT_TRUE(rewired);
}

TEST(PartitionTest, UnresolvableTaskFails) {
  Graph g;
  Scope s(&g);
  ops::Const(s.WithDevice("/job:worker/task:7/cpu:0"), Tensor::Scalar(1.0));
  auto spec = ClusterSpec::Create(TwoWorkers()).value();
  EXPECT_FALSE(PartitionGraph(g, spec, DefaultDev()).ok());
}

// ---- DistributedSession -----------------------------------------------------------

class DistSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = std::make_unique<ClusterSpec>(
        ClusterSpec::Create(TwoWorkers()).value());
    w0_ = Server::Create({*spec_, "worker", 0, 1}, &router_).value();
    w1_ = Server::Create({*spec_, "worker", 1, 1}, &router_).value();
  }

  InProcessRouter router_;
  std::unique_ptr<ClusterSpec> spec_;
  std::unique_ptr<Server> w0_, w1_;
};

TEST_F(DistSessionTest, CrossTaskPipelineMatchesLocal) {
  // y = (a+b) * c with (a+b) on task 0 and the multiply on task 1.
  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/gpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/gpu:0");
  auto a = ops::Const(t0, Tensor::FromVector(std::vector<double>{1, 2}), "a");
  auto b = ops::Const(t0, Tensor::FromVector(std::vector<double>{10, 20}),
                      "b");
  auto sum = ops::Add(t0, a, b);
  auto c = ops::Const(t1, Tensor::FromVector(std::vector<double>{3, 3}), "c");
  auto y = ops::Mul(t1, sum, c);

  auto session = DistributedSession::Create(&router_, *spec_,
                                            WireProtocol::kRdma,
                                            g.ToGraphDef(), DefaultDev());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ((*session)->num_partitions(), 2);
  EXPECT_EQ((*session)->TaskOf(y.node->name()).value(), "pt-w1:1");

  auto r = (*session)->Run({}, {y.name()});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ((*r)[0].data<double>()[0], 33);
  EXPECT_DOUBLE_EQ((*r)[0].data<double>()[1], 66);
}

TEST_F(DistSessionTest, FeedsRouteToOwningTask) {
  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto x = ops::Placeholder(t0, DType::kF64, Shape{}, "x");
  auto two = ops::Const(t1, Tensor::Scalar(2.0));
  auto y = ops::Mul(t1, x, two);

  auto session = DistributedSession::Create(
      &router_, *spec_, WireProtocol::kMpi, g.ToGraphDef(), DefaultDev());
  ASSERT_TRUE(session.ok());
  auto r = (*session)->Run({{"x", Tensor::Scalar(21.0)}}, {y.name()});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 42.0);

  // Repeated steps with fresh feeds work (rendezvous keys drain per step).
  auto r2 = (*session)->Run({{"x", Tensor::Scalar(-1.0)}}, {y.name()});
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ((*r2)[0].scalar<double>(), -2.0);
}

TEST_F(DistSessionTest, FetchesFromBothTasksInOneStep) {
  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto a = ops::Const(t0, Tensor::Scalar(5.0), "a");
  auto double_a = ops::Mul(t1, a, ops::Const(t1, Tensor::Scalar(2.0)));
  auto session = DistributedSession::Create(
      &router_, *spec_, WireProtocol::kRdma, g.ToGraphDef(), DefaultDev());
  ASSERT_TRUE(session.ok());
  auto r = (*session)->Run({}, {double_a.name(), a.name()});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 10.0);
  EXPECT_DOUBLE_EQ((*r)[1].scalar<double>(), 5.0);
}

TEST_F(DistSessionTest, MatMulPipelineAcrossTaskGpus) {
  // The model-parallel pipeline of examples/model_parallel, but across TWO
  // TASKS rather than two local devices — verified against local execution.
  const int64_t n = 16;
  Tensor x(DType::kF32, Shape{n, n});
  Tensor w1(DType::kF32, Shape{n, n});
  Tensor w2(DType::kF32, Shape{n, n});
  tfhpc::FillUniform(x, 1);
  tfhpc::FillUniform(w1, 2, -0.1, 0.1);
  tfhpc::FillUniform(w2, 3, -0.1, 0.1);

  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/gpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/gpu:0");
  auto cx = ops::Const(t0, x, "x");
  auto cw1 = ops::Const(t0, w1, "w1");
  auto h = ops::MatMul(t0, cx, cw1);
  auto cw2 = ops::Const(t1, w2, "w2");
  auto y = ops::MatMul(t1, h, cw2);

  auto session = DistributedSession::Create(
      &router_, *spec_, WireProtocol::kRdma, g.ToGraphDef(), DefaultDev());
  ASSERT_TRUE(session.ok());
  auto dist = (*session)->Run({}, {y.name()});
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();

  // Local reference.
  LocalRuntime rt(1);
  Scope ls = rt.root_scope();
  auto ref = rt.NewSession()->Run(
      {}, {ops::MatMul(ls, ops::MatMul(ls, ops::Const(ls, x),
                                       ops::Const(ls, w1)),
                       ops::Const(ls, w2))
               .name()});
  ASSERT_TRUE(ref.ok());
  const auto got = (*dist)[0].data<float>();
  const auto want = (*ref)[0].data<float>();
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-4f);
  }
}

TEST_F(DistSessionTest, PeerFailureCancelsStepInsteadOfHanging) {
  // Task 0's partition fails (injected fault on its RunStep); task 1's
  // partition would block forever in _Recv without step cancellation.
  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto a = ops::Const(t0, Tensor::Scalar(5.0), "a");
  auto y = ops::Mul(t1, a, ops::Const(t1, Tensor::Scalar(2.0)));

  auto session = DistributedSession::Create(
      &router_, *spec_, WireProtocol::kRdma, g.ToGraphDef(), DefaultDev());
  ASSERT_TRUE(session.ok());

  router_.InjectFault("pt-w0:1", "RunStep", Unavailable("task 0 crashed"), 1);
  auto r = (*session)->Run({}, {y.name()});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kUnavailable);  // root cause, not Cancelled

  // The session recovered: the same step succeeds afterwards.
  auto r2 = (*session)->Run({}, {y.name()});
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_DOUBLE_EQ((*r2)[0].scalar<double>(), 10.0);
}

TEST_F(DistSessionTest, UnknownFetchFails) {
  Graph g;
  Scope s(&g);
  ops::Const(s.WithDevice("/job:worker/task:0/cpu:0"), Tensor::Scalar(1.0));
  auto session = DistributedSession::Create(
      &router_, *spec_, WireProtocol::kRdma, g.ToGraphDef(), DefaultDev());
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE((*session)->Run({}, {"ghost"}).ok());
}

// ---- SendDef metadata (drives client-side step pruning) ---------------------

TEST(PartitionTest, SendDefRecordsProducerAndEveryConsumer) {
  Graph g;
  Scope s(&g);
  auto a = ops::Const(s.WithDevice("/job:worker/task:0/cpu:0"),
                      Tensor::Scalar(2.0), "a");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto add = ops::Add(t1, a, a);
  auto neg = ops::Neg(t1, a);
  auto spec = ClusterSpec::Create(TwoWorkers()).value();
  auto parts = PartitionGraph(g, spec, DefaultDev());
  ASSERT_TRUE(parts.ok());

  // One deduplicated send out of task 0, but its SendDef must name BOTH
  // remote consumers — the pruner activates the send if either is fetched.
  ASSERT_EQ(parts->sends.count("pt-w0:1"), 1u);
  const auto& sends = parts->sends.at("pt-w0:1");
  ASSERT_EQ(sends.size(), 1u);
  EXPECT_EQ(sends[0].producer, "a");
  EXPECT_FALSE(sends[0].control);
  EXPECT_EQ(CountOp(parts->partitions.at("pt-w0:1"), "_Send"), 1);
  auto has = [&](const std::string& name) {
    const auto& c = sends[0].consumers;
    return std::find(c.begin(), c.end(), name) != c.end();
  };
  EXPECT_TRUE(has(add.node->name()));
  EXPECT_TRUE(has(neg.node->name()));
  // The recorded send name refers to a real node in the source partition.
  EXPECT_TRUE(Graph::FromGraphDef(parts->partitions.at("pt-w0:1"))
                  .value()
                  ->FindNode(sends[0].name) != nullptr);
}

TEST(PartitionTest, ControlSendDefMarkedAsControl) {
  Graph g;
  Scope s(&g);
  ops::Const(s.WithDevice("/job:worker/task:0/cpu:0"), Tensor::Scalar(1.0),
             "gate");
  wire::NodeDef gated;
  gated.name = "gated";
  gated.op = "Const";
  gated.inputs = {"^gate"};
  gated.device = "/job:worker/task:1/cpu:0";
  gated.attrs["value"] =
      wire::AttrValue::Str(wire::SerializeTensor(Tensor::Scalar(5.0)));
  gated.attrs["dtype"] = wire::AttrValue::Type(DType::kF64);
  ASSERT_TRUE(g.AddNode(gated).ok());
  auto spec = ClusterSpec::Create(TwoWorkers()).value();
  auto parts = PartitionGraph(g, spec, DefaultDev());
  ASSERT_TRUE(parts.ok());
  const auto& sends = parts->sends.at("pt-w0:1");
  ASSERT_EQ(sends.size(), 1u);
  EXPECT_TRUE(sends[0].control);
  EXPECT_EQ(sends[0].producer, "gate");
  EXPECT_EQ(sends[0].consumers, std::vector<std::string>{"gated"});
}

// ---- RunStepRequest wire format ---------------------------------------------

TEST(RunStepRequestTest, StepHandleRoundTrip) {
  RunStepRequest req;
  req.step_handle = 99;
  auto r = RunStepRequest::Parse(req.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->step_handle, 99u);
  // Legacy requests omit the field and parse to the "no handle" sentinel.
  auto legacy = RunStepRequest::Parse(RunStepRequest{}.Serialize());
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->step_handle, 0u);
}

// ---- Compile-once distributed steps -----------------------------------------

TEST_F(DistSessionTest, UnrelatedPartitionGetsNoRpcAtAll) {
  // Two independent subgraphs, one per task. Fetching task 0's result must
  // not execute — or even contact — task 1 (the old runtime ran every
  // partition in full on every step).
  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto y0 = ops::Add(t0, ops::Const(t0, Tensor::Scalar(1.0)),
                     ops::Const(t0, Tensor::Scalar(2.0)));
  auto y1 = ops::Mul(t1, ops::Const(t1, Tensor::Scalar(3.0)),
                     ops::Const(t1, Tensor::Scalar(4.0)));
  auto session = DistributedSession::Create(
      &router_, *spec_, WireProtocol::kRdma, g.ToGraphDef(), DefaultDev());
  ASSERT_TRUE(session.ok());

  auto r = (*session)->Run({}, {y0.name()});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 3.0);
  EXPECT_EQ(w0_->nodes_executed(), 3);  // two consts + add
  EXPECT_EQ(w1_->nodes_executed(), 0);
  EXPECT_EQ(w1_->steps_registered(), 0) << "skipped partitions get no RPC";

  // The mirror step touches only task 1.
  auto r1 = (*session)->Run({}, {y1.name()});
  ASSERT_TRUE(r1.ok());
  EXPECT_DOUBLE_EQ((*r1)[0].scalar<double>(), 12.0);
  EXPECT_EQ(w0_->nodes_executed(), 3);
  EXPECT_EQ(w1_->nodes_executed(), 3);
}

TEST_F(DistSessionTest, StepExecutesOnlyTheFetchClosure) {
  // y = (a+b on t0) * c on t1, plus an orphan const on t1 outside the
  // closure. Exact node counts: t0 runs {a, b, sum, _send}; t1 runs
  // {_recv, c, mul} — never the orphan.
  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto a = ops::Const(t0, Tensor::Scalar(1.0), "a");
  auto b = ops::Const(t0, Tensor::Scalar(10.0), "b");
  auto sum = ops::Add(t0, a, b);
  auto c = ops::Const(t1, Tensor::Scalar(3.0), "c");
  auto y = ops::Mul(t1, sum, c);
  ops::Const(t1, Tensor::Scalar(999.0), "orphan");
  auto session = DistributedSession::Create(
      &router_, *spec_, WireProtocol::kRdma, g.ToGraphDef(), DefaultDev());
  ASSERT_TRUE(session.ok());

  auto r = (*session)->Run({}, {y.name()});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 33.0);
  EXPECT_EQ(w0_->nodes_executed(), 4) << "a, b, sum, _send";
  EXPECT_EQ(w1_->nodes_executed(), 3) << "_recv, c, mul (orphan excluded)";
}

TEST_F(DistSessionTest, RepeatStepReusesHandlesAndPlan) {
  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto a = ops::Const(t0, Tensor::Scalar(5.0), "a");
  auto y = ops::Mul(t1, a, ops::Const(t1, Tensor::Scalar(2.0)));
  auto session = DistributedSession::Create(
      &router_, *spec_, WireProtocol::kRdma, g.ToGraphDef(), DefaultDev());
  ASSERT_TRUE(session.ok());

  for (int i = 0; i < 3; ++i) {
    auto r = (*session)->Run({}, {y.name()});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 10.0);
  }
  // One plan compiled, then served from cache; one RegisterStep per worker.
  EXPECT_EQ((*session)->plans_compiled(), 1);
  EXPECT_EQ((*session)->plan_cache_hits(), 2);
  EXPECT_EQ((*session)->plan_cache_size(), 1u);
  EXPECT_EQ(w0_->steps_registered(), 1);
  EXPECT_EQ(w1_->steps_registered(), 1);

  // A new signature compiles its own plan and registers fresh steps.
  auto r = (*session)->Run({}, {a.name()});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*session)->plans_compiled(), 2);
  EXPECT_EQ(w0_->steps_registered(), 2);
  EXPECT_EQ(w1_->steps_registered(), 1) << "a-only step never reaches w1";
}

TEST(DistStepEvictionTest, EvictedHandleIsTransparentlyReRegistered) {
  // Workers capped at ONE registered step: alternating signatures evict
  // each other's handles, and the client must recover from kNotFound by
  // re-registering — invisible to the caller.
  InProcessRouter router;
  auto spec = ClusterSpec::Create(TwoWorkers()).value();
  ServerDef d0{spec, "worker", 0, 0};
  ServerDef d1{spec, "worker", 1, 0};
  d0.max_registered_steps = d1.max_registered_steps = 1;
  auto w0 = Server::Create(d0, &router).value();
  auto w1 = Server::Create(d1, &router).value();

  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto a = ops::Const(t0, Tensor::Scalar(3.0), "a");
  auto dbl = ops::Add(t0, a, a);
  auto sq = ops::Mul(t0, a, a);
  auto session = DistributedSession::Create(
      &router, spec, WireProtocol::kRdma, g.ToGraphDef(), DefaultDev());
  ASSERT_TRUE(session.ok());

  auto run = [&](const Output& fetch, double want) {
    auto r = (*session)->Run({}, {fetch.name()});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), want);
  };
  run(dbl, 6.0);  // registers the dbl step
  run(sq, 9.0);   // evicts dbl's handle, registers sq
  run(dbl, 6.0);  // client plan cached, handle dead -> re-register
  run(sq, 9.0);
  EXPECT_EQ(w0->steps_registered(), 4);
  EXPECT_EQ((*session)->plans_compiled(), 2)
      << "re-registration must not recompile the client-side plan";
  EXPECT_EQ((*session)->plan_cache_hits(), 2);
}

}  // namespace
}  // namespace tfhpc::distrib
