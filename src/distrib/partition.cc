#include "distrib/partition.h"

#include <set>

#include "wire/messages.h"

namespace tfhpc::distrib {
namespace {

// Builders accumulate NodeDefs per task; nodes keep their original names so
// feeds/fetches stay valid.
struct PartitionBuilder {
  std::vector<wire::NodeDef> nodes;
  std::set<std::string> names;
};

std::string EdgeKey(const std::string& producer, int slot,
                    const std::string& consumer_task) {
  return "edge/" + producer + ":" + std::to_string(slot) + "->" +
         consumer_task;
}

std::string RecvName(const std::string& producer, int slot) {
  return "_recv/" + producer + "_" + std::to_string(slot);
}

// Node names must not contain ':' (it would parse as an output slot), so
// task addresses embedded in generated names are sanitized.
std::string SanitizeForName(std::string s) {
  for (char& c : s) {
    if (c == ':') c = '_';
  }
  return s;
}

}  // namespace

Result<PartitionResult> PartitionGraph(const Graph& graph,
                                       const ClusterSpec& cluster,
                                       const DeviceName& default_device) {
  if (default_device.job.empty() || default_device.task < 0) {
    return InvalidArgument("partitioning needs a default job/task");
  }

  // Resolve every node's owning task address.
  std::map<int, std::string> task_of;  // node id -> addr
  PartitionResult result;
  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node* n = graph.node(id);
    TFHPC_ASSIGN_OR_RETURN(DeviceName requested,
                           DeviceName::Parse(n->requested_device()));
    const DeviceName resolved = requested.MergedWith(default_device);
    TFHPC_ASSIGN_OR_RETURN(std::string addr,
                           cluster.TaskAddress(resolved.job, resolved.task));
    task_of[id] = addr;
    result.node_task[n->name()] = addr;
  }

  std::map<std::string, PartitionBuilder> builders;
  // (producer id, slot, dst task) -> recv node name, deduplicating sends.
  std::map<std::tuple<int, int, std::string>, std::string> edge_recv;
  // Same key -> (producer task, index into result.sends[task]) so every
  // consumer of a deduplicated send is recorded in its SendDef.
  std::map<std::tuple<int, int, std::string>, std::pair<std::string, size_t>>
      edge_send;

  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node* n = graph.node(id);
    const std::string& my_task = task_of[id];
    PartitionBuilder& mine = builders[my_task];

    wire::NodeDef def = n->def();
    // Rewire inputs whose producers live on other tasks.
    for (size_t i = 0; i < def.inputs.size(); ++i) {
      const InEdge& e = n->in_edges()[i];
      const std::string& src_task = task_of[e.node_id];
      if (src_task == my_task) continue;

      const Node* producer = graph.node(e.node_id);
      const int slot = e.control ? -1 : e.output_index;
      const auto key_tuple = std::make_tuple(e.node_id, slot, my_task);
      auto it = edge_recv.find(key_tuple);
      if (it == edge_recv.end()) {
        const std::string key = EdgeKey(producer->name(), slot, my_task);
        const std::string recv_name = RecvName(producer->name(), slot);
        std::string send_name;

        // Producer side: a _Send in the source partition.
        PartitionBuilder& theirs = builders[src_task];
        if (e.control) {
          // Control edge: ship a zero-scalar token gated on the producer.
          wire::NodeDef token;
          token.name = "_token/" + producer->name() + "/" + recv_name;
          token.op = "Const";
          token.device = producer->def().device;
          token.attrs["value"] = wire::AttrValue::Str(
              wire::SerializeTensor(Tensor::Scalar<int64_t>(0)));
          token.attrs["dtype"] = wire::AttrValue::Type(DType::kI64);
          token.inputs = {"^" + producer->name()};
          wire::NodeDef send;
          send.name = "_send/" + producer->name() + "/ctrl/" + SanitizeForName(my_task);
          send_name = send.name;
          send.op = "_Send";
          send.device = producer->def().device;
          send.inputs = {token.name};
          send.attrs["key"] = wire::AttrValue::Str(key);
          send.attrs["target"] = wire::AttrValue::Str(my_task);
          theirs.nodes.push_back(std::move(token));
          theirs.nodes.push_back(std::move(send));
        } else {
          wire::NodeDef send;
          send.name = "_send/" + producer->name() + "_" +
                      std::to_string(slot) + "/" + SanitizeForName(my_task);
          send_name = send.name;
          send.op = "_Send";
          send.device = producer->def().device;
          send.inputs = {slot == 0 ? producer->name()
                                   : producer->name() + ":" +
                                         std::to_string(slot)};
          send.attrs["key"] = wire::AttrValue::Str(key);
          send.attrs["target"] = wire::AttrValue::Str(my_task);
          theirs.nodes.push_back(std::move(send));
        }

        // Consumer side: a _Recv in this partition.
        wire::NodeDef recv;
        recv.name = recv_name;
        recv.op = "_Recv";
        recv.device = def.device;
        recv.attrs["key"] = wire::AttrValue::Str(key);
        mine.nodes.push_back(std::move(recv));
        it = edge_recv.emplace(key_tuple, recv_name).first;

        auto& sends = result.sends[src_task];
        sends.push_back(SendDef{send_name, producer->name(), e.control,
                                {n->name()}});
        edge_send.emplace(key_tuple,
                          std::make_pair(src_task, sends.size() - 1));
      } else {
        const auto& [send_task, idx] = edge_send.at(key_tuple);
        result.sends[send_task][idx].consumers.push_back(n->name());
      }
      def.inputs[i] = e.control ? "^" + it->second : it->second;
    }
    mine.nodes.push_back(std::move(def));
  }

  // Order each partition topologically: recvs/tokens/sends were appended in
  // producer-before-consumer order EXCEPT sends appended to a partition
  // after later nodes were added. Rebuild order by (a) stable-partitioning:
  // Graph::FromGraphDef validates inputs-first, so sort by dependency with
  // a simple fixpoint insertion.
  for (auto& [addr, builder] : builders) {
    std::vector<wire::NodeDef> ordered;
    std::set<std::string> placed;
    std::vector<wire::NodeDef> pending = std::move(builder.nodes);
    while (!pending.empty()) {
      const size_t before = pending.size();
      std::vector<wire::NodeDef> still;
      for (auto& nd : pending) {
        bool ready = true;
        for (const std::string& input : nd.inputs) {
          std::string name = input;
          if (!name.empty() && name[0] == '^') name = name.substr(1);
          const size_t colon = name.find(':');
          if (colon != std::string::npos) name = name.substr(0, colon);
          if (!placed.count(name)) {
            ready = false;
            break;
          }
        }
        if (ready) {
          placed.insert(nd.name);
          ordered.push_back(std::move(nd));
        } else {
          still.push_back(std::move(nd));
        }
      }
      if (still.size() == before) {
        return Internal("partition for " + addr +
                        " has a dependency cycle after send/recv insertion");
      }
      pending = std::move(still);
    }
    wire::GraphDef part;
    part.nodes = std::move(ordered);
    result.partitions.emplace(addr, std::move(part));
  }
  return result;
}

}  // namespace tfhpc::distrib
