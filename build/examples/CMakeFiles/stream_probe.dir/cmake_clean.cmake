file(REMOVE_RECURSE
  "CMakeFiles/stream_probe.dir/stream_probe.cpp.o"
  "CMakeFiles/stream_probe.dir/stream_probe.cpp.o.d"
  "stream_probe"
  "stream_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
