#include "graph/graph.h"

#include <algorithm>
#include <deque>

namespace tfhpc {

int Node::num_data_inputs() const {
  return static_cast<int>(
      std::count_if(in_edges_.begin(), in_edges_.end(),
                    [](const InEdge& e) { return !e.control; }));
}

namespace {
Status AttrError(const std::string& node, const std::string& attr,
                 const char* kind) {
  return InvalidArgument("node '" + node + "': attr '" + attr + "' missing or not " +
                         kind);
}
}  // namespace

Result<int64_t> Node::AttrInt(const std::string& name) const {
  auto it = def_.attrs.find(name);
  if (it == def_.attrs.end() || it->second.kind != wire::AttrValue::Kind::kInt)
    return AttrError(def_.name, name, "int");
  return it->second.i;
}
Result<double> Node::AttrFloat(const std::string& name) const {
  auto it = def_.attrs.find(name);
  if (it == def_.attrs.end() || it->second.kind != wire::AttrValue::Kind::kFloat)
    return AttrError(def_.name, name, "float");
  return it->second.f;
}
Result<std::string> Node::AttrString(const std::string& name) const {
  auto it = def_.attrs.find(name);
  if (it == def_.attrs.end() || it->second.kind != wire::AttrValue::Kind::kString)
    return AttrError(def_.name, name, "string");
  return it->second.s;
}
Result<DType> Node::AttrType(const std::string& name) const {
  auto it = def_.attrs.find(name);
  if (it == def_.attrs.end() || it->second.kind != wire::AttrValue::Kind::kType)
    return AttrError(def_.name, name, "type");
  return it->second.type;
}
Result<Shape> Node::AttrShape(const std::string& name) const {
  auto it = def_.attrs.find(name);
  if (it == def_.attrs.end() || it->second.kind != wire::AttrValue::Kind::kShape)
    return AttrError(def_.name, name, "shape");
  return it->second.shape;
}
Result<bool> Node::AttrBool(const std::string& name) const {
  auto it = def_.attrs.find(name);
  if (it == def_.attrs.end() || it->second.kind != wire::AttrValue::Kind::kBool)
    return AttrError(def_.name, name, "bool");
  return it->second.b;
}

Result<std::unique_ptr<Node>> Node::Detached(wire::NodeDef def) {
  const OpDef* op_def = OpRegistry::Global().Lookup(def.op);
  if (op_def == nullptr) return NotFound("op '" + def.op + "' not registered");
  auto node = std::make_unique<Node>();
  node->def_ = std::move(def);
  node->op_def_ = op_def;
  return node;
}

Result<Node*> Graph::AddNode(wire::NodeDef def) {
  if (def.name.empty()) return InvalidArgument("node with empty name");
  if (by_name_.count(def.name)) {
    return AlreadyExists("duplicate node name '" + def.name + "'");
  }
  const OpDef* op_def = OpRegistry::Global().Lookup(def.op);
  if (op_def == nullptr) {
    return NotFound("op '" + def.op + "' not registered (node '" + def.name +
                    "')");
  }

  auto node = std::make_unique<Node>();
  node->def_ = std::move(def);
  node->op_def_ = op_def;
  node->id_ = static_cast<int>(nodes_.size());

  int data_inputs = 0;
  for (const std::string& input : node->def_.inputs) {
    InEdge e;
    std::string name = input;
    if (!name.empty() && name[0] == '^') {
      e.control = true;
      name = name.substr(1);
    } else {
      const size_t colon = name.find(':');
      if (colon != std::string::npos) {
        try {
          e.output_index = std::stoi(name.substr(colon + 1));
        } catch (...) {
          return InvalidArgument("bad input spec '" + input + "'");
        }
        name = name.substr(0, colon);
      }
      ++data_inputs;
    }
    auto it = by_name_.find(name);
    if (it == by_name_.end()) {
      return NotFound("input '" + name + "' of node '" + node->def_.name +
                      "' not found (inputs must be added first)");
    }
    e.node_id = it->second;
    if (!e.control &&
        e.output_index >= nodes_[static_cast<size_t>(e.node_id)]->op_def().num_outputs) {
      return OutOfRange("input '" + input + "' output index out of range");
    }
    node->in_edges_.push_back(e);
  }

  TFHPC_RETURN_IF_ERROR(CheckArity(*op_def, node->def_.name, data_inputs));

  Node* raw = node.get();
  by_name_[node->def_.name] = node->id_;
  nodes_.push_back(std::move(node));
  version_.fetch_add(1, std::memory_order_release);
  return raw;
}

Status Graph::SetNodeDevice(const std::string& name,
                            const std::string& device) {
  Node* n = FindNode(name);
  if (n == nullptr) return NotFound("node '" + name + "' not found");
  if (n->def_.device == device) return Status::OK();
  n->def_.device = device;
  version_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Node* Graph::FindNode(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : nodes_[static_cast<size_t>(it->second)].get();
}

const Node* Graph::FindNode(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : nodes_[static_cast<size_t>(it->second)].get();
}

std::vector<int> Graph::TopologicalOrder() const {
  // Construction enforces inputs-before-consumers, so ids are topological.
  std::vector<int> order(static_cast<size_t>(num_nodes()));
  for (int i = 0; i < num_nodes(); ++i) order[static_cast<size_t>(i)] = i;
  return order;
}

Result<std::vector<int>> Graph::ReachableTo(
    const std::vector<std::string>& targets) const {
  std::vector<bool> visited(static_cast<size_t>(num_nodes()), false);
  std::deque<int> frontier;
  for (const std::string& t : targets) {
    // Targets may name an output slot ("node:1").
    std::string name = t;
    const size_t colon = name.find(':');
    if (colon != std::string::npos) name = name.substr(0, colon);
    const Node* n = FindNode(name);
    if (n == nullptr) return NotFound("target node '" + name + "' not found");
    if (!visited[static_cast<size_t>(n->id())]) {
      visited[static_cast<size_t>(n->id())] = true;
      frontier.push_back(n->id());
    }
  }
  std::vector<int> result;
  while (!frontier.empty()) {
    const int id = frontier.front();
    frontier.pop_front();
    result.push_back(id);
    for (const InEdge& e : nodes_[static_cast<size_t>(id)]->in_edges()) {
      if (!visited[static_cast<size_t>(e.node_id)]) {
        visited[static_cast<size_t>(e.node_id)] = true;
        frontier.push_back(e.node_id);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::string Graph::UniqueName(const std::string& prefix) {
  for (;;) {
    const int n = name_counters_[prefix]++;
    const std::string candidate =
        n == 0 ? prefix : prefix + "_" + std::to_string(n);
    if (!by_name_.count(candidate)) return candidate;
  }
}

wire::GraphDef Graph::ToGraphDef() const {
  wire::GraphDef def;
  def.nodes.reserve(nodes_.size());
  for (const auto& n : nodes_) def.nodes.push_back(n->def());
  return def;
}

Result<std::unique_ptr<Graph>> Graph::FromGraphDef(const wire::GraphDef& def) {
  auto graph = std::make_unique<Graph>();
  for (const auto& node_def : def.nodes) {
    TFHPC_ASSIGN_OR_RETURN(Node * n, graph->AddNode(node_def));
    (void)n;
  }
  return graph;
}

}  // namespace tfhpc
