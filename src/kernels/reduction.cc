#include "kernels/reduction.h"

#include <algorithm>

#include "core/threadpool.h"

namespace tfhpc::blas {
namespace {

template <typename T>
typename ReduceAccum<T>::type ParallelSumImpl(const T* x, int64_t n) {
  using Acc = typename ReduceAccum<T>::type;
  if (n <= 0) return Acc{};
  const int64_t chunks = NumReduceChunks(n);
  if (chunks == 1) return ChunkSum(x, n);
  std::vector<Acc> partials(static_cast<size_t>(chunks));
  ThreadPool::Global().ParallelFor(
      chunks, kReduceGrainChunks, [&](int64_t cb, int64_t ce) {
        for (int64_t c = cb; c < ce; ++c) {
          const int64_t lo = c * kReduceChunk;
          partials[static_cast<size_t>(c)] =
              ChunkSum(x + lo, std::min(kReduceChunk, n - lo));
        }
      });
  return CombineChunks(partials);
}

template <typename T>
typename ReduceAccum<T>::type ParallelDotImpl(const T* x, const T* y,
                                              int64_t n) {
  using Acc = typename ReduceAccum<T>::type;
  if (n <= 0) return Acc{};
  const int64_t chunks = NumReduceChunks(n);
  if (chunks == 1) return ChunkDot(x, y, n);
  std::vector<Acc> partials(static_cast<size_t>(chunks));
  ThreadPool::Global().ParallelFor(
      chunks, kReduceGrainChunks, [&](int64_t cb, int64_t ce) {
        for (int64_t c = cb; c < ce; ++c) {
          const int64_t lo = c * kReduceChunk;
          partials[static_cast<size_t>(c)] =
              ChunkDot(x + lo, y + lo, std::min(kReduceChunk, n - lo));
        }
      });
  return CombineChunks(partials);
}

}  // namespace

double ParallelSum(const float* x, int64_t n) { return ParallelSumImpl(x, n); }
double ParallelSum(const double* x, int64_t n) { return ParallelSumImpl(x, n); }
std::complex<double> ParallelSum(const std::complex<double>* x, int64_t n) {
  return ParallelSumImpl(x, n);
}
double ParallelDot(const float* x, const float* y, int64_t n) {
  return ParallelDotImpl(x, y, n);
}
double ParallelDot(const double* x, const double* y, int64_t n) {
  return ParallelDotImpl(x, y, n);
}

}  // namespace tfhpc::blas
