// Constant folding: evaluate stateless nodes whose transitive inputs are
// all Const and replace them with Const nodes — the graph-level
// optimization the paper's §II credits to dataflow ("use information of the
// dataflow graph to optimize execution"). Runs at the GraphDef level (it
// composes with pruning and CSE from graph/passes.h) but lives in the
// runtime because it executes CPU kernels.
#pragma once

#include <set>
#include <string>

#include "graph/passes.h"

namespace tfhpc {

struct ConstFoldOptions {
  // Never materialize folded constants larger than this (folding a huge
  // RandomUniform-free matmul would bloat the GraphDef past the paper's
  // 2 GB ProtoBuf limit).
  int64_t max_output_bytes = 16 << 20;
  // Nodes whose compile-time identity must survive: they are never folded
  // away and never treated as constant sources. The optimizer pipeline puts
  // a run signature's feeds here — a fed Const's value is overridden at Run
  // time, so baking its static value into consumers would be wrong.
  std::set<std::string> frozen;
};

// Returns the rewritten graph plus how many nodes were folded away.
struct ConstFoldResult {
  wire::GraphDef graph;
  int folded_nodes = 0;
};

Result<ConstFoldResult> ConstantFolding(const wire::GraphDef& def,
                                        const ConstFoldOptions& options = {});

}  // namespace tfhpc
