// Grappler-lite: the graph-optimizer pass pipeline Session::Prepare runs
// behind its signature cache (and DistributedSession runs before
// partitioning). TensorFlow's whitepaper makes graph rewriting — CSE,
// dead-node pruning, operation fusion — a core runtime capability; tfhpc
// implements the same shapes over wire::GraphDef so passes compose with
// serialization, tools and tests.
//
// Pipeline (in order):
//   1. const_fold        evaluate const-only subgraphs via the CPU kernels
//   2. cse               merge structurally identical stateless nodes
//   3. dead_node_elim    drop nodes outside the fetch/target closure
//   4. fuse_elementwise  (aggressive) collapse elementwise chains into one
//                        FusedElementwise node, proven safe by GraphCheck
//                        shape inference
//
// Safety invariants every pass obeys:
//   - nodes named in the run signature (feeds/fetches/targets) keep their
//     name and observable behavior; fed nodes are never treated as
//     constants (their value is overridden at Run time);
//   - stateful and blocking ops (variables, queues, send/recv) are never
//     folded, merged or fused;
//   - the pipeline is idempotent: running it twice yields the same graph;
//   - callers re-run analysis::VerifyGraph on the result — an optimizer bug
//     is a compile failure, not a wrong answer (GraphCheck is the
//     regression oracle).
//
// Send/recv coalescing — the fifth optimization — runs inside the
// partitioner (src/distrib/partition.h, PartitionOptions::coalesce_sends),
// since cross-task edges only exist after placement.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace tfhpc::optimizer {

enum class OptimizerLevel {
  kOff,         // pipeline disabled
  kBasic,       // const_fold + cse + dead_node_elim
  kAggressive,  // basic + elementwise fusion (+ send coalescing in distrib)
};

const char* OptimizerLevelName(OptimizerLevel level);
Result<OptimizerLevel> ParseOptimizerLevel(const std::string& name);

struct PipelineOptions {
  OptimizerLevel level = OptimizerLevel::kBasic;
  // The run signature the optimized graph will execute under. When fetches
  // and targets are both empty the pipeline runs in whole-graph mode (the
  // graphcheck CLI): dead-node elimination roots at every terminal node
  // plus every stateful op, so queues/variables/sends survive.
  std::vector<std::string> feeds;
  std::vector<std::string> fetches;
  std::vector<std::string> targets;
  // Additional node names that must survive by name (never merged away by
  // CSE or absorbed into a fused chain) WITHOUT anchoring dead-node
  // elimination the way fetches/targets do. DistributedSession uses this in
  // whole-graph mode for every name a client may later feed or fetch.
  std::vector<std::string> preserve;
  // Constant-folding size ceiling (see runtime/const_fold.h).
  int64_t max_const_bytes = 16 << 20;
};

// One pass's effect, for tools and tests.
struct PassReport {
  std::string name;
  int nodes_before = 0;
  int nodes_after = 0;
  int edges_before = 0;
  int edges_after = 0;
  // Pass-specific count: nodes folded / merged / removed / fused away.
  int changed = 0;
};

struct PipelineResult {
  wire::GraphDef graph;
  std::vector<PassReport> passes;
};

// Runs the pipeline at `options.level` over `def`. kOff returns the graph
// unchanged with no reports. The input must parse as a Graph (registered
// ops, resolvable inputs); callers are expected to VerifyGraph the result.
Result<PipelineResult> RunPassPipeline(const wire::GraphDef& def,
                                       const PipelineOptions& options);

}  // namespace tfhpc::optimizer
