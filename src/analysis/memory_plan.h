// Static memory planning over a LivenessAnalysis: a deterministic greedy
// interval-coloring allocator assigns statically-shaped tensors to byte
// offsets in one per-step arena, producing
//
//   * arena_bytes — the arena extent the executor allocates ONCE per step
//     and carves with zero-cost views (replacing per-op pool traffic);
//   * static_peak_bytes — a compile-time upper bound on the step's
//     limiter-charged footprint, sound under ANY concurrent interleaving
//     (see the soundness note below), used by serving admission and GC018;
//   * per-node waterlines — the serialized-schedule high-water mark after
//     each node, for the graphcheck --memory report;
//   * an alias set — provably-safe in-place reuses (single consumer,
//     elementwise overwrite, same dtype/shape, last use) resolved at compile
//     time instead of the runtime buffer_unique() guess.
//
// Arena eligibility is deliberately strict. A tensor is planned only when:
//   - its producer is scheduled and not fed (fed storage is caller-owned);
//   - its dtype/shape are fully known (bytes >= 0) and positive;
//   - it is not fetched (fetched tensors outlive the step);
//   - its producer's op declares overwrites_outputs (the kernel writes the
//     buffer it is handed — Variable/Identity/Assign pass through or retain
//     foreign buffers and must not receive arena views);
//   - EVERY data consumer's op also declares overwrites_outputs. This is the
//     escape fence: ops without it (Assign, Identity, queue/send ops) may
//     retain or re-expose an input buffer beyond the step, which would let
//     an arena view outlive its planned interval.
//
// Reuse rule (why this is safe under concurrency): offsets are reused only
// when every use of the previous occupant — producer and all data/control
// consumers — happens-before the new producer (LivenessAnalysis::
// DeadBefore). Tensors NOT ordered by happens-before therefore always get
// disjoint byte ranges, so any antichain of simultaneously-live tensors fits
// inside arena_bytes regardless of how the executor interleaves them.
//
// static_peak_bytes = arena_bytes + sum of statically-known bytes of every
// non-planned, non-fed scheduled tensor. Non-planned tensors come from the
// pool and are charged individually; summing them (no reuse assumed) keeps
// the bound sound in both plan-on and plan-off execution. Dynamic tensors
// (bytes unknown) are counted and reported but cannot be bounded — the plan
// says so via dynamic_tensors > 0.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/liveness.h"
#include "core/status.h"

namespace tfhpc::analysis {

// One arena placement: output `slot` of node `node` lives at [offset,
// offset + bytes) in the step arena.
struct PlannedTensor {
  std::string node;
  int slot = 0;
  int64_t offset = 0;
  int64_t bytes = 0;
  // Set when this placement aliases a consumed input in place: the planner
  // proved the overwrite safe and gave the output the input's offset.
  bool in_place = false;
};

struct MemoryPlanOptions {
  // Arena placements are aligned to this many bytes (Buffer::kAlignment).
  int64_t alignment = 64;
  // Emit in-place aliases (same offset for a provably-safe overwrite).
  bool allow_in_place = true;
};

class MemoryPlan {
 public:
  int64_t arena_bytes() const { return arena_bytes_; }
  int64_t static_peak_bytes() const { return static_peak_bytes_; }
  // Σ bytes of statically-known tensors served from the pool (not planned).
  int64_t pool_bytes() const { return pool_bytes_; }
  int num_planned() const { return static_cast<int>(planned_.size()); }
  int num_in_place() const { return in_place_; }
  // Scheduled tensors whose extent is statically unknown: they fall back to
  // the pool at runtime and the static peak does not cover them.
  int dynamic_tensors() const { return dynamic_tensors_; }

  const std::vector<PlannedTensor>& planned() const { return planned_; }
  const PlannedTensor* Find(const std::string& node, int slot) const;

  // Serialized-schedule live bytes after node i completes (arena-planned +
  // pool-known tensors alive at that point). Reporting only: the concurrent
  // bound is static_peak_bytes().
  const std::vector<int64_t>& waterlines() const { return waterlines_; }
  // Schedule position of the serialized high-water mark.
  int peak_position() const { return peak_position_; }

  // Human-readable per-node waterline table (graphcheck --memory).
  std::string ToString(const LivenessAnalysis& live) const;

  // Deterministic: same liveness in, same plan out.
  static Result<MemoryPlan> Plan(const LivenessAnalysis& live,
                                 const MemoryPlanOptions& options = {});

 private:
  friend class MemoryPlanner;

  std::vector<PlannedTensor> planned_;
  std::vector<int64_t> waterlines_;
  int64_t arena_bytes_ = 0;
  int64_t static_peak_bytes_ = 0;
  int64_t pool_bytes_ = 0;
  int peak_position_ = 0;
  int in_place_ = 0;
  int dynamic_tensors_ = 0;
};

// Memory lints over a computed plan:
//   GC018 (ERROR)   static peak exceeds `budget_bytes` (skipped when
//                   budget_bytes <= 0). Strict sessions reject at compile
//                   time instead of OOMing mid-step.
//   GC019 (WARNING) an Assign/AssignAdd overwrites a variable whose prior
//                   value has a consumer not ordered before the writer —
//                   the consumer races the in-place overwrite.
//   GC020 (INFO)    report-only: top-k lifetime-stretching tensors by
//                   (lifetime span × bytes), with scheduling hints.
std::vector<Diagnostic> LintMemory(const wire::GraphDef& def,
                                   const LivenessAnalysis& live,
                                   const MemoryPlan& plan,
                                   int64_t budget_bytes, int top_k = 3);

}  // namespace tfhpc::analysis
