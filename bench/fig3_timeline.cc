// Reproduces Fig. 3: "Execution TensorFlow Timeline of a particular stage
// of our CG solver. The individual time lines of a device show parallel
// execution." Runs one functional CG stage with tracing, prints the
// per-device op rows, and writes the Chrome trace JSON.
#include <cstdio>
#include <set>

#include "bench_util.h"
#include "core/rng.h"
#include "graph/ops.h"
#include "runtime/session.h"
#include "timeline/timeline.h"

using namespace tfhpc;

int main() {
  bench::Header("Fig. 3 — Timeline of a CG stage",
                "paper Fig. 3 (per-device rows; parallel execution visible)");

  // One CG loop body: matvec + two dots + three axpys, with the matrix on
  // the GPU and reductions landing on the CPU — enough structure to show
  // parallel device rows.
  const int64_t n = 256;
  LocalRuntime rt(2);
  Scope root = rt.root_scope();
  Tensor a_val = RandomSpdMatrix(n, 3);
  Tensor p_val(DType::kF64, Shape{n});
  FillUniform(p_val, 4);

  auto gpu0 = root.WithDevice("/gpu:0");
  auto gpu1 = root.WithDevice("/gpu:1");
  auto cpu = root.WithDevice("/cpu:0");
  auto a = ops::Const(cpu, a_val, "A");
  auto p = ops::Const(cpu, p_val, "p");
  auto ap = ops::MatVec(gpu0, a, p);
  auto pap = ops::Dot(gpu0, p, ap);
  auto rr = ops::Dot(gpu1, p, p);  // second device row runs in parallel
  auto alpha = ops::Div(cpu, rr, pap);
  auto x_next = ops::Axpy(gpu0, alpha, p, p);
  auto r_next = ops::Axpy(gpu1, ops::Neg(cpu, alpha), ap, p);

  RunOptions opts;
  opts.trace = true;
  RunMetadata meta;
  auto result = rt.NewSession()->Run({}, {x_next.name(), r_next.name()}, {},
                                     opts, &meta);
  if (!result.ok()) {
    std::printf("run failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("%-14s %-10s %-34s %10s\n", "op", "kind", "device", "dur (us)");
  bench::Rule();
  for (const auto& node : meta.nodes) {
    std::printf("%-14s %-10s %-34s %10.1f\n", node.name.c_str(),
                node.op.c_str(), node.device.c_str(),
                node.end_us - node.start_us);
  }
  bench::Rule();

  const std::string path = "/tmp/tfhpc_fig3_cg_timeline.json";
  auto events = timeline::FromRunMetadata(meta);
  if (!timeline::WriteChromeTrace(path, events).ok()) {
    std::printf("failed to write %s\n", path.c_str());
    return 1;
  }
  // Count distinct device rows — the figure's point is multiple timelines.
  std::set<std::string> devices;
  for (const auto& e : events) devices.insert(e.track);
  std::printf("%zu device rows in the trace; JSON written to %s\n",
              devices.size(), path.c_str());
  return devices.size() >= 2 ? 0 : 1;
}
