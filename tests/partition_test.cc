// Tests for the graph partitioner and DistributedSession: cross-task data
// and control edges become matched _Send/_Recv pairs; a multi-task graph
// runs distributed and agrees with local execution.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "distrib/dist_session.h"
#include "distrib/server.h"
#include "graph/ops.h"
#include "runtime/session.h"

namespace tfhpc::distrib {
namespace {

wire::ClusterDef TwoWorkers() {
  wire::ClusterDef def;
  wire::JobDef workers;
  workers.name = "worker";
  workers.task_addrs = {"pt-w0:1", "pt-w1:1"};
  def.jobs = {workers};
  return def;
}

DeviceName DefaultDev() {
  DeviceName d;
  d.job = "worker";
  d.task = 0;
  return d;
}

int CountOp(const wire::GraphDef& def, const std::string& op) {
  int n = 0;
  for (const auto& nd : def.nodes) n += nd.op == op;
  return n;
}

// ---- PartitionGraph ------------------------------------------------------------

TEST(PartitionTest, SingleTaskGraphIsUntouched) {
  Graph g;
  Scope s(&g);
  auto a = ops::Const(s, Tensor::Scalar(1.0));
  ops::Add(s, a, a);
  auto spec = ClusterSpec::Create(TwoWorkers()).value();
  auto parts = PartitionGraph(g, spec, DefaultDev());
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->partitions.size(), 1u);
  const auto& part = parts->partitions.begin()->second;
  EXPECT_EQ(part.nodes.size(), 2u);
  EXPECT_EQ(CountOp(part, "_Send"), 0);
}

TEST(PartitionTest, CrossTaskEdgeGetsSendRecvPair) {
  Graph g;
  Scope s(&g);
  ops::Const(s.WithDevice("/job:worker/task:0/cpu:0"), Tensor::Scalar(2.0),
             "a");
  ops::Const(s.WithDevice("/job:worker/task:1/cpu:0"), Tensor::Scalar(3.0),
             "b");
  wire::NodeDef mul;
  mul.name = "prod";
  mul.op = "Mul";
  mul.inputs = {"a", "b"};
  mul.device = "/job:worker/task:1/cpu:0";
  ASSERT_TRUE(g.AddNode(mul).ok());

  auto spec = ClusterSpec::Create(TwoWorkers()).value();
  auto parts = PartitionGraph(g, spec, DefaultDev());
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->partitions.size(), 2u);
  const auto& p0 = parts->partitions.at("pt-w0:1");
  const auto& p1 = parts->partitions.at("pt-w1:1");
  EXPECT_EQ(CountOp(p0, "_Send"), 1);
  EXPECT_EQ(CountOp(p1, "_Recv"), 1);
  EXPECT_EQ(parts->node_task.at("prod"), "pt-w1:1");
  // Every partition must be a valid graph on its own.
  EXPECT_TRUE(Graph::FromGraphDef(p0).ok());
  EXPECT_TRUE(Graph::FromGraphDef(p1).ok());
}

TEST(PartitionTest, SharedEdgeToOneTaskIsDeduplicated) {
  Graph g;
  Scope s(&g);
  auto a = ops::Const(s.WithDevice("/job:worker/task:0/cpu:0"),
                      Tensor::Scalar(2.0), "a");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  ops::Add(t1, a, a);   // two data inputs from the same remote producer
  ops::Neg(t1, a);      // third consumer
  auto spec = ClusterSpec::Create(TwoWorkers()).value();
  auto parts = PartitionGraph(g, spec, DefaultDev());
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(CountOp(parts->partitions.at("pt-w0:1"), "_Send"), 1);
  EXPECT_EQ(CountOp(parts->partitions.at("pt-w1:1"), "_Recv"), 1);
}

TEST(PartitionTest, ControlEdgeBecomesTokenSend) {
  Graph g;
  Scope s(&g);
  ops::Const(s.WithDevice("/job:worker/task:0/cpu:0"), Tensor::Scalar(1.0),
             "gate");
  wire::NodeDef gated;
  gated.name = "gated";
  gated.op = "Const";
  gated.inputs = {"^gate"};
  gated.device = "/job:worker/task:1/cpu:0";
  gated.attrs["value"] =
      wire::AttrValue::Str(wire::SerializeTensor(Tensor::Scalar(5.0)));
  gated.attrs["dtype"] = wire::AttrValue::Type(DType::kF64);
  ASSERT_TRUE(g.AddNode(gated).ok());

  auto spec = ClusterSpec::Create(TwoWorkers()).value();
  auto parts = PartitionGraph(g, spec, DefaultDev());
  ASSERT_TRUE(parts.ok());
  const auto& p0 = parts->partitions.at("pt-w0:1");
  const auto& p1 = parts->partitions.at("pt-w1:1");
  EXPECT_EQ(CountOp(p0, "_Send"), 1);
  EXPECT_EQ(CountOp(p1, "_Recv"), 1);
  // The consumer's control input now points at the recv node.
  bool rewired = false;
  for (const auto& nd : p1.nodes) {
    if (nd.name == "gated") {
      ASSERT_EQ(nd.inputs.size(), 1u);
      EXPECT_EQ(nd.inputs[0][0], '^');
      EXPECT_NE(nd.inputs[0].find("_recv/"), std::string::npos);
      rewired = true;
    }
  }
  EXPECT_TRUE(rewired);
}

TEST(PartitionTest, UnresolvableTaskFails) {
  Graph g;
  Scope s(&g);
  ops::Const(s.WithDevice("/job:worker/task:7/cpu:0"), Tensor::Scalar(1.0));
  auto spec = ClusterSpec::Create(TwoWorkers()).value();
  EXPECT_FALSE(PartitionGraph(g, spec, DefaultDev()).ok());
}

// ---- DistributedSession -----------------------------------------------------------

class DistSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = std::make_unique<ClusterSpec>(
        ClusterSpec::Create(TwoWorkers()).value());
    w0_ = Server::Create({*spec_, "worker", 0, 1}, &router_).value();
    w1_ = Server::Create({*spec_, "worker", 1, 1}, &router_).value();
  }

  InProcessRouter router_;
  std::unique_ptr<ClusterSpec> spec_;
  std::unique_ptr<Server> w0_, w1_;
};

TEST_F(DistSessionTest, CrossTaskPipelineMatchesLocal) {
  // y = (a+b) * c with (a+b) on task 0 and the multiply on task 1.
  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/gpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/gpu:0");
  auto a = ops::Const(t0, Tensor::FromVector(std::vector<double>{1, 2}), "a");
  auto b = ops::Const(t0, Tensor::FromVector(std::vector<double>{10, 20}),
                      "b");
  auto sum = ops::Add(t0, a, b);
  auto c = ops::Const(t1, Tensor::FromVector(std::vector<double>{3, 3}), "c");
  auto y = ops::Mul(t1, sum, c);

  auto session = DistributedSession::Create(&router_, *spec_,
                                            WireProtocol::kRdma,
                                            g.ToGraphDef(), DefaultDev());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ((*session)->num_partitions(), 2);
  EXPECT_EQ((*session)->TaskOf(y.node->name()).value(), "pt-w1:1");

  auto r = (*session)->Run({}, {y.name()});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ((*r)[0].data<double>()[0], 33);
  EXPECT_DOUBLE_EQ((*r)[0].data<double>()[1], 66);
}

TEST_F(DistSessionTest, FeedsRouteToOwningTask) {
  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto x = ops::Placeholder(t0, DType::kF64, Shape{}, "x");
  auto two = ops::Const(t1, Tensor::Scalar(2.0));
  auto y = ops::Mul(t1, x, two);

  auto session = DistributedSession::Create(
      &router_, *spec_, WireProtocol::kMpi, g.ToGraphDef(), DefaultDev());
  ASSERT_TRUE(session.ok());
  auto r = (*session)->Run({{"x", Tensor::Scalar(21.0)}}, {y.name()});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 42.0);

  // Repeated steps with fresh feeds work (rendezvous keys drain per step).
  auto r2 = (*session)->Run({{"x", Tensor::Scalar(-1.0)}}, {y.name()});
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ((*r2)[0].scalar<double>(), -2.0);
}

TEST_F(DistSessionTest, FetchesFromBothTasksInOneStep) {
  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto a = ops::Const(t0, Tensor::Scalar(5.0), "a");
  auto double_a = ops::Mul(t1, a, ops::Const(t1, Tensor::Scalar(2.0)));
  auto session = DistributedSession::Create(
      &router_, *spec_, WireProtocol::kRdma, g.ToGraphDef(), DefaultDev());
  ASSERT_TRUE(session.ok());
  auto r = (*session)->Run({}, {double_a.name(), a.name()});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 10.0);
  EXPECT_DOUBLE_EQ((*r)[1].scalar<double>(), 5.0);
}

TEST_F(DistSessionTest, MatMulPipelineAcrossTaskGpus) {
  // The model-parallel pipeline of examples/model_parallel, but across TWO
  // TASKS rather than two local devices — verified against local execution.
  const int64_t n = 16;
  Tensor x(DType::kF32, Shape{n, n});
  Tensor w1(DType::kF32, Shape{n, n});
  Tensor w2(DType::kF32, Shape{n, n});
  tfhpc::FillUniform(x, 1);
  tfhpc::FillUniform(w1, 2, -0.1, 0.1);
  tfhpc::FillUniform(w2, 3, -0.1, 0.1);

  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/gpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/gpu:0");
  auto cx = ops::Const(t0, x, "x");
  auto cw1 = ops::Const(t0, w1, "w1");
  auto h = ops::MatMul(t0, cx, cw1);
  auto cw2 = ops::Const(t1, w2, "w2");
  auto y = ops::MatMul(t1, h, cw2);

  auto session = DistributedSession::Create(
      &router_, *spec_, WireProtocol::kRdma, g.ToGraphDef(), DefaultDev());
  ASSERT_TRUE(session.ok());
  auto dist = (*session)->Run({}, {y.name()});
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();

  // Local reference.
  LocalRuntime rt(1);
  Scope ls = rt.root_scope();
  auto ref = rt.NewSession()->Run(
      {}, {ops::MatMul(ls, ops::MatMul(ls, ops::Const(ls, x),
                                       ops::Const(ls, w1)),
                       ops::Const(ls, w2))
               .name()});
  ASSERT_TRUE(ref.ok());
  const auto got = (*dist)[0].data<float>();
  const auto want = (*ref)[0].data<float>();
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-4f);
  }
}

TEST_F(DistSessionTest, PeerFailureCancelsStepInsteadOfHanging) {
  // Task 0's partition fails (injected fault on its RunStep); task 1's
  // partition would block forever in _Recv without step cancellation.
  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto a = ops::Const(t0, Tensor::Scalar(5.0), "a");
  auto y = ops::Mul(t1, a, ops::Const(t1, Tensor::Scalar(2.0)));

  auto session = DistributedSession::Create(
      &router_, *spec_, WireProtocol::kRdma, g.ToGraphDef(), DefaultDev());
  ASSERT_TRUE(session.ok());

  router_.InjectFault("pt-w0:1", "RunStep", Unavailable("task 0 crashed"), 1);
  auto r = (*session)->Run({}, {y.name()});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kUnavailable);  // root cause, not Cancelled

  // The session recovered: the same step succeeds afterwards.
  auto r2 = (*session)->Run({}, {y.name()});
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_DOUBLE_EQ((*r2)[0].scalar<double>(), 10.0);
}

TEST_F(DistSessionTest, UnknownFetchFails) {
  Graph g;
  Scope s(&g);
  ops::Const(s.WithDevice("/job:worker/task:0/cpu:0"), Tensor::Scalar(1.0));
  auto session = DistributedSession::Create(
      &router_, *spec_, WireProtocol::kRdma, g.ToGraphDef(), DefaultDev());
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE((*session)->Run({}, {"ghost"}).ok());
}

}  // namespace
}  // namespace tfhpc::distrib
