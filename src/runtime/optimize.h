// The full graph-optimization pipeline a session would apply before
// execution: CSE -> constant folding -> pruning to targets. Exposed as a
// standalone helper so optimized GraphDefs can be serialized, shipped to
// workers (ExtendGraph) or inspected — the paper's §II "TensorFlow can use
// information of the dataflow graph to optimize execution".
#pragma once

#include "runtime/const_fold.h"

namespace tfhpc {

struct OptimizeStats {
  int nodes_before = 0;
  int nodes_after = 0;
  int cse_merged = 0;
  int folded = 0;
};

// Applies CSE, constant folding, then pruning to `targets`. Targets must
// exist in `def`.
Result<wire::GraphDef> OptimizeGraphDef(const wire::GraphDef& def,
                                        const std::vector<std::string>& targets,
                                        OptimizeStats* stats = nullptr,
                                        const ConstFoldOptions& fold = {});

}  // namespace tfhpc
