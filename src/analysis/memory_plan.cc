#include "analysis/memory_plan.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "graph/op_def.h"

namespace tfhpc::analysis {
namespace {

// Ops whose kernels compute output[i] from input[i] in a single streaming
// pass, so output may legally share the input's bytes. Deliberately NOT
// derived from overwrites_outputs: MatMul/FFT/Transpose overwrite their
// outputs but re-read inputs at arbitrary offsets and must never alias.
bool InPlaceSafe(const std::string& op) {
  static const std::set<std::string> kSafe = {"Add",  "Sub", "Mul", "Div",
                                              "Sqrt", "Neg", "Axpy"};
  return kSafe.count(op) > 0;
}

int64_t AlignUp(int64_t v, int64_t alignment) {
  return (v + alignment - 1) / alignment * alignment;
}

struct Placement {
  int tensor = -1;   // index into live.tensors()
  int64_t offset = 0;
  int64_t extent = 0;  // aligned bytes
};

}  // namespace

const PlannedTensor* MemoryPlan::Find(const std::string& node,
                                      int slot) const {
  for (const PlannedTensor& p : planned_) {
    if (p.slot == slot && p.node == node) return &p;
  }
  return nullptr;
}

Result<MemoryPlan> MemoryPlan::Plan(const LivenessAnalysis& live,
                                    const MemoryPlanOptions& options) {
  if (options.alignment <= 0) {
    return InvalidArgument("memory plan: alignment must be positive");
  }
  MemoryPlan plan;

  // ---- classify tensors -----------------------------------------------------
  const std::vector<TensorLife>& tensors = live.tensors();
  std::vector<int> arena_candidates;
  for (size_t i = 0; i < tensors.size(); ++i) {
    const TensorLife& t = tensors[i];
    if (t.fed) continue;  // caller-owned, never charged to the step
    if (!t.statically_sized()) {
      ++plan.dynamic_tensors_;
      continue;
    }
    bool eligible = !t.fetched && t.bytes > 0;
    if (eligible) {
      const OpDef* producer = OpRegistry::Global().Lookup(live.node_op(t.def));
      eligible = producer != nullptr && producer->overwrites_outputs &&
                 // Multi-output producers stay on the pool: the executor's
                 // presize matching is by dtype/shape, so same-shaped
                 // sibling slots could swap views and inherit the wrong
                 // planned lifetime. No registered op hits this today.
                 producer->num_outputs == 1;
    }
    // Escape fence: every kernel that can see this buffer must be one that
    // only reads it and writes its own output. Ops without
    // overwrites_outputs (Assign, Identity, queue/send ops) may retain or
    // pass through the input buffer past the planned interval.
    if (eligible) {
      for (int u : t.data_uses) {
        const OpDef* consumer = OpRegistry::Global().Lookup(live.node_op(u));
        if (consumer == nullptr || !consumer->overwrites_outputs) {
          eligible = false;
          break;
        }
      }
    }
    if (eligible) {
      arena_candidates.push_back(static_cast<int>(i));
    } else {
      plan.pool_bytes_ += t.bytes;
    }
  }

  // ---- deterministic placement ----------------------------------------------
  // Producer-schedule order (largest first within a node, then slot) so the
  // same liveness always yields byte-identical plans.
  std::sort(arena_candidates.begin(), arena_candidates.end(),
            [&](int a, int b) {
              const TensorLife& ta = tensors[static_cast<size_t>(a)];
              const TensorLife& tb = tensors[static_cast<size_t>(b)];
              if (ta.def != tb.def) return ta.def < tb.def;
              if (ta.bytes != tb.bytes) return ta.bytes > tb.bytes;
              return ta.slot < tb.slot;
            });

  std::vector<Placement> placements;
  for (int id : arena_candidates) {
    const TensorLife& t = tensors[static_cast<size_t>(id)];
    const int64_t extent = AlignUp(t.bytes, options.alignment);

    // In-place aliasing: a single-data-consumer input of the same
    // dtype/shape, already in the arena, whose only reader is this
    // streaming-safe producer, donates its offset. The overwrite is safe
    // precisely because nobody else can ever look at those bytes again.
    const PlannedTensor* alias = nullptr;
    if (options.allow_in_place && InPlaceSafe(live.node_op(t.def))) {
      for (const Placement& p : placements) {
        const TensorLife& in = tensors[static_cast<size_t>(p.tensor)];
        if (in.data_uses.size() != 1 || in.data_uses[0] != t.def) continue;
        if (in.fetched || in.dtype != t.dtype || in.shape != t.shape ||
            in.bytes != t.bytes) {
          continue;
        }
        // Offset already re-donated to a sibling output of this node.
        bool taken = false;
        for (const PlannedTensor& q : plan.planned_) {
          if (q.in_place && q.offset == p.offset &&
              live.PositionOf(q.node) == t.def) {
            taken = true;
            break;
          }
        }
        if (!taken) {
          alias = plan.Find(in.node, in.slot);
        }
        if (alias != nullptr) break;
      }
    }

    int64_t offset = 0;
    if (alias != nullptr) {
      offset = alias->offset;
    } else {
      // First fit: lowest aligned offset clear of every placement whose
      // tensor is not provably dead before this producer runs. Unordered
      // (possibly concurrent) tensors always conflict — that is what makes
      // arena_bytes a sound bound under concurrent execution.
      std::vector<std::pair<int64_t, int64_t>> blocked;
      for (const Placement& p : placements) {
        const TensorLife& other = tensors[static_cast<size_t>(p.tensor)];
        if (live.DeadBefore(other, t.def)) continue;
        blocked.emplace_back(p.offset, p.offset + p.extent);
      }
      std::sort(blocked.begin(), blocked.end());
      for (const auto& [start, end] : blocked) {
        if (start - offset >= extent) break;
        offset = std::max(offset, end);
      }
    }

    placements.push_back(Placement{id, offset, extent});
    PlannedTensor pt;
    pt.node = t.node;
    pt.slot = t.slot;
    pt.offset = offset;
    pt.bytes = t.bytes;
    pt.in_place = alias != nullptr;
    if (pt.in_place) ++plan.in_place_;
    plan.arena_bytes_ = std::max(plan.arena_bytes_, offset + extent);
    plan.planned_.push_back(std::move(pt));
  }

  plan.static_peak_bytes_ = plan.arena_bytes_ + plan.pool_bytes_;

  // ---- serialized waterlines (reporting only) -------------------------------
  const int n = live.num_nodes();
  std::vector<int64_t> delta(static_cast<size_t>(n) + 1, 0);
  for (const TensorLife& t : tensors) {
    if (t.fed || !t.statically_sized() || t.bytes == 0) continue;
    delta[static_cast<size_t>(t.def)] += t.bytes;
    delta[static_cast<size_t>(t.last) + 1] -= t.bytes;
  }
  plan.waterlines_.resize(static_cast<size_t>(n), 0);
  int64_t running = 0;
  int64_t peak = -1;
  for (int i = 0; i < n; ++i) {
    running += delta[static_cast<size_t>(i)];
    plan.waterlines_[static_cast<size_t>(i)] = running;
    if (running > peak) {
      peak = running;
      plan.peak_position_ = i;
    }
  }
  return plan;
}

std::string MemoryPlan::ToString(const LivenessAnalysis& live) const {
  auto mib = [](int64_t b) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(b) / (1 << 20));
    return std::string(buf);
  };
  std::ostringstream os;
  os << "  pos  live-MiB  node\n";
  for (int i = 0; i < live.num_nodes(); ++i) {
    os << (i == peak_position_ ? "* " : "  ");
    char pos[16];
    std::snprintf(pos, sizeof(pos), "%3d", i);
    os << pos << "  " << mib(waterlines_[static_cast<size_t>(i)]) << "  "
       << live.node_name(i) << " (" << live.node_op(i) << ")\n";
  }
  os << "arena bytes:        " << arena_bytes_ << " (" << mib(arena_bytes_)
     << " MiB, " << planned_.size() << " planned, " << in_place_
     << " in-place)\n";
  os << "pool bytes:         " << pool_bytes_ << " (" << mib(pool_bytes_)
     << " MiB)\n";
  os << "static peak bytes:  " << static_peak_bytes_ << " ("
     << mib(static_peak_bytes_) << " MiB)";
  if (dynamic_tensors_ > 0) {
    os << " + " << dynamic_tensors_ << " dynamic tensor(s) unbounded";
  }
  os << "\n";
  return os.str();
}

std::vector<Diagnostic> LintMemory(const wire::GraphDef& def,
                                   const LivenessAnalysis& live,
                                   const MemoryPlan& plan,
                                   int64_t budget_bytes, int top_k) {
  std::vector<Diagnostic> diags;

  // GC018: provable budget breach, before any kernel runs.
  if (budget_bytes > 0 && plan.static_peak_bytes() > budget_bytes) {
    diags.push_back(Diagnostic{
        Severity::kError, "GC018", "",
        "static peak memory " + std::to_string(plan.static_peak_bytes()) +
            " bytes exceeds the step budget " +
            std::to_string(budget_bytes) + " bytes",
        "shrink tensor shapes, split the step, or raise "
        "step_memory_limit_bytes"});
  }

  // GC019: a variable write racing a reader of the prior value. Assign and
  // AssignAdd name their variable via the 'var' attr; the reader is the
  // Variable node of the same name. Any data consumer of the read that is
  // not ordered before the writer observes the pre- or post-write value
  // nondeterministically.
  for (const wire::NodeDef& nd : def.nodes) {
    if (nd.op != "Assign" && nd.op != "AssignAdd") continue;
    const int wpos = live.PositionOf(nd.name);
    if (wpos < 0) continue;
    auto var_attr = nd.attrs.find("var");
    if (var_attr == nd.attrs.end()) continue;
    const std::string var_name = var_attr->second.s;
    const TensorLife* read = live.Find(var_name, 0);
    if (read == nullptr) continue;
    for (int u : read->data_uses) {
      if (u == wpos || live.HappensBefore(u, wpos)) continue;
      diags.push_back(Diagnostic{
          Severity::kWarning, "GC019", nd.name,
          "overwrites variable '" + var_name + "' while consumer '" +
              live.node_name(u) + "' of its read is not ordered before the "
              "write — the consumer observes old or new value "
              "nondeterministically",
          "add a control edge from '" + live.node_name(u) + "' to '" +
              nd.name + "'"});
    }
  }

  // GC020: report-only worst lifetime-stretchers, span x bytes.
  struct Stretch {
    int64_t cost;
    const TensorLife* t;
  };
  std::vector<Stretch> stretches;
  for (const TensorLife& t : live.tensors()) {
    if (t.fed || !t.statically_sized() || t.bytes == 0) continue;
    const int span = t.last - t.def;
    if (span <= 1) continue;  // dies at/right after its producer: not a cost
    stretches.push_back(Stretch{static_cast<int64_t>(span) * t.bytes, &t});
  }
  std::sort(stretches.begin(), stretches.end(),
            [](const Stretch& a, const Stretch& b) {
              if (a.cost != b.cost) return a.cost > b.cost;
              if (a.t->node != b.t->node) return a.t->node < b.t->node;
              return a.t->slot < b.t->slot;
            });
  if (top_k > 0 && static_cast<int>(stretches.size()) > top_k) {
    stretches.resize(static_cast<size_t>(top_k));
  }
  for (const Stretch& s : stretches) {
    diags.push_back(Diagnostic{
        Severity::kInfo, "GC020", s.t->node,
        "output " + std::to_string(s.t->slot) + " (" +
            std::to_string(s.t->bytes) + " bytes) stays live across " +
            std::to_string(s.t->last - s.t->def) +
            " schedule positions (until '" + live.node_name(s.t->last) + "')",
        s.t->fetched
            ? "fetched tensors live to step end; fetch less if possible"
            : "scheduling its consumers earlier shrinks the working set"});
  }
  return diags;
}

}  // namespace tfhpc::analysis
