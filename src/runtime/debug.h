// tfdbg-lite: numeric health summaries of tensors flowing through a step
// (the paper's §II tooling: "with tfdbg it is possible to inspect contents
// of tensors ... during execution"). Enable with RunOptions::debug; the
// executor attaches a summary per output to each NodeExecRecord, and
// FormatDebugReport renders the classic watch-list view.
#pragma once

#include <string>

#include "core/tensor.h"

namespace tfhpc {

struct TensorDebugSummary {
  bool present = false;  // false for zero-output ops / meta tensors
  DType dtype = DType::kInvalid;
  Shape shape;
  double min = 0;
  double max = 0;
  double mean = 0;
  double abs_max = 0;
  int64_t nan_count = 0;
  int64_t inf_count = 0;
  int64_t zero_count = 0;

  bool healthy() const { return nan_count == 0 && inf_count == 0; }
  std::string ToString() const;
};

// Summarizes real tensors of floating dtypes; integers summarize via cast;
// meta/invalid tensors yield present=false.
TensorDebugSummary SummarizeTensor(const Tensor& t);

struct RunMetadata;  // fwd (runtime/executor.h)

}  // namespace tfhpc
