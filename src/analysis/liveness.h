// Static tensor liveness over a GraphDef closure: for every output tensor of
// every scheduled node, when does it come alive and when is it provably dead?
//
// The schedule mirrors Executor::CompileOn exactly — the fetch/target closure
// with feeds as cut points, in topological order — so the intervals computed
// here describe the tensors the executor will actually materialize:
//
//   * fed tensors are live from step start (the caller owns them before the
//     first node runs);
//   * fetched tensors are live to step end (they leave the step);
//   * control-edge-only consumers extend a lifetime conservatively — every
//     output slot of the producer stays live until the control consumer has
//     completed (the edge orders completion, not one slot's value);
//   * a tensor with no consumers dies with its producer.
//
// Because the executor runs independent nodes CONCURRENTLY, the serialized
// interval [def, last_use] is not a safe reuse criterion by itself: two
// tensors from parallel chains can be simultaneously live even when their
// serialized intervals are disjoint. LivenessAnalysis therefore also carries
// the happens-before relation (ancestor bitsets over the schedule), and
// DeadBefore() is the partial-order test the memory planner
// (analysis/memory_plan.h) uses: tensor B may occupy A's bytes only when
// every use of A — producer included — completes-before B's producer runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/shape_inference.h"
#include "analysis/verifier.h"
#include "core/status.h"
#include "wire/messages.h"

namespace tfhpc::analysis {

// One output tensor's static facts: identity, extent (when known) and the
// schedule positions that define its lifetime.
struct TensorLife {
  std::string node;  // producer node name
  int slot = 0;      // producer output slot

  int def = 0;       // schedule position of the producer
  int last = 0;      // schedule position of the last consumer (>= def)
  bool fed = false;      // live from step start (caller-owned storage)
  bool fetched = false;  // live to step end (leaves the step)

  // Schedule positions whose nodes touch this tensor: the producer plus
  // every data consumer, plus control-edge consumers of the producer
  // (conservative — a control edge orders the whole node, so it pins every
  // output slot). Reuse of this tensor's bytes requires all of these to
  // happen-before the reuser.
  std::vector<int> uses;
  // The subset of uses that receive this tensor as a data input (the nodes
  // whose kernels can actually see the buffer). The planner's escape fence
  // inspects these: every data consumer must be an overwrite-declaring op
  // before the tensor may live in the arena.
  std::vector<int> data_uses;

  // Statically known extent; bytes < 0 marks a dynamic/unknown tensor.
  DType dtype = DType::kInvalid;
  Shape shape;
  int64_t bytes = -1;

  bool statically_sized() const { return bytes >= 0; }
};

// Liveness facts for one (graph, signature) pair.
class LivenessAnalysis {
 public:
  // Scheduled closure node names in topological order. Fed nodes are
  // included (they occupy a position, complete at step start).
  const std::vector<std::string>& schedule() const { return schedule_; }
  const std::string& node_name(int pos) const {
    return schedule_[static_cast<size_t>(pos)];
  }
  const std::string& node_op(int pos) const {
    return ops_[static_cast<size_t>(pos)];
  }
  int num_nodes() const { return static_cast<int>(schedule_.size()); }
  // Schedule position of a closure node; -1 when pruned/unknown.
  int PositionOf(const std::string& name) const;

  const std::vector<TensorLife>& tensors() const { return tensors_; }
  // Tensor ids (indexes into tensors()) produced at schedule position `pos`.
  const std::vector<int>& tensors_of(int pos) const {
    return node_tensors_[static_cast<size_t>(pos)];
  }
  const TensorLife* Find(const std::string& node, int slot) const;

  // True when node at schedule position `a` provably completes before the
  // node at `b` starts (a is a proper ancestor of b through data or control
  // edges). Reflexively false: a node does not happen-before itself.
  bool HappensBefore(int a, int b) const;

  // The planner's reuse test: every use of `t` (producer and all consumers)
  // happens-before schedule position `pos`. Fed and fetched tensors are
  // never disjoint from anything (they span the step boundary).
  bool DeadBefore(const TensorLife& t, int pos) const;

  // Builds liveness for the signature's fetch/target closure (feeds cut the
  // walk, exactly like Executor::CompileOn). With no fetches/targets the
  // whole graph is analyzed (graphcheck CLI mode) and nothing is marked
  // fetched. `annotations` are VerifyGraph's inferred output facts; slots
  // without a fully-known annotation become dynamic (bytes = -1).
  // Fails on structural breakage (unknown ops, unresolvable inputs, cycles)
  // — run VerifyGraph first and only call this on error-free graphs.
  static Result<LivenessAnalysis> Compute(
      const wire::GraphDef& def, const AnalysisOptions& options,
      const std::map<std::string, std::vector<InferredTensor>>& annotations);

 private:
  std::vector<std::string> schedule_;
  std::vector<std::string> ops_;
  std::map<std::string, int> position_;
  std::vector<TensorLife> tensors_;
  std::vector<std::vector<int>> node_tensors_;  // per schedule position
  std::map<std::pair<std::string, int>, int> tensor_index_;
  // ancestors_[i] = bitset (over schedule positions) of proper ancestors.
  std::vector<std::vector<uint64_t>> ancestors_;
  size_t words_ = 0;
};

}  // namespace tfhpc::analysis
