// The FusedElementwise stage spec: the attr encoding shared by the fusion
// pass (src/optimizer/fusion.cc, which writes it), the kernel
// (src/kernels/fused_kernels.cc, which executes it) and the ShapeFn
// (src/analysis/shape_inference.cc, which type-checks it).
//
//   "ops"    ';'-joined stage op names, e.g. "Add;Mul;Sqrt"
//   "args"   per-stage ','-joined operand refs, stages ';'-joined;
//            "p" = previous stage's result, "iN" = fused-node data input N
//   "to_<k>" Type attr carrying stage k's Cast target dtype
#pragma once

#include <string>
#include <vector>

#include "core/status.h"
#include "core/tensor.h"
#include "wire/messages.h"

namespace tfhpc::optimizer {

struct FusedStage {
  std::string op;
  // Operand refs in stage order: >= 0 indexes the fused node's data inputs,
  // kPrev is the previous stage's result.
  std::vector<int> operands;
  DType cast_to = DType::kInvalid;  // set iff op == "Cast"

  static constexpr int kPrev = -1;
};

// True for the reduction ops a fused chain may absorb as its FINAL stage
// (Dot: 2 operands, ReduceSum: 1). The chain's elementwise single pass then
// ends in a scalar instead of a vector — one memory sweep for e.g. axpy+dot.
bool IsFusedReduction(const std::string& op);

// Parses and structurally validates the stage spec of a FusedElementwise
// NodeDef: ops/args agree in stage count, operand arity matches each op
// (binary 2, Axpy 3, unary 1, Dot 2, ReduceSum 1), stage 0 never references
// kPrev, every later stage does at least once, Cast stages carry their to_<k>
// attr, and a reduction op appears only as the last of 2+ stages (consuming
// the previous result). `num_inputs` bounds the iN refs.
Result<std::vector<FusedStage>> ParseFusedStages(const wire::NodeDef& def,
                                                 int num_inputs);

}  // namespace tfhpc::optimizer
