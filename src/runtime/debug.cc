#include "runtime/debug.h"

#include <cmath>
#include <sstream>

namespace tfhpc {
namespace {

template <typename T>
void Accumulate(const Tensor& t, TensorDebugSummary* s) {
  const auto data = t.data<T>();
  double sum = 0;
  bool first = true;
  for (T raw : data) {
    const double v = static_cast<double>(raw);
    if (std::isnan(v)) {
      s->nan_count++;
      continue;
    }
    if (std::isinf(v)) {
      s->inf_count++;
      continue;
    }
    if (v == 0) s->zero_count++;
    if (first) {
      s->min = s->max = v;
      first = false;
    } else {
      s->min = std::min(s->min, v);
      s->max = std::max(s->max, v);
    }
    s->abs_max = std::max(s->abs_max, std::abs(v));
    sum += v;
  }
  const int64_t finite =
      t.num_elements() - s->nan_count - s->inf_count;
  s->mean = finite > 0 ? sum / static_cast<double>(finite) : 0;
}

void AccumulateComplex(const Tensor& t, TensorDebugSummary* s) {
  // Complex tensors summarize by magnitude.
  const auto data = t.data<std::complex<double>>();
  double sum = 0;
  bool first = true;
  for (const auto& z : data) {
    const double v = std::abs(z);
    if (std::isnan(v)) {
      s->nan_count++;
      continue;
    }
    if (std::isinf(v)) {
      s->inf_count++;
      continue;
    }
    if (v == 0) s->zero_count++;
    if (first) {
      s->min = s->max = v;
      first = false;
    } else {
      s->min = std::min(s->min, v);
      s->max = std::max(s->max, v);
    }
    s->abs_max = std::max(s->abs_max, v);
    sum += v;
  }
  const int64_t finite = t.num_elements() - s->nan_count - s->inf_count;
  s->mean = finite > 0 ? sum / static_cast<double>(finite) : 0;
}

}  // namespace

TensorDebugSummary SummarizeTensor(const Tensor& t) {
  TensorDebugSummary s;
  if (!t.valid() || t.is_meta() || t.num_elements() == 0) return s;
  s.dtype = t.dtype();
  s.shape = t.shape();
  switch (t.dtype()) {
    case DType::kF32: Accumulate<float>(t, &s); break;
    case DType::kF64: Accumulate<double>(t, &s); break;
    case DType::kI32: Accumulate<int32_t>(t, &s); break;
    case DType::kI64: Accumulate<int64_t>(t, &s); break;
    case DType::kU8: Accumulate<uint8_t>(t, &s); break;
    case DType::kC128: AccumulateComplex(t, &s); break;
    default: return s;  // bool etc.: structure only
  }
  s.present = true;
  return s;
}

std::string TensorDebugSummary::ToString() const {
  if (!present) return "(no data)";
  std::ostringstream os;
  os << DTypeName(dtype) << shape.ToString() << " min=" << min
     << " max=" << max << " mean=" << mean;
  if (nan_count > 0) os << " NaN=" << nan_count;
  if (inf_count > 0) os << " Inf=" << inf_count;
  if (!healthy()) os << " [UNHEALTHY]";
  return os.str();
}

}  // namespace tfhpc
