#include "distrib/client.h"

namespace tfhpc::distrib {

Result<std::string> RemoteTask::Call(const std::string& method,
                                     const std::string& payload) {
  wire::RpcEnvelope req;
  req.method = method;
  req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  req.payload = payload;
  TFHPC_ASSIGN_OR_RETURN(wire::RpcEnvelope resp,
                         router_->Call(addr_, proto_, req));
  if (resp.status_code != 0) {
    return Status(static_cast<Code>(resp.status_code),
                  addr_ + "/" + method + ": " + resp.status_msg);
  }
  return std::move(resp.payload);
}

Status RemoteTask::Ping() {
  auto r = Call("Ping", "hello");
  if (!r.ok()) return r.status();
  if (*r != "hello") return Internal("ping payload corrupted");
  return Status::OK();
}

Status RemoteTask::Enqueue(const std::string& queue, const Tensor& tensor,
                           int64_t capacity) {
  auto r = Call("Enqueue", EncodeQueuePayload(queue, &tensor, capacity));
  return r.ok() ? Status::OK() : r.status();
}

Result<Tensor> RemoteTask::Dequeue(const std::string& queue,
                                   int64_t capacity) {
  TFHPC_ASSIGN_OR_RETURN(
      std::string payload,
      Call("Dequeue", EncodeQueuePayload(queue, nullptr, capacity)));
  return wire::ParseTensor(payload);
}

Status RemoteTask::CloseQueue(const std::string& queue) {
  auto r = Call("CloseQueue", EncodeQueuePayload(queue, nullptr, 0));
  return r.ok() ? Status::OK() : r.status();
}

Status RemoteTask::VarAssign(const std::string& var, const Tensor& tensor) {
  auto r = Call("VarWrite", EncodeVarPayload(var, &tensor, /*accumulate=*/false,
                                             /*want_value=*/false));
  return r.ok() ? Status::OK() : r.status();
}

Status RemoteTask::VarAssignAdd(const std::string& var, const Tensor& tensor) {
  auto r = Call("VarWrite", EncodeVarPayload(var, &tensor, /*accumulate=*/true,
                                             /*want_value=*/false));
  return r.ok() ? Status::OK() : r.status();
}

Result<Tensor> RemoteTask::VarRead(const std::string& var) {
  TFHPC_ASSIGN_OR_RETURN(
      std::string payload,
      Call("VarRead", EncodeVarPayload(var, nullptr, false, false)));
  return wire::ParseTensor(payload);
}

Status RemoteTask::RendezvousSend(const std::string& key,
                                  const Tensor& tensor) {
  auto r = Call("RendezvousSend", EncodeQueuePayload(key, &tensor, 0));
  return r.ok() ? Status::OK() : r.status();
}

Status RemoteTask::AbortStep(const std::string& reason) {
  auto r = Call("AbortStep", reason);
  return r.ok() ? Status::OK() : r.status();
}

Status RemoteTask::ResetStep() {
  auto r = Call("ResetStep", "");
  return r.ok() ? Status::OK() : r.status();
}

Status RemoteTask::ExtendGraph(const wire::GraphDef& def) {
  auto r = Call("ExtendGraph", def.Serialize());
  return r.ok() ? Status::OK() : r.status();
}

Result<std::vector<Tensor>> RemoteTask::RunStep(
    const std::map<std::string, Tensor>& feeds,
    const std::vector<std::string>& fetches,
    const std::vector<std::string>& targets, bool simulate) {
  RunStepRequest req;
  req.feeds = feeds;
  req.fetches = fetches;
  req.targets = targets;
  req.simulate = simulate;
  TFHPC_ASSIGN_OR_RETURN(std::string payload,
                         Call("RunStep", req.Serialize()));
  return DecodeTensorList(payload);
}

}  // namespace tfhpc::distrib
