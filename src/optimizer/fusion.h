// Elementwise-chain fusion (the aggressive pipeline stage): collapses linear
// chains of Add/Sub/Mul/Div/Sqrt/Neg/Axpy/Cast into a single
// FusedElementwise node that executes the whole chain in one kernel dispatch
// over pooled buffers. A chain is fused only when GraphCheck shape inference
// *proves* compatibility: every stage's output has the same fully-known
// shape and an f32/f64 dtype, every external operand is chain-shaped or
// scalar, and no interior node is observable (single consumer, no control
// consumers, not in the run signature).
//
// The fused node takes the chain tail's name, so consumers and fetches of
// the chain result need no rewriting; interior names disappear. Attr
// encoding (shared with the kernel in src/kernels/fused_kernels.cc and the
// ShapeFn in src/analysis/shape_inference.cc):
//   "ops"    ';'-joined stage op names, e.g. "Add;Mul;Sqrt"
//   "args"   per-stage ','-joined operand refs, stages ';'-joined;
//            "p" = previous stage's result, "iN" = fused-node data input N
//   "to_<k>" Type attr carrying stage k's Cast target dtype
#pragma once

#include "optimizer/optimizer.h"

namespace tfhpc::optimizer {

// Returns `def` rewritten with every provably-safe chain fused.
// `chains_fused` counts emitted FusedElementwise nodes; `nodes_fused_away`
// counts graph nodes eliminated. Graphs with GraphCheck errors are returned
// unchanged (the verifier gate owns reporting them).
Result<wire::GraphDef> FuseElementwiseChains(const wire::GraphDef& def,
                                             const PipelineOptions& options,
                                             int* chains_fused,
                                             int* nodes_fused_away);

}  // namespace tfhpc::optimizer
