#include "runtime/session.h"

#include "graph/ops.h"

namespace tfhpc {

Session::Session(Graph* graph, DeviceMgr* devices, ResourceMgr* resources,
                 DeviceName default_device)
    : graph_(graph),
      executor_(graph, devices, resources, std::move(default_device)) {}

Result<std::vector<Tensor>> Session::Run(
    const std::map<std::string, Tensor>& feeds,
    const std::vector<std::string>& fetches,
    const std::vector<std::string>& targets, const RunOptions& options,
    RunMetadata* metadata) {
  return executor_.Run(feeds, fetches, targets, options, metadata);
}

Result<std::string> Session::DevicePlacement(const std::string& node_name) {
  const Node* n = graph_->FindNode(node_name);
  if (n == nullptr) return NotFound("node '" + node_name + "' not found");
  TFHPC_ASSIGN_OR_RETURN(Device * d, executor_.PlaceNode(*n));
  return d->name_string();
}

LocalRuntime::LocalRuntime(int num_gpus, ComputeModel gpu_model)
    : devices_(DeviceMgr::CreateLocal("localhost", 0, num_gpus,
                                      std::move(gpu_model))) {}

std::unique_ptr<Session> LocalRuntime::NewSession() {
  DeviceName default_device;
  default_device.job = "localhost";
  default_device.task = 0;
  return std::make_unique<Session>(&graph_, devices_.get(), &resources_,
                                   default_device);
}

}  // namespace tfhpc
