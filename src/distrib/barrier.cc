#include "distrib/barrier.h"

namespace tfhpc::distrib {

QueueBarrier::QueueBarrier(InProcessRouter* router,
                           std::string coordinator_addr, WireProtocol protocol,
                           std::string name, int num_workers)
    : router_(router),
      coordinator_addr_(std::move(coordinator_addr)),
      protocol_(protocol),
      name_(std::move(name)),
      num_workers_(num_workers) {
  TFHPC_CHECK_GT(num_workers_, 0);
}

Result<int64_t> QueueBarrier::Arrive(int worker_id, CancellationToken* token) {
  if (worker_id < 0 || worker_id >= num_workers_) {
    return InvalidArgument("barrier '" + name_ + "': bad worker id " +
                           std::to_string(worker_id));
  }
  RemoteTask coordinator(router_, coordinator_addr_, protocol_);
  // Token carries the worker id (the coordinator only counts them, but ids
  // make debugging stuck barriers possible).
  TFHPC_RETURN_IF_ERROR(coordinator.Enqueue(
      InQueue(), Tensor::Scalar<int64_t>(worker_id), /*capacity=*/0, token));
  TFHPC_ASSIGN_OR_RETURN(
      Tensor round, coordinator.Dequeue(OutQueue(worker_id), /*capacity=*/0,
                                        token));
  return round.scalar<int64_t>();
}

Status QueueBarrier::RunCoordinator(InProcessRouter* router,
                                    const std::string& coordinator_addr,
                                    WireProtocol protocol,
                                    const std::string& name, int num_workers,
                                    int rounds) {
  RemoteTask self(router, coordinator_addr, protocol);
  const std::string in_queue = name + "/in";
  for (int64_t round = 0; round < rounds; ++round) {
    for (int arrived = 0; arrived < num_workers; ++arrived) {
      TFHPC_ASSIGN_OR_RETURN(Tensor token, self.Dequeue(in_queue));
      const int64_t id = token.scalar<int64_t>();
      if (id < 0 || id >= num_workers) {
        return Internal("barrier '" + name + "': stray token " +
                        std::to_string(id));
      }
    }
    for (int w = 0; w < num_workers; ++w) {
      TFHPC_RETURN_IF_ERROR(self.Enqueue(
          name + "/out_" + std::to_string(w), Tensor::Scalar<int64_t>(round)));
    }
  }
  return Status::OK();
}

}  // namespace tfhpc::distrib
