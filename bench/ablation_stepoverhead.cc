// Ablation: how much of CG's scaling ceiling is client-side step overhead
// (the paper's §VIII: Python dispatch and the GIL "hamper performance of
// applications where logic is difficult to express in the computation
// graph")? Sweep the per-step overhead from zero (a native-runtime ideal)
// to 4 ms (a congested Python client) on the V100 series.
#include <cstdio>

#include "apps/cg.h"
#include "bench_util.h"

using namespace tfhpc;

int main() {
  bench::Header("Ablation — client step overhead vs CG scaling",
                "paper §VIII (Python dispatch limits latency-bound phases)");

  std::printf("%-16s | %9s %9s %9s | 2->4    4->8\n", "step overhead",
              "2 GPU", "4 GPU", "8 GPU");
  bench::Rule();
  for (double overhead : {0.0, 0.25e-3, 1e-3, 4e-3}) {
    sim::MachineConfig cfg = sim::KebnekaiseConfig(sim::GpuKind::kV100);
    cfg.step_overhead_s = overhead;
    double gflops[3];
    int idx = 0;
    for (int gpus : {2, 4, 8}) {
      apps::CgOptions opts;
      opts.n = 32768;
      opts.num_workers = gpus;
      opts.max_iterations = 100;
      auto r = apps::SimulateCg(cfg, sim::Protocol::kRdma, opts);
      if (!r.ok()) {
        std::printf("simulate failed: %s\n", r.status().ToString().c_str());
        return 1;
      }
      gflops[idx++] = r->gflops;
    }
    std::printf("%13.2f ms | %9.1f %9.1f %9.1f | %.2fx   %.2fx\n",
                overhead * 1e3, gflops[0], gflops[1], gflops[2],
                gflops[1] / gflops[0], gflops[2] / gflops[1]);
  }
  bench::Rule();
  std::printf("(V100, N=32768, 100 iterations; zero overhead approaches "
              "linear scaling — the ceiling is the client, not the wire)\n");
  return 0;
}
