// 1-D complex FFT implementations: iterative radix-2 Cooley-Tukey for
// power-of-two lengths and Bluestein's chirp-z algorithm for arbitrary
// lengths. Used by the FFT kernel and directly by the distributed FFT
// application (which mirrors the paper's decimation-in-time tiling).
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace tfhpc::fft {

// In-place forward/inverse FFT of length n == data.size(). Inverse includes
// the 1/n normalization (NumPy convention).
void Transform(std::vector<std::complex<double>>& data, bool inverse);

// Out-of-place convenience.
std::vector<std::complex<double>> Forward(
    const std::vector<std::complex<double>>& x);
std::vector<std::complex<double>> Inverse(
    const std::vector<std::complex<double>>& x);

// Reference O(n^2) DFT used by property tests.
std::vector<std::complex<double>> NaiveDft(
    const std::vector<std::complex<double>>& x, bool inverse = false);

// Cooley-Tukey recombination step used by the distributed FFT: given the
// DFTs of the `s` interleaved sub-sequences of a length-n signal
// (sub[k][j] = DFT of x[k], x[k+s], ...), computes the length-n DFT.
// Requires n % s == 0. This is the "merge with twiddle factors" the paper's
// merger performs in Python.
std::vector<std::complex<double>> CooleyTukeyMerge(
    const std::vector<std::vector<std::complex<double>>>& sub);

bool IsPowerOfTwo(int64_t n);

}  // namespace tfhpc::fft
