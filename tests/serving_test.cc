// Serving-layer tests: CancellationToken semantics, cancellation/deadline
// behaviour of every blocking primitive (rendezvous _Recv, queue
// enqueue/dequeue, barrier waits), ServingController admission/fairness/
// shedding, deadline propagation over the wire (client stamp -> server
// refusal -> bounded waits), retry-budget clamping, and thread-safety of
// concurrent Session::Run over one shared cached Executable. The
// concurrency tests here are the TSan regression suite for the serving PR.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "distrib/barrier.h"
#include "distrib/dist_session.h"
#include "distrib/server.h"
#include "graph/ops.h"
#include "runtime/cancellation.h"
#include "runtime/serving.h"
#include "runtime/session.h"

namespace tfhpc::distrib {
namespace {

int64_t ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// ---- CancellationToken ----------------------------------------------------------

TEST(CancellationTokenTest, FirstCancelWinsAndCallbacksRun) {
  CancellationToken token;
  EXPECT_TRUE(token.Check().ok());
  EXPECT_FALSE(token.cancelled());

  std::atomic<int> fired{0};
  uint64_t id = token.OnCancel([&] { fired.fetch_add(1); });
  (void)id;
  token.Cancel(Cancelled("first"));
  token.Cancel(Unavailable("second"));  // loses: first status sticks
  EXPECT_EQ(fired.load(), 1);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.Check().code(), Code::kCancelled);
  EXPECT_NE(token.Check().message().find("first"), std::string::npos);

  // Registering on an already-cancelled token runs the callback inline.
  std::atomic<int> late{0};
  token.OnCancel([&] { late.fetch_add(1); });
  EXPECT_EQ(late.load(), 1);
}

TEST(CancellationTokenTest, DeadlineExpiryNeedsNoCancelCall) {
  auto token = CancellationToken::WithTimeout(30);
  EXPECT_TRUE(token->has_deadline());
  EXPECT_TRUE(token->Check().ok());
  EXPECT_GT(token->remaining_ms(), 0);
  EXPECT_GT(token->deadline_ns(), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(token->Check().code(), Code::kDeadlineExceeded);
  EXPECT_LE(token->remaining_ms(), 0);
}

TEST(CancellationTokenTest, TightenOnlyMovesDeadlineEarlier) {
  auto token = CancellationToken::WithTimeout(10000);
  const auto tight =
      CancellationToken::Clock::now() + std::chrono::milliseconds(50);
  token->TightenDeadline(tight);
  EXPECT_LE(token->remaining_ms(), 50);
  // Attempting to loosen is a no-op.
  token->TightenDeadline(CancellationToken::Clock::now() +
                         std::chrono::seconds(60));
  EXPECT_LE(token->remaining_ms(), 50);
}

// ---- rendezvous under cancellation ----------------------------------------------

TEST(ServingCancelTest, CancelUnblocksRecvWaiter) {
  Rendezvous rv;
  CancellationToken token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.Cancel(Cancelled("client went away"));
  });
  const auto start = std::chrono::steady_clock::now();
  auto r = rv.Recv("never_sent", &token);
  canceller.join();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kCancelled);
  EXPECT_LT(ElapsedMs(start), 5000);
  // The rendezvous itself is NOT poisoned: other steps keep working.
  ASSERT_TRUE(rv.Send("k", Tensor::Scalar(1.0)).ok());
  EXPECT_TRUE(rv.Recv("k").ok());
}

TEST(ServingCancelTest, DeadlineUnblocksRecvWaiterWithoutCancel) {
  Rendezvous rv;
  auto token = CancellationToken::WithTimeout(50);
  const auto start = std::chrono::steady_clock::now();
  auto r = rv.Recv("never_sent", token.get());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kDeadlineExceeded);
  EXPECT_GE(ElapsedMs(start), 40);
  EXPECT_LT(ElapsedMs(start), 5000);
}

// ---- queues under cancellation --------------------------------------------------

TEST(ServingCancelTest, CancelUnblocksDequeueButQueueStaysOpen) {
  FIFOQueue q("q");
  CancellationToken token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.Cancel(Cancelled("step aborted"));
  });
  auto r = q.Dequeue(&token);
  canceller.join();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kCancelled);
  // Unlike Close, cancellation only fails the *waiter*: the queue remains
  // usable for other tenants.
  ASSERT_TRUE(q.Enqueue(Tensor::Scalar(2.0)).ok());
  EXPECT_DOUBLE_EQ(q.Dequeue()->scalar<double>(), 2.0);
}

TEST(ServingCancelTest, DeadlineUnblocksFullQueueEnqueue) {
  FIFOQueue q("q", /*capacity=*/1);
  ASSERT_TRUE(q.Enqueue(Tensor::Scalar(1.0)).ok());  // now full
  auto token = CancellationToken::WithTimeout(50);
  auto st = q.Enqueue(Tensor::Scalar(2.0), token.get());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Code::kDeadlineExceeded);
  // The parked element was not half-applied.
  EXPECT_DOUBLE_EQ(q.Dequeue()->scalar<double>(), 1.0);
  EXPECT_EQ(q.size(), 0u);
}

TEST(ServingCancelTest, CancelAllQueueWaitersWakesEveryWaiterOnce) {
  ResourceMgr rm;
  ASSERT_TRUE(rm.LookupOrCreateQueue("a", 0).ok());
  ASSERT_TRUE(rm.LookupOrCreateQueue("b", 0).ok());
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  std::vector<Status> results(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&, i] {
      FIFOQueue* q = rm.LookupOrCreateQueue(i % 2 ? "a" : "b", 0).value();
      results[i] = q->Dequeue().status();
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  rm.CancelAllQueueWaiters(Cancelled("step aborted"));
  for (auto& t : waiters) t.join();
  for (const Status& st : results) {
    EXPECT_EQ(st.code(), Code::kCancelled) << st.ToString();
  }
  // Epoch cancellation, not close: both queues still accept traffic.
  FIFOQueue* a = rm.LookupOrCreateQueue("a", 0).value();
  ASSERT_TRUE(a->Enqueue(Tensor::Scalar(7.0)).ok());
  EXPECT_DOUBLE_EQ(a->Dequeue()->scalar<double>(), 7.0);
}

// ---- executor: step deadline / cancellation -------------------------------------

TEST(ServingExecutorTest, RunTimeoutFailsBlockedStepNotHangs) {
  LocalRuntime rt(/*num_gpus=*/0);
  Scope s = rt.root_scope();
  auto out = ops::QueueDequeue(s, "fed_externally");
  auto sess = rt.NewSession();
  RunOptions options;
  options.timeout_ms = 80;
  const auto start = std::chrono::steady_clock::now();
  auto r = sess->Run({}, {out.name()}, {}, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kDeadlineExceeded) << r.status().ToString();
  EXPECT_LT(ElapsedMs(start), 10000);
  // The session survives: feed the queue, re-run the same signature.
  FIFOQueue* q = rt.resources().LookupOrCreateQueue("fed_externally", 0).value();
  ASSERT_TRUE(q->Enqueue(Tensor::Scalar(4.0)).ok());
  auto r2 = sess->Run({}, {out.name()});
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_DOUBLE_EQ((*r2)[0].scalar<double>(), 4.0);
}

TEST(ServingExecutorTest, CallerTokenCancelsBlockedStep) {
  LocalRuntime rt(/*num_gpus=*/0);
  Scope s = rt.root_scope();
  auto out = ops::QueueDequeue(s, "never_fed");
  auto sess = rt.NewSession();
  CancellationToken token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.Cancel(Cancelled("caller gave up"));
  });
  RunOptions options;
  options.cancellation = &token;
  auto r = sess->Run({}, {out.name()}, {}, options);
  canceller.join();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kCancelled) << r.status().ToString();
}

TEST(ServingExecutorTest, ExpiredTokenRefusedBeforeDispatch) {
  LocalRuntime rt(/*num_gpus=*/0);
  Scope s = rt.root_scope();
  auto c = ops::Const(s, Tensor::Scalar(1.0));
  auto sess = rt.NewSession();
  auto token = CancellationToken::WithTimeout(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  RunOptions options;
  options.cancellation = token.get();
  auto r = sess->Run({}, {c.name()}, {}, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kDeadlineExceeded);
}

// ---- concurrent Session::Run over a shared cached Executable --------------------
// TSan regression for the executable-cache races: the LRU bump under
// cache_mu_, the atomic Graph::version() stale check, and trace-mode's
// precomputed input names.

TEST(ServingConcurrencyTest, ConcurrentRunsShareOneCachedExecutable) {
  LocalRuntime rt(/*num_gpus=*/0);
  Scope s = rt.root_scope();
  auto x = ops::Placeholder(s, DType::kF64, Shape{4}, "x");
  auto y = ops::Mul(s, x, ops::Const(s, Tensor::Scalar(3.0)));
  for (int i = 0; i < 4; ++i) y = ops::Add(s, y, y);
  auto sess = rt.NewSession();

  constexpr int kThreads = 8;
  constexpr int kStepsPerThread = 50;
  const Tensor feed = Tensor::FromVector(std::vector<double>{1, 2, 3, 4});
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kStepsPerThread; ++i) {
        auto r = sess->Run({{"x", feed}}, {y.name()});
        if (!r.ok() || (*r)[0].data<double>()[0] != 48.0) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // One compile, everyone else hit the shared cache entry.
  EXPECT_EQ(sess->executable_cache_misses(), 1);
  EXPECT_EQ(sess->executable_cache_hits(),
            kThreads * kStepsPerThread - 1);
}

TEST(ServingConcurrencyTest, ConcurrentTracedRunsDoNotRaceTheGraph) {
  // Trace mode reads per-node input names while recording; with concurrent
  // steps those reads must not touch mutable graph state (they come from
  // the compiled plan's precomputed names).
  LocalRuntime rt(/*num_gpus=*/0);
  Scope s = rt.root_scope();
  auto a = ops::Const(s, Tensor::Scalar(2.0));
  auto b = ops::Add(s, a, a);
  auto sess = rt.NewSession();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        RunOptions options;
        options.trace = true;
        RunMetadata meta;
        auto r = sess->Run({}, {b.name()}, {}, options, &meta);
        if (!r.ok() || meta.nodes.empty()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---- ServingController ----------------------------------------------------------

TEST(ServingControllerTest, AdmitsUpToMaxInflightThenQueues) {
  ServingOptions opts;
  opts.max_inflight = 2;
  opts.max_queued = 8;
  ServingController ctl(opts);
  ASSERT_TRUE(ctl.Admit("a", nullptr).ok());
  ASSERT_TRUE(ctl.Admit("a", nullptr).ok());
  EXPECT_EQ(ctl.stats().inflight, 2);

  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    ASSERT_TRUE(ctl.Admit("b", nullptr).ok());
    granted.store(true);
    ctl.Release();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(granted.load());  // still at capacity
  EXPECT_EQ(ctl.stats().queued, 1);
  ctl.Release();  // frees a slot -> the queued ticket is granted
  waiter.join();
  EXPECT_TRUE(granted.load());
  ctl.Release();
  EXPECT_EQ(ctl.stats().inflight, 0);
  EXPECT_EQ(ctl.stats().admitted, 3);
  EXPECT_EQ(ctl.stats().completed, 3);
}

TEST(ServingControllerTest, ShedsWithRetryAfterWhenQueueFull) {
  ServingOptions opts;
  opts.max_inflight = 1;
  opts.max_queued = 1;
  opts.retry_after_ms = 17;
  ServingController ctl(opts);
  ASSERT_TRUE(ctl.Admit("a", nullptr).ok());  // occupies the slot

  std::thread queued([&] {
    // Fills the one queue spot, waits until the slot frees below.
    ASSERT_TRUE(ctl.Admit("b", nullptr).ok());
    ctl.Release();
  });
  while (ctl.stats().queued < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto start = std::chrono::steady_clock::now();
  Status st = ctl.Admit("c", nullptr);  // queue full -> shed immediately
  EXPECT_EQ(st.code(), Code::kUnavailable);
  EXPECT_NE(st.message().find("retry_after_ms=17"), std::string::npos)
      << st.ToString();
  EXPECT_LT(ElapsedMs(start), 1000) << "shedding must be immediate";
  EXPECT_EQ(ctl.stats().shed, 1);
  ctl.Release();
  queued.join();
}

TEST(ServingControllerTest, FairRoundRobinAcrossClients) {
  // Client A queues two tickets before client B queues one; the grant order
  // must round-robin A, B, A — B's single step is not starved behind A's
  // backlog.
  ServingOptions opts;
  opts.max_inflight = 1;
  opts.max_queued = 8;
  ServingController ctl(opts);
  ASSERT_TRUE(ctl.Admit("z_warm", nullptr).ok());  // hold the only slot

  std::mutex order_mu;
  std::vector<std::string> order;
  std::vector<std::thread> waiters;
  auto spawn = [&](const std::string& client) {
    waiters.emplace_back([&, client] {
      ASSERT_TRUE(ctl.Admit(client, nullptr).ok());
      {
        std::lock_guard<std::mutex> lk(order_mu);
        order.push_back(client);
      }
      ctl.Release();
    });
    // Serialize queue arrival so per-client FIFO order is deterministic.
    const int target = static_cast<int>(waiters.size());
    while (ctl.stats().queued < target) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  spawn("a");
  spawn("a");
  spawn("b");
  ctl.Release();  // free the slot; grants chain a -> b -> a
  for (auto& t : waiters) t.join();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "a");
  EXPECT_EQ(order[1], "b");
  EXPECT_EQ(order[2], "a");
  EXPECT_EQ(ctl.stats().inflight, 0);
}

TEST(ServingControllerTest, QueuedTicketHonorsDeadlineAndCancel) {
  ServingOptions opts;
  opts.max_inflight = 1;
  opts.max_queued = 8;
  ServingController ctl(opts);
  ASSERT_TRUE(ctl.Admit("holder", nullptr).ok());

  // Deadline while queued -> kDeadlineExceeded, ticket evaporates.
  auto deadline_token = CancellationToken::WithTimeout(40);
  const auto start = std::chrono::steady_clock::now();
  Status st = ctl.Admit("impatient", deadline_token.get());
  EXPECT_EQ(st.code(), Code::kDeadlineExceeded) << st.ToString();
  EXPECT_LT(ElapsedMs(start), 5000);
  EXPECT_EQ(ctl.stats().queued, 0);
  EXPECT_EQ(ctl.stats().expired_in_queue, 1);

  // Cancel while queued -> the token's status, ticket evaporates.
  CancellationToken cancel_token;
  std::thread canceller([&] {
    while (ctl.stats().queued < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    cancel_token.Cancel(Cancelled("tenant disconnected"));
  });
  Status st2 = ctl.Admit("leaver", &cancel_token);
  canceller.join();
  EXPECT_EQ(st2.code(), Code::kCancelled) << st2.ToString();
  EXPECT_EQ(ctl.stats().expired_in_queue, 2);

  // Dead on arrival -> refused without touching the queue.
  Status st3 = ctl.Admit("doa", &cancel_token);
  EXPECT_EQ(st3.code(), Code::kCancelled);
  ctl.Release();
  EXPECT_EQ(ctl.stats().inflight, 0);
}

// ---- retry budget clamping (deadline propagation into retries) ------------------

TEST(ServingRetryTest, ClampToRemainingContract) {
  RetryPolicy unbounded;  // deadline_ms = 0: NO deadline
  EXPECT_EQ(ClampToRemaining(unbounded, 100).deadline_ms, 100);

  RetryPolicy tight = RetryPolicy::Aggressive(/*deadline_ms=*/50);
  EXPECT_EQ(ClampToRemaining(tight, 100).deadline_ms, 50);   // policy wins
  EXPECT_EQ(ClampToRemaining(tight, 20).deadline_ms, 20);    // remaining wins

  // An already-expired budget clamps to 1ms — the attempt still runs once
  // and fails fast, preserving "never a hang" without a special case.
  EXPECT_EQ(ClampToRemaining(tight, 0).deadline_ms, 1);
  EXPECT_EQ(ClampToRemaining(tight, -5).deadline_ms, 1);
}

// ---- wire-level deadline propagation --------------------------------------------

class ServingServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wire::ClusterDef def;
    wire::JobDef worker;
    worker.name = "worker";
    worker.task_addrs = {"sv-w0:1", "sv-w1:1"};
    def.jobs = {worker};
    spec_ = std::make_unique<ClusterSpec>(ClusterSpec::Create(def).value());
    ServerDef w0{*spec_, "worker", 0, 0};
    ServerDef w1{*spec_, "worker", 1, 0};
    w0_ = Server::Create(w0, &router_).value();
    w1_ = Server::Create(w1, &router_).value();
  }

  InProcessRouter router_;
  std::unique_ptr<ClusterSpec> spec_;
  std::unique_ptr<Server> w0_, w1_;
};

TEST_F(ServingServerTest, ServerRefusesAlreadyExpiredRequests) {
  // Bypass the client-side refusal by crafting the envelope directly: a
  // request whose absolute deadline already passed must be refused before
  // dispatch with kDeadlineExceeded.
  wire::RpcEnvelope req;
  req.method = "Ping";
  req.payload = wire::PayloadRef("hello");
  req.deadline_ns = 1;  // epoch start: expired for any live clock
  auto r = router_.Call("sv-w0:1", WireProtocol::kRdma, req);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(static_cast<Code>(r->status_code), Code::kDeadlineExceeded)
      << r->status_msg;
  EXPECT_EQ(w0_->expired_rejects(), 1);
}

TEST_F(ServingServerTest, ClientRefusesExpiredTokenWithoutAnRpc) {
  RemoteTask w0(&router_, "sv-w0:1", WireProtocol::kRdma);
  auto token = CancellationToken::WithTimeout(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const int64_t calls_before = router_.stats(WireProtocol::kRdma).calls.load();
  auto r = w0.RunStep({}, {"whatever"}, {}, false, token.get());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kDeadlineExceeded);
  EXPECT_EQ(router_.stats(WireProtocol::kRdma).calls.load(), calls_before);
}

TEST_F(ServingServerTest, DeadlineBoundsServerSideRecvWait) {
  // A step that blocks in _Recv (nobody sends) must fail with
  // kDeadlineExceeded within the propagated deadline — and the worker must
  // remain fully serviceable afterwards.
  Graph g;
  Scope s(&g);
  auto got = ops::Recv(s, "never_sent_key");
  auto ok = ops::Const(s, Tensor::Scalar(5.0), "ok_const");
  RemoteTask w0(&router_, "sv-w0:1", WireProtocol::kRdma);
  ASSERT_TRUE(w0.ExtendGraph(g.ToGraphDef()).ok());

  auto token = CancellationToken::WithTimeout(150);
  const auto start = std::chrono::steady_clock::now();
  auto r = w0.RunStep({}, {got.name()}, {}, false, token.get());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kDeadlineExceeded) << r.status().ToString();
  EXPECT_GE(ElapsedMs(start), 100);
  EXPECT_LT(ElapsedMs(start), 10000) << "deadline must bound the step";
  auto r2 = w0.RunStep({}, {ok.name()});
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_DOUBLE_EQ((*r2)[0].scalar<double>(), 5.0);
}

TEST_F(ServingServerTest, AbortStepCancelsRecvWaiterInRunningStep) {
  Graph g;
  Scope s(&g);
  auto got = ops::Recv(s, "abort_me");
  RemoteTask w0(&router_, "sv-w0:1", WireProtocol::kRdma);
  ASSERT_TRUE(w0.ExtendGraph(g.ToGraphDef()).ok());

  std::thread aborter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    RemoteTask(&router_, "sv-w0:1", WireProtocol::kRdma).AbortStep("test");
  });
  auto r = w0.RunStep({}, {got.name()});
  aborter.join();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kCancelled) << r.status().ToString();
  ASSERT_TRUE(RemoteTask(&router_, "sv-w0:1", WireProtocol::kRdma)
                  .ResetStep()
                  .ok());
}

TEST_F(ServingServerTest, DeadlineBoundsRemoteQueueWaits) {
  RemoteTask w0(&router_, "sv-w0:1", WireProtocol::kRdma);
  auto token = CancellationToken::WithTimeout(120);
  const auto start = std::chrono::steady_clock::now();
  auto r = w0.Dequeue("empty_remote_q", 0, token.get());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kDeadlineExceeded) << r.status().ToString();
  EXPECT_LT(ElapsedMs(start), 10000);
  // The queue is intact for the next tenant.
  ASSERT_TRUE(w0.Enqueue("empty_remote_q", Tensor::Scalar(3.0)).ok());
  EXPECT_DOUBLE_EQ(w0.Dequeue("empty_remote_q")->scalar<double>(), 3.0);
}

TEST_F(ServingServerTest, AbortStepCancelsBarrierWaitAndBarrierRecovers) {
  // One of two participants arrives and parks in the barrier's release-queue
  // dequeue (inside a remote Dequeue handler). AbortStep on the coordinator
  // must fail the parked wait with kCancelled — not leave it hanging. After
  // ResetStep the same barrier completes normally with both workers.
  QueueBarrier barrier(&router_, "sv-w0:1", WireProtocol::kRdma, "bar", 2);
  Status lone;
  std::thread lone_worker([&] { lone = barrier.Arrive(0).status(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(
      RemoteTask(&router_, "sv-w0:1", WireProtocol::kRdma).AbortStep("").ok());
  lone_worker.join();
  EXPECT_EQ(lone.code(), Code::kCancelled) << lone.ToString();
  ASSERT_TRUE(
      RemoteTask(&router_, "sv-w0:1", WireProtocol::kRdma).ResetStep().ok());

  // Drain the aborted round's stray token so round 0 starts clean.
  (void)RemoteTask(&router_, "sv-w0:1", WireProtocol::kRdma)
      .Dequeue("bar/in", 0,
               CancellationToken::WithTimeout(200).get());

  std::thread coordinator([&] {
    EXPECT_TRUE(QueueBarrier::RunCoordinator(&router_, "sv-w0:1",
                                             WireProtocol::kRdma, "bar", 2, 1)
                    .ok());
  });
  std::thread w0_arrive([&] { EXPECT_TRUE(barrier.Arrive(0).ok()); });
  std::thread w1_arrive([&] { EXPECT_TRUE(barrier.Arrive(1).ok()); });
  coordinator.join();
  w0_arrive.join();
  w1_arrive.join();
}

TEST_F(ServingServerTest, AdmissionControlShedsExcessRunSteps) {
  // A dedicated server with one execution slot and a tiny queue: concurrent
  // steps beyond slot+queue are shed with kUnavailable, and every accepted
  // step completes. The steps block briefly in _Recv so they overlap.
  wire::ClusterDef def;
  wire::JobDef worker;
  worker.name = "worker";
  worker.task_addrs = {"sv-adm:1"};
  def.jobs = {worker};
  auto spec = ClusterSpec::Create(def).value();
  ServerDef sdef{spec, "worker", 0, 0};
  sdef.max_inflight_steps = 1;
  sdef.serving.max_queued = 2;
  auto server = Server::Create(sdef, &router_).value();

  Graph g;
  Scope s(&g);
  auto got = ops::Recv(s, "adm_gate");
  RemoteTask setup(&router_, "sv-adm:1", WireProtocol::kRdma);
  ASSERT_TRUE(setup.ExtendGraph(g.ToGraphDef()).ok());

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<Status> results(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      RemoteTask c(&router_, "sv-adm:1", WireProtocol::kRdma);
      auto token = CancellationToken::WithTimeout(3000);
      results[i] =
          c.RunStep({}, {got.name()}, {}, false, token.get()).status();
    });
  }
  // Let the herd arrive, then feed the gate enough tensors for everyone the
  // controller admitted (slot + queue = 3).
  while (server->serving_stats().shed < kClients - 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(setup.RendezvousSend("adm_gate", Tensor::Scalar(1.0)).ok());
  }
  for (auto& t : clients) t.join();

  int ok = 0, shed = 0, other = 0;
  for (const Status& st : results) {
    if (st.ok()) {
      ++ok;
    } else if (st.code() == Code::kUnavailable) {
      EXPECT_NE(st.message().find("retry_after_ms"), std::string::npos);
      ++shed;
    } else {
      ++other;
      ADD_FAILURE() << "unexpected: " << st.ToString();
    }
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(shed, kClients - 3);
  EXPECT_EQ(other, 0);
  const ServingStats stats = server->serving_stats();
  EXPECT_EQ(stats.admitted, 3);
  EXPECT_EQ(stats.shed, kClients - 3);
  EXPECT_EQ(stats.inflight, 0);
  EXPECT_EQ(stats.queued, 0);
  server->Shutdown();
}

// ---- distributed step deadline under faults -------------------------------------

class ServingDistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wire::ClusterDef def;
    wire::JobDef workers;
    workers.name = "worker";
    workers.task_addrs = {"sd-w0:1", "sd-w1:1"};
    def.jobs = {workers};
    spec_ = std::make_unique<ClusterSpec>(ClusterSpec::Create(def).value());
    RetryPolicy send_retry = RetryPolicy::Aggressive(5000);
    ServerDef w0{*spec_, "worker", 0, 0};
    ServerDef w1{*spec_, "worker", 1, 0};
    w0.send_retry = w1.send_retry = send_retry;
    w0_ = Server::Create(w0, &router_).value();
    w1_ = Server::Create(w1, &router_).value();
  }

  DeviceName WorkerDev() {
    DeviceName d;
    d.job = "worker";
    d.task = 0;
    return d;
  }

  InProcessRouter router_;
  std::unique_ptr<ClusterSpec> spec_;
  std::unique_ptr<Server> w0_, w1_;
};

TEST_F(ServingDistTest, StepTimeoutBoundsPartitionedTwoWorkerStepUnderChaos) {
  // Cross-task step (w0 produces, w1 consumes) with w0 partitioned away and
  // chaos faults on the surviving links. The client's retry policy alone
  // would burn 60s per RPC; the step deadline clamps every attempt to the
  // remaining budget, so the whole fault-tolerant Run — two attempts plus
  // cleanup — completes in bounded time with a deadline/unavailable error,
  // never a hang. Healing the partition makes the same step succeed.
  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto a = ops::Const(t0, Tensor::Scalar(5.0), "a");
  auto y = ops::Mul(t1, a, ops::Const(t1, Tensor::Scalar(2.0)));

  auto session = DistributedSession::Create(
      &router_, *spec_, WireProtocol::kRdma, g.ToGraphDef(), WorkerDev());
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  router_.Partition("sd-w0:1");
  ChaosConfig chaos;
  chaos.seed = 77;
  chaos.drop_request_rate = 0.05;
  chaos.drop_response_rate = 0.05;
  chaos.duplicate_rate = 0.05;
  router_.EnableChaos(chaos);

  StepRecoveryOptions recovery;
  recovery.max_step_attempts = 2;
  recovery.rpc_retry = RetryPolicy::Aggressive(/*deadline_ms=*/60000);
  recovery.step_timeout_ms = 400;
  FaultReport report;
  const auto start = std::chrono::steady_clock::now();
  auto r = (*session)->Run({}, {y.name()}, recovery, &report);
  const int64_t elapsed = ElapsedMs(start);
  ASSERT_FALSE(r.ok());
  const Code code = r.status().code();
  EXPECT_TRUE(code == Code::kDeadlineExceeded || code == Code::kUnavailable ||
              code == Code::kCancelled)
      << r.status().ToString();
  EXPECT_EQ(report.step_attempts, 2);
  // Two 400ms-bounded attempts + abort/reset cleanup: far below the 60s the
  // unclamped retry policy would have allowed even one RPC to burn.
  EXPECT_LT(elapsed, 30000) << report.ToString();

  router_.DisableChaos();
  router_.Heal("sd-w0:1");
  auto r2 = (*session)->Run({}, {y.name()});
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_DOUBLE_EQ((*r2)[0].scalar<double>(), 10.0);
}

TEST_F(ServingDistTest, PeerFailureCancelsSurvivingPartitionMidStep) {
  // w1's share of the step blocks in _Recv for w0's tensor; w0 is killed
  // mid-step, so its RunStep fails fast while w1's would park forever. The
  // session must cancel w1 (token + AbortStep) and return the root cause in
  // bounded time.
  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto a = ops::Const(t0, Tensor::Scalar(3.0), "a");
  auto y = ops::Mul(t1, a, ops::Const(t1, Tensor::Scalar(4.0)));

  auto session = DistributedSession::Create(
      &router_, *spec_, WireProtocol::kRdma, g.ToGraphDef(), WorkerDev());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  // Warm one clean step so both partitions' handles are registered.
  auto warm = (*session)->Run({}, {y.name()});
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  router_.Partition("sd-w0:1");
  StepRecoveryOptions recovery;
  recovery.max_step_attempts = 1;
  recovery.step_timeout_ms = 10000;  // generous: peer-cancel must beat it
  const auto start = std::chrono::steady_clock::now();
  auto r = (*session)->Run({}, {y.name()}, recovery, nullptr);
  const int64_t elapsed = ElapsedMs(start);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kUnavailable) << r.status().ToString();
  EXPECT_LT(elapsed, 8000) << "surviving partition was not cancelled";

  router_.Heal("sd-w0:1");
  auto r2 = (*session)->Run({}, {y.name()});
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_DOUBLE_EQ((*r2)[0].scalar<double>(), 12.0);
}

}  // namespace
}  // namespace tfhpc::distrib
