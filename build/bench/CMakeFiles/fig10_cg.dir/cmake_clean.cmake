file(REMOVE_RECURSE
  "CMakeFiles/fig10_cg.dir/fig10_cg.cc.o"
  "CMakeFiles/fig10_cg.dir/fig10_cg.cc.o.d"
  "fig10_cg"
  "fig10_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
