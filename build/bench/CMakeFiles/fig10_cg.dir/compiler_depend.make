# Empty compiler generated dependencies file for fig10_cg.
# This may be replaced when dependencies are built.
