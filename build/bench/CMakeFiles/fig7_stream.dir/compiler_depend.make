# Empty compiler generated dependencies file for fig7_stream.
# This may be replaced when dependencies are built.
