// Ablation: what does the graph optimizer pipeline (src/optimizer) buy on
// the paper's application graphs and on the kind of long elementwise chain
// Grappler was built for? Three workloads — the CG worker step, the FFT
// worker step, and a synthetic 12-op elementwise chain — each run at
// optimizer level off / basic / aggressive:
//
//   - static:  node count of the optimized step signature (the executor's
//              view after const folding, CSE, DNE and fusion)
//   - dynamic: cached per-step latency over repeat Runs of one signature,
//              plus allocator traffic (allocations and pooled bytes per
//              step) from the device stats
//   - safety:  fetched values at basic/aggressive must agree with off
//
// The binary asserts the chain's node-count reduction floor (>= 30% at
// aggressive) and numeric agreement across levels, exiting 1 on violation —
// ci.sh runs `ablation_optimizer --smoke` as a gate. Results also land in
// BENCH_optimizer.json.
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "apps/app_graphs.h"
#include "bench_util.h"
#include "graph/ops.h"
#include "optimizer/optimizer.h"
#include "runtime/session.h"

using namespace tfhpc;

namespace {

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One Run signature: the feeds/fetches/targets the step repeats, plus an
// optional one-time setup signature (CG's A-block load).
struct Workload {
  std::string name;
  std::map<std::string, Tensor> feeds;
  std::vector<std::string> fetches;
  std::map<std::string, Tensor> setup_feeds;  // run once, before timing
  std::vector<std::string> setup_targets;
};

// Per-(workload, level) measurements.
struct Cell {
  int nodes = 0;               // optimized step-signature node count
  double us_per_step = 0;
  double allocs_per_step = 0;
  double pool_bytes_per_step = 0;
  std::vector<Tensor> values;  // fetched tensors, for cross-level agreement
  bool ok = false;
};

Tensor RampF64(int64_t n, double scale) {
  std::vector<double> v(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    v[static_cast<size_t>(i)] = scale * (1.0 + 0.25 * static_cast<double>(i));
  }
  return Tensor::FromVector(std::move(v));
}

// The synthetic chain: 12 fusable elementwise stages over one fed vector,
// with a const-only subexpression (folds) and a duplicated scale (CSE).
Workload BuildChain(const Scope& s, int64_t n) {
  auto x = ops::Placeholder(s, DType::kF64, Shape{n}, "x");
  auto c2 = ops::Const(s, Tensor::Scalar(2.0), "c2");
  auto c3 = ops::Const(s, Tensor::Scalar(3.0), "c3");
  auto scale = ops::Mul(s, c2, c3);       // const-foldable
  auto scale_dup = ops::Mul(s, c2, c3);   // CSE merges with `scale`
  Output t = ops::Add(s, x, c2);          // stage 1
  t = ops::Mul(s, t, scale);              // 2
  t = ops::Sub(s, t, c3);                 // 3
  t = ops::Mul(s, t, scale_dup);          // 4
  t = ops::Add(s, t, c3);                 // 5
  t = ops::Mul(s, t, c2);                 // 6
  t = ops::Sub(s, t, c2);                 // 7
  t = ops::Add(s, t, scale);              // 8
  t = ops::Mul(s, t, c3);                 // 9
  t = ops::Sub(s, t, scale);              // 10
  t = ops::Add(s, t, c2);                 // 11
  t = ops::Mul(s, t, c2);                 // 12
  Workload w;
  w.name = "chain12";
  w.feeds.emplace("x", RampF64(n, 1e-3));
  w.fetches = {t.name()};
  return w;
}

Workload BuildCg(const Scope& s, int64_t rows, int64_t n) {
  const apps::CgWorkerGraph g = apps::BuildCgWorkerGraph(s, rows, n);
  Workload w;
  w.name = "cg_worker";
  {
    std::vector<double> a(static_cast<size_t>(rows * n));
    for (size_t i = 0; i < a.size(); ++i) {
      a[i] = 1e-4 * (1.0 + 0.25 * static_cast<double>(i % 97));
    }
    w.setup_feeds.emplace(g.a_feed, Tensor::FromVector(Shape{rows, n}, a));
  }
  w.setup_targets = {g.a_init};
  w.feeds.emplace(g.p, RampF64(n, 1.0));
  w.feeds.emplace(g.u, RampF64(rows, 0.5));
  w.feeds.emplace(g.v, RampF64(rows, 0.25));
  w.feeds.emplace(g.alpha, Tensor::Scalar(0.125));
  w.feeds.emplace(g.ax, RampF64(n, 2.0));
  w.feeds.emplace(g.ay, RampF64(n, -1.0));
  w.fetches = {g.ap, g.dot, g.axpy};
  return w;
}

Workload BuildFft(const Scope& s, int64_t m) {
  const apps::FftWorkerGraph g = apps::BuildFftWorkerGraph(s, m);
  Tensor x(DType::kC128, Shape{m});
  auto* lanes = static_cast<std::complex<double>*>(x.raw_data());
  for (int64_t i = 0; i < m; ++i) {
    const double ph = 2.0 * 3.14159265358979323846 * static_cast<double>(i) /
                      static_cast<double>(m);
    lanes[i] = {std::cos(3 * ph), std::sin(5 * ph)};
  }
  Workload w;
  w.name = "fft_worker";
  w.feeds.emplace(g.x, std::move(x));
  w.fetches = {g.spectrum};
  return w;
}

// The same static view Session::Prepare compiles: run the pipeline over the
// step signature and count surviving nodes (level off = the raw graph).
Result<int> OptimizedNodeCount(const Graph& g, const Workload& w,
                               optimizer::OptimizerLevel level) {
  const wire::GraphDef def = g.ToGraphDef();
  if (level == optimizer::OptimizerLevel::kOff) {
    return static_cast<int>(def.nodes.size());
  }
  optimizer::PipelineOptions opts;
  opts.level = level;
  for (const auto& [name, tensor] : w.feeds) opts.feeds.push_back(name);
  for (const auto& [name, tensor] : w.setup_feeds) {
    opts.feeds.push_back(name);
  }
  opts.fetches = w.fetches;
  opts.targets = w.setup_targets;
  TFHPC_ASSIGN_OR_RETURN(optimizer::PipelineResult r,
                         optimizer::RunPassPipeline(def, opts));
  return static_cast<int>(r.graph.nodes.size());
}

Cell Measure(const std::function<Workload(const Scope&)>& build,
             optimizer::OptimizerLevel level, int steps) {
  Cell cell;
  LocalRuntime rt(/*num_gpus=*/0);
  Scope s = rt.root_scope();
  const Workload w = build(s);

  auto nodes = OptimizedNodeCount(rt.graph(), w, level);
  if (!nodes.ok()) {
    std::fprintf(stderr, "%s: pipeline failed: %s\n", w.name.c_str(),
                 nodes.status().ToString().c_str());
    return cell;
  }
  cell.nodes = *nodes;

  SessionOptions opts;
  opts.optimizer_level = level;
  auto session = rt.NewSession(opts);
  if (!w.setup_targets.empty()) {
    auto r = session->Run(w.setup_feeds, {}, w.setup_targets);
    if (!r.ok()) {
      std::fprintf(stderr, "%s: setup failed: %s\n", w.name.c_str(),
                   r.status().ToString().c_str());
      return cell;
    }
  }
  // Warm run: compiles (and optimizes) the step signature once, and gives
  // the values used for the cross-level agreement check.
  auto warm = session->Run(w.feeds, w.fetches);
  if (!warm.ok()) {
    std::fprintf(stderr, "%s: step failed: %s\n", w.name.c_str(),
                 warm.status().ToString().c_str());
    return cell;
  }
  cell.values = *warm;

  int64_t allocs0 = 0, pool0 = 0;
  for (const auto& d : rt.devices().devices()) {
    allocs0 += d->allocator_stats()->allocs();
    pool0 += d->allocator_stats()->pool_bytes();
  }
  const double start = NowUs();
  for (int i = 0; i < steps; ++i) {
    auto r = session->Run(w.feeds, w.fetches);
    if (!r.ok()) {
      std::fprintf(stderr, "%s: step failed: %s\n", w.name.c_str(),
                   r.status().ToString().c_str());
      return cell;
    }
  }
  cell.us_per_step = (NowUs() - start) / steps;
  int64_t allocs1 = 0, pool1 = 0;
  for (const auto& d : rt.devices().devices()) {
    allocs1 += d->allocator_stats()->allocs();
    pool1 += d->allocator_stats()->pool_bytes();
  }
  cell.allocs_per_step = static_cast<double>(allocs1 - allocs0) / steps;
  cell.pool_bytes_per_step = static_cast<double>(pool1 - pool0) / steps;
  cell.ok = true;
  return cell;
}

// Max |a - b| across every fetched tensor, interpreting payloads as raw f64
// lanes (covers kF64 and the two-lane kC128 spectrum alike).
double MaxAbsDiff(const std::vector<Tensor>& a, const std::vector<Tensor>& b) {
  double worst = 0;
  if (a.size() != b.size()) return 1e300;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].bytes() != b[i].bytes()) return 1e300;
    const size_t lanes = static_cast<size_t>(a[i].bytes()) / sizeof(double);
    const double* pa = static_cast<const double*>(a[i].raw_data());
    const double* pb = static_cast<const double*>(b[i].raw_data());
    for (size_t k = 0; k < lanes; ++k) {
      worst = std::max(worst, std::abs(pa[k] - pb[k]));
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int steps = smoke ? 40 : 400;
  const int64_t chain_n = smoke ? 512 : 65536;
  const int64_t cg_rows = smoke ? 32 : 256;
  const int64_t cg_n = smoke ? 128 : 1024;
  const int64_t fft_m = smoke ? 256 : 4096;

  bench::Header("Ablation — graph optimizer pipeline",
                "Grappler-lite: const fold + CSE + DNE + elementwise fusion "
                "on the app step graphs");
  bench::JsonResults json("optimizer");
  json.Meta("mode", smoke ? "smoke" : "full")
      .Meta("steps", static_cast<double>(steps));

  struct Entry {
    std::string name;
    std::function<Workload(const Scope&)> build;
  };
  const std::vector<Entry> entries = {
      {"chain12", [&](const Scope& s) { return BuildChain(s, chain_n); }},
      {"cg_worker", [&](const Scope& s) { return BuildCg(s, cg_rows, cg_n); }},
      {"fft_worker", [&](const Scope& s) { return BuildFft(s, fft_m); }},
  };
  const std::vector<optimizer::OptimizerLevel> levels = {
      optimizer::OptimizerLevel::kOff, optimizer::OptimizerLevel::kBasic,
      optimizer::OptimizerLevel::kAggressive};

  bool failed = false;
  std::printf("%-11s %-11s | %6s %8s | %11s %9s %12s | %10s\n", "workload",
              "level", "nodes", "vs off", "us/step", "allocs/st",
              "pool B/step", "max|diff|");
  bench::Rule();
  for (const Entry& e : entries) {
    Cell off;
    for (optimizer::OptimizerLevel level : levels) {
      Cell c = Measure(e.build, level, steps);
      if (!c.ok) return 1;
      const bool is_off = level == optimizer::OptimizerLevel::kOff;
      if (is_off) off = c;
      const double reduction =
          off.nodes > 0
              ? 100.0 * (off.nodes - c.nodes) / static_cast<double>(off.nodes)
              : 0.0;
      const double diff = is_off ? 0.0 : MaxAbsDiff(off.values, c.values);
      std::printf("%-11s %-11s | %6d %7.1f%% | %11.1f %9.1f %12.0f | %10.2e\n",
                  e.name.c_str(), optimizer::OptimizerLevelName(level),
                  c.nodes, reduction, c.us_per_step, c.allocs_per_step,
                  c.pool_bytes_per_step, diff);
      json.Record()
          .Str("workload", e.name)
          .Str("level", optimizer::OptimizerLevelName(level))
          .Num("nodes", c.nodes)
          .Num("node_reduction_pct", reduction)
          .Num("us_per_step", c.us_per_step)
          .Num("allocs_per_step", c.allocs_per_step)
          .Num("pool_bytes_per_step", c.pool_bytes_per_step)
          .Num("max_abs_diff", diff);

      // Safety gate: the optimizer must never change fetched values. The
      // fused chain kernel applies the same scalar ops in the same order, so
      // even the chain workload must agree bit-for-bit (diff == 0).
      if (!is_off && diff > 1e-12) {
        std::fprintf(stderr,
                     "FAIL: %s at %s diverges from off (max|diff| %.3e)\n",
                     e.name.c_str(), optimizer::OptimizerLevelName(level),
                     diff);
        failed = true;
      }
      // Coverage gate: the 12-stage chain must collapse by at least 30% at
      // aggressive (ISSUE 8 acceptance floor).
      if (e.name == "chain12" &&
          level == optimizer::OptimizerLevel::kAggressive &&
          reduction < 30.0) {
        std::fprintf(stderr,
                     "FAIL: chain12 aggressive reduction %.1f%% < 30%%\n",
                     reduction);
        failed = true;
      }
    }
    bench::Rule();
  }

  json.WriteFile("BENCH_optimizer.json");
  if (failed) return 1;
  std::printf("optimizer ablation: levels agree, reduction floor met\n");
  return 0;
}
