// Unit tests for the protobuf wire format subset and message schemas.
#include <gtest/gtest.h>

#include "wire/coded.h"
#include "wire/messages.h"

namespace tfhpc::wire {
namespace {

// ---- Varints / primitives ---------------------------------------------------

TEST(CodedTest, VarintRoundTrip) {
  for (uint64_t v : std::vector<uint64_t>{0, 1, 127, 128, 300, 16383, 16384,
                                          uint64_t{1} << 32, UINT64_MAX}) {
    std::string buf;
    CodedOutput out(&buf);
    out.WriteVarint(v);
    CodedInput in(buf);
    uint64_t got;
    ASSERT_TRUE(in.ReadVarint(&got).ok());
    EXPECT_EQ(got, v);
    EXPECT_TRUE(in.AtEnd());
  }
}

TEST(CodedTest, VarintKnownEncoding) {
  // 300 = 0b10 0101100 -> AC 02 (protobuf spec example).
  std::string buf;
  CodedOutput out(&buf);
  out.WriteVarint(300);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0xAC);
  EXPECT_EQ(static_cast<uint8_t>(buf[1]), 0x02);
}

TEST(CodedTest, TruncatedVarintFails) {
  std::string buf = "\xAC";  // continuation bit set, no next byte
  CodedInput in(buf);
  uint64_t v;
  EXPECT_EQ(in.ReadVarint(&v).code(), Code::kOutOfRange);
}

TEST(CodedTest, OverlongVarintFails) {
  std::string buf(11, '\x80');  // 11 continuation bytes > max 10
  CodedInput in(buf);
  uint64_t v;
  EXPECT_FALSE(in.ReadVarint(&v).ok());
}

TEST(CodedTest, ZigZag) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{12345}, int64_t{-98765},
                    INT64_MIN, INT64_MAX}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(CodedTest, FixedWidthRoundTrip) {
  std::string buf;
  CodedOutput out(&buf);
  out.WriteFixed32(0xDEADBEEF);
  out.WriteFixed64(0x0123456789ABCDEFull);
  CodedInput in(buf);
  uint32_t a;
  uint64_t b;
  ASSERT_TRUE(in.ReadFixed32(&a).ok());
  ASSERT_TRUE(in.ReadFixed64(&b).ok());
  EXPECT_EQ(a, 0xDEADBEEF);
  EXPECT_EQ(b, 0x0123456789ABCDEFull);
}

TEST(CodedTest, DoubleFloatRoundTrip) {
  std::string buf;
  CodedOutput out(&buf);
  out.WriteDouble(1, 3.14159);
  out.WriteFloat(2, -2.5f);
  CodedInput in(buf);
  uint32_t field;
  WireType wt;
  double d;
  float f;
  ASSERT_TRUE(in.ReadTag(&field, &wt).ok());
  EXPECT_EQ(field, 1u);
  EXPECT_EQ(wt, WireType::kFixed64);
  ASSERT_TRUE(in.ReadDouble(&d).ok());
  EXPECT_EQ(d, 3.14159);
  ASSERT_TRUE(in.ReadTag(&field, &wt).ok());
  ASSERT_TRUE(in.ReadFloat(&f).ok());
  EXPECT_EQ(f, -2.5f);
}

TEST(CodedTest, TagFieldZeroRejected) {
  std::string buf;
  CodedOutput out(&buf);
  out.WriteVarint(0);  // tag with field 0
  CodedInput in(buf);
  uint32_t field;
  WireType wt;
  EXPECT_FALSE(in.ReadTag(&field, &wt).ok());
}

TEST(CodedTest, GroupWireTypesRejected) {
  std::string buf;
  CodedOutput out(&buf);
  out.WriteVarint((1 << 3) | 3);  // start-group
  CodedInput in(buf);
  uint32_t field;
  WireType wt;
  EXPECT_FALSE(in.ReadTag(&field, &wt).ok());
}

TEST(CodedTest, SkipUnknownFields) {
  std::string buf;
  CodedOutput out(&buf);
  out.WriteUInt64(10, 7);
  out.WriteString(11, "skip me");
  out.WriteDouble(12, 1.5);
  out.WriteFloat(13, 2.5f);
  out.WriteUInt64(1, 42);
  CodedInput in(buf);
  uint64_t found = 0;
  while (!in.AtEnd()) {
    uint32_t field;
    WireType wt;
    ASSERT_TRUE(in.ReadTag(&field, &wt).ok());
    if (field == 1) {
      ASSERT_TRUE(in.ReadVarint(&found).ok());
    } else {
      ASSERT_TRUE(in.SkipField(wt).ok());
    }
  }
  EXPECT_EQ(found, 42u);
}

TEST(CodedTest, TruncatedLengthDelimitedFails) {
  std::string buf;
  CodedOutput out(&buf);
  out.WriteTag(1, WireType::kLengthDelimited);
  out.WriteVarint(100);  // declares 100 bytes, none present
  CodedInput in(buf);
  uint32_t field;
  WireType wt;
  ASSERT_TRUE(in.ReadTag(&field, &wt).ok());
  const uint8_t* d;
  size_t s;
  EXPECT_EQ(in.ReadBytesView(&d, &s).code(), Code::kOutOfRange);
}

// ---- TensorProto --------------------------------------------------------------

TEST(TensorProtoTest, RoundTripF32Matrix) {
  Tensor t = Tensor::FromVector(Shape{2, 3},
                                std::vector<float>{1, 2, 3, 4, 5, 6});
  auto r = ParseTensor(SerializeTensor(t));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->BitwiseEquals(t));
}

TEST(TensorProtoTest, RoundTripScalar) {
  Tensor t = Tensor::Scalar(2.75);
  auto r = ParseTensor(SerializeTensor(t));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->scalar<double>(), 2.75);
  EXPECT_TRUE(r->shape().IsScalar());
}

TEST(TensorProtoTest, RoundTripComplex) {
  Tensor t(DType::kC128, Shape{4});
  t.mutable_data<std::complex<double>>()[2] = {1.5, -2.5};
  auto r = ParseTensor(SerializeTensor(t));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->BitwiseEquals(t));
}

TEST(TensorProtoTest, RoundTripMeta) {
  Tensor t = Tensor::Meta(DType::kF64, Shape{1 << 20, 1 << 10});
  const std::string s = SerializeTensor(t);
  EXPECT_LT(s.size(), 64u);  // meta tensors serialize without payload
  auto r = ParseTensor(s);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_meta());
  EXPECT_EQ(r->shape(), t.shape());
  EXPECT_EQ(r->dtype(), DType::kF64);
}

TEST(TensorProtoTest, RejectsGarbage) {
  EXPECT_FALSE(ParseTensor(std::string("not a proto")).ok());
}

TEST(TensorProtoTest, RejectsUnknownDtypeEnum) {
  // A corrupted dtype varint must yield a parse error, not abort (found by
  // the checkpoint fuzz campaign).
  std::string buf;
  CodedOutput co(&buf);
  co.WriteUInt64(1, 200);  // no such dtype
  auto r = ParseTensor(buf);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kInvalidArgument);
}

TEST(TensorProtoTest, RejectsImplausibleDims) {
  std::string buf;
  CodedOutput co(&buf);
  co.WriteUInt64(1, static_cast<uint64_t>(DType::kF64));
  co.WriteUInt64(2, uint64_t{1} << 60);  // would overflow num_elements
  co.WriteUInt64(2, uint64_t{1} << 60);
  EXPECT_FALSE(ParseTensor(buf).ok());
}

TEST(TensorProtoTest, RejectsContentSizeMismatch) {
  Tensor t = Tensor::FromVector(std::vector<float>{1, 2, 3});
  std::string s = SerializeTensor(t);
  s.pop_back();  // corrupt: drop last content byte
  EXPECT_FALSE(ParseTensor(s).ok());
}

// ---- AttrValue ------------------------------------------------------------------

TEST(AttrValueTest, RoundTripAllKinds) {
  std::vector<AttrValue> vals = {
      AttrValue::Int(-42),
      AttrValue::Float(2.718),
      AttrValue::Str("hello"),
      AttrValue::Type(DType::kC128),
      AttrValue::OfShape(Shape{3, 4, 5}),
      AttrValue::OfShape(Shape{}),  // scalar shape must survive
      AttrValue::Bool(true),
  };
  for (const auto& v : vals) {
    std::string s = v.Serialize();
    auto r = AttrValue::Parse(s.data(), s.size());
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(*r == v);
  }
}

// ---- NodeDef / GraphDef ------------------------------------------------------------

NodeDef MakeNode() {
  NodeDef n;
  n.name = "matmul_0";
  n.op = "MatMul";
  n.inputs = {"a", "b", "^init"};
  n.device = "/job:worker/task:0/gpu:0";
  n.attrs["T"] = AttrValue::Type(DType::kF32);
  n.attrs["transpose_a"] = AttrValue::Bool(false);
  return n;
}

TEST(NodeDefTest, RoundTrip) {
  NodeDef n = MakeNode();
  std::string s = n.Serialize();
  auto r = NodeDef::Parse(s.data(), s.size());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r == n);
}

TEST(NodeDefTest, EmptyNameRejected) {
  NodeDef n;
  n.op = "NoOp";
  std::string s = n.Serialize();
  EXPECT_FALSE(NodeDef::Parse(s.data(), s.size()).ok());
}

TEST(GraphDefTest, RoundTrip) {
  GraphDef g;
  g.version = 3;
  g.nodes.push_back(MakeNode());
  NodeDef n2;
  n2.name = "c";
  n2.op = "Const";
  g.nodes.push_back(n2);
  auto r = GraphDef::Parse(g.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->version, 3);
  ASSERT_EQ(r->nodes.size(), 2u);
  EXPECT_TRUE(r->nodes[0] == g.nodes[0]);
  EXPECT_EQ(r->nodes[1].name, "c");
}

TEST(GraphDefTest, EmptyGraph) {
  GraphDef g;
  auto r = GraphDef::Parse(g.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->nodes.empty());
}

// ---- ClusterDef -------------------------------------------------------------------

TEST(ClusterDefTest, RoundTrip) {
  ClusterDef c;
  JobDef ps;
  ps.name = "ps";
  ps.task_addrs = {"t01n01:8888"};
  JobDef worker;
  worker.name = "worker";
  worker.task_addrs = {"t01n02:8888", "t01n03:8888"};
  c.jobs = {ps, worker};
  auto r = ClusterDef::Parse(c.Serialize());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->jobs.size(), 2u);
  EXPECT_EQ(r->jobs[0].name, "ps");
  EXPECT_EQ(r->jobs[1].task_addrs.size(), 2u);
  EXPECT_EQ(r->jobs[1].task_addrs[1], "t01n03:8888");
}

// ---- RpcEnvelope -------------------------------------------------------------------

TEST(RpcEnvelopeTest, RoundTrip) {
  RpcEnvelope e;
  e.method = "RecvTensor";
  e.request_id = 77;
  e.payload = std::string("\x00\x01\x02", 3);
  e.status_code = static_cast<int32_t>(Code::kNotFound);
  e.status_msg = "no such key";
  auto r = RpcEnvelope::Parse(e.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->method, "RecvTensor");
  EXPECT_EQ(r->request_id, 77u);
  EXPECT_EQ(r->payload, e.payload);
  EXPECT_EQ(r->status_code, e.status_code);
  EXPECT_EQ(r->status_msg, "no such key");
}

TEST(RpcEnvelopeTest, DefaultStatusOmitted) {
  RpcEnvelope e;
  e.method = "Ping";
  auto r = RpcEnvelope::Parse(e.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status_code, 0);
  EXPECT_TRUE(r->status_msg.empty());
}

// Serialized tensors embedded in envelopes survive binary payloads.
TEST(RpcEnvelopeTest, CarriesSerializedTensor) {
  Tensor t(DType::kF64, Shape{100});
  for (int i = 0; i < 100; ++i) t.mutable_data<double>()[i] = i * 0.5;
  RpcEnvelope e;
  e.method = "Enqueue";
  e.payload = SerializeTensor(t);
  auto r = RpcEnvelope::Parse(e.Serialize());
  ASSERT_TRUE(r.ok());
  auto t2 = ParseTensor(r->payload);
  ASSERT_TRUE(t2.ok());
  EXPECT_TRUE(t2->BitwiseEquals(t));
}

// ---- RegisterStep messages ---------------------------------------------------

TEST(RegisterStepTest, RequestRoundTrip) {
  RegisterStepRequest req;
  req.feeds = {"x", "y:1"};
  req.fetches = {"loss", "acc"};
  req.targets = {"train_op", "_send_w_0"};
  auto r = RegisterStepRequest::Parse(req.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->feeds, req.feeds);
  EXPECT_EQ(r->fetches, req.fetches);
  EXPECT_EQ(r->targets, req.targets);
}

TEST(RegisterStepTest, EmptyRequestRoundTrip) {
  auto r = RegisterStepRequest::Parse(RegisterStepRequest{}.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->feeds.empty());
  EXPECT_TRUE(r->fetches.empty());
  EXPECT_TRUE(r->targets.empty());
}

TEST(RegisterStepTest, ResponseRoundTrip) {
  RegisterStepResponse resp;
  resp.handle = 0x1234567890ULL;
  resp.graph_version = 42;
  auto r = RegisterStepResponse::Parse(resp.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->handle, resp.handle);
  EXPECT_EQ(r->graph_version, 42);
}

TEST(RegisterStepTest, ResponseNegativeVersionSurvivesZigZag) {
  RegisterStepResponse resp;
  resp.handle = 1;
  resp.graph_version = -7;
  auto r = RegisterStepResponse::Parse(resp.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->graph_version, -7);
}

}  // namespace
}  // namespace tfhpc::wire
