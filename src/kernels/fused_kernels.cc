// FusedElementwise: executes a whole elementwise chain (built by the
// optimizer's fusion pass) in one kernel dispatch. Each stage's inner loop
// mirrors the corresponding unfused kernel exactly — same ParallelFor grain,
// same accumulation order, same serial loops — so a fused chain is
// bit-identical to running the nodes separately.
//
// A chain may end in a trailing reduction (Dot/ReduceSum). The reduction
// shares kReduceChunk boundaries and ChunkSum/ChunkDot with the unfused
// reduction kernels, and when the chain is Cast-free it streams: each
// kReduceChunk-sized block of the elementwise prefix is evaluated into stack
// scratch and reduced immediately — one memory sweep, no materialized
// intermediate — while still matching the unfused graph bit for bit
// (elementwise values are pointwise, and the reduction consumes them in the
// identical chunk order).
#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/threadpool.h"
#include "kernels/kernel.h"
#include "kernels/reduction.h"
#include "optimizer/fused_spec.h"

namespace tfhpc {
namespace {

using optimizer::FusedStage;
using optimizer::IsFusedReduction;
using optimizer::ParseFusedStages;

enum class BinOp { kAdd, kSub, kMul, kDiv };

// Identical to math_kernels.cc ApplyBin (grain 8192, per-element switch):
// the fused result must match the unfused chain bit for bit.
template <typename T>
void ApplyBin(BinOp op, const T* a, const T* b, T* out, int64_t n,
              bool a_scalar, bool b_scalar) {
  ThreadPool::Global().ParallelFor(n, 8192, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const T x = a[a_scalar ? 0 : i];
      const T y = b[b_scalar ? 0 : i];
      switch (op) {
        case BinOp::kAdd: out[i] = x + y; break;
        case BinOp::kSub: out[i] = x - y; break;
        case BinOp::kMul: out[i] = x * y; break;
        case BinOp::kDiv: out[i] = x / y; break;
      }
    }
  });
}

template <typename T>
void ApplyAxpy(const T* alpha, const T* xs, const T* ys, T* d, int64_t n) {
  const T av = *alpha;
  ThreadPool::Global().ParallelFor(n, 8192, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i)
      d[i] = av * xs[static_cast<size_t>(i)] + ys[static_cast<size_t>(i)];
  });
}

template <typename T>
void ApplySqrt(const T* s, T* d, int64_t n) {
  for (int64_t i = 0; i < n; ++i) d[i] = std::sqrt(s[static_cast<size_t>(i)]);
}

template <typename T>
void ApplyNeg(const T* s, T* d, int64_t n) {
  for (int64_t i = 0; i < n; ++i) d[i] = -s[static_cast<size_t>(i)];
}

template <typename From, typename To>
void ApplyCast(const From* s, To* d, int64_t n) {
  for (int64_t i = 0; i < n; ++i)
    d[i] = static_cast<To>(s[static_cast<size_t>(i)]);
}

Result<BinOp> BinOpFor(const std::string& op) {
  if (op == "Add") return BinOp::kAdd;
  if (op == "Sub") return BinOp::kSub;
  if (op == "Mul") return BinOp::kMul;
  if (op == "Div") return BinOp::kDiv;
  return Internal("not a binary op: " + op);
}

bool IsBinary(const std::string& op) {
  return op == "Add" || op == "Sub" || op == "Mul" || op == "Div";
}

// Evaluates the elementwise prefix (stages [0, ew)) for elements
// [lo, lo + len) of the chain into the two alternating scratch buffers,
// returning a pointer to the final stage's values. Arithmetic per element is
// exactly the unfused kernels' — pointwise ops don't care how the index
// space is partitioned. Callers guarantee the chain has one dtype (no Cast)
// and len <= kReduceChunk.
template <typename T>
const T* EvalChainChunk(const std::vector<FusedStage>& stages, size_t ew,
                        OpKernelContext* ctx, int64_t lo, int64_t len, T* buf0,
                        T* buf1) {
  const T* cur = nullptr;
  T* next = buf0;
  for (size_t k = 0; k < ew; ++k) {
    const FusedStage& st = stages[k];
    auto ptr = [&](int r, bool* scalar) -> const T* {
      if (r == FusedStage::kPrev) {
        *scalar = false;
        return cur;
      }
      const Tensor& t = ctx->input(r);
      *scalar = t.shape().IsScalar();
      return *scalar ? t.data<T>().data() : t.data<T>().data() + lo;
    };
    if (IsBinary(st.op)) {
      bool as = false, bs = false;
      const T* a = ptr(st.operands[0], &as);
      const T* b = ptr(st.operands[1], &bs);
      const BinOp bop = st.op == "Add"   ? BinOp::kAdd
                        : st.op == "Sub" ? BinOp::kSub
                        : st.op == "Mul" ? BinOp::kMul
                                         : BinOp::kDiv;
      for (int64_t i = 0; i < len; ++i) {
        const T x = a[as ? 0 : i];
        const T y = b[bs ? 0 : i];
        switch (bop) {
          case BinOp::kAdd: next[i] = x + y; break;
          case BinOp::kSub: next[i] = x - y; break;
          case BinOp::kMul: next[i] = x * y; break;
          case BinOp::kDiv: next[i] = x / y; break;
        }
      }
    } else if (st.op == "Axpy") {
      bool s = false;
      const T av = *ptr(st.operands[0], &s);
      const T* xs = ptr(st.operands[1], &s);
      const T* ys = ptr(st.operands[2], &s);
      for (int64_t i = 0; i < len; ++i) next[i] = av * xs[i] + ys[i];
    } else if (st.op == "Sqrt") {
      bool s = false;
      const T* a = ptr(st.operands[0], &s);
      for (int64_t i = 0; i < len; ++i) next[i] = std::sqrt(a[i]);
    } else {  // Neg
      bool s = false;
      const T* a = ptr(st.operands[0], &s);
      for (int64_t i = 0; i < len; ++i) next[i] = -a[i];
    }
    cur = next;
    next = (next == buf0) ? buf1 : buf0;
  }
  return cur;
}

// Streaming trailing-reduction execution: per reduction chunk, evaluate the
// elementwise prefix into scratch and reduce it in place; combine partials
// serially in chunk order. Bit-identical to materialize-then-reduce because
// chunk boundaries and ChunkSum/ChunkDot are shared with the unfused
// Dot/ReduceSum kernels.
template <typename T>
T StreamReduceChain(const std::vector<FusedStage>& stages,
                    OpKernelContext* ctx, int64_t n) {
  using Acc = typename blas::ReduceAccum<T>::type;
  const FusedStage& red = stages.back();
  const size_t ew = stages.size() - 1;
  const int64_t chunks = blas::NumReduceChunks(n);
  std::vector<Acc> partials(static_cast<size_t>(chunks));
  ThreadPool::Global().ParallelFor(
      chunks, blas::kReduceGrainChunks, [&](int64_t cb, int64_t ce) {
        alignas(64) T buf0[blas::kReduceChunk];
        alignas(64) T buf1[blas::kReduceChunk];
        for (int64_t c = cb; c < ce; ++c) {
          const int64_t lo = c * blas::kReduceChunk;
          const int64_t len = std::min(blas::kReduceChunk, n - lo);
          const T* vals =
              EvalChainChunk<T>(stages, ew, ctx, lo, len, buf0, buf1);
          if (red.op == "ReduceSum") {
            partials[static_cast<size_t>(c)] = blas::ChunkSum(vals, len);
          } else {  // Dot
            auto side = [&](int r) -> const T* {
              return r == FusedStage::kPrev
                         ? vals
                         : ctx->input(r).data<T>().data() + lo;
            };
            partials[static_cast<size_t>(c)] = blas::ChunkDot(
                side(red.operands[0]), side(red.operands[1]), len);
          }
        }
      });
  return static_cast<T>(blas::CombineChunks(partials));
}

class FusedElementwiseKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    TFHPC_ASSIGN_OR_RETURN(
        const std::vector<FusedStage> stages,
        ParseFusedStages(ctx->node().def(), ctx->num_inputs()));

    // Static walk first: per-stage result dtype/shape with the unfused
    // kernels' exact operand checks. Runs on meta inputs too, so simulation
    // mode and real execution reject the same graphs.
    const size_t ns = stages.size();
    std::vector<DType> out_dtype(ns);
    std::vector<Shape> out_shape(ns);
    for (size_t k = 0; k < ns; ++k) {
      const FusedStage& st = stages[k];
      auto opnd_dtype = [&](int r) {
        return r == FusedStage::kPrev ? out_dtype[k - 1]
                                      : ctx->input(r).dtype();
      };
      auto opnd_shape = [&](int r) -> const Shape& {
        return r == FusedStage::kPrev ? out_shape[k - 1]
                                      : ctx->input(r).shape();
      };
      if (IsBinary(st.op)) {
        const Shape& a = opnd_shape(st.operands[0]);
        const Shape& b = opnd_shape(st.operands[1]);
        if (opnd_dtype(st.operands[0]) != opnd_dtype(st.operands[1])) {
          return InvalidArgument("fused " + st.op + " dtype mismatch");
        }
        if (!a.IsScalar() && !b.IsScalar() && a != b) {
          return InvalidArgument("fused " + st.op + " shape mismatch: " +
                                 a.ToString() + " vs " + b.ToString());
        }
        out_dtype[k] = opnd_dtype(st.operands[0]);
        out_shape[k] = a.IsScalar() ? b : a;
      } else if (st.op == "Axpy") {
        const Shape& alpha = opnd_shape(st.operands[0]);
        const Shape& x = opnd_shape(st.operands[1]);
        const Shape& y = opnd_shape(st.operands[2]);
        if (!alpha.IsScalar()) {
          return InvalidArgument("fused Axpy alpha must be scalar");
        }
        if (x != y || opnd_dtype(st.operands[1]) != opnd_dtype(st.operands[2]) ||
            opnd_dtype(st.operands[0]) != opnd_dtype(st.operands[1])) {
          return InvalidArgument("fused Axpy operand mismatch");
        }
        out_dtype[k] = opnd_dtype(st.operands[1]);
        out_shape[k] = x;
      } else if (st.op == "Cast") {
        out_dtype[k] = st.cast_to;
        out_shape[k] = opnd_shape(st.operands[0]);
      } else if (st.op == "Dot") {
        const Shape& a = opnd_shape(st.operands[0]);
        const Shape& b = opnd_shape(st.operands[1]);
        if (opnd_dtype(st.operands[0]) != opnd_dtype(st.operands[1])) {
          return InvalidArgument("fused Dot dtype mismatch");
        }
        if (!a.IsVector() || !(a == b)) {
          return InvalidArgument(
              "fused Dot requires two equal-length vectors, got " +
              a.ToString() + " and " + b.ToString());
        }
        out_dtype[k] = opnd_dtype(st.operands[0]);
        out_shape[k] = Shape{};
      } else if (st.op == "ReduceSum") {
        out_dtype[k] = opnd_dtype(st.operands[0]);
        out_shape[k] = Shape{};
      } else {  // Sqrt / Neg: passthrough
        out_dtype[k] = opnd_dtype(st.operands[0]);
        out_shape[k] = opnd_shape(st.operands[0]);
      }
      // The fusion contract: every elementwise stage produces the chain
      // shape, which is what makes in-place buffer reuse across stages
      // legal. A trailing reduction is the one exception — it collapses the
      // chain to a scalar (ParseFusedStages pins it to the final stage).
      if (k > 0 && !IsFusedReduction(st.op) &&
          !(out_shape[k] == out_shape[0])) {
        return InvalidArgument("fused chain shape drifted at stage " +
                               std::to_string(k) + ": " +
                               out_shape[k].ToString() + " vs " +
                               out_shape[0].ToString());
      }
    }
    const bool has_reduction = IsFusedReduction(stages[ns - 1].op);
    // Stages evaluated elementwise (all of them, minus a trailing reduction).
    const size_t ew = has_reduction ? ns - 1 : ns;

    if (ctx->meta_exec()) {
      Tensor out;
      TFHPC_RETURN_IF_ERROR(
          ctx->AllocateOutput(out_dtype[ns - 1], out_shape[ns - 1], &out,
                              ZeroInit::kNo));
      ctx->set_output(0, std::move(out));
      return Status::OK();
    }

    // Cast-free single-dtype reduction chains stream chunk-by-chunk instead
    // of materializing the elementwise prefix.
    if (has_reduction) {
      bool streaming = out_dtype[0] == DType::kF32 || out_dtype[0] == DType::kF64;
      for (size_t k = 0; k < ew; ++k) {
        if (stages[k].op == "Cast") streaming = false;
      }
      if (streaming) {
        Tensor out;
        TFHPC_RETURN_IF_ERROR(ctx->AllocateOutput(out_dtype[ns - 1], Shape{},
                                                  &out, ZeroInit::kNo));
        const int64_t n = out_shape[0].num_elements();
        if (out_dtype[0] == DType::kF32) {
          *out.mutable_data<float>() = StreamReduceChain<float>(stages, ctx, n);
        } else {
          *out.mutable_data<double>() =
              StreamReduceChain<double>(stages, ctx, n);
        }
        ctx->set_output(0, std::move(out));
        return Status::OK();
      }
    }

    // Last stage reading each data input: its buffer is dead afterwards and
    // a candidate for reuse as the chain accumulator.
    std::vector<int> last_use(static_cast<size_t>(ctx->num_inputs()), -1);
    for (size_t k = 0; k < ns; ++k) {
      for (int r : stages[k].operands) {
        if (r >= 0) last_use[static_cast<size_t>(r)] = static_cast<int>(k);
      }
    }

    Tensor cur;
    for (size_t k = 0; k < ew; ++k) {
      const FusedStage& st = stages[k];
      auto opnd = [&](int r) -> const Tensor& {
        return r == FusedStage::kPrev ? cur : ctx->input(r);
      };

      Tensor dst;
      if (k == 0) {
        // Forward a dying chain-shaped operand's buffer, exactly like the
        // unfused kernels' ForwardOrAllocate (aliasing is safe: every loop
        // reads element i before writing element i).
        for (int r : st.operands) {
          if (r < 0 || last_use[static_cast<size_t>(r)] != 0) continue;
          const Tensor& in = ctx->input(r);
          if (in.is_meta() || in.dtype() != out_dtype[0] ||
              !(in.shape() == out_shape[0]) || !in.buffer_unique()) {
            continue;
          }
          if (ctx->alloc_stats() != nullptr) ctx->alloc_stats()->RecordForward();
          dst = in;
          break;
        }
      } else if (cur.dtype() == out_dtype[k]) {
        dst = cur;  // accumulate in place across the whole chain
      }
      if (!dst.valid()) {
        TFHPC_RETURN_IF_ERROR(ctx->AllocateOutput(out_dtype[k], out_shape[k],
                                                  &dst, ZeroInit::kNo));
      }

      const int64_t n = out_shape[k].num_elements();
      const DType dt = out_dtype[k];
      if (IsBinary(st.op)) {
        TFHPC_ASSIGN_OR_RETURN(const BinOp bop, BinOpFor(st.op));
        const Tensor& a = opnd(st.operands[0]);
        const Tensor& b = opnd(st.operands[1]);
        if (dt == DType::kF32) {
          ApplyBin(bop, a.data<float>().data(), b.data<float>().data(),
                   dst.mutable_data<float>(), n, a.shape().IsScalar(),
                   b.shape().IsScalar());
        } else if (dt == DType::kF64) {
          ApplyBin(bop, a.data<double>().data(), b.data<double>().data(),
                   dst.mutable_data<double>(), n, a.shape().IsScalar(),
                   b.shape().IsScalar());
        } else {
          return Unimplemented("fused " + st.op + " for dtype " +
                               std::string(DTypeName(dt)));
        }
      } else if (st.op == "Axpy") {
        const Tensor& alpha = opnd(st.operands[0]);
        const Tensor& x = opnd(st.operands[1]);
        const Tensor& y = opnd(st.operands[2]);
        if (dt == DType::kF32) {
          ApplyAxpy(alpha.data<float>().data(), x.data<float>().data(),
                    y.data<float>().data(), dst.mutable_data<float>(), n);
        } else if (dt == DType::kF64) {
          ApplyAxpy(alpha.data<double>().data(), x.data<double>().data(),
                    y.data<double>().data(), dst.mutable_data<double>(), n);
        } else {
          return Unimplemented("fused Axpy for dtype " +
                               std::string(DTypeName(dt)));
        }
      } else if (st.op == "Sqrt") {
        const Tensor& a = opnd(st.operands[0]);
        if (dt == DType::kF32) {
          ApplySqrt(a.data<float>().data(), dst.mutable_data<float>(), n);
        } else if (dt == DType::kF64) {
          ApplySqrt(a.data<double>().data(), dst.mutable_data<double>(), n);
        } else {
          return Unimplemented("fused Sqrt for dtype " +
                               std::string(DTypeName(dt)));
        }
      } else if (st.op == "Neg") {
        const Tensor& a = opnd(st.operands[0]);
        if (dt == DType::kF32) {
          ApplyNeg(a.data<float>().data(), dst.mutable_data<float>(), n);
        } else if (dt == DType::kF64) {
          ApplyNeg(a.data<double>().data(), dst.mutable_data<double>(), n);
        } else {
          return Unimplemented("fused Neg for dtype " +
                               std::string(DTypeName(dt)));
        }
      } else {  // Cast
        const Tensor& a = opnd(st.operands[0]);
        if (a.dtype() == DType::kF32 && dt == DType::kF64) {
          ApplyCast(a.data<float>().data(), dst.mutable_data<double>(), n);
        } else if (a.dtype() == DType::kF64 && dt == DType::kF32) {
          ApplyCast(a.data<double>().data(), dst.mutable_data<float>(), n);
        } else if (a.dtype() == dt) {
          if (dst.raw_data() != a.raw_data()) {
            std::memcpy(dst.raw_data(), a.raw_data(),
                        static_cast<size_t>(a.bytes()));
          }
        } else {
          return Unimplemented(std::string("fused Cast ") +
                               DTypeName(a.dtype()) + " -> " + DTypeName(dt));
        }
      }
      cur = std::move(dst);
    }

    // Fallback reduction tail (chains with Cast stages): reduce the
    // materialized chain with the same ParallelSum/ParallelDot the unfused
    // kernels use — still bit-identical, just two sweeps instead of one.
    if (has_reduction) {
      const FusedStage& red = stages[ns - 1];
      auto opnd = [&](int r) -> const Tensor& {
        return r == FusedStage::kPrev ? cur : ctx->input(r);
      };
      const DType dt = out_dtype[ns - 1];
      const int64_t n = out_shape[0].num_elements();
      Tensor out;
      TFHPC_RETURN_IF_ERROR(
          ctx->AllocateOutput(dt, Shape{}, &out, ZeroInit::kNo));
      if (red.op == "Dot") {
        const Tensor& x = opnd(red.operands[0]);
        const Tensor& y = opnd(red.operands[1]);
        if (dt == DType::kF32) {
          *out.mutable_data<float>() = static_cast<float>(blas::ParallelDot(
              x.data<float>().data(), y.data<float>().data(), n));
        } else if (dt == DType::kF64) {
          *out.mutable_data<double>() = blas::ParallelDot(
              x.data<double>().data(), y.data<double>().data(), n);
        } else {
          return Unimplemented("fused Dot for dtype " +
                               std::string(DTypeName(dt)));
        }
      } else {  // ReduceSum
        const Tensor& x = opnd(red.operands[0]);
        if (dt == DType::kF32) {
          *out.mutable_data<float>() =
              static_cast<float>(blas::ParallelSum(x.data<float>().data(), n));
        } else if (dt == DType::kF64) {
          *out.mutable_data<double>() =
              blas::ParallelSum(x.data<double>().data(), n);
        } else {
          return Unimplemented("fused ReduceSum for dtype " +
                               std::string(DTypeName(dt)));
        }
      }
      cur = std::move(out);
    }
    ctx->set_output(0, std::move(cur));
    return Status::OK();
  }

  CostEstimate Cost(const OpKernelContext& ctx) const override {
    CostEstimate c = OpKernel::Cost(ctx);
    auto stages = ParseFusedStages(ctx.node().def(), ctx.num_inputs());
    if (!stages.ok()) return c;
    int64_t n = 0;
    for (int i = 0; i < ctx.num_inputs(); ++i) {
      n = std::max(n, ctx.input(i).num_elements());
    }
    double flops = 0;
    for (const FusedStage& st : *stages) {
      if (st.op == "Axpy" || st.op == "Dot") {
        flops += 2.0 * static_cast<double>(n);
      } else if (st.op != "Cast") {
        flops += static_cast<double>(n);
      }
    }
    c.flops = flops;
    // One result write per step; intermediates stay in the reused buffer (or
    // never exist at all: a trailing reduction writes one scalar).
    if (ctx.num_inputs() > 0) {
      const int64_t dsz =
          static_cast<int64_t>(DTypeSize(ctx.input(0).dtype()));
      c.bytes_written = IsFusedReduction(stages->back().op) ? dsz : n * dsz;
    }
    return c;
  }
};

TFHPC_REGISTER_KERNEL_ALL("FusedElementwise", FusedElementwiseKernel);

}  // namespace
}  // namespace tfhpc
