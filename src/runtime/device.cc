#include "runtime/device.h"

#include <algorithm>

namespace tfhpc {

double ComputeModel::EstimateSeconds(double flops, int64_t bytes,
                                     bool double_precision) const {
  const double peak =
      (double_precision ? dp_gflops : sp_gflops) * 1e9 * efficiency;
  const double bw = mem_gbps * 1e9;
  double t = 0;
  if (peak > 0 && flops > 0) t = std::max(t, flops / peak);
  if (bw > 0 && bytes > 0) t = std::max(t, static_cast<double>(bytes) / bw);
  return t;
}

Status Device::CheckCapacity(int64_t additional_bytes) const {
  if (model_.mem_bytes <= 0) return Status::OK();  // host: unconstrained
  const int64_t projected = alloc_stats_.live_bytes() + additional_bytes;
  if (projected > model_.mem_bytes) {
    return ResourceExhausted("device " + name_.ToString() + " (" +
                             model_.model_name + ") out of memory: " +
                             std::to_string(projected) + " of " +
                             std::to_string(model_.mem_bytes) + " bytes");
  }
  return Status::OK();
}

namespace models {

ComputeModel HostCpu() {
  // Dual Xeon E5-2690-class node: ~0.9 SP Tflop/s, ~0.45 DP, ~120 GB/s.
  return {.model_name = "XeonE5-2690",
          .sp_gflops = 900,
          .dp_gflops = 450,
          .mem_gbps = 120,
          .mem_bytes = 0,
          .efficiency = 0.60};
}

ComputeModel QuadroK420() {
  // Entry Kepler: ~300 SP Gflop/s, 1/24 DP rate, 29 GB/s GDDR3, 1 GB.
  return {.model_name = "K420",
          .sp_gflops = 300,
          .dp_gflops = 12.5,
          .mem_gbps = 29,
          .mem_bytes = int64_t{1} << 30,
          .efficiency = 0.65};
}

ComputeModel Gk210() {
  // One GK210 engine of a K80 (paper counts engines as GPUs): ~2.8 SP
  // Tflop/s boost, ~0.94 DP, 240 GB/s, 12 GB.
  return {.model_name = "GK210",
          .sp_gflops = 2800,
          .dp_gflops = 935,
          .mem_gbps = 240,
          .mem_bytes = int64_t{12} << 30,
          .efficiency = 0.60};
}

ComputeModel V100() {
  // PCIe V100: 14 SP Tflop/s, 7 DP, 900 GB/s HBM2, 16 GB.
  return {.model_name = "V100",
          .sp_gflops = 14000,
          .dp_gflops = 7000,
          .mem_gbps = 900,
          .mem_bytes = int64_t{16} << 30,
          .efficiency = 0.70};
}

}  // namespace models

Status DeviceMgr::AddDevice(std::unique_ptr<Device> device) {
  for (const auto& d : devices_) {
    if (d->name() == device->name()) {
      return AlreadyExists("device " + device->name_string() +
                           " already registered");
    }
  }
  devices_.push_back(std::move(device));
  return Status::OK();
}

std::unique_ptr<DeviceMgr> DeviceMgr::CreateLocal(
    const std::string& job, int task, int num_gpus,
    const ComputeModel& gpu_model) {
  auto mgr = std::make_unique<DeviceMgr>();
  DeviceName cpu{.job = job, .task = task, .type = "cpu", .index = 0};
  TFHPC_CHECK(mgr->AddDevice(std::make_unique<Device>(cpu, models::HostCpu()))
                  .ok());
  for (int i = 0; i < num_gpus; ++i) {
    DeviceName gpu{.job = job, .task = task, .type = "gpu", .index = i};
    TFHPC_CHECK(
        mgr->AddDevice(std::make_unique<Device>(gpu, gpu_model)).ok());
  }
  return mgr;
}

Device* DeviceMgr::Find(const DeviceName& pattern) const {
  for (const auto& d : devices_) {
    if (d->name().Matches(pattern)) return d.get();
  }
  return nullptr;
}

int DeviceMgr::CountType(const std::string& type) const {
  return static_cast<int>(
      std::count_if(devices_.begin(), devices_.end(),
                    [&](const auto& d) { return d->type() == type; }));
}

}  // namespace tfhpc
