// Tests for static tensor liveness + the memory planner (src/analysis/
// liveness.h, memory_plan.h) and their runtime wiring: arena execution
// bit-identical to pool execution, GC018 strict rejection before any kernel
// runs, and the ShapeFnRegistry coverage audit.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/liveness.h"
#include "analysis/memory_plan.h"
#include "analysis/shape_inference.h"
#include "analysis/verifier.h"
#include "graph/ops.h"
#include "runtime/session.h"
#include "wire/messages.h"

namespace tfhpc {
namespace {

using analysis::AnalysisOptions;
using analysis::Diagnostic;
using analysis::LivenessAnalysis;
using analysis::MemoryPlan;
using analysis::TensorLife;

wire::NodeDef MakeNode(std::string name, std::string op,
                       std::vector<std::string> inputs = {},
                       std::map<std::string, wire::AttrValue> attrs = {}) {
  wire::NodeDef nd;
  nd.name = std::move(name);
  nd.op = std::move(op);
  nd.inputs = std::move(inputs);
  nd.attrs = std::move(attrs);
  return nd;
}

wire::NodeDef Typed(wire::NodeDef nd, DType dtype, Shape shape) {
  nd.attrs["dtype"] = wire::AttrValue::Type(dtype);
  nd.attrs["shape"] = wire::AttrValue::OfShape(std::move(shape));
  return nd;
}

// Verifies `def` (expecting no errors) and computes liveness for the
// signature.
LivenessAnalysis Live(const wire::GraphDef& def, const AnalysisOptions& opts) {
  const analysis::GraphAnalysis ga = analysis::VerifyGraph(def, opts);
  EXPECT_FALSE(ga.has_errors()) << analysis::FormatDiagnostics(ga.diagnostics);
  auto live = LivenessAnalysis::Compute(def, opts, ga.annotations);
  EXPECT_TRUE(live.ok()) << live.status().ToString();
  return *live;
}

const Diagnostic* Find(const std::vector<Diagnostic>& diags,
                       const std::string& code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

// A small all-static chain: x -> a = x+x -> b = a*a -> c = sqrt(b).
wire::GraphDef ChainDef() {
  wire::GraphDef def;
  def.nodes.push_back(
      Typed(MakeNode("x", "Placeholder"), DType::kF64, Shape{8}));
  def.nodes.push_back(MakeNode("a", "Add", {"x", "x"}));
  def.nodes.push_back(MakeNode("b", "Mul", {"a", "a"}));
  def.nodes.push_back(MakeNode("c", "Sqrt", {"b"}));
  return def;
}

// ---- liveness edge cases ----------------------------------------------------

TEST(LivenessTest, FedTensorLiveFromStepStart) {
  const wire::GraphDef def = ChainDef();
  const LivenessAnalysis live = Live(def, {{"x"}, {"c"}, {}});

  const TensorLife* x = live.Find("x", 0);
  ASSERT_NE(x, nullptr);
  EXPECT_TRUE(x->fed);
  // Fed storage is caller-owned across the whole step: never reusable, at
  // any position.
  for (int pos = 0; pos < live.num_nodes(); ++pos) {
    EXPECT_FALSE(live.DeadBefore(*x, pos)) << "position " << pos;
  }

  // And the planner must neither place it in the arena nor charge it to the
  // static peak.
  auto plan = MemoryPlan::Plan(live);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->Find("x", 0), nullptr);
}

TEST(LivenessTest, FetchedTensorLiveToStepEnd) {
  const wire::GraphDef def = ChainDef();
  const LivenessAnalysis live = Live(def, {{"x"}, {"a", "c"}, {}});

  // `a` is fetched mid-chain: its interval must stretch to the last
  // schedule position even though its last consumer (`b`) runs earlier.
  const TensorLife* a = live.Find("a", 0);
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->fetched);
  EXPECT_EQ(a->last, live.num_nodes() - 1);
  for (int pos = 0; pos < live.num_nodes(); ++pos) {
    EXPECT_FALSE(live.DeadBefore(*a, pos));
  }

  // Fetched tensors leave the step: the arena must not own their bytes.
  auto plan = MemoryPlan::Plan(live);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->Find("a", 0), nullptr);
  EXPECT_EQ(plan->Find("c", 0), nullptr);
}

TEST(LivenessTest, ControlEdgeConsumerExtendsLifetime) {
  // a's value is consumed only by b, but c holds a control edge on a: a's
  // tensor must stay pinned until c completes (the edge orders the node,
  // conservatively pinning every output slot).
  wire::GraphDef def;
  def.nodes.push_back(
      Typed(MakeNode("x", "Placeholder"), DType::kF64, Shape{4}));
  def.nodes.push_back(MakeNode("a", "Add", {"x", "x"}));
  def.nodes.push_back(MakeNode("b", "Mul", {"a", "a"}));
  def.nodes.push_back(MakeNode("c", "Sqrt", {"b", "^a"}));
  const LivenessAnalysis live = Live(def, {{"x"}, {"c"}, {}});

  const TensorLife* a = live.Find("a", 0);
  ASSERT_NE(a, nullptr);
  const int c_pos = live.PositionOf("c");
  ASSERT_GE(c_pos, 0);
  EXPECT_NE(std::find(a->uses.begin(), a->uses.end(), c_pos), a->uses.end())
      << "control consumer missing from uses";
  EXPECT_GE(a->last, c_pos);
  // Not dead at c (c itself uses it) — only past every use.
  EXPECT_FALSE(live.DeadBefore(*a, c_pos));
}

TEST(LivenessTest, DynamicTensorExcludedFromArena) {
  // Hand the analysis an annotation map that knows `x` and `a` but not `b`:
  // b's extent is unknown, so it must be counted dynamic and kept out of
  // both the arena and the static peak (which becomes a partial bound the
  // plan flags via dynamic_tensors).
  const wire::GraphDef def = ChainDef();
  const AnalysisOptions opts{{"x"}, {"c"}, {}};
  const analysis::GraphAnalysis ga = analysis::VerifyGraph(def, opts);
  ASSERT_FALSE(ga.has_errors());
  auto annotations = ga.annotations;
  annotations.erase("b");
  annotations.erase("c");
  auto live = LivenessAnalysis::Compute(def, opts, annotations);
  ASSERT_TRUE(live.ok());

  const TensorLife* b = live->Find("b", 0);
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(b->statically_sized());

  auto plan = MemoryPlan::Plan(*live);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->Find("b", 0), nullptr);
  EXPECT_EQ(plan->dynamic_tensors(), 2);  // b and fetched c
}

TEST(LivenessTest, PlanIsDeterministicAcrossRepeatedComputes) {
  const wire::GraphDef def = ChainDef();
  const AnalysisOptions opts{{"x"}, {"c"}, {}};

  auto once = [&]() {
    const LivenessAnalysis live = Live(def, opts);
    auto plan = MemoryPlan::Plan(live);
    EXPECT_TRUE(plan.ok());
    return std::make_pair(plan->ToString(live), plan->arena_bytes());
  };
  const auto [text1, arena1] = once();
  const auto [text2, arena2] = once();
  EXPECT_EQ(text1, text2);
  EXPECT_EQ(arena1, arena2);
}

TEST(LivenessTest, UnorderedTensorsNeverShareOffsets) {
  // Two independent branches off one feed: their tensors are concurrent
  // (neither happens-before the other), so the planner must give them
  // disjoint arena ranges even though their serialized intervals look
  // disjoint.
  wire::GraphDef def;
  def.nodes.push_back(
      Typed(MakeNode("x", "Placeholder"), DType::kF64, Shape{16}));
  def.nodes.push_back(MakeNode("l1", "Add", {"x", "x"}));
  def.nodes.push_back(MakeNode("l2", "Mul", {"l1", "l1"}));
  def.nodes.push_back(MakeNode("r1", "Sub", {"x", "x"}));
  def.nodes.push_back(MakeNode("r2", "Mul", {"r1", "r1"}));
  def.nodes.push_back(MakeNode("join", "Add", {"l2", "r2"}));
  def.nodes.push_back(MakeNode("out", "Sqrt", {"join"}));
  const LivenessAnalysis live = Live(def, {{"x"}, {"out"}, {}});
  auto plan = MemoryPlan::Plan(live);
  ASSERT_TRUE(plan.ok());

  const analysis::PlannedTensor* l1 = plan->Find("l1", 0);
  const analysis::PlannedTensor* r1 = plan->Find("r1", 0);
  ASSERT_NE(l1, nullptr);
  ASSERT_NE(r1, nullptr);
  const bool overlap = l1->offset < r1->offset + r1->bytes &&
                       r1->offset < l1->offset + l1->bytes;
  EXPECT_FALSE(overlap) << "concurrent tensors share arena bytes";
}

// ---- lints ------------------------------------------------------------------

TEST(MemoryLintTest, GC018FiresOnlyOverBudget) {
  const wire::GraphDef def = ChainDef();
  const LivenessAnalysis live = Live(def, {{"x"}, {"c"}, {}});
  auto plan = MemoryPlan::Plan(live);
  ASSERT_TRUE(plan.ok());
  ASSERT_GT(plan->static_peak_bytes(), 0);

  auto over = analysis::LintMemory(def, live, *plan,
                                   plan->static_peak_bytes() - 1);
  ASSERT_NE(Find(over, "GC018"), nullptr);
  EXPECT_EQ(Find(over, "GC018")->severity, analysis::Severity::kError);

  auto fits = analysis::LintMemory(def, live, *plan,
                                   plan->static_peak_bytes());
  EXPECT_EQ(Find(fits, "GC018"), nullptr);
  auto unbudgeted = analysis::LintMemory(def, live, *plan, 0);
  EXPECT_EQ(Find(unbudgeted, "GC018"), nullptr);
}

TEST(MemoryLintTest, GC019RacingVariableOverwrite) {
  // read = Neg(v) consumes v's value; w overwrites v with no ordering
  // between read and w -> GC019. Adding the control edge silences it.
  wire::GraphDef def;
  def.nodes.push_back(
      Typed(MakeNode("v", "Variable"), DType::kF64, Shape{4}));
  def.nodes.push_back(
      Typed(MakeNode("init", "Placeholder"), DType::kF64, Shape{4}));
  def.nodes.push_back(MakeNode("read", "Neg", {"v"}));
  def.nodes.push_back(MakeNode(
      "w", "Assign", {"init"}, {{"var", wire::AttrValue::Str("v")}}));
  const AnalysisOptions opts{{"init"}, {"read"}, {"w"}};
  const LivenessAnalysis live = Live(def, opts);
  auto plan = MemoryPlan::Plan(live);
  ASSERT_TRUE(plan.ok());
  auto lints = analysis::LintMemory(def, live, *plan, 0);
  const Diagnostic* d = Find(lints, "GC019");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->node, "w");

  // Same graph with the write ordered after the read: no finding.
  def.nodes[3].inputs.push_back("^read");
  const LivenessAnalysis ordered = Live(def, opts);
  auto plan2 = MemoryPlan::Plan(ordered);
  ASSERT_TRUE(plan2.ok());
  EXPECT_EQ(Find(analysis::LintMemory(def, ordered, *plan2, 0), "GC019"),
            nullptr);
}

// ---- runtime wiring ---------------------------------------------------------

TEST(MemplanRuntimeTest, ArenaExecutionBitIdenticalToPool) {
  LocalRuntime rt(0);
  Scope s = rt.root_scope();
  auto x = ops::Placeholder(s, DType::kF64, Shape{64}, "x");
  auto a = ops::Add(s, x, x);
  auto b = ops::Mul(s, a, a);
  auto c = ops::Sqrt(s, b);
  auto d = ops::Sub(s, c, a);

  SessionOptions planned_opts;
  planned_opts.memory_planning = true;
  SessionOptions pool_opts;
  pool_opts.memory_planning = false;
  auto planned = rt.NewSession(planned_opts);
  auto pooled = rt.NewSession(pool_opts);

  // The planned session must actually compile an arena (otherwise this test
  // compares pool against pool).
  auto exe = planned->Prepare({"x"}, {d.name()});
  ASSERT_TRUE(exe.ok()) << exe.status().ToString();
  EXPECT_GT((*exe)->num_planned_nodes(), 0);
  EXPECT_GT((*exe)->arena_bytes(), 0);
  EXPECT_GT((*exe)->static_peak_bytes(), 0);

  std::vector<double> input(64);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = 0.25 * static_cast<double>(i) + 1.0;
  }
  const std::map<std::string, Tensor> feeds = {
      {"x", Tensor::FromVector(input)}};
  auto r1 = planned->Run(feeds, {d.name()});
  auto r2 = pooled->Run(feeds, {d.name()});
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_EQ(r1->size(), 1u);
  EXPECT_TRUE((*r1)[0].BitwiseEquals((*r2)[0]));
}

TEST(MemplanRuntimeTest, StaticPeakCoversMeasuredPeak) {
  LocalRuntime rt(0);
  Scope s = rt.root_scope();
  auto x = ops::Placeholder(s, DType::kF64, Shape{256}, "x");
  auto a = ops::Add(s, x, x);
  auto b = ops::Mul(s, a, a);
  auto c = ops::Sqrt(s, b);

  auto sess = rt.NewSession();
  auto exe = sess->Prepare({"x"}, {c.name()});
  ASSERT_TRUE(exe.ok());
  const int64_t static_peak = (*exe)->static_peak_bytes();
  ASSERT_GT(static_peak, 0);

  std::vector<double> input(256, 2.0);
  RunOptions opts;
  opts.step_memory_limit_bytes = 1 << 30;  // arm the limiter, never binds
  RunMetadata meta;
  auto r = sess->RunPrepared(**exe, {{"x", Tensor::FromVector(input)}}, opts,
                             &meta);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(meta.step_peak_bytes, 0);
  EXPECT_GE(static_peak, meta.step_peak_bytes);
}

TEST(MemplanRuntimeTest, GC018StrictRejectsBeforeAnyKernelRuns) {
  LocalRuntime rt(0);
  Scope s = rt.root_scope();
  auto v = ops::Variable(s, "v", DType::kF64, Shape{4});
  auto seed = ops::Const(s, Tensor::FromVector(std::vector<double>{1, 2, 3, 4}));
  auto init = ops::Assign(s, v, seed);
  auto bump = ops::AssignAdd(s, v, seed);

  // Initialize v through an unbudgeted, permissive session.
  auto setup = rt.NewSession();
  ASSERT_TRUE(setup->Run({}, {}, {init.name()}).ok());

  // Strict session with a budget far below the step's static peak: the
  // compile must fail with GC018 and the AssignAdd kernel must never run.
  SessionOptions strict;
  strict.graph_check = GraphCheckMode::kStrict;
  strict.step_memory_limit_bytes = 8;
  auto strict_sess = rt.NewSession(strict);
  auto r = strict_sess->Run({}, {}, {bump.name()});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kInvalidArgument);
  EXPECT_NE(r.status().message().find("GC018"), std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(strict_sess->nodes_executed(), 0);

  // v still holds the initial value: the rejected step had no side effects.
  auto read = setup->Run({}, {v.name()});
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(
      (*read)[0].BitwiseEquals(Tensor::FromVector(std::vector<double>{1, 2, 3, 4})));
}

// ---- shape-fn coverage audit ------------------------------------------------

TEST(ShapeFnCoverageTest, EveryRegisteredOpHasAShapeStory) {
  // Every op in OpRegistry must have an inference fn or be explicitly
  // marked dynamic — otherwise its outputs silently stay unknown and the
  // memory planner quietly under-covers graphs using it. Adding an op
  // without deciding this fails here.
  const auto uncovered = analysis::ShapeFnRegistry::Global().UncoveredOps();
  EXPECT_TRUE(uncovered.empty()) << [&] {
    std::string msg = "ops without a shape fn or dynamic marking:";
    for (const auto& op : uncovered) msg += " " + op;
    return msg;
  }();
}

}  // namespace
}  // namespace tfhpc
