#include "sim/machine.h"

namespace tfhpc::sim {

const char* ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kGrpc: return "gRPC";
    case Protocol::kMpi: return "MPI";
    case Protocol::kRdma: return "RDMA";
  }
  return "?";
}

const char* GpuKindName(GpuKind k) {
  switch (k) {
    case GpuKind::kK420: return "K420";
    case GpuKind::kK80: return "K80";
    case GpuKind::kV100: return "V100";
  }
  return "?";
}

MachineConfig TegnerConfig(GpuKind kind) {
  MachineConfig c;
  c.name = "Tegner";
  c.gpu_kind = kind;
  // EDR InfiniBand: 12 GB/s theoretical; effective verbs bandwidth
  // calibrated to the paper's >6 GB/s host-to-host RDMA measurement.
  c.nic_bps = 8.4e9;
  c.eth_bps = 1.10e9;         // 10 GbE management network (gRPC resolves here)
  c.qpi_bps = 25e9;
  c.hostmem_bps = 40e9;       // single-threaded staging copy share
  c.serialize_bps = 1.30e9;   // MPI-module tensor serialize (calibrates 318 MB/s)
  c.grpc_serialize_bps = 0.95e9;
  c.disk_bps = 1.6e9;         // Lustre per-client effective
  c.grpc_over_ethernet = true;  // paper: "gRPC connection resolved to Ethernet"
  c.cpu_model = models::HostCpu();
  if (kind == GpuKind::kK420) {
    c.gpus_per_node = 1;      // Table I
    c.paired_engines = false;
    c.pcie_bps = 1.45e9;      // K420's effective D2H/H2D (calibrates 1300 MB/s)
    c.card_bps = 0;
    c.gpu_model = models::QuadroK420();
  } else {
    TFHPC_CHECK(kind == GpuKind::kK80) << "Tegner has K420 or K80 nodes";
    c.gpus_per_node = 2;      // one K80 card = two GK210 engines
    c.paired_engines = true;
    c.pcie_bps = 5.0e9;
    c.card_bps = 9.0e9;       // card's PCIe switch uplink
    c.gpu_model = models::Gk210();
  }
  return c;
}

MachineConfig KebnekaiseConfig(GpuKind kind) {
  MachineConfig c;
  c.name = "Kebnekaise";
  c.gpu_kind = kind;
  // FDR InfiniBand: ~6.8 GB/s theoretical, lower effective.
  c.nic_bps = 5.2e9;
  c.eth_bps = 1.10e9;
  c.qpi_bps = 28e9;
  c.hostmem_bps = 45e9;
  c.serialize_bps = 1.85e9;   // newer CPUs/GCC (calibrates ~480 MB/s MPI)
  c.grpc_serialize_bps = 1.80e9;  // gRPC ~= MPI on Kebnekaise (paper Fig. 7)
  c.disk_bps = 1.95e9;
  c.grpc_over_ethernet = false;   // gRPC rides IPoIB here
  c.cpu_model = models::HostCpu();
  if (kind == GpuKind::kK80) {
    c.gpus_per_node = 4;      // Table I: 4 instances/node (2 K80 cards)
    c.paired_engines = true;
    c.pcie_bps = 2.4e9;       // per-engine share (calibrates <2300 MB/s RDMA)
    c.card_bps = 5.0e9;
    c.gpu_model = models::Gk210();
  } else {
    TFHPC_CHECK(kind == GpuKind::kV100) << "Kebnekaise has K80 or V100 nodes";
    c.gpus_per_node = 2;
    c.paired_engines = false;
    c.pcie_bps = 11.0e9;      // PCIe 3.0 x16
    c.card_bps = 0;
    c.gpu_model = models::V100();
  }
  return c;
}

ClusterModel::ClusterModel(MachineConfig cfg, int num_gpus,
                           int extra_host_nodes)
    : cfg_(std::move(cfg)), num_gpus_(num_gpus) {
  TFHPC_CHECK_GE(num_gpus, 0);
  const int gpu_nodes =
      (num_gpus + cfg_.gpus_per_node - 1) / cfg_.gpus_per_node;
  num_nodes_ = gpu_nodes + extra_host_nodes;
  TFHPC_CHECK_GT(num_nodes_, 0);

  // Ablation: contention off = every shared per-node resource gets the full
  // aggregate bandwidth per instance (equivalent to private links).
  const double share =
      cfg_.contention ? 1.0 : static_cast<double>(cfg_.gpus_per_node);

  nodes_.resize(static_cast<size_t>(num_nodes_));
  for (int n = 0; n < num_nodes_; ++n) {
    NodeLinks& links = nodes_[static_cast<size_t>(n)];
    const std::string p = "n" + std::to_string(n) + ":";
    for (int g = 0; g < cfg_.gpus_per_node; ++g) {
      links.pcie.push_back(
          net_.AddLink(p + "pcie" + std::to_string(g), cfg_.pcie_bps));
    }
    if (cfg_.paired_engines && cfg_.card_bps > 0) {
      const int cards = (cfg_.gpus_per_node + 1) / 2;
      for (int cidx = 0; cidx < cards; ++cidx) {
        links.card.push_back(net_.AddLink(p + "card" + std::to_string(cidx),
                                          cfg_.card_bps * share));
      }
    }
    links.qpi = net_.AddLink(p + "qpi", cfg_.qpi_bps * share);
    links.nic = net_.AddLink(p + "nic", cfg_.nic_bps * share);
    links.eth = net_.AddLink(p + "eth", cfg_.eth_bps * share);
    links.hostmem = net_.AddLink(p + "hostmem", cfg_.hostmem_bps * share);
    links.serialize =
        net_.AddLink(p + "serialize", cfg_.serialize_bps * share);
    links.disk = net_.AddLink(p + "disk", cfg_.disk_bps * share);
  }
}

Loc ClusterModel::GpuLoc(int rank) const {
  TFHPC_CHECK_GE(rank, 0);
  TFHPC_CHECK_LT(rank, num_gpus_);
  return Loc{rank / cfg_.gpus_per_node, rank % cfg_.gpus_per_node};
}

int ClusterModel::IslandOf(const Loc& loc) const {
  if (loc.is_host()) return cfg_.nic_island;  // staging buffers near the NIC
  if (cfg_.gpus_per_node == 1) return 0;
  if (cfg_.gpus_per_node == 2) {
    // Tegner K80: both engines of the single card on island 0.
    // Kebnekaise V100: one GPU per island.
    return cfg_.paired_engines ? 0 : loc.gpu;
  }
  // Kebnekaise K80: engines 0,1 (card 0) island 0; engines 2,3 island 1.
  return loc.gpu / 2;
}

std::vector<LinkId> ClusterModel::LocalPath(const Loc& loc,
                                            bool to_wire) const {
  const NodeLinks& n = nodes_[static_cast<size_t>(loc.node)];
  std::vector<LinkId> path;
  if (!loc.is_host()) {
    path.push_back(n.pcie[static_cast<size_t>(loc.gpu)]);
    if (!n.card.empty()) {
      path.push_back(n.card[static_cast<size_t>(loc.gpu / 2)]);
    }
  } else {
    path.push_back(n.hostmem);
  }
  if (to_wire && IslandOf(loc) != cfg_.nic_island) {
    path.push_back(n.qpi);  // Fig. 9: crossing to the I/O island
  }
  return path;
}

LinkId ClusterModel::WireLink(int node, Protocol proto) const {
  const NodeLinks& n = nodes_[static_cast<size_t>(node)];
  if (proto == Protocol::kGrpc && cfg_.grpc_over_ethernet) return n.eth;
  return n.nic;
}

double ClusterModel::WireLatency(Protocol proto) const {
  return proto == Protocol::kGrpc ? cfg_.grpc_latency_s : cfg_.rpc_latency_s;
}

OpId ClusterModel::GpuCompute(int rank, double flops, int64_t bytes, bool fp64,
                              std::vector<OpId> deps, std::string label) {
  const Loc loc = GpuLoc(rank);
  const std::string device =
      "n" + std::to_string(loc.node) + ":gpu" + std::to_string(loc.gpu);
  return trace_.AddCompute(device, GpuSeconds(flops, bytes, fp64),
                           std::move(deps), std::move(label));
}

OpId ClusterModel::HostCompute(int node, int lane, double flops, int64_t bytes,
                               std::vector<OpId> deps, std::string label) {
  const std::string device =
      "n" + std::to_string(node) + ":cpu" + std::to_string(lane);
  return trace_.AddCompute(device, HostSeconds(flops, bytes), std::move(deps),
                           std::move(label));
}

OpId ClusterModel::Transfer(const Loc& from, const Loc& to, int64_t bytes,
                            Protocol proto, std::vector<OpId> deps,
                            std::string label) {
  const bool cross_node = from.node != to.node;

  if (proto == Protocol::kRdma) {
    // Cut-through: one flow across the whole path; its rate is the max-min
    // share of the narrowest link, which is exactly how a pipelined verbs
    // transfer behaves.
    std::vector<LinkId> path = LocalPath(from, cross_node);
    if (cross_node) {
      path.push_back(WireLink(from.node, proto));
      path.push_back(WireLink(to.node, proto));
    }
    for (LinkId l : LocalPath(to, cross_node)) path.push_back(l);
    OpId lat = trace_.AddDelay(WireLatency(proto), std::move(deps),
                               label + "/lat");
    return trace_.AddTransfer(std::move(path), bytes, {lat}, std::move(label));
  }

  // MPI / gRPC: store-and-forward staging (the paper: GPUDirect is off, so
  // tensors are copied and serialized through host memory first).
  const NodeLinks& src = nodes_[static_cast<size_t>(from.node)];
  const NodeLinks& dst = nodes_[static_cast<size_t>(to.node)];
  const LinkId ser_src = src.serialize;
  const LinkId ser_dst = dst.serialize;
  const double ser_scale =
      proto == Protocol::kGrpc
          ? cfg_.serialize_bps / cfg_.grpc_serialize_bps
          : 1.0;  // gRPC serializes slower: inflate its byte count
  const auto ser_bytes = static_cast<int64_t>(
      static_cast<double>(bytes) * ser_scale);

  OpId prev = trace_.AddDelay(WireLatency(proto), std::move(deps),
                              label + "/lat");
  if (!from.is_host()) {
    std::vector<LinkId> d2h = LocalPath(from, /*to_wire=*/false);
    d2h.push_back(src.hostmem);
    prev = trace_.AddTransfer(std::move(d2h), bytes, {prev}, label + "/d2h");
  }
  prev = trace_.AddTransfer({ser_src}, ser_bytes, {prev}, label + "/ser");
  if (cross_node) {
    std::vector<LinkId> wire;
    if (IslandOf(HostLoc(from.node)) != cfg_.nic_island) wire.push_back(src.qpi);
    wire.push_back(WireLink(from.node, proto));
    wire.push_back(WireLink(to.node, proto));
    if (IslandOf(HostLoc(to.node)) != cfg_.nic_island) wire.push_back(dst.qpi);
    prev = trace_.AddTransfer(std::move(wire), bytes, {prev}, label + "/wire");
  }
  prev = trace_.AddTransfer({ser_dst}, ser_bytes, {prev}, label + "/deser");
  if (!to.is_host()) {
    std::vector<LinkId> h2d = LocalPath(to, /*to_wire=*/false);
    h2d.push_back(dst.hostmem);
    prev = trace_.AddTransfer(std::move(h2d), bytes, {prev}, label + "/h2d");
  }
  return prev;
}

OpId ClusterModel::DiskRead(int node, int64_t bytes, std::vector<OpId> deps,
                            std::string label) {
  const NodeLinks& n = nodes_[static_cast<size_t>(node)];
  return trace_.AddTransfer({n.disk, n.hostmem}, bytes, std::move(deps),
                            std::move(label));
}

OpId ClusterModel::HostIngest(int node, int lane, int64_t bytes,
                              std::vector<OpId> deps, std::string label,
                              double bps) {
  auto key = std::make_pair(node, lane);
  auto it = ingest_links_.find(key);
  if (it == ingest_links_.end()) {
    const LinkId link = net_.AddLink(
        "n" + std::to_string(node) + ":ingest" + std::to_string(lane),
        bps > 0 ? bps : cfg_.ingest_bps);
    it = ingest_links_.emplace(key, link).first;
  }
  return trace_.AddTransfer({it->second}, bytes, std::move(deps),
                            std::move(label));
}

OpId ClusterModel::Delay(double seconds, std::vector<OpId> deps,
                         std::string label) {
  return trace_.AddDelay(seconds, std::move(deps), std::move(label));
}

Result<ReplayResult> ClusterModel::Replay() {
  if (replayed_) return FailedPrecondition("ClusterModel::Replay called twice");
  replayed_ = true;
  return trace_.Replay(&sim_);
}

}  // namespace tfhpc::sim
