file(REMOVE_RECURSE
  "CMakeFiles/slurm_resolver_demo.dir/slurm_resolver_demo.cpp.o"
  "CMakeFiles/slurm_resolver_demo.dir/slurm_resolver_demo.cpp.o.d"
  "slurm_resolver_demo"
  "slurm_resolver_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slurm_resolver_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
