// Tests for eager execution and the constant-folding pass.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "graph/ops.h"
#include "runtime/const_fold.h"
#include "runtime/eager.h"
#include "runtime/session.h"

namespace tfhpc {
namespace {

// ---- Eager ---------------------------------------------------------------------

TEST(EagerTest, MatMulImmediate) {
  eager::EagerContext ctx(1);
  Tensor a = Tensor::FromVector(Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor b = Tensor::FromVector(Shape{2, 2}, std::vector<float>{5, 6, 7, 8});
  auto c = eager::MatMul(ctx, a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_FLOAT_EQ((c->at<float>(0, 0)), 19);
  EXPECT_FLOAT_EQ((c->at<float>(1, 1)), 50);
}

TEST(EagerTest, ChainedImperativeOps) {
  eager::EagerContext ctx(1);
  Tensor x = Tensor::FromVector(std::vector<double>{1, 2, 3});
  auto y = eager::Add(ctx, x, x);
  ASSERT_TRUE(y.ok());
  auto z = eager::Dot(ctx, *y, x);
  ASSERT_TRUE(z.ok());
  EXPECT_DOUBLE_EQ(z->scalar<double>(), 28);  // 2*1+4*2+6*3
}

TEST(EagerTest, MatchesGraphModeBitExactly) {
  // Same kernels, same results: eager FFT == graph-mode FFT.
  Tensor sig(DType::kC128, Shape{32});
  FillUniform(sig, 9, -1, 1);

  eager::EagerContext ectx(1);
  auto eager_out = eager::Fft(ectx, sig);
  ASSERT_TRUE(eager_out.ok());

  LocalRuntime rt(1);
  Scope s = rt.root_scope();
  auto g = ops::Fft(s, ops::Const(s, sig));
  auto graph_out = rt.NewSession()->Run({}, {g.name()});
  ASSERT_TRUE(graph_out.ok());
  EXPECT_TRUE(eager_out->BitwiseEquals((*graph_out)[0]));
}

TEST(EagerTest, ExplicitDevicePlacement) {
  eager::EagerContext ctx(2);
  Tensor a = Tensor::FromVector(Shape{1, 1}, std::vector<float>{3});
  auto r = ctx.Execute1("MatMul", {a, a}, {}, "/gpu:1");
  ASSERT_TRUE(r.ok());
  EXPECT_FLOAT_EQ((r->at<float>(0, 0)), 9);
  EXPECT_FALSE(ctx.Execute1("MatMul", {a, a}, {}, "/gpu:7").ok());
}

TEST(EagerTest, VariablesPersistInContext) {
  eager::EagerContext ctx(1);
  Variable* v = ctx.resources().LookupOrCreateVariable("acc");
  ASSERT_TRUE(v->Accumulate(Tensor::Scalar(2.0)).ok());
  ASSERT_TRUE(v->Accumulate(Tensor::Scalar(3.0)).ok());
  EXPECT_DOUBLE_EQ(v->Read()->scalar<double>(), 5.0);
}

TEST(EagerTest, ErrorsSurfaceDirectly) {
  eager::EagerContext ctx(1);
  Tensor a(DType::kF32, Shape{2, 3});
  Tensor b(DType::kF32, Shape{2, 3});
  auto r = eager::MatMul(ctx, a, b);  // inner dims mismatch
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kInvalidArgument);
  EXPECT_FALSE(ctx.Execute1("NoSuchOp", {}).ok());
  EXPECT_FALSE(ctx.Execute1("Add", {a}).ok());  // arity
}

// ---- Constant folding ------------------------------------------------------------

TEST(ConstFoldTest, FoldsPureConstSubgraph) {
  Graph g;
  Scope s(&g);
  auto a = ops::Const(s, Tensor::Scalar(2.0), "a");
  auto b = ops::Const(s, Tensor::Scalar(3.0), "b");
  auto sum = ops::Add(s, a, b);
  auto twice = ops::Mul(s, sum, sum);

  auto folded = ConstantFolding(g.ToGraphDef());
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(folded->folded_nodes, 2);  // Add and Mul both folded

  // The folded graph must evaluate identically.
  auto g2 = Graph::FromGraphDef(folded->graph);
  ASSERT_TRUE(g2.ok());
  const Node* n = (*g2)->FindNode(twice.node->name());
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->op(), "Const");
  LocalRuntime rt(0);
  // Execute the folded def inside a fresh runtime graph.
  for (const auto& nd : folded->graph.nodes) {
    ASSERT_TRUE(rt.graph().AddNode(nd).ok());
  }
  auto r = rt.NewSession()->Run({}, {twice.node->name()});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 25.0);
}

TEST(ConstFoldTest, StopsAtPlaceholders) {
  Graph g;
  Scope s(&g);
  auto p = ops::Placeholder(s, DType::kF64, Shape{}, "x");
  auto c = ops::Const(s, Tensor::Scalar(1.0));
  auto mixed = ops::Add(s, p, c);
  (void)mixed;
  auto folded = ConstantFolding(g.ToGraphDef());
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(folded->folded_nodes, 0);
}

TEST(ConstFoldTest, SkipsStatefulOps) {
  Graph g;
  Scope s(&g);
  auto r = ops::RandomUniform(s, Shape{2}, DType::kF32, 1);
  auto sum = ops::ReduceSum(s, r);
  (void)sum;
  auto folded = ConstantFolding(g.ToGraphDef());
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(folded->folded_nodes, 0);  // RandomUniform is stateful
}

TEST(ConstFoldTest, RespectsSizeLimit) {
  Graph g;
  Scope s(&g);
  auto big = ops::Fill(s, DType::kF64, Shape{1024}, 1.0);
  auto neg = ops::Neg(s, big);
  (void)neg;
  ConstFoldOptions opts;
  opts.max_output_bytes = 16;  // too small for 8 KiB results
  auto folded = ConstantFolding(g.ToGraphDef(), opts);
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(folded->folded_nodes, 0);
}

TEST(ConstFoldTest, FoldedGraphShrinksAfterPrune) {
  Graph g;
  Scope s(&g);
  auto a = ops::Const(s, Tensor::Scalar(2.0), "a");
  auto chain = ops::Add(s, a, a);
  for (int i = 0; i < 5; ++i) chain = ops::Mul(s, chain, a);
  auto folded = ConstantFolding(g.ToGraphDef());
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(folded->folded_nodes, 6);
  auto pruned = PruneToTargets(folded->graph, {chain.node->name()});
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->nodes.size(), 1u);  // a single Const remains
  EXPECT_EQ(pruned->nodes[0].op, "Const");
}

TEST(ConstFoldTest, LeavesControlDependentNodesAlone) {
  Graph g;
  Scope s(&g);
  ops::Const(s, Tensor::Scalar(1.0), "a");
  wire::NodeDef def;
  def.name = "gated";
  def.op = "Neg";
  def.inputs = {"a", "^a"};  // control input blocks folding
  ASSERT_TRUE(g.AddNode(def).ok());
  auto folded = ConstantFolding(g.ToGraphDef());
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(folded->folded_nodes, 0);
}

}  // namespace
}  // namespace tfhpc
