file(REMOVE_RECURSE
  "CMakeFiles/fig7_stream.dir/fig7_stream.cc.o"
  "CMakeFiles/fig7_stream.dir/fig7_stream.cc.o.d"
  "fig7_stream"
  "fig7_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
