// Graph executor with an explicit Compile -> Execute lifecycle.
//
// Compile(feeds, fetches, targets) prunes the graph to the fetch/target
// closure (feeds act as cut points), resolves placement for every closure
// node (explicit pin, merged defaults, TF-style soft placement),
// instantiates kernels, and bakes the result into an immutable Executable:
// flat vector-indexed topology, initial ready-counts and fanout tables.
// Execute(executable, feed_tensors) is then a tight dataflow loop over
// those tables — no per-step map lookups or graph walks. Run() is the
// compile-and-execute convenience used by one-shot callers; Session caches
// Executables per run signature so step loops compile once.
//
// Execution is dataflow-style: an op becomes ready when all its data and
// control inputs have completed; ready ops on distinct devices run
// concurrently (one in-flight op per device models a single GPU stream;
// blocking queue ops get dedicated threads so they cannot starve compute).
//
// An Executable is valid only for the Graph::version() it was compiled
// against — any graph mutation invalidates it (callers check stale()).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/memory_plan.h"
#include "core/status.h"
#include "graph/graph.h"
#include "kernels/kernel.h"
#include "runtime/cancellation.h"
#include "runtime/debug.h"
#include "runtime/device.h"
#include "runtime/resource_mgr.h"

namespace tfhpc {

struct RunOptions {
  // Simulation mode: kernels see meta tensors and only shapes/costs flow.
  bool simulate = false;
  // Collect per-node execution records into RunMetadata.
  bool trace = false;
  // tfdbg-lite: also summarize every node output (implies trace).
  bool debug = false;
  // Per-step deadline in ms (0 = none). Execute stops dispatching new nodes
  // and fails blocking waits with kDeadlineExceeded once it passes.
  int64_t timeout_ms = 0;
  // Optional caller-owned cancellation token shared with this step. When
  // both a token and timeout_ms are given, the effective deadline is the
  // earlier of the two (the token is tightened in place).
  CancellationToken* cancellation = nullptr;
  // Per-step memory budget in bytes (0 = unbudgeted). Execute arms a
  // MemoryLimiter charged by every output allocation of this step; a breach
  // fails the offending node with *permanent* kResourceExhausted and the
  // step unwinds. Buffers fetched out of the step keep their reservation
  // until destroyed (the limiter is shared, so this is safe).
  int64_t step_memory_limit_bytes = 0;
};

// One executed node, for the Timeline (Fig. 3) and the DES replay.
struct NodeExecRecord {
  std::string name;
  std::string op;
  std::string device;        // full device name
  double start_us = 0;       // wall-clock, relative to step start
  double end_us = 0;
  CostEstimate cost;         // nominal work (valid in both modes)
  std::vector<std::string> input_names;
  // Filled when RunOptions::debug: one summary per output slot.
  std::vector<TensorDebugSummary> output_summaries;
};

struct RunMetadata {
  std::vector<NodeExecRecord> nodes;
  // High-water mark of the step's MemoryLimiter (nominal bytes); 0 when the
  // step ran unbudgeted. For graphs without dynamic tensors this is always
  // <= the compile-time Executable::static_peak_bytes() bound.
  int64_t step_peak_bytes = 0;
};

// Renders the tfdbg-style watch list ("node (op) @device: summary").
std::string FormatDebugReport(const RunMetadata& metadata);

// Statically inferred output facts per node name, one (dtype, shape) pair
// per output slot — produced by GraphCheck shape inference (analysis/) and
// handed to Compile so Execute can pre-size output buffers from the pooled
// allocator before the kernel runs.
using StaticShapeMap =
    std::map<std::string, std::vector<std::pair<DType, Shape>>>;

// An immutable compiled step: the pruned closure in topological order with
// placement, kernels, dependency counts and fanout baked into flat vectors.
// Compiled once by Executor::Compile, executed many times by
// Executor::Execute; shareable across threads (Execute keeps all mutable
// step state on its own stack).
class Executable {
 public:
  // Graph version this plan was compiled against.
  int64_t graph_version() const { return graph_version_; }
  // True once the graph has mutated past the compiled version.
  bool stale(const Graph& graph) const {
    return graph.version() != graph_version_;
  }
  // Closure nodes that are scheduled (excludes fed nodes, which complete
  // immediately from their feed tensor).
  int num_scheduled_nodes() const { return num_scheduled_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const std::vector<std::string>& fetches() const { return fetch_keys_; }
  // Statically estimated output bytes for one execution of this step,
  // summed from GraphCheck's inferred shapes (nodes without a static shape
  // contribute nothing, so this is a lower bound). The serving layer admits
  // steps against a byte budget using this estimate.
  int64_t estimated_bytes() const { return estimated_bytes_; }

  // Static memory plan facts (analysis/memory_plan.h), baked at compile
  // time when Session::Prepare computed a plan. arena_bytes() is the single
  // per-step block Execute allocates and carves with views; 0 = no plan (or
  // nothing plannable) and every output goes through the pool.
  int64_t arena_bytes() const { return arena_bytes_; }
  // Compile-time upper bound on the step's limiter-charged footprint, sound
  // under any concurrent interleaving; 0 when no plan was attached. Serving
  // admission prefers this over estimated_bytes().
  int64_t static_peak_bytes() const { return static_peak_bytes_; }
  // Scheduled nodes whose output is served from the arena.
  int num_planned_nodes() const { return num_planned_; }

 private:
  friend class Executor;

  struct CompiledNode {
    const Node* node = nullptr;  // stable: Graph stores nodes behind unique_ptr
    Device* device = nullptr;    // null for fed nodes (never executed)
    std::shared_ptr<OpKernel> kernel;  // null for fed nodes
    // (producer index into nodes_, producer output slot) per data input, in
    // input order.
    std::vector<std::pair<int, int>> data_inputs;
    // Indexes into nodes_ whose pending count drops when this completes.
    std::vector<int> consumers;
    int initial_pending = 0;  // in-edges from non-fed producers
    int num_outputs = 0;      // output slots to allocate (>= 1)
    bool fed = false;
    bool blocking = false;    // queue ops: dedicated thread, no device lock
    // Producer names in input order, baked at compile time so trace mode
    // never touches the Graph during Execute (concurrent steps may race
    // with graph mutation otherwise).
    std::vector<std::string> input_names;
    // Statically known (dtype, shape) per output slot, for ops whose
    // kernels fully overwrite outputs; empty when unknown. Execute attaches
    // matching pre-sized buffers to the kernel context.
    std::vector<std::pair<DType, Shape>> static_outputs;
    // Arena placement for this node's sole output (the planner only covers
    // single-output nodes): byte offset into the step arena, or -1 when the
    // output is pool-allocated. Planned nodes run with runtime forwarding
    // disabled — their aliasing was decided at compile time.
    int64_t planned_offset = -1;
    int64_t planned_bytes = 0;
  };
  struct FeedBinding {
    std::string key;  // "name" or "name:slot" as the caller feeds it
    int node_index = 0;
    int slot = 0;
  };
  struct FetchBinding {
    std::string key;
    int node_index = 0;
    int slot = 0;
  };

  std::vector<CompiledNode> nodes_;  // topological order
  // Per (node, output slot): number of step-local references — consumer data
  // inputs plus fetch bindings. Execute counts these down and *moves* the
  // tensor to its final consumer, so a kernel receiving the sole reference
  // to an input buffer may forward it in place (TF-style buffer reuse).
  std::vector<std::vector<int>> output_uses_;
  std::vector<int> initial_ready_;   // indexes with pending == 0, not fed
  std::vector<FeedBinding> feed_bindings_;
  std::vector<FetchBinding> fetch_bindings_;
  std::vector<std::string> fetch_keys_;
  int64_t graph_version_ = 0;
  int num_scheduled_ = 0;
  int64_t estimated_bytes_ = 0;
  int64_t arena_bytes_ = 0;
  int64_t static_peak_bytes_ = 0;
  int num_planned_ = 0;
  // Device whose allocator the arena block is attributed to (the first
  // planned node's device); null when no plan is attached.
  Device* arena_device_ = nullptr;
  // Set when this plan was compiled against an optimizer-rewritten graph
  // (Executor::CompileGraph): the rewritten Graph must outlive the plan's
  // Node pointers, so the plan owns it. Null for plans compiled against the
  // session graph.
  std::shared_ptr<const Graph> owned_graph_;
};

class Executor {
 public:
  // `default_device` supplies job/task (and optionally type) for nodes with
  // partial or empty device specs.
  Executor(Graph* graph, DeviceMgr* devices, ResourceMgr* resources,
           DeviceName default_device);

  // Compiles one run signature into an Executable. `feed_keys` are the names
  // ("node" or "node:slot") that Execute will supply tensors for — values
  // are not needed to compile. The signature must fetch or target at least
  // one node. `static_shapes` (optional) carries GraphCheck's fully-known
  // output annotations; nodes whose op declares overwrites_outputs get their
  // output buffers pre-sized at execution time. `memory_plan` (optional)
  // is the static memory plan computed over the same signature: planned
  // single-output nodes are bound to arena offsets and the plan's
  // arena/peak byte facts are baked into the Executable.
  Result<std::shared_ptr<const Executable>> Compile(
      const std::vector<std::string>& feed_keys,
      const std::vector<std::string>& fetches,
      const std::vector<std::string>& targets = {},
      const StaticShapeMap* static_shapes = nullptr,
      const analysis::MemoryPlan* memory_plan = nullptr);

  // Compiles against `graph` instead of the session graph — the path the
  // optimizer pipeline uses (Session rewrites a GraphDef, parses it into a
  // fresh Graph, and compiles that). The resulting Executable co-owns
  // `graph` and is stamped with `graph_version` (the *session* graph's
  // version at rewrite time) so stale() and the signature cache keep
  // working. The id-keyed placement/kernel caches are bypassed: ids in a
  // rewritten graph do not correspond to session-graph ids.
  Result<std::shared_ptr<const Executable>> CompileGraph(
      std::shared_ptr<const Graph> graph, int64_t graph_version,
      const std::vector<std::string>& feed_keys,
      const std::vector<std::string>& fetches,
      const std::vector<std::string>& targets = {},
      const StaticShapeMap* static_shapes = nullptr,
      const analysis::MemoryPlan* memory_plan = nullptr);

  // Runs a compiled step. `feeds` must supply every feed key the executable
  // was compiled with; extra keys that were also in the compiled signature
  // but pruned from the closure are ignored. Returns fetched tensors in
  // compile order.
  Result<std::vector<Tensor>> Execute(const Executable& executable,
                                      const std::map<std::string, Tensor>& feeds,
                                      const RunOptions& options = {},
                                      RunMetadata* metadata = nullptr);

  // feeds: node or "node:slot" -> tensor, replaces the node's output.
  // fetches: outputs to return. targets: nodes to run without fetching.
  // Equivalent to Compile + Execute, for one-shot callers.
  Result<std::vector<Tensor>> Run(
      const std::map<std::string, Tensor>& feeds,
      const std::vector<std::string>& fetches,
      const std::vector<std::string>& targets = {},
      const RunOptions& options = {}, RunMetadata* metadata = nullptr);

  // Resolved placement for one node (exposed for tests and the Session's
  // device report). Applies soft placement.
  Result<Device*> PlaceNode(const Node& node);

 private:
  Graph* graph_;
  DeviceMgr* devices_;
  ResourceMgr* resources_;
  DeviceName default_device_;

  // Placement and kernel caches, built lazily per node id and valid only
  // for cache_version_: any graph mutation (version bump) flushes them, so
  // a re-pinned node is re-placed instead of served a stale device.
  std::mutex cache_mu_;
  int64_t cache_version_ = 0;
  std::map<int, Device*> placement_cache_;
  std::map<int, std::shared_ptr<OpKernel>> kernel_cache_;

  // Drops both caches if the graph has mutated since they were filled.
  // Caller holds cache_mu_.
  void InvalidateCachesIfStaleLocked();

  Result<std::shared_ptr<OpKernel>> KernelFor(const Node& node, Device* device);

  // Cache-free placement/kernel resolution, shared by the cached wrappers
  // and the override-graph compile path.
  Result<Device*> PlaceNodeUncached(const Node& node);
  Result<std::shared_ptr<OpKernel>> InstantiateKernel(const Node& node,
                                                      Device* device);

  // Shared Compile body: walks `graph` (the session graph or an optimizer
  // rewrite), stamping the plan with `graph_version`. `use_caches` gates the
  // id-keyed placement/kernel caches.
  Result<std::shared_ptr<const Executable>> CompileOn(
      const Graph& graph, int64_t graph_version, bool use_caches,
      std::shared_ptr<const Graph> owned_graph,
      const std::vector<std::string>& feed_keys,
      const std::vector<std::string>& fetches,
      const std::vector<std::string>& targets,
      const StaticShapeMap* static_shapes,
      const analysis::MemoryPlan* memory_plan);
};

}  // namespace tfhpc
