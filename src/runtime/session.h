// Session: the client-facing execution handle (tf.Session). A session binds
// a graph to a device set and a resource manager and runs fetch requests.
// LocalRuntime bundles graph + devices + resources for single-process use —
// the examples and tests build on it; distributed execution wraps sessions
// per task (src/distrib).
#pragma once

#include <memory>

#include "graph/ops.h"
#include "graph/passes.h"
#include "runtime/executor.h"

namespace tfhpc {

class Session {
 public:
  // The graph/devices/resources must outlive the session.
  Session(Graph* graph, DeviceMgr* devices, ResourceMgr* resources,
          DeviceName default_device);

  Result<std::vector<Tensor>> Run(const std::map<std::string, Tensor>& feeds,
                                  const std::vector<std::string>& fetches,
                                  const std::vector<std::string>& targets = {},
                                  const RunOptions& options = {},
                                  RunMetadata* metadata = nullptr);

  // Placement report for one node (tests, debug).
  Result<std::string> DevicePlacement(const std::string& node_name);

 private:
  Graph* graph_;
  Executor executor_;
};

// Single-process runtime: one task, one CPU device + `num_gpus` simulated
// GPUs, its own graph and resources.
class LocalRuntime {
 public:
  explicit LocalRuntime(int num_gpus = 1,
                        ComputeModel gpu_model = models::Gk210());

  Graph& graph() { return graph_; }
  Scope root_scope() { return Scope(&graph_); }
  DeviceMgr& devices() { return *devices_; }
  ResourceMgr& resources() { return resources_; }

  // A new session over this runtime's graph and devices.
  std::unique_ptr<Session> NewSession();

 private:
  Graph graph_;
  std::unique_ptr<DeviceMgr> devices_;
  ResourceMgr resources_;
};

}  // namespace tfhpc
