// Structured device names, TensorFlow style:
//   "/job:worker/task:1/gpu:0", "/cpu:0", "/job:ps/task:0/cpu:0"
// Partial specifications (job/task omitted) refer to the local task and are
// merged against a default at placement time.
#pragma once

#include <string>

#include "core/status.h"

namespace tfhpc {

struct DeviceName {
  std::string job;   // empty = unspecified (local)
  int task = -1;     // -1 = unspecified
  std::string type;  // "cpu" | "gpu"; empty = unspecified
  int index = -1;    // -1 = unspecified

  // Parses specs like "/job:worker/task:1/gpu:0", "/gpu:0", "/cpu:0",
  // "/device:GPU:0" (TF long form), or "" (fully unspecified).
  static Result<DeviceName> Parse(const std::string& spec);

  // Canonical short form; unspecified parts are omitted.
  std::string ToString() const;

  bool fully_specified() const {
    return !job.empty() && task >= 0 && !type.empty() && index >= 0;
  }

  // Fills unspecified fields from `defaults`.
  DeviceName MergedWith(const DeviceName& defaults) const;

  // True when every field of `pattern` that is specified matches this name.
  bool Matches(const DeviceName& pattern) const;

  bool operator==(const DeviceName& o) const {
    return job == o.job && task == o.task && type == o.type && index == o.index;
  }
};

}  // namespace tfhpc
