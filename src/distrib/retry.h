// Retry/deadline policy for distributed RPCs. The paper's PS/worker
// formulations assume every RPC succeeds; real clusters drop messages and
// lose ranks, and the original TensorFlow runtime treats retried sends and
// partial failure as first-class (Abadi et al., OSDI 2016 §4.3). A
// RetryPolicy bounds each *logical* call with a deadline and retries
// transient failures with exponential backoff + deterministic jitter.
// Exactly-once semantics for non-idempotent ops come from the server-side
// request-id dedup cache (distrib/server.h): retries reuse the same
// (client_id, request_id), so a retry after a lost *response* replays the
// cached result instead of re-applying the op.
#pragma once

#include <cstdint>
#include <functional>

#include "core/status.h"

namespace tfhpc::distrib {

struct RetryPolicy {
  // Attempts per logical call (1 = no retry). The policy stops at whichever
  // of max_attempts / deadline_ms trips first.
  int max_attempts = 1;
  int64_t initial_backoff_ms = 1;
  int64_t max_backoff_ms = 64;
  double backoff_multiplier = 2.0;
  // Fraction of the backoff randomized away (0..1): sleep is uniform in
  // [backoff*(1-jitter), backoff]. Jitter is drawn from a Philox keyed on
  // (seed, call key, attempt), so schedules are reproducible.
  double jitter = 0.25;
  // Wall-clock budget for the whole logical call, retries included.
  // Expiring returns kDeadlineExceeded (never a hang).
  //
  // Contract: deadline_ms <= 0 means NO deadline — the call retries until
  // max_attempts regardless of elapsed time. (0 is "unbounded", not
  // "already expired"; callers that want to refuse immediately should not
  // issue the call.) This mirrors the RpcEnvelope::deadline_ns convention
  // where 0 = none.
  int64_t deadline_ms = 30000;
  uint64_t seed = 0x7f4a7c159e3779b9ull;

  static RetryPolicy NoRetry() { return RetryPolicy{}; }
  // A profile tuned for the chaos tests/benches: many fast attempts under
  // one deadline.
  static RetryPolicy Aggressive(int64_t deadline_ms = 5000);
};

// Returns `base` with its per-call budget clamped to `remaining_ms` — how a
// caller holding an *absolute* step deadline derives each RPC's policy.
// Without this, every logical call site re-arms the full deadline_ms, and a
// step with 100ms left could still burn 30s retrying one send. A
// remaining_ms <= 0 input clamps to 1ms (the caller should have refused
// already-expired work before calling; 1ms keeps the "never a hang"
// guarantee rather than accidentally meaning "no deadline").
RetryPolicy ClampToRemaining(RetryPolicy base, int64_t remaining_ms);

// Codes that indicate a transient transport-level failure worth retrying.
// Everything else (bad arguments, missing nodes, exhausted resources,
// cancellation) is surfaced immediately. By code alone, kResourceExhausted
// is NOT retryable: without more context it must be assumed permanent (the
// 2 GB GraphDef ceiling, a per-step memory budget breach — an identical
// retry fails identically).
bool IsRetryableCode(Code code);

// Status-level classification — the contract for kResourceExhausted:
//   - transient (IsTransientResourceExhausted: pool pressure, process
//     memory budget, injected allocator fault; carried across the RPC
//     boundary by RpcEnvelope::transient): RETRYABLE after backoff, because
//     concurrent steps completing (or a pool Trim) frees the resource.
//   - permanent (plain kResourceExhausted: per-step budget breach, message
//     or serving-estimate over a fixed limit): NOT retryable.
// All other codes classify exactly as IsRetryableCode.
bool IsRetryable(const Status& status);

// Per-call retry driver: tracks attempts and the deadline, and sleeps the
// backoff between attempts.
class RetryState {
 public:
  // `call_key` seeds the jitter stream (use the request id so concurrent
  // calls desynchronize).
  RetryState(const RetryPolicy& policy, uint64_t call_key);

  // Decides what to do after an attempt failed with `last`. Returns true
  // after sleeping the backoff (caller should retry). Returns false when
  // the policy is exhausted and fills *final: either `last` itself
  // (non-retryable or attempts spent) or kDeadlineExceeded (budget spent).
  bool BackoffAndRetry(const Status& last, Status* final);

  int attempts() const { return attempts_; }
  // Retries performed so far (attempts - 1, min 0).
  int retries() const { return attempts_ > 0 ? attempts_ - 1 : 0; }
  // Milliseconds since the logical call started.
  int64_t elapsed_ms() const;

 private:
  RetryPolicy policy_;
  uint64_t call_key_;
  int attempts_ = 0;
  int64_t backoff_ms_;
  int64_t start_ns_;
};

// Runs `attempt` under `policy`. `attempt` returns the per-try Status;
// the wrapper returns the first success, the first non-retryable error, or
// kDeadlineExceeded. If `retries_out` is non-null it accumulates the number
// of retries performed.
Status CallWithRetry(const RetryPolicy& policy, uint64_t call_key,
                     const std::function<Status()>& attempt,
                     int64_t* retries_out = nullptr);

}  // namespace tfhpc::distrib
