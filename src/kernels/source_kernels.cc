// Source and plumbing kernels: Const, Placeholder, RandomUniform, Identity,
// NoOp.
#include "core/rng.h"
#include "kernels/kernel.h"

namespace tfhpc {
namespace {

class ConstKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    TFHPC_ASSIGN_OR_RETURN(std::string bytes, ctx->node().AttrString("value"));
    TFHPC_ASSIGN_OR_RETURN(Tensor value, wire::ParseTensor(bytes));
    if (ctx->simulate()) {
      ctx->set_output(0, Tensor::Meta(value.dtype(), value.shape()));
    } else {
      ctx->set_output(0, std::move(value));
    }
    return Status::OK();
  }
};
TFHPC_REGISTER_KERNEL_ALL("Const", ConstKernel);

class PlaceholderKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    // Executed only when the client failed to feed it (feeds short-circuit
    // placeholder nodes in the executor).
    return InvalidArgument("placeholder '" + ctx->node().name() +
                           "' was not fed");
  }
};
TFHPC_REGISTER_KERNEL_ALL("Placeholder", PlaceholderKernel);

class RandomUniformKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    TFHPC_ASSIGN_OR_RETURN(DType dtype, ctx->node().AttrType("dtype"));
    TFHPC_ASSIGN_OR_RETURN(Shape shape, ctx->node().AttrShape("shape"));
    TFHPC_ASSIGN_OR_RETURN(int64_t seed, ctx->node().AttrInt("seed"));
    TFHPC_ASSIGN_OR_RETURN(double lo, ctx->node().AttrFloat("lo"));
    TFHPC_ASSIGN_OR_RETURN(double hi, ctx->node().AttrFloat("hi"));
    Tensor out;
    TFHPC_RETURN_IF_ERROR(ctx->AllocateOutput(dtype, std::move(shape), &out));
    if (!ctx->meta_exec()) {
      FillUniform(out, static_cast<uint64_t>(seed), lo, hi);
    }
    ctx->set_output(0, std::move(out));
    return Status::OK();
  }

  CostEstimate Cost(const OpKernelContext& ctx) const override {
    CostEstimate c;
    auto dtype = ctx.node().AttrType("dtype");
    auto shape = ctx.node().AttrShape("shape");
    if (dtype.ok() && shape.ok()) {
      c.bytes_written = shape->num_elements() *
                        static_cast<int64_t>(DTypeSize(*dtype));
      c.flops = static_cast<double>(shape->num_elements());
    }
    return c;
  }
};
TFHPC_REGISTER_KERNEL_ALL("RandomUniform", RandomUniformKernel);

class IdentityKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    ctx->set_output(0, ctx->input(0));
    return Status::OK();
  }
};
TFHPC_REGISTER_KERNEL_ALL("Identity", IdentityKernel);

class NoOpKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext*) override { return Status::OK(); }
};
TFHPC_REGISTER_KERNEL_ALL("NoOp", NoOpKernel);

}  // namespace
}  // namespace tfhpc
