#include "runtime/eager.h"

#include "graph/graph.h"
#include "kernels/kernel.h"

namespace tfhpc::eager {

EagerContext::EagerContext(int num_gpus, ComputeModel gpu_model)
    : devices_(DeviceMgr::CreateLocal("eager", 0, num_gpus,
                                      std::move(gpu_model))) {}

Result<std::vector<Tensor>> EagerContext::Execute(
    const std::string& op, std::vector<Tensor> inputs,
    std::map<std::string, wire::AttrValue> attrs,
    const std::string& device_spec) {
  const OpDef* op_def = OpRegistry::Global().Lookup(op);
  if (op_def == nullptr) return NotFound("op '" + op + "' not registered");
  TFHPC_RETURN_IF_ERROR(
      CheckArity(*op_def, "<eager:" + op + ">",
                 static_cast<int>(inputs.size())));

  // Placement: explicit spec wins; otherwise GPU when a gpu kernel exists.
  TFHPC_ASSIGN_OR_RETURN(DeviceName requested, DeviceName::Parse(device_spec));
  auto& registry = KernelRegistry::Global();
  Device* device = nullptr;
  if (!requested.type.empty()) {
    device = devices_->Find(requested);
    if (device == nullptr || !registry.HasKernel(op, device->type())) {
      return NotFound("no device/kernel for '" + op + "' on '" + device_spec +
                      "'");
    }
  } else {
    DeviceName gpu;
    gpu.type = "gpu";
    if (registry.HasKernel(op, "gpu") && devices_->Find(gpu) != nullptr) {
      device = devices_->Find(gpu);
    } else {
      DeviceName cpu;
      cpu.type = "cpu";
      device = devices_->Find(cpu);
      if (device == nullptr || !registry.HasKernel(op, "cpu")) {
        return NotFound("no kernel for op '" + op + "'");
      }
    }
  }

  wire::NodeDef def;
  def.name = "eager/" + op;
  def.op = op;
  def.attrs = std::move(attrs);
  TFHPC_ASSIGN_OR_RETURN(std::unique_ptr<Node> node,
                         Node::Detached(std::move(def)));
  TFHPC_ASSIGN_OR_RETURN(std::unique_ptr<OpKernel> kernel,
                         registry.Create(op, device->type()));

  OpKernelContext kctx(node.get(), std::move(inputs), &resources_,
                       /*simulate=*/false, device->allocator_stats());
  TFHPC_RETURN_IF_ERROR(kernel->Compute(&kctx));
  return std::move(kctx.outputs());
}

Result<Tensor> EagerContext::Execute1(
    const std::string& op, std::vector<Tensor> inputs,
    std::map<std::string, wire::AttrValue> attrs,
    const std::string& device_spec) {
  TFHPC_ASSIGN_OR_RETURN(
      std::vector<Tensor> outs,
      Execute(op, std::move(inputs), std::move(attrs), device_spec));
  if (outs.empty() || !outs[0].valid()) {
    return Internal("op '" + op + "' produced no output");
  }
  return std::move(outs[0]);
}

Result<Tensor> MatMul(EagerContext& ctx, const Tensor& a, const Tensor& b) {
  return ctx.Execute1("MatMul", {a, b});
}
Result<Tensor> Add(EagerContext& ctx, const Tensor& a, const Tensor& b) {
  return ctx.Execute1("Add", {a, b});
}
Result<Tensor> Sub(EagerContext& ctx, const Tensor& a, const Tensor& b) {
  return ctx.Execute1("Sub", {a, b});
}
Result<Tensor> Mul(EagerContext& ctx, const Tensor& a, const Tensor& b) {
  return ctx.Execute1("Mul", {a, b});
}
Result<Tensor> Dot(EagerContext& ctx, const Tensor& a, const Tensor& b) {
  return ctx.Execute1("Dot", {a, b});
}
Result<Tensor> Fft(EagerContext& ctx, const Tensor& x, bool inverse) {
  return ctx.Execute1("FFT", {x},
                      {{"inverse", wire::AttrValue::Bool(inverse)}});
}
Result<Tensor> Transpose(EagerContext& ctx, const Tensor& a) {
  return ctx.Execute1("Transpose", {a});
}
Result<Tensor> ReduceSum(EagerContext& ctx, const Tensor& a) {
  return ctx.Execute1("ReduceSum", {a});
}

}  // namespace tfhpc::eager
