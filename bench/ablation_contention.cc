// Ablation: is intra-node contention really what breaks Kebnekaise's tiled
// matmul scaling (the paper's Fig. 9 explanation)? Rerun Fig. 8's
// Kebnekaise K80 series with the shared per-node resources (disk, NIC, QPI,
// host memory, card links) made private — if the paper's explanation holds,
// the 2->4 GPU collapse disappears.
#include <cstdio>

#include "apps/tiled_matmul.h"
#include "bench_util.h"

using namespace tfhpc;

int main() {
  bench::Header("Ablation — intra-node contention on Kebnekaise (Fig. 9)",
                "DESIGN.md ablation 4: contention off should restore ~2x "
                "scaling, supporting the paper's NUMA/PCIe/NIC explanation");

  std::printf("%-22s | %10s %10s %10s | 2->4\n", "model", "2 GPU", "4 GPU",
              "8 GPU");
  bench::Rule();
  for (bool contention : {true, false}) {
    sim::MachineConfig cfg = sim::KebnekaiseConfig(sim::GpuKind::kK80);
    cfg.contention = contention;
    double gflops[3];
    int idx = 0;
    for (int gpus : {2, 4, 8}) {
      apps::TiledMatmulOptions opts;
      opts.n = 32768;
      opts.tile = 8192;
      opts.num_workers = gpus;
      auto r = apps::SimulateTiledMatmul(cfg, sim::Protocol::kRdma, opts);
      if (!r.ok()) {
        std::printf("simulate failed: %s\n", r.status().ToString().c_str());
        return 1;
      }
      gflops[idx++] = r->gflops;
    }
    std::printf("%-22s | %10.0f %10.0f %10.0f | %.2fx\n",
                contention ? "shared links (paper)" : "private links",
                gflops[0], gflops[1], gflops[2], gflops[1] / gflops[0]);
  }
  bench::Rule();
  return 0;
}
