// Aligned, reference-counted byte buffers backing tensors. Buffers can be
// attributed to a device allocator so simulated-GPU devices can account
// memory capacity the way real device allocators do.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace tfhpc {

// Tracks live bytes for one device; SimGpuDevice installs one of these to
// enforce the paper's per-GPU memory limits (e.g. 1 GB on a K420).
class AllocatorStats {
 public:
  void Add(int64_t bytes) {
    live_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    int64_t cur = live_bytes_.load(std::memory_order_relaxed);
    int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (cur > peak &&
           !peak_bytes_.compare_exchange_weak(peak, cur,
                                              std::memory_order_relaxed)) {
    }
  }
  void Sub(int64_t bytes) {
    live_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  int64_t live_bytes() const {
    return live_bytes_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> live_bytes_{0};
  std::atomic<int64_t> peak_bytes_{0};
};

// A contiguous 64-byte-aligned allocation. Never resized after creation.
class Buffer {
 public:
  static constexpr size_t kAlignment = 64;

  // Allocates `size` zero-initialised bytes. stats may be nullptr.
  static std::shared_ptr<Buffer> Allocate(size_t size,
                                          AllocatorStats* stats = nullptr);

  ~Buffer();
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  void* data() { return data_; }
  const void* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  Buffer(void* data, size_t size, AllocatorStats* stats)
      : data_(data), size_(size), stats_(stats) {}

  void* data_;
  size_t size_;
  AllocatorStats* stats_;
};

}  // namespace tfhpc
