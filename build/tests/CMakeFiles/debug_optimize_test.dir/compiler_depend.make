# Empty compiler generated dependencies file for debug_optimize_test.
# This may be replaced when dependencies are built.
