#include "io/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "wire/coded.h"
#include "wire/messages.h"

namespace tfhpc::io {
namespace {
// Header: field 1 = version, field 2 = entry count.
// Entry:  field 3 = nested {1: name, 2: TensorProto bytes, 3: crc32}.
// Version 2 added the per-entry CRC32 and made it mandatory; version-1
// files (no CRC) are rejected rather than silently trusted.
constexpr uint64_t kVersion = 2;

// Durably writes `data` to `path`: the bytes are fsync'd before close so a
// subsequent rename publishes a fully-persisted file.
Status WriteFileDurably(const std::string& path, const std::string& data) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Unavailable("checkpoint: cannot open " + path);
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      ::close(fd);
      return Unavailable("checkpoint: write failed for " + path);
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Unavailable("checkpoint: fsync failed for " + path);
  }
  if (::close(fd) != 0) {
    return Unavailable("checkpoint: close failed for " + path);
  }
  return Status::OK();
}

// fsync on the containing directory persists the rename itself.
Status SyncParentDir(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Unavailable("checkpoint: cannot open directory " + dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Unavailable("checkpoint: directory fsync failed: " + dir);
  return Status::OK();
}

// Atomic durable publish: temp write (fsync'd) + rename + directory fsync.
Status PublishFileDurably(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  TFHPC_RETURN_IF_ERROR(WriteFileDurably(tmp, data));
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return Unavailable("checkpoint: rename failed: " + ec.message());
  return SyncParentDir(path);
}

uint32_t EntryCrc(const std::string& name, const void* tensor_bytes,
                  size_t tensor_size) {
  uint32_t crc = Crc32(name.data(), name.size());
  // Chain the tensor bytes into the same CRC by continuing from the name's
  // value (standard incremental CRC composition via xor-in/xor-out).
  uint32_t c = crc ^ 0xffffffffu;
  const auto* p = static_cast<const unsigned char*>(tensor_bytes);
  for (size_t i = 0; i < tensor_size; ++i) {
    c ^= p[i];
    for (int k = 0; k < 8; ++k) {
      c = (c >> 1) ^ (0xedb88320u & (0u - (c & 1u)));
    }
  }
  return c ^ 0xffffffffu;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    c ^= p[i];
    for (int k = 0; k < 8; ++k) {
      c = (c >> 1) ^ (0xedb88320u & (0u - (c & 1u)));
    }
  }
  return c ^ 0xffffffffu;
}

Status SaveCheckpoint(const std::string& path,
                      const std::map<std::string, Tensor>& vars) {
  std::string out;
  wire::CodedOutput co(&out);
  co.WriteUInt64(1, kVersion);
  co.WriteUInt64(2, vars.size());
  for (const auto& [name, tensor] : vars) {
    if (tensor.is_meta()) {
      return InvalidArgument("checkpoint: meta tensor for variable " + name);
    }
    const std::string tensor_bytes = wire::SerializeTensor(tensor);
    std::string entry;
    wire::CodedOutput eo(&entry);
    eo.WriteString(1, name);
    eo.WriteMessage(2, tensor_bytes);
    eo.WriteUInt64(3, EntryCrc(name, tensor_bytes.data(), tensor_bytes.size()));
    co.WriteMessage(3, entry);
  }
  return PublishFileDurably(path, out);
}

Result<std::map<std::string, Tensor>> LoadCheckpoint(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return NotFound("checkpoint: cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string data = ss.str();

  wire::CodedInput in(data);
  std::map<std::string, Tensor> vars;
  uint64_t declared_count = 0;
  bool saw_version = false;
  while (!in.AtEnd()) {
    uint32_t field;
    wire::WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    if (field == 1) {
      uint64_t v;
      TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
      if (v != kVersion) {
        return InvalidArgument(
            "checkpoint: unsupported format version " + std::to_string(v) +
            " (this build reads only version " + std::to_string(kVersion) +
            "); re-save the checkpoint with the current writer");
      }
      saw_version = true;
    } else if (field == 2) {
      TFHPC_RETURN_IF_ERROR(in.ReadVarint(&declared_count));
    } else if (field == 3) {
      const uint8_t* d;
      size_t s;
      TFHPC_RETURN_IF_ERROR(in.ReadBytesView(&d, &s));
      wire::CodedInput ein(d, s);
      std::string name;
      // The tensor bytes stay a view into the file image: CRC and parse read
      // them in place, and ParseTensor copies the element content straight
      // into a pooled buffer — no intermediate std::string round-trip.
      const uint8_t* tensor_ptr = nullptr;
      size_t tensor_size = 0;
      uint64_t crc = 0;
      bool saw_crc = false;
      while (!ein.AtEnd()) {
        uint32_t ef;
        wire::WireType ewt;
        TFHPC_RETURN_IF_ERROR(ein.ReadTag(&ef, &ewt));
        if (ef == 1) {
          TFHPC_RETURN_IF_ERROR(ein.ReadString(&name));
        } else if (ef == 2) {
          TFHPC_RETURN_IF_ERROR(ein.ReadBytesView(&tensor_ptr, &tensor_size));
        } else if (ef == 3) {
          TFHPC_RETURN_IF_ERROR(ein.ReadVarint(&crc));
          saw_crc = true;
        } else {
          TFHPC_RETURN_IF_ERROR(ein.SkipField(ewt));
        }
      }
      if (name.empty() || tensor_size == 0) {
        return InvalidArgument("checkpoint: malformed entry");
      }
      if (!saw_crc) {
        return InvalidArgument("checkpoint: entry '" + name +
                               "' has no CRC (pre-v2 or truncated file)");
      }
      const uint32_t want = EntryCrc(name, tensor_ptr, tensor_size);
      if (static_cast<uint32_t>(crc) != want) {
        return InvalidArgument("checkpoint: CRC mismatch for entry '" + name +
                               "' (corrupted on disk)");
      }
      TFHPC_ASSIGN_OR_RETURN(Tensor tensor,
                             wire::ParseTensor(tensor_ptr, tensor_size));
      if (!tensor.valid()) {
        return InvalidArgument("checkpoint: malformed entry");
      }
      vars.emplace(std::move(name), std::move(tensor));
    } else {
      TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  if (!saw_version) {
    return InvalidArgument("checkpoint: missing format version header");
  }
  if (declared_count != vars.size()) {
    return InvalidArgument("checkpoint: entry count mismatch (" +
                           std::to_string(vars.size()) + " vs declared " +
                           std::to_string(declared_count) + ")");
  }
  return vars;
}

// ----- CheckpointManager ------------------------------------------------------

CheckpointManager::CheckpointManager(CheckpointManagerOptions options)
    : options_(std::move(options)) {
  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  LoadManifest();
  worker_ = std::make_unique<std::thread>([this] { WorkerLoop(); });
}

CheckpointManager::~CheckpointManager() {
  {
    std::unique_lock<std::mutex> lk(qmu_);
    running_ = false;
    qcv_.notify_all();
  }
  if (worker_ && worker_->joinable()) worker_->join();
}

std::string CheckpointManager::PathFor(int64_t version) const {
  return options_.directory + "/" + options_.prefix + "-" +
         std::to_string(version) + ".ckpt";
}

static std::string ManifestPathFor(const CheckpointManagerOptions& options) {
  return options.directory + "/" + options.prefix + ".manifest";
}

void CheckpointManager::LoadManifest() {
  std::ifstream f(ManifestPathFor(options_));
  if (!f) return;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    char* end = nullptr;
    const long long v = std::strtoll(line.c_str(), &end, 10);
    if (end == line.c_str() || v <= 0) continue;
    versions_.push_back(static_cast<int64_t>(v));
  }
  std::sort(versions_.begin(), versions_.end());
  versions_.erase(std::unique(versions_.begin(), versions_.end()),
                  versions_.end());
  if (!versions_.empty()) next_version_ = versions_.back() + 1;
}

Status CheckpointManager::WriteManifestLocked() {
  std::string out = "# tfhpc checkpoint manifest: one live version per line\n";
  for (int64_t v : versions_) out += std::to_string(v) + "\n";
  return PublishFileDurably(ManifestPathFor(options_), out);
}

Status CheckpointManager::SaveNow(const std::map<std::string, Tensor>& vars,
                                  int64_t* version_out) {
  std::lock_guard<std::mutex> lk(mu_);
  const int64_t version = next_version_;
  TFHPC_RETURN_IF_ERROR(SaveCheckpoint(PathFor(version), vars));
  ++next_version_;
  versions_.push_back(version);
  // Retention: the manifest is rewritten *before* old files are unlinked, so
  // a crash between the two leaves orphan files, never dangling entries.
  std::vector<int64_t> evict;
  while (versions_.size() > static_cast<size_t>(
                                std::max(1, options_.max_to_keep))) {
    evict.push_back(versions_.front());
    versions_.erase(versions_.begin());
  }
  TFHPC_RETURN_IF_ERROR(WriteManifestLocked());
  for (int64_t v : evict) {
    std::error_code ec;
    std::filesystem::remove(PathFor(v), ec);
  }
  ++saves_;
  if (version_out != nullptr) *version_out = version;
  return Status::OK();
}

Result<int64_t> CheckpointManager::Save(
    const std::map<std::string, Tensor>& vars) {
  int64_t version = 0;
  TFHPC_RETURN_IF_ERROR(SaveNow(vars, &version));
  return version;
}

void CheckpointManager::SaveAsync(std::map<std::string, Tensor> vars) {
  std::unique_lock<std::mutex> lk(qmu_);
  pending_ = std::move(vars);  // latest wins
  has_pending_ = true;
  qcv_.notify_all();
}

void CheckpointManager::WorkerLoop() {
  while (true) {
    std::map<std::string, Tensor> vars;
    {
      std::unique_lock<std::mutex> lk(qmu_);
      qcv_.wait(lk, [&] { return has_pending_ || !running_; });
      if (!has_pending_) return;  // shutting down with an empty queue
      vars = std::move(pending_);
      pending_.clear();
      has_pending_ = false;
      worker_busy_ = true;
    }
    Status st = SaveNow(vars, nullptr);
    {
      std::unique_lock<std::mutex> lk(qmu_);
      if (!st.ok() && async_error_.ok()) async_error_ = st;
      worker_busy_ = false;
      qcv_.notify_all();
    }
  }
}

Status CheckpointManager::WaitForPending() {
  std::unique_lock<std::mutex> lk(qmu_);
  qcv_.wait(lk, [&] { return !has_pending_ && !worker_busy_; });
  Status st = async_error_;
  async_error_ = Status::OK();
  return st;
}

Result<std::map<std::string, Tensor>> CheckpointManager::Restore(
    int64_t version) const {
  return LoadCheckpoint(PathFor(version));
}

Result<std::map<std::string, Tensor>> CheckpointManager::RestoreLatest(
    int64_t* version) {
  // A checkpoint queued but not yet written must be restorable: drain first.
  TFHPC_RETURN_IF_ERROR(WaitForPending());
  std::vector<int64_t> versions = Versions();
  Status last = NotFound("no checkpoints under " + options_.directory + "/" +
                         options_.prefix + "-*");
  // Newest first; a corrupt or half-written newest file falls back to the
  // next older version instead of failing the whole recovery.
  for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
    auto r = LoadCheckpoint(PathFor(*it));
    if (r.ok()) {
      if (version != nullptr) *version = *it;
      return r;
    }
    last = Status(r.status().code(),
                  "version " + std::to_string(*it) + ": " +
                      r.status().message());
  }
  return Status(last.code(),
                "checkpoint restore: no restorable version (" +
                    last.message() + ")");
}

std::vector<int64_t> CheckpointManager::Versions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return versions_;
}

int64_t CheckpointManager::latest_version() const {
  std::lock_guard<std::mutex> lk(mu_);
  return versions_.empty() ? 0 : versions_.back();
}

int64_t CheckpointManager::saves() const {
  std::lock_guard<std::mutex> lk(mu_);
  return saves_;
}

}  // namespace tfhpc::io
