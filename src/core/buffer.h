// Aligned, reference-counted byte buffers backing tensors, fronted by a
// process-wide pooling allocator (size-class free lists over aligned_alloc,
// in the spirit of TensorFlow's BFC allocator). Buffers can be attributed to
// a device allocator so simulated-GPU devices can account memory capacity the
// way real device allocators do.
//
// Memory pressure is a first-class, recoverable condition here: allocation
// has a fallible Status-returning path (Buffer::TryAllocate) guarded by a
// budget hierarchy (process-wide MemoryLimiter charged by real size-class
// capacity inside the pool, optional per-step MemoryLimiter charged by
// nominal tensor bytes) and a seeded AllocFaultInjector for testing. On
// budget breach or a real aligned_alloc failure the pool is Trim()med once
// and the allocation retried; only then does it fail — cleanly, with
// kResourceExhausted, never a process abort.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/thread_annotations.h"

namespace tfhpc {

// Whether a fresh allocation must be zero-filled. Kernels whose outputs are
// fully overwritten (gemm, FFT, elementwise) and recv/restore staging paths
// pass kNo to skip the memset.
enum class ZeroInit { kYes, kNo };

// Tracks live bytes for one device; SimGpuDevice installs one of these to
// enforce the paper's per-GPU memory limits (e.g. 1 GB on a K420). Also
// counts allocator traffic: total allocations, how many were satisfied from
// the pool's free lists, how many outputs were forwarded (buffer reuse)
// without any allocation at all, and how many allocations *failed* (budget
// breach, injected fault, or real OOM) — failures surface as
// kResourceExhausted steps, so the counter is the device-level view of
// memory pressure.
class AllocatorStats {
 public:
  void Add(int64_t bytes) {
    live_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    int64_t cur = live_bytes_.load(std::memory_order_relaxed);
    int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (cur > peak &&
           !peak_bytes_.compare_exchange_weak(peak, cur,
                                              std::memory_order_relaxed)) {
    }
  }
  void Sub(int64_t bytes) {
    live_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  void RecordAlloc(bool pool_hit, int64_t bytes) {
    allocs_.fetch_add(1, std::memory_order_relaxed);
    if (pool_hit) {
      pool_hits_.fetch_add(1, std::memory_order_relaxed);
      pool_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    }
  }
  void RecordForward() { forwards_.fetch_add(1, std::memory_order_relaxed); }
  // An output served from a statically pre-sized buffer (GraphCheck shape
  // inference told the executor the exact dtype/shape before the kernel ran).
  void RecordPresized() { presized_.fetch_add(1, std::memory_order_relaxed); }
  // An allocation that failed after the trim-and-retry dance.
  void RecordFailed() { failed_.fetch_add(1, std::memory_order_relaxed); }

  int64_t live_bytes() const {
    return live_bytes_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  int64_t allocs() const { return allocs_.load(std::memory_order_relaxed); }
  int64_t pool_hits() const {
    return pool_hits_.load(std::memory_order_relaxed);
  }
  // Total bytes (size-class capacity) served from pooled free lists.
  int64_t pool_bytes() const {
    return pool_bytes_.load(std::memory_order_relaxed);
  }
  int64_t forwards() const {
    return forwards_.load(std::memory_order_relaxed);
  }
  int64_t presized() const {
    return presized_.load(std::memory_order_relaxed);
  }
  int64_t failed() const { return failed_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> live_bytes_{0};
  std::atomic<int64_t> peak_bytes_{0};
  std::atomic<int64_t> allocs_{0};
  std::atomic<int64_t> pool_hits_{0};
  std::atomic<int64_t> pool_bytes_{0};
  std::atomic<int64_t> forwards_{0};
  std::atomic<int64_t> presized_{0};
  std::atomic<int64_t> failed_{0};
};

// A byte budget with reservation/release accounting and a high-water mark.
// Two tiers exist:
//   - MemoryLimiter::Process(): one per process, charged by *size-class
//     capacity* inside BufferPool (OS-acquired bytes, including idle cached
//     blocks — trimming the pool genuinely frees budget). Unlimited until
//     set_limit() is called. A breach here is pool pressure: transient,
//     retryable after backoff.
//   - per-step limiters (RunOptions::step_memory_limit_bytes), charged by
//     nominal tensor bytes at Buffer level. A breach is the step exceeding
//     its own budget: permanent — retrying the identical step cannot help.
// limit <= 0 means unlimited (accounting still runs).
class MemoryLimiter {
 public:
  explicit MemoryLimiter(int64_t limit_bytes = 0, std::string scope = "memory")
      : scope_(std::move(scope)), limit_(limit_bytes) {}

  // Reserves `bytes` against the budget; kResourceExhausted on breach
  // (nothing reserved in that case). The failed() counter ticks per breach.
  Status Reserve(int64_t bytes);
  // Returns previously reserved bytes to the budget.
  void Release(int64_t bytes);

  void set_limit(int64_t bytes) {
    limit_.store(bytes, std::memory_order_relaxed);
  }
  int64_t limit() const { return limit_.load(std::memory_order_relaxed); }
  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  // High-water mark of used() since construction / ResetPeak().
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  int64_t failed() const { return failed_.load(std::memory_order_relaxed); }
  void ResetPeak() {
    peak_.store(used_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }
  const std::string& scope() const { return scope_; }

  // The process-wide budget every BufferPool OS acquisition is charged to.
  static MemoryLimiter& Process();

 private:
  std::string scope_;
  std::atomic<int64_t> limit_;
  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> failed_{0};
};

// A deterministic allocator fault schedule (mirrors the PR 1 chaos-transport
// design): which fallible allocations fail, decided from seeded state — no
// wall clock, no global randomness. All schedules apply only to allocations
// inside [min_bytes, max_bytes] (the "size class" filter); an allocation
// fails when ANY armed schedule selects it.
struct AllocFaultSpec {
  // Fail every Nth eligible allocation (the Nth, 2Nth, ...). 0 = off.
  uint64_t every_nth = 0;
  // Fail eligible allocations once cumulative eligible bytes exceed this.
  // < 0 = off.
  int64_t after_bytes = -1;
  // Fail each eligible allocation independently with this probability,
  // drawn from Philox(seed)(allocation index). 0 = off.
  double probability = 0.0;
  uint64_t seed = 1;
  // Only allocations in [min_bytes, max_bytes] are eligible.
  size_t min_bytes = 0;
  size_t max_bytes = std::numeric_limits<size_t>::max();
  // Stop injecting after this many failures. < 0 = unlimited.
  int64_t max_failures = -1;

  bool enabled() const {
    return every_nth > 0 || after_bytes >= 0 || probability > 0.0;
  }
};

// Process-wide injector consulted by Buffer::TryAllocate (the fallible path
// only — legacy CHECK-on-failure callers are never injected, so injection
// can only produce clean kResourceExhausted failures, never an abort).
// Injected failures model pool pressure: they participate in the same
// trim-once-and-retry loop as real aligned_alloc failures.
class AllocFaultInjector {
 public:
  static AllocFaultInjector& Global();

  // Arms the injector with `spec` and resets schedule counters. A spec with
  // no schedule enabled disarms.
  void Install(const AllocFaultSpec& spec);
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  // Called once per fallible allocation attempt; true = fail this attempt.
  bool ShouldFail(size_t bytes);

  // Attempts examined / failures injected since the last Install.
  int64_t considered() const {
    return considered_.load(std::memory_order_relaxed);
  }
  int64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> armed_{false};
  std::atomic<int64_t> considered_{0};
  std::atomic<int64_t> injected_{0};
  Mutex mu_;
  AllocFaultSpec spec_ TFHPC_GUARDED_BY(mu_);
  // Eligible allocations seen / cumulative eligible bytes / injected count.
  uint64_t eligible_count_ TFHPC_GUARDED_BY(mu_) = 0;
  int64_t eligible_bytes_ TFHPC_GUARDED_BY(mu_) = 0;
  int64_t failures_ TFHPC_GUARDED_BY(mu_) = 0;
};

// Process-wide size-class pool in front of aligned_alloc. Freed blocks up to
// kMaxPooledBytes are cached on power-of-two free lists and handed back on
// the next matching Acquire; larger blocks bypass the pool entirely. Cached
// (idle) bytes are bounded by a cap so the pool cannot hoard memory — beyond
// the cap, Release frees to the OS. Cached blocks are *not* attributed to any
// device's AllocatorStats: device live_bytes tracks tensors actually alive,
// so SimGpu capacity limits bind exactly as before pooling. The process
// MemoryLimiter, by contrast, is charged for every byte acquired from the OS
// — cached blocks included — so its used() is the pool's true footprint and
// Trim() genuinely returns budget.
class BufferPool {
 public:
  static constexpr size_t kMinClassBytes = 64;          // one cache line
  static constexpr size_t kMaxPooledBytes = 64 << 20;   // 64 MB
  static constexpr size_t kDefaultCacheCap = 256 << 20; // idle bytes bound

  static BufferPool& Global();

  // Fallible acquire: an aligned block of at least `size` bytes and its
  // actual capacity (the size class). pool_hit reports whether it came from
  // a free list (no OS allocation, no implicit zeroing, no new budget
  // charge). Fails with kResourceExhausted when the process MemoryLimiter
  // refuses the capacity or aligned_alloc itself returns null; the caller
  // owns the trim-and-retry policy.
  Status TryAcquire(size_t size, void** out, size_t* capacity, bool* pool_hit);

  // Legacy infallible acquire: crashes the process on failure. Kept for
  // callers outside any step (startup constants, test scaffolding); all
  // step-execution paths go through TryAcquire via Buffer::TryAllocate.
  void* Acquire(size_t size, size_t* capacity, bool* pool_hit);

  // Returns a block of `capacity` bytes (as reported by Acquire) to the
  // pool, or to the OS when the class is full / the cache cap is reached.
  void Release(void* ptr, size_t capacity);

  // Frees every cached block. Returns the number of bytes released.
  size_t Trim();

  void set_cache_cap(size_t bytes);
  size_t cached_bytes() const {
    return cached_bytes_.load(std::memory_order_relaxed);
  }
  int64_t total_acquires() const {
    return total_acquires_.load(std::memory_order_relaxed);
  }
  int64_t total_hits() const {
    return total_hits_.load(std::memory_order_relaxed);
  }

 private:
  BufferPool();

  static size_t ClassIndex(size_t size);

  Mutex mu_;
  // Cached blocks by class index.
  std::vector<std::vector<void*>> free_lists_ TFHPC_GUARDED_BY(mu_);
  size_t cache_cap_ TFHPC_GUARDED_BY(mu_) = kDefaultCacheCap;
  std::atomic<size_t> cached_bytes_{0};
  std::atomic<int64_t> total_acquires_{0};
  std::atomic<int64_t> total_hits_{0};
};

// A contiguous 64-byte-aligned allocation. Never resized after creation.
// Storage is drawn from the global BufferPool and returned to it on
// destruction.
class Buffer {
 public:
  static constexpr size_t kAlignment = 64;

  // Fallible allocation of `size` bytes — the step-execution path. Order of
  // charging: the per-step limiter (when given) is reserved by nominal
  // `size` first; then the pool acquires capacity under the process
  // limiter, with fault injection and one Trim()-and-retry on failure.
  // Failure taxonomy:
  //   - per-step budget breach  -> permanent kResourceExhausted
  //   - pool pressure (process budget, injected fault, real aligned_alloc
  //     failure)               -> transient kResourceExhausted
  //     (see IsTransientResourceExhausted in core/status.h)
  // The returned buffer holds the step limiter reservation until it is
  // destroyed, so fetched tensors that outlive the step release correctly.
  static Result<std::shared_ptr<Buffer>> TryAllocate(
      size_t size, AllocatorStats* stats = nullptr,
      ZeroInit zero = ZeroInit::kYes,
      std::shared_ptr<MemoryLimiter> step_limiter = nullptr);

  // Infallible allocation: crashes on failure, never consults the fault
  // injector. For callers with no step to unwind (graph constants, wire
  // staging outside a step, tests).
  static std::shared_ptr<Buffer> Allocate(size_t size,
                                          AllocatorStats* stats = nullptr,
                                          ZeroInit zero = ZeroInit::kYes);

  // A view of [offset, offset + size) inside `base`. Views own no storage:
  // the base buffer is retained for the view's lifetime and nothing is
  // released, accounted, or returned to the pool when the view dies — the
  // base already carries the stats/limiter charges for all its bytes. The
  // executor's memory-planned arena carves per-tensor views out of one
  // per-step allocation this way. `offset` must be kAlignment-aligned so
  // the SIMD kernels' alignment invariant holds through views.
  static std::shared_ptr<Buffer> CreateView(std::shared_ptr<Buffer> base,
                                            size_t offset, size_t size);
  // True for buffers made by CreateView. Runtime forwarding must refuse
  // views: handing a planned arena span to an unplanned output would extend
  // its lifetime past the interval the plan proved safe.
  bool is_view() const { return parent_ != nullptr; }

  ~Buffer();
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  void* data() { return data_; }
  const void* data() const { return data_; }
  size_t size() const { return size_; }
  AllocatorStats* stats() const { return stats_; }

  // Removes the device attribution (live-byte accounting) from this buffer.
  // A device's AllocatorStats lives only as long as the device: any buffer
  // handed across a user-facing boundary (Session::Run fetches, RPC client
  // results) must be detached first or its destructor writes through a
  // dangling stats pointer once the runtime is gone. The step-limiter
  // reservation (shared_ptr, safe to outlive the step) is NOT detached: the
  // memory is still held, so the budget stays charged until destruction.
  void DetachStats() {
    if (stats_ != nullptr) {
      stats_->Sub(static_cast<int64_t>(size_));
      stats_ = nullptr;
    }
  }

 private:
  Buffer(void* data, size_t size, size_t capacity, AllocatorStats* stats,
         std::shared_ptr<MemoryLimiter> step_limiter)
      : data_(data),
        size_(size),
        capacity_(capacity),
        stats_(stats),
        step_limiter_(std::move(step_limiter)) {}

  void* data_;
  size_t size_;
  size_t capacity_;  // size-class capacity handed back to the pool
  AllocatorStats* stats_;
  std::shared_ptr<MemoryLimiter> step_limiter_;  // holds `size_` reserved
  std::shared_ptr<Buffer> parent_;  // set only on views (CreateView)
};

// SIMD-safety invariants the vectorized kernels rely on: every tensor buffer
// (pooled class, oversized bypass, either allocation path) is 64-byte
// aligned. aligned_alloc requires size % alignment == 0, which holds because
// size classes are powers of two >= kMinClassBytes and the oversized path
// rounds up to a kAlignment multiple — these asserts pin the constants that
// proof depends on.
static_assert((Buffer::kAlignment & (Buffer::kAlignment - 1)) == 0,
              "Buffer alignment must be a power of two");
static_assert(Buffer::kAlignment >= alignof(std::max_align_t),
              "Buffer alignment must satisfy every scalar dtype");
static_assert(BufferPool::kMinClassBytes % Buffer::kAlignment == 0,
              "smallest size class must be an alignment multiple");
static_assert((BufferPool::kMinClassBytes &
               (BufferPool::kMinClassBytes - 1)) == 0,
              "size classes grow by doubling from a power of two");
static_assert(BufferPool::kMaxPooledBytes % Buffer::kAlignment == 0,
              "largest size class must be an alignment multiple");

}  // namespace tfhpc
