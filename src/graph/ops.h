// Typed graph-construction API (the analogue of TensorFlow's Python/C++ op
// builders). A Scope carries the target graph and a device stack so code can
// mirror the paper's Listing 1:
//
//   Graph g;
//   Scope root(&g);
//   auto cpu = root.WithDevice("/cpu:0");
//   auto a = ops::RandomUniform(cpu, {3, 3}, DType::kF32, /*seed=*/1);
//   auto b = ops::RandomUniform(cpu, {3, 3}, DType::kF32, /*seed=*/2);
//   auto gpu = root.WithDevice("/gpu:0");
//   auto c = ops::MatMul(gpu, a, b);
//
// Builder functions abort on structural programming errors (unregistered op,
// bad arity); data-dependent failures surface at Session::Run time.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace tfhpc {

struct Output {
  Node* node = nullptr;
  int index = 0;

  // Input-string form, e.g. "matmul_1:0" (slot 0 elides the colon suffix).
  std::string name() const;
};

class Scope {
 public:
  explicit Scope(Graph* graph) : graph_(graph) {}

  // Child scope placing new nodes on `device` (TF's tf.device()).
  Scope WithDevice(const std::string& device) const;
  // Child scope prefixing node names ("cg/..." namespacing).
  Scope WithNamePrefix(const std::string& prefix) const;

  Graph* graph() const { return graph_; }
  const std::string& device() const { return device_; }

  // Adds a node with auto-generated name (prefix + op name), current device.
  Node* AddNode(const std::string& op, std::vector<std::string> inputs,
                std::map<std::string, wire::AttrValue> attrs,
                const std::string& name_hint = "") const;

 private:
  Graph* graph_;
  std::string device_;
  std::string prefix_;
};

namespace ops {

// -- sources ---------------------------------------------------------------
Output Const(const Scope& s, Tensor value, const std::string& name = "");
Output Placeholder(const Scope& s, DType dtype, Shape shape,
                   const std::string& name = "");
Output RandomUniform(const Scope& s, Shape shape, DType dtype, int64_t seed,
                     double lo = 0.0, double hi = 1.0);

// -- state -------------------------------------------------------------------
// A mutable per-server variable; reading the node yields its current value.
Output Variable(const Scope& s, const std::string& name, DType dtype,
                Shape shape);
// Writes `value` into `var` (a Variable op's output); returns the new value.
Output Assign(const Scope& s, Output var, Output value);
// var += value; returns the new value (the paper's STREAM assign_add).
Output AssignAdd(const Scope& s, Output var, Output value);

// -- math ----------------------------------------------------------------------
Output MatMul(const Scope& s, Output a, Output b);
Output MatVec(const Scope& s, Output m, Output v);
Output Add(const Scope& s, Output a, Output b);
Output Sub(const Scope& s, Output a, Output b);
Output Mul(const Scope& s, Output a, Output b);  // elementwise or scalar*tensor
Output Div(const Scope& s, Output a, Output b);
Output Dot(const Scope& s, Output a, Output b);
Output ReduceSum(const Scope& s, Output a);
Output Sqrt(const Scope& s, Output a);
// y = a*x + y as one fused kernel (axpy), the CG inner-loop building block.
Output Axpy(const Scope& s, Output alpha, Output x, Output y);
// 1-D complex-to-complex FFT (forward; inverse when inverse=true).
Output Fft(const Scope& s, Output x, bool inverse = false);

// -- array manipulation --------------------------------------------------------
Output Transpose(const Scope& s, Output a);  // rank-2 only
// out = a[begin : begin+size] elementwise per dimension (rank 1-2).
Output Slice(const Scope& s, Output a, Shape begin, Shape size);
// Concatenation along axis 0 (rank 1-2 operands).
Output Concat(const Scope& s, const std::vector<Output>& parts);
Output Cast(const Scope& s, Output a, DType to);
Output Neg(const Scope& s, Output a);
Output ReduceMax(const Scope& s, Output a);
Output ReduceMin(const Scope& s, Output a);
Output ReduceMean(const Scope& s, Output a);
// Constant-valued tensor of the given shape.
Output Fill(const Scope& s, DType dtype, Shape shape, double value);
Output ZerosLike(const Scope& s, Output a);

// -- plumbing ---------------------------------------------------------------------
Output Identity(const Scope& s, Output a);
// Pure ordering node; `deps` become control inputs.
Output NoOp(const Scope& s, const std::vector<Output>& deps,
            const std::string& name = "");

// -- rendezvous (cross-task tensor edges) -----------------------------------
// Deposits `value` under `key` in the local rendezvous, or — when `target`
// names another task's address — in that task's rendezvous over the wire.
Output Send(const Scope& s, Output value, const std::string& key,
            const std::string& target = "");
// Blocks until `key` arrives in this task's rendezvous.
Output Recv(const Scope& s, const std::string& key);

// -- queues -----------------------------------------------------------------------
// Queue resources are named per server; capacity is fixed at first use.
Output QueueEnqueue(const Scope& s, const std::string& queue, Output value,
                    int64_t capacity = 0);
// `dtype` (optional) declares what the dequeue expects to pop; GraphCheck
// verifies it against the dtypes provably enqueued into the queue.
Output QueueDequeue(const Scope& s, const std::string& queue,
                    int64_t capacity = 0, DType dtype = DType::kInvalid);

}  // namespace ops

}  // namespace tfhpc
