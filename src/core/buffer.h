// Aligned, reference-counted byte buffers backing tensors, fronted by a
// process-wide pooling allocator (size-class free lists over aligned_alloc,
// in the spirit of TensorFlow's BFC allocator). Buffers can be attributed to
// a device allocator so simulated-GPU devices can account memory capacity the
// way real device allocators do.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace tfhpc {

// Whether a fresh allocation must be zero-filled. Kernels whose outputs are
// fully overwritten (gemm, FFT, elementwise) and recv/restore staging paths
// pass kNo to skip the memset.
enum class ZeroInit { kYes, kNo };

// Tracks live bytes for one device; SimGpuDevice installs one of these to
// enforce the paper's per-GPU memory limits (e.g. 1 GB on a K420). Also
// counts allocator traffic: total allocations, how many were satisfied from
// the pool's free lists, and how many outputs were forwarded (buffer reuse)
// without any allocation at all.
class AllocatorStats {
 public:
  void Add(int64_t bytes) {
    live_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    int64_t cur = live_bytes_.load(std::memory_order_relaxed);
    int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (cur > peak &&
           !peak_bytes_.compare_exchange_weak(peak, cur,
                                              std::memory_order_relaxed)) {
    }
  }
  void Sub(int64_t bytes) {
    live_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  void RecordAlloc(bool pool_hit, int64_t bytes) {
    allocs_.fetch_add(1, std::memory_order_relaxed);
    if (pool_hit) {
      pool_hits_.fetch_add(1, std::memory_order_relaxed);
      pool_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    }
  }
  void RecordForward() { forwards_.fetch_add(1, std::memory_order_relaxed); }
  // An output served from a statically pre-sized buffer (GraphCheck shape
  // inference told the executor the exact dtype/shape before the kernel ran).
  void RecordPresized() { presized_.fetch_add(1, std::memory_order_relaxed); }

  int64_t live_bytes() const {
    return live_bytes_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  int64_t allocs() const { return allocs_.load(std::memory_order_relaxed); }
  int64_t pool_hits() const {
    return pool_hits_.load(std::memory_order_relaxed);
  }
  // Total bytes (size-class capacity) served from pooled free lists.
  int64_t pool_bytes() const {
    return pool_bytes_.load(std::memory_order_relaxed);
  }
  int64_t forwards() const {
    return forwards_.load(std::memory_order_relaxed);
  }
  int64_t presized() const {
    return presized_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> live_bytes_{0};
  std::atomic<int64_t> peak_bytes_{0};
  std::atomic<int64_t> allocs_{0};
  std::atomic<int64_t> pool_hits_{0};
  std::atomic<int64_t> pool_bytes_{0};
  std::atomic<int64_t> forwards_{0};
  std::atomic<int64_t> presized_{0};
};

// Process-wide size-class pool in front of aligned_alloc. Freed blocks up to
// kMaxPooledBytes are cached on power-of-two free lists and handed back on
// the next matching Acquire; larger blocks bypass the pool entirely. Cached
// (idle) bytes are bounded by a cap so the pool cannot hoard memory — beyond
// the cap, Release frees to the OS. Cached blocks are *not* attributed to any
// device's AllocatorStats: device live_bytes tracks tensors actually alive,
// so SimGpu capacity limits bind exactly as before pooling.
class BufferPool {
 public:
  static constexpr size_t kMinClassBytes = 64;          // one cache line
  static constexpr size_t kMaxPooledBytes = 64 << 20;   // 64 MB
  static constexpr size_t kDefaultCacheCap = 256 << 20; // idle bytes bound

  static BufferPool& Global();

  // Returns an aligned block of at least `size` bytes and its actual
  // capacity (the size class). pool_hit reports whether it came from a free
  // list (no OS allocation, no implicit zeroing).
  void* Acquire(size_t size, size_t* capacity, bool* pool_hit);
  // Returns a block of `capacity` bytes (as reported by Acquire) to the
  // pool, or to the OS when the class is full / the cache cap is reached.
  void Release(void* ptr, size_t capacity);

  // Frees every cached block. Returns the number of bytes released.
  size_t Trim();

  void set_cache_cap(size_t bytes);
  size_t cached_bytes() const {
    return cached_bytes_.load(std::memory_order_relaxed);
  }
  int64_t total_acquires() const {
    return total_acquires_.load(std::memory_order_relaxed);
  }
  int64_t total_hits() const {
    return total_hits_.load(std::memory_order_relaxed);
  }

 private:
  BufferPool();

  static size_t ClassIndex(size_t size);

  std::mutex mu_;
  std::vector<std::vector<void*>> free_lists_;  // by class index
  size_t cache_cap_ = kDefaultCacheCap;
  std::atomic<size_t> cached_bytes_{0};
  std::atomic<int64_t> total_acquires_{0};
  std::atomic<int64_t> total_hits_{0};
};

// A contiguous 64-byte-aligned allocation. Never resized after creation.
// Storage is drawn from the global BufferPool and returned to it on
// destruction.
class Buffer {
 public:
  static constexpr size_t kAlignment = 64;

  // Allocates `size` bytes. With ZeroInit::kYes (the default) exactly the
  // requested `size` bytes are zeroed — not the rounded-up class capacity.
  // stats may be nullptr.
  static std::shared_ptr<Buffer> Allocate(size_t size,
                                          AllocatorStats* stats = nullptr,
                                          ZeroInit zero = ZeroInit::kYes);

  ~Buffer();
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  void* data() { return data_; }
  const void* data() const { return data_; }
  size_t size() const { return size_; }
  AllocatorStats* stats() const { return stats_; }

  // Removes the device attribution (live-byte accounting) from this buffer.
  // A device's AllocatorStats lives only as long as the device: any buffer
  // handed across a user-facing boundary (Session::Run fetches, RPC client
  // results) must be detached first or its destructor writes through a
  // dangling stats pointer once the runtime is gone.
  void DetachStats() {
    if (stats_ != nullptr) {
      stats_->Sub(static_cast<int64_t>(size_));
      stats_ = nullptr;
    }
  }

 private:
  Buffer(void* data, size_t size, size_t capacity, AllocatorStats* stats)
      : data_(data), size_(size), capacity_(capacity), stats_(stats) {}

  void* data_;
  size_t size_;
  size_t capacity_;  // size-class capacity handed back to the pool
  AllocatorStats* stats_;
};

}  // namespace tfhpc
