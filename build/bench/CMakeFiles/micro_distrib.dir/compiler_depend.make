# Empty compiler generated dependencies file for micro_distrib.
# This may be replaced when dependencies are built.
