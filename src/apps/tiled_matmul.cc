#include "apps/tiled_matmul.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "apps/app_graphs.h"
#include "core/rng.h"
#include "graph/ops.h"
#include "io/dataset.h"
#include "kernels/gemm.h"
#include "wire/coded.h"

namespace tfhpc::apps {
namespace {

// A product task: C[i][j] += A[i][k] * B[k][j].
struct Product {
  int64_t i, j, k;
};

// Queue elements must be single tensors; a result tile travels with its
// target index as a serialized (i, j, TensorProto) triple in a u8 tensor.
Tensor EncodeTaggedTile(int64_t i, int64_t j, const Tensor& tile) {
  std::string buf;
  wire::CodedOutput co(&buf);
  co.WriteUInt64(1, static_cast<uint64_t>(i));
  co.WriteUInt64(2, static_cast<uint64_t>(j));
  co.WriteMessage(3, wire::SerializeTensor(tile));
  Tensor t(DType::kU8, Shape{static_cast<int64_t>(buf.size())});
  std::memcpy(t.raw_data(), buf.data(), buf.size());
  return t;
}

Status DecodeTaggedTile(const Tensor& t, int64_t* i, int64_t* j, Tensor* tile) {
  if (t.dtype() != DType::kU8) return InvalidArgument("tagged tile not u8");
  wire::CodedInput in(t.raw_data(), static_cast<size_t>(t.num_elements()));
  while (!in.AtEnd()) {
    uint32_t field;
    wire::WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    uint64_t v = 0;
    if (field == 1) {
      TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
      *i = static_cast<int64_t>(v);
    } else if (field == 2) {
      TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
      *j = static_cast<int64_t>(v);
    } else if (field == 3) {
      const uint8_t* d;
      size_t s;
      TFHPC_RETURN_IF_ERROR(in.ReadBytesView(&d, &s));
      TFHPC_ASSIGN_OR_RETURN(*tile, wire::ParseTensor(d, s));
    } else {
      TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  return Status::OK();
}

Status ValidateOptions(const TiledMatmulOptions& o) {
  if (o.n <= 0 || o.tile <= 0 || o.tile > o.n) {
    return InvalidArgument("tiled matmul: need 0 < tile <= n");
  }
  if (o.num_workers <= 0 || o.num_reducers <= 0) {
    return InvalidArgument("tiled matmul: need workers and reducers");
  }
  return Status::OK();
}

double PaperFlops(int64_t n) {
  const double dn = static_cast<double>(n);
  return 2 * dn * dn * dn - dn * dn;
}

}  // namespace

Result<TiledMatmulResult> SimulateTiledMatmul(
    const sim::MachineConfig& cfg, sim::Protocol protocol,
    const TiledMatmulOptions& options) {
  TFHPC_RETURN_IF_ERROR(ValidateOptions(options));
  const int64_t t = options.tile;
  const int64_t tile_bytes = t * t * 4;  // f32
  // Working set on a GPU: two input tiles + one output.
  if (cfg.gpu_model.mem_bytes > 0 && 3 * tile_bytes > cfg.gpu_model.mem_bytes) {
    return ResourceExhausted("tile " + std::to_string(t) + " does not fit " +
                             cfg.gpu_model.model_name);
  }
  const int64_t grid = (options.n + t - 1) / t;

  sim::ClusterModel cm(cfg, options.num_workers);
  // Reducers live on the CPUs of the GPU nodes, round-robin.
  auto reducer_node = [&](int r) { return r % cm.num_nodes(); };

  // Per-worker input pipeline: tile loads are sequential within a worker
  // (single Dataset iterator) and run ahead of GPU compute (prefetching);
  // the worker's client loop, however, serializes step dispatch + result
  // push per product (one session invocation each).
  std::vector<sim::OpId> prev_load(static_cast<size_t>(options.num_workers));
  std::vector<sim::OpId> prev_step(static_cast<size_t>(options.num_workers));
  for (int w = 0; w < options.num_workers; ++w) {
    prev_load[static_cast<size_t>(w)] = cm.Delay(0, {});
    prev_step[static_cast<size_t>(w)] = cm.Delay(0, {});
  }

  int64_t task_index = 0;
  for (int64_t i = 0; i < grid; ++i) {
    for (int64_t j = 0; j < grid; ++j) {
      for (int64_t k = 0; k < grid; ++k, ++task_index) {
        const int w = static_cast<int>(task_index % options.num_workers);
        const sim::Loc gpu = cm.GpuLoc(w);
        const sim::Loc host = cm.HostLoc(gpu.node);

        sim::OpId load_a = cm.DiskRead(gpu.node, tile_bytes,
                                       {prev_load[static_cast<size_t>(w)]},
                                       "loadA");
        sim::OpId load_b = cm.DiskRead(gpu.node, tile_bytes, {load_a}, "loadB");
        prev_load[static_cast<size_t>(w)] = load_b;

        sim::OpId h2d_a =
            cm.Transfer(host, gpu, tile_bytes, sim::Protocol::kRdma, {load_a},
                        "h2dA");
        sim::OpId h2d_b =
            cm.Transfer(host, gpu, tile_bytes, sim::Protocol::kRdma, {load_b},
                        "h2dB");
        const double flops = 2.0 * static_cast<double>(t) * t * t;
        sim::OpId gemm = cm.GpuCompute(
            w, flops, 3 * tile_bytes, false,
            {h2d_a, h2d_b, prev_step[static_cast<size_t>(w)]}, "gemm");
        const int r = static_cast<int>((i * grid + j) % options.num_reducers);
        sim::OpId push = cm.Transfer(gpu, cm.HostLoc(reducer_node(r)),
                                     tile_bytes, protocol, {gemm}, "push");
        prev_step[static_cast<size_t>(w)] = cm.StepOverhead({push});
        // Single-threaded reducer: dequeue + decode + numpy accumulate per
        // tile — markedly slower than a store-only consumer.
        sim::OpId drained = cm.HostIngest(reducer_node(r), r, tile_bytes,
                                          {push}, "drain",
                                          /*bps=*/1.2e9);
        cm.HostCompute(reducer_node(r), /*lane=*/r,
                       static_cast<double>(t) * t, 3 * tile_bytes, {drained},
                       "accumulate");
      }
    }
  }

  TFHPC_ASSIGN_OR_RETURN(sim::ReplayResult replay, cm.Replay());
  TiledMatmulResult result;
  result.seconds = replay.makespan;
  result.gflops = PaperFlops(options.n) / replay.makespan / 1e9;
  return result;
}

Result<TiledMatmulResult> RunTiledMatmulFunctional(
    const TiledMatmulOptions& options, const std::string& work_dir,
    distrib::WireProtocol protocol, bool verify_dense) {
  TFHPC_RETURN_IF_ERROR(ValidateOptions(options));
  const int64_t n = options.n;
  const int64_t t = options.tile;
  const int64_t grid = (n + t - 1) / t;
  const int W = options.num_workers;
  const int R = options.num_reducers;

  // ---- pre-processing: random matrices tiled into .npy files --------------
  Tensor a(DType::kF32, Shape{n, n});
  Tensor b(DType::kF32, Shape{n, n});
  FillUniform(a, 101);
  FillUniform(b, 202);
  TFHPC_ASSIGN_OR_RETURN(io::TileStore store_a,
                         io::TileStore::Create(work_dir + "/A", a, t, t));
  TFHPC_ASSIGN_OR_RETURN(io::TileStore store_b,
                         io::TileStore::Create(work_dir + "/B", b, t, t));

  // ---- cluster: W workers + R reducers --------------------------------------
  wire::ClusterDef cluster_def;
  {
    wire::JobDef workers;
    workers.name = "worker";
    for (int w = 0; w < W; ++w) {
      workers.task_addrs.push_back("w" + std::to_string(w) + ":2222");
    }
    wire::JobDef reducers;
    reducers.name = "reducer";
    for (int r = 0; r < R; ++r) {
      reducers.task_addrs.push_back("r" + std::to_string(r) + ":2222");
    }
    cluster_def.jobs = {workers, reducers};
  }
  TFHPC_ASSIGN_OR_RETURN(distrib::ClusterSpec spec,
                         distrib::ClusterSpec::Create(cluster_def));
  distrib::InProcessRouter router;
  std::vector<std::unique_ptr<distrib::Server>> servers;
  for (int w = 0; w < W; ++w) {
    TFHPC_ASSIGN_OR_RETURN(
        auto s, distrib::Server::Create({spec, "worker", w, 1}, &router));
    servers.push_back(std::move(s));
  }
  for (int r = 0; r < R; ++r) {
    TFHPC_ASSIGN_OR_RETURN(
        auto s, distrib::Server::Create({spec, "reducer", r, 0}, &router));
    servers.push_back(std::move(s));
  }

  // ---- shared dataset of products -------------------------------------------
  std::vector<Product> products;
  for (int64_t i = 0; i < grid; ++i)
    for (int64_t j = 0; j < grid; ++j)
      for (int64_t k = 0; k < grid; ++k) products.push_back({i, j, k});
  io::WorkList<Product> dataset =
      options.shuffle_seed != 0
          ? io::WorkList<Product>(products, options.shuffle_seed)
          : io::WorkList<Product>(products);

  // Expected tile count per reducer (target parity partitioning).
  std::vector<int64_t> expected(static_cast<size_t>(R), 0);
  for (int64_t i = 0; i < grid; ++i)
    for (int64_t j = 0; j < grid; ++j)
      expected[static_cast<size_t>((i * grid + j) % R)] += grid;

  const auto start = std::chrono::steady_clock::now();

  // ---- workers: load tiles, matmul on their GPU via the graph, push ----------
  std::vector<Status> worker_status(static_cast<size_t>(W));
  std::vector<std::thread> worker_threads;
  for (int w = 0; w < W; ++w) {
    worker_threads.emplace_back([&, w] {
      auto run = [&]() -> Status {
        distrib::Server* server = servers[static_cast<size_t>(w)].get();
        // Per-worker graph (replicated, data parallelism): a @ b on the GPU.
        Scope scope = Scope(&server->graph()).WithDevice("/gpu:0");
        const TiledMatmulGraph wg = BuildTiledMatmulGraph(scope, t);
        auto session = server->NewSession();
        while (auto task = dataset.GetNext()) {
          TFHPC_ASSIGN_OR_RETURN(Tensor ta, store_a.LoadTile(task->i, task->k));
          TFHPC_ASSIGN_OR_RETURN(Tensor tb, store_b.LoadTile(task->k, task->j));
          TFHPC_ASSIGN_OR_RETURN(
              std::vector<Tensor> out,
              session->Run({{"a", ta}, {"b", tb}}, {wg.product}));
          const int r = static_cast<int>((task->i * grid + task->j) % R);
          TFHPC_ASSIGN_OR_RETURN(std::string addr,
                                 spec.TaskAddress("reducer", r));
          distrib::RemoteTask reducer(&router, addr, protocol);
          TFHPC_RETURN_IF_ERROR(reducer.Enqueue(
              "tiles", EncodeTaggedTile(task->i, task->j, out[0])));
        }
        return Status::OK();
      };
      worker_status[static_cast<size_t>(w)] = run();
    });
  }

  // ---- reducers: drain queues, accumulate tiles locally ("Numpy array") -----
  std::vector<Status> reducer_status(static_cast<size_t>(R));
  std::vector<std::map<std::pair<int64_t, int64_t>, Tensor>> reduced(
      static_cast<size_t>(R));
  std::vector<std::thread> reducer_threads;
  for (int r = 0; r < R; ++r) {
    reducer_threads.emplace_back([&, r] {
      auto run = [&]() -> Status {
        distrib::Server* self = servers[static_cast<size_t>(W + r)].get();
        TFHPC_ASSIGN_OR_RETURN(FIFOQueue * queue,
                               self->resources().LookupOrCreateQueue("tiles"));
        auto& acc = reduced[static_cast<size_t>(r)];
        for (int64_t c = 0; c < expected[static_cast<size_t>(r)]; ++c) {
          TFHPC_ASSIGN_OR_RETURN(Tensor tagged, queue->Dequeue());
          int64_t i = -1, j = -1;
          Tensor tile;
          TFHPC_RETURN_IF_ERROR(DecodeTaggedTile(tagged, &i, &j, &tile));
          auto key = std::make_pair(i, j);
          auto it = acc.find(key);
          if (it == acc.end()) {
            acc.emplace(key, tile.Clone());
          } else {
            Tensor& sum = it->second;
            auto dst = sum.mutable_span<float>();
            const auto src = tile.data<float>();
            for (size_t e = 0; e < dst.size(); ++e) dst[e] += src[e];
          }
        }
        return Status::OK();
      };
      reducer_status[static_cast<size_t>(r)] = run();
    });
  }

  for (auto& th : worker_threads) th.join();
  // If a worker died, reducers would wait forever for missing tiles: close
  // their queues so pending dequeues unwind with OutOfRange.
  const bool workers_ok =
      std::all_of(worker_status.begin(), worker_status.end(),
                  [](const Status& s) { return s.ok(); });
  if (!workers_ok) {
    for (int r = 0; r < R; ++r) {
      servers[static_cast<size_t>(W + r)]->resources().CloseAllQueues();
    }
  }
  for (auto& th : reducer_threads) th.join();
  const auto end = std::chrono::steady_clock::now();
  for (const Status& s : worker_status) TFHPC_RETURN_IF_ERROR(s);
  for (const Status& s : reducer_status) TFHPC_RETURN_IF_ERROR(s);

  // ---- assemble C and verify ---------------------------------------------------
  if (verify_dense) {
    Tensor c(DType::kF32, Shape{n, n});
    for (const auto& shard : reduced) {
      for (const auto& [key, tile] : shard) {
        const int64_t r0 = key.first * t;
        const int64_t c0 = key.second * t;
        const auto src = tile.data<float>();
        const int64_t th = tile.shape().dim(0);
        const int64_t tw = tile.shape().dim(1);
        for (int64_t rr = 0; rr < th; ++rr) {
          std::memcpy(c.mutable_data<float>() + (r0 + rr) * n + c0,
                      src.data() + rr * tw,
                      static_cast<size_t>(tw) * sizeof(float));
        }
      }
    }
    Tensor ref(DType::kF32, Shape{n, n});
    blas::Gemm(a.data<float>().data(), b.data<float>().data(),
               ref.mutable_data<float>(), n, n, n);
    const auto got = c.data<float>();
    const auto want = ref.data<float>();
    for (int64_t e = 0; e < n * n; ++e) {
      const float scale = std::max(1.0f, std::abs(want[static_cast<size_t>(e)]));
      if (std::abs(got[static_cast<size_t>(e)] - want[static_cast<size_t>(e)]) >
          1e-3f * scale) {
        return Internal("tiled result mismatch at flat index " +
                        std::to_string(e));
      }
    }
  }

  TiledMatmulResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.gflops = PaperFlops(n) / result.seconds / 1e9;
  return result;
}

}  // namespace tfhpc::apps
