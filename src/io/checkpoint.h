// Checkpoint/restore of named variable sets — the paper highlights
// TensorFlow's checkpoint-restart as HPC-relevant and ships a CG solver
// with it. The file body is a sequence of protobuf-encoded (name,
// TensorProto, crc32) entries plus a header with a format version and entry
// count. Writes are durable: data is fsync'd before the atomic rename and
// the directory is fsync'd after it, so a checkpoint that Save reported
// survives power loss.
//
// CheckpointManager layers job-level checkpoint-restart on top: versioned
// files under one directory, a manifest for discovery, bounded retention,
// async saves off the step loop, and restore-from-latest that falls back to
// older versions when the newest file fails its CRC/parse — the durable half
// of DistributedSession's fail-stop recovery.
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "core/tensor.h"

namespace tfhpc::io {

// Atomically (write-to-temp + fsync + rename + dir fsync) saves all entries
// to `path`. Each entry carries a CRC32 over its name and tensor bytes.
Status SaveCheckpoint(const std::string& path,
                      const std::map<std::string, Tensor>& vars);

// Loads a checkpoint previously written by SaveCheckpoint. Rejects files
// with a different format version (clear kInvalidArgument), missing or
// mismatched per-entry CRCs, and entry-count mismatches.
Result<std::map<std::string, Tensor>> LoadCheckpoint(const std::string& path);

// CRC-32 (IEEE, reflected) — exposed for tests and the tile store.
uint32_t Crc32(const void* data, size_t size);

struct CheckpointManagerOptions {
  std::string directory;      // created if absent
  std::string prefix = "ckpt";
  // Newest versions kept on disk; older ones are deleted after each save.
  int max_to_keep = 3;
};

// Versioned, rotating, durable checkpoints. Thread-safe. Version numbers
// increase monotonically (resuming from an existing manifest continues the
// sequence); the manifest names every live version and is itself written
// atomically + fsync'd.
class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointManagerOptions options);
  ~CheckpointManager();  // drains any pending async save
  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  // Synchronous save; returns the new version number.
  Result<int64_t> Save(const std::map<std::string, Tensor>& vars);

  // Queues `vars` for a background save and returns immediately — the step
  // loop's periodic checkpoints must not stall the step. Saves are
  // serialized; if a newer snapshot is queued before the previous one
  // started writing, the older queued one is superseded (latest wins).
  void SaveAsync(std::map<std::string, Tensor> vars);

  // Blocks until the async queue is empty; returns the first async save
  // error since the last call (and clears it).
  Status WaitForPending();

  Result<std::map<std::string, Tensor>> Restore(int64_t version) const;
  // Drains pending async saves, then restores the newest version that loads
  // cleanly, walking backwards past corrupt/unreadable files. Fills
  // *version with the version actually restored.
  Result<std::map<std::string, Tensor>> RestoreLatest(
      int64_t* version = nullptr);

  // Live versions, ascending. Empty when nothing has been saved.
  std::vector<int64_t> Versions() const;
  int64_t latest_version() const;  // 0 when none
  std::string PathFor(int64_t version) const;

  int64_t saves() const;  // completed saves (sync + async)

 private:
  Status SaveNow(const std::map<std::string, Tensor>& vars,
                 int64_t* version_out);
  Status WriteManifestLocked();
  void LoadManifest();
  void WorkerLoop();

  CheckpointManagerOptions options_;

  mutable std::mutex mu_;  // guards versions_/next_version_ and manifest io
  std::vector<int64_t> versions_;
  int64_t next_version_ = 1;
  int64_t saves_ = 0;

  std::mutex qmu_;
  std::condition_variable qcv_;
  bool running_ = true;
  bool worker_busy_ = false;
  bool has_pending_ = false;
  std::map<std::string, Tensor> pending_;
  Status async_error_;
  std::unique_ptr<std::thread> worker_;
};

}  // namespace tfhpc::io
