// Ablation: mean time to recover (MTTR) vs heartbeat cadence and durable
// checkpoint interval. A two-worker job (cross-task rendezvous edge, state on
// both sides) runs under a lease monitor with a hot spare; worker 1 is
// fail-stop killed mid-job, the session evicts it onto the spare and restores
// the newest durable checkpoint. Each row reports the detect/recover split of
// MTTR plus the steps of work lost to checkpoint staleness. Correctness is
// asserted every row: the final accumulators must equal the value predicted
// from (checkpointed steps + post-recovery steps), so the numbers measure the
// *cost* of recovery, never silent state corruption.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "distrib/dist_session.h"
#include "distrib/server.h"
#include "graph/ops.h"

using namespace tfhpc;           // NOLINT
using namespace tfhpc::distrib;  // NOLINT

namespace {

// Kill after 7 steps so the checkpoint cadences {1, 2, 4} leave different
// amounts of un-checkpointed work behind (0, 1 and 3 lost steps).
constexpr int kTotalSteps = 9;
constexpr int kKillAfterStep = 7;  // kill w1 once this many steps completed

struct Row {
  int64_t heartbeat_ms;
  int64_t dead_after_ms;
  int ckpt_every;
  int64_t detect_ms;
  int64_t recover_ms;
  int64_t mttr_ms;
  int64_t outage_ms;  // wall clock: Kill() to first recovered step
  int64_t restored_version;
  int steps_lost;
  bool exact;
};

ClusterSpec WorkerCluster(const std::vector<std::string>& addrs) {
  wire::ClusterDef def;
  wire::JobDef workers;
  workers.name = "worker";
  workers.task_addrs = addrs;
  def.jobs = {workers};
  return ClusterSpec::Create(def).value();
}

Row RunOnce(int64_t heartbeat_ms, int ckpt_every, int row_id) {
  const std::string tag = "abrec" + std::to_string(row_id);
  const std::string w0_addr = tag + "-w0:1";
  const std::string w1_addr = tag + "-w1:1";
  const std::string spare_addr = tag + "-spare:1";
  ClusterSpec cluster = WorkerCluster({w0_addr, w1_addr});
  ClusterSpec spare_cluster = WorkerCluster({w0_addr, spare_addr});

  InProcessRouter router;
  RetryPolicy send_retry = RetryPolicy::Aggressive(400);
  ServerDef d0{cluster, "worker", 0, 0};
  ServerDef d1{cluster, "worker", 1, 0};
  ServerDef ds{spare_cluster, "worker", 1, 0};
  d0.send_retry = d1.send_retry = ds.send_retry = send_retry;
  auto w0 = Server::Create(d0, &router).value();
  auto w1 = Server::Create(d1, &router).value();
  auto spare = Server::Create(ds, &router).value();

  HealthOptions health;
  health.heartbeat_interval_ms = heartbeat_ms;
  health.suspect_after_ms = 4 * heartbeat_ms;
  health.dead_after_ms = 10 * heartbeat_ms;
  HealthMonitor monitor(&router, health);
  monitor.Watch(w0_addr);
  monitor.Watch(w1_addr);
  monitor.Start();

  const std::string dir =
      (std::filesystem::temp_directory_path() / ("tfhpc_" + tag)).string();
  std::filesystem::remove_all(dir);
  io::CheckpointManager checkpoints(io::CheckpointManagerOptions{dir, "job", 3});

  // acc on task 0, sum on task 1; every step does acc += 1 then
  // sum += 10*acc across the rendezvous edge.
  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto acc = ops::Variable(t0, "acc", DType::kF64, Shape{});
  auto bump = ops::AssignAdd(t0, acc, ops::Const(t0, Tensor::Scalar(1.0)));
  auto sum = ops::Variable(t1, "sum", DType::kF64, Shape{});
  auto total = ops::AssignAdd(
      t1, sum, ops::Mul(t1, bump, ops::Const(t1, Tensor::Scalar(10.0))));

  DeviceName dev;
  dev.job = "worker";
  dev.task = 0;
  auto session = DistributedSession::Create(&router, cluster,
                                            WireProtocol::kRdma,
                                            g.ToGraphDef(), dev)
                     .value();
  (void)RemoteTask(&router, w0_addr, WireProtocol::kRdma)
      .VarAssign("acc", Tensor::Scalar(0.0));
  (void)RemoteTask(&router, w1_addr, WireProtocol::kRdma)
      .VarAssign("sum", Tensor::Scalar(0.0));

  StepRecoveryOptions recovery;
  recovery.max_step_attempts = 3;
  recovery.rpc_retry = RetryPolicy::Aggressive(400);
  recovery.health = &monitor;
  recovery.checkpoints = &checkpoints;
  recovery.checkpoint_every_n_steps = ckpt_every;
  recovery.spare_addrs = {spare_addr};
  recovery.dead_verdict_wait_ms = 20 * heartbeat_ms + 500;

  Row row{};
  row.heartbeat_ms = heartbeat_ms;
  row.dead_after_ms = health.dead_after_ms;
  row.ckpt_every = ckpt_every;
  row.exact = true;

  for (int step = 1; step <= kKillAfterStep; ++step) {
    auto r = session->Run({}, {total.name()}, recovery, nullptr);
    if (!r.ok()) {
      std::printf("warmup step %d failed: %s\n", step,
                  r.status().ToString().c_str());
      row.exact = false;
    }
  }
  (void)checkpoints.WaitForPending();  // make the last periodic save durable

  router.Kill(w1_addr);
  const auto kill_time = std::chrono::steady_clock::now();
  Tensor final_total;
  for (int step = kKillAfterStep + 1; step <= kTotalSteps; ++step) {
    FaultReport report;
    auto r = session->Run({}, {total.name()}, recovery, &report);
    if (!r.ok()) {
      std::printf("step %d failed: %s\n", step, report.ToString().c_str());
      row.exact = false;
      break;
    }
    final_total = (*r)[0];
    if (!report.worker_faults.empty()) {
      row.detect_ms = report.worker_faults[0].detect_ms;
      row.recover_ms = report.worker_faults[0].recover_ms;
      row.mttr_ms = report.mttr_ms;
      row.restored_version = report.checkpoint_restored_version;
      row.outage_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - kill_time)
                          .count();
    }
  }
  monitor.Stop();
  (void)checkpoints.WaitForPending();

  // Steps after the newest checkpoint are lost: the job resumed from the
  // last durable multiple of ckpt_every, then ran the two remaining steps.
  const int ckpt_step = (kKillAfterStep / ckpt_every) * ckpt_every;
  row.steps_lost = kKillAfterStep - ckpt_step;
  const int n = ckpt_step + (kTotalSteps - kKillAfterStep);  // effective steps
  const double want_sum = 5.0 * n * (n + 1);  // sum of 10*(1+..+n)
  if (row.exact) {
    row.exact = final_total.scalar<double>() == want_sum;
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return row;
}

}  // namespace

int main() {
  bench::Header("ablation: MTTR vs heartbeat cadence x checkpoint interval",
                "job-level recovery (lease monitor + spare eviction + durable "
                "restore); final state checked against the predicted value "
                "every row");
  std::printf("%-6s %-6s %-6s %10s %11s %8s %10s %9s %6s %6s\n", "hb_ms",
              "dead", "ckptN", "detect_ms", "recover_ms", "mttr_ms",
              "outage_ms", "restored", "lost", "exact");
  bench::Rule();
  int row_id = 0;
  for (int64_t hb : {2, 5, 20}) {
    for (int every : {1, 2, 4}) {
      Row row = RunOnce(hb, every, row_id++);
      std::printf("%-6lld %-6lld %-6d %10lld %11lld %8lld %10lld %9lld %6d "
                  "%6s\n",
                  static_cast<long long>(row.heartbeat_ms),
                  static_cast<long long>(row.dead_after_ms), row.ckpt_every,
                  static_cast<long long>(row.detect_ms),
                  static_cast<long long>(row.recover_ms),
                  static_cast<long long>(row.mttr_ms),
                  static_cast<long long>(row.outage_ms),
                  static_cast<long long>(row.restored_version), row.steps_lost,
                  row.exact ? "yes" : "NO!");
    }
  }
  bench::Rule();
  std::printf("w1 fail-stop killed after step %d of %d; detect = step failure "
              "to DEAD lease verdict (0 when the lease expired inside the "
              "failing attempt), recover = fence + respec + diff-ship + spare "
              "adoption, outage = Kill() to first recovered step, lost = "
              "steps past the newest durable checkpoint\n",
              kKillAfterStep, kTotalSteps);
  return 0;
}
