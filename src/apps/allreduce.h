// Ring allreduce — the paper's §VIII future-work direction: "Uber's Horovod
// and Cray's ML Plugin enable the development of applications with MPI-like
// interfaces ... for functions such as allreduce without needing the use of
// dedicated servers for parameters."
//
// Implemented on tfhpc's rendezvous layer: W tasks in a ring, a
// reduce-scatter phase (W-1 steps) followed by an allgather phase (W-1
// steps), each chunk riding the configured wire protocol. Functional mode
// verifies the sum across real servers; simulation mode compares the ring
// against the paper's parameter-server reduction at scale.
#pragma once

#include "distrib/client.h"
#include "sim/machine.h"

namespace tfhpc::apps {

// Real in-process allreduce of one f64 vector per worker; returns the
// reduced vector (identical on every worker, checked internally).
// `elements` must be divisible by `num_workers`.
Result<Tensor> RunRingAllreduceFunctional(int num_workers, int64_t elements,
                                          uint64_t seed,
                                          distrib::WireProtocol protocol);

struct ReduceTimings {
  double ring_seconds = 0;  // ring allreduce
  double ps_seconds = 0;    // PS gather + broadcast (the paper's pattern)
};

// Virtual-time comparison: reduce a vector of `bytes` across `num_gpus`
// workers, once per `rounds`, via (a) ring allreduce and (b) the paper's
// parameter-server reduction.
Result<ReduceTimings> SimulateReduceComparison(const sim::MachineConfig& cfg,
                                               sim::Protocol protocol,
                                               int num_gpus, int64_t bytes,
                                               int rounds = 1);

}  // namespace tfhpc::apps
