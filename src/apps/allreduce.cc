#include "apps/allreduce.h"

#include <thread>

#include "core/rng.h"
#include "distrib/server.h"

namespace tfhpc::apps {
namespace {

std::string ChunkKey(int step, int chunk) {
  return "ar/s" + std::to_string(step) + "/c" + std::to_string(chunk);
}

}  // namespace

Result<Tensor> RunRingAllreduceFunctional(int num_workers, int64_t elements,
                                          uint64_t seed,
                                          distrib::WireProtocol protocol) {
  const int W = num_workers;
  if (W <= 0 || elements <= 0 || elements % W != 0) {
    return InvalidArgument(
        "allreduce: need workers > 0 and elements divisible by workers");
  }
  const int64_t chunk = elements / W;

  // Cluster of W worker tasks.
  wire::ClusterDef def;
  wire::JobDef workers;
  workers.name = "worker";
  for (int w = 0; w < W; ++w) {
    workers.task_addrs.push_back("ar-w" + std::to_string(w) + ":1");
  }
  def.jobs = {workers};
  TFHPC_ASSIGN_OR_RETURN(distrib::ClusterSpec spec,
                         distrib::ClusterSpec::Create(def));
  distrib::InProcessRouter router;
  std::vector<std::unique_ptr<distrib::Server>> servers;
  for (int w = 0; w < W; ++w) {
    TFHPC_ASSIGN_OR_RETURN(
        auto s, distrib::Server::Create({spec, "worker", w, 0}, &router));
    servers.push_back(std::move(s));
  }

  // Per-worker input vectors + the expected elementwise sum.
  std::vector<Tensor> input(static_cast<size_t>(W));
  Tensor expected(DType::kF64, Shape{elements});
  for (int w = 0; w < W; ++w) {
    Tensor t(DType::kF64, Shape{elements});
    FillUniform(t, seed + static_cast<uint64_t>(w), -1, 1);
    const auto src = t.data<double>();
    auto* sum = expected.mutable_data<double>();
    for (int64_t i = 0; i < elements; ++i) sum[i] += src[static_cast<size_t>(i)];
    input[static_cast<size_t>(w)] = std::move(t);
  }

  std::vector<Tensor> result(static_cast<size_t>(W));
  std::vector<Status> status(static_cast<size_t>(W));
  std::vector<std::thread> threads;
  for (int w = 0; w < W; ++w) {
    threads.emplace_back([&, w] {
      auto run = [&]() -> Status {
        Tensor buf = input[static_cast<size_t>(w)].Clone();
        auto* data = buf.mutable_data<double>();
        const int next = (w + 1) % W;
        TFHPC_ASSIGN_OR_RETURN(std::string next_addr,
                               spec.TaskAddress("worker", next));
        distrib::RemoteTask right(&router, next_addr, protocol);
        Rendezvous& inbox =
            servers[static_cast<size_t>(w)]->resources().rendezvous();

        auto chunk_tensor = [&](int c) {
          Tensor t(DType::kF64, Shape{chunk});
          std::memcpy(t.raw_data(), data + c * chunk,
                      static_cast<size_t>(chunk) * 8);
          return t;
        };

        // Phase 1 — reduce-scatter: in step s, send chunk (w - s) and
        // accumulate the incoming chunk (w - s - 1).
        for (int s = 0; s < W - 1; ++s) {
          const int send_c = ((w - s) % W + W) % W;
          const int recv_c = ((w - s - 1) % W + W) % W;
          TFHPC_RETURN_IF_ERROR(
              right.RendezvousSend(ChunkKey(s, send_c), chunk_tensor(send_c)));
          TFHPC_ASSIGN_OR_RETURN(Tensor incoming,
                                 inbox.Recv(ChunkKey(s, recv_c)));
          const auto in = incoming.data<double>();
          for (int64_t i = 0; i < chunk; ++i) {
            data[recv_c * chunk + i] += in[static_cast<size_t>(i)];
          }
        }
        // Phase 2 — allgather: circulate the fully reduced chunks.
        for (int s = 0; s < W - 1; ++s) {
          const int send_c = ((w + 1 - s) % W + W) % W;
          const int recv_c = ((w - s) % W + W) % W;
          TFHPC_RETURN_IF_ERROR(right.RendezvousSend(
              ChunkKey(W - 1 + s, send_c), chunk_tensor(send_c)));
          TFHPC_ASSIGN_OR_RETURN(Tensor incoming,
                                 inbox.Recv(ChunkKey(W - 1 + s, recv_c)));
          std::memcpy(data + recv_c * chunk, incoming.raw_data(),
                      static_cast<size_t>(chunk) * 8);
        }
        result[static_cast<size_t>(w)] = std::move(buf);
        return Status::OK();
      };
      status[static_cast<size_t>(w)] = run();
    });
  }
  for (auto& t : threads) t.join();
  for (const Status& s : status) TFHPC_RETURN_IF_ERROR(s);

  // Every worker must hold the same, correct sum.
  for (int w = 0; w < W; ++w) {
    const auto got = result[static_cast<size_t>(w)].data<double>();
    const auto want = expected.data<double>();
    for (int64_t i = 0; i < elements; ++i) {
      if (std::abs(got[static_cast<size_t>(i)] - want[static_cast<size_t>(i)]) >
          1e-9 * std::max(1.0, std::abs(want[static_cast<size_t>(i)]))) {
        return Internal("allreduce mismatch on worker " + std::to_string(w) +
                        " at element " + std::to_string(i));
      }
    }
  }
  return result[0];
}

Result<ReduceTimings> SimulateReduceComparison(const sim::MachineConfig& cfg,
                                               sim::Protocol protocol,
                                               int num_gpus, int64_t bytes,
                                               int rounds) {
  if (num_gpus < 2 || bytes <= 0 || rounds <= 0) {
    return InvalidArgument("reduce comparison: need >= 2 GPUs, bytes, rounds");
  }
  const int W = num_gpus;
  const int64_t chunk = bytes / W;
  ReduceTimings out;

  // (a) Ring allreduce: 2(W-1) pipelined chunk steps.
  {
    sim::ClusterModel cm(cfg, W);
    std::vector<sim::OpId> last(static_cast<size_t>(W), cm.Delay(0, {}));
    for (int round = 0; round < rounds; ++round) {
      for (int s = 0; s < 2 * (W - 1); ++s) {
        std::vector<sim::OpId> next(static_cast<size_t>(W));
        for (int w = 0; w < W; ++w) {
          const int right = (w + 1) % W;
          // Each step: send my chunk to the right neighbour; the reduce
          // half also pays the elementwise add on arrival.
          sim::OpId arrive =
              cm.Transfer(cm.GpuLoc(w), cm.GpuLoc(right), chunk, protocol,
                          {last[static_cast<size_t>(w)],
                           last[static_cast<size_t>(right)]},
                          "ring");
          if (s < W - 1) {
            arrive = cm.GpuCompute(right, static_cast<double>(chunk) / 8,
                                   2 * chunk, true, {arrive}, "acc");
          }
          next[static_cast<size_t>(right)] = arrive;
        }
        last = std::move(next);
      }
    }
    TFHPC_ASSIGN_OR_RETURN(sim::ReplayResult r, cm.Replay());
    out.ring_seconds = r.makespan;
  }

  // (b) The paper's PS pattern: all workers push the FULL vector to the
  // reducer, which accumulates and broadcasts it back.
  {
    sim::ClusterModel cm(cfg, W, /*extra_host_nodes=*/1);
    const int ps_node = cm.num_nodes() - 1;
    const sim::Loc ps = cm.HostLoc(ps_node);
    std::vector<sim::OpId> last(static_cast<size_t>(W), cm.Delay(0, {}));
    for (int round = 0; round < rounds; ++round) {
      std::vector<sim::OpId> arrivals;
      for (int w = 0; w < W; ++w) {
        sim::OpId push = cm.Transfer(cm.GpuLoc(w), ps, bytes, protocol,
                                     {last[static_cast<size_t>(w)]}, "push");
        arrivals.push_back(
            cm.HostIngest(ps_node, 0, bytes, {push}, "drain"));
      }
      sim::OpId acc = cm.HostCompute(
          ps_node, 0, static_cast<double>(W) * static_cast<double>(bytes) / 8,
          static_cast<int64_t>(W) * bytes, arrivals, "acc");
      for (int w = 0; w < W; ++w) {
        last[static_cast<size_t>(w)] = cm.Transfer(
            ps, cm.GpuLoc(w), bytes, protocol, {acc}, "bcast");
      }
    }
    TFHPC_ASSIGN_OR_RETURN(sim::ReplayResult r, cm.Replay());
    out.ps_seconds = r.makespan;
  }
  return out;
}

}  // namespace tfhpc::apps
