// Goto-style packed, register-tiled GEMM and vectorized GEMV on row-major
// dense matrices — the compute substrate behind the MatMul/MatVec kernels and
// the tiled matmul application. Not a full BLAS; exactly the contractions the
// paper's applications need, written for predictable performance.
//
// Gemm packs A and B panels into contiguous pool-allocated scratch (MC×KC and
// KC×NC), drives an explicitly vectorized MR×NR micro-kernel over the packed
// panels, and parallelizes over MC row blocks with a flop-aware grain (small
// matrices never shard). Results are deterministic across thread counts and
// schedules: each C row block is owned by exactly one task per depth panel,
// and depth panels accumulate in a fixed serial order.
#pragma once

#include <cstdint>

namespace tfhpc {
class ThreadPool;
}  // namespace tfhpc

namespace tfhpc::blas {

// C(m x n) += A(m x k) * B(k x n), row-major. `beta_zero` first clears C.
// `pool` overrides the thread pool used for row-block parallelism (nullptr =
// the global pool); the ablation bench uses this for its threads axis.
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t n,
          int64_t k, bool beta_zero = true, ThreadPool* pool = nullptr);
void Gemm(const double* a, const double* b, double* c, int64_t m, int64_t n,
          int64_t k, bool beta_zero = true, ThreadPool* pool = nullptr);

// y(m) = A(m x n) * x(n), row-major. Rows are reduced with multiple
// independent accumulators; the ParallelFor grain adapts to the row length so
// tiny n doesn't over-shard and huge n doesn't under-shard.
void Gemv(const double* a, const double* x, double* y, int64_t m, int64_t n);
void Gemv(const float* a, const float* x, float* y, int64_t m, int64_t n);

}  // namespace tfhpc::blas
