#include "distrib/partition.h"

#include <algorithm>
#include <set>

#include "wire/messages.h"

namespace tfhpc::distrib {
namespace {

// Builders accumulate NodeDefs per task; nodes keep their original names so
// feeds/fetches stay valid.
struct PartitionBuilder {
  std::vector<wire::NodeDef> nodes;
  std::set<std::string> names;
};

std::string EdgeKey(const std::string& producer, int slot,
                    const std::string& consumer_task) {
  return "edge/" + producer + ":" + std::to_string(slot) + "->" +
         consumer_task;
}

std::string RecvName(const std::string& producer, int slot) {
  return "_recv/" + producer + "_" + std::to_string(slot);
}

// Node names must not contain ':' (it would parse as an output slot), so
// task addresses embedded in generated names are sanitized.
std::string SanitizeForName(std::string s) {
  for (char& c : s) {
    if (c == ':') c = '_';
  }
  return s;
}

}  // namespace

Result<PartitionResult> PartitionGraph(const Graph& graph,
                                       const ClusterSpec& cluster,
                                       const DeviceName& default_device) {
  return PartitionGraph(graph, cluster, default_device, PartitionOptions{});
}

Result<PartitionResult> PartitionGraph(const Graph& graph,
                                       const ClusterSpec& cluster,
                                       const DeviceName& default_device,
                                       const PartitionOptions& options) {
  if (default_device.job.empty() || default_device.task < 0) {
    return InvalidArgument("partitioning needs a default job/task");
  }

  // Resolve every node's owning task address.
  std::map<int, std::string> task_of;  // node id -> addr
  PartitionResult result;
  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node* n = graph.node(id);
    TFHPC_ASSIGN_OR_RETURN(DeviceName requested,
                           DeviceName::Parse(n->requested_device()));
    const DeviceName resolved = requested.MergedWith(default_device);
    TFHPC_ASSIGN_OR_RETURN(std::string addr,
                           cluster.TaskAddress(resolved.job, resolved.task));
    task_of[id] = addr;
    result.node_task[n->name()] = addr;
  }

  std::map<std::string, PartitionBuilder> builders;
  // Data _Sends as created, in deterministic creation order — the raw
  // material for send coalescing. `send_index` points into
  // result.sends[src_task] (consumer sets fill in as the loop dedups).
  struct RawDataSend {
    std::string src_task;
    std::string dst_task;
    std::string key;
    std::string input_ref;  // "producer" or "producer:slot"
    std::string send_name;
    size_t send_index;
  };
  std::vector<RawDataSend> raw_sends;
  // (producer id, slot, dst task) -> recv node name, deduplicating sends.
  std::map<std::tuple<int, int, std::string>, std::string> edge_recv;
  // Same key -> (producer task, index into result.sends[task]) so every
  // consumer of a deduplicated send is recorded in its SendDef.
  std::map<std::tuple<int, int, std::string>, std::pair<std::string, size_t>>
      edge_send;

  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node* n = graph.node(id);
    const std::string& my_task = task_of[id];
    PartitionBuilder& mine = builders[my_task];

    wire::NodeDef def = n->def();
    // Rewire inputs whose producers live on other tasks.
    for (size_t i = 0; i < def.inputs.size(); ++i) {
      const InEdge& e = n->in_edges()[i];
      const std::string& src_task = task_of[e.node_id];
      if (src_task == my_task) continue;

      const Node* producer = graph.node(e.node_id);
      const int slot = e.control ? -1 : e.output_index;
      const auto key_tuple = std::make_tuple(e.node_id, slot, my_task);
      auto it = edge_recv.find(key_tuple);
      if (it == edge_recv.end()) {
        const std::string key = EdgeKey(producer->name(), slot, my_task);
        const std::string recv_name = RecvName(producer->name(), slot);
        std::string send_name;

        // Producer side: a _Send in the source partition.
        PartitionBuilder& theirs = builders[src_task];
        if (e.control) {
          // Control edge: ship a zero-scalar token gated on the producer.
          wire::NodeDef token;
          token.name = "_token/" + producer->name() + "/" + recv_name;
          token.op = "Const";
          token.device = producer->def().device;
          token.attrs["value"] = wire::AttrValue::Str(
              wire::SerializeTensor(Tensor::Scalar<int64_t>(0)));
          token.attrs["dtype"] = wire::AttrValue::Type(DType::kI64);
          token.inputs = {"^" + producer->name()};
          wire::NodeDef send;
          send.name = "_send/" + producer->name() + "/ctrl/" + SanitizeForName(my_task);
          send_name = send.name;
          send.op = "_Send";
          send.device = producer->def().device;
          send.inputs = {token.name};
          send.attrs["key"] = wire::AttrValue::Str(key);
          send.attrs["target"] = wire::AttrValue::Str(my_task);
          theirs.nodes.push_back(std::move(token));
          theirs.nodes.push_back(std::move(send));
        } else {
          wire::NodeDef send;
          send.name = "_send/" + producer->name() + "_" +
                      std::to_string(slot) + "/" + SanitizeForName(my_task);
          send_name = send.name;
          send.op = "_Send";
          send.device = producer->def().device;
          send.inputs = {slot == 0 ? producer->name()
                                   : producer->name() + ":" +
                                         std::to_string(slot)};
          send.attrs["key"] = wire::AttrValue::Str(key);
          send.attrs["target"] = wire::AttrValue::Str(my_task);
          theirs.nodes.push_back(std::move(send));
        }

        // Consumer side: a _Recv in this partition.
        wire::NodeDef recv;
        recv.name = recv_name;
        recv.op = "_Recv";
        recv.device = def.device;
        recv.attrs["key"] = wire::AttrValue::Str(key);
        mine.nodes.push_back(std::move(recv));
        it = edge_recv.emplace(key_tuple, recv_name).first;

        auto& sends = result.sends[src_task];
        sends.push_back(SendDef{send_name, producer->name(), e.control,
                                {n->name()}});
        edge_send.emplace(key_tuple,
                          std::make_pair(src_task, sends.size() - 1));
        if (!e.control) {
          raw_sends.push_back(RawDataSend{
              src_task, my_task, key,
              slot == 0 ? producer->name()
                        : producer->name() + ":" + std::to_string(slot),
              send_name, sends.size() - 1});
        }
      } else {
        const auto& [send_task, idx] = edge_send.at(key_tuple);
        result.sends[send_task][idx].consumers.push_back(n->name());
      }
      def.inputs[i] = e.control ? "^" + it->second : it->second;
    }
    mine.nodes.push_back(std::move(def));
  }

  if (options.coalesce_sends) {
    // Group data sends by (src task, dst task, consumer set) and collapse
    // each group of two or more into one _PackedSend carrying every
    // member's tensor. Consumer sets must match exactly — see
    // PartitionOptions::coalesce_sends for why that keeps pruning sound.
    std::map<std::string, std::vector<const RawDataSend*>> groups;
    for (const RawDataSend& rs : raw_sends) {
      std::vector<std::string> consumers =
          result.sends[rs.src_task][rs.send_index].consumers;
      std::sort(consumers.begin(), consumers.end());
      consumers.erase(std::unique(consumers.begin(), consumers.end()),
                      consumers.end());
      std::string gkey = rs.src_task + '\x1e' + rs.dst_task + '\x1e';
      for (const std::string& c : consumers) gkey += c + '\x1f';
      groups[gkey].push_back(&rs);
    }

    // src task -> names of member _Send nodes replaced by a packed node.
    std::map<std::string, std::set<std::string>> absorbed;
    // src task -> packed SendDefs to append after filtering members out.
    std::map<std::string, std::vector<SendDef>> packed_defs;
    std::map<std::string, int> pair_counter;  // "<src>\x1e<dst>" -> ordinal

    for (const auto& [gkey, members] : groups) {
      if (members.size() < 2) continue;
      const std::string& src_task = members.front()->src_task;
      const std::string& dst_task = members.front()->dst_task;
      PartitionBuilder& theirs = builders[src_task];

      const int ordinal = pair_counter[src_task + '\x1e' + dst_task]++;
      wire::NodeDef packed;
      packed.name = "_packed_send/" + SanitizeForName(src_task) + "/" +
                    SanitizeForName(dst_task) + "/" + std::to_string(ordinal);
      packed.op = "_PackedSend";
      std::string keys;
      SendDef merged;
      merged.name = packed.name;
      // Representative producer: the first member's (the full key list is in
      // the node's "keys" attr; SendDef.producer is diagnostic only).
      merged.producer = members.front()->input_ref.substr(
          0, members.front()->input_ref.find(':'));
      for (const RawDataSend* rs : members) {
        packed.inputs.push_back(rs->input_ref);
        if (!keys.empty()) keys += '\x1f';
        keys += rs->key;
        absorbed[src_task].insert(rs->send_name);
        const SendDef& member = result.sends[src_task][rs->send_index];
        merged.consumers.insert(merged.consumers.end(),
                                member.consumers.begin(),
                                member.consumers.end());
        // All members carry the same device family (their producers' task);
        // the packed node runs where the first member would have.
        if (packed.device.empty()) {
          for (const wire::NodeDef& nd : theirs.nodes) {
            if (nd.name == rs->send_name) {
              packed.device = nd.device;
              break;
            }
          }
        }
      }
      std::sort(merged.consumers.begin(), merged.consumers.end());
      merged.consumers.erase(
          std::unique(merged.consumers.begin(), merged.consumers.end()),
          merged.consumers.end());
      packed.attrs["keys"] = wire::AttrValue::Str(keys);
      packed.attrs["target"] = wire::AttrValue::Str(dst_task);
      theirs.nodes.push_back(std::move(packed));
      packed_defs[src_task].push_back(std::move(merged));
    }

    for (auto& [src_task, names] : absorbed) {
      std::vector<wire::NodeDef>& nodes = builders[src_task].nodes;
      nodes.erase(std::remove_if(nodes.begin(), nodes.end(),
                                 [&names](const wire::NodeDef& nd) {
                                   return names.count(nd.name) > 0;
                                 }),
                  nodes.end());
      std::vector<SendDef>& sends = result.sends[src_task];
      sends.erase(std::remove_if(sends.begin(), sends.end(),
                                 [&names](const SendDef& sd) {
                                   return names.count(sd.name) > 0;
                                 }),
                  sends.end());
      for (SendDef& sd : packed_defs[src_task]) {
        sends.push_back(std::move(sd));
      }
    }
  }

  // Order each partition topologically: recvs/tokens/sends were appended in
  // producer-before-consumer order EXCEPT sends appended to a partition
  // after later nodes were added. Rebuild order by (a) stable-partitioning:
  // Graph::FromGraphDef validates inputs-first, so sort by dependency with
  // a simple fixpoint insertion.
  for (auto& [addr, builder] : builders) {
    std::vector<wire::NodeDef> ordered;
    std::set<std::string> placed;
    std::vector<wire::NodeDef> pending = std::move(builder.nodes);
    while (!pending.empty()) {
      const size_t before = pending.size();
      std::vector<wire::NodeDef> still;
      for (auto& nd : pending) {
        bool ready = true;
        for (const std::string& input : nd.inputs) {
          std::string name = input;
          if (!name.empty() && name[0] == '^') name = name.substr(1);
          const size_t colon = name.find(':');
          if (colon != std::string::npos) name = name.substr(0, colon);
          if (!placed.count(name)) {
            ready = false;
            break;
          }
        }
        if (ready) {
          placed.insert(nd.name);
          ordered.push_back(std::move(nd));
        } else {
          still.push_back(std::move(nd));
        }
      }
      if (still.size() == before) {
        return Internal("partition for " + addr +
                        " has a dependency cycle after send/recv insertion");
      }
      pending = std::move(still);
    }
    wire::GraphDef part;
    part.nodes = std::move(ordered);
    result.partitions.emplace(addr, std::move(part));
  }
  return result;
}

}  // namespace tfhpc::distrib
