# Empty dependencies file for fig8_matmul.
# This may be replaced when dependencies are built.
