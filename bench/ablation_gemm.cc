// GEMM ablation: the pre-PR auto-vectorized i-k-j blocked loop ("loop")
// versus the packed register-tiled kernel ("packed", the production
// blas::Gemm) across sizes × dtypes × thread counts, wall-clock Gflops/s.
// Also gates numerics: both variants are checked against a naive triple-loop
// reference; tolerance 1e-5*k (f32) / 1e-12*k (f64) absolute on inputs in
// [-1, 1]. Writes BENCH_gemm.json.
//
//   ./ablation_gemm            # full matrix up to 1024^3, asserts the
//                              # packed f32 kernel >= 2x the loop at 1024
//   ./ablation_gemm --smoke    # CI leg: small sizes, numerics gate only
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/threadpool.h"
#include "kernels/gemm.h"

namespace {

using tfhpc::ThreadPool;

// The pre-PR kernel, verbatim: cache-blocked i-k-j with the j-loop left to
// the auto-vectorizer, parallelized over kMc row panels.
namespace loop {
constexpr int64_t kMc = 64, kKc = 256, kNc = 512;

template <typename T>
void GemmPanel(const T* a, const T* b, T* c, int64_t r0, int64_t r1, int64_t n,
               int64_t k) {
  for (int64_t kk = 0; kk < k; kk += kKc) {
    const int64_t kend = std::min(k, kk + kKc);
    for (int64_t jj = 0; jj < n; jj += kNc) {
      const int64_t jend = std::min(n, jj + kNc);
      for (int64_t i = r0; i < r1; ++i) {
        T* crow = c + i * n;
        const T* arow = a + i * k;
        for (int64_t p = kk; p < kend; ++p) {
          const T av = arow[p];
          const T* brow = b + p * n;
          for (int64_t j = jj; j < jend; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

template <typename T>
void Gemm(const T* a, const T* b, T* c, int64_t m, int64_t n, int64_t k,
          ThreadPool* pool) {
  std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(T));
  pool->ParallelFor((m + kMc - 1) / kMc, 1, [&](int64_t pb, int64_t pe) {
    for (int64_t p = pb; p < pe; ++p) {
      GemmPanel(a, b, c, p * kMc, std::min(m, (p + 1) * kMc), n, k);
    }
  });
}
}  // namespace loop

template <typename T>
void FillOperands(std::vector<T>& a, std::vector<T>& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<T>(std::sin(0.001 * static_cast<double>(i)));
  }
  for (size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<T>(std::cos(0.001 * static_cast<double>(i)));
  }
}

template <typename F>
double BestGflops(F run, int64_t n, int reps) {
  double best_s = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
  }
  return 2.0 * static_cast<double>(n) * static_cast<double>(n) *
         static_cast<double>(n) / best_s / 1e9;
}

// max|packed - naive triple loop| at size n; both dtypes share this shape.
template <typename T>
double MaxDiffVsNaive(int64_t n) {
  std::vector<T> a(static_cast<size_t>(n * n)), b(static_cast<size_t>(n * n)),
      c(static_cast<size_t>(n * n));
  FillOperands(a, b);
  tfhpc::blas::Gemm(a.data(), b.data(), c.data(), n, n, n);
  double md = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double ref = 0;
      for (int64_t p = 0; p < n; ++p) {
        ref += static_cast<double>(a[static_cast<size_t>(i * n + p)]) *
               static_cast<double>(b[static_cast<size_t>(p * n + j)]);
      }
      // The naive reference accumulates in f64 either way; compare in the
      // working dtype so the tolerance reflects kernel-vs-kernel ordering,
      // not f32 accumulation error.
      md = std::max(md, std::abs(static_cast<double>(
                            c[static_cast<size_t>(i * n + j)]) -
                        static_cast<double>(static_cast<T>(ref))));
    }
  }
  return md;
}

template <typename T>
void RunDtype(const char* dtype, const std::vector<int64_t>& sizes,
              const std::vector<int>& threads, int reps,
              tfhpc::bench::JsonResults& json, double* speedup_1024_f32) {
  for (int64_t n : sizes) {
    std::vector<T> a(static_cast<size_t>(n * n)),
        b(static_cast<size_t>(n * n)), c(static_cast<size_t>(n * n));
    FillOperands(a, b);
    for (int nt : threads) {
      ThreadPool pool(nt, "gemmbench");
      const double g_loop = BestGflops(
          [&] { loop::Gemm(a.data(), b.data(), c.data(), n, n, n, &pool); }, n,
          reps);
      const double g_packed = BestGflops(
          [&] {
            tfhpc::blas::Gemm(a.data(), b.data(), c.data(), n, n, n,
                              /*beta_zero=*/true, &pool);
          },
          n, reps);
      const double speedup = g_packed / g_loop;
      std::printf("%-4s n=%5lld threads=%d  loop %7.2f GF  packed %7.2f GF  "
                  "speedup %5.2fx\n",
                  dtype, static_cast<long long>(n), nt, g_loop, g_packed,
                  speedup);
      json.Record()
          .Str("dtype", dtype)
          .Num("n", static_cast<double>(n))
          .Num("threads", nt)
          .Num("gflops_loop", g_loop)
          .Num("gflops_packed", g_packed)
          .Num("speedup", speedup);
      if (speedup_1024_f32 != nullptr && n == 1024 &&
          std::string(dtype) == "f32") {
        *speedup_1024_f32 = std::max(*speedup_1024_f32, speedup);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  tfhpc::bench::Header("GEMM ablation: i-k-j loop vs packed register tiles",
                       "Fig. 8 single-node compute substrate");

  const std::vector<int64_t> sizes =
      smoke ? std::vector<int64_t>{128, 256}
            : std::vector<int64_t>{128, 256, 512, 1024};
  const std::vector<int> threads =
      smoke ? std::vector<int>{1} : std::vector<int>{1, 2, 4};
  const int reps = smoke ? 1 : 3;

  tfhpc::bench::JsonResults json("gemm");
  json.Meta("mode", smoke ? "smoke" : "full");
  json.Meta("tol_f32_per_k", 1e-5);
  json.Meta("tol_f64_per_k", 1e-12);

  // Numerics gate first: packed kernel vs naive triple loop.
  const int64_t nv = smoke ? 192 : 384;  // off-tile sizes exercise tails
  const double diff32 = MaxDiffVsNaive<float>(nv);
  const double diff64 = MaxDiffVsNaive<double>(nv);
  const double tol32 = 1e-5 * static_cast<double>(nv);
  const double tol64 = 1e-12 * static_cast<double>(nv);
  std::printf("numerics vs naive (n=%lld): f32 max|diff| %.3g (tol %.3g), "
              "f64 %.3g (tol %.3g)\n",
              static_cast<long long>(nv), diff32, tol32, diff64, tol64);
  json.Meta("naive_check_n", static_cast<double>(nv));
  json.Meta("max_diff_f32", diff32);
  json.Meta("max_diff_f64", diff64);
  if (diff32 > tol32 || diff64 > tol64) {
    std::fprintf(stderr, "FAIL: packed GEMM diverges from naive reference\n");
    return 2;
  }

  tfhpc::bench::Rule();
  double speedup_1024_f32 = 0;
  tfhpc::bench::JsonResults& j = json;
  RunDtype<float>("f32", sizes, threads, reps, j, &speedup_1024_f32);
  RunDtype<double>("f64", sizes, threads, reps, j, nullptr);
  tfhpc::bench::Rule();

  if (!smoke) {
    json.Meta("speedup_1024_f32", speedup_1024_f32);
    std::printf("f32 1024^3 packed vs loop: %.2fx (acceptance floor 2x)\n",
                speedup_1024_f32);
    if (speedup_1024_f32 < 2.0) {
      std::fprintf(stderr, "FAIL: packed f32 GEMM below 2x at 1024^3\n");
      json.WriteFile("BENCH_gemm.json");
      return 2;
    }
  }
  if (!json.WriteFile("BENCH_gemm.json")) return 1;
  std::printf("gemm ablation: numerics OK%s\n",
              smoke ? " (smoke)" : ", speedup floor met");
  return 0;
}
