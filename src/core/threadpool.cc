#include "core/threadpool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>

#include "core/logging.h"

namespace tfhpc {

ThreadPool::ThreadPool(int num_threads, std::string name)
    : name_(std::move(name)) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 4;
  }
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    TFHPC_CHECK(!shutdown_) << "Schedule after shutdown on pool " << name_;
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and drained
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn();
  }
}

bool ThreadPool::InPool() const {
  const auto self = std::this_thread::get_id();
  return std::any_of(threads_.begin(), threads_.end(),
                     [&](const std::thread& t) { return t.get_id() == self; });
}

void ThreadPool::ParallelFor(int64_t total, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (total <= 0) return;
  grain = std::max<int64_t>(grain, 1);
  const int64_t max_chunks = std::max<int64_t>(1, num_threads() * 4);
  const int64_t chunk =
      std::max(grain, (total + max_chunks - 1) / max_chunks);
  const int64_t num_chunks = (total + chunk - 1) / chunk;

  if (num_chunks == 1 || InPool()) {
    // Inline execution: either not worth dispatching, or we are already on a
    // pool thread (blocking here on pool work could deadlock the pool).
    fn(0, total);
    return;
  }

  std::atomic<int64_t> remaining{num_chunks};
  std::mutex done_mu;
  std::condition_variable done_cv;
  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t begin = c * chunk;
    const int64_t end = std::min(total, begin + chunk);
    Schedule([&, begin, end] {
      fn(begin, end);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(done_mu);
        done_cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lk(done_mu);
  done_cv.wait(lk, [&] { return remaining.load(std::memory_order_acquire) == 0; });
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(0, "global");
  return *pool;
}

}  // namespace tfhpc
