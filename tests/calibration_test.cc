// Calibration regression tests: the headline numbers EXPERIMENTS.md reports
// against the paper, locked into bands so machine-model edits that silently
// break a reproduced figure fail CI rather than EXPERIMENTS.md. Bands are
// deliberately loose (the claim is shape, not digits) but tight enough to
// catch a mis-scaled constant.
#include <gtest/gtest.h>

#include "apps/cg.h"
#include "apps/fft.h"
#include "apps/stream.h"
#include "apps/tiled_matmul.h"

namespace tfhpc::apps {
namespace {

double StreamMbps(const sim::MachineConfig& cfg, sim::Protocol proto,
                  bool gpu_resident, int64_t bytes = 128 << 20) {
  StreamOptions opts;
  opts.message_bytes = bytes;
  opts.rounds = 100;
  opts.gpu_resident = gpu_resident;
  auto r = SimulateStream(cfg, proto, opts);
  TFHPC_CHECK(r.ok()) << r.status().ToString();
  return r->mbps;
}

// ---- Fig. 7 bands (paper-quoted values in comments) --------------------------------

TEST(CalibrationFig7, TegnerGpuRdmaSaturatesNear1300) {
  const double mbps = StreamMbps(sim::TegnerConfig(sim::GpuKind::kK420),
                                 sim::Protocol::kRdma, true);
  EXPECT_GT(mbps, 1100);  // paper: ~1300
  EXPECT_LT(mbps, 1500);
}

TEST(CalibrationFig7, TegnerGpuMpiNear318) {
  const double mbps = StreamMbps(sim::TegnerConfig(sim::GpuKind::kK420),
                                 sim::Protocol::kMpi, true);
  EXPECT_GT(mbps, 280);  // paper: ~318
  EXPECT_LT(mbps, 360);
}

TEST(CalibrationFig7, TegnerCpuRdmaAboveHalfOfEdr) {
  const double mbps = StreamMbps(sim::TegnerConfig(sim::GpuKind::kK420),
                                 sim::Protocol::kRdma, false);
  EXPECT_GT(mbps, 6000);   // paper: >6 GB/s = >50% of 12 GB/s
  EXPECT_LT(mbps, 12000);  // never above theoretical
}

TEST(CalibrationFig7, KebnekaiseGpuRdmaBelow2300) {
  const double mbps = StreamMbps(sim::KebnekaiseConfig(sim::GpuKind::kK80),
                                 sim::Protocol::kRdma, true);
  EXPECT_GT(mbps, 1900);
  EXPECT_LT(mbps, 2300);  // paper: saturates below 2300
}

TEST(CalibrationFig7, KebnekaiseMpiNear480AndGrpcComparable) {
  const auto cfg = sim::KebnekaiseConfig(sim::GpuKind::kK80);
  const double mpi = StreamMbps(cfg, sim::Protocol::kMpi, true);
  const double grpc = StreamMbps(cfg, sim::Protocol::kGrpc, true);
  EXPECT_GT(mpi, 420);  // paper: ~480
  EXPECT_LT(mpi, 540);
  EXPECT_NEAR(grpc, mpi, 0.15 * mpi);  // paper: "similar bandwidth to MPI"
}

// ---- Fig. 8 bands -------------------------------------------------------------------

double MatmulGflops(const sim::MachineConfig& cfg, int64_t n, int64_t tile,
                    int gpus) {
  TiledMatmulOptions opts;
  opts.n = n;
  opts.tile = tile;
  opts.num_workers = gpus;
  auto r = SimulateTiledMatmul(cfg, sim::Protocol::kRdma, opts);
  TFHPC_CHECK(r.ok()) << r.status().ToString();
  return r->gflops;
}

TEST(CalibrationFig8, TegnerK420DoublesPerGpuDoubling) {
  const auto cfg = sim::TegnerConfig(sim::GpuKind::kK420);
  const double g2 = MatmulGflops(cfg, 32768, 4096, 2);
  const double g4 = MatmulGflops(cfg, 32768, 4096, 4);
  const double g8 = MatmulGflops(cfg, 32768, 4096, 8);
  EXPECT_NEAR(g4 / g2, 2.0, 0.25);  // paper: ~2x
  EXPECT_NEAR(g8 / g4, 2.0, 0.25);  // paper: ~2x
}

TEST(CalibrationFig8, KebnekaiseCollapsesAtTwoToFour) {
  const auto cfg = sim::KebnekaiseConfig(sim::GpuKind::kK80);
  const double speedup = MatmulGflops(cfg, 32768, 8192, 4) /
                         MatmulGflops(cfg, 32768, 8192, 2);
  EXPECT_GT(speedup, 1.15);  // paper: ~1.4
  EXPECT_LT(speedup, 1.65);
}

// ---- Fig. 10 bands -------------------------------------------------------------------

double CgGflops(const sim::MachineConfig& cfg, int64_t n, int gpus) {
  CgOptions opts;
  opts.n = n;
  opts.num_workers = gpus;
  opts.max_iterations = 100;  // the pattern repeats; 100 is representative
  auto r = SimulateCg(cfg, sim::Protocol::kRdma, opts);
  TFHPC_CHECK(r.ok()) << r.status().ToString();
  return r->gflops;
}

TEST(CalibrationFig10, KebnekaiseK80Ladder) {
  const auto cfg = sim::KebnekaiseConfig(sim::GpuKind::kK80);
  const double g2 = CgGflops(cfg, 32768, 2);
  const double g4 = CgGflops(cfg, 32768, 4);
  const double g8 = CgGflops(cfg, 32768, 8);
  EXPECT_NEAR(g4 / g2, 1.6, 0.2);   // paper: 1.6
  EXPECT_NEAR(g8 / g4, 1.35, 0.2);  // paper: 1.3
}

TEST(CalibrationFig10, V100Ladder) {
  const auto cfg = sim::KebnekaiseConfig(sim::GpuKind::kV100);
  const double g2 = CgGflops(cfg, 32768, 2);
  const double g4 = CgGflops(cfg, 32768, 4);
  const double g8 = CgGflops(cfg, 32768, 8);
  EXPECT_NEAR(g4 / g2, 1.3, 0.15);  // paper: 1.26
  EXPECT_NEAR(g8 / g4, 1.16, 0.15); // paper: 1.16
  EXPECT_GT(g8, 300);               // paper: 8xV100 > 300 Gflops/s
}

TEST(CalibrationFig10, SixteenKBarelyScales) {
  const auto cfg = sim::KebnekaiseConfig(sim::GpuKind::kV100);
  EXPECT_LT(CgGflops(cfg, 16384, 4) / CgGflops(cfg, 16384, 2), 1.25);
}

// ---- Fig. 11 bands -------------------------------------------------------------------

double FftGflops(const sim::MachineConfig& cfg, int64_t n, int64_t tiles,
                 int gpus) {
  FftOptions opts;
  opts.signal_size = n;
  opts.num_tiles = tiles;
  opts.num_workers = gpus;
  auto r = SimulateFft(cfg, sim::Protocol::kRdma, opts);
  TFHPC_CHECK(r.ok()) << r.status().ToString();
  return r->gflops;
}

TEST(CalibrationFig11, K80ScalesThenFlattens) {
  const auto cfg = sim::TegnerConfig(sim::GpuKind::kK80);
  const double g2 = FftGflops(cfg, int64_t{1} << 31, 128, 2);
  const double g4 = FftGflops(cfg, int64_t{1} << 31, 128, 4);
  const double g8 = FftGflops(cfg, int64_t{1} << 31, 128, 8);
  EXPECT_GT(g4 / g2, 1.4);   // paper: 1.6-1.8
  EXPECT_LT(g4 / g2, 2.0);
  EXPECT_LT(g8 / g4, 1.25);  // paper: clearly flattens
}

TEST(CalibrationFig11, AbsoluteRangePlausible) {
  // Paper's Fig. 11 y-axis spans 0-35 Gflops/s.
  const double g = FftGflops(sim::TegnerConfig(sim::GpuKind::kK80),
                             int64_t{1} << 31, 128, 4);
  EXPECT_GT(g, 5);
  EXPECT_LT(g, 40);
}

}  // namespace
}  // namespace tfhpc::apps
