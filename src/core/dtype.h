// Element data types supported by tfhpc tensors, mirroring the subset of
// TensorFlow dtypes the paper's applications need: f32 (matmul), f64 (CG),
// complex128 (FFT), plus integer index types.
#pragma once

#include <complex>
#include <cstdint>
#include <string>

namespace tfhpc {

enum class DType : uint8_t {
  kInvalid = 0,
  kF32,
  kF64,
  kC64,   // complex<float>
  kC128,  // complex<double>
  kI32,
  kI64,
  kU8,
  kBool,
};

// Size in bytes of one element of `dtype`.
size_t DTypeSize(DType dtype);
// Human-readable name ("float32", ...). Matches NumPy naming where possible.
const char* DTypeName(DType dtype);
// Inverse of DTypeName; returns kInvalid on unknown names.
DType DTypeFromName(const std::string& name);
// True for f32/f64/c64/c128.
bool IsFloating(DType dtype);
bool IsComplex(DType dtype);
// True when `raw` is one of the defined dtype enum values (excluding
// kInvalid) — used by deserializers before trusting wire data.
bool IsKnownDType(uint64_t raw);

// Compile-time mapping C++ type -> DType.
template <typename T>
struct DTypeOf;
template <> struct DTypeOf<float> { static constexpr DType value = DType::kF32; };
template <> struct DTypeOf<double> { static constexpr DType value = DType::kF64; };
template <> struct DTypeOf<std::complex<float>> {
  static constexpr DType value = DType::kC64;
};
template <> struct DTypeOf<std::complex<double>> {
  static constexpr DType value = DType::kC128;
};
template <> struct DTypeOf<int32_t> { static constexpr DType value = DType::kI32; };
template <> struct DTypeOf<int64_t> { static constexpr DType value = DType::kI64; };
template <> struct DTypeOf<uint8_t> { static constexpr DType value = DType::kU8; };
template <> struct DTypeOf<bool> { static constexpr DType value = DType::kBool; };

template <typename T>
inline constexpr DType kDTypeOf = DTypeOf<T>::value;

}  // namespace tfhpc
