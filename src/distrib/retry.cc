#include "distrib/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/rng.h"

namespace tfhpc::distrib {

namespace {
int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

RetryPolicy RetryPolicy::Aggressive(int64_t deadline_ms) {
  RetryPolicy p;
  p.max_attempts = 1 << 20;  // deadline-bound, not attempt-bound
  p.initial_backoff_ms = 1;
  p.max_backoff_ms = 16;
  p.deadline_ms = deadline_ms;
  return p;
}

RetryPolicy ClampToRemaining(RetryPolicy base, int64_t remaining_ms) {
  if (remaining_ms <= 0) remaining_ms = 1;
  if (base.deadline_ms <= 0 || remaining_ms < base.deadline_ms) {
    base.deadline_ms = remaining_ms;
  }
  return base;
}

bool IsRetryableCode(Code code) {
  // kUnavailable covers lost requests, lost responses, corrupted frames and
  // partitioned/unbound addresses — all transient in a cluster where the
  // rank may come back. Every other code is either a caller bug
  // (InvalidArgument, NotFound), a permanent condition (ResourceExhausted:
  // the 2 GB GraphDef ceiling), or fault fallout that the step-level
  // recovery in DistributedSession owns (Cancelled, DeadlineExceeded).
  return code == Code::kUnavailable;
}

bool IsRetryable(const Status& status) {
  // Pool-pressure OOM is transient — siblings finishing return capacity —
  // so it earns a backoff-and-retry; budget breaches stay permanent.
  return IsRetryableCode(status.code()) ||
         IsTransientResourceExhausted(status);
}

RetryState::RetryState(const RetryPolicy& policy, uint64_t call_key)
    : policy_(policy),
      call_key_(call_key),
      backoff_ms_(std::max<int64_t>(policy.initial_backoff_ms, 0)),
      start_ns_(NowNs()) {}

int64_t RetryState::elapsed_ms() const {
  return (NowNs() - start_ns_) / 1000000;
}

bool RetryState::BackoffAndRetry(const Status& last, Status* final) {
  ++attempts_;
  if (!IsRetryable(last)) {
    *final = last;
    return false;
  }
  if (attempts_ >= policy_.max_attempts) {
    *final = last;
    return false;
  }
  // Jittered backoff: uniform in [backoff*(1-jitter), backoff].
  int64_t sleep_ms = backoff_ms_;
  if (policy_.jitter > 0 && sleep_ms > 0) {
    Philox philox(policy_.seed ^ call_key_);
    const double u = UniformFloat(philox(static_cast<uint64_t>(attempts_)).v[0]);
    sleep_ms -= static_cast<int64_t>(policy_.jitter * u *
                                     static_cast<double>(sleep_ms));
  }
  if (policy_.deadline_ms > 0 &&
      elapsed_ms() + sleep_ms >= policy_.deadline_ms) {
    *final = DeadlineExceeded(
        "deadline of " + std::to_string(policy_.deadline_ms) + "ms exceeded after " +
        std::to_string(attempts_) + " attempt(s); last error: " + last.ToString());
    return false;
  }
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  backoff_ms_ = std::min<int64_t>(
      policy_.max_backoff_ms,
      static_cast<int64_t>(static_cast<double>(backoff_ms_) *
                           policy_.backoff_multiplier) +
          1);
  return true;
}

Status CallWithRetry(const RetryPolicy& policy, uint64_t call_key,
                     const std::function<Status()>& attempt,
                     int64_t* retries_out) {
  RetryState state(policy, call_key);
  int64_t calls = 0;
  for (;;) {
    ++calls;
    Status st = attempt();
    if (st.ok()) {
      if (retries_out != nullptr) *retries_out += calls - 1;
      return st;
    }
    Status final;
    if (!state.BackoffAndRetry(st, &final)) {
      if (retries_out != nullptr) *retries_out += calls - 1;
      return final;
    }
  }
}

}  // namespace tfhpc::distrib
