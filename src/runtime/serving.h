// ServingController: admission control for multi-tenant step execution —
// the overload-protection layer in front of Session::Run / Server::RunStep.
//
// The paper's "millions of users" serving direction (and ROADMAP item 1)
// needs the runtime to degrade *predictably* under overload: a bounded
// number of steps execute concurrently, a bounded number wait in an
// admission queue with per-client fair dequeue (one slow tenant cannot
// monopolize the grant order), and everything beyond that is shed
// immediately with kUnavailable plus a retry-after hint. Queued waiters
// honor their step's CancellationToken, so an impatient client's ticket
// evaporates instead of occupying queue space.
//
// Shed-vs-queue policy: queue while the wait is likely shorter than the
// caller's patience (bounded by max_queued), shed the moment the queue is
// full — rejecting in microseconds is strictly better than timing out
// after seconds (the retried request lands on a drained server).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "core/status.h"
#include "core/thread_annotations.h"
#include "runtime/cancellation.h"

namespace tfhpc {

struct ServingOptions {
  // Steps executing concurrently; further admissions queue.
  int max_inflight = 8;
  // Waiting admissions across all clients; beyond this, load is shed.
  int max_queued = 64;
  // Retry-after hint (ms) embedded in the kUnavailable shed status.
  int64_t retry_after_ms = 50;
  // Memory-aware admission: total estimated bytes of concurrently executing
  // steps (from GraphCheck's inferred static shapes, see
  // Executable::estimated_bytes). 0 = no byte budget. A step that fits the
  // budget but not the current headroom queues like any other admission; a
  // step whose estimate exceeds the whole budget can never run here and is
  // rejected with *permanent* kResourceExhausted.
  int64_t max_estimated_bytes = 0;
};

struct ServingStats {
  int64_t admitted = 0;        // granted an execution slot
  int64_t shed = 0;            // rejected kUnavailable (queue full)
  int64_t expired_in_queue = 0;  // ticket cancelled or deadlined while queued
  int64_t completed = 0;       // Release() calls
  int64_t rejected_oversize = 0;  // estimate alone exceeds the byte budget
  int inflight = 0;            // current executing steps
  int queued = 0;              // current waiting tickets
  int64_t inflight_bytes = 0;  // estimated bytes of executing steps
};

class ServingController {
 public:
  explicit ServingController(ServingOptions options = {});

  // Acquires an execution slot for one step of `client_id`. Returns OK when
  // granted (the caller MUST pair it with Release(estimated_bytes), same
  // value); blocks in the fair admission queue while the server is at
  // max_inflight or the byte budget lacks headroom for `estimated_bytes`;
  // fails fast with kUnavailable when the queue is full, with permanent
  // kResourceExhausted when the estimate can never fit the budget, and with
  // the token's status if it cancels or its deadline passes while waiting.
  // New arrivals never barge past queued tickets even when a slot is free.
  Status Admit(const std::string& client_id, CancellationToken* token,
               int64_t estimated_bytes = 0);
  void Release(int64_t estimated_bytes = 0);

  ServingStats stats() const;
  const ServingOptions& options() const { return options_; }

  // RAII slot: admits on construction, releases on destruction iff admitted.
  class Slot {
   public:
    Slot(ServingController* controller, const std::string& client_id,
         CancellationToken* token, int64_t estimated_bytes = 0)
        : controller_(controller),
          estimated_bytes_(estimated_bytes),
          status_(controller->Admit(client_id, token, estimated_bytes)) {}
    ~Slot() {
      if (status_.ok()) controller_->Release(estimated_bytes_);
    }
    Slot(const Slot&) = delete;
    Slot& operator=(const Slot&) = delete;
    const Status& status() const { return status_; }

   private:
    ServingController* controller_;
    int64_t estimated_bytes_;
    Status status_;
  };

 private:
  struct Ticket {
    bool granted = false;
    int64_t bytes = 0;
  };

  // Grants free slots to queued tickets, round-robin across clients with
  // non-empty queues.
  void GrantNextLocked() TFHPC_REQUIRES(mu_);
  // Removes `t` from its client's queue (it was not granted).
  void RemoveTicketLocked(const std::string& client_id, Ticket* t)
      TFHPC_REQUIRES(mu_);

  // True when `bytes` more estimated bytes fit the byte budget.
  bool BytesFitLocked(int64_t bytes) const TFHPC_REQUIRES(mu_) {
    return options_.max_estimated_bytes <= 0 ||
           inflight_bytes_ + bytes <= options_.max_estimated_bytes;
  }

  const ServingOptions options_;
  mutable Mutex mu_;
  // _any: waits on a MutexLock (BasicLockable) so mu_ keeps its capability
  // annotation through the cv handoff.
  std::condition_variable_any cv_;
  int inflight_ TFHPC_GUARDED_BY(mu_) = 0;
  int queued_ TFHPC_GUARDED_BY(mu_) = 0;
  int64_t inflight_bytes_ TFHPC_GUARDED_BY(mu_) = 0;
  // Per-client FIFO of waiting tickets (pointers into Admit stack frames —
  // valid because Admit never returns while its ticket is queued), plus a
  // round-robin cursor over client ids for the fair grant order.
  std::map<std::string, std::deque<Ticket*>> queues_ TFHPC_GUARDED_BY(mu_);
  // Last client granted; the next grant starts after it.
  std::string rr_cursor_ TFHPC_GUARDED_BY(mu_);
  ServingStats stats_ TFHPC_GUARDED_BY(mu_);
};

}  // namespace tfhpc
