# Empty compiler generated dependencies file for array_kernels_test.
# This may be replaced when dependencies are built.
