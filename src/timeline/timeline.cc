#include "timeline/timeline.h"

#include <fstream>
#include <map>
#include <sstream>

namespace tfhpc::timeline {
namespace {

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ToChromeTraceJson(const std::vector<TraceEvent>& events) {
  // Tracks become numeric pids with name metadata, matching how TensorFlow's
  // Timeline labels device rows.
  std::map<std::string, int> pids;
  for (const auto& e : events) {
    pids.emplace(e.track, static_cast<int>(pids.size()));
  }
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, pid] : pids) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"name\":\"process_name\",\"args\":{\"name\":\"" << Escape(track)
       << "\"}}";
  }
  for (const auto& e : events) {
    os << ",{\"ph\":\"X\",\"pid\":" << pids[e.track]
       << ",\"tid\":0,\"ts\":" << e.start_us << ",\"dur\":" << e.duration_us
       << ",\"name\":\"" << Escape(e.name) << "\",\"cat\":\""
       << Escape(e.category.empty() ? "op" : e.category) << "\"}";
  }
  os << "]}";
  return os.str();
}

std::vector<TraceEvent> FromRunMetadata(const RunMetadata& metadata) {
  std::vector<TraceEvent> events;
  events.reserve(metadata.nodes.size());
  for (const auto& n : metadata.nodes) {
    TraceEvent e;
    e.name = n.name + " (" + n.op + ")";
    e.category = n.op;
    e.track = n.device;
    e.start_us = n.start_us;
    e.duration_us = std::max(0.01, n.end_us - n.start_us);
    events.push_back(std::move(e));
  }
  return events;
}

std::vector<TraceEvent> FromReplay(const sim::ReplayResult& result,
                                   const std::vector<std::string>& labels,
                                   const std::vector<std::string>& tracks) {
  std::vector<TraceEvent> events;
  events.reserve(result.timings.size());
  for (size_t i = 0; i < result.timings.size(); ++i) {
    TraceEvent e;
    e.name = i < labels.size() && !labels[i].empty()
                 ? labels[i]
                 : "op" + std::to_string(i);
    e.track = i < tracks.size() && !tracks[i].empty() ? tracks[i] : "sim";
    e.start_us = result.timings[i].start * 1e6;
    e.duration_us =
        std::max(0.01, (result.timings[i].finish - result.timings[i].start) * 1e6);
    events.push_back(std::move(e));
  }
  return events;
}

Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceEvent>& events) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Unavailable("cannot open " + path);
  f << ToChromeTraceJson(events);
  if (!f) return Unavailable("write failed for " + path);
  return Status::OK();
}

}  // namespace tfhpc::timeline
