#include "distrib/dist_session.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "io/checkpoint.h"

namespace tfhpc::distrib {

std::string FaultReport::ToString() const {
  std::string out = "FaultReport{attempts=" + std::to_string(step_attempts) +
                    ", rpc_retries=" + std::to_string(rpc_retries);
  if (!failed_partition.empty()) out += ", failed=" + failed_partition;
  if (!first_error.ok()) out += ", first_error=" + first_error.ToString();
  if (checkpoint_saved) out += ", checkpoint_saved";
  if (variables_restored > 0) {
    out += ", vars_restored=" + std::to_string(variables_restored);
  }
  out += recovered ? ", recovered" : ", not_recovered";
  out += ", final=" + final_status.ToString() + "}";
  return out;
}

Result<std::unique_ptr<DistributedSession>> DistributedSession::Create(
    InProcessRouter* router, const ClusterSpec& cluster, WireProtocol protocol,
    const wire::GraphDef& def, const DeviceName& default_device) {
  TFHPC_ASSIGN_OR_RETURN(std::unique_ptr<Graph> graph,
                         Graph::FromGraphDef(def));
  TFHPC_ASSIGN_OR_RETURN(PartitionResult parts,
                         PartitionGraph(*graph, cluster, default_device));

  std::unique_ptr<DistributedSession> session(
      new DistributedSession(router, protocol));
  session->node_task_ = std::move(parts.node_task);
  for (auto& [addr, part_def] : parts.partitions) {
    RemoteTask task(router, addr, protocol);
    TFHPC_RETURN_IF_ERROR(task.ExtendGraph(part_def));
    Partition p;
    p.addr = addr;
    for (const auto& nd : part_def.nodes) p.all_nodes.push_back(nd.name);
    session->partitions_.push_back(std::move(p));
  }
  return session;
}

Result<std::string> DistributedSession::TaskOf(
    const std::string& node_name) const {
  auto it = node_task_.find(node_name);
  if (it == node_task_.end()) return NotFound("unknown node " + node_name);
  return it->second;
}

Result<std::vector<Tensor>> DistributedSession::Run(
    const std::map<std::string, Tensor>& feeds,
    const std::vector<std::string>& fetches) {
  return Run(feeds, fetches, StepRecoveryOptions{}, nullptr);
}

Result<std::vector<Tensor>> DistributedSession::RunOnce(
    const std::map<std::string, Tensor>& feeds,
    const std::vector<std::string>& fetches, const RetryPolicy& rpc_retry,
    int64_t* rpc_retries, std::string* failed_partition) {
  // Route feeds and fetches to their owning partitions.
  struct StepPlan {
    std::map<std::string, Tensor> feeds;
    std::vector<std::string> fetches;              // this partition's share
    std::vector<size_t> fetch_positions;           // into the global result
  };
  std::map<std::string, StepPlan> plans;
  for (const auto& p : partitions_) plans[p.addr];

  for (const auto& [key, tensor] : feeds) {
    std::string name = key;
    const size_t colon = name.find(':');
    if (colon != std::string::npos) name = name.substr(0, colon);
    auto it = node_task_.find(name);
    if (it == node_task_.end()) return NotFound("feed of unknown node " + key);
    plans[it->second].feeds.emplace(key, tensor);
  }
  for (size_t i = 0; i < fetches.size(); ++i) {
    std::string name = fetches[i];
    const size_t colon = name.find(':');
    if (colon != std::string::npos) name = name.substr(0, colon);
    auto it = node_task_.find(name);
    if (it == node_task_.end()) {
      return NotFound("fetch of unknown node " + fetches[i]);
    }
    plans[it->second].fetches.push_back(fetches[i]);
    plans[it->second].fetch_positions.push_back(i);
  }

  // Drive every partition concurrently: cross-task edges rendezvous inside
  // the servers, so partitions must run simultaneously. If any partition
  // fails, the others may be parked in _Recv waiting for tensors that will
  // never be sent — the first error triggers step cancellation (AbortStep)
  // on every peer so the whole Run unwinds instead of hanging.
  std::vector<Tensor> results(fetches.size());
  std::vector<Status> status(partitions_.size());
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;
  bool failed = false;

  std::vector<std::thread> threads;
  for (size_t pi = 0; pi < partitions_.size(); ++pi) {
    threads.emplace_back([&, pi] {
      const Partition& part = partitions_[pi];
      const StepPlan& plan = plans[part.addr];
      RemoteTask task(router_, part.addr, protocol_, rpc_retry);
      Status st;
      auto r = task.RunStep(plan.feeds, plan.fetches, part.all_nodes);
      if (!r.ok()) {
        st = r.status();
      } else if (r->size() != plan.fetches.size()) {
        st = Internal("partition returned wrong fetch count");
      } else {
        for (size_t f = 0; f < plan.fetch_positions.size(); ++f) {
          results[plan.fetch_positions[f]] = std::move((*r)[f]);
        }
      }
      std::lock_guard<std::mutex> lk(mu);
      if (rpc_retries != nullptr) *rpc_retries += task.retries();
      status[pi] = std::move(st);
      ++done;
      if (!status[pi].ok()) failed = true;
      cv.notify_all();
    });
  }

  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return done == partitions_.size() || failed; });
    if (failed && done < partitions_.size()) {
      // Cancel stragglers; their RunSteps fail with Cancelled and unwind.
      // Control RPCs go without retry: a dead task's abort must not burn
      // another deadline, and a live task aborts on the first try.
      for (const Partition& part : partitions_) {
        RemoteTask(router_, part.addr, protocol_).AbortStep("peer failed");
      }
      cv.wait(lk, [&] { return done == partitions_.size(); });
    }
  }
  for (auto& t : threads) t.join();

  Status first;
  for (size_t pi = 0; pi < status.size(); ++pi) {
    // Prefer the root cause over Cancelled fallout from the abort.
    if (!status[pi].ok() &&
        (first.ok() || first.code() == Code::kCancelled)) {
      first = status[pi];
      if (failed_partition != nullptr) *failed_partition = partitions_[pi].addr;
    }
  }
  if (!first.ok()) return first;
  return results;
}

void DistributedSession::AbortAndResetAllTasks() {
  // Short bounded retry: enough to get the cleanup through a lossy (but
  // alive) link, cheap enough that a dead task costs ~200ms, not a full
  // RPC deadline. Failures are ignored — an unreachable task is cleaned
  // up when it heals or fails the next attempt fast.
  RetryPolicy cleanup;
  cleanup.max_attempts = 8;
  cleanup.initial_backoff_ms = 1;
  cleanup.max_backoff_ms = 8;
  cleanup.deadline_ms = 200;
  for (const Partition& part : partitions_) {
    RemoteTask(router_, part.addr, protocol_, cleanup)
        .AbortStep("step recovery");
  }
  for (const Partition& part : partitions_) {
    RemoteTask(router_, part.addr, protocol_, cleanup).ResetStep();
  }
}

Result<std::vector<Tensor>> DistributedSession::Run(
    const std::map<std::string, Tensor>& feeds,
    const std::vector<std::string>& fetches,
    const StepRecoveryOptions& recovery, FaultReport* report) {
  FaultReport local_report;
  FaultReport& rep = report != nullptr ? *report : local_report;
  rep = FaultReport{};

  // Snapshot all task variables into the checkpoint before touching
  // anything, so every re-attempt restarts from a consistent state even if
  // attempt #1 half-applied its updates.
  if (!recovery.checkpoint_path.empty()) {
    std::map<std::string, Tensor> snapshot;
    for (const Partition& part : partitions_) {
      RemoteTask task(router_, part.addr, protocol_, recovery.rpc_retry);
      auto vars = task.VarSnapshot();
      rep.rpc_retries += task.retries();
      if (!vars.ok()) {
        rep.final_status = vars.status();
        return vars.status();
      }
      for (auto& [name, tensor] : *vars) {
        snapshot.emplace(part.addr + "|" + name, std::move(tensor));
      }
    }
    Status st = io::SaveCheckpoint(recovery.checkpoint_path, snapshot);
    if (!st.ok()) {
      rep.final_status = st;
      return st;
    }
    rep.checkpoint_saved = true;
  }

  const int budget = std::max(1, recovery.max_step_attempts);
  for (int attempt = 1;; ++attempt) {
    rep.step_attempts = attempt;
    std::string failed_partition;
    auto r = RunOnce(feeds, fetches, recovery.rpc_retry, &rep.rpc_retries,
                     &failed_partition);
    if (r.ok()) {
      rep.recovered = attempt > 1;
      rep.final_status = Status::OK();
      return r;
    }
    if (rep.first_error.ok()) {
      rep.first_error = r.status();
      rep.failed_partition = failed_partition;
    }
    // Unwind the failed step everywhere so the session stays usable:
    // wake parked _Recvs, then clear the poisoned rendezvous. Unreachable
    // tasks are skipped (their control RPCs fail fast, uncounted).
    AbortAndResetAllTasks();

    // Only fault fallout is worth re-attempting; semantic errors (missing
    // node, bad feed, resource limits) would fail identically again.
    const Code code = r.status().code();
    const bool recoverable = code == Code::kUnavailable ||
                             code == Code::kDeadlineExceeded ||
                             code == Code::kCancelled;
    if (attempt >= budget || !recoverable) {
      rep.final_status = r.status();
      return r.status();
    }

    // Recovery path: restore variables from the checkpoint, then re-run.
    if (rep.checkpoint_saved) {
      auto loaded = io::LoadCheckpoint(recovery.checkpoint_path);
      if (!loaded.ok()) {
        rep.final_status = loaded.status();
        return loaded.status();
      }
      for (const Partition& part : partitions_) {
        std::map<std::string, Tensor> task_vars;
        const std::string prefix = part.addr + "|";
        for (const auto& [key, tensor] : *loaded) {
          if (key.rfind(prefix, 0) == 0) {
            task_vars.emplace(key.substr(prefix.size()), tensor);
          }
        }
        if (task_vars.empty()) continue;
        RemoteTask task(router_, part.addr, protocol_, recovery.rpc_retry);
        if (task.VarRestore(task_vars).ok()) {
          rep.variables_restored += static_cast<int>(task_vars.size());
        }
        rep.rpc_retries += task.retries();
      }
    }
  }
}

}  // namespace tfhpc::distrib
