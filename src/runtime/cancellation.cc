#include "runtime/cancellation.h"

#include <utility>
#include <vector>

namespace tfhpc {

void CancellationToken::Cancel(Status reason) {
  TFHPC_CHECK(!reason.ok()) << "Cancel needs an error status";
  std::vector<std::function<void()>> to_run;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!cancel_status_.ok()) return;  // first cancel wins
    cancel_status_ = std::move(reason);
    cancelling_ = true;
    to_run.reserve(callbacks_.size());
    for (auto& [id, fn] : callbacks_) to_run.push_back(std::move(fn));
    callbacks_.clear();
  }
  // Run outside the lock: callbacks grab waiter mutexes to notify CVs, and
  // those waiters may concurrently Deregister (which takes mu_).
  for (auto& fn : to_run) fn();
  {
    std::lock_guard<std::mutex> lk(mu_);
    cancelling_ = false;
  }
  cancel_done_cv_.notify_all();
}

Status CancellationToken::Check() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (!cancel_status_.ok()) return cancel_status_;
  if (has_deadline_ && Clock::now() >= deadline_) {
    return DeadlineExceeded("step deadline exceeded");
  }
  return Status::OK();
}

bool CancellationToken::cancelled() const {
  std::lock_guard<std::mutex> lk(mu_);
  return !cancel_status_.ok();
}

bool CancellationToken::has_deadline() const {
  std::lock_guard<std::mutex> lk(mu_);
  return has_deadline_;
}

CancellationToken::Clock::time_point CancellationToken::deadline() const {
  std::lock_guard<std::mutex> lk(mu_);
  return deadline_;
}

int64_t CancellationToken::remaining_ms() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (!has_deadline_) return INT64_MAX;
  return std::chrono::duration_cast<std::chrono::milliseconds>(deadline_ -
                                                               Clock::now())
      .count();
}

uint64_t CancellationToken::deadline_ns() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (!has_deadline_) return 0;
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                deadline_.time_since_epoch())
                .count();
  return ns <= 0 ? 1 : static_cast<uint64_t>(ns);
}

void CancellationToken::TightenDeadline(Clock::time_point deadline) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!has_deadline_ || deadline < deadline_) {
    has_deadline_ = true;
    deadline_ = deadline;
  }
}

uint64_t CancellationToken::OnCancel(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (cancel_status_.ok()) {
      uint64_t id = next_callback_id_++;
      callbacks_[id] = std::move(fn);
      return id;
    }
  }
  fn();  // already cancelled: fire on the registering thread
  return 0;
}

void CancellationToken::Deregister(uint64_t id) {
  if (id == 0) return;
  std::unique_lock<std::mutex> lk(mu_);
  callbacks_.erase(id);
  // If Cancel() already claimed this callback, it may be mid-flight on the
  // cancelling thread — wait it out so the caller can tear down the state
  // the callback touches.
  cancel_done_cv_.wait(lk, [this] { return !cancelling_; });
}

}  // namespace tfhpc
