// _Send/_Recv kernels: keyed tensor exchange through the task's rendezvous.
// _Send with a "target" attribute pushes into a *remote* task's rendezvous
// through the server's wire hook — the cross-task edge TensorFlow's
// partitioner inserts at task boundaries.
#include "kernels/kernel.h"

namespace tfhpc {
namespace {

class SendKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    TFHPC_ASSIGN_OR_RETURN(std::string key, ctx->node().AttrString("key"));
    std::string target;
    if (ctx->node().HasAttr("target")) {
      TFHPC_ASSIGN_OR_RETURN(target, ctx->node().AttrString("target"));
    }
    if (target.empty()) {
      return ctx->resources()->rendezvous().Send(key, ctx->input(0));
    }
    const auto& remote = ctx->resources()->remote_send();
    if (!remote) {
      return FailedPrecondition(
          "_Send to '" + target +
          "': this runtime has no wire (not running under a Server)");
    }
    return remote(target, key, ctx->input(0));
  }
};
TFHPC_REGISTER_KERNEL_ALL("_Send", SendKernel);

class RecvKernel : public OpKernel {
 public:
  Status Compute(OpKernelContext* ctx) override {
    TFHPC_ASSIGN_OR_RETURN(std::string key, ctx->node().AttrString("key"));
    TFHPC_ASSIGN_OR_RETURN(
        Tensor t, ctx->resources()->rendezvous().Recv(key, ctx->cancellation()));
    ctx->set_output(0, std::move(t));
    return Status::OK();
  }
};
TFHPC_REGISTER_KERNEL_ALL("_Recv", RecvKernel);

}  // namespace
}  // namespace tfhpc
