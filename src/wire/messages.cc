#include "wire/messages.h"

#include "wire/coded.h"

namespace tfhpc::wire {

// ---- TensorProto ----------------------------------------------------------

std::string SerializeTensor(const Tensor& t) {
  std::string out;
  CodedOutput co(&out);
  co.WriteUInt64(1, static_cast<uint64_t>(t.dtype()));
  for (int64_t d : t.shape().dims()) {
    co.WriteUInt64(2, static_cast<uint64_t>(d));
  }
  if (t.is_meta()) {
    co.WriteBool(4, true);
  } else if (t.valid()) {
    co.WriteBytes(3, t.raw_data(), static_cast<size_t>(t.bytes()));
  }
  return out;
}

Result<Tensor> ParseTensor(const std::string& data) {
  return ParseTensor(data.data(), data.size());
}

Result<Tensor> ParseTensor(const void* data, size_t size) {
  CodedInput in(data, size);
  DType dtype = DType::kInvalid;
  std::vector<int64_t> dims;
  const uint8_t* content = nullptr;
  size_t content_size = 0;
  bool is_meta = false;
  while (!in.AtEnd()) {
    uint32_t field;
    WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    switch (field) {
      case 1: {
        uint64_t v;
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
        if (!IsKnownDType(v)) {
          return InvalidArgument("TensorProto: unknown dtype " +
                                 std::to_string(v));
        }
        dtype = static_cast<DType>(v);
        break;
      }
      case 2: {
        uint64_t v;
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
        // Reject absurd dims before Shape::num_elements() can overflow.
        if (v > (uint64_t{1} << 48)) {
          return InvalidArgument("TensorProto: implausible dim " +
                                 std::to_string(v));
        }
        dims.push_back(static_cast<int64_t>(v));
        break;
      }
      case 3:
        TFHPC_RETURN_IF_ERROR(in.ReadBytesView(&content, &content_size));
        break;
      case 4: {
        uint64_t v;
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
        is_meta = v != 0;
        break;
      }
      default:
        TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  if (dtype == DType::kInvalid) return InvalidArgument("TensorProto: no dtype");
  Shape shape(std::move(dims));
  if (is_meta) return Tensor::Meta(dtype, std::move(shape));
  // The content overwrites every element, so skip the zero-fill and let the
  // pool hand back a recycled block.
  Tensor t = Tensor::Uninitialized(dtype, std::move(shape));
  if (static_cast<size_t>(t.bytes()) != content_size) {
    return InvalidArgument("TensorProto: content size " +
                           std::to_string(content_size) + " != expected " +
                           std::to_string(t.bytes()));
  }
  if (content_size > 0) std::memcpy(t.raw_data(), content, content_size);
  return t;
}

PayloadRef SerializeTensorView(const Tensor& t) {
  std::string head;
  CodedOutput co(&head);
  co.WriteUInt64(1, static_cast<uint64_t>(t.dtype()));
  for (int64_t d : t.shape().dims()) {
    co.WriteUInt64(2, static_cast<uint64_t>(d));
  }
  if (t.is_meta() || !t.valid()) {
    if (t.is_meta()) co.WriteBool(4, true);
    return PayloadRef(std::move(head));
  }
  // Frame field 3 (tag + length) in the head; the content bytes stay in the
  // tensor's buffer and ride along as a view.
  const size_t content = static_cast<size_t>(t.bytes());
  co.WriteTag(3, WireType::kLengthDelimited);
  co.WriteVarint(content);
  return PayloadRef::View(std::move(head), t.buffer(), 0, content);
}

Result<Tensor> ParseTensorView(const PayloadRef& p) {
  if (!p.is_view()) return ParseTensor(p.head().data(), p.head().size());
  CodedInput in(p.head());
  DType dtype = DType::kInvalid;
  std::vector<int64_t> dims;
  bool is_meta = false;
  bool content_is_view = false;
  while (!in.AtEnd()) {
    uint32_t field;
    WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    switch (field) {
      case 1: {
        uint64_t v;
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
        if (!IsKnownDType(v)) {
          return InvalidArgument("TensorProto: unknown dtype " +
                                 std::to_string(v));
        }
        dtype = static_cast<DType>(v);
        break;
      }
      case 2: {
        uint64_t v;
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
        if (v > (uint64_t{1} << 48)) {
          return InvalidArgument("TensorProto: implausible dim " +
                                 std::to_string(v));
        }
        dims.push_back(static_cast<int64_t>(v));
        break;
      }
      case 3: {
        // In a view payload the content length is framed in the head and the
        // bytes themselves are the view. Anything else is malformed.
        if (wt != WireType::kLengthDelimited) {
          return InvalidArgument("TensorProto: bad wire type for content");
        }
        uint64_t len;
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&len));
        if (len != p.view_size() || !in.AtEnd()) {
          return InvalidArgument("TensorProto: view content length mismatch");
        }
        content_is_view = true;
        break;
      }
      case 4: {
        uint64_t v;
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
        is_meta = v != 0;
        break;
      }
      default:
        TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  if (dtype == DType::kInvalid) return InvalidArgument("TensorProto: no dtype");
  Shape shape(std::move(dims));
  if (is_meta) return Tensor::Meta(dtype, std::move(shape));
  if (!content_is_view) {
    return InvalidArgument("TensorProto: view payload without content field");
  }
  const int64_t expect =
      shape.num_elements() * static_cast<int64_t>(DTypeSize(dtype));
  if (static_cast<size_t>(expect) != p.view_size()) {
    return InvalidArgument("TensorProto: content size " +
                           std::to_string(p.view_size()) + " != expected " +
                           std::to_string(expect));
  }
  // True zero-copy: adopt the buffer when the view spans it exactly from the
  // start. Sub-views (offset into a larger frame) copy once into a pooled,
  // uninitialized buffer.
  if (p.view_offset() == 0 && p.buffer()->size() == p.view_size()) {
    return Tensor::FromBuffer(dtype, std::move(shape), p.buffer());
  }
  Tensor t = Tensor::Uninitialized(dtype, std::move(shape));
  if (p.view_size() > 0) {
    std::memcpy(t.raw_data(), p.view_data(), p.view_size());
  }
  return t;
}

// ---- AttrValue --------------------------------------------------------------

AttrValue AttrValue::Int(int64_t v) {
  AttrValue a;
  a.kind = Kind::kInt;
  a.i = v;
  return a;
}
AttrValue AttrValue::Float(double v) {
  AttrValue a;
  a.kind = Kind::kFloat;
  a.f = v;
  return a;
}
AttrValue AttrValue::Str(std::string v) {
  AttrValue a;
  a.kind = Kind::kString;
  a.s = std::move(v);
  return a;
}
AttrValue AttrValue::Type(DType v) {
  AttrValue a;
  a.kind = Kind::kType;
  a.type = v;
  return a;
}
AttrValue AttrValue::OfShape(Shape v) {
  AttrValue a;
  a.kind = Kind::kShape;
  a.shape = std::move(v);
  return a;
}
AttrValue AttrValue::Bool(bool v) {
  AttrValue a;
  a.kind = Kind::kBool;
  a.b = v;
  return a;
}

bool AttrValue::operator==(const AttrValue& o) const {
  if (kind != o.kind) return false;
  switch (kind) {
    case Kind::kNone: return true;
    case Kind::kInt: return i == o.i;
    case Kind::kFloat: return f == o.f;
    case Kind::kString: return s == o.s;
    case Kind::kType: return type == o.type;
    case Kind::kShape: return shape == o.shape;
    case Kind::kBool: return b == o.b;
  }
  return false;
}

std::string AttrValue::Serialize() const {
  std::string out;
  CodedOutput co(&out);
  switch (kind) {
    case Kind::kNone:
      break;
    case Kind::kInt:
      co.WriteSInt64(1, i);
      break;
    case Kind::kFloat:
      co.WriteDouble(2, f);
      break;
    case Kind::kString:
      co.WriteString(3, s);
      break;
    case Kind::kType:
      co.WriteUInt64(4, static_cast<uint64_t>(type));
      break;
    case Kind::kShape:
      for (int64_t d : shape.dims()) co.WriteUInt64(5, static_cast<uint64_t>(d));
      // Emit rank explicitly so a scalar shape is distinguishable.
      co.WriteUInt64(6, static_cast<uint64_t>(shape.rank()));
      break;
    case Kind::kBool:
      co.WriteBool(7, b);
      break;
  }
  return out;
}

Result<AttrValue> AttrValue::Parse(const void* data, size_t size) {
  CodedInput in(data, size);
  AttrValue a;
  std::vector<int64_t> dims;
  bool saw_rank = false;
  while (!in.AtEnd()) {
    uint32_t field;
    WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    uint64_t v = 0;
    switch (field) {
      case 1:
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
        a = Int(ZigZagDecode(v));
        break;
      case 2: {
        double d;
        TFHPC_RETURN_IF_ERROR(in.ReadDouble(&d));
        a = Float(d);
        break;
      }
      case 3: {
        std::string s;
        TFHPC_RETURN_IF_ERROR(in.ReadString(&s));
        a = Str(std::move(s));
        break;
      }
      case 4:
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
        if (!IsKnownDType(v)) {
          return InvalidArgument("AttrValue: unknown dtype " +
                                 std::to_string(v));
        }
        a = Type(static_cast<DType>(v));
        break;
      case 5:
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
        if (v > (uint64_t{1} << 48)) {
          return InvalidArgument("AttrValue: implausible dim " +
                                 std::to_string(v));
        }
        dims.push_back(static_cast<int64_t>(v));
        break;
      case 6:
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
        saw_rank = true;
        break;
      case 7:
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
        a = Bool(v != 0);
        break;
      default:
        TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  if (saw_rank) a = OfShape(Shape(std::move(dims)));
  return a;
}

// ---- NodeDef / GraphDef -----------------------------------------------------

std::string NodeDef::Serialize() const {
  std::string out;
  CodedOutput co(&out);
  co.WriteString(1, name);
  co.WriteString(2, op);
  for (const auto& in : inputs) co.WriteString(3, in);
  if (!device.empty()) co.WriteString(4, device);
  for (const auto& [key, value] : attrs) {
    std::string pair;
    CodedOutput pco(&pair);
    pco.WriteString(1, key);
    pco.WriteMessage(2, value.Serialize());
    co.WriteMessage(5, pair);
  }
  return out;
}

Result<NodeDef> NodeDef::Parse(const void* data, size_t size) {
  CodedInput in(data, size);
  NodeDef n;
  while (!in.AtEnd()) {
    uint32_t field;
    WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    switch (field) {
      case 1:
        TFHPC_RETURN_IF_ERROR(in.ReadString(&n.name));
        break;
      case 2:
        TFHPC_RETURN_IF_ERROR(in.ReadString(&n.op));
        break;
      case 3: {
        std::string s;
        TFHPC_RETURN_IF_ERROR(in.ReadString(&s));
        n.inputs.push_back(std::move(s));
        break;
      }
      case 4:
        TFHPC_RETURN_IF_ERROR(in.ReadString(&n.device));
        break;
      case 5: {
        const uint8_t* d;
        size_t s;
        TFHPC_RETURN_IF_ERROR(in.ReadBytesView(&d, &s));
        CodedInput pin(d, s);
        std::string key;
        AttrValue value;
        while (!pin.AtEnd()) {
          uint32_t pf;
          WireType pwt;
          TFHPC_RETURN_IF_ERROR(pin.ReadTag(&pf, &pwt));
          if (pf == 1) {
            TFHPC_RETURN_IF_ERROR(pin.ReadString(&key));
          } else if (pf == 2) {
            const uint8_t* vd;
            size_t vs;
            TFHPC_RETURN_IF_ERROR(pin.ReadBytesView(&vd, &vs));
            TFHPC_ASSIGN_OR_RETURN(value, AttrValue::Parse(vd, vs));
          } else {
            TFHPC_RETURN_IF_ERROR(pin.SkipField(pwt));
          }
        }
        n.attrs[key] = value;
        break;
      }
      default:
        TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  if (n.name.empty()) return InvalidArgument("NodeDef without name");
  return n;
}

bool NodeDef::operator==(const NodeDef& o) const {
  return name == o.name && op == o.op && inputs == o.inputs &&
         device == o.device && attrs == o.attrs;
}

std::string GraphDef::Serialize() const {
  std::string out;
  CodedOutput co(&out);
  for (const auto& n : nodes) co.WriteMessage(1, n.Serialize());
  co.WriteInt64(2, version);
  return out;
}

Result<GraphDef> GraphDef::Parse(const std::string& data) {
  CodedInput in(data);
  GraphDef g;
  while (!in.AtEnd()) {
    uint32_t field;
    WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    switch (field) {
      case 1: {
        const uint8_t* d;
        size_t s;
        TFHPC_RETURN_IF_ERROR(in.ReadBytesView(&d, &s));
        TFHPC_ASSIGN_OR_RETURN(NodeDef n, NodeDef::Parse(d, s));
        g.nodes.push_back(std::move(n));
        break;
      }
      case 2: {
        uint64_t v;
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
        g.version = static_cast<int64_t>(v);
        break;
      }
      default:
        TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  return g;
}

// ---- ClusterDef -------------------------------------------------------------

std::string JobDef::Serialize() const {
  std::string out;
  CodedOutput co(&out);
  co.WriteString(1, name);
  for (const auto& t : task_addrs) co.WriteString(2, t);
  return out;
}

Result<JobDef> JobDef::Parse(const void* data, size_t size) {
  CodedInput in(data, size);
  JobDef j;
  while (!in.AtEnd()) {
    uint32_t field;
    WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    if (field == 1) {
      TFHPC_RETURN_IF_ERROR(in.ReadString(&j.name));
    } else if (field == 2) {
      std::string s;
      TFHPC_RETURN_IF_ERROR(in.ReadString(&s));
      j.task_addrs.push_back(std::move(s));
    } else {
      TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  return j;
}

std::string ClusterDef::Serialize() const {
  std::string out;
  CodedOutput co(&out);
  for (const auto& j : jobs) co.WriteMessage(1, j.Serialize());
  return out;
}

Result<ClusterDef> ClusterDef::Parse(const std::string& data) {
  CodedInput in(data);
  ClusterDef c;
  while (!in.AtEnd()) {
    uint32_t field;
    WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    if (field == 1) {
      const uint8_t* d;
      size_t s;
      TFHPC_RETURN_IF_ERROR(in.ReadBytesView(&d, &s));
      TFHPC_ASSIGN_OR_RETURN(JobDef j, JobDef::Parse(d, s));
      c.jobs.push_back(std::move(j));
    } else {
      TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  return c;
}

// ---- RegisterStep -------------------------------------------------------------

std::string RegisterStepRequest::Serialize() const {
  std::string out;
  CodedOutput co(&out);
  for (const auto& f : feeds) co.WriteString(1, f);
  for (const auto& f : fetches) co.WriteString(2, f);
  for (const auto& t : targets) co.WriteString(3, t);
  return out;
}

Result<RegisterStepRequest> RegisterStepRequest::Parse(
    const std::string& data) {
  CodedInput in(data);
  RegisterStepRequest req;
  while (!in.AtEnd()) {
    uint32_t field;
    WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    if (field >= 1 && field <= 3) {
      std::string s;
      TFHPC_RETURN_IF_ERROR(in.ReadString(&s));
      (field == 1 ? req.feeds : field == 2 ? req.fetches : req.targets)
          .push_back(std::move(s));
    } else {
      TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  return req;
}

std::string RegisterStepResponse::Serialize() const {
  std::string out;
  CodedOutput co(&out);
  co.WriteUInt64(1, handle);
  co.WriteSInt64(2, graph_version);
  return out;
}

Result<RegisterStepResponse> RegisterStepResponse::Parse(
    const std::string& data) {
  CodedInput in(data);
  RegisterStepResponse resp;
  while (!in.AtEnd()) {
    uint32_t field;
    WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    if (field == 1) {
      uint64_t v;
      TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
      resp.handle = v;
    } else if (field == 2) {
      uint64_t v;
      TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
      resp.graph_version = ZigZagDecode(v);
    } else {
      TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  return resp;
}

// ---- RpcEnvelope --------------------------------------------------------------

std::string RpcEnvelope::Serialize() const {
  std::string out;
  CodedOutput co(&out);
  co.WriteString(1, method);
  co.WriteUInt64(2, request_id);
  // Serialization is the flattening point: a view payload gets copied here,
  // which is exactly what the gRPC staging model charges for.
  if (payload.is_view()) {
    co.WriteTag(3, WireType::kLengthDelimited);
    co.WriteVarint(payload.size());
    out.append(payload.head());
    out.append(reinterpret_cast<const char*>(payload.view_data()),
               payload.view_size());
  } else {
    co.WriteString(3, payload.head());
  }
  if (status_code != 0) co.WriteInt64(4, status_code);
  if (!status_msg.empty()) co.WriteString(5, status_msg);
  if (client_id != 0) co.WriteUInt64(6, client_id);
  if (checksum != 0) co.WriteUInt64(7, checksum);
  if (deadline_ns != 0) co.WriteUInt64(8, deadline_ns);
  if (transient) co.WriteUInt64(9, 1);
  return out;
}

Result<RpcEnvelope> RpcEnvelope::Parse(const std::string& data) {
  CodedInput in(data);
  RpcEnvelope e;
  while (!in.AtEnd()) {
    uint32_t field;
    WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    uint64_t v = 0;
    switch (field) {
      case 1:
        TFHPC_RETURN_IF_ERROR(in.ReadString(&e.method));
        break;
      case 2:
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
        e.request_id = v;
        break;
      case 3: {
        std::string s;
        TFHPC_RETURN_IF_ERROR(in.ReadString(&s));
        e.payload = std::move(s);
        break;
      }
      case 4:
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
        e.status_code = static_cast<int32_t>(v);
        break;
      case 5:
        TFHPC_RETURN_IF_ERROR(in.ReadString(&e.status_msg));
        break;
      case 6:
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
        e.client_id = v;
        break;
      case 7:
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
        e.checksum = v;
        break;
      case 8:
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
        e.deadline_ns = v;
        break;
      case 9:
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
        e.transient = v != 0;
        break;
      default:
        TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  return e;
}

uint64_t PayloadChecksum(const std::string& data) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

}  // namespace tfhpc::wire
