#include "apps/stream.h"

#include <chrono>

#include "cluster/slurm.h"
#include "core/rng.h"

namespace tfhpc::apps {

Result<StreamResult> SimulateStream(const sim::MachineConfig& cfg,
                                    sim::Protocol protocol,
                                    const StreamOptions& options) {
  if (options.message_bytes <= 0 || options.rounds <= 0) {
    return InvalidArgument("stream: non-positive size or rounds");
  }
  // Worker on node 0, parameter server on node 1 (paper Listing 2). With
  // GPU-resident tensors both endpoints are GPUs; otherwise host memory.
  const int num_gpus = options.gpu_resident ? cfg.gpus_per_node + 1 : 0;
  const int extra_hosts = options.gpu_resident ? 0 : 2;
  sim::ClusterModel cm(cfg, num_gpus, extra_hosts);

  const sim::Loc worker =
      options.gpu_resident ? cm.GpuLoc(0) : cm.HostLoc(0);
  // First GPU of the second node, or the second host node.
  const sim::Loc ps = options.gpu_resident ? cm.GpuLoc(cfg.gpus_per_node)
                                           : cm.HostLoc(1);

  // Rounds are invoked back to back through the session: each assign_add
  // transfer starts when the previous one (and its addition) completed.
  sim::OpId prev = cm.Delay(0, {});
  for (int r = 0; r < options.rounds; ++r) {
    // Each round is one session invocation from the client.
    sim::OpId dispatch = cm.StepOverhead({prev});
    sim::OpId arrive = cm.Transfer(worker, ps, options.message_bytes, protocol,
                                   {dispatch}, "push");
    // assign_add on the PS device: read old + read update + write new.
    const double flops = static_cast<double>(options.message_bytes) / 4;
    const int64_t traffic = 3 * options.message_bytes;
    if (ps.is_host()) {
      prev = cm.HostCompute(ps.node, 0, flops, traffic, {arrive}, "add");
    } else {
      prev = cm.GpuCompute(cfg.gpus_per_node, flops, traffic, false, {arrive},
                           "add");
    }
  }
  TFHPC_ASSIGN_OR_RETURN(sim::ReplayResult replay, cm.Replay());

  StreamResult result;
  result.seconds = replay.makespan;
  result.mbps = static_cast<double>(options.message_bytes) * options.rounds /
                replay.makespan / 1e6;
  return result;
}

Result<StreamResult> RunStreamFunctional(int64_t elements, int rounds,
                                         distrib::WireProtocol protocol) {
  if (elements <= 0 || rounds <= 0) {
    return InvalidArgument("stream: non-positive size or rounds");
  }
  // Resolve a 2-task cluster the way a Slurm job would (paper §III).
  cluster::SlurmClusterResolver resolver({{"ps", 1}, {"worker", 1}},
                                         "t01n[01-02]", 1, 1);
  TFHPC_ASSIGN_OR_RETURN(wire::ClusterDef def, resolver.ClusterSpec());
  TFHPC_ASSIGN_OR_RETURN(distrib::ClusterSpec spec,
                         distrib::ClusterSpec::Create(def));

  distrib::InProcessRouter router;
  TFHPC_ASSIGN_OR_RETURN(
      std::unique_ptr<distrib::Server> ps,
      distrib::Server::Create({spec, "ps", 0, 0}, &router));
  TFHPC_ASSIGN_OR_RETURN(
      std::unique_ptr<distrib::Server> worker,
      distrib::Server::Create({spec, "worker", 0, 1}, &router));

  TFHPC_ASSIGN_OR_RETURN(std::string ps_addr, spec.TaskAddress("ps", 0));
  distrib::RemoteTask ps_client(&router, ps_addr, protocol);

  Tensor update(DType::kF32, Shape{elements});
  FillUniform(update, /*seed=*/7, 0.0, 1.0);

  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    TFHPC_RETURN_IF_ERROR(ps_client.VarAssignAdd("stream", update));
  }
  const auto end = std::chrono::steady_clock::now();

  // Verify: accumulated value must equal rounds * update elementwise.
  TFHPC_ASSIGN_OR_RETURN(Tensor total, ps_client.VarRead("stream"));
  const auto u = update.data<float>();
  const auto t = total.data<float>();
  for (int64_t i = 0; i < elements; ++i) {
    const float expect = static_cast<float>(rounds) * u[static_cast<size_t>(i)];
    if (std::abs(t[static_cast<size_t>(i)] - expect) >
        1e-4f * std::max(1.0f, expect)) {
      return Internal("stream verification failed at element " +
                      std::to_string(i));
    }
  }

  StreamResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.mbps = static_cast<double>(elements * 4) * rounds / result.seconds /
                1e6;
  return result;
}

}  // namespace tfhpc::apps
