// Quickstart: the paper's Listing 1 in tfhpc — two random matrices
// generated on the CPU, multiplied on the (simulated) GPU, fetched through
// a session; prints the result, the device placement, and writes a
// Chrome-trace Timeline of the step (the paper's Fig. 3 tooling).
//
//   ./quickstart [n]
#include <cstdio>
#include <cstdlib>

#include "graph/ops.h"
#include "runtime/session.h"
#include "timeline/timeline.h"

using namespace tfhpc;

int main(int argc, char** argv) {
  const int64_t n = argc > 1 ? std::atoll(argv[1]) : 3;

  // Deferred graph construction (TensorFlow "Graph mode").
  LocalRuntime runtime(/*num_gpus=*/1);
  Scope root = runtime.root_scope();
  auto cpu = root.WithDevice("/cpu:0");
  auto a = ops::RandomUniform(cpu, Shape{n, n}, DType::kF32, /*seed=*/1);
  auto b = ops::RandomUniform(cpu, Shape{n, n}, DType::kF32, /*seed=*/2);
  auto gpu = root.WithDevice("/gpu:0");
  auto c = ops::MatMul(gpu, a, b);

  // Execute through a session; data movement between devices is handled by
  // the runtime, and RunMetadata records the per-op timeline.
  auto session = runtime.NewSession();
  RunOptions options;
  options.trace = true;
  RunMetadata metadata;
  auto result = session->Run({}, {c.name()}, {}, options, &metadata);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("C = A @ B, %lld x %lld\n", static_cast<long long>(n),
              static_cast<long long>(n));
  std::printf("%s\n\n", (*result)[0].DebugString(9).c_str());

  std::printf("device placement:\n");
  for (const auto& node : {a.node, b.node, c.node}) {
    std::printf("  %-16s -> %s\n", node->name().c_str(),
                session->DevicePlacement(node->name())->c_str());
  }

  const std::string trace_path = "/tmp/tfhpc_quickstart_trace.json";
  auto events = timeline::FromRunMetadata(metadata);
  if (timeline::WriteChromeTrace(trace_path, events).ok()) {
    std::printf("\nTimeline written to %s (load in chrome://tracing)\n",
                trace_path.c_str());
  }
  return 0;
}
