// Tiled matmul demo (paper Fig. 4): generates two random matrices, tiles
// them to .npy files, runs the distributed map-reduce (workers multiply on
// simulated GPUs, reducers accumulate from FIFO queues) and verifies the
// assembled product against a dense GEMM.
//
//   ./tiled_matmul_demo [n] [tile] [workers] [reducers]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "apps/tiled_matmul.h"

using namespace tfhpc;

int main(int argc, char** argv) {
  apps::TiledMatmulOptions opts;
  opts.n = argc > 1 ? std::atoll(argv[1]) : 128;
  opts.tile = argc > 2 ? std::atoll(argv[2]) : 32;
  opts.num_workers = argc > 3 ? std::atoi(argv[3]) : 3;
  opts.num_reducers = argc > 4 ? std::atoi(argv[4]) : 2;

  const std::string work_dir =
      (std::filesystem::temp_directory_path() / "tfhpc_matmul_demo").string();
  std::filesystem::remove_all(work_dir);

  std::printf("tiled matmul: N=%lld, tile=%lld, %d workers, %d reducers\n",
              static_cast<long long>(opts.n), static_cast<long long>(opts.tile),
              opts.num_workers, opts.num_reducers);
  auto r = apps::RunTiledMatmulFunctional(opts, work_dir,
                                          distrib::WireProtocol::kRdma,
                                          /*verify_dense=*/true);
  std::filesystem::remove_all(work_dir);
  if (!r.ok()) {
    std::fprintf(stderr, "failed: %s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("verified against dense GEMM; %.3f s, %.2f Gflops/s "
              "(flop model 2N^3 - N^2)\n",
              r->seconds, r->gflops);
  return 0;
}
