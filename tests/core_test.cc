// Unit tests for src/core: status, dtype, shape, buffer, tensor, threadpool,
// rng.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>

#include "core/buffer.h"
#include "core/rng.h"
#include "core/shape.h"
#include "core/status.h"
#include "core/tensor.h"
#include "core/threadpool.h"

namespace tfhpc {
namespace {

// ---- Status ----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shape");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad shape");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(NotFound("x").code(), Code::kNotFound);
  EXPECT_EQ(AlreadyExists("x").code(), Code::kAlreadyExists);
  EXPECT_EQ(FailedPrecondition("x").code(), Code::kFailedPrecondition);
  EXPECT_EQ(OutOfRange("x").code(), Code::kOutOfRange);
  EXPECT_EQ(Unimplemented("x").code(), Code::kUnimplemented);
  EXPECT_EQ(Internal("x").code(), Code::kInternal);
  EXPECT_EQ(ResourceExhausted("x").code(), Code::kResourceExhausted);
  EXPECT_EQ(Cancelled("x").code(), Code::kCancelled);
  EXPECT_EQ(DeadlineExceeded("x").code(), Code::kDeadlineExceeded);
  EXPECT_EQ(Unavailable("x").code(), Code::kUnavailable);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgument("odd");
  return x / 2;
}
Status UseHalf(int x, int* out) {
  TFHPC_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseHalf(7, &out).code(), Code::kInvalidArgument);
}

// ---- DType -------------------------------------------------------------------

TEST(DTypeTest, SizesMatchCTypes) {
  EXPECT_EQ(DTypeSize(DType::kF32), sizeof(float));
  EXPECT_EQ(DTypeSize(DType::kF64), sizeof(double));
  EXPECT_EQ(DTypeSize(DType::kC128), sizeof(std::complex<double>));
  EXPECT_EQ(DTypeSize(DType::kI64), sizeof(int64_t));
  EXPECT_EQ(DTypeSize(DType::kU8), 1u);
}

TEST(DTypeTest, NameRoundTrip) {
  for (DType d : {DType::kF32, DType::kF64, DType::kC64, DType::kC128,
                  DType::kI32, DType::kI64, DType::kU8, DType::kBool}) {
    EXPECT_EQ(DTypeFromName(DTypeName(d)), d);
  }
  EXPECT_EQ(DTypeFromName("nonsense"), DType::kInvalid);
}

TEST(DTypeTest, Predicates) {
  EXPECT_TRUE(IsFloating(DType::kF32));
  EXPECT_TRUE(IsFloating(DType::kC128));
  EXPECT_FALSE(IsFloating(DType::kI32));
  EXPECT_TRUE(IsComplex(DType::kC64));
  EXPECT_FALSE(IsComplex(DType::kF64));
}

// ---- Shape -------------------------------------------------------------------

TEST(ShapeTest, ScalarBasics) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_TRUE(s.IsScalar());
  EXPECT_EQ(s.num_elements(), 1);
  EXPECT_EQ(s.ToString(), "[]");
}

TEST(ShapeTest, MatrixBasics) {
  Shape s{3, 4};
  EXPECT_EQ(s.rank(), 2);
  EXPECT_TRUE(s.IsMatrix());
  EXPECT_EQ(s.num_elements(), 12);
  EXPECT_EQ(s.dim(0), 3);
  EXPECT_EQ(s.dim(1), 4);
  EXPECT_EQ(s.ToString(), "[3,4]");
}

TEST(ShapeTest, ZeroDimGivesZeroElements) {
  Shape s{0, 5};
  EXPECT_EQ(s.num_elements(), 0);
}

TEST(ShapeTest, StridesAreRowMajor) {
  Shape s{2, 3, 4};
  auto strides = s.Strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(ShapeTest, BroadcastEqualShapes) {
  auto r = Shape::Broadcast(Shape{2, 3}, Shape{2, 3});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Shape({2, 3}));
}

TEST(ShapeTest, BroadcastScalar) {
  auto r = Shape::Broadcast(Shape{2, 3}, Shape{});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Shape({2, 3}));
}

TEST(ShapeTest, BroadcastOnes) {
  auto r = Shape::Broadcast(Shape{4, 1}, Shape{1, 5});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Shape({4, 5}));
}

TEST(ShapeTest, BroadcastRankExtension) {
  auto r = Shape::Broadcast(Shape{5}, Shape{3, 5});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Shape({3, 5}));
}

TEST(ShapeTest, BroadcastIncompatible) {
  auto r = Shape::Broadcast(Shape{2, 3}, Shape{2, 4});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kInvalidArgument);
}

// ---- Buffer -------------------------------------------------------------------

TEST(BufferTest, AlignedAndZeroed) {
  auto b = Buffer::Allocate(1000);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b->data()) % Buffer::kAlignment, 0u);
  EXPECT_EQ(b->size(), 1000u);
  const auto* p = static_cast<const uint8_t*>(b->data());
  for (size_t i = 0; i < 1000; ++i) EXPECT_EQ(p[i], 0);
}

TEST(BufferTest, StatsTrackLiveAndPeak) {
  AllocatorStats stats;
  {
    auto a = Buffer::Allocate(100, &stats);
    EXPECT_EQ(stats.live_bytes(), 100);
    {
      auto b = Buffer::Allocate(200, &stats);
      EXPECT_EQ(stats.live_bytes(), 300);
      EXPECT_EQ(stats.peak_bytes(), 300);
    }
    EXPECT_EQ(stats.live_bytes(), 100);
  }
  EXPECT_EQ(stats.live_bytes(), 0);
  EXPECT_EQ(stats.peak_bytes(), 300);
}

TEST(BufferTest, ZeroSizeAllocation) {
  auto b = Buffer::Allocate(0);
  EXPECT_EQ(b->size(), 0u);
}

// ---- Tensor -------------------------------------------------------------------

TEST(TensorTest, DefaultIsInvalid) {
  Tensor t;
  EXPECT_FALSE(t.valid());
}

TEST(TensorTest, AllocatesZeroed) {
  Tensor t(DType::kF64, Shape{2, 2});
  for (double v : t.data<double>()) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(t.bytes(), 32);
}

TEST(TensorTest, ScalarFactory) {
  Tensor t = Tensor::Scalar(3.5);
  EXPECT_TRUE(t.shape().IsScalar());
  EXPECT_EQ(t.scalar<double>(), 3.5);
}

TEST(TensorTest, FromVectorAndAt) {
  Tensor t = Tensor::FromVector(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  EXPECT_EQ((t.at<float>(0, 0)), 1.0f);
  EXPECT_EQ((t.at<float>(1, 2)), 6.0f);
}

TEST(TensorTest, CopyIsShallowCloneIsDeep) {
  Tensor t = Tensor::FromVector(std::vector<float>{1, 2, 3});
  Tensor shallow = t;
  Tensor deep = t.Clone();
  t.mutable_data<float>()[0] = 99;
  EXPECT_EQ(shallow.data<float>()[0], 99.0f);
  EXPECT_EQ(deep.data<float>()[0], 1.0f);
}

TEST(TensorTest, MetaTensorHasNominalBytes) {
  Tensor t = Tensor::Meta(DType::kF32, Shape{1024, 1024});
  EXPECT_TRUE(t.is_meta());
  EXPECT_EQ(t.bytes(), 4 * 1024 * 1024);
}

TEST(TensorTest, BitwiseEquals) {
  Tensor a = Tensor::FromVector(std::vector<double>{1, 2});
  Tensor b = Tensor::FromVector(std::vector<double>{1, 2});
  Tensor c = Tensor::FromVector(std::vector<double>{1, 3});
  EXPECT_TRUE(a.BitwiseEquals(b));
  EXPECT_FALSE(a.BitwiseEquals(c));
  EXPECT_FALSE(a.BitwiseEquals(Tensor::Meta(DType::kF64, Shape{2})));
}

TEST(TensorTest, ReshapeSharesBuffer) {
  Tensor t = Tensor::FromVector(std::vector<float>{1, 2, 3, 4});
  auto r = t.Reshape(Shape{2, 2});
  ASSERT_TRUE(r.ok());
  r->mutable_data<float>()[0] = 7;
  EXPECT_EQ(t.data<float>()[0], 7.0f);
  EXPECT_FALSE(t.Reshape(Shape{3}).ok());
}

TEST(TensorTest, AllocatorStatsHookedUp) {
  AllocatorStats stats;
  {
    Tensor t(DType::kF32, Shape{10}, &stats);
    EXPECT_EQ(stats.live_bytes(), 40);
  }
  EXPECT_EQ(stats.live_bytes(), 0);
}

// ---- ThreadPool -----------------------------------------------------------------

TEST(ThreadPoolTest, RunsScheduledWork) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&] {
      if (count.fetch_add(1) == 99) {
        std::lock_guard<std::mutex> lk(mu);
        cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return count.load() == 100; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, 1, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(8, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      // Nested call from a pool thread: the caller drains its own chunks,
      // so this completes even with every worker busy in the outer loop.
      pool.ParallelFor(10, 1,
                       [&](int64_t nb, int64_t ne) { total += ne - nb; });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPoolTest, ParallelForFromPoolThreadUsesMultipleWorkers) {
  // Regression: ParallelFor used to run fully inline when called from a pool
  // thread — and the node-parallel executor runs every kernel on
  // ThreadPool::Global(), so kernel-internal loops were silently
  // single-threaded. A kernel-like task scheduled onto the pool must still
  // fan its ParallelFor out to other workers.
  ThreadPool pool(4);
  std::set<std::thread::id> workers;
  for (int attempt = 0; attempt < 5 && workers.size() < 2; ++attempt) {
    workers.clear();
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    pool.Schedule([&] {
      pool.ParallelFor(16, 1, [&](int64_t, int64_t) {
        {
          std::lock_guard<std::mutex> lk(mu);
          workers.insert(std::this_thread::get_id());
        }
        // Hold each chunk long enough for idle workers to claim others.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      });
      std::lock_guard<std::mutex> lk(mu);
      done = true;
      cv.notify_one();
    });
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return done; });
  }
  EXPECT_GT(workers.size(), 1u);
}

TEST(ThreadPoolTest, ParallelForRespectsGrain) {
  ThreadPool pool(8);
  std::mutex mu;
  std::vector<int64_t> sizes;
  pool.ParallelFor(100, 50, [&](int64_t b, int64_t e) {
    std::lock_guard<std::mutex> lk(mu);
    sizes.push_back(e - b);
  });
  int64_t sum = std::accumulate(sizes.begin(), sizes.end(), int64_t{0});
  EXPECT_EQ(sum, 100);
  for (int64_t s : sizes) EXPECT_GE(s, 50);
}

// ---- RNG -----------------------------------------------------------------------

TEST(PhiloxTest, DeterministicForSameKeyAndCounter) {
  Philox a(123), b(123);
  auto x = a(7), y = b(7);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(x.v[i], y.v[i]);
}

TEST(PhiloxTest, DifferentKeysDiffer) {
  Philox a(123), b(124);
  auto x = a(7), y = b(7);
  bool all_equal = true;
  for (int i = 0; i < 4; ++i) all_equal &= (x.v[i] == y.v[i]);
  EXPECT_FALSE(all_equal);
}

TEST(PhiloxTest, DifferentCountersDiffer) {
  Philox a(123);
  auto x = a(7), y = a(8);
  bool all_equal = true;
  for (int i = 0; i < 4; ++i) all_equal &= (x.v[i] == y.v[i]);
  EXPECT_FALSE(all_equal);
}

TEST(RngTest, UniformFloatInRange) {
  Philox rng(42);
  for (uint64_t c = 0; c < 1000; ++c) {
    auto blk = rng(c);
    for (uint32_t w : blk.v) {
      float f = UniformFloat(w);
      EXPECT_GE(f, 0.0f);
      EXPECT_LT(f, 1.0f);
    }
  }
}

TEST(RngTest, FillUniformDeterministicAndBounded) {
  Tensor a(DType::kF32, Shape{1000});
  Tensor b(DType::kF32, Shape{1000});
  FillUniform(a, 7, -2.0, 3.0);
  FillUniform(b, 7, -2.0, 3.0);
  EXPECT_TRUE(a.BitwiseEquals(b));
  for (float v : a.data<float>()) {
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(RngTest, FillUniformSeedSensitive) {
  Tensor a(DType::kF32, Shape{100});
  Tensor b(DType::kF32, Shape{100});
  FillUniform(a, 1);
  FillUniform(b, 2);
  EXPECT_FALSE(a.BitwiseEquals(b));
}

TEST(RngTest, FillUniformF64MeanNearHalf) {
  Tensor t(DType::kF64, Shape{100000});
  FillUniform(t, 99);
  double sum = 0;
  for (double v : t.data<double>()) sum += v;
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, FillUniformComplex) {
  Tensor t(DType::kC128, Shape{100});
  FillUniform(t, 5, -1.0, 1.0);
  for (auto z : t.data<std::complex<double>>()) {
    EXPECT_GE(z.real(), -1.0);
    EXPECT_LT(z.real(), 1.0);
    EXPECT_GE(z.imag(), -1.0);
    EXPECT_LT(z.imag(), 1.0);
  }
}

TEST(RngTest, SpdMatrixIsSymmetricAndDiagonallyDominant) {
  const int64_t n = 32;
  Tensor a = RandomSpdMatrix(n, 3);
  for (int64_t r = 0; r < n; ++r) {
    double off = 0;
    for (int64_t c = 0; c < n; ++c) {
      EXPECT_DOUBLE_EQ((a.at<double>(r, c)), (a.at<double>(c, r)));
      if (r != c) off += std::abs(a.at<double>(r, c));
    }
    EXPECT_GT(a.at<double>(r, r), off / n);  // strong diagonal
  }
}

}  // namespace
}  // namespace tfhpc
