#include "distrib/server.h"

#include <chrono>
#include <optional>

#include "wire/coded.h"

namespace tfhpc::distrib {

// ----- ReplayCache -----------------------------------------------------------

int64_t ReplayCache::NowMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ReplayCache::ExpireLocked(int64_t now_ms) {
  if (options_.ttl_ms <= 0) return;
  // Recency order doubles as touch order (Lookup refreshes both), so the
  // LRU tail is always the stalest entry: sweep from there and stop at the
  // first live one.
  while (!lru_.empty()) {
    auto it = responses_.find(lru_.back());
    if (it == responses_.end()) {  // defensive; should not happen
      lru_.pop_back();
      continue;
    }
    if (now_ms - it->second.last_touch_ms < options_.ttl_ms) break;
    responses_.erase(it);
    lru_.pop_back();
    expirations_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool ReplayCache::Lookup(uint64_t client_id, uint64_t request_id,
                         wire::RpcEnvelope* response) {
  std::lock_guard<std::mutex> lk(mu_);
  const int64_t now = NowMs();
  ExpireLocked(now);
  auto it = responses_.find(Key{client_id, request_id});
  if (it == responses_.end()) return false;
  *response = it->second.response;
  it->second.last_touch_ms = now;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);  // refresh recency
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ReplayCache::Insert(uint64_t client_id, uint64_t request_id,
                         const wire::RpcEnvelope& response) {
  std::lock_guard<std::mutex> lk(mu_);
  const int64_t now = NowMs();
  ExpireLocked(now);
  const Key key{client_id, request_id};
  if (responses_.count(key)) return;
  while (responses_.size() >= std::max<size_t>(1, options_.max_entries)) {
    responses_.erase(lru_.back());
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  lru_.push_front(key);
  responses_.emplace(key, Entry{response, lru_.begin(), now});
}

size_t ReplayCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return responses_.size();
}

// ----- payload codecs ---------------------------------------------------------

std::string RunStepRequest::Serialize() const {
  std::string out;
  wire::CodedOutput co(&out);
  for (const auto& [name, tensor] : feeds) {
    std::string entry;
    wire::CodedOutput eo(&entry);
    eo.WriteString(1, name);
    eo.WriteMessage(2, wire::SerializeTensor(tensor));
    co.WriteMessage(1, entry);
  }
  for (const auto& f : fetches) co.WriteString(2, f);
  for (const auto& t : targets) co.WriteString(3, t);
  co.WriteBool(4, simulate);
  if (step_handle != 0) co.WriteUInt64(5, step_handle);
  return out;
}

Result<RunStepRequest> RunStepRequest::Parse(const std::string& payload) {
  wire::CodedInput in(payload);
  RunStepRequest req;
  while (!in.AtEnd()) {
    uint32_t field;
    wire::WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    switch (field) {
      case 1: {
        const uint8_t* d;
        size_t s;
        TFHPC_RETURN_IF_ERROR(in.ReadBytesView(&d, &s));
        wire::CodedInput ein(d, s);
        std::string name;
        Tensor tensor;
        while (!ein.AtEnd()) {
          uint32_t ef;
          wire::WireType ewt;
          TFHPC_RETURN_IF_ERROR(ein.ReadTag(&ef, &ewt));
          if (ef == 1) {
            TFHPC_RETURN_IF_ERROR(ein.ReadString(&name));
          } else if (ef == 2) {
            const uint8_t* td;
            size_t ts;
            TFHPC_RETURN_IF_ERROR(ein.ReadBytesView(&td, &ts));
            TFHPC_ASSIGN_OR_RETURN(tensor, wire::ParseTensor(td, ts));
          } else {
            TFHPC_RETURN_IF_ERROR(ein.SkipField(ewt));
          }
        }
        req.feeds.emplace(std::move(name), std::move(tensor));
        break;
      }
      case 2: {
        std::string s;
        TFHPC_RETURN_IF_ERROR(in.ReadString(&s));
        req.fetches.push_back(std::move(s));
        break;
      }
      case 3: {
        std::string s;
        TFHPC_RETURN_IF_ERROR(in.ReadString(&s));
        req.targets.push_back(std::move(s));
        break;
      }
      case 4: {
        uint64_t v;
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
        req.simulate = v != 0;
        break;
      }
      case 5: {
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&req.step_handle));
        break;
      }
      default:
        TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  return req;
}

std::string EncodeQueuePayload(const std::string& queue, const Tensor* tensor,
                               int64_t capacity) {
  std::string out;
  wire::CodedOutput co(&out);
  co.WriteString(1, queue);
  if (tensor != nullptr) co.WriteMessage(2, wire::SerializeTensor(*tensor));
  if (capacity > 0) co.WriteUInt64(3, static_cast<uint64_t>(capacity));
  return out;
}

Status DecodeQueuePayload(const std::string& payload, std::string* queue,
                          Tensor* tensor, int64_t* capacity) {
  wire::CodedInput in(payload);
  *capacity = 0;
  while (!in.AtEnd()) {
    uint32_t field;
    wire::WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    if (field == 1) {
      TFHPC_RETURN_IF_ERROR(in.ReadString(queue));
    } else if (field == 2 && tensor != nullptr) {
      const uint8_t* d;
      size_t s;
      TFHPC_RETURN_IF_ERROR(in.ReadBytesView(&d, &s));
      TFHPC_ASSIGN_OR_RETURN(*tensor, wire::ParseTensor(d, s));
    } else if (field == 3) {
      uint64_t v;
      TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
      *capacity = static_cast<int64_t>(v);
    } else {
      TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  if (queue->empty()) return InvalidArgument("queue payload without name");
  return Status::OK();
}

namespace {

// Appends a length-delimited tensor message whose content bytes ride as a
// buffer view: the tag + total length + tensor header go into `head`, the
// content (if any) stays in the tensor's buffer. The tensor message must be
// the FINAL field of the frame so the decoder can splice head-remainder +
// view back together.
wire::PayloadRef FinishWithTensorView(std::string head, uint32_t field,
                                      const Tensor& tensor) {
  wire::PayloadRef tp = wire::SerializeTensorView(tensor);
  wire::CodedOutput co(&head);
  co.WriteTag(field, wire::WireType::kLengthDelimited);
  co.WriteVarint(tp.size());
  head.append(tp.head());
  if (!tp.is_view()) return wire::PayloadRef(std::move(head));
  return wire::PayloadRef::View(std::move(head), tp.buffer(),
                                tp.view_offset(), tp.view_size());
}

// Inverse of FinishWithTensorView at the decoder: `in` is positioned just
// after the tensor field's length varint (`len`); the tensor message is the
// rest of the head plus the whole view.
Status ParseTrailingTensorView(const wire::PayloadRef& payload,
                               wire::CodedInput& in, uint64_t len,
                               Tensor* tensor) {
  if (tensor == nullptr) {
    return InvalidArgument("unexpected tensor in payload");
  }
  if (len != in.remaining() + payload.view_size()) {
    return InvalidArgument("payload: tensor view must terminate the frame");
  }
  std::string sub_head =
      payload.head().substr(payload.head().size() - in.remaining());
  wire::PayloadRef sub =
      wire::PayloadRef::View(std::move(sub_head), payload.buffer(),
                             payload.view_offset(), payload.view_size());
  TFHPC_ASSIGN_OR_RETURN(*tensor, wire::ParseTensorView(sub));
  return Status::OK();
}

}  // namespace

wire::PayloadRef EncodeQueuePayloadView(const std::string& queue,
                                        const Tensor* tensor,
                                        int64_t capacity) {
  std::string head;
  wire::CodedOutput co(&head);
  co.WriteString(1, queue);
  if (capacity > 0) co.WriteUInt64(3, static_cast<uint64_t>(capacity));
  if (tensor == nullptr) return wire::PayloadRef(std::move(head));
  return FinishWithTensorView(std::move(head), 2, *tensor);
}

Status DecodeQueuePayloadView(const wire::PayloadRef& payload,
                              std::string* queue, Tensor* tensor,
                              int64_t* capacity) {
  if (!payload.is_view()) {
    return DecodeQueuePayload(payload.head(), queue, tensor, capacity);
  }
  wire::CodedInput in(payload.head());
  *capacity = 0;
  while (!in.AtEnd()) {
    uint32_t field;
    wire::WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    if (field == 1) {
      TFHPC_RETURN_IF_ERROR(in.ReadString(queue));
    } else if (field == 3) {
      uint64_t v;
      TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
      *capacity = static_cast<int64_t>(v);
    } else if (field == 2 && wt == wire::WireType::kLengthDelimited) {
      uint64_t len;
      TFHPC_RETURN_IF_ERROR(in.ReadVarint(&len));
      TFHPC_RETURN_IF_ERROR(ParseTrailingTensorView(payload, in, len, tensor));
      break;
    } else {
      TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  if (queue->empty()) return InvalidArgument("queue payload without name");
  return Status::OK();
}

wire::PayloadRef EncodeVarPayloadView(const std::string& var,
                                      const Tensor* tensor, bool accumulate,
                                      bool want_value) {
  std::string head;
  wire::CodedOutput co(&head);
  co.WriteString(1, var);
  co.WriteBool(3, accumulate);
  co.WriteBool(4, want_value);
  if (tensor == nullptr) return wire::PayloadRef(std::move(head));
  return FinishWithTensorView(std::move(head), 2, *tensor);
}

Status DecodeVarPayloadView(const wire::PayloadRef& payload, std::string* var,
                            Tensor* tensor, bool* accumulate,
                            bool* want_value) {
  if (!payload.is_view()) {
    return DecodeVarPayload(payload.head(), var, tensor, accumulate,
                            want_value);
  }
  wire::CodedInput in(payload.head());
  *accumulate = false;
  *want_value = false;
  while (!in.AtEnd()) {
    uint32_t field;
    wire::WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    uint64_t v = 0;
    if (field == 1) {
      TFHPC_RETURN_IF_ERROR(in.ReadString(var));
    } else if (field == 3) {
      TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
      *accumulate = v != 0;
    } else if (field == 4) {
      TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
      *want_value = v != 0;
    } else if (field == 2 && wt == wire::WireType::kLengthDelimited) {
      uint64_t len;
      TFHPC_RETURN_IF_ERROR(in.ReadVarint(&len));
      TFHPC_RETURN_IF_ERROR(ParseTrailingTensorView(payload, in, len, tensor));
      break;
    } else {
      TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  if (var->empty()) return InvalidArgument("var payload without name");
  return Status::OK();
}

std::string EncodeVarPayload(const std::string& var, const Tensor* tensor,
                             bool accumulate, bool want_value) {
  std::string out;
  wire::CodedOutput co(&out);
  co.WriteString(1, var);
  if (tensor != nullptr) co.WriteMessage(2, wire::SerializeTensor(*tensor));
  co.WriteBool(3, accumulate);
  co.WriteBool(4, want_value);
  return out;
}

Status DecodeVarPayload(const std::string& payload, std::string* var,
                        Tensor* tensor, bool* accumulate, bool* want_value) {
  wire::CodedInput in(payload);
  *accumulate = false;
  *want_value = false;
  while (!in.AtEnd()) {
    uint32_t field;
    wire::WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    uint64_t v = 0;
    if (field == 1) {
      TFHPC_RETURN_IF_ERROR(in.ReadString(var));
    } else if (field == 2 && tensor != nullptr) {
      const uint8_t* d;
      size_t s;
      TFHPC_RETURN_IF_ERROR(in.ReadBytesView(&d, &s));
      TFHPC_ASSIGN_OR_RETURN(*tensor, wire::ParseTensor(d, s));
    } else if (field == 3) {
      TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
      *accumulate = v != 0;
    } else if (field == 4) {
      TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
      *want_value = v != 0;
    } else {
      TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  if (var->empty()) return InvalidArgument("var payload without name");
  return Status::OK();
}

std::string EncodeTensorList(const std::vector<Tensor>& tensors) {
  std::string out;
  wire::CodedOutput co(&out);
  for (const Tensor& t : tensors) co.WriteMessage(1, wire::SerializeTensor(t));
  return out;
}

Result<std::vector<Tensor>> DecodeTensorList(const std::string& payload) {
  wire::CodedInput in(payload);
  std::vector<Tensor> tensors;
  while (!in.AtEnd()) {
    uint32_t field;
    wire::WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    if (field == 1) {
      const uint8_t* d;
      size_t s;
      TFHPC_RETURN_IF_ERROR(in.ReadBytesView(&d, &s));
      TFHPC_ASSIGN_OR_RETURN(Tensor t, wire::ParseTensor(d, s));
      tensors.push_back(std::move(t));
    } else {
      TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  return tensors;
}

std::string EncodeNamedTensors(const std::map<std::string, Tensor>& vars) {
  std::string out;
  wire::CodedOutput co(&out);
  for (const auto& [name, tensor] : vars) {
    std::string entry;
    wire::CodedOutput eo(&entry);
    eo.WriteString(1, name);
    eo.WriteMessage(2, wire::SerializeTensor(tensor));
    co.WriteMessage(1, entry);
  }
  return out;
}

Result<std::map<std::string, Tensor>> DecodeNamedTensors(
    const std::string& payload) {
  wire::CodedInput in(payload);
  std::map<std::string, Tensor> vars;
  while (!in.AtEnd()) {
    uint32_t field;
    wire::WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    if (field != 1) {
      TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
      continue;
    }
    const uint8_t* d;
    size_t s;
    TFHPC_RETURN_IF_ERROR(in.ReadBytesView(&d, &s));
    wire::CodedInput ein(d, s);
    std::string name;
    Tensor tensor;
    while (!ein.AtEnd()) {
      uint32_t ef;
      wire::WireType ewt;
      TFHPC_RETURN_IF_ERROR(ein.ReadTag(&ef, &ewt));
      if (ef == 1) {
        TFHPC_RETURN_IF_ERROR(ein.ReadString(&name));
      } else if (ef == 2) {
        const uint8_t* td;
        size_t ts;
        TFHPC_RETURN_IF_ERROR(ein.ReadBytesView(&td, &ts));
        TFHPC_ASSIGN_OR_RETURN(tensor, wire::ParseTensor(td, ts));
      } else {
        TFHPC_RETURN_IF_ERROR(ein.SkipField(ewt));
      }
    }
    if (name.empty()) return InvalidArgument("named tensor entry without name");
    vars.emplace(std::move(name), std::move(tensor));
  }
  return vars;
}

namespace {

// Packed rendezvous send frame (_PackedSend): all but the last tensor are
// serialized inline as (key, tensor) entries (field 1); the last rides the
// trailing-view idiom — field 2 is its key, field 3 its tensor view — so
// the largest zero-copy path the transport offers still applies to one
// member of the group.
wire::PayloadRef EncodePackedSendPayload(const std::vector<std::string>& keys,
                                         const std::vector<Tensor>& tensors) {
  std::string head;
  wire::CodedOutput co(&head);
  for (size_t i = 0; i + 1 < keys.size(); ++i) {
    std::string entry;
    wire::CodedOutput eo(&entry);
    eo.WriteString(1, keys[i]);
    eo.WriteMessage(2, wire::SerializeTensor(tensors[i]));
    co.WriteMessage(1, entry);
  }
  co.WriteString(2, keys.back());
  return FinishWithTensorView(std::move(head), 3, tensors.back());
}

Status DecodePackedSendPayload(const wire::PayloadRef& payload,
                               std::vector<std::string>* keys,
                               std::vector<Tensor>* tensors) {
  // For non-view payloads (a transport that flattened the frame) head() is
  // the whole frame and field 3 decodes as ordinary inline bytes.
  wire::CodedInput in(payload.head());
  std::string last_key;
  Tensor last_tensor;
  while (!in.AtEnd()) {
    uint32_t field;
    wire::WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    if (field == 1) {
      const uint8_t* d;
      size_t s;
      TFHPC_RETURN_IF_ERROR(in.ReadBytesView(&d, &s));
      wire::CodedInput ein(d, s);
      std::string key;
      Tensor tensor;
      while (!ein.AtEnd()) {
        uint32_t ef;
        wire::WireType ewt;
        TFHPC_RETURN_IF_ERROR(ein.ReadTag(&ef, &ewt));
        if (ef == 1) {
          TFHPC_RETURN_IF_ERROR(ein.ReadString(&key));
        } else if (ef == 2) {
          const uint8_t* td;
          size_t ts;
          TFHPC_RETURN_IF_ERROR(ein.ReadBytesView(&td, &ts));
          TFHPC_ASSIGN_OR_RETURN(tensor, wire::ParseTensor(td, ts));
        } else {
          TFHPC_RETURN_IF_ERROR(ein.SkipField(ewt));
        }
      }
      if (key.empty()) {
        return InvalidArgument("packed send entry without key");
      }
      keys->push_back(std::move(key));
      tensors->push_back(std::move(tensor));
    } else if (field == 2) {
      TFHPC_RETURN_IF_ERROR(in.ReadString(&last_key));
    } else if (field == 3 && wt == wire::WireType::kLengthDelimited) {
      if (payload.is_view()) {
        uint64_t len;
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&len));
        TFHPC_RETURN_IF_ERROR(
            ParseTrailingTensorView(payload, in, len, &last_tensor));
        break;
      }
      const uint8_t* d;
      size_t s;
      TFHPC_RETURN_IF_ERROR(in.ReadBytesView(&d, &s));
      TFHPC_ASSIGN_OR_RETURN(last_tensor, wire::ParseTensor(d, s));
    } else {
      TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  if (last_key.empty() || !last_tensor.valid()) {
    return InvalidArgument("packed send payload without trailing tensor");
  }
  keys->push_back(std::move(last_key));
  tensors->push_back(std::move(last_tensor));
  return Status::OK();
}

}  // namespace

// ----- Server ----------------------------------------------------------------

Result<std::unique_ptr<Server>> Server::Create(ServerDef def,
                                               InProcessRouter* router) {
  TFHPC_ASSIGN_OR_RETURN(std::string address,
                         def.cluster.TaskAddress(def.job, def.task));
  std::unique_ptr<Server> server(
      new Server(std::move(def), router, std::move(address)));
  TFHPC_RETURN_IF_ERROR(router->Register(
      server->address_, [raw = server.get()](const wire::RpcEnvelope& req) {
        return raw->Handle(req);
      }));
  return server;
}

namespace {
// Server-side client identities for outgoing rendezvous sends. Shares the
// id space with RemoteTask clients (both are "clients" to the receiver);
// starts high to stay visibly distinct in traces.
uint64_t NextServerClientId() {
  static std::atomic<uint64_t> next{1u << 20};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

Server::Server(ServerDef def, InProcessRouter* router, std::string address)
    : def_(std::move(def)),
      router_(router),
      address_(std::move(address)),
      replay_cache_(ReplayCacheOptions{def_.replay_cache_entries,
                                       def_.replay_cache_ttl_ms}),
      send_client_id_(NextServerClientId()) {
  devices_ = DeviceMgr::CreateLocal(def_.job, def_.task, def_.num_gpus,
                                    def_.gpu_model);
  if (def_.alloc_faults.enabled()) {
    AllocFaultInjector::Global().Install(def_.alloc_faults);
  }
  if (def_.max_inflight_steps > 0) {
    ServingOptions so = def_.serving;
    so.max_inflight = def_.max_inflight_steps;
    serving_ = std::make_unique<ServingController>(so);
  }
  // One long-lived session shared by every step: compiled Executables (and
  // their placement/kernel work) survive across RunStep requests instead of
  // dying with a per-request session.
  session_ = NewSession();
  session_->set_max_cached_executables(
      std::max<size_t>(1, def_.max_registered_steps));
  // Give kernels a path to remote rendezvous (_Send with a target): a
  // RendezvousSend RPC over this server's configured protocol, retried
  // under def.send_retry. The receiver dedups on (client_id, request_id),
  // so a retry after a lost response does not double-deposit the tensor.
  resources_.set_remote_send([this](const std::string& addr,
                                    const std::string& key,
                                    const Tensor& tensor) -> Status {
    wire::RpcEnvelope req;
    req.method = "RendezvousSend";
    req.client_id = send_client_id_;
    req.request_id =
        next_send_request_id_.fetch_add(1, std::memory_order_relaxed);
    // View payload: over RDMA the tensor bytes cross by buffer reference
    // (end-to-end zero-copy _Send); MPI stages them once; gRPC flattens.
    req.payload = EncodeQueuePayloadView(key, &tensor, 0);
    req.checksum = wire::PayloadChecksum(req.payload);
    return CallWithRetry(def_.send_retry, req.request_id, [&]() -> Status {
      TFHPC_ASSIGN_OR_RETURN(wire::RpcEnvelope resp,
                             router_->Call(addr, def_.protocol, req));
      if (resp.status_code != 0) {
        Status st(static_cast<Code>(resp.status_code), resp.status_msg);
        // Re-apply the wire transient bit (authoritative over the message).
        if (resp.transient && st.code() == Code::kResourceExhausted) {
          st = TransientResourceExhausted(resp.status_msg);
        }
        return st;
      }
      return Status::OK();
    });
  });
  // Batched variant for _PackedSend: every coalesced key/tensor pair of a
  // cross-task group crosses in ONE RendezvousSendPacked RPC. Same dedup
  // and retry contract as the scalar path: the receiver's replay cache
  // keyed on (client_id, request_id) answers a retried frame from the
  // cached response instead of re-depositing.
  resources_.set_remote_send_packed(
      [this](const std::string& addr, const std::vector<std::string>& keys,
             const std::vector<Tensor>& tensors) -> Status {
        if (keys.empty() || keys.size() != tensors.size()) {
          return InvalidArgument("packed send needs matching keys/tensors");
        }
        wire::RpcEnvelope req;
        req.method = "RendezvousSendPacked";
        req.client_id = send_client_id_;
        req.request_id =
            next_send_request_id_.fetch_add(1, std::memory_order_relaxed);
        req.payload = EncodePackedSendPayload(keys, tensors);
        req.checksum = wire::PayloadChecksum(req.payload);
        return CallWithRetry(def_.send_retry, req.request_id, [&]() -> Status {
          TFHPC_ASSIGN_OR_RETURN(wire::RpcEnvelope resp,
                                 router_->Call(addr, def_.protocol, req));
          if (resp.status_code != 0) {
            Status st(static_cast<Code>(resp.status_code), resp.status_msg);
            if (resp.transient && st.code() == Code::kResourceExhausted) {
              st = TransientResourceExhausted(resp.status_msg);
            }
            return st;
          }
          return Status::OK();
        });
      });
}

void Server::Shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  router_->Unregister(address_);
  // Unblock anything parked on this server's queues or rendezvous.
  resources_.CloseAllQueues();
  resources_.rendezvous().Abort(
      Cancelled("server " + address_ + " shut down"));
}

Server::~Server() { Shutdown(); }

std::unique_ptr<Session> Server::NewSession() {
  DeviceName default_device;
  default_device.job = def_.job;
  default_device.task = def_.task;
  return std::make_unique<Session>(&graph_, devices_.get(), &resources_,
                                   default_device);
}

Result<std::shared_ptr<const Executable>> Server::PrepareLocked(
    const std::vector<std::string>& feed_keys,
    const std::vector<std::string>& fetches,
    const std::vector<std::string>& targets) {
  std::lock_guard<std::mutex> lk(graph_mu_);
  return session_->Prepare(feed_keys, fetches, targets);
}

wire::RpcEnvelope Server::Handle(const wire::RpcEnvelope& request) {
  wire::RpcEnvelope response;
  response.method = request.method;
  response.request_id = request.request_id;

  // Integrity first: a frame corrupted in flight must neither be applied
  // nor poison the dedup cache. The reject is kUnavailable so clients
  // retry the (uncorrupted) send.
  if (request.checksum != 0 &&
      wire::PayloadChecksum(request.payload) != request.checksum) {
    checksum_rejects_.fetch_add(1, std::memory_order_relaxed);
    const Status st = Unavailable("payload checksum mismatch for " +
                                  request.method + " (corrupted in flight)");
    response.status_code = static_cast<int32_t>(st.code());
    response.status_msg = st.message();
    return response;
  }

  // Exactly-once: a retried or network-duplicated request replays the
  // cached response instead of re-running a non-idempotent handler.
  if (request.client_id != 0 &&
      replay_cache_.Lookup(request.client_id, request.request_id, &response)) {
    response.request_id = request.request_id;
    return response;
  }

  // Deadline propagation: rebuild the step's token from the wire deadline
  // (absolute steady-clock ns — valid because the in-process cluster shares
  // one clock) and refuse already-expired work before dispatching. Refusing
  // up front is the cheap half of overload protection: an expired step
  // would burn a worker slot producing a result nobody is waiting for.
  std::unique_ptr<CancellationToken> token;
  if (request.deadline_ns != 0) {
    token = std::make_unique<CancellationToken>(
        CancellationToken::Clock::time_point(
            std::chrono::nanoseconds(request.deadline_ns)));
    Status expired = token->Check();
    if (!expired.ok()) {
      expired_rejects_.fetch_add(1, std::memory_order_relaxed);
      response.status_code = static_cast<int32_t>(Code::kDeadlineExceeded);
      response.status_msg =
          request.method + " arrived after its deadline; refused";
      if (request.client_id != 0) {
        replay_cache_.Insert(request.client_id, request.request_id, response);
      }
      return response;
    }
  }

  auto result = Dispatch(request.method, request.payload, request.client_id,
                         token.get());
  if (result.ok()) {
    response.payload = std::move(*result);
  } else {
    response.status_code = static_cast<int32_t>(result.status().code());
    response.status_msg = result.status().message();
    // kResourceExhausted crosses the wire with its taxonomy: the transient
    // bit tells the client's RetryPolicy whether backoff-and-retry is
    // worthwhile (pool pressure) or futile (fixed-budget breach).
    response.transient = IsTransientResourceExhausted(result.status());
  }
  // Cache successes and permanent errors. Retryable failures (a transient
  // kUnavailable from e.g. a remote send inside RunStep, or pool-pressure
  // kResourceExhausted) stay uncached so the client's retry of the same
  // request id re-runs the handler instead of replaying the stale error.
  if (request.client_id != 0 &&
      !IsRetryable(Status(static_cast<Code>(response.status_code),
                          response.status_msg))) {
    replay_cache_.Insert(request.client_id, request.request_id, response);
  }
  return response;
}

Result<wire::PayloadRef> Server::Dispatch(const std::string& method,
                                          const wire::PayloadRef& payload,
                                          uint64_t client_id,
                                          CancellationToken* token) {
  // Methods that parse with the classic string codecs flatten here; a view
  // payload only ever reaches them over gRPC (already flat) or from legacy
  // senders, so the tensor-bearing hot paths below never pay this copy.
  std::string flat_scratch;

  if (method == "Ping") return payload;

  if (method == "ExtendGraph") {
    if (static_cast<int64_t>(payload.size()) > def_.max_graphdef_bytes) {
      return ResourceExhausted(
          "GraphDef of " + std::to_string(payload.size()) +
          " bytes exceeds the " + std::to_string(def_.max_graphdef_bytes) +
          "-byte ProtoBuf limit; keep loop state in variables and ship only "
          "the loop body (paper §IV)");
    }
    TFHPC_ASSIGN_OR_RETURN(
        wire::GraphDef def,
        wire::GraphDef::Parse(payload.Contiguous(&flat_scratch)));
    std::lock_guard<std::mutex> lk(graph_mu_);
    for (const auto& node_def : def.nodes) {
      TFHPC_ASSIGN_OR_RETURN(Node * n, graph_.AddNode(node_def));
      (void)n;
    }
    return wire::PayloadRef();
  }

  if (method == "RegisterStep") {
    TFHPC_ASSIGN_OR_RETURN(wire::RegisterStepRequest req,
                           wire::RegisterStepRequest::Parse(
                               payload.Contiguous(&flat_scratch)));
    TFHPC_ASSIGN_OR_RETURN(std::shared_ptr<const Executable> exe,
                           PrepareLocked(req.feeds, req.fetches, req.targets));
    wire::RegisterStepResponse resp;
    resp.graph_version = exe->graph_version();
    {
      std::lock_guard<std::mutex> lk(steps_mu_);
      // FIFO eviction: drop the oldest handle; its client re-registers on
      // the resulting kNotFound.
      while (registered_steps_.size() >=
             std::max<size_t>(1, def_.max_registered_steps)) {
        registered_steps_.erase(registered_steps_.begin());
      }
      resp.handle = next_step_handle_++;
      registered_steps_.emplace(
          resp.handle, RegisteredStep{std::move(req.feeds),
                                      std::move(req.fetches),
                                      std::move(req.targets), std::move(exe)});
    }
    steps_registered_.fetch_add(1, std::memory_order_relaxed);
    return wire::PayloadRef(resp.Serialize());
  }

  if (method == "RunStep") {
    TFHPC_ASSIGN_OR_RETURN(RunStepRequest req, RunStepRequest::Parse(
                               payload.Contiguous(&flat_scratch)));
    RunOptions options;
    options.simulate = req.simulate;
    options.cancellation = token;
    options.step_memory_limit_bytes = def_.step_memory_limit_bytes;
    std::shared_ptr<const Executable> exe;
    if (req.step_handle != 0) {
      RegisteredStep step;
      {
        std::lock_guard<std::mutex> lk(steps_mu_);
        auto it = registered_steps_.find(req.step_handle);
        if (it == registered_steps_.end()) {
          return NotFound("unknown step handle " +
                          std::to_string(req.step_handle) +
                          " (worker restarted or handle evicted); "
                          "re-register the step");
        }
        step = it->second;
      }
      exe = step.executable;
      if (exe->stale(graph_)) {
        // The graph was extended after this step compiled: recompile the
        // registered signature transparently and re-pin the handle.
        TFHPC_ASSIGN_OR_RETURN(
            exe, PrepareLocked(step.feeds, step.fetches, step.targets));
        std::lock_guard<std::mutex> lk(steps_mu_);
        auto it = registered_steps_.find(req.step_handle);
        if (it != registered_steps_.end()) it->second.executable = exe;
      }
    } else {
      std::vector<std::string> feed_keys;
      feed_keys.reserve(req.feeds.size());
      for (const auto& [key, tensor] : req.feeds) feed_keys.push_back(key);
      TFHPC_ASSIGN_OR_RETURN(
          exe, PrepareLocked(feed_keys, req.fetches, req.targets));
    }
    // Admission control: bounded in-flight steps with per-client fairness
    // AND a byte budget fed by the compiled step's static memory footprint.
    // The memory planner's static peak (an upper bound sound under
    // concurrency) is preferred; sessions compiled without a plan fall back
    // to the older sum-of-outputs estimate (a lower bound). Excess load
    // sheds with kUnavailable + retry-after, a queued step whose deadline
    // fires while waiting leaves with kDeadlineExceeded, and a step whose
    // footprint can never fit the budget is refused with permanent
    // kResourceExhausted. Admission sits after executable resolution so the
    // bound exists; compiling an unadmitted step is paid once per
    // signature, not per run.
    std::optional<ServingController::Slot> slot;
    if (serving_ != nullptr) {
      const int64_t admission_bytes = exe->static_peak_bytes() > 0
                                          ? exe->static_peak_bytes()
                                          : exe->estimated_bytes();
      slot.emplace(serving_.get(), std::to_string(client_id), token,
                   admission_bytes);
      TFHPC_RETURN_IF_ERROR(slot->status());
    }
    TFHPC_ASSIGN_OR_RETURN(std::vector<Tensor> outputs,
                           session_->RunPrepared(*exe, req.feeds, options));
    return wire::PayloadRef(EncodeTensorList(outputs));
  }

  if (method == "Enqueue") {
    std::string queue;
    Tensor tensor;
    int64_t capacity;
    TFHPC_RETURN_IF_ERROR(
        DecodeQueuePayloadView(payload, &queue, &tensor, &capacity));
    if (!tensor.valid()) return InvalidArgument("Enqueue without tensor");
    TFHPC_ASSIGN_OR_RETURN(FIFOQueue * q,
                           resources_.LookupOrCreateQueue(queue, capacity));
    TFHPC_RETURN_IF_ERROR(q->Enqueue(std::move(tensor), token));
    return wire::PayloadRef();
  }

  if (method == "Dequeue") {
    std::string queue;
    int64_t capacity;
    TFHPC_RETURN_IF_ERROR(
        DecodeQueuePayloadView(payload, &queue, nullptr, &capacity));
    TFHPC_ASSIGN_OR_RETURN(FIFOQueue * q,
                           resources_.LookupOrCreateQueue(queue, capacity));
    TFHPC_ASSIGN_OR_RETURN(Tensor t, q->Dequeue(token));
    return wire::SerializeTensorView(t);
  }

  if (method == "CloseQueue") {
    std::string queue;
    int64_t capacity;
    TFHPC_RETURN_IF_ERROR(
        DecodeQueuePayloadView(payload, &queue, nullptr, &capacity));
    TFHPC_ASSIGN_OR_RETURN(FIFOQueue * q,
                           resources_.LookupOrCreateQueue(queue, 0));
    q->Close();
    return wire::PayloadRef();
  }

  if (method == "VarWrite") {
    std::string var;
    Tensor tensor;
    bool accumulate, want_value;
    TFHPC_RETURN_IF_ERROR(
        DecodeVarPayloadView(payload, &var, &tensor, &accumulate,
                             &want_value));
    if (!tensor.valid()) return InvalidArgument("VarWrite without tensor");
    Variable* v = resources_.LookupOrCreateVariable(var);
    Tensor value;
    if (accumulate) {
      TFHPC_ASSIGN_OR_RETURN(value, v->Accumulate(tensor));
    } else {
      v->Write(tensor);
      value = tensor;
    }
    // The paper's STREAM explicitly avoids returning the value (it would
    // double the traffic); honour want_value.
    if (!want_value) return wire::PayloadRef();
    return wire::SerializeTensorView(value);
  }

  if (method == "AbortStep") {
    // Step cancellation: unblock every _Recv parked on this task (the
    // rendezvous stays poisoned until ResetStep) AND every thread blocked
    // in a queue Enqueue/Dequeue — including barrier waits parked inside
    // remote Dequeue handlers. Queues stay open: they are shared across
    // steps and tenants, so only the *waiters* fail, with kCancelled.
    const Status reason =
        Cancelled("step aborted" +
                  (payload.empty() ? ""
                                 : ": " + payload.Contiguous(&flat_scratch)));
    resources_.rendezvous().Abort(reason);
    resources_.CancelAllQueueWaiters(reason);
    return wire::PayloadRef();
  }

  if (method == "ResetStep") {
    resources_.rendezvous().Reset();
    return wire::PayloadRef();
  }

  if (method == "RendezvousSend") {
    std::string key;
    Tensor tensor;
    int64_t capacity;
    TFHPC_RETURN_IF_ERROR(
        DecodeQueuePayloadView(payload, &key, &tensor, &capacity));
    if (!tensor.valid()) return InvalidArgument("RendezvousSend without tensor");
    TFHPC_RETURN_IF_ERROR(resources_.rendezvous().Send(key, std::move(tensor)));
    return wire::PayloadRef();
  }

  if (method == "RendezvousSendPacked") {
    std::vector<std::string> keys;
    std::vector<Tensor> tensors;
    TFHPC_RETURN_IF_ERROR(DecodePackedSendPayload(payload, &keys, &tensors));
    for (size_t i = 0; i < keys.size(); ++i) {
      TFHPC_RETURN_IF_ERROR(
          resources_.rendezvous().Send(keys[i], std::move(tensors[i])));
    }
    return wire::PayloadRef();
  }

  if (method == "VarSnapshot") {
    return wire::PayloadRef(EncodeNamedTensors(resources_.VariableSnapshot()));
  }

  if (method == "VarRestore") {
    TFHPC_ASSIGN_OR_RETURN(auto vars, DecodeNamedTensors(payload.Contiguous(&flat_scratch)));
    resources_.RestoreVariables(vars);
    return wire::PayloadRef();
  }

  if (method == "VarRead") {
    std::string var;
    bool accumulate, want_value;
    TFHPC_RETURN_IF_ERROR(
        DecodeVarPayloadView(payload, &var, nullptr, &accumulate,
                             &want_value));
    Variable* v = resources_.LookupOrCreateVariable(var);
    TFHPC_ASSIGN_OR_RETURN(Tensor t, v->Read());
    return wire::SerializeTensorView(t);
  }

  return Unimplemented("unknown method '" + method + "'");
}

}  // namespace tfhpc::distrib
