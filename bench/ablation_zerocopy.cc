// Ablation: the zero-copy tensor data path (pooled buffers + payload views).
// A large tensor is pushed through each wire protocol twice — once with the
// classic inline payload (tensor bytes serialized into the envelope string)
// and once with the view payload (tensor bytes ride as a buffer reference,
// wire/payload.h) — and the transport's measured staging traffic is reported
// per step. RDMA forwards the buffer reference (0 payload copies), MPI
// stages the view exactly once, and gRPC flattens back to its full
// 2-serialize + wire-copy path, preserving Fig. 7's ordering.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "distrib/server.h"
#include "wire/messages.h"

using namespace tfhpc;

namespace {

struct Row {
  std::string protocol;
  std::string mode;  // "inline" or "view"
  double copied_mb_per_step = 0;
  double serialized_mb_per_step = 0;
  double forwarded_mb_per_step = 0;
  double views_per_step = 0;
};

constexpr double kMb = 1024.0 * 1024.0;

}  // namespace

int main() {
  bench::Header("Ablation — zero-copy payload views (64 MB tensor, VarWrite)",
                "DESIGN.md §9 (paper §VI-A: copy + serialization costs "
                "separate the protocols)");

  wire::ClusterDef def;
  wire::JobDef job;
  job.name = "zc";
  job.task_addrs = {"zc:0"};
  def.jobs = {job};
  auto spec = distrib::ClusterSpec::Create(def).value();
  distrib::InProcessRouter router;
  auto server = distrib::Server::Create({spec, "zc", 0, 0}, &router).value();

  const int64_t n = 16 << 20;  // 16M f32 = 64 MB
  const int rounds = 4;
  Tensor payload(DType::kF32, Shape{n});
  float* data = payload.mutable_data<float>();
  for (int64_t i = 0; i < n; ++i) data[i] = static_cast<float>(i) * 0.5f;
  const double payload_mb = static_cast<double>(payload.bytes()) / kMb;

  struct Proto {
    const char* name;
    distrib::WireProtocol proto;
  };
  const Proto protos[] = {{"gRPC", distrib::WireProtocol::kGrpc},
                          {"MPI", distrib::WireProtocol::kMpi},
                          {"RDMA", distrib::WireProtocol::kRdma}};

  std::vector<Row> rows;
  for (const Proto& p : protos) {
    for (const bool view : {false, true}) {
      router.ResetStats();
      for (int r = 0; r < rounds; ++r) {
        wire::RpcEnvelope req;
        req.method = "VarWrite";
        req.payload =
            view ? distrib::EncodeVarPayloadView("v", &payload, false, false)
                 : wire::PayloadRef(
                       distrib::EncodeVarPayload("v", &payload, false, false));
        req.checksum = wire::PayloadChecksum(req.payload);
        auto resp = router.Call("zc:0", p.proto, req);
        TFHPC_CHECK(resp.ok()) << resp.status().ToString();
        TFHPC_CHECK(resp->status_code == 0) << resp->status_msg;
      }
      const distrib::TransportStats& st = router.stats(p.proto);
      Row row;
      row.protocol = p.name;
      row.mode = view ? "view" : "inline";
      row.copied_mb_per_step =
          static_cast<double>(st.bytes_copied.load()) / rounds / kMb;
      row.serialized_mb_per_step =
          static_cast<double>(st.bytes_serialized.load()) / rounds / kMb;
      row.forwarded_mb_per_step =
          static_cast<double>(st.bytes_forwarded.load()) / rounds / kMb;
      row.views_per_step =
          static_cast<double>(st.views_forwarded.load()) / rounds;
      rows.push_back(row);
    }
  }

  std::printf("%-8s %-8s %14s %14s %14s %8s\n", "proto", "payload",
              "copied MB/step", "serial MB/step", "fwd MB/step", "views");
  bench::Rule();
  for (const Row& r : rows) {
    std::printf("%-8s %-8s %14.1f %14.1f %14.1f %8.0f\n", r.protocol.c_str(),
                r.mode.c_str(), r.copied_mb_per_step, r.serialized_mb_per_step,
                r.forwarded_mb_per_step, r.views_per_step);
  }
  bench::Rule();

  // The headline claim: switching RDMA to view payloads removes the payload
  // staging copy entirely (>= 2x fewer copied bytes; in practice ~payload/0).
  double rdma_inline = 0, rdma_view = 0;
  for (const Row& r : rows) {
    if (r.protocol == "RDMA" && r.mode == "inline")
      rdma_inline = r.copied_mb_per_step;
    if (r.protocol == "RDMA" && r.mode == "view")
      rdma_view = r.copied_mb_per_step;
  }
  const double reduction =
      rdma_view > 0 ? rdma_inline / rdma_view : rdma_inline / 0.001;
  std::printf("RDMA copied bytes: %.1f MB/step inline -> %.1f MB/step view "
              "(%.0fx reduction; tensor rides as a buffer reference)\n",
              rdma_inline, rdma_view, reduction);
  TFHPC_CHECK(rdma_inline >= 2 * rdma_view + payload_mb / 2)
      << "view payloads should at least halve RDMA staging copies";

  bench::JsonResults json("zerocopy");
  json.Meta("payload_mb", payload_mb)
      .Meta("rounds", static_cast<double>(rounds))
      .Meta("rdma_copy_reduction_x", reduction);
  for (const Row& r : rows) {
    json.Record()
        .Str("protocol", r.protocol)
        .Str("mode", r.mode)
        .Num("copied_mb_per_step", r.copied_mb_per_step)
        .Num("serialized_mb_per_step", r.serialized_mb_per_step)
        .Num("forwarded_mb_per_step", r.forwarded_mb_per_step)
        .Num("views_per_step", r.views_per_step);
  }
  json.WriteFile("BENCH_zerocopy.json");
  return 0;
}
