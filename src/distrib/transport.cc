#include "distrib/transport.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "core/rng.h"

namespace tfhpc::distrib {

const char* WireProtocolName(WireProtocol p) {
  switch (p) {
    case WireProtocol::kGrpc: return "grpc";
    case WireProtocol::kMpi: return "mpi";
    case WireProtocol::kRdma: return "rdma";
  }
  return "?";
}

void TransportStats::Reset() {
  calls.store(0);
  payload_bytes.store(0);
  bytes_serialized.store(0);
  bytes_copied.store(0);
  views_forwarded.store(0);
  bytes_forwarded.store(0);
  faults_dropped_request.store(0);
  faults_dropped_response.store(0);
  faults_duplicated.store(0);
  faults_delayed.store(0);
  faults_corrupted.store(0);
  faults_partition_refused.store(0);
  faults_kill_refused.store(0);
  faults_hang_blocked.store(0);
}

void InProcessRouter::ResetStats() {
  for (TransportStats& st : stats_) st.Reset();
}

void InProcessRouter::EnableChaos(const ChaosConfig& config) {
  std::lock_guard<std::mutex> lk(mu_);
  chaos_ = config;
  chaos_enabled_ = true;
  chaos_counter_.store(0);
}

void InProcessRouter::DisableChaos() {
  std::lock_guard<std::mutex> lk(mu_);
  chaos_enabled_ = false;
}

void InProcessRouter::Partition(const std::string& addr) {
  std::lock_guard<std::mutex> lk(mu_);
  partitioned_.insert(addr);
}

void InProcessRouter::Heal(const std::string& addr) {
  std::lock_guard<std::mutex> lk(mu_);
  partitioned_.erase(addr);
}

bool InProcessRouter::IsPartitioned(const std::string& addr) const {
  std::lock_guard<std::mutex> lk(mu_);
  return partitioned_.count(addr) > 0;
}

void InProcessRouter::Kill(const std::string& addr) {
  std::lock_guard<std::mutex> lk(mu_);
  killed_.insert(addr);
  liveness_cv_.notify_all();
}

void InProcessRouter::Hang(const std::string& addr, int64_t max_block_ms) {
  std::lock_guard<std::mutex> lk(mu_);
  hung_[addr] = max_block_ms;
  liveness_cv_.notify_all();
}

void InProcessRouter::Unhang(const std::string& addr) {
  std::lock_guard<std::mutex> lk(mu_);
  hung_.erase(addr);
  liveness_cv_.notify_all();
}

void InProcessRouter::Revive(const std::string& addr) {
  std::lock_guard<std::mutex> lk(mu_);
  killed_.erase(addr);
  hung_.erase(addr);
  liveness_cv_.notify_all();
}

bool InProcessRouter::IsKilled(const std::string& addr) const {
  std::lock_guard<std::mutex> lk(mu_);
  return killed_.count(addr) > 0;
}

bool InProcessRouter::IsHung(const std::string& addr) const {
  std::lock_guard<std::mutex> lk(mu_);
  return hung_.count(addr) > 0;
}

Status InProcessRouter::AdmitCall(const std::string& addr,
                                  TransportStats& st) {
  std::unique_lock<std::mutex> lk(mu_);
  if (killed_.count(addr)) {
    st.faults_kill_refused.fetch_add(1, std::memory_order_relaxed);
    return Unavailable("fail-stop: worker " + addr + " is dead");
  }
  auto it = hung_.find(addr);
  if (it == hung_.end()) return Status::OK();
  // The peer is wedged: the caller's thread blocks here the way it would on
  // a stalled TCP connection. A Kill releases it with the connection-reset
  // error; Unhang/Revive let it proceed; the cap bounds test teardown.
  st.faults_hang_blocked.fetch_add(1, std::memory_order_relaxed);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(it->second);
  while (hung_.count(addr) && !killed_.count(addr)) {
    if (liveness_cv_.wait_until(lk, deadline) == std::cv_status::timeout &&
        hung_.count(addr) && !killed_.count(addr)) {
      return DeadlineExceeded("rpc to hung worker " + addr + " timed out");
    }
  }
  if (killed_.count(addr)) {
    st.faults_kill_refused.fetch_add(1, std::memory_order_relaxed);
    return Unavailable("fail-stop: worker " + addr +
                       " died while the call was in flight");
  }
  return Status::OK();
}

InProcessRouter::ChaosDraw InProcessRouter::DrawChaos() {
  ChaosDraw draw;
  ChaosConfig cfg;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!chaos_enabled_) return draw;
    cfg = chaos_;
  }
  // Each call consumes one Philox block: four independent 32-bit draws,
  // one per fault dimension. Deterministic in (seed, call index).
  const uint64_t idx =
      static_cast<uint64_t>(chaos_counter_.fetch_add(1, std::memory_order_relaxed));
  const Philox::Block block = Philox(cfg.seed)(idx);
  const float u_fail = UniformFloat(block.v[0]);
  // One budget split between the two drop kinds: request loss first, then
  // response loss in the adjacent probability band.
  draw.drop_request = u_fail < cfg.drop_request_rate;
  draw.drop_response =
      !draw.drop_request &&
      u_fail < cfg.drop_request_rate + cfg.drop_response_rate;
  draw.duplicate = UniformFloat(block.v[1]) < cfg.duplicate_rate;
  draw.corrupt = UniformFloat(block.v[2]) < cfg.corrupt_rate;
  if (UniformFloat(block.v[3]) < cfg.delay_rate && cfg.max_delay_ms > 0) {
    draw.delay_ms = 1 + static_cast<int64_t>(block.v[3] %
                                             static_cast<uint32_t>(cfg.max_delay_ms));
  }
  return draw;
}

Status InProcessRouter::Register(const std::string& addr,
                                 ServiceHandler handler) {
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = handlers_.emplace(addr, std::move(handler));
  (void)it;
  if (!inserted) return AlreadyExists("server already bound to " + addr);
  return Status::OK();
}

void InProcessRouter::Unregister(const std::string& addr) {
  std::lock_guard<std::mutex> lk(mu_);
  handlers_.erase(addr);
}

ServiceHandler InProcessRouter::LookupHandler(const std::string& addr) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = handlers_.find(addr);
  return it == handlers_.end() ? ServiceHandler() : it->second;
}

void InProcessRouter::InjectFault(const std::string& addr,
                                  const std::string& method, Status error,
                                  int times) {
  TFHPC_CHECK(!error.ok()) << "injected fault must be an error";
  std::lock_guard<std::mutex> lk(mu_);
  faults_.push_back(Fault{addr, method, std::move(error), times});
}

void InProcessRouter::ClearFaults() {
  std::lock_guard<std::mutex> lk(mu_);
  faults_.clear();
}

Status InProcessRouter::ConsumeFault(const std::string& addr,
                                     const std::string& method) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = faults_.begin(); it != faults_.end(); ++it) {
    if (it->addr == addr && (it->method == "*" || it->method == method)) {
      Status error = it->error;
      if (--it->remaining <= 0) faults_.erase(it);
      return error;
    }
  }
  return Status::OK();
}

Result<wire::RpcEnvelope> InProcessRouter::Call(
    const std::string& addr, WireProtocol proto,
    const wire::RpcEnvelope& request) {
  TransportStats& st = stats_[static_cast<size_t>(proto)];
  TFHPC_RETURN_IF_ERROR(AdmitCall(addr, st));
  if (IsPartitioned(addr)) {
    st.faults_partition_refused.fetch_add(1, std::memory_order_relaxed);
    return Unavailable("network partition: " + addr + " unreachable");
  }
  ServiceHandler handler = LookupHandler(addr);
  if (!handler) return Unavailable("no server at " + addr);
  TFHPC_RETURN_IF_ERROR(ConsumeFault(addr, request.method));
  const ChaosDraw draw = DrawChaos();
  if (draw.delay_ms > 0) {
    st.faults_delayed.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(draw.delay_ms));
  }
  if (draw.drop_request) {
    st.faults_dropped_request.fetch_add(1, std::memory_order_relaxed);
    return Unavailable("chaos: request to " + addr + "/" + request.method +
                       " dropped in flight");
  }
  st.calls.fetch_add(1, std::memory_order_relaxed);
  st.payload_bytes.fetch_add(static_cast<int64_t>(request.payload.size()),
                             std::memory_order_relaxed);

  wire::RpcEnvelope delivered;
  switch (proto) {
    case WireProtocol::kGrpc: {
      // Full protobuf round trip of the envelope.
      const std::string frame = request.Serialize();
      st.bytes_serialized.fetch_add(static_cast<int64_t>(frame.size()),
                                    std::memory_order_relaxed);
      std::string wire_buf(frame.size(), '\0');  // the TCP copy
      std::memcpy(wire_buf.data(), frame.data(), frame.size());
      st.bytes_copied.fetch_add(static_cast<int64_t>(wire_buf.size()),
                                std::memory_order_relaxed);
      TFHPC_ASSIGN_OR_RETURN(delivered, wire::RpcEnvelope::Parse(wire_buf));
      break;
    }
    case WireProtocol::kMpi: {
      // Header serialized; payload staged (send buffer) then wired.
      wire::RpcEnvelope header = request;
      header.payload.clear();
      const std::string header_frame = header.Serialize();
      st.bytes_serialized.fetch_add(
          static_cast<int64_t>(header_frame.size()), std::memory_order_relaxed);
      TFHPC_ASSIGN_OR_RETURN(delivered, wire::RpcEnvelope::Parse(header_frame));
      if (request.payload.is_view()) {
        // Registered (pinned) tensor memory: MPI can send straight from the
        // tensor buffer, so the payload is staged exactly once — into the
        // receiver's buffer.
        std::string recv_buf = request.payload.Flatten();
        st.bytes_copied.fetch_add(static_cast<int64_t>(recv_buf.size()),
                                  std::memory_order_relaxed);
        delivered.payload = std::move(recv_buf);
      } else {
        // Unpinned inline bytes: classic host send-buffer stage, then the
        // wire copy into the receiver's buffer (2 copies).
        const std::string& inline_bytes = request.payload.head();
        std::string staging(inline_bytes.size(), '\0');
        std::memcpy(staging.data(), inline_bytes.data(), inline_bytes.size());
        std::string recv_buf(staging.size(), '\0');
        std::memcpy(recv_buf.data(), staging.data(), staging.size());
        st.bytes_copied.fetch_add(2 * static_cast<int64_t>(staging.size()),
                                  std::memory_order_relaxed);
        delivered.payload = std::move(recv_buf);
      }
      break;
    }
    case WireProtocol::kRdma: {
      // Only the tiny header is exchanged via the side channel; the payload
      // either crosses by buffer reference (view: true zero-copy) or lands
      // in the remote buffer in one registered-buffer write.
      wire::RpcEnvelope header = request;
      header.payload.clear();
      const std::string header_frame = header.Serialize();
      st.bytes_serialized.fetch_add(
          static_cast<int64_t>(header_frame.size()), std::memory_order_relaxed);
      TFHPC_ASSIGN_OR_RETURN(delivered, wire::RpcEnvelope::Parse(header_frame));
      if (request.payload.is_view()) {
        // One-sided RDMA write of already-registered memory: the receiver
        // gets a reference to the same bytes; nothing is serialized or
        // copied in this process model.
        st.views_forwarded.fetch_add(1, std::memory_order_relaxed);
        st.bytes_forwarded.fetch_add(
            static_cast<int64_t>(request.payload.view_size()),
            std::memory_order_relaxed);
        delivered.payload = request.payload;
      } else {
        const std::string& inline_bytes = request.payload.head();
        std::string remote_buf(inline_bytes.size(), '\0');
        std::memcpy(remote_buf.data(), inline_bytes.data(),
                    inline_bytes.size());
        st.bytes_copied.fetch_add(static_cast<int64_t>(remote_buf.size()),
                                  std::memory_order_relaxed);
        delivered.payload = std::move(remote_buf);
      }
      break;
    }
  }

  if (draw.corrupt && !delivered.payload.empty()) {
    // Flip one deterministic byte in flight. The server detects the
    // mismatch against the envelope checksum and answers with retryable
    // kUnavailable instead of acting on garbage. Detaches view payloads
    // first so the sender's live tensor buffer is never mutated.
    st.faults_corrupted.fetch_add(1, std::memory_order_relaxed);
    delivered.payload.CorruptByteForTest(delivered.payload.size() / 2);
  }

  wire::RpcEnvelope response = handler(delivered);
  if (draw.duplicate) {
    // The network delivered the request twice: the handler runs again with
    // the identical envelope. Servers dedup on (client_id, request_id), so
    // non-idempotent ops still apply exactly once; the duplicate's response
    // is discarded, as a real client would discard it.
    st.faults_duplicated.fetch_add(1, std::memory_order_relaxed);
    (void)handler(delivered);
  }
  if (draw.drop_response) {
    st.faults_dropped_response.fetch_add(1, std::memory_order_relaxed);
    return Unavailable("chaos: response from " + addr + "/" + request.method +
                       " dropped in flight");
  }
  // Responses ride the same protocol; count their payload too.
  st.payload_bytes.fetch_add(static_cast<int64_t>(response.payload.size()),
                             std::memory_order_relaxed);
  return response;
}

}  // namespace tfhpc::distrib
