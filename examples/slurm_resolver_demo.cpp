// Slurm cluster-resolver demo (the paper's §III contribution): reads the
// Slurm-style environment (SLURM_JOB_NODELIST, SLURM_NTASKS_PER_NODE,
// SLURM_GPUS_ON_NODE) — or a built-in allocation when run outside a job —
// produces the TensorFlow ClusterSpec and the per-task GPU exposure masks,
// then boots the whole cluster in-process and pings every task.
//
//   SLURM_JOB_NODELIST='t01n[01-03]' ./slurm_resolver_demo
#include <cstdio>
#include <cstdlib>

#include "cluster/slurm.h"
#include "distrib/client.h"
#include "distrib/server.h"

using namespace tfhpc;

int main() {
  const char* nodelist_env = std::getenv("SLURM_JOB_NODELIST");
  const char* tasks_env = std::getenv("SLURM_NTASKS_PER_NODE");
  const char* gpus_env = std::getenv("SLURM_GPUS_ON_NODE");
  const std::string nodelist =
      nodelist_env != nullptr ? nodelist_env : "t01n[01-02],t02n05";
  const int tasks_per_node = tasks_env != nullptr ? std::atoi(tasks_env) : 2;
  const int gpus_per_node = gpus_env != nullptr ? std::atoi(gpus_env) : 2;

  std::printf("allocation: nodelist=%s, %d tasks/node, %d GPUs/node%s\n",
              nodelist.c_str(), tasks_per_node, gpus_per_node,
              nodelist_env != nullptr ? " (from environment)"
                                      : " (built-in demo values)");

  // One ps task plus workers filling the remaining slots (plane layout).
  auto hosts = cluster::ExpandNodeList(nodelist);
  if (!hosts.ok()) {
    std::fprintf(stderr, "bad nodelist: %s\n",
                 hosts.status().ToString().c_str());
    return 1;
  }
  const int total_slots = static_cast<int>(hosts->size()) * tasks_per_node;
  cluster::SlurmClusterResolver resolver(
      {{"ps", 1}, {"worker", total_slots - 1}}, nodelist, tasks_per_node,
      gpus_per_node);

  auto assignments = resolver.Assignments();
  if (!assignments.ok()) {
    std::fprintf(stderr, "resolver: %s\n",
                 assignments.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%-8s %-6s %-12s %-6s %s\n", "job", "task", "host", "port",
              "CUDA_VISIBLE_DEVICES");
  for (const auto& a : *assignments) {
    std::string mask;
    for (size_t i = 0; i < a.visible_gpus.size(); ++i) {
      if (i) mask += ",";
      mask += std::to_string(a.visible_gpus[i]);
    }
    std::printf("%-8s %-6d %-12s %-6d %s\n", a.job.c_str(), a.task_index,
                a.host.c_str(), a.port, mask.empty() ? "-" : mask.c_str());
  }

  // Boot every task as an in-process server off the generated ClusterSpec
  // and verify the cluster is reachable.
  auto def = resolver.ClusterSpec();
  auto spec = distrib::ClusterSpec::Create(*def);
  if (!spec.ok()) {
    std::fprintf(stderr, "spec: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  distrib::InProcessRouter router;
  std::vector<std::unique_ptr<distrib::Server>> servers;
  for (const auto& a : *assignments) {
    auto server = distrib::Server::Create(
        {*spec, a.job, a.task_index, static_cast<int>(a.visible_gpus.size())},
        &router);
    if (!server.ok()) {
      std::fprintf(stderr, "server: %s\n",
                   server.status().ToString().c_str());
      return 1;
    }
    servers.push_back(std::move(*server));
  }
  int alive = 0;
  for (const auto& s : servers) {
    alive += distrib::RemoteTask(&router, s->address(),
                                 distrib::WireProtocol::kRdma)
                 .Ping()
                 .ok();
  }
  std::printf("\ncluster up: %d/%zu tasks answer Ping\n", alive,
              servers.size());
  return alive == static_cast<int>(servers.size()) ? 0 : 1;
}
