// TensorFlow-Timeline-style tracing (the paper's Fig. 3): converts executed
// op records — real RunMetadata or simulated ReplayResults — into Chrome
// trace-event JSON loadable in chrome://tracing / Perfetto.
#pragma once

#include <string>
#include <vector>

#include "core/status.h"
#include "runtime/executor.h"
#include "sim/trace.h"

namespace tfhpc::timeline {

struct TraceEvent {
  std::string name;
  std::string category;
  std::string track;   // one row per device ("pid" in the chrome format)
  double start_us = 0;
  double duration_us = 0;
};

// Renders complete ("X" phase) events as a chrome trace JSON document.
std::string ToChromeTraceJson(const std::vector<TraceEvent>& events);

// From a real execution's RunMetadata (wall-clock microseconds per op).
std::vector<TraceEvent> FromRunMetadata(const RunMetadata& metadata);

// From a simulated replay: one event per SimOp with virtual timings.
// `labels`/`tracks` indexed by OpId (tracks may be empty -> "sim").
std::vector<TraceEvent> FromReplay(const sim::ReplayResult& result,
                                   const std::vector<std::string>& labels,
                                   const std::vector<std::string>& tracks);

// Writes the JSON to a file.
Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceEvent>& events);

}  // namespace tfhpc::timeline
