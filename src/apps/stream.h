// The paper's TensorFlow STREAM benchmark (§IV-A, Fig. 7): a 2-task cluster
// (parameter server + worker); the worker pushes a vector into the PS's
// variable with assign_add, repeatedly, and the invocation time estimates
// transfer cost. The evaluated value is explicitly NOT fetched back.
//
// Functional mode runs real bytes through real servers over a chosen wire
// protocol and verifies the accumulated variable. Simulation mode replays
// the same communication pattern on a machine model and reports MB/s the
// way Fig. 7 does.
#pragma once

#include "distrib/client.h"
#include "sim/machine.h"

namespace tfhpc::apps {

struct StreamOptions {
  int64_t message_bytes = 16 << 20;
  int rounds = 100;
  bool gpu_resident = true;  // tensors on GPU vs host memory
};

struct StreamResult {
  double seconds = 0;   // total time for all rounds
  double mbps = 0;      // paper metric: message_bytes * rounds / seconds
};

// Virtual-time STREAM on a machine model (one worker node, one PS node).
Result<StreamResult> SimulateStream(const sim::MachineConfig& cfg,
                                    sim::Protocol protocol,
                                    const StreamOptions& options);

// Real execution: boots a ps+worker cluster in-process, pushes `rounds`
// assign_adds of an f32 vector with `elements` entries, then verifies the
// accumulated value. Returns the wall-clock result (meaningful for
// correctness, not for figures).
Result<StreamResult> RunStreamFunctional(int64_t elements, int rounds,
                                         distrib::WireProtocol protocol);

}  // namespace tfhpc::apps
