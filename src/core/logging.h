// Minimal logging / assertion macros used across tfhpc.
//
// TFHPC_CHECK aborts on violated invariants (programming errors); recoverable
// conditions go through core/status.h instead.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tfhpc::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& msg) {
  std::fprintf(stderr, "TFHPC_CHECK failed at %s:%d: %s %s\n", file, line, expr,
               msg.c_str());
  std::abort();
}

// Stream collector so call sites can append context with <<.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessage() { CheckFailed(file_, line_, expr_, os_.str()); }
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream os_;
};

}  // namespace tfhpc::internal

#define TFHPC_CHECK(cond)                                          \
  if (cond) {                                                      \
  } else                                                           \
    ::tfhpc::internal::CheckMessage(__FILE__, __LINE__, #cond)

#define TFHPC_CHECK_EQ(a, b) TFHPC_CHECK((a) == (b))
#define TFHPC_CHECK_NE(a, b) TFHPC_CHECK((a) != (b))
#define TFHPC_CHECK_LT(a, b) TFHPC_CHECK((a) < (b))
#define TFHPC_CHECK_LE(a, b) TFHPC_CHECK((a) <= (b))
#define TFHPC_CHECK_GT(a, b) TFHPC_CHECK((a) > (b))
#define TFHPC_CHECK_GE(a, b) TFHPC_CHECK((a) >= (b))
