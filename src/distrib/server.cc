#include "distrib/server.h"

#include "wire/coded.h"

namespace tfhpc::distrib {

// ----- payload codecs ---------------------------------------------------------

std::string RunStepRequest::Serialize() const {
  std::string out;
  wire::CodedOutput co(&out);
  for (const auto& [name, tensor] : feeds) {
    std::string entry;
    wire::CodedOutput eo(&entry);
    eo.WriteString(1, name);
    eo.WriteMessage(2, wire::SerializeTensor(tensor));
    co.WriteMessage(1, entry);
  }
  for (const auto& f : fetches) co.WriteString(2, f);
  for (const auto& t : targets) co.WriteString(3, t);
  co.WriteBool(4, simulate);
  return out;
}

Result<RunStepRequest> RunStepRequest::Parse(const std::string& payload) {
  wire::CodedInput in(payload);
  RunStepRequest req;
  while (!in.AtEnd()) {
    uint32_t field;
    wire::WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    switch (field) {
      case 1: {
        const uint8_t* d;
        size_t s;
        TFHPC_RETURN_IF_ERROR(in.ReadBytesView(&d, &s));
        wire::CodedInput ein(d, s);
        std::string name;
        Tensor tensor;
        while (!ein.AtEnd()) {
          uint32_t ef;
          wire::WireType ewt;
          TFHPC_RETURN_IF_ERROR(ein.ReadTag(&ef, &ewt));
          if (ef == 1) {
            TFHPC_RETURN_IF_ERROR(ein.ReadString(&name));
          } else if (ef == 2) {
            const uint8_t* td;
            size_t ts;
            TFHPC_RETURN_IF_ERROR(ein.ReadBytesView(&td, &ts));
            TFHPC_ASSIGN_OR_RETURN(tensor, wire::ParseTensor(td, ts));
          } else {
            TFHPC_RETURN_IF_ERROR(ein.SkipField(ewt));
          }
        }
        req.feeds.emplace(std::move(name), std::move(tensor));
        break;
      }
      case 2: {
        std::string s;
        TFHPC_RETURN_IF_ERROR(in.ReadString(&s));
        req.fetches.push_back(std::move(s));
        break;
      }
      case 3: {
        std::string s;
        TFHPC_RETURN_IF_ERROR(in.ReadString(&s));
        req.targets.push_back(std::move(s));
        break;
      }
      case 4: {
        uint64_t v;
        TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
        req.simulate = v != 0;
        break;
      }
      default:
        TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  return req;
}

std::string EncodeQueuePayload(const std::string& queue, const Tensor* tensor,
                               int64_t capacity) {
  std::string out;
  wire::CodedOutput co(&out);
  co.WriteString(1, queue);
  if (tensor != nullptr) co.WriteMessage(2, wire::SerializeTensor(*tensor));
  if (capacity > 0) co.WriteUInt64(3, static_cast<uint64_t>(capacity));
  return out;
}

Status DecodeQueuePayload(const std::string& payload, std::string* queue,
                          Tensor* tensor, int64_t* capacity) {
  wire::CodedInput in(payload);
  *capacity = 0;
  while (!in.AtEnd()) {
    uint32_t field;
    wire::WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    if (field == 1) {
      TFHPC_RETURN_IF_ERROR(in.ReadString(queue));
    } else if (field == 2 && tensor != nullptr) {
      const uint8_t* d;
      size_t s;
      TFHPC_RETURN_IF_ERROR(in.ReadBytesView(&d, &s));
      TFHPC_ASSIGN_OR_RETURN(*tensor, wire::ParseTensor(d, s));
    } else if (field == 3) {
      uint64_t v;
      TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
      *capacity = static_cast<int64_t>(v);
    } else {
      TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  if (queue->empty()) return InvalidArgument("queue payload without name");
  return Status::OK();
}

std::string EncodeVarPayload(const std::string& var, const Tensor* tensor,
                             bool accumulate, bool want_value) {
  std::string out;
  wire::CodedOutput co(&out);
  co.WriteString(1, var);
  if (tensor != nullptr) co.WriteMessage(2, wire::SerializeTensor(*tensor));
  co.WriteBool(3, accumulate);
  co.WriteBool(4, want_value);
  return out;
}

Status DecodeVarPayload(const std::string& payload, std::string* var,
                        Tensor* tensor, bool* accumulate, bool* want_value) {
  wire::CodedInput in(payload);
  *accumulate = false;
  *want_value = false;
  while (!in.AtEnd()) {
    uint32_t field;
    wire::WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    uint64_t v = 0;
    if (field == 1) {
      TFHPC_RETURN_IF_ERROR(in.ReadString(var));
    } else if (field == 2 && tensor != nullptr) {
      const uint8_t* d;
      size_t s;
      TFHPC_RETURN_IF_ERROR(in.ReadBytesView(&d, &s));
      TFHPC_ASSIGN_OR_RETURN(*tensor, wire::ParseTensor(d, s));
    } else if (field == 3) {
      TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
      *accumulate = v != 0;
    } else if (field == 4) {
      TFHPC_RETURN_IF_ERROR(in.ReadVarint(&v));
      *want_value = v != 0;
    } else {
      TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  if (var->empty()) return InvalidArgument("var payload without name");
  return Status::OK();
}

std::string EncodeTensorList(const std::vector<Tensor>& tensors) {
  std::string out;
  wire::CodedOutput co(&out);
  for (const Tensor& t : tensors) co.WriteMessage(1, wire::SerializeTensor(t));
  return out;
}

Result<std::vector<Tensor>> DecodeTensorList(const std::string& payload) {
  wire::CodedInput in(payload);
  std::vector<Tensor> tensors;
  while (!in.AtEnd()) {
    uint32_t field;
    wire::WireType wt;
    TFHPC_RETURN_IF_ERROR(in.ReadTag(&field, &wt));
    if (field == 1) {
      const uint8_t* d;
      size_t s;
      TFHPC_RETURN_IF_ERROR(in.ReadBytesView(&d, &s));
      TFHPC_ASSIGN_OR_RETURN(Tensor t, wire::ParseTensor(d, s));
      tensors.push_back(std::move(t));
    } else {
      TFHPC_RETURN_IF_ERROR(in.SkipField(wt));
    }
  }
  return tensors;
}

// ----- Server ----------------------------------------------------------------

Result<std::unique_ptr<Server>> Server::Create(ServerDef def,
                                               InProcessRouter* router) {
  TFHPC_ASSIGN_OR_RETURN(std::string address,
                         def.cluster.TaskAddress(def.job, def.task));
  std::unique_ptr<Server> server(
      new Server(std::move(def), router, std::move(address)));
  TFHPC_RETURN_IF_ERROR(router->Register(
      server->address_, [raw = server.get()](const wire::RpcEnvelope& req) {
        return raw->Handle(req);
      }));
  return server;
}

Server::Server(ServerDef def, InProcessRouter* router, std::string address)
    : def_(std::move(def)), router_(router), address_(std::move(address)) {
  devices_ = DeviceMgr::CreateLocal(def_.job, def_.task, def_.num_gpus,
                                    def_.gpu_model);
  // Give kernels a path to remote rendezvous (_Send with a target): a
  // RendezvousSend RPC over this server's configured protocol.
  resources_.set_remote_send([this](const std::string& addr,
                                    const std::string& key,
                                    const Tensor& tensor) -> Status {
    wire::RpcEnvelope req;
    req.method = "RendezvousSend";
    req.payload = EncodeQueuePayload(key, &tensor, 0);
    TFHPC_ASSIGN_OR_RETURN(wire::RpcEnvelope resp,
                           router_->Call(addr, def_.protocol, req));
    if (resp.status_code != 0) {
      return Status(static_cast<Code>(resp.status_code), resp.status_msg);
    }
    return Status::OK();
  });
}

void Server::Shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  router_->Unregister(address_);
  // Unblock anything parked on this server's queues or rendezvous.
  resources_.CloseAllQueues();
  resources_.rendezvous().Abort(
      Cancelled("server " + address_ + " shut down"));
}

Server::~Server() { Shutdown(); }

std::unique_ptr<Session> Server::NewSession() {
  DeviceName default_device;
  default_device.job = def_.job;
  default_device.task = def_.task;
  return std::make_unique<Session>(&graph_, devices_.get(), &resources_,
                                   default_device);
}

wire::RpcEnvelope Server::Handle(const wire::RpcEnvelope& request) {
  wire::RpcEnvelope response;
  response.method = request.method;
  response.request_id = request.request_id;
  auto result = Dispatch(request.method, request.payload);
  if (result.ok()) {
    response.payload = std::move(*result);
  } else {
    response.status_code = static_cast<int32_t>(result.status().code());
    response.status_msg = result.status().message();
  }
  return response;
}

Result<std::string> Server::Dispatch(const std::string& method,
                                     const std::string& payload) {
  if (method == "Ping") return payload;

  if (method == "ExtendGraph") {
    if (static_cast<int64_t>(payload.size()) > def_.max_graphdef_bytes) {
      return ResourceExhausted(
          "GraphDef of " + std::to_string(payload.size()) +
          " bytes exceeds the " + std::to_string(def_.max_graphdef_bytes) +
          "-byte ProtoBuf limit; keep loop state in variables and ship only "
          "the loop body (paper §IV)");
    }
    TFHPC_ASSIGN_OR_RETURN(wire::GraphDef def, wire::GraphDef::Parse(payload));
    std::lock_guard<std::mutex> lk(graph_mu_);
    for (const auto& node_def : def.nodes) {
      TFHPC_ASSIGN_OR_RETURN(Node * n, graph_.AddNode(node_def));
      (void)n;
    }
    return std::string();
  }

  if (method == "RunStep") {
    TFHPC_ASSIGN_OR_RETURN(RunStepRequest req, RunStepRequest::Parse(payload));
    RunOptions options;
    options.simulate = req.simulate;
    auto session = NewSession();
    TFHPC_ASSIGN_OR_RETURN(
        std::vector<Tensor> outputs,
        session->Run(req.feeds, req.fetches, req.targets, options));
    return EncodeTensorList(outputs);
  }

  if (method == "Enqueue") {
    std::string queue;
    Tensor tensor;
    int64_t capacity;
    TFHPC_RETURN_IF_ERROR(
        DecodeQueuePayload(payload, &queue, &tensor, &capacity));
    if (!tensor.valid()) return InvalidArgument("Enqueue without tensor");
    TFHPC_ASSIGN_OR_RETURN(FIFOQueue * q,
                           resources_.LookupOrCreateQueue(queue, capacity));
    TFHPC_RETURN_IF_ERROR(q->Enqueue(std::move(tensor)));
    return std::string();
  }

  if (method == "Dequeue") {
    std::string queue;
    int64_t capacity;
    TFHPC_RETURN_IF_ERROR(
        DecodeQueuePayload(payload, &queue, nullptr, &capacity));
    TFHPC_ASSIGN_OR_RETURN(FIFOQueue * q,
                           resources_.LookupOrCreateQueue(queue, capacity));
    TFHPC_ASSIGN_OR_RETURN(Tensor t, q->Dequeue());
    return wire::SerializeTensor(t);
  }

  if (method == "CloseQueue") {
    std::string queue;
    int64_t capacity;
    TFHPC_RETURN_IF_ERROR(
        DecodeQueuePayload(payload, &queue, nullptr, &capacity));
    TFHPC_ASSIGN_OR_RETURN(FIFOQueue * q,
                           resources_.LookupOrCreateQueue(queue, 0));
    q->Close();
    return std::string();
  }

  if (method == "VarWrite") {
    std::string var;
    Tensor tensor;
    bool accumulate, want_value;
    TFHPC_RETURN_IF_ERROR(
        DecodeVarPayload(payload, &var, &tensor, &accumulate, &want_value));
    if (!tensor.valid()) return InvalidArgument("VarWrite without tensor");
    Variable* v = resources_.LookupOrCreateVariable(var);
    Tensor value;
    if (accumulate) {
      TFHPC_ASSIGN_OR_RETURN(value, v->Accumulate(tensor));
    } else {
      v->Write(tensor);
      value = tensor;
    }
    // The paper's STREAM explicitly avoids returning the value (it would
    // double the traffic); honour want_value.
    if (!want_value) return std::string();
    return wire::SerializeTensor(value);
  }

  if (method == "AbortStep") {
    // Step cancellation: unblock every _Recv parked on this task. The
    // rendezvous stays poisoned until ResetStep.
    resources_.rendezvous().Abort(
        Cancelled("step aborted" +
                  (payload.empty() ? "" : ": " + payload)));
    return std::string();
  }

  if (method == "ResetStep") {
    resources_.rendezvous().Reset();
    return std::string();
  }

  if (method == "RendezvousSend") {
    std::string key;
    Tensor tensor;
    int64_t capacity;
    TFHPC_RETURN_IF_ERROR(DecodeQueuePayload(payload, &key, &tensor, &capacity));
    if (!tensor.valid()) return InvalidArgument("RendezvousSend without tensor");
    TFHPC_RETURN_IF_ERROR(resources_.rendezvous().Send(key, std::move(tensor)));
    return std::string();
  }

  if (method == "VarRead") {
    std::string var;
    bool accumulate, want_value;
    TFHPC_RETURN_IF_ERROR(
        DecodeVarPayload(payload, &var, nullptr, &accumulate, &want_value));
    Variable* v = resources_.LookupOrCreateVariable(var);
    TFHPC_ASSIGN_OR_RETURN(Tensor t, v->Read());
    return wire::SerializeTensor(t);
  }

  return Unimplemented("unknown method '" + method + "'");
}

}  // namespace tfhpc::distrib
