// Fault-tolerance layer tests: chaos transport schedules (drop / delay /
// duplicate / corrupt / partition), retry policies with deadlines,
// server-side request dedup (exactly-once for non-idempotent ops) and
// DistributedSession step-level recovery with checkpoint restore.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "core/rng.h"
#include "distrib/dist_session.h"
#include "distrib/server.h"
#include "graph/ops.h"

namespace tfhpc::distrib {
namespace {

wire::ClusterDef FtCluster() {
  wire::ClusterDef def;
  wire::JobDef ps;
  ps.name = "ps";
  ps.task_addrs = {"ft-ps:1"};
  wire::JobDef workers;
  workers.name = "worker";
  workers.task_addrs = {"ft-w0:1", "ft-w1:1"};
  def.jobs = {ps, workers};
  return def;
}

DeviceName WorkerDev() {
  DeviceName d;
  d.job = "worker";
  d.task = 0;
  return d;
}

// Chaos profile from the acceptance criteria: drops + duplicates + delays
// at >= 10% aggregate fault rate, deterministic in the seed.
ChaosConfig AcceptanceChaos(uint64_t seed) {
  ChaosConfig chaos;
  chaos.seed = seed;
  chaos.drop_request_rate = 0.05;
  chaos.drop_response_rate = 0.05;
  chaos.duplicate_rate = 0.05;
  chaos.delay_rate = 0.05;
  chaos.max_delay_ms = 2;
  chaos.corrupt_rate = 0.03;
  return chaos;
}

class FaultToleranceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = std::make_unique<ClusterSpec>(
        ClusterSpec::Create(FtCluster()).value());
    RetryPolicy send_retry = RetryPolicy::Aggressive(5000);
    ServerDef ps_def{*spec_, "ps", 0, 0};
    ServerDef w0_def{*spec_, "worker", 0, 0};
    ServerDef w1_def{*spec_, "worker", 1, 0};
    ps_def.send_retry = w0_def.send_retry = w1_def.send_retry = send_retry;
    ps_ = Server::Create(ps_def, &router_).value();
    w0_ = Server::Create(w0_def, &router_).value();
    w1_ = Server::Create(w1_def, &router_).value();
  }

  InProcessRouter router_;
  std::unique_ptr<ClusterSpec> spec_;
  std::unique_ptr<Server> ps_, w0_, w1_;
};

// ---- retry policy unit behaviour ------------------------------------------------

TEST(RetryPolicyTest, RetryableCodeClassification) {
  EXPECT_TRUE(IsRetryableCode(Code::kUnavailable));
  EXPECT_FALSE(IsRetryableCode(Code::kInvalidArgument));
  EXPECT_FALSE(IsRetryableCode(Code::kNotFound));
  EXPECT_FALSE(IsRetryableCode(Code::kResourceExhausted));
  EXPECT_FALSE(IsRetryableCode(Code::kCancelled));
  EXPECT_FALSE(IsRetryableCode(Code::kDeadlineExceeded));
  EXPECT_FALSE(IsRetryableCode(Code::kOk));
}

TEST(RetryPolicyTest, RetriesUntilSuccess) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_ms = 0;
  int calls = 0;
  int64_t retries = 0;
  Status st = CallWithRetry(
      policy, 1,
      [&]() -> Status {
        return ++calls < 4 ? Unavailable("flaky") : Status::OK();
      },
      &retries);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(retries, 3);
}

TEST(RetryPolicyTest, NonRetryableSurfacesImmediately) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  int calls = 0;
  Status st = CallWithRetry(policy, 1, [&]() -> Status {
    ++calls;
    return InvalidArgument("bad");
  });
  EXPECT_EQ(st.code(), Code::kInvalidArgument);
  EXPECT_EQ(calls, 1);
}

TEST(RetryPolicyTest, AttemptBudgetReturnsLastError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 0;
  int calls = 0;
  Status st = CallWithRetry(policy, 1, [&]() -> Status {
    ++calls;
    return Unavailable("always down");
  });
  EXPECT_EQ(st.code(), Code::kUnavailable);
  EXPECT_EQ(calls, 3);
}

TEST(RetryPolicyTest, DeadlineExpiryReturnsDeadlineExceeded) {
  RetryPolicy policy = RetryPolicy::Aggressive(/*deadline_ms=*/150);
  const auto start = std::chrono::steady_clock::now();
  Status st = CallWithRetry(policy, 1,
                            [&]() -> Status { return Unavailable("down"); });
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_EQ(st.code(), Code::kDeadlineExceeded);
  EXPECT_LT(elapsed, 5000) << "deadline must bound the retry loop";
}

// ---- chaos transport ------------------------------------------------------------

TEST(ChaosTransportTest, ScheduleIsDeterministicInSeed) {
  // Two routers with the same seed inject the identical fault sequence.
  auto run_schedule = [](uint64_t seed) {
    InProcessRouter router;
    EXPECT_TRUE(router
                    .Register("c:1",
                              [](const wire::RpcEnvelope& req) {
                                wire::RpcEnvelope resp;
                                resp.request_id = req.request_id;
                                return resp;
                              })
                    .ok());
    ChaosConfig chaos;
    chaos.seed = seed;
    chaos.drop_request_rate = 0.2;
    chaos.duplicate_rate = 0.1;
    router.EnableChaos(chaos);
    std::vector<bool> dropped;
    for (int i = 0; i < 64; ++i) {
      wire::RpcEnvelope req;
      req.method = "Ping";
      dropped.push_back(!router.Call("c:1", WireProtocol::kRdma, req).ok());
    }
    return dropped;
  };
  EXPECT_EQ(run_schedule(7), run_schedule(7));
  EXPECT_NE(run_schedule(7), run_schedule(8));
}

TEST(ChaosTransportTest, StatsCountFaultsPerProtocolAndReset) {
  InProcessRouter router;
  ASSERT_TRUE(router
                  .Register("c:1",
                            [](const wire::RpcEnvelope& req) {
                              wire::RpcEnvelope resp;
                              resp.request_id = req.request_id;
                              return resp;
                            })
                  .ok());
  ChaosConfig chaos;
  chaos.seed = 99;
  chaos.drop_request_rate = 0.5;
  router.EnableChaos(chaos);
  for (int i = 0; i < 100; ++i) {
    wire::RpcEnvelope req;
    req.method = "Ping";
    (void)router.Call("c:1", WireProtocol::kGrpc, req);
  }
  const TransportStats& st = router.stats(WireProtocol::kGrpc);
  EXPECT_GT(st.faults_dropped_request.load(), 20);
  EXPECT_LT(st.faults_dropped_request.load(), 80);
  EXPECT_EQ(router.stats(WireProtocol::kRdma).total_faults(), 0);

  router.ResetStats();
  EXPECT_EQ(st.calls.load(), 0);
  EXPECT_EQ(st.total_faults(), 0);
}

TEST_F(FaultToleranceTest, PartitionRefusesCallsUntilHealed) {
  RemoteTask ps(&router_, "ft-ps:1", WireProtocol::kRdma);
  ASSERT_TRUE(ps.Ping().ok());
  router_.Partition("ft-ps:1");
  EXPECT_TRUE(router_.IsPartitioned("ft-ps:1"));
  EXPECT_EQ(ps.Ping().code(), Code::kUnavailable);
  // Other tasks are unaffected.
  EXPECT_TRUE(RemoteTask(&router_, "ft-w0:1", WireProtocol::kRdma).Ping().ok());
  router_.Heal("ft-ps:1");
  EXPECT_TRUE(ps.Ping().ok());
  EXPECT_GT(
      router_.stats(WireProtocol::kRdma).faults_partition_refused.load(), 0);
}

TEST_F(FaultToleranceTest, CorruptedPayloadIsRejectedNotApplied) {
  ChaosConfig chaos;
  chaos.seed = 5;
  chaos.corrupt_rate = 1.0;  // corrupt every call
  router_.EnableChaos(chaos);
  RemoteTask ps(&router_, "ft-ps:1", WireProtocol::kGrpc);
  auto st = ps.VarAssign("x", Tensor::Scalar(1.0));
  EXPECT_EQ(st.code(), Code::kUnavailable);
  EXPECT_GT(ps_->checksum_rejects(), 0);
  router_.DisableChaos();
  // The corrupted write was never applied.
  EXPECT_EQ(ps.VarRead("x").status().code(), Code::kFailedPrecondition);
}

// ---- exactly-once under retry + duplication -------------------------------------

TEST_F(FaultToleranceTest, LostResponseRetryDoesNotDoubleApply) {
  // Every first response is dropped; with retry the op must apply once, not
  // once per attempt.
  ChaosConfig chaos;
  chaos.seed = 11;
  chaos.drop_response_rate = 0.5;
  router_.EnableChaos(chaos);

  RemoteTask ps(&router_, "ft-ps:1", WireProtocol::kRdma,
                RetryPolicy::Aggressive(10000));
  const int kPushes = 50;
  for (int i = 0; i < kPushes; ++i) {
    ASSERT_TRUE(ps.VarAssignAdd("acc", Tensor::Scalar(1.0)).ok());
  }
  router_.DisableChaos();
  EXPECT_DOUBLE_EQ(ps.VarRead("acc")->scalar<double>(),
                   static_cast<double>(kPushes));
  // The chaos dropped some responses, so some retries replayed from cache.
  EXPECT_GT(ps.retries(), 0);
  EXPECT_GT(ps_->dedup_hits(), 0);
}

TEST_F(FaultToleranceTest, DuplicatedEnqueueAppliesOnce) {
  ChaosConfig chaos;
  chaos.seed = 23;
  chaos.duplicate_rate = 1.0;  // every request delivered twice
  router_.EnableChaos(chaos);

  RemoteTask ps(&router_, "ft-ps:1", WireProtocol::kMpi);
  const int kItems = 10;
  for (int i = 0; i < kItems; ++i) {
    ASSERT_TRUE(
        ps.Enqueue("dupq", Tensor::Scalar(static_cast<double>(i))).ok());
  }
  router_.DisableChaos();
  ASSERT_TRUE(ps.CloseQueue("dupq").ok());
  // Exactly kItems survive (each duplicate was deduped), in order.
  for (int i = 0; i < kItems; ++i) {
    auto r = ps.Dequeue("dupq");
    ASSERT_TRUE(r.ok()) << "item " << i;
    EXPECT_DOUBLE_EQ(r->scalar<double>(), static_cast<double>(i));
  }
  EXPECT_EQ(ps.Dequeue("dupq").status().code(), Code::kOutOfRange);
  EXPECT_GE(ps_->dedup_hits(), kItems);
}

// ---- the acceptance scenario: STREAM + matmul step under chaos -------------------

TEST_F(FaultToleranceTest, ChaoticStreamStepMatchesFaultFreeRun) {
  // The paper's STREAM push: workers assign_add partial sums into a PS
  // variable. Run it fault-free, then replay under a seeded chaos schedule
  // (drops + duplicates + delays + corruption >= 10% aggregate) — the final
  // variable must be numerically identical.
  auto run_stream = [&](const std::string& var, bool chaotic) -> double {
    if (chaotic) router_.EnableChaos(AcceptanceChaos(20260806));
    std::vector<std::thread> workers;
    for (int w = 0; w < 2; ++w) {
      workers.emplace_back([&, w] {
        RemoteTask ps(&router_, "ft-ps:1", WireProtocol::kRdma,
                      RetryPolicy::Aggressive(20000));
        for (int i = 0; i < 40; ++i) {
          Tensor delta = Tensor::FromVector(
              std::vector<double>{1.0 * (w + 1), 0.5 * (i + 1)});
          ASSERT_TRUE(ps.VarAssignAdd(var, delta).ok());
        }
      });
    }
    for (auto& t : workers) t.join();
    if (chaotic) router_.DisableChaos();
    RemoteTask reader(&router_, "ft-ps:1", WireProtocol::kRdma,
                      RetryPolicy::Aggressive(20000));
    auto v = reader.VarRead(var);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return v->data<double>()[0] + v->data<double>()[1];
  };

  const double clean = run_stream("stream_clean", false);
  const double chaotic = run_stream("stream_chaos", true);
  EXPECT_DOUBLE_EQ(clean, chaotic);
  // The schedule actually faulted a nontrivial share of the traffic.
  EXPECT_GT(router_.stats(WireProtocol::kRdma).total_faults(), 5);
}

TEST_F(FaultToleranceTest, ChaoticMatmulStepMatchesFaultFreeRun) {
  // A cross-task matmul pipeline (x@w1 on worker 0, @w2 on worker 1) run
  // through DistributedSession, fault-free vs chaotic: identical outputs.
  const int64_t n = 12;
  Tensor x(DType::kF32, Shape{n, n});
  Tensor w1(DType::kF32, Shape{n, n});
  Tensor w2(DType::kF32, Shape{n, n});
  FillUniform(x, 101);
  FillUniform(w1, 102, -0.1, 0.1);
  FillUniform(w2, 103, -0.1, 0.1);

  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto h = ops::MatMul(t0, ops::Const(t0, x), ops::Const(t0, w1));
  auto y = ops::MatMul(t1, h, ops::Const(t1, w2));

  auto session =
      DistributedSession::Create(&router_, *spec_, WireProtocol::kRdma,
                                 g.ToGraphDef(), WorkerDev());
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  auto clean = (*session)->Run({}, {y.name()});
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  // A single step issues only a handful of RPCs (two RunSteps plus one
  // rendezvous send), so run several chaotic steps to give the 23% schedule
  // a wide enough window that drawing zero faults is astronomically unlikely.
  router_.EnableChaos(AcceptanceChaos(424242));
  StepRecoveryOptions recovery;
  recovery.max_step_attempts = 8;
  recovery.rpc_retry = RetryPolicy::Aggressive(20000);
  const auto want = (*clean)[0].data<float>();
  for (int step = 0; step < 8; ++step) {
    FaultReport report;
    auto chaotic = (*session)->Run({}, {y.name()}, recovery, &report);
    ASSERT_TRUE(chaotic.ok()) << "step " << step << ": "
                              << chaotic.status().ToString() << " "
                              << report.ToString();
    const auto got = (*chaotic)[0].data<float>();
    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i], got[i])
          << "step " << step << " index " << i;  // bitwise identical
    }
  }
  router_.DisableChaos();
  EXPECT_GT(router_.chaos_calls(), 20);
  EXPECT_GT(router_.stats(WireProtocol::kRdma).total_faults(), 0);
}

// ---- deadlines: a lost rank fails the step, never hangs it -----------------------

TEST_F(FaultToleranceTest, PartitionedTaskFailsRunWithDeadlineNotHang) {
  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto a = ops::Const(t0, Tensor::Scalar(5.0), "a");
  auto y = ops::Mul(t1, a, ops::Const(t1, Tensor::Scalar(2.0)));

  auto session =
      DistributedSession::Create(&router_, *spec_, WireProtocol::kRdma,
                                 g.ToGraphDef(), WorkerDev());
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  router_.Partition("ft-w0:1");
  StepRecoveryOptions recovery;
  recovery.max_step_attempts = 2;
  recovery.rpc_retry = RetryPolicy::Aggressive(/*deadline_ms=*/300);
  FaultReport report;
  const auto start = std::chrono::steady_clock::now();
  auto r = (*session)->Run({}, {y.name()}, recovery, &report);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kDeadlineExceeded)
      << r.status().ToString();
  EXPECT_EQ(report.final_status.code(), Code::kDeadlineExceeded);
  EXPECT_EQ(report.failed_partition, "ft-w0:1");
  EXPECT_EQ(report.step_attempts, 2);
  EXPECT_FALSE(report.recovered);
  // Two attempts, each deadline-bounded at 300ms, plus overhead: well under
  // a hang. Generous bound for slow CI.
  EXPECT_LT(elapsed_ms, 10000);

  // Heal and re-run: the session recovered its tasks (abort/reset) and the
  // same step now succeeds.
  router_.Heal("ft-w0:1");
  auto r2 = (*session)->Run({}, {y.name()});
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_DOUBLE_EQ((*r2)[0].scalar<double>(), 10.0);
}

// ---- step-level recovery with checkpoint restore ---------------------------------

TEST_F(FaultToleranceTest, StepRecoveryRestoresVariablesAndReruns) {
  // The step accumulates into a task-0 variable (AssignAdd) and fetches the
  // result on task 1. A transient fault mid-step would double-accumulate on
  // blind re-run; checkpoint restore makes the re-run start from the
  // pre-step value, so the recovered result equals the fault-free one.
  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto v = ops::Variable(t0, "acc", DType::kF64, Shape{});
  auto bump = ops::AssignAdd(t0, v, ops::Const(t0, Tensor::Scalar(1.0)));
  auto y = ops::Mul(t1, bump, ops::Const(t1, Tensor::Scalar(10.0)));

  auto session =
      DistributedSession::Create(&router_, *spec_, WireProtocol::kRdma,
                                 g.ToGraphDef(), WorkerDev());
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  // Initialize acc = 5 on worker 0.
  RemoteTask w0(&router_, "ft-w0:1", WireProtocol::kRdma);
  ASSERT_TRUE(w0.VarAssign("acc", Tensor::Scalar(5.0)).ok());

  const std::string ckpt =
      ::testing::TempDir() + "/ft_step_recovery.ckpt";
  std::remove(ckpt.c_str());

  // Worker 0's step application fails once (after the AssignAdd may have
  // run), then works. Recovery must restore acc=5 before the re-run.
  router_.InjectFault("ft-w1:1", "RunStep", Unavailable("rank lost"), 1);
  StepRecoveryOptions recovery;
  recovery.max_step_attempts = 3;
  recovery.rpc_retry = RetryPolicy::NoRetry();  // force step-level path
  recovery.checkpoint_path = ckpt;
  FaultReport report;
  auto r = (*session)->Run({}, {y.name()}, recovery, &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString() << " " << report.ToString();

  // Exactly one effective increment: (5+1)*10.
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 60.0);
  EXPECT_DOUBLE_EQ(w0.VarRead("acc")->scalar<double>(), 6.0);
  EXPECT_TRUE(report.recovered);
  EXPECT_TRUE(report.checkpoint_saved);
  EXPECT_GT(report.variables_restored, 0);
  EXPECT_EQ(report.step_attempts, 2);
  EXPECT_EQ(report.first_error.code(), Code::kUnavailable);
  std::remove(ckpt.c_str());
}

TEST_F(FaultToleranceTest, SemanticErrorsAreNotRetriedAtStepLevel) {
  Graph g;
  Scope s(&g);
  ops::Const(s.WithDevice("/job:worker/task:0/cpu:0"), Tensor::Scalar(1.0),
             "c");
  auto session =
      DistributedSession::Create(&router_, *spec_, WireProtocol::kRdma,
                                 g.ToGraphDef(), WorkerDev());
  ASSERT_TRUE(session.ok());
  StepRecoveryOptions recovery;
  recovery.max_step_attempts = 5;
  FaultReport report;
  auto r = (*session)->Run({}, {"ghost"}, recovery, &report);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(report.step_attempts, 1) << "NotFound must not be re-attempted";
}

// ---- VarSnapshot / VarRestore wire surface --------------------------------------

TEST_F(FaultToleranceTest, VarSnapshotRoundTripsThroughRestore) {
  RemoteTask ps(&router_, "ft-ps:1", WireProtocol::kGrpc);
  ASSERT_TRUE(ps.VarAssign("a", Tensor::Scalar(1.5)).ok());
  ASSERT_TRUE(
      ps.VarAssign("b", Tensor::FromVector(std::vector<double>{1, 2, 3}))
          .ok());
  auto snap = ps.VarSnapshot();
  ASSERT_TRUE(snap.ok());
  ASSERT_EQ(snap->size(), 2u);

  ASSERT_TRUE(ps.VarAssign("a", Tensor::Scalar(-9.0)).ok());
  ASSERT_TRUE(ps.VarRestore(*snap).ok());
  EXPECT_DOUBLE_EQ(ps.VarRead("a")->scalar<double>(), 1.5);
  EXPECT_DOUBLE_EQ(ps.VarRead("b")->data<double>()[2], 3.0);
}

// ---- job-level recovery: eviction, spare replacement, shrink, watchdog ----------

ClusterSpec WorkerCluster(const std::vector<std::string>& addrs) {
  wire::ClusterDef def;
  wire::JobDef workers;
  workers.name = "worker";
  workers.task_addrs = addrs;
  def.jobs = {workers};
  return ClusterSpec::Create(def).value();
}

// Two-worker rig with a hot spare provisioned for slot 1, a lease monitor
// over both workers, and a durable CheckpointManager — everything the
// job-level recovery path consumes. The spare server is created against the
// *rebuilt* cluster spec (spare assumes slot 1) so its devices resolve that
// slot's placements; that is the contract for provisioning standbys.
class JobRecoveryRig {
 public:
  JobRecoveryRig(const std::string& tag, int64_t dead_after_ms = 120)
      : w0_addr_(tag + "-w0:1"),
        w1_addr_(tag + "-w1:1"),
        spare_addr_(tag + "-spare:1"),
        cluster_(WorkerCluster({w0_addr_, w1_addr_})),
        spare_cluster_(WorkerCluster({w0_addr_, spare_addr_})),
        ckpt_dir_(::testing::TempDir() + "/jobrec_" + tag) {
    std::filesystem::remove_all(ckpt_dir_);
    RetryPolicy send_retry = RetryPolicy::Aggressive(1000);
    ServerDef w0{cluster_, "worker", 0, 0};
    ServerDef w1{cluster_, "worker", 1, 0};
    ServerDef spare{spare_cluster_, "worker", 1, 0};
    w0.send_retry = w1.send_retry = spare.send_retry = send_retry;
    w0_ = Server::Create(w0, &router_).value();
    w1_ = Server::Create(w1, &router_).value();
    spare_ = Server::Create(spare, &router_).value();

    HealthOptions health;
    health.heartbeat_interval_ms = 5;
    health.suspect_after_ms = 40;
    health.dead_after_ms = dead_after_ms;
    monitor_ = std::make_unique<HealthMonitor>(&router_, health);
    monitor_->Watch(w0_addr_);
    monitor_->Watch(w1_addr_);
    monitor_->Start();

    checkpoints_ = std::make_unique<io::CheckpointManager>(
        io::CheckpointManagerOptions{ckpt_dir_, "job", 3});
  }

  ~JobRecoveryRig() {
    monitor_->Stop();
    // Drain + destroy the manager before deleting its directory: the async
    // save worker may still be publishing a version into it.
    (void)checkpoints_->WaitForPending();
    checkpoints_.reset();
    std::error_code ec;
    std::filesystem::remove_all(ckpt_dir_, ec);
  }

  // acc lives on task 0, sum on task 1; each step does acc += 1 then
  // sum += 10*acc across the task boundary. State on BOTH sides of the
  // rendezvous, so recovery must restore the dead side from the durable
  // checkpoint for results to stay correct.
  std::string BuildGraphAndSession() {
    Graph g;
    Scope s(&g);
    auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
    auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
    auto acc = ops::Variable(t0, "acc", DType::kF64, Shape{});
    auto bump = ops::AssignAdd(t0, acc, ops::Const(t0, Tensor::Scalar(1.0)));
    auto sum = ops::Variable(t1, "sum", DType::kF64, Shape{});
    auto total = ops::AssignAdd(
        t1, sum, ops::Mul(t1, bump, ops::Const(t1, Tensor::Scalar(10.0))));
    DeviceName dev;
    dev.job = "worker";
    dev.task = 0;
    session_ = DistributedSession::Create(&router_, cluster_,
                                          WireProtocol::kRdma, g.ToGraphDef(),
                                          dev)
                   .value();
    EXPECT_TRUE(RemoteTask(&router_, w0_addr_, WireProtocol::kRdma)
                    .VarAssign("acc", Tensor::Scalar(0.0))
                    .ok());
    EXPECT_TRUE(RemoteTask(&router_, w1_addr_, WireProtocol::kRdma)
                    .VarAssign("sum", Tensor::Scalar(0.0))
                    .ok());
    return total.name();
  }

  StepRecoveryOptions Recovery() {
    StepRecoveryOptions r;
    r.max_step_attempts = 3;
    r.rpc_retry = RetryPolicy::Aggressive(500);
    r.health = monitor_.get();
    r.checkpoints = checkpoints_.get();
    r.checkpoint_every_n_steps = 1;
    r.spare_addrs = {spare_addr_};
    r.dead_verdict_wait_ms = 5000;
    return r;
  }

  InProcessRouter router_;
  std::string w0_addr_, w1_addr_, spare_addr_;
  ClusterSpec cluster_, spare_cluster_;
  std::string ckpt_dir_;
  std::unique_ptr<Server> w0_, w1_, spare_;
  std::unique_ptr<HealthMonitor> monitor_;
  std::unique_ptr<io::CheckpointManager> checkpoints_;
  std::unique_ptr<DistributedSession> session_;
};

TEST(JobRecoveryTest, FailStopWorkerIsEvictedOntoSpareAndJobCompletes) {
  JobRecoveryRig rig("js");
  const std::string fetch = rig.BuildGraphAndSession();
  const StepRecoveryOptions recovery = rig.Recovery();

  // Two clean steps, each followed by an async durable checkpoint:
  // acc=1,sum=10 then acc=2,sum=30.
  for (int step = 1; step <= 2; ++step) {
    auto r = rig.session_->Run({}, {fetch}, recovery, nullptr);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  ASSERT_TRUE(rig.checkpoints_->WaitForPending().ok());
  ASSERT_GT(rig.checkpoints_->latest_version(), 0);

  // Worker 1 crashes mid-job (fail-stop). The next step must complete with
  // the correct value anyway: lease expiry convicts it, the spare assumes
  // slot 1, durable state is restored, the step re-runs.
  rig.router_.Kill(rig.w1_addr_);
  FaultReport report;
  auto r = rig.session_->Run({}, {fetch}, recovery, &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString() << " " << report.ToString();
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 60.0)
      << "restored acc=2,sum=30, so the re-run step must yield sum=60";

  ASSERT_EQ(report.workers_evicted, 1) << report.ToString();
  EXPECT_EQ(report.worker_faults[0].addr, rig.w1_addr_);
  EXPECT_EQ(report.worker_faults[0].successor, rig.spare_addr_);
  EXPECT_FALSE(report.worker_faults[0].shrunk);
  EXPECT_GT(report.checkpoint_restored_version, 0);
  EXPECT_GE(report.mttr_ms, 0);
  EXPECT_TRUE(report.recovered);

  // The cluster now names the spare in slot 1, and the state lives there.
  EXPECT_TRUE(rig.session_->cluster().FindTask(rig.spare_addr_).ok());
  RemoteTask spare(&rig.router_, rig.spare_addr_, WireProtocol::kRdma);
  EXPECT_DOUBLE_EQ(spare.VarRead("sum")->scalar<double>(), 60.0);

  // And the job keeps stepping on the rebuilt cluster.
  auto r2 = rig.session_->Run({}, {fetch}, recovery, nullptr);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_DOUBLE_EQ((*r2)[0].scalar<double>(), 100.0);  // acc=4, sum=60+40
}

TEST(JobRecoveryTest, HungWorkerIsFencedByWatchdogNotWaitedOnForever) {
  JobRecoveryRig rig("jh");
  const std::string fetch = rig.BuildGraphAndSession();
  StepRecoveryOptions recovery = rig.Recovery();
  recovery.stuck_step_timeout_ms = 200;

  auto warm = rig.session_->Run({}, {fetch}, recovery, nullptr);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_TRUE(rig.checkpoints_->WaitForPending().ok());

  // Worker 1 wedges: its RPCs block indefinitely (far beyond any step
  // timeout) instead of failing. Without a watchdog this step would sit in
  // the hang for the full 60s cap; with one, the lease expires, the
  // watchdog fences the worker and recovery proceeds.
  rig.router_.Hang(rig.w1_addr_, /*max_block_ms=*/60000);
  const auto start = std::chrono::steady_clock::now();
  FaultReport report;
  auto r = rig.session_->Run({}, {fetch}, recovery, &report);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(r.ok()) << r.status().ToString() << " " << report.ToString();
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 30.0);  // acc=1,sum=10 -> 2,30

  EXPECT_LT(elapsed_ms, 20000) << "watchdog must beat the 60s hang cap";
  ASSERT_EQ(report.workers_evicted, 1) << report.ToString();
  EXPECT_EQ(report.worker_faults[0].verdict, "hung");
  EXPECT_EQ(report.worker_faults[0].successor, rig.spare_addr_);
  EXPECT_GT(report.worker_faults[0].detect_ms, 0);
}

TEST(JobRecoveryTest, SlowWorkerIsLeftToFinishNotEvicted) {
  // Hung vs slow: the worker stalls longer than the step timeout but its
  // leases stay comfortably fresh (long windows), so the watchdog must NOT
  // fence it — the step finishes on attempt 1 once the stall clears.
  JobRecoveryRig rig("jw", /*dead_after_ms=*/30000);
  const std::string fetch = rig.BuildGraphAndSession();
  StepRecoveryOptions recovery = rig.Recovery();
  recovery.stuck_step_timeout_ms = 50;
  recovery.rpc_retry = RetryPolicy::Aggressive(10000);

  rig.router_.Hang(rig.w1_addr_, /*max_block_ms=*/60000);
  std::thread unstall([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    rig.router_.Unhang(rig.w1_addr_);
  });
  FaultReport report;
  auto r = rig.session_->Run({}, {fetch}, recovery, &report);
  unstall.join();
  ASSERT_TRUE(r.ok()) << r.status().ToString() << " " << report.ToString();
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 10.0);
  EXPECT_EQ(report.step_attempts, 1) << "a slow worker is not a fault";
  EXPECT_EQ(report.workers_evicted, 0);
  EXPECT_EQ(rig.monitor_->health(rig.w1_addr_), TaskHealth::kAlive);
}

TEST(JobRecoveryTest, TransientFaultStaysOnStepRetryPathWithoutEviction) {
  JobRecoveryRig rig("jt");
  const std::string fetch = rig.BuildGraphAndSession();
  StepRecoveryOptions recovery = rig.Recovery();
  recovery.rpc_retry = RetryPolicy::NoRetry();  // surface the fault to Run
  recovery.dead_verdict_wait_ms = 300;
  // Step-level retry path: the pre-step snapshot rolls back the half-applied
  // AssignAdd on the healthy worker before the re-attempt.
  recovery.checkpoint_path = ::testing::TempDir() + "/jobrec_jt_step.ckpt";

  rig.router_.InjectFault(rig.w1_addr_, "RunStep", Unavailable("blip"), 1);
  FaultReport report;
  auto r = rig.session_->Run({}, {fetch}, recovery, &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString() << " " << report.ToString();
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 10.0);
  EXPECT_EQ(report.step_attempts, 2);
  EXPECT_TRUE(report.recovered);
  EXPECT_EQ(report.workers_evicted, 0)
      << "a live worker must never be evicted for one lost RPC: "
      << report.ToString();
  EXPECT_EQ(rig.monitor_->health(rig.w1_addr_), TaskHealth::kAlive);
}

TEST(JobRecoveryTest, ShrinkTombstonesTheSlotAndAdoptsItsNodes) {
  // No spare this time: the cluster shrinks. Task 1's (independent) nodes
  // are re-placed on task 0, the slot is tombstoned so indices stay stable,
  // and task 1's variable state comes back from the durable checkpoint.
  InProcessRouter router;
  ClusterSpec cluster = WorkerCluster({"sh-w0:1", "sh-w1:1"});
  RetryPolicy send_retry = RetryPolicy::Aggressive(1000);
  ServerDef d0{cluster, "worker", 0, 0};
  ServerDef d1{cluster, "worker", 1, 0};
  d0.send_retry = d1.send_retry = send_retry;
  auto w0 = Server::Create(d0, &router).value();
  auto w1 = Server::Create(d1, &router).value();

  HealthOptions health;
  health.heartbeat_interval_ms = 5;
  health.suspect_after_ms = 40;
  health.dead_after_ms = 120;
  HealthMonitor monitor(&router, health);
  monitor.Watch("sh-w0:1");
  monitor.Watch("sh-w1:1");
  monitor.Start();

  const std::string dir = ::testing::TempDir() + "/jobrec_shrink";
  std::filesystem::remove_all(dir);
  io::CheckpointManager checkpoints(
      io::CheckpointManagerOptions{dir, "job", 3});

  // Disjoint per-task subgraphs (no cross-task edges): shrink re-placement
  // is sound because no shipped node's wiring changes.
  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto a = ops::Variable(t0, "a", DType::kF64, Shape{});
  auto step0 = ops::AssignAdd(t0, a, ops::Const(t0, Tensor::Scalar(1.0)));
  auto b = ops::Variable(t1, "b", DType::kF64, Shape{});
  auto step1 = ops::AssignAdd(t1, b, ops::Const(t1, Tensor::Scalar(2.0)));

  DeviceName dev;
  dev.job = "worker";
  dev.task = 0;
  auto session = DistributedSession::Create(&router, cluster,
                                            WireProtocol::kRdma,
                                            g.ToGraphDef(), dev)
                     .value();
  ASSERT_TRUE(RemoteTask(&router, "sh-w0:1", WireProtocol::kRdma)
                  .VarAssign("a", Tensor::Scalar(0.0))
                  .ok());
  ASSERT_TRUE(RemoteTask(&router, "sh-w1:1", WireProtocol::kRdma)
                  .VarAssign("b", Tensor::Scalar(5.0))
                  .ok());

  StepRecoveryOptions recovery;
  recovery.max_step_attempts = 3;
  recovery.rpc_retry = RetryPolicy::Aggressive(500);
  recovery.health = &monitor;
  recovery.checkpoints = &checkpoints;
  recovery.checkpoint_every_n_steps = 1;
  recovery.allow_shrink = true;
  recovery.dead_verdict_wait_ms = 5000;

  auto warm = session->Run({}, {step0.name(), step1.name()}, recovery,
                           nullptr);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();  // a=1, b=7
  ASSERT_TRUE(checkpoints.WaitForPending().ok());

  router.Kill("sh-w1:1");
  FaultReport report;
  auto r = session->Run({}, {step0.name(), step1.name()}, recovery, &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString() << " " << report.ToString();
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 2.0);
  EXPECT_DOUBLE_EQ((*r)[1].scalar<double>(), 9.0)
      << "b restored to 7 from the checkpoint, then += 2 on the adopter";

  ASSERT_EQ(report.workers_evicted, 1) << report.ToString();
  EXPECT_TRUE(report.worker_faults[0].shrunk);
  EXPECT_EQ(report.worker_faults[0].successor, "sh-w0:1");
  // Slot 1 is tombstoned, not removed: indices must not shift.
  auto slot1 = session->cluster().TaskAddress("worker", 1);
  ASSERT_TRUE(slot1.ok());
  EXPECT_EQ(*slot1, "sh-w1:1#dead");
  // The adopted state now lives on worker 0.
  RemoteTask adopter(&router, "sh-w0:1", WireProtocol::kRdma);
  EXPECT_DOUBLE_EQ(adopter.VarRead("b")->scalar<double>(), 9.0);

  monitor.Stop();
  // The recovery run's periodic save may still be in flight.
  ASSERT_TRUE(checkpoints.WaitForPending().ok());
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(JobRecoveryTest, ShrinkRefusesToRewireAlreadyShippedConsumers) {
  // The unsound shrink: task 1 produces a tensor task 0 consumes. Moving
  // the producer onto its consumer would rewrite the consumer's shipped
  // node (the _Recv edge becomes a direct edge), which graphs being
  // append-only cannot express — recovery must fail with a clear error,
  // not silently diverge.
  InProcessRouter router;
  ClusterSpec cluster = WorkerCluster({"sr-w0:1", "sr-w1:1"});
  ServerDef d0{cluster, "worker", 0, 0};
  ServerDef d1{cluster, "worker", 1, 0};
  auto w0 = Server::Create(d0, &router).value();
  auto w1 = Server::Create(d1, &router).value();

  HealthOptions health;
  health.heartbeat_interval_ms = 5;
  health.suspect_after_ms = 40;
  health.dead_after_ms = 120;
  HealthMonitor monitor(&router, health);
  monitor.Watch("sr-w0:1");
  monitor.Watch("sr-w1:1");
  monitor.Start();

  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto p = ops::Const(t1, Tensor::Scalar(3.0), "p");
  auto y = ops::Mul(t0, p, ops::Const(t0, Tensor::Scalar(2.0)));

  DeviceName dev;
  dev.job = "worker";
  dev.task = 0;
  auto session = DistributedSession::Create(&router, cluster,
                                            WireProtocol::kRdma,
                                            g.ToGraphDef(), dev)
                     .value();
  ASSERT_TRUE(session->Run({}, {y.name()}).ok());

  router.Kill("sr-w1:1");
  StepRecoveryOptions recovery;
  recovery.max_step_attempts = 3;
  recovery.rpc_retry = RetryPolicy::Aggressive(300);
  recovery.health = &monitor;
  recovery.allow_shrink = true;
  recovery.dead_verdict_wait_ms = 5000;
  FaultReport report;
  auto r = session->Run({}, {y.name()}, recovery, &report);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kFailedPrecondition)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("already-shipped"), std::string::npos)
      << r.status().ToString();
  monitor.Stop();
}

TEST(JobRecoveryTest, StepPlanAndHandlesRecompiledAfterSpareAdoption) {
  // Compile-once meets recovery: eviction rebuilds the cluster and re-ships
  // partitions, so every cached step plan (and the worker-side handles it
  // holds) is invalid. The next step must compile a fresh plan and register
  // new steps on the adopted spare — transparently.
  JobRecoveryRig rig("jr");
  const std::string fetch = rig.BuildGraphAndSession();
  const StepRecoveryOptions recovery = rig.Recovery();

  for (int step = 1; step <= 2; ++step) {
    ASSERT_TRUE(rig.session_->Run({}, {fetch}, recovery, nullptr).ok());
  }
  // Steady state: one plan, reused; one registered step per live worker.
  EXPECT_EQ(rig.session_->plans_compiled(), 1);
  EXPECT_EQ(rig.session_->plan_cache_hits(), 1);
  EXPECT_EQ(rig.w0_->steps_registered(), 1);
  EXPECT_EQ(rig.w1_->steps_registered(), 1);
  EXPECT_EQ(rig.spare_->steps_registered(), 0);
  ASSERT_TRUE(rig.checkpoints_->WaitForPending().ok());

  rig.router_.Kill(rig.w1_addr_);
  FaultReport report;
  auto r = rig.session_->Run({}, {fetch}, recovery, &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString() << " " << report.ToString();
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 60.0);
  EXPECT_TRUE(report.recovered);

  // Recovery invalidated the plan cache and the step re-registered on the
  // spare in slot 1 (and on w0, whose old handle pointed at the pre-repin
  // placement).
  EXPECT_GE(rig.session_->plans_compiled(), 2)
      << "re-shipped partitions must invalidate cached step plans";
  EXPECT_GE(rig.spare_->steps_registered(), 1);

  // Subsequent steps reuse the rebuilt plan — compile once, again.
  const int64_t compiled = rig.session_->plans_compiled();
  auto r2 = rig.session_->Run({}, {fetch}, recovery, nullptr);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_DOUBLE_EQ((*r2)[0].scalar<double>(), 100.0);
  EXPECT_EQ(rig.session_->plans_compiled(), compiled);
}

}  // namespace
}  // namespace tfhpc::distrib
