// Reproduces Fig. 8: tiled matrix-multiply strong scaling (Gflops/s) —
// Tegner K420 (tile 4096^2; problems 16k/32k/65k), Tegner K80 and
// Kebnekaise K80 (tile 8192^2; problems 32k/65k), 2 reducers, 2-16 GPUs.
// A functional pass (real tiles, real queues, verified against dense GEMM)
// runs first at reduced scale.
#include <cstdio>
#include <filesystem>
#include <vector>

#include "apps/tiled_matmul.h"
#include "bench_util.h"

using namespace tfhpc;

namespace {

struct Series {
  const char* label;
  sim::MachineConfig cfg;
  int64_t tile;
  std::vector<int64_t> problems;
  std::vector<int> gpus;
};

}  // namespace

int main() {
  bench::Header(
      "Fig. 8 — tiled matmul strong scaling",
      "paper Fig. 8 (Tegner K420 ~2x per GPU doubling at 32k; Tegner K80 "
      "~1.8x 2->4 at 65k; Kebnekaise K80 only ~1.4x 2->4 at 32k)");

  // Functional validation at reduced scale.
  {
    const std::string dir =
        (std::filesystem::temp_directory_path() / "fig8_func").string();
    std::filesystem::remove_all(dir);
    apps::TiledMatmulOptions opts;
    opts.n = 64;
    opts.tile = 16;
    opts.num_workers = 4;
    opts.num_reducers = 2;
    auto r = apps::RunTiledMatmulFunctional(opts, dir,
                                            distrib::WireProtocol::kRdma);
    std::filesystem::remove_all(dir);
    if (!r.ok()) {
      std::printf("functional tiled matmul failed: %s\n",
                  r.status().ToString().c_str());
      return 1;
    }
    std::printf("functional tiled matmul verified against dense GEMM\n\n");
  }

  const std::vector<Series> series = {
      {"Tegner K420", sim::TegnerConfig(sim::GpuKind::kK420), 4096,
       {16384, 32768, 65536}, {2, 4, 8}},
      {"Tegner K80", sim::TegnerConfig(sim::GpuKind::kK80), 8192,
       {32768, 65536}, {2, 4, 8}},
      {"Kebnekaise K80", sim::KebnekaiseConfig(sim::GpuKind::kK80), 8192,
       {32768, 65536}, {2, 4, 8, 16}},
  };

  std::printf("%-16s %-7s | %10s %10s %10s %10s | speedups\n", "platform",
              "N", "2 GPU", "4 GPU", "8 GPU", "16 GPU");
  bench::Rule();
  for (const Series& s : series) {
    for (int64_t n : s.problems) {
      double gflops[4] = {0, 0, 0, 0};
      int idx = 0;
      for (int gpus : s.gpus) {
        apps::TiledMatmulOptions opts;
        opts.n = n;
        opts.tile = s.tile;
        opts.num_workers = gpus;
        opts.num_reducers = 2;
        auto r = apps::SimulateTiledMatmul(s.cfg, sim::Protocol::kRdma, opts);
        if (!r.ok()) {
          std::printf("simulate failed (%s n=%lld g=%d): %s\n", s.label,
                      static_cast<long long>(n), gpus,
                      r.status().ToString().c_str());
          return 1;
        }
        gflops[idx++] = r->gflops;
      }
      char cells[4][16];
      for (int i = 0; i < 4; ++i) {
        if (i < idx) {
          std::snprintf(cells[i], sizeof cells[i], "%.0f", gflops[i]);
        } else {
          std::snprintf(cells[i], sizeof cells[i], "-");
        }
      }
      std::printf("%-16s %-7lld | %10s %10s %10s %10s |", s.label,
                  static_cast<long long>(n), cells[0], cells[1], cells[2],
                  cells[3]);
      for (int i = 1; i < idx; ++i) {
        std::printf(" %.2fx", gflops[i] / gflops[i - 1]);
      }
      std::printf("\n");
    }
    bench::Rule();
  }
  std::printf("(speedups are per GPU-count doubling, left to right)\n");
  return 0;
}
