// Static shape & dtype inference over GraphDef nodes. Each op registers an
// inference function (the analogue of TensorFlow's shape_fn on OpDef) that
// maps possibly-unknown input facts to output facts, rejecting provably
// incompatible operands. The verifier (analysis/verifier.h) drives these in
// topological order; fully-known results feed the executor's pre-sized
// output allocation.
//
// Unknowns are first-class: a dtype of DType::kInvalid means "not known
// statically", an InferredShape can have unknown rank or unknown extents
// (-1). Inference functions must only error on *provable* conflicts — two
// known-but-different extents, two known-but-different dtypes — never on
// missing information.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/shape.h"
#include "core/status.h"
#include "core/tensor.h"
#include "wire/messages.h"

namespace tfhpc::analysis {

// A possibly-partial shape fact: unknown rank, or known rank with extents
// where -1 marks an unknown dimension.
struct InferredShape {
  bool rank_known = false;
  std::vector<int64_t> dims;  // meaningful only when rank_known

  static InferredShape Unknown() { return {}; }
  static InferredShape Scalar() { return Of({}); }
  static InferredShape Of(std::vector<int64_t> d) {
    InferredShape s;
    s.rank_known = true;
    s.dims = std::move(d);
    return s;
  }
  static InferredShape FromShape(const Shape& shape) {
    return Of(shape.dims());
  }

  int rank() const { return static_cast<int>(dims.size()); }
  bool fully_known() const;
  // Requires fully_known().
  Shape ToShape() const { return Shape(dims); }
  // "[128, ?]", "[]" (scalar), "?" (unknown rank).
  std::string ToString() const;

  bool operator==(const InferredShape& o) const {
    return rank_known == o.rank_known && (!rank_known || dims == o.dims);
  }
};

// Unifies two facts about the same tensor's shape. Unknown rank/extents
// defer to the known side; a provable conflict (different known ranks or
// extents) is an InvalidArgument coded [GC010].
Result<InferredShape> MergeShapes(const InferredShape& a,
                                  const InferredShape& b);

// What is statically known about one tensor.
struct InferredTensor {
  DType dtype = DType::kInvalid;  // kInvalid = unknown
  InferredShape shape;

  bool fully_known() const {
    return dtype != DType::kInvalid && shape.fully_known();
  }
};

// Per-node view handed to an inference function: the NodeDef (for attrs),
// the facts about each data input in order, and output slots to fill.
// Outputs default to fully-unknown, so a function may return early.
class InferenceContext {
 public:
  InferenceContext(const wire::NodeDef* def, int num_outputs,
                   std::vector<InferredTensor> inputs)
      : def_(def), inputs_(std::move(inputs)) {
    outputs_.resize(static_cast<size_t>(num_outputs));
  }

  const wire::NodeDef& def() const { return *def_; }
  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  const InferredTensor& input(int i) const {
    return inputs_[static_cast<size_t>(i)];
  }

  void set_output(int i, DType dtype, InferredShape shape) {
    outputs_[static_cast<size_t>(i)] = {dtype, std::move(shape)};
  }
  const std::vector<InferredTensor>& outputs() const { return outputs_; }

  // ---- attrs (errors are [GC017]-coded) ------------------------------------
  bool HasAttr(const std::string& name) const {
    return def_->attrs.count(name) > 0;
  }
  Result<DType> TypeAttr(const std::string& name) const;
  Result<Shape> ShapeAttr(const std::string& name) const;
  Result<std::string> StringAttr(const std::string& name) const;
  Result<int64_t> IntAttr(const std::string& name) const;
  Result<bool> BoolAttr(const std::string& name) const;
  Result<double> FloatAttr(const std::string& name) const;

  // ---- coded error builders ------------------------------------------------
  Status DtypeError(const std::string& msg) const;  // [GC009]
  Status ShapeError(const std::string& msg) const;  // [GC010]
  Status AttrError(const std::string& msg) const;   // [GC017]

  // Unifies the dtypes of two data inputs; [GC009] on a provable conflict.
  Result<DType> MergeInputDtypes(int a, int b) const;

 private:
  const wire::NodeDef* def_;
  std::vector<InferredTensor> inputs_;
  std::vector<InferredTensor> outputs_;
};

// An op's inference function: reads ctx inputs/attrs, fills ctx outputs.
// Errors must carry a [GCnnn] code (use the ctx error builders).
using ShapeFn = std::function<Status(InferenceContext&)>;

class ShapeFnRegistry {
 public:
  // Pre-populated with functions for every built-in op.
  static ShapeFnRegistry& Global();

  void Register(const std::string& op, ShapeFn fn);
  // Null when the op has no inference function (outputs stay unknown).
  const ShapeFn* Lookup(const std::string& op) const;

  // Marks an op as *deliberately* dynamic: its output extents depend on
  // runtime values, no inference fn can exist, and the coverage audit must
  // not flag it. An op that is neither registered nor marked dynamic is a
  // coverage hole — its outputs silently stay unknown, which quietly
  // excludes them from the memory planner's static peak.
  void MarkDynamic(const std::string& op);
  bool IsDynamic(const std::string& op) const;

  // Coverage audit over OpRegistry::Global(): every registered op must have
  // an inference fn or be explicitly marked dynamic. Returns the uncovered
  // op names (empty = full coverage); a test pins this to empty so adding
  // an op without deciding its shape story fails CI.
  std::vector<std::string> UncoveredOps() const;

 private:
  ShapeFnRegistry();
  std::map<std::string, ShapeFn> fns_;
  std::set<std::string> dynamic_ops_;
};

}  // namespace tfhpc::analysis
