// Tests for the discrete-event engine, the max-min fair flow network, trace
// replay, and the machine models.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/event.h"
#include "sim/machine.h"
#include "sim/network.h"
#include "sim/trace.h"

namespace tfhpc::sim {
namespace {

// ---- Simulation -------------------------------------------------------------

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(3.0, [&] { order.push_back(3); });
  sim.ScheduleAt(1.0, [&] { order.push_back(1); });
  sim.ScheduleAt(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SimulationTest, EqualTimesStable) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&] {
    ++fired;
    sim.ScheduleAfter(0.5, [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
}

TEST(SimulationTest, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.Step());
}

// ---- FlowNetwork ----------------------------------------------------------------

TEST(FlowNetworkTest, SingleFlowUsesFullBandwidth) {
  Simulation sim;
  FlowNetwork net(&sim);
  LinkId l = net.AddLink("wire", 1e9);
  double done_at = -1;
  net.StartFlow({l}, 1'000'000'000, [&] { done_at = sim.now(); });
  sim.Run();
  EXPECT_NEAR(done_at, 1.0, 1e-9);
}

TEST(FlowNetworkTest, LatencyDelaysCompletion) {
  Simulation sim;
  FlowNetwork net(&sim);
  LinkId l = net.AddLink("wire", 1e9, /*latency_s=*/0.25);
  double done_at = -1;
  net.StartFlow({l}, 1'000'000'000, [&] { done_at = sim.now(); });
  sim.Run();
  EXPECT_NEAR(done_at, 1.25, 1e-9);
}

TEST(FlowNetworkTest, TwoFlowsShareFairly) {
  Simulation sim;
  FlowNetwork net(&sim);
  LinkId l = net.AddLink("wire", 1e9);
  double d1 = -1, d2 = -1;
  net.StartFlow({l}, 1'000'000'000, [&] { d1 = sim.now(); });
  net.StartFlow({l}, 1'000'000'000, [&] { d2 = sim.now(); });
  sim.Run();
  // Both flows get 0.5 GB/s: each takes 2s.
  EXPECT_NEAR(d1, 2.0, 1e-9);
  EXPECT_NEAR(d2, 2.0, 1e-9);
}

TEST(FlowNetworkTest, DepartureSpeedsUpSurvivor) {
  Simulation sim;
  FlowNetwork net(&sim);
  LinkId l = net.AddLink("wire", 1e9);
  double small_done = -1, big_done = -1;
  net.StartFlow({l}, 500'000'000, [&] { small_done = sim.now(); });
  net.StartFlow({l}, 1'500'000'000, [&] { big_done = sim.now(); });
  sim.Run();
  // Shared 0.5 GB/s each: small finishes at t=1. Big has 1.0 GB left, now
  // alone at 1 GB/s: finishes at t=2.
  EXPECT_NEAR(small_done, 1.0, 1e-6);
  EXPECT_NEAR(big_done, 2.0, 1e-6);
}

TEST(FlowNetworkTest, LateArrivalSlowsExisting) {
  Simulation sim;
  FlowNetwork net(&sim);
  LinkId l = net.AddLink("wire", 1e9);
  double d1 = -1;
  net.StartFlow({l}, 1'000'000'000, [&] { d1 = sim.now(); });
  sim.ScheduleAt(0.5, [&] {
    net.StartFlow({l}, 1'000'000'000, [] {});
  });
  sim.Run();
  // Flow 1: 0.5 GB in first 0.5s, then shares -> 0.5 GB at 0.5 GB/s = 1s
  // more: done at 1.5s.
  EXPECT_NEAR(d1, 1.5, 1e-6);
}

TEST(FlowNetworkTest, BottleneckIsNarrowestLink) {
  Simulation sim;
  FlowNetwork net(&sim);
  LinkId fast = net.AddLink("fast", 10e9);
  LinkId slow = net.AddLink("slow", 1e9);
  double done = -1;
  net.StartFlow({fast, slow, fast}, 1'000'000'000, [&] { done = sim.now(); });
  sim.Run();
  EXPECT_NEAR(done, 1.0, 1e-9);
}

TEST(FlowNetworkTest, MaxMinAllocationRespectsPerLinkFairness) {
  // Flow A crosses links 1+2; flow B crosses link 1; flow C crosses link 2.
  // Link1 = 1 GB/s, link2 = 2 GB/s. Max-min: A and B get 0.5 each on link1
  // (bottleneck); C gets the rest of link2 = 1.5.
  Simulation sim;
  FlowNetwork net(&sim);
  LinkId l1 = net.AddLink("l1", 1e9);
  LinkId l2 = net.AddLink("l2", 2e9);
  FlowId a = net.StartFlow({l1, l2}, 5'000'000'000, [] {});
  FlowId b = net.StartFlow({l1}, 5'000'000'000, [] {});
  FlowId c = net.StartFlow({l2}, 5'000'000'000, [] {});
  // Rates are set once the start-latency events fire; step a few events.
  while (sim.pending() > 0 && net.active_flows() < 3) sim.Step();
  EXPECT_NEAR(net.FlowRate(a), 0.5e9, 1e6);
  EXPECT_NEAR(net.FlowRate(b), 0.5e9, 1e6);
  EXPECT_NEAR(net.FlowRate(c), 1.5e9, 1e6);
  sim.Run();
}

TEST(FlowNetworkTest, ZeroByteFlowCompletesAfterLatency) {
  Simulation sim;
  FlowNetwork net(&sim);
  LinkId l = net.AddLink("wire", 1e9, 0.1);
  double done = -1;
  net.StartFlow({l}, 0, [&] { done = sim.now(); });
  sim.Run();
  EXPECT_NEAR(done, 0.1, 1e-12);
}

TEST(FlowNetworkTest, ManyFlowsConserveBandwidth) {
  // N equal flows through one link must finish together at N * t1.
  Simulation sim;
  FlowNetwork net(&sim);
  LinkId l = net.AddLink("wire", 1e9);
  const int n = 8;
  std::vector<double> done(n, -1);
  for (int i = 0; i < n; ++i) {
    net.StartFlow({l}, 125'000'000, [&done, i, &sim] { done[static_cast<size_t>(i)] = sim.now(); });
  }
  sim.Run();
  for (double d : done) EXPECT_NEAR(d, 1.0, 1e-6);
}

// ---- TraceReplayer -----------------------------------------------------------------

TEST(TraceReplayTest, SerialChainAccumulates) {
  Simulation sim;
  FlowNetwork net(&sim);
  TraceReplayer tr(&net);
  OpId a = tr.AddCompute("gpu0", 1.0, {});
  OpId b = tr.AddCompute("gpu0", 2.0, {a});
  auto r = tr.Replay(&sim);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->timings[static_cast<size_t>(b)].finish, 3.0, 1e-9);
  EXPECT_NEAR(r->makespan, 3.0, 1e-9);
  EXPECT_NEAR(r->device_busy_s.at("gpu0"), 3.0, 1e-9);
}

TEST(TraceReplayTest, IndependentOpsOnDistinctDevicesOverlap) {
  Simulation sim;
  FlowNetwork net(&sim);
  TraceReplayer tr(&net);
  tr.AddCompute("gpu0", 1.0, {});
  tr.AddCompute("gpu1", 1.0, {});
  auto r = tr.Replay(&sim);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->makespan, 1.0, 1e-9);
}

TEST(TraceReplayTest, SameDeviceSerializes) {
  Simulation sim;
  FlowNetwork net(&sim);
  TraceReplayer tr(&net);
  tr.AddCompute("gpu0", 1.0, {});
  tr.AddCompute("gpu0", 1.0, {});
  auto r = tr.Replay(&sim);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->makespan, 2.0, 1e-9);
}

TEST(TraceReplayTest, TransferBetweenComputes) {
  Simulation sim;
  FlowNetwork net(&sim);
  LinkId wire = net.AddLink("wire", 1e9);
  TraceReplayer tr(&net);
  OpId produce = tr.AddCompute("gpu0", 1.0, {});
  OpId xfer = tr.AddTransfer({wire}, 1'000'000'000, {produce});
  OpId consume = tr.AddCompute("gpu1", 0.5, {xfer});
  auto r = tr.Replay(&sim);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->timings[static_cast<size_t>(consume)].finish, 2.5, 1e-9);
}

TEST(TraceReplayTest, DiamondJoinWaitsForBothBranches) {
  Simulation sim;
  FlowNetwork net(&sim);
  TraceReplayer tr(&net);
  OpId src = tr.AddDelay(0.0, {});
  OpId fast = tr.AddCompute("a", 1.0, {src});
  OpId slow = tr.AddCompute("b", 3.0, {src});
  OpId join = tr.AddDelay(0.0, {fast, slow});
  auto r = tr.Replay(&sim);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->timings[static_cast<size_t>(join)].finish, 3.0, 1e-9);
}

TEST(TraceReplayTest, DeadlockIsDetected) {
  // An op depending on itself cannot be expressed (deps must precede), so
  // deadlock here means: empty trace with no ops completes fine, and ops
  // gated behind a dep that never runs is impossible by construction —
  // verify instead that the replayer flags an internal inconsistency when
  // the network never fires a callback (zero-bandwidth link is forbidden by
  // AddLink, so use a flow on an empty trace instead).
  Simulation sim;
  FlowNetwork net(&sim);
  TraceReplayer tr(&net);
  auto r = tr.Replay(&sim);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->makespan, 0.0);
}

// ---- ComputeModel roofline sanity -----------------------------------------------------

TEST(MachineTest, TegnerConfigsMatchTableOne) {
  auto k420 = TegnerConfig(GpuKind::kK420);
  EXPECT_EQ(k420.gpus_per_node, 1);  // Table I: 1 process/node
  EXPECT_EQ(k420.gpu_model.mem_bytes, int64_t{1} << 30);  // 1 GB
  auto k80 = TegnerConfig(GpuKind::kK80);
  EXPECT_EQ(k80.gpus_per_node, 2);  // Table I: 2 processes/node
  EXPECT_EQ(k80.gpu_model.mem_bytes, int64_t{12} << 30);
}

TEST(MachineTest, KebnekaiseConfigsMatchTableOne) {
  auto k80 = KebnekaiseConfig(GpuKind::kK80);
  EXPECT_EQ(k80.gpus_per_node, 4);  // Table I: 4 processes/node
  auto v100 = KebnekaiseConfig(GpuKind::kV100);
  EXPECT_EQ(v100.gpus_per_node, 2);
  EXPECT_EQ(v100.gpu_model.mem_bytes, int64_t{16} << 30);
}

TEST(MachineTest, GpuPlacementFillsNodes) {
  ClusterModel cm(KebnekaiseConfig(GpuKind::kK80), 8);
  EXPECT_EQ(cm.num_nodes(), 2);
  EXPECT_EQ(cm.GpuLoc(0).node, 0);
  EXPECT_EQ(cm.GpuLoc(3).node, 0);
  EXPECT_EQ(cm.GpuLoc(4).node, 1);
  EXPECT_EQ(cm.GpuLoc(7).gpu, 3);
}

TEST(MachineTest, KebnekaiseIslandsSplitEngines) {
  // Fig. 9: engines 0,1 (card 0) on island 0; engines 2,3 on island 1.
  ClusterModel cm(KebnekaiseConfig(GpuKind::kK80), 4);
  EXPECT_EQ(cm.IslandOf(cm.GpuLoc(0)), 0);
  EXPECT_EQ(cm.IslandOf(cm.GpuLoc(1)), 0);
  EXPECT_EQ(cm.IslandOf(cm.GpuLoc(2)), 1);
  EXPECT_EQ(cm.IslandOf(cm.GpuLoc(3)), 1);
}

TEST(MachineTest, RdmaFasterThanMpiFasterThanGrpcOnTegner) {
  // Qualitative Fig. 7 check at the model level: one 128 MB GPU-to-GPU
  // transfer between two nodes under each protocol.
  const int64_t bytes = 128 << 20;
  std::map<Protocol, double> t;
  for (Protocol p : {Protocol::kGrpc, Protocol::kMpi, Protocol::kRdma}) {
    ClusterModel cm(TegnerConfig(GpuKind::kK420), 2);
    cm.Transfer(cm.GpuLoc(0), cm.GpuLoc(1), bytes, p, {});
    auto r = cm.Replay();
    ASSERT_TRUE(r.ok());
    t[p] = r->makespan;
  }
  EXPECT_LT(t[Protocol::kRdma], t[Protocol::kMpi]);
  EXPECT_LT(t[Protocol::kMpi], t[Protocol::kGrpc]);
}

TEST(MachineTest, HostToHostRdmaExceedsHalfTheoreticalEdr) {
  // The paper: >6 GB/s of the 12 GB/s EDR on host-resident tensors.
  const int64_t bytes = 128 << 20;
  ClusterModel cm(TegnerConfig(GpuKind::kK420), 2);
  cm.Transfer(cm.HostLoc(0), cm.HostLoc(1), bytes, Protocol::kRdma, {});
  auto r = cm.Replay();
  ASSERT_TRUE(r.ok());
  const double gbps = static_cast<double>(bytes) / r->makespan / 1e9;
  EXPECT_GT(gbps, 6.0);
  EXPECT_LT(gbps, 12.0);
}

TEST(MachineTest, ContentionAblationRemovesSharing) {
  // Four concurrent GPU->remote transfers on a Kebnekaise K80 node: with
  // contention the aggregate takes longer than without.
  auto run = [](bool contention) {
    MachineConfig cfg = KebnekaiseConfig(GpuKind::kK80);
    cfg.contention = contention;
    ClusterModel cm(cfg, 8);
    for (int g = 0; g < 4; ++g) {
      cm.Transfer(cm.GpuLoc(g), cm.GpuLoc(4 + g), 64 << 20, Protocol::kRdma,
                  {});
    }
    auto r = cm.Replay();
    TFHPC_CHECK(r.ok());
    return r->makespan;
  };
  EXPECT_GT(run(true), 1.5 * run(false));
}

TEST(MachineTest, ReplayTwiceFails) {
  ClusterModel cm(TegnerConfig(GpuKind::kK420), 1);
  cm.Delay(1.0, {});
  ASSERT_TRUE(cm.Replay().ok());
  EXPECT_FALSE(cm.Replay().ok());
}

TEST(MachineTest, GpuComputeUsesRoofline) {
  ClusterModel cm(KebnekaiseConfig(GpuKind::kV100), 2);
  // 7 Tflop/s DP * 0.7 efficiency = 4.9e12: 4.9e12 flops ~= 1 s.
  cm.GpuCompute(0, 4.9e12, 0, /*fp64=*/true, {});
  auto r = cm.Replay();
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->makespan, 1.0, 1e-6);
}

}  // namespace
}  // namespace tfhpc::sim
