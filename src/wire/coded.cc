#include "wire/coded.h"

namespace tfhpc::wire {

void CodedOutput::WriteVarint(uint64_t v) {
  while (v >= 0x80) {
    out_->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out_->push_back(static_cast<char>(v));
}

void CodedOutput::WriteFixed32(uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);  // little-endian hosts only (x86/arm64)
  out_->append(buf, 4);
}

void CodedOutput::WriteFixed64(uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out_->append(buf, 8);
}

void CodedOutput::WriteUInt64(uint32_t field, uint64_t v) {
  WriteTag(field, WireType::kVarint);
  WriteVarint(v);
}

void CodedOutput::WriteDouble(uint32_t field, double v) {
  WriteTag(field, WireType::kFixed64);
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  WriteFixed64(bits);
}

void CodedOutput::WriteFloat(uint32_t field, float v) {
  WriteTag(field, WireType::kFixed32);
  uint32_t bits;
  std::memcpy(&bits, &v, 4);
  WriteFixed32(bits);
}

void CodedOutput::WriteString(uint32_t field, const std::string& v) {
  WriteBytes(field, v.data(), v.size());
}

void CodedOutput::WriteBytes(uint32_t field, const void* data, size_t size) {
  WriteTag(field, WireType::kLengthDelimited);
  WriteVarint(size);
  out_->append(static_cast<const char*>(data), size);
}

Status CodedInput::ReadVarint(uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (p_ != end_) {
    const uint8_t byte = *p_++;
    if (shift >= 64) return InvalidArgument("varint too long");
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return Status::OK();
    }
    shift += 7;
  }
  return OutOfRange("truncated varint");
}

Status CodedInput::ReadFixed32(uint32_t* v) {
  if (remaining() < 4) return OutOfRange("truncated fixed32");
  std::memcpy(v, p_, 4);
  p_ += 4;
  return Status::OK();
}

Status CodedInput::ReadFixed64(uint64_t* v) {
  if (remaining() < 8) return OutOfRange("truncated fixed64");
  std::memcpy(v, p_, 8);
  p_ += 8;
  return Status::OK();
}

Status CodedInput::ReadTag(uint32_t* field, WireType* type) {
  uint64_t tag;
  TFHPC_RETURN_IF_ERROR(ReadVarint(&tag));
  *field = static_cast<uint32_t>(tag >> 3);
  const uint32_t wt = static_cast<uint32_t>(tag & 7);
  if (wt == 3 || wt == 4 || wt > 5) {
    return InvalidArgument("unsupported wire type " + std::to_string(wt));
  }
  *type = static_cast<WireType>(wt);
  if (*field == 0) return InvalidArgument("field number 0");
  return Status::OK();
}

Status CodedInput::ReadDouble(double* v) {
  uint64_t bits;
  TFHPC_RETURN_IF_ERROR(ReadFixed64(&bits));
  std::memcpy(v, &bits, 8);
  return Status::OK();
}

Status CodedInput::ReadFloat(float* v) {
  uint32_t bits;
  TFHPC_RETURN_IF_ERROR(ReadFixed32(&bits));
  std::memcpy(v, &bits, 4);
  return Status::OK();
}

Status CodedInput::ReadBytesView(const uint8_t** data, size_t* size) {
  uint64_t len;
  TFHPC_RETURN_IF_ERROR(ReadVarint(&len));
  if (len > remaining()) return OutOfRange("truncated length-delimited field");
  *data = p_;
  *size = static_cast<size_t>(len);
  p_ += len;
  return Status::OK();
}

Status CodedInput::ReadString(std::string* v) {
  const uint8_t* data;
  size_t size;
  TFHPC_RETURN_IF_ERROR(ReadBytesView(&data, &size));
  v->assign(reinterpret_cast<const char*>(data), size);
  return Status::OK();
}

Status CodedInput::SkipField(WireType type) {
  switch (type) {
    case WireType::kVarint: {
      uint64_t v;
      return ReadVarint(&v);
    }
    case WireType::kFixed64: {
      uint64_t v;
      return ReadFixed64(&v);
    }
    case WireType::kFixed32: {
      uint32_t v;
      return ReadFixed32(&v);
    }
    case WireType::kLengthDelimited: {
      const uint8_t* d;
      size_t s;
      return ReadBytesView(&d, &s);
    }
  }
  return InvalidArgument("bad wire type");
}

}  // namespace tfhpc::wire
