// Distributed Conjugate Gradient solver (paper §IV, Fig. 5): the SPD matrix
// is split into horizontal row blocks, one per worker; each iteration every
// worker computes its slice of A*p on its GPU, the slices and the two dot
// products are combined by a queue-based reducer (one incoming and one
// outgoing queue per reduction step), and the loop state (x, r, p) lives in
// variables so only the loop body is a graph. Double precision, as in the
// paper; includes the paper's checkpoint-restart capability.
#pragma once

#include <functional>

#include "distrib/client.h"
#include "sim/machine.h"

namespace tfhpc::apps {

struct CgOptions {
  int64_t n = 0;          // system dimension
  int num_workers = 2;
  int max_iterations = 500;  // the paper times 500 iterations
  double tolerance = 1e-10;  // residual-norm^2 stop (functional mode)
  // Functional mode: checkpoint x/r/p every k iterations (0 = off).
  int checkpoint_every = 0;
  std::string checkpoint_path;
};

struct CgResult {
  double seconds = 0;
  double gflops = 0;  // paper flop model: iterations * 2 * N^2
  int iterations = 0;
  double residual = 0;      // final ||r||^2 (functional mode)
  Tensor solution;          // x (functional mode)
};

// Virtual-time CG at paper scale (500 iterations of the communication and
// compute pattern; no numerics).
Result<CgResult> SimulateCg(const sim::MachineConfig& cfg,
                            sim::Protocol protocol, const CgOptions& options);

// Real distributed solve of A x = b with A = RandomSpdMatrix(n, seed) and
// b = ones. Verifies internally that the residual dropped below tolerance
// (or max_iterations elapsed). `interrupt_after` (iterations, 0 = off) makes
// the run stop early after writing a checkpoint — restart by calling again
// with the same checkpoint_path; it resumes from the stored state.
Result<CgResult> RunCgFunctional(const CgOptions& options, uint64_t seed,
                                 distrib::WireProtocol protocol,
                                 int interrupt_after = 0);

}  // namespace tfhpc::apps
