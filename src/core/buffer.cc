#include "core/buffer.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>

#include "core/logging.h"
#include "core/rng.h"

namespace tfhpc {
namespace {

size_t RoundUpPow2(size_t v) {
  size_t c = BufferPool::kMinClassBytes;
  while (c < v) c <<= 1;
  return c;
}

// Runtime counterpart of the alignment static_asserts in buffer.h: every
// block TryAcquire hands out (fresh, cached, or oversized — Acquire funnels
// through here too) must be safe for 64-byte SIMD loads.
void CheckAligned(const void* p) {
  TFHPC_CHECK(reinterpret_cast<uintptr_t>(p) % Buffer::kAlignment == 0)
      << "BufferPool produced a misaligned block";
}

}  // namespace

// ---- MemoryLimiter ----------------------------------------------------------

Status MemoryLimiter::Reserve(int64_t bytes) {
  int64_t cur = used_.load(std::memory_order_relaxed);
  for (;;) {
    const int64_t lim = limit_.load(std::memory_order_relaxed);
    if (lim > 0 && cur + bytes > lim) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      return ResourceExhausted(scope_ + " budget exhausted: " +
                               std::to_string(cur) + " bytes in use + " +
                               std::to_string(bytes) + " requested > limit " +
                               std::to_string(lim));
    }
    if (used_.compare_exchange_weak(cur, cur + bytes,
                                    std::memory_order_relaxed)) {
      break;
    }
  }
  const int64_t now = cur + bytes;
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

void MemoryLimiter::Release(int64_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

MemoryLimiter& MemoryLimiter::Process() {
  // Leaked intentionally: buffers may outlive static destruction order.
  static MemoryLimiter* limiter = new MemoryLimiter(0, "process memory");
  return *limiter;
}

// ---- AllocFaultInjector -----------------------------------------------------

AllocFaultInjector& AllocFaultInjector::Global() {
  static AllocFaultInjector* injector = new AllocFaultInjector();
  return *injector;
}

void AllocFaultInjector::Install(const AllocFaultSpec& spec) {
  MutexLock lock(mu_);
  spec_ = spec;
  eligible_count_ = 0;
  eligible_bytes_ = 0;
  failures_ = 0;
  considered_.store(0, std::memory_order_relaxed);
  injected_.store(0, std::memory_order_relaxed);
  armed_.store(spec.enabled(), std::memory_order_release);
}

void AllocFaultInjector::Disarm() {
  MutexLock lock(mu_);
  armed_.store(false, std::memory_order_release);
}

bool AllocFaultInjector::ShouldFail(size_t bytes) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  MutexLock lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return false;
  considered_.fetch_add(1, std::memory_order_relaxed);
  if (bytes < spec_.min_bytes || bytes > spec_.max_bytes) return false;
  ++eligible_count_;
  eligible_bytes_ += static_cast<int64_t>(bytes);
  if (spec_.max_failures >= 0 && failures_ >= spec_.max_failures) return false;
  bool fail = false;
  if (spec_.every_nth > 0 && eligible_count_ % spec_.every_nth == 0) {
    fail = true;
  }
  if (!fail && spec_.after_bytes >= 0 && eligible_bytes_ > spec_.after_bytes) {
    fail = true;
  }
  if (!fail && spec_.probability > 0.0) {
    const Philox::Block block = Philox(spec_.seed)(eligible_count_);
    fail = UniformDouble(block.v[0], block.v[1]) < spec_.probability;
  }
  if (fail) {
    ++failures_;
    injected_.fetch_add(1, std::memory_order_relaxed);
  }
  return fail;
}

// ---- BufferPool -------------------------------------------------------------

BufferPool::BufferPool() {
  // Classes: 64 B .. 64 MB inclusive, one list per power of two.
  size_t n = 0;
  for (size_t c = kMinClassBytes; c <= kMaxPooledBytes; c <<= 1) ++n;
  free_lists_.resize(n);
}

BufferPool& BufferPool::Global() {
  // Leaked intentionally: buffers may outlive static destruction order.
  static BufferPool* pool = new BufferPool();
  return *pool;
}

size_t BufferPool::ClassIndex(size_t size) {
  size_t idx = 0;
  for (size_t c = kMinClassBytes; c < size; c <<= 1) ++idx;
  return idx;
}

Status BufferPool::TryAcquire(size_t size, void** out, size_t* capacity,
                              bool* pool_hit) {
  total_acquires_.fetch_add(1, std::memory_order_relaxed);
  *pool_hit = false;
  *out = nullptr;
  if (size > kMaxPooledBytes) {
    // Oversized: bypass the pool, round only for aligned_alloc's contract.
    const size_t rounded =
        (size + Buffer::kAlignment - 1) / Buffer::kAlignment *
        Buffer::kAlignment;
    TFHPC_RETURN_IF_ERROR(
        MemoryLimiter::Process().Reserve(static_cast<int64_t>(rounded)));
    void* p = std::aligned_alloc(Buffer::kAlignment, rounded);
    if (p == nullptr) {
      MemoryLimiter::Process().Release(static_cast<int64_t>(rounded));
      return ResourceExhausted("allocation of " + std::to_string(rounded) +
                               " bytes failed");
    }
    *capacity = rounded;
    *out = p;
    CheckAligned(p);
    return Status::OK();
  }
  const size_t cls = RoundUpPow2(size);
  *capacity = cls;
  {
    MutexLock lock(mu_);
    auto& list = free_lists_[ClassIndex(cls)];
    if (!list.empty()) {
      // Cached blocks stay charged to the process limiter, so a hit needs
      // no new reservation.
      void* p = list.back();
      list.pop_back();
      cached_bytes_.fetch_sub(cls, std::memory_order_relaxed);
      total_hits_.fetch_add(1, std::memory_order_relaxed);
      *pool_hit = true;
      *out = p;
      CheckAligned(p);
      return Status::OK();
    }
  }
  TFHPC_RETURN_IF_ERROR(
      MemoryLimiter::Process().Reserve(static_cast<int64_t>(cls)));
  void* p = std::aligned_alloc(Buffer::kAlignment, cls);
  if (p == nullptr) {
    MemoryLimiter::Process().Release(static_cast<int64_t>(cls));
    return ResourceExhausted("allocation of " + std::to_string(cls) +
                             " bytes failed");
  }
  *out = p;
  CheckAligned(p);
  return Status::OK();
}

void* BufferPool::Acquire(size_t size, size_t* capacity, bool* pool_hit) {
  void* p = nullptr;
  Status st = TryAcquire(size, &p, capacity, pool_hit);
  if (!st.ok()) {
    // Legacy infallible contract: trim once, then die loudly.
    Trim();
    st = TryAcquire(size, &p, capacity, pool_hit);
  }
  TFHPC_CHECK(st.ok()) << st.ToString();
  return p;
}

void BufferPool::Release(void* ptr, size_t capacity) {
  if (ptr == nullptr) return;
  if (capacity <= kMaxPooledBytes) {
    MutexLock lock(mu_);
    if (cached_bytes_.load(std::memory_order_relaxed) + capacity <=
        cache_cap_) {
      // Kept in the pool: the process-limiter charge stays (idle bytes are
      // still our footprint; Trim() returns them).
      free_lists_[ClassIndex(capacity)].push_back(ptr);
      cached_bytes_.fetch_add(capacity, std::memory_order_relaxed);
      return;
    }
  }
  std::free(ptr);
  MemoryLimiter::Process().Release(static_cast<int64_t>(capacity));
}

size_t BufferPool::Trim() {
  size_t freed = 0;
  {
    MutexLock lock(mu_);
    size_t cls = kMinClassBytes;
    for (auto& list : free_lists_) {
      freed += cls * list.size();
      for (void* p : list) std::free(p);
      list.clear();
      cls <<= 1;
    }
    cached_bytes_.fetch_sub(freed, std::memory_order_relaxed);
  }
  if (freed > 0) MemoryLimiter::Process().Release(static_cast<int64_t>(freed));
  return freed;
}

void BufferPool::set_cache_cap(size_t bytes) {
  {
    MutexLock lock(mu_);
    cache_cap_ = bytes;
  }
  if (cached_bytes_.load(std::memory_order_relaxed) > bytes) Trim();
}

// ---- Buffer -----------------------------------------------------------------

Result<std::shared_ptr<Buffer>> Buffer::TryAllocate(
    size_t size, AllocatorStats* stats, ZeroInit zero,
    std::shared_ptr<MemoryLimiter> step_limiter) {
  void* p = nullptr;
  size_t capacity = 0;
  if (size > 0) {
    // Per-step budget first: a breach is the step outgrowing its own
    // allowance — permanent, no amount of trimming or retrying helps.
    if (step_limiter != nullptr) {
      Status st = step_limiter->Reserve(static_cast<int64_t>(size));
      if (!st.ok()) {
        if (stats != nullptr) stats->RecordFailed();
        return st;  // plain (permanent) kResourceExhausted
      }
    }
    bool pool_hit = false;
    Status st;
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (AllocFaultInjector::Global().ShouldFail(size)) {
        st = ResourceExhausted("injected allocation failure (" +
                               std::to_string(size) + " bytes)");
      } else {
        st = BufferPool::Global().TryAcquire(size, &p, &capacity, &pool_hit);
      }
      if (st.ok()) break;
      // Budget breach, injected fault or real aligned_alloc failure: drop
      // the pool's idle bytes and retry exactly once.
      if (attempt == 0) BufferPool::Global().Trim();
    }
    if (!st.ok()) {
      if (step_limiter != nullptr) {
        step_limiter->Release(static_cast<int64_t>(size));
      }
      if (stats != nullptr) stats->RecordFailed();
      // Pool pressure is transient: siblings completing (or another Trim)
      // frees capacity, so a retry after backoff may succeed.
      return TransientResourceExhausted(st.message());
    }
    // Zero only the bytes the caller asked for; the class-capacity tail is
    // never read through this buffer.
    if (zero == ZeroInit::kYes) std::memset(p, 0, size);
    if (stats != nullptr) {
      stats->RecordAlloc(pool_hit, static_cast<int64_t>(capacity));
    }
  }
  if (stats != nullptr) stats->Add(static_cast<int64_t>(size));
  return std::shared_ptr<Buffer>(
      new Buffer(p, size, capacity, stats, std::move(step_limiter)));
}

std::shared_ptr<Buffer> Buffer::Allocate(size_t size, AllocatorStats* stats,
                                         ZeroInit zero) {
  void* p = nullptr;
  size_t capacity = 0;
  if (size > 0) {
    // Infallible path: BufferPool::Acquire CHECKs on failure and the fault
    // injector is never consulted (no step to unwind here).
    bool pool_hit = false;
    p = BufferPool::Global().Acquire(size, &capacity, &pool_hit);
    if (zero == ZeroInit::kYes) std::memset(p, 0, size);
    if (stats != nullptr) {
      stats->RecordAlloc(pool_hit, static_cast<int64_t>(capacity));
    }
  }
  if (stats != nullptr) stats->Add(static_cast<int64_t>(size));
  return std::shared_ptr<Buffer>(
      new Buffer(p, size, capacity, stats, nullptr));
}

std::shared_ptr<Buffer> Buffer::CreateView(std::shared_ptr<Buffer> base,
                                           size_t offset, size_t size) {
  TFHPC_CHECK(base != nullptr) << "view of null buffer";
  TFHPC_CHECK(offset % kAlignment == 0)
      << "view offset " << offset << " breaks the alignment invariant";
  TFHPC_CHECK(offset + size <= base->size_)
      << "view [" << offset << ", " << offset + size << ") exceeds base size "
      << base->size_;
  void* p =
      size == 0 ? nullptr : static_cast<char*>(base->data_) + offset;
  auto view =
      std::shared_ptr<Buffer>(new Buffer(p, size, 0, nullptr, nullptr));
  view->parent_ = std::move(base);
  return view;
}

Buffer::~Buffer() {
  if (parent_ != nullptr) return;  // views own none of their bytes
  if (stats_ != nullptr) stats_->Sub(static_cast<int64_t>(size_));
  if (step_limiter_ != nullptr) {
    step_limiter_->Release(static_cast<int64_t>(size_));
  }
  BufferPool::Global().Release(data_, capacity_);
}

}  // namespace tfhpc
