// Rendezvous: keyed, blocking tensor exchange — TensorFlow's mechanism
// behind the _Send/_Recv ops the runtime inserts at device/task boundaries.
// Senders deposit tensors under a string key; receivers block until the key
// has a value. Keys are consumed FIFO per key (multiple sends to the same
// key queue up, matching step-wise producer/consumer use).
#pragma once

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "core/status.h"
#include "core/tensor.h"
#include "runtime/cancellation.h"

namespace tfhpc {

class Rendezvous {
 public:
  Status Send(const std::string& key, Tensor tensor);
  // Blocks until a tensor arrives for `key` (or the rendezvous aborts, or
  // `token` — when non-null — cancels or its deadline passes, in which case
  // the wait fails with the token's status without consuming any tensor).
  Result<Tensor> Recv(const std::string& key,
                      CancellationToken* token = nullptr);

  // Wakes every waiter with `status` and fails all subsequent operations
  // (used at server teardown and on step errors).
  void Abort(Status status);

  // Clears an abort and drops all pending tensors, returning the rendezvous
  // to a fresh state — how a distributed session recovers the task after a
  // cancelled step. No waiter may be blocked when calling this.
  void Reset();

  size_t pending_keys() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, std::deque<Tensor>> items_;
  Status aborted_;  // OK = live
};

}  // namespace tfhpc
