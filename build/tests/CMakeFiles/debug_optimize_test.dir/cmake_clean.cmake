file(REMOVE_RECURSE
  "CMakeFiles/debug_optimize_test.dir/debug_optimize_test.cc.o"
  "CMakeFiles/debug_optimize_test.dir/debug_optimize_test.cc.o.d"
  "debug_optimize_test"
  "debug_optimize_test.pdb"
  "debug_optimize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_optimize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
