#include "core/buffer.h"

#include <cstdlib>
#include <cstring>
#include <new>

#include "core/logging.h"

namespace tfhpc {

std::shared_ptr<Buffer> Buffer::Allocate(size_t size, AllocatorStats* stats) {
  // Round up so aligned_alloc's size-multiple-of-alignment contract holds.
  const size_t rounded = (size + kAlignment - 1) / kAlignment * kAlignment;
  void* p = nullptr;
  if (rounded > 0) {
    p = std::aligned_alloc(kAlignment, rounded);
    TFHPC_CHECK(p != nullptr) << "allocation of " << rounded << " bytes failed";
    std::memset(p, 0, rounded);
  }
  if (stats != nullptr) stats->Add(static_cast<int64_t>(size));
  return std::shared_ptr<Buffer>(new Buffer(p, size, stats));
}

Buffer::~Buffer() {
  if (stats_ != nullptr) stats_->Sub(static_cast<int64_t>(size_));
  std::free(data_);
}

}  // namespace tfhpc
