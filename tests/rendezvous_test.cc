// Tests for the rendezvous (_Send/_Recv), the cross-task wire path, the
// token-queue barrier, and transport fault injection.
#include <gtest/gtest.h>

#include <thread>

#include "distrib/barrier.h"
#include "distrib/client.h"
#include "distrib/server.h"
#include "graph/ops.h"
#include "runtime/rendezvous.h"

namespace tfhpc {
namespace {

// ---- Rendezvous core ------------------------------------------------------------

TEST(RendezvousTest, SendThenRecv) {
  Rendezvous rv;
  ASSERT_TRUE(rv.Send("k", Tensor::Scalar(1.5)).ok());
  auto r = rv.Recv("k");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->scalar<double>(), 1.5);
  EXPECT_EQ(rv.pending_keys(), 0u);
}

TEST(RendezvousTest, RecvBlocksUntilSend) {
  Rendezvous rv;
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(rv.Send("late", Tensor::Scalar(7.0)).ok());
  });
  auto r = rv.Recv("late");
  sender.join();
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->scalar<double>(), 7.0);
}

TEST(RendezvousTest, KeysAreIndependentAndFifo) {
  Rendezvous rv;
  ASSERT_TRUE(rv.Send("a", Tensor::Scalar(1.0)).ok());
  ASSERT_TRUE(rv.Send("b", Tensor::Scalar(2.0)).ok());
  ASSERT_TRUE(rv.Send("a", Tensor::Scalar(3.0)).ok());
  EXPECT_DOUBLE_EQ(rv.Recv("b")->scalar<double>(), 2.0);
  EXPECT_DOUBLE_EQ(rv.Recv("a")->scalar<double>(), 1.0);
  EXPECT_DOUBLE_EQ(rv.Recv("a")->scalar<double>(), 3.0);
}

TEST(RendezvousTest, AbortWakesWaiters) {
  Rendezvous rv;
  std::thread aborter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    rv.Abort(Cancelled("shutting down"));
  });
  auto r = rv.Recv("never");
  aborter.join();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kCancelled);
  // Post-abort operations fail too.
  EXPECT_FALSE(rv.Send("x", Tensor::Scalar(1.0)).ok());
}

TEST(RendezvousTest, ResetClearsAbortAndPendingItems) {
  Rendezvous rv;
  ASSERT_TRUE(rv.Send("stale", Tensor::Scalar(1.0)).ok());
  rv.Abort(Cancelled("step failed"));
  EXPECT_FALSE(rv.Send("x", Tensor::Scalar(2.0)).ok());
  rv.Reset();
  EXPECT_EQ(rv.pending_keys(), 0u);  // stale item dropped
  ASSERT_TRUE(rv.Send("x", Tensor::Scalar(3.0)).ok());
  EXPECT_DOUBLE_EQ(rv.Recv("x")->scalar<double>(), 3.0);
}

// ---- _Send/_Recv through the graph -------------------------------------------------

TEST(SendRecvOpTest, LocalRoundTripInOneStep) {
  LocalRuntime rt(1);
  Scope s = rt.root_scope();
  auto v = ops::Const(s, Tensor::Scalar(4.25));
  auto send = ops::Send(s, v, "edge0");
  auto recv = ops::Recv(s, "edge0");
  auto r = rt.NewSession()->Run({}, {recv.name()}, {send.node->name()});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 4.25);
}

TEST(SendRecvOpTest, RemoteSendWithoutWireFails) {
  LocalRuntime rt(1);  // no Server => no remote hook
  Scope s = rt.root_scope();
  auto v = ops::Const(s, Tensor::Scalar(1.0));
  auto send = ops::Send(s, v, "k", /*target=*/"elsewhere:1");
  auto r = rt.NewSession()->Run({}, {}, {send.node->name()});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kFailedPrecondition);
}

// ---- Cross-task rendezvous over the wire --------------------------------------------

class CrossTaskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wire::ClusterDef def;
    wire::JobDef workers;
    workers.name = "worker";
    workers.task_addrs = {"xt0:1", "xt1:1"};
    def.jobs = {workers};
    auto spec = distrib::ClusterSpec::Create(def);
    ASSERT_TRUE(spec.ok());
    w0_ = distrib::Server::Create({*spec, "worker", 0, 1}, &router_).value();
    w1_ = distrib::Server::Create({*spec, "worker", 1, 1}, &router_).value();
  }

  distrib::InProcessRouter router_;
  std::unique_ptr<distrib::Server> w0_, w1_;
};

TEST_F(CrossTaskTest, SendOnW0RecvOnW1) {
  // Graph on w0: _Send(value, key, target=w1). Graph on w1: _Recv(key).
  Scope s0(&w0_->graph());
  auto v = ops::Const(s0, Tensor::FromVector(std::vector<double>{1, 2, 3}));
  auto send = ops::Send(s0, v, "halo", "xt1:1");

  Scope s1(&w1_->graph());
  auto recv = ops::Recv(s1, "halo");

  // Receiver blocks on its own thread; sender runs after a beat.
  Result<std::vector<Tensor>> recv_result(Internal("unset"));
  std::thread receiver([&] {
    recv_result = w1_->NewSession()->Run({}, {recv.name()});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(w0_->NewSession()->Run({}, {}, {send.node->name()}).ok());
  receiver.join();
  ASSERT_TRUE(recv_result.ok()) << recv_result.status().ToString();
  EXPECT_DOUBLE_EQ((*recv_result)[0].data<double>()[2], 3.0);
}

TEST_F(CrossTaskTest, BidirectionalExchangeSameStep) {
  // Halo exchange: both tasks send to each other and receive, in one step
  // per task — the domain-decomposition pattern the paper's §VIII says the
  // PS model struggles with, expressed with explicit rendezvous edges.
  Scope s0(&w0_->graph());
  auto send0 = ops::Send(s0, ops::Const(s0, Tensor::Scalar(10.0)), "to1",
                         "xt1:1");
  auto recv0 = ops::Recv(s0, "to0");
  Scope s1(&w1_->graph());
  auto send1 = ops::Send(s1, ops::Const(s1, Tensor::Scalar(20.0)), "to0",
                         "xt0:1");
  auto recv1 = ops::Recv(s1, "to1");

  Result<std::vector<Tensor>> r0(Internal("unset")), r1(Internal("unset"));
  std::thread t0([&] {
    r0 = w0_->NewSession()->Run({}, {recv0.name()}, {send0.node->name()});
  });
  std::thread t1([&] {
    r1 = w1_->NewSession()->Run({}, {recv1.name()}, {send1.node->name()});
  });
  t0.join();
  t1.join();
  ASSERT_TRUE(r0.ok() && r1.ok());
  EXPECT_DOUBLE_EQ((*r0)[0].scalar<double>(), 20.0);
  EXPECT_DOUBLE_EQ((*r1)[0].scalar<double>(), 10.0);
}

TEST_F(CrossTaskTest, ServerShutdownAbortsPendingRecv) {
  Scope s1(&w1_->graph());
  auto recv = ops::Recv(s1, "never_sent");
  Result<std::vector<Tensor>> result(Internal("unset"));
  std::thread receiver([&] {
    result = w1_->NewSession()->Run({}, {recv.name()});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  w1_->Shutdown();  // unblocks the pending recv; join BEFORE destroying
  receiver.join();
  w1_.reset();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Code::kCancelled);
}

// ---- Fault injection ------------------------------------------------------------------

TEST_F(CrossTaskTest, InjectedFaultSurfacesAndClears) {
  distrib::RemoteTask w1(&router_, "xt1:1", distrib::WireProtocol::kRdma);
  router_.InjectFault("xt1:1", "VarWrite", Unavailable("link flap"), 2);
  EXPECT_EQ(w1.VarAssign("x", Tensor::Scalar(1.0)).code(), Code::kUnavailable);
  EXPECT_EQ(w1.VarAssign("x", Tensor::Scalar(1.0)).code(), Code::kUnavailable);
  // Third attempt succeeds (fault exhausted) — retry-style recovery works.
  EXPECT_TRUE(w1.VarAssign("x", Tensor::Scalar(1.0)).ok());
  EXPECT_DOUBLE_EQ(w1.VarRead("x")->scalar<double>(), 1.0);
}

TEST_F(CrossTaskTest, WildcardFaultMatchesAnyMethod) {
  distrib::RemoteTask w0(&router_, "xt0:1", distrib::WireProtocol::kGrpc);
  router_.InjectFault("xt0:1", "*", DeadlineExceeded("timeout"), 1);
  EXPECT_EQ(w0.Ping().code(), Code::kDeadlineExceeded);
  EXPECT_TRUE(w0.Ping().ok());
  router_.InjectFault("xt0:1", "*", DeadlineExceeded("timeout"), 1);
  router_.ClearFaults();
  EXPECT_TRUE(w0.Ping().ok());
}

TEST_F(CrossTaskTest, FaultDuringRemoteSendPropagatesToStep) {
  Scope s0(&w0_->graph());
  auto send = ops::Send(s0, ops::Const(s0, Tensor::Scalar(1.0)), "k",
                        "xt1:1");
  router_.InjectFault("xt1:1", "RendezvousSend", Unavailable("down"), 1);
  auto r = w0_->NewSession()->Run({}, {}, {send.node->name()});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kUnavailable);
}

// ---- QueueBarrier --------------------------------------------------------------------

TEST(QueueBarrierTest, SynchronizesWorkersAcrossRounds) {
  distrib::InProcessRouter router;
  wire::ClusterDef def;
  wire::JobDef ps;
  ps.name = "ps";
  ps.task_addrs = {"bar-ps:1"};
  def.jobs = {ps};
  auto spec = distrib::ClusterSpec::Create(def).value();
  auto server = distrib::Server::Create({spec, "ps", 0, 0}, &router).value();

  constexpr int kWorkers = 4;
  constexpr int kRounds = 5;
  std::thread coordinator([&] {
    ASSERT_TRUE(distrib::QueueBarrier::RunCoordinator(
                    &router, "bar-ps:1", distrib::WireProtocol::kRdma, "sync",
                    kWorkers, kRounds)
                    .ok());
  });

  std::atomic<int> in_critical{0};
  std::atomic<bool> overlap{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      distrib::QueueBarrier barrier(&router, "bar-ps:1",
                                    distrib::WireProtocol::kRdma, "sync",
                                    kWorkers);
      for (int round = 0; round < kRounds; ++round) {
        auto r = barrier.Arrive(w);
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(*r, round);  // coordinator round numbers line up
        // Between barriers, phases must not overlap by more than the
        // worker count of one round.
        const int now = in_critical.fetch_add(1) + 1;
        if (now > kWorkers) overlap = true;
        std::this_thread::yield();
        in_critical.fetch_sub(1);
      }
    });
  }
  for (auto& t : workers) t.join();
  coordinator.join();
  EXPECT_FALSE(overlap.load());
}

TEST(QueueBarrierTest, BadWorkerIdRejected) {
  distrib::InProcessRouter router;
  distrib::QueueBarrier barrier(&router, "nowhere:1",
                                distrib::WireProtocol::kRdma, "b", 2);
  EXPECT_FALSE(barrier.Arrive(5).ok());
  EXPECT_FALSE(barrier.Arrive(-1).ok());
}

}  // namespace
}  // namespace tfhpc
