file(REMOVE_RECURSE
  "CMakeFiles/eager_test.dir/eager_test.cc.o"
  "CMakeFiles/eager_test.dir/eager_test.cc.o.d"
  "eager_test"
  "eager_test.pdb"
  "eager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
