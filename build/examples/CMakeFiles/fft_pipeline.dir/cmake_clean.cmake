file(REMOVE_RECURSE
  "CMakeFiles/fft_pipeline.dir/fft_pipeline.cpp.o"
  "CMakeFiles/fft_pipeline.dir/fft_pipeline.cpp.o.d"
  "fft_pipeline"
  "fft_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
