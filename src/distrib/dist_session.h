// DistributedSession: the client half of TensorFlow's distributed
// execution. Takes one graph with nodes placed on multiple tasks,
// partitions it (distrib/partition.h), ships each partition to its server
// once, and on every Run drives all partitions concurrently — cross-task
// tensors flow through the rendezvous _Send/_Recv pairs the partitioner
// inserted. Feeds and fetches are routed to the owning partition
// automatically.
//
// Simplification vs TensorFlow: every Run executes all partitions in full
// (no cross-partition pruning), which keeps send/recv pairs matched by
// construction.
//
// Fault tolerance: Run can re-attempt a step that failed with a transient
// fault (lost rank, dropped messages). Recovery unwinds in-flight _Recvs on
// every task (AbortStep), returns the rendezvous to a clean state
// (ResetStep), optionally restores variables from an io::checkpoint
// snapshot taken before the first attempt, and re-runs — up to a
// configurable budget. A FaultReport records what failed and which recovery
// path was taken.
#pragma once

#include <memory>

#include "distrib/client.h"
#include "distrib/partition.h"

namespace tfhpc::distrib {

// Knobs for fault-tolerant Run. The defaults reproduce the historical
// fail-fast behaviour (one attempt, no RPC retries, no checkpointing).
struct StepRecoveryOptions {
  // Total step attempts (1 = no step-level recovery).
  int max_step_attempts = 1;
  // Retry/deadline policy applied to every RPC the step issues (RunStep,
  // plus the servers' rendezvous sends are governed by ServerDef).
  RetryPolicy rpc_retry = RetryPolicy::NoRetry();
  // When non-empty: before the first attempt all task variables are
  // snapshotted (VarSnapshot per task) into this checkpoint file; before
  // every re-attempt they are restored from it, so a step that half-applied
  // variable updates re-runs from consistent state. Keys are
  // "<task addr>|<var name>" — names may repeat across tasks.
  std::string checkpoint_path;
};

// What happened to one fault-tolerant Run: which partition failed first,
// how much retrying it took, and how the step was (or wasn't) recovered.
struct FaultReport {
  int step_attempts = 0;      // attempts consumed (1 = clean first run)
  int64_t rpc_retries = 0;    // transport-level retries across all attempts
  bool checkpoint_saved = false;
  int variables_restored = 0;  // total vars restored across re-attempts
  bool recovered = false;      // true iff a re-attempt succeeded
  std::string failed_partition;  // task addr of the first failure (if any)
  Status first_error;            // root cause of the first failed attempt
  Status final_status;           // what Run returned

  std::string ToString() const;
};

class DistributedSession {
 public:
  // Partitions `def` and extends every involved server's graph. The graph
  // nodes must carry device specs resolvable against `cluster` (merged with
  // `default_device`).
  static Result<std::unique_ptr<DistributedSession>> Create(
      InProcessRouter* router, const ClusterSpec& cluster,
      WireProtocol protocol, const wire::GraphDef& def,
      const DeviceName& default_device);

  // Runs one step across all partitions; returns fetched tensors in order.
  Result<std::vector<Tensor>> Run(const std::map<std::string, Tensor>& feeds,
                                  const std::vector<std::string>& fetches);

  // Fault-tolerant Run: same contract, plus step-level recovery under
  // `recovery`. If `report` is non-null it is filled in either way.
  Result<std::vector<Tensor>> Run(const std::map<std::string, Tensor>& feeds,
                                  const std::vector<std::string>& fetches,
                                  const StepRecoveryOptions& recovery,
                                  FaultReport* report);

  int num_partitions() const { return static_cast<int>(partitions_.size()); }
  // Owning task of a node (tests / diagnostics).
  Result<std::string> TaskOf(const std::string& node_name) const;

 private:
  DistributedSession(InProcessRouter* router, WireProtocol protocol)
      : router_(router), protocol_(protocol) {}

  struct Partition {
    std::string addr;
    std::vector<std::string> all_nodes;  // run targets (full execution)
  };

  // One step attempt across all partitions. On failure, fills
  // *failed_partition with the first failing task's address.
  Result<std::vector<Tensor>> RunOnce(
      const std::map<std::string, Tensor>& feeds,
      const std::vector<std::string>& fetches, const RetryPolicy& rpc_retry,
      int64_t* rpc_retries, std::string* failed_partition);

  // Unwinds a failed step on every task: AbortStep (wake parked _Recvs),
  // then ResetStep (clean rendezvous). Errors from unreachable tasks are
  // ignored — a partitioned task is reset when it heals or re-fails fast.
  void AbortAndResetAllTasks();

  InProcessRouter* router_;
  WireProtocol protocol_;
  std::vector<Partition> partitions_;
  std::map<std::string, std::string> node_task_;
};

}  // namespace tfhpc::distrib
