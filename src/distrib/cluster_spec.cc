#include "distrib/cluster_spec.h"

#include <set>

namespace tfhpc::distrib {

Result<ClusterSpec> ClusterSpec::Create(wire::ClusterDef def) {
  std::set<std::string> job_names;
  std::set<std::string> addrs;
  if (def.jobs.empty()) return InvalidArgument("cluster with no jobs");
  for (const auto& job : def.jobs) {
    if (job.name.empty()) return InvalidArgument("job with empty name");
    if (!job_names.insert(job.name).second) {
      return InvalidArgument("duplicate job '" + job.name + "'");
    }
    if (job.task_addrs.empty()) {
      return InvalidArgument("job '" + job.name + "' has no tasks");
    }
    for (const auto& addr : job.task_addrs) {
      if (addr.empty() || addr.find(':') == std::string::npos) {
        return InvalidArgument("bad task address '" + addr + "'");
      }
      if (!addrs.insert(addr).second) {
        return InvalidArgument("duplicate task address '" + addr + "'");
      }
    }
  }
  return ClusterSpec(std::move(def));
}

std::vector<std::string> ClusterSpec::JobNames() const {
  std::vector<std::string> names;
  for (const auto& job : def_.jobs) names.push_back(job.name);
  return names;
}

int ClusterSpec::NumTasks(const std::string& job) const {
  for (const auto& j : def_.jobs) {
    if (j.name == job) return static_cast<int>(j.task_addrs.size());
  }
  return 0;
}

Result<std::string> ClusterSpec::TaskAddress(const std::string& job,
                                             int task) const {
  for (const auto& j : def_.jobs) {
    if (j.name != job) continue;
    if (task < 0 || task >= static_cast<int>(j.task_addrs.size())) {
      return OutOfRange("job '" + job + "' has no task " + std::to_string(task));
    }
    return j.task_addrs[static_cast<size_t>(task)];
  }
  return NotFound("no job '" + job + "' in cluster");
}

Result<std::pair<std::string, int>> ClusterSpec::FindTask(
    const std::string& addr) const {
  for (const auto& j : def_.jobs) {
    for (size_t t = 0; t < j.task_addrs.size(); ++t) {
      if (j.task_addrs[t] == addr) {
        return std::make_pair(j.name, static_cast<int>(t));
      }
    }
  }
  return NotFound("no task at address '" + addr + "' in cluster");
}

Result<ClusterSpec> ClusterSpec::WithTaskReplaced(
    const std::string& old_addr, const std::string& new_addr) const {
  wire::ClusterDef def = def_;
  bool replaced = false;
  for (auto& j : def.jobs) {
    for (auto& a : j.task_addrs) {
      if (a == old_addr) {
        a = new_addr;
        replaced = true;
      }
    }
  }
  if (!replaced) {
    return NotFound("no task at address '" + old_addr + "' to replace");
  }
  return Create(std::move(def));  // re-validates (uniqueness, ':' form)
}

int ClusterSpec::TotalTasks() const {
  int n = 0;
  for (const auto& j : def_.jobs) n += static_cast<int>(j.task_addrs.size());
  return n;
}

}  // namespace tfhpc::distrib
