#include "analysis/diagnostic.h"

#include <cctype>

namespace tfhpc::analysis {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out = SeverityName(severity);
  out += " ";
  out += code;
  if (!node.empty()) out += " [node '" + node + "']";
  out += ": " + message;
  if (!hint.empty()) out += " (hint: " + hint + ")";
  return out;
}

std::string FormatDiagnostics(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += d.ToString();
    out += '\n';
  }
  return out;
}

bool HasErrors(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

int CountAtLeast(const std::vector<Diagnostic>& diags, Severity floor) {
  int n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity >= floor) ++n;
  }
  return n;
}

std::string ExtractCode(const std::string& message) {
  // "[GCnnn] ..." with exactly three digits.
  if (message.size() < 8 || message[0] != '[' || message[1] != 'G' ||
      message[2] != 'C' || message[6] != ']') {
    return "";
  }
  for (int i = 3; i < 6; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(message[static_cast<size_t>(i)]))) return "";
  }
  return message.substr(1, 5);
}

std::string StripCode(const std::string& message) {
  if (ExtractCode(message).empty()) return message;
  size_t start = 7;
  while (start < message.size() && message[start] == ' ') ++start;
  return message.substr(start);
}

}  // namespace tfhpc::analysis
