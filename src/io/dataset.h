// Dataset-style input pipeline: a thread-safe work list of elements handed
// out to workers (the paper's "dataset which gives a list of indexes of
// tiles to be multiplied"), plus a prefetching wrapper that loads elements
// ahead of consumption on a background thread — the core mechanism of a
// ML-style input pipeline applied to HPC tiles.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/status.h"
#include "core/tensor.h"

namespace tfhpc::io {

// A shared index list: each GetNext() hands out one element exactly once
// across all callers (workers race for elements, like a shared tf.data
// iterator).
template <typename T>
class WorkList {
 public:
  explicit WorkList(std::vector<T> items) : items_(std::move(items)) {}

  // tf.data-style shuffled list: deterministic in `seed` (Fisher-Yates over
  // a splitmix64 stream), so distributed consumers can be re-run
  // reproducibly.
  WorkList(std::vector<T> items, uint64_t seed) : items_(std::move(items)) {
    uint64_t state = seed;
    auto next = [&state] {
      state += 0x9E3779B97F4A7C15ull;
      uint64_t z = state;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    for (size_t i = items_.size(); i > 1; --i) {
      std::swap(items_[i - 1], items_[next() % i]);
    }
  }

  std::optional<T> GetNext() {
    std::lock_guard<std::mutex> lk(mu_);
    if (next_ >= items_.size()) return std::nullopt;
    return items_[next_++];
  }

  size_t size() const { return items_.size(); }
  size_t remaining() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size() - next_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<T> items_;
  size_t next_ = 0;
};

// Prefetcher: pulls items from a producer function on a background thread
// into a bounded buffer; consumers block on Next() until an element or
// end-of-stream. Producer returning nullopt ends the stream.
class TensorPrefetcher {
 public:
  using Producer = std::function<std::optional<Tensor>()>;

  TensorPrefetcher(Producer producer, size_t buffer_size);
  ~TensorPrefetcher();
  TensorPrefetcher(const TensorPrefetcher&) = delete;
  TensorPrefetcher& operator=(const TensorPrefetcher&) = delete;

  // Blocks until an element is available; nullopt at end of stream.
  std::optional<Tensor> Next();

 private:
  void Loop();

  Producer producer_;
  const size_t buffer_size_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Tensor> buffer_;
  bool done_ = false;
  bool cancelled_ = false;
  std::thread thread_;
};

}  // namespace tfhpc::io
