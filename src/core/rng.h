// Counter-based random number generation in the spirit of TensorFlow's
// Philox: a stateless mapping (key, counter) -> random bits, so tensor fills
// are reproducible regardless of threading, plus helpers used by the
// applications (random matrices, SPD matrices for CG).
#pragma once

#include <cstdint>

#include "core/tensor.h"

namespace tfhpc {

// Philox-4x32-10 block cipher. Produces four 32-bit words per counter value.
class Philox {
 public:
  Philox(uint64_t key, uint64_t counter_hi = 0)
      : key0_(static_cast<uint32_t>(key)),
        key1_(static_cast<uint32_t>(key >> 32)),
        ctr_hi_(counter_hi) {}

  struct Block {
    uint32_t v[4];
  };
  // Deterministic function of (key, counter): thread-safe, stateless.
  Block operator()(uint64_t counter) const;

 private:
  uint32_t key0_, key1_;
  uint64_t ctr_hi_;
};

// Converts a 32-bit word to a float uniform in [0, 1).
float UniformFloat(uint32_t bits);
// Converts two 32-bit words to a double uniform in [0, 1).
double UniformDouble(uint32_t hi, uint32_t lo);

// Fills `t` (f32 or f64) with uniform [lo, hi) values derived from `seed`.
// The value at flat index i depends only on (seed, i).
void FillUniform(Tensor& t, uint64_t seed, double lo = 0.0, double hi = 1.0);

// Returns an n x n symmetric positive-definite f64 matrix: A = B + B^T + n*I
// with B uniform in [0,1). Deterministic in (seed, n).
Tensor RandomSpdMatrix(int64_t n, uint64_t seed);

}  // namespace tfhpc
