# Empty dependencies file for fig11_fft.
# This may be replaced when dependencies are built.
