#include "graph/passes.h"

#include <map>
#include <set>

namespace tfhpc {
namespace {

// Rewrites an input string's node name via `rename`, preserving control
// markers and output slots.
std::string RemapInput(const std::string& input,
                       const std::map<std::string, std::string>& rename) {
  std::string prefix, name = input, suffix;
  if (!name.empty() && name[0] == '^') {
    prefix = "^";
    name = name.substr(1);
  }
  const size_t colon = name.find(':');
  if (colon != std::string::npos) {
    suffix = name.substr(colon);
    name = name.substr(0, colon);
  }
  auto it = rename.find(name);
  if (it != rename.end()) name = it->second;
  return prefix + name + suffix;
}

}  // namespace

Result<wire::GraphDef> PruneToTargets(const wire::GraphDef& def,
                                      const std::vector<std::string>& targets) {
  TFHPC_ASSIGN_OR_RETURN(std::unique_ptr<Graph> graph, Graph::FromGraphDef(def));
  TFHPC_ASSIGN_OR_RETURN(std::vector<int> keep, graph->ReachableTo(targets));
  wire::GraphDef out;
  out.version = def.version;
  out.nodes.reserve(keep.size());
  for (int id : keep) out.nodes.push_back(graph->node(id)->def());
  return out;
}

namespace {

Result<wire::GraphDef> CseImpl(const wire::GraphDef& def,
                               const std::set<std::string>* keep,
                               bool merge_placeholders) {
  // Validate and get ids in topological order.
  TFHPC_ASSIGN_OR_RETURN(std::unique_ptr<Graph> graph, Graph::FromGraphDef(def));

  std::map<std::string, std::string> rename;  // dup name -> canonical name
  std::map<std::string, std::string> signature_to_name;
  wire::GraphDef out;
  out.version = def.version;

  for (int id : graph->TopologicalOrder()) {
    const Node* n = graph->node(id);
    wire::NodeDef nd = n->def();
    for (std::string& input : nd.inputs) input = RemapInput(input, rename);

    const bool mergeable =
        !n->op_def().is_stateful &&
        (merge_placeholders || nd.op != "Placeholder");
    if (mergeable) {
      // Signature: op + device + remapped inputs + attrs (serialized NodeDef
      // with the name blanked out is exactly that).
      wire::NodeDef sig_def = nd;
      sig_def.name = "?";
      const std::string sig = sig_def.Serialize();
      auto [it, inserted] = signature_to_name.emplace(sig, nd.name);
      if (!inserted) {
        // A protected duplicate stays in the graph under its own name (the
        // signature refers to it); everything else folds into the survivor.
        if (keep == nullptr || keep->count(nd.name) == 0) {
          rename[nd.name] = it->second;
          continue;  // drop duplicate node
        }
      }
    }
    out.nodes.push_back(std::move(nd));
  }
  return out;
}

}  // namespace

Result<wire::GraphDef> CommonSubexpressionElimination(
    const wire::GraphDef& def) {
  return CseImpl(def, nullptr, /*merge_placeholders=*/true);
}

Result<wire::GraphDef> CommonSubexpressionElimination(
    const wire::GraphDef& def, const std::set<std::string>& keep) {
  return CseImpl(def, &keep, /*merge_placeholders=*/false);
}

Result<GraphStats> ComputeStats(const wire::GraphDef& def) {
  TFHPC_ASSIGN_OR_RETURN(std::unique_ptr<Graph> graph, Graph::FromGraphDef(def));
  GraphStats stats;
  stats.num_nodes = graph->num_nodes();
  for (int id = 0; id < graph->num_nodes(); ++id) {
    const Node* n = graph->node(id);
    stats.num_edges += static_cast<int>(n->in_edges().size());
    if (n->op_def().is_stateful) ++stats.num_stateful;
  }
  return stats;
}

}  // namespace tfhpc
