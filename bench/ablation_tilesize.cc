// Ablation: tile size in the tiled matmul (DESIGN.md ablation 3). The paper
// uses 4096 on K420 ("to increase utilization") and 8192 on K80; this sweep
// shows the trade-off: small tiles lose to per-step overhead and transfer
// count, huge tiles stop fitting GPU memory.
#include <cstdio>

#include "apps/tiled_matmul.h"
#include "bench_util.h"

using namespace tfhpc;

int main() {
  bench::Header("Ablation — tile size in tiled matmul",
                "DESIGN.md ablation 3 (paper: 4096 on K420, 8192 on K80)");

  std::printf("%-14s | %10s %10s %10s %10s\n", "platform", "2048", "4096",
              "8192", "16384");
  bench::Rule();
  struct Row {
    const char* label;
    sim::MachineConfig cfg;
  };
  const Row rows[] = {
      {"Tegner K420", sim::TegnerConfig(sim::GpuKind::kK420)},
      {"Tegner K80", sim::TegnerConfig(sim::GpuKind::kK80)},
  };
  for (const Row& row : rows) {
    std::printf("%-14s |", row.label);
    for (int64_t tile : {2048, 4096, 8192, 16384}) {
      apps::TiledMatmulOptions opts;
      opts.n = 32768;
      opts.tile = tile;
      opts.num_workers = 4;
      auto r = apps::SimulateTiledMatmul(row.cfg, sim::Protocol::kRdma, opts);
      if (r.ok()) {
        std::printf(" %10.0f", r->gflops);
      } else if (r.status().code() == Code::kResourceExhausted) {
        std::printf(" %10s", "OOM");
      } else {
        std::printf("simulate failed: %s\n", r.status().ToString().c_str());
        return 1;
      }
    }
    std::printf("\n");
  }
  bench::Rule();
  std::printf("(Gflops/s, N=32768, 4 GPUs; OOM = 3 tiles exceed GPU memory)\n");
  return 0;
}
