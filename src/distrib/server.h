// A TensorFlow-style server (tf.train.Server): one per task, hosting its own
// device set, resource manager (variables + queues) and graph, and serving a
// worker service over the in-process router. The paper's applications are
// built from exactly these pieces: a ps job hosting variables/queues and
// worker jobs running compute graphs.
//
// Service methods (RpcEnvelope.method):
//   Ping        — liveness, echoes payload
//   ExtendGraph — payload: GraphDef; appends nodes to the server's graph
//   RegisterStep— payload: RegisterStepRequest (feed names + fetches +
//                 targets); compiles the signature once into an Executable
//                 and returns a step handle (RegisterStepResponse)
//   RunStep     — payload: RunStepRequest; runs fetches/targets with feeds.
//                 With step_handle set, executes the registered Executable
//                 (no graph walk); a handle compiled before a graph
//                 mutation is transparently recompiled, an unknown handle
//                 (restarted/evicted worker, registry eviction) fails with
//                 kNotFound so the client re-registers
//   Enqueue     — payload: queue name + tensor (+capacity); blocking
//   Dequeue     — payload: queue name; blocking; response carries tensor
//   CloseQueue  — payload: queue name
//   VarWrite    — payload: var name + tensor + accumulate? + want_value?
//   VarRead     — payload: var name; response carries tensor
//   VarSnapshot — empty payload; response: all initialized variables
//   VarRestore  — payload: named tensor map; bulk-restores variables
//   RendezvousSend — payload: key + tensor; deposits into this task's
//                    rendezvous (the receiving half of a cross-task _Send)
//
// Exactly-once under retries/duplication: requests carrying a non-zero
// client_id are deduplicated on (client_id, request_id) — a replayed
// request returns the cached response without re-running the handler, so
// retried/duplicated Enqueue, VarWrite(accumulate) and RunStep apply once.
// Requests carrying a non-zero checksum are verified before dispatch;
// corrupted frames get a retryable kUnavailable.
#pragma once

#include <list>
#include <memory>

#include "distrib/cluster_spec.h"
#include "distrib/retry.h"
#include "distrib/transport.h"
#include "runtime/serving.h"
#include "runtime/session.h"

namespace tfhpc::distrib {

struct ReplayCacheOptions {
  // Hard cap on resident entries; the least-recently-used entry is evicted
  // when a new insert would exceed it. Dedup state on a long job is thereby
  // bounded regardless of how many requests it serves.
  size_t max_entries = 4096;
  // When > 0, entries untouched for this long are expired. The TTL need
  // only cover the window in which a retry of an already-applied request
  // can still arrive (the client's retry deadline), not the job lifetime.
  int64_t ttl_ms = 0;
};

// Bounded (client_id, request_id) -> response cache giving non-idempotent
// service methods exactly-once semantics under retry and duplication.
// Growth is bounded two ways: an LRU max-entry cap and an optional
// time-to-live, both refreshed on Lookup (a replayed request is recent
// evidence the entry is still in its retry window).
class ReplayCache {
 public:
  explicit ReplayCache(size_t capacity = 4096)
      : ReplayCache(ReplayCacheOptions{capacity, 0}) {}
  explicit ReplayCache(ReplayCacheOptions options) : options_(options) {}

  // Returns true and fills *response if (client_id, request_id) was served
  // before. Thread-safe; the lock is never held across handler execution,
  // so two *concurrent* first deliveries of the same request may both run —
  // the in-process chaos transport replays duplicates sequentially, which
  // is the case this defends.
  bool Lookup(uint64_t client_id, uint64_t request_id,
              wire::RpcEnvelope* response);
  void Insert(uint64_t client_id, uint64_t request_id,
              const wire::RpcEnvelope& response);

  int64_t hits() const { return hits_.load(); }
  int64_t evictions() const { return evictions_.load(); }    // LRU cap
  int64_t expirations() const { return expirations_.load(); }  // TTL
  size_t size() const;

 private:
  using Key = std::pair<uint64_t, uint64_t>;
  struct Entry {
    wire::RpcEnvelope response;
    std::list<Key>::iterator lru_pos;
    int64_t last_touch_ms = 0;
  };
  int64_t NowMs() const;
  // Drops entries whose TTL lapsed, sweeping from the LRU tail. Caller
  // holds mu_.
  void ExpireLocked(int64_t now_ms);

  const ReplayCacheOptions options_;
  mutable std::mutex mu_;
  std::map<Key, Entry> responses_;
  std::list<Key> lru_;  // front = most recently used
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> expirations_{0};
};

struct ServerDef {
  ClusterSpec cluster;
  std::string job;
  int task = 0;
  int num_gpus = 0;
  ComputeModel gpu_model = models::Gk210();
  // Wire protocol this server uses for outgoing traffic (rendezvous sends).
  WireProtocol protocol = WireProtocol::kRdma;
  // Retry/deadline policy for outgoing rendezvous sends (the _Send half of
  // cross-task edges). Default NoRetry preserves fail-fast steps; the
  // fault-tolerant DistributedSession raises it.
  RetryPolicy send_retry = RetryPolicy::NoRetry();
  // TensorFlow's ProtoBuf ceiling: "computation graphs ... cannot exceed
  // two gigabytes in size" (paper §IV). ExtendGraph rejects larger defs;
  // the workaround is the paper's: keep loop state in variables and ship
  // only the loop body. Overridable for tests.
  int64_t max_graphdef_bytes = int64_t{2} << 30;
  // Bounds for the exactly-once dedup cache (see ReplayCacheOptions).
  size_t replay_cache_entries = 4096;
  int64_t replay_cache_ttl_ms = 0;
  // Registered-step capacity: oldest handles are dropped beyond this (the
  // client re-registers on kNotFound). Also caps the shared session's
  // signature-keyed executable cache.
  size_t max_registered_steps = 1024;
  // Admission control for RunStep (multi-tenant overload protection).
  // 0 = off (default, unbounded concurrency — the pre-serving behavior).
  // When > 0, at most this many steps execute concurrently; further steps
  // wait in a fair per-client queue bounded by serving.max_queued, and
  // excess load is shed with kUnavailable + retry-after (see
  // runtime/serving.h). serving.max_inflight is overridden by this field.
  int max_inflight_steps = 0;
  ServingOptions serving;
  // Per-step memory budget (bytes) applied to every RunStep on this worker;
  // 0 = unbudgeted. A step allocating past it fails with *permanent*
  // kResourceExhausted (retrying the identical step cannot help), siblings
  // on other workers are cancelled by the client's step recovery.
  int64_t step_memory_limit_bytes = 0;
  // Allocator fault schedule installed process-wide when the server starts
  // (chaos/testing only; see core/buffer.h). Injected failures surface as
  // transient kResourceExhausted step errors, never process aborts.
  AllocFaultSpec alloc_faults;
};

class Server {
 public:
  // Creates the server and binds it to its cluster address on `router`.
  static Result<std::unique_ptr<Server>> Create(ServerDef def,
                                                InProcessRouter* router);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const std::string& address() const { return address_; }
  const ServerDef& def() const { return def_; }

  // Unbinds the server and unblocks everything parked on its queues and
  // rendezvous (pending ops fail with Cancelled/OutOfRange). Call this —
  // and join any threads running steps against this server — before
  // destroying it while work is in flight. Idempotent; the destructor
  // calls it as a backstop.
  void Shutdown();

  Graph& graph() { return graph_; }
  ResourceMgr& resources() { return resources_; }
  DeviceMgr& devices() { return *devices_; }
  // A session bound to this server's graph/devices/resources, with default
  // device "/job:<job>/task:<task>".
  std::unique_ptr<Session> NewSession();
  // The long-lived session every RunStep executes through; holds the
  // executable cache, so repeat signatures compile once per worker.
  Session& session() { return *session_; }

  // Total graph nodes executed by this worker's steps (fed nodes excluded).
  // The distributed partial-closure tests assert pruning with this.
  int64_t nodes_executed() const { return session_->nodes_executed(); }
  // RegisterStep requests served (handle registrations, not dedup replays).
  int64_t steps_registered() const { return steps_registered_.load(); }

  // Service entry point (invoked by the router on caller threads).
  wire::RpcEnvelope Handle(const wire::RpcEnvelope& request);

  // Dedup cache hits — how many retried/duplicated requests were answered
  // from cache instead of re-applied (tests assert exactly-once this way).
  int64_t dedup_hits() const { return replay_cache_.hits(); }
  const ReplayCache& replay_cache() const { return replay_cache_; }
  // Requests rejected because their payload checksum did not match.
  int64_t checksum_rejects() const { return checksum_rejects_.load(); }

  // Admission/shedding counters; zeroes when admission control is off.
  ServingStats serving_stats() const {
    return serving_ != nullptr ? serving_->stats() : ServingStats{};
  }
  // Requests refused before dispatch because their deadline had already
  // passed on arrival.
  int64_t expired_rejects() const { return expired_rejects_.load(); }

 private:
  Server(ServerDef def, InProcessRouter* router, std::string address);

  // `client_id` keys fair admission; `token` (null when the request carries
  // no deadline) bounds blocking work inside the handler.
  Result<wire::PayloadRef> Dispatch(const std::string& method,
                                    const wire::PayloadRef& payload,
                                    uint64_t client_id,
                                    CancellationToken* token);

  // Compiles (through the shared session's cache) under graph_mu_ so a
  // concurrent ExtendGraph cannot mutate the graph mid-compile. Execution
  // itself runs without the lock.
  Result<std::shared_ptr<const Executable>> PrepareLocked(
      const std::vector<std::string>& feed_keys,
      const std::vector<std::string>& fetches,
      const std::vector<std::string>& targets);

  ServerDef def_;
  InProcessRouter* router_;
  std::string address_;
  Graph graph_;
  std::unique_ptr<DeviceMgr> devices_;
  ResourceMgr resources_;
  std::unique_ptr<Session> session_;  // shared across steps; owns exe cache
  std::mutex graph_mu_;  // guards ExtendGraph vs step compiles
  bool shutdown_ = false;

  // Registered steps: handle -> compiled signature. A stale executable
  // (graph mutated since compile) is recompiled on next use.
  struct RegisteredStep {
    std::vector<std::string> feeds;  // feed keys the signature expects
    std::vector<std::string> fetches;
    std::vector<std::string> targets;
    std::shared_ptr<const Executable> executable;
  };
  std::mutex steps_mu_;
  std::map<uint64_t, RegisteredStep> registered_steps_;
  uint64_t next_step_handle_ = 1;
  std::atomic<int64_t> steps_registered_{0};
  ReplayCache replay_cache_;
  std::atomic<int64_t> checksum_rejects_{0};
  std::atomic<int64_t> expired_rejects_{0};
  // Non-null iff def_.max_inflight_steps > 0.
  std::unique_ptr<ServingController> serving_;
  // Outgoing rendezvous sends carry this server's own client identity so
  // the receiving task can dedup retried sends.
  uint64_t send_client_id_ = 0;
  std::atomic<uint64_t> next_send_request_id_{1};
};

// ----- payload codecs (exposed for the client and tests) --------------------

struct RunStepRequest {
  std::map<std::string, Tensor> feeds;
  std::vector<std::string> fetches;
  std::vector<std::string> targets;
  bool simulate = false;
  // When non-zero, the worker executes the Executable registered under this
  // handle (fetches/targets above are ignored — they were fixed at
  // RegisterStep time) and only the feed tensors ride the wire.
  uint64_t step_handle = 0;

  std::string Serialize() const;
  static Result<RunStepRequest> Parse(const std::string& payload);
};

std::string EncodeQueuePayload(const std::string& queue, const Tensor* tensor,
                               int64_t capacity);
Status DecodeQueuePayload(const std::string& payload, std::string* queue,
                          Tensor* tensor, int64_t* capacity);

std::string EncodeVarPayload(const std::string& var, const Tensor* tensor,
                             bool accumulate, bool want_value);
Status DecodeVarPayload(const std::string& payload, std::string* var,
                        Tensor* tensor, bool* accumulate, bool* want_value);

// Zero-copy variants: the tensor message is framed last in the payload head
// and its content bytes ride as a buffer view (see wire::SerializeTensorView).
// The decoders accept both representations — a view payload (RDMA/rendezvous
// fast path) or classic inline bytes (gRPC delivery, legacy senders).
wire::PayloadRef EncodeQueuePayloadView(const std::string& queue,
                                        const Tensor* tensor,
                                        int64_t capacity);
Status DecodeQueuePayloadView(const wire::PayloadRef& payload,
                              std::string* queue, Tensor* tensor,
                              int64_t* capacity);

wire::PayloadRef EncodeVarPayloadView(const std::string& var,
                                      const Tensor* tensor, bool accumulate,
                                      bool want_value);
Status DecodeVarPayloadView(const wire::PayloadRef& payload, std::string* var,
                            Tensor* tensor, bool* accumulate,
                            bool* want_value);

std::string EncodeTensorList(const std::vector<Tensor>& tensors);
Result<std::vector<Tensor>> DecodeTensorList(const std::string& payload);

// name -> tensor maps (VarSnapshot/VarRestore payloads).
std::string EncodeNamedTensors(const std::map<std::string, Tensor>& vars);
Result<std::map<std::string, Tensor>> DecodeNamedTensors(
    const std::string& payload);

}  // namespace tfhpc::distrib
