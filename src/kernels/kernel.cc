#include "kernels/kernel.h"

#include <algorithm>

namespace tfhpc {

bool OpKernelContext::meta_exec() const {
  if (simulate_) return true;
  return std::any_of(inputs_.begin(), inputs_.end(),
                     [](const Tensor& t) { return t.is_meta(); });
}

CostEstimate OpKernel::Cost(const OpKernelContext& ctx) const {
  CostEstimate c;
  for (int i = 0; i < ctx.num_inputs(); ++i) {
    c.bytes_read += ctx.input(i).bytes();
  }
  return c;
}

KernelRegistry& KernelRegistry::Global() {
  static KernelRegistry* registry = new KernelRegistry();
  return *registry;
}

Status KernelRegistry::Register(const std::string& op,
                                const std::string& device_type,
                                Factory factory) {
  const std::string key = op + "|" + device_type;
  auto [it, inserted] = factories_.emplace(key, std::move(factory));
  (void)it;
  if (!inserted) return AlreadyExists("kernel already registered: " + key);
  return Status::OK();
}

bool KernelRegistry::HasKernel(const std::string& op,
                               const std::string& device_type) const {
  return factories_.count(op + "|" + device_type) > 0;
}

Result<std::unique_ptr<OpKernel>> KernelRegistry::Create(
    const std::string& op, const std::string& device_type) const {
  auto it = factories_.find(op + "|" + device_type);
  if (it == factories_.end()) {
    return NotFound("no kernel for op '" + op + "' on device type '" +
                    device_type + "'");
  }
  return it->second();
}

namespace internal {
KernelRegistrar::KernelRegistrar(const std::string& op,
                                 const std::string& device_type,
                                 KernelRegistry::Factory factory) {
  const Status s =
      KernelRegistry::Global().Register(op, device_type, std::move(factory));
  TFHPC_CHECK(s.ok()) << s.ToString();
}
}  // namespace internal

}  // namespace tfhpc
