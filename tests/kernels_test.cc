// Unit + property tests for the kernel layer: GEMM, FFT, elementwise and
// reduction numerics, meta execution, cost estimates.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/rng.h"
#include "graph/ops.h"
#include "kernels/fft_impl.h"
#include "kernels/gemm.h"
#include "kernels/kernel.h"
#include "kernels/reduction.h"
#include "runtime/session.h"

namespace tfhpc {
namespace {

// ---- GEMM properties ----------------------------------------------------------

template <typename T>
std::vector<T> NaiveGemm(const std::vector<T>& a, const std::vector<T>& b,
                         int64_t m, int64_t n, int64_t k) {
  std::vector<T> c(static_cast<size_t>(m * n), T{0});
  for (int64_t i = 0; i < m; ++i)
    for (int64_t p = 0; p < k; ++p)
      for (int64_t j = 0; j < n; ++j)
        c[static_cast<size_t>(i * n + j)] +=
            a[static_cast<size_t>(i * k + p)] * b[static_cast<size_t>(p * n + j)];
  return c;
}

class GemmShapeTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeTest, MatchesNaiveF64) {
  const auto [m, n, k] = GetParam();
  std::mt19937_64 rng(m * 1000003 + n * 1009 + k);
  std::uniform_real_distribution<double> dist(-1, 1);
  std::vector<double> a(static_cast<size_t>(m * k)), b(static_cast<size_t>(k * n));
  for (auto& v : a) v = dist(rng);
  for (auto& v : b) v = dist(rng);
  std::vector<double> c(static_cast<size_t>(m * n));
  blas::Gemm(a.data(), b.data(), c.data(), m, n, k);
  auto ref = NaiveGemm(a, b, m, n, k);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-9 * k) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(64, 64, 64), std::make_tuple(65, 63, 130),
                      std::make_tuple(128, 32, 257), std::make_tuple(1, 100, 1),
                      std::make_tuple(200, 1, 50)));

TEST(GemmTest, F32Accumulate) {
  // beta_zero=false must accumulate into existing C.
  std::vector<float> a{1, 2, 3, 4}, b{1, 0, 0, 1};  // 2x2 identity-ish
  std::vector<float> c{10, 10, 10, 10};
  blas::Gemm(a.data(), b.data(), c.data(), 2, 2, 2, /*beta_zero=*/false);
  EXPECT_FLOAT_EQ(c[0], 11);
  EXPECT_FLOAT_EQ(c[1], 12);
  EXPECT_FLOAT_EQ(c[2], 13);
  EXPECT_FLOAT_EQ(c[3], 14);
}

TEST(GemvTest, MatchesManual) {
  // 2x3 matrix times 3-vector.
  std::vector<double> a{1, 2, 3, 4, 5, 6};
  std::vector<double> x{1, 0, -1};
  std::vector<double> y(2);
  blas::Gemv(a.data(), x.data(), y.data(), 2, 3);
  EXPECT_DOUBLE_EQ(y[0], -2);
  EXPECT_DOUBLE_EQ(y[1], -2);
}

TEST(GemvTest, LargeParallelConsistent) {
  const int64_t m = 1000, n = 333;
  std::vector<double> a(static_cast<size_t>(m * n), 0.5);
  std::vector<double> x(static_cast<size_t>(n), 2.0);
  std::vector<double> y(static_cast<size_t>(m));
  blas::Gemv(a.data(), x.data(), y.data(), m, n);
  for (double v : y) EXPECT_NEAR(v, n * 1.0, 1e-9);
}

// ---- packed-GEMM tail shapes -------------------------------------------------
// The register-tiled kernel pads MR/NR strips; every m,n,k combination here
// exercises some mix of full tiles, partial tiles and zero-padded packing.

class GemmTailShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmTailShapeTest, MatchesNaiveF64) {
  const auto [m, n, k] = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(m * 1000003 + n * 1009 + k));
  std::uniform_real_distribution<double> dist(-1, 1);
  std::vector<double> a(static_cast<size_t>(m * k)),
      b(static_cast<size_t>(k * n));
  for (auto& v : a) v = dist(rng);
  for (auto& v : b) v = dist(rng);
  std::vector<double> c(static_cast<size_t>(m * n));
  blas::Gemm(a.data(), b.data(), c.data(), m, n, k);
  const auto ref = NaiveGemm(a, b, m, n, k);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-12 * k) << "at " << i;
  }
}

TEST_P(GemmTailShapeTest, MatchesNaiveF32) {
  const auto [m, n, k] = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(m * 911 + n * 131071 + k));
  std::uniform_real_distribution<float> dist(-1, 1);
  std::vector<float> a(static_cast<size_t>(m * k)),
      b(static_cast<size_t>(k * n));
  for (auto& v : a) v = dist(rng);
  for (auto& v : b) v = dist(rng);
  std::vector<float> c(static_cast<size_t>(m * n));
  blas::Gemm(a.data(), b.data(), c.data(), m, n, k);
  const auto ref = NaiveGemm(a, b, m, n, k);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-5f * static_cast<float>(k)) << "at " << i;
  }
}

TEST_P(GemmTailShapeTest, AccumulatesWhenBetaNonzeroF32) {
  const auto [m, n, k] = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(m + n * 7 + k * 49));
  std::uniform_real_distribution<float> dist(-1, 1);
  std::vector<float> a(static_cast<size_t>(m * k)),
      b(static_cast<size_t>(k * n));
  for (auto& v : a) v = dist(rng);
  for (auto& v : b) v = dist(rng);
  std::vector<float> c(static_cast<size_t>(m * n));
  for (size_t i = 0; i < c.size(); ++i) c[i] = static_cast<float>(i % 7) - 3;
  auto ref = NaiveGemm(a, b, m, n, k);
  for (size_t i = 0; i < ref.size(); ++i) {
    ref[i] += static_cast<float>(i % 7) - 3;
  }
  blas::Gemm(a.data(), b.data(), c.data(), m, n, k, /*beta_zero=*/false);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-5f * static_cast<float>(k)) << "at " << i;
  }
}

TEST_P(GemmTailShapeTest, AccumulatesWhenBetaNonzeroF64) {
  const auto [m, n, k] = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(m * 13 + n + k * 101));
  std::uniform_real_distribution<double> dist(-1, 1);
  std::vector<double> a(static_cast<size_t>(m * k)),
      b(static_cast<size_t>(k * n));
  for (auto& v : a) v = dist(rng);
  for (auto& v : b) v = dist(rng);
  std::vector<double> c(static_cast<size_t>(m * n));
  for (size_t i = 0; i < c.size(); ++i) c[i] = static_cast<double>(i % 5);
  auto ref = NaiveGemm(a, b, m, n, k);
  for (size_t i = 0; i < ref.size(); ++i) ref[i] += static_cast<double>(i % 5);
  blas::Gemm(a.data(), b.data(), c.data(), m, n, k, /*beta_zero=*/false);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-12 * k) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TailShapes, GemmTailShapeTest,
    ::testing::Combine(::testing::Values(1, 3, 7, 63, 65, 129),
                       ::testing::Values(1, 3, 7, 63, 65, 129),
                       ::testing::Values(1, 3, 7, 63, 65, 129)));

class GemvTailShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GemvTailShapeTest, MatchesNaiveBothDtypes) {
  const auto [m, n] = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(m * 65537 + n));
  std::uniform_real_distribution<double> dist(-1, 1);
  std::vector<double> a(static_cast<size_t>(m * n)),
      x(static_cast<size_t>(n));
  for (auto& v : a) v = dist(rng);
  for (auto& v : x) v = dist(rng);
  std::vector<double> y(static_cast<size_t>(m));
  blas::Gemv(a.data(), x.data(), y.data(), m, n);
  std::vector<float> af(a.begin(), a.end()), xf(x.begin(), x.end()),
      yf(static_cast<size_t>(m));
  blas::Gemv(af.data(), xf.data(), yf.data(), m, n);
  for (int64_t r = 0; r < m; ++r) {
    double ref = 0;
    for (int64_t j = 0; j < n; ++j) {
      ref += a[static_cast<size_t>(r * n + j)] * x[static_cast<size_t>(j)];
    }
    EXPECT_NEAR(y[static_cast<size_t>(r)], ref, 1e-12 * n) << "row " << r;
    EXPECT_NEAR(yf[static_cast<size_t>(r)], ref, 1e-5 * n) << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TailShapes, GemvTailShapeTest,
    ::testing::Combine(::testing::Values(1, 3, 7, 63, 65, 129, 1000),
                       ::testing::Values(1, 3, 7, 63, 65, 129, 5000)));

// ---- deterministic parallel reductions ---------------------------------------

TEST(ReductionTest, ParallelSumMatchesChunkCombineBitExact) {
  // The determinism contract: ParallelSum == serial in-order combine of
  // per-chunk ChunkSums, bit for bit, regardless of scheduling.
  const int64_t n = 3 * blas::kReduceChunk + 123;
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> dist(-1, 1);
  std::vector<double> x(static_cast<size_t>(n));
  for (auto& v : x) v = dist(rng);
  double manual = 0;
  for (int64_t lo = 0; lo < n; lo += blas::kReduceChunk) {
    manual += blas::ChunkSum(x.data() + lo, std::min(blas::kReduceChunk, n - lo));
  }
  const double got = blas::ParallelSum(x.data(), n);
  EXPECT_EQ(got, manual);
  EXPECT_EQ(blas::ParallelSum(x.data(), n), got);  // run-to-run stable
}

TEST(ReductionTest, ParallelDotMatchesChunkCombineBitExact) {
  const int64_t n = 2 * blas::kReduceChunk + 77;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<float> dist(-1, 1);
  std::vector<float> x(static_cast<size_t>(n)), y(static_cast<size_t>(n));
  for (auto& v : x) v = dist(rng);
  for (auto& v : y) v = dist(rng);
  double manual = 0;
  for (int64_t lo = 0; lo < n; lo += blas::kReduceChunk) {
    manual += blas::ChunkDot(x.data() + lo, y.data() + lo,
                             std::min(blas::kReduceChunk, n - lo));
  }
  EXPECT_EQ(blas::ParallelDot(x.data(), y.data(), n), manual);
}

TEST(ReductionTest, AccurateVsSerialReference) {
  const int64_t n = blas::kReduceChunk * 5 + 1;
  std::vector<double> x(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    x[static_cast<size_t>(i)] = std::sin(0.001 * static_cast<double>(i));
  }
  long double ref = 0;
  for (double v : x) ref += v;
  EXPECT_NEAR(blas::ParallelSum(x.data(), n), static_cast<double>(ref),
              1e-9 * static_cast<double>(n));
  // f32 inputs accumulate in f64 (the historical kernel contract).
  std::vector<float> xf(x.begin(), x.end());
  long double reff = 0;
  for (float v : xf) reff += static_cast<double>(v);
  EXPECT_NEAR(blas::ParallelSum(xf.data(), n), static_cast<double>(reff),
              1e-6 * static_cast<double>(n));
}

TEST(ReductionTest, EmptyAndSingleChunk) {
  EXPECT_EQ(blas::ParallelSum(static_cast<const double*>(nullptr), 0), 0.0);
  std::vector<double> x{1.5, -2.5, 4.0};
  EXPECT_DOUBLE_EQ(blas::ParallelSum(x.data(), 3), 3.0);
  EXPECT_DOUBLE_EQ(blas::ParallelDot(x.data(), x.data(), 3),
                   1.5 * 1.5 + 2.5 * 2.5 + 16.0);
}

// ---- FFT properties ---------------------------------------------------------------

using Cplx = std::complex<double>;

std::vector<Cplx> RandomSignal(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1, 1);
  std::vector<Cplx> x(n);
  for (auto& v : x) v = {dist(rng), dist(rng)};
  return x;
}

double MaxErr(const std::vector<Cplx>& a, const std::vector<Cplx>& b) {
  double e = 0;
  for (size_t i = 0; i < a.size(); ++i) e = std::max(e, std::abs(a[i] - b[i]));
  return e;
}

class FftSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FftSizeTest, MatchesNaiveDft) {
  const size_t n = GetParam();
  auto x = RandomSignal(n, n);
  EXPECT_LT(MaxErr(fft::Forward(x), fft::NaiveDft(x)), 1e-8 * n);
}

TEST_P(FftSizeTest, InverseRecoversSignal) {
  const size_t n = GetParam();
  auto x = RandomSignal(n, n + 1);
  EXPECT_LT(MaxErr(fft::Inverse(fft::Forward(x)), x), 1e-9 * n);
}

// Mix of powers of two (radix-2 path) and non-powers (Bluestein path).
INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeTest,
                         ::testing::Values(1, 2, 4, 8, 64, 256, 1024, 3, 5, 12,
                                           100, 257, 1000));

TEST(FftTest, ParsevalHolds) {
  const size_t n = 512;
  auto x = RandomSignal(n, 9);
  auto X = fft::Forward(x);
  double ex = 0, eX = 0;
  for (const auto& v : x) ex += std::norm(v);
  for (const auto& v : X) eX += std::norm(v);
  EXPECT_NEAR(eX, ex * n, 1e-6 * ex * n);
}

TEST(FftTest, LinearityHolds) {
  const size_t n = 128;
  auto x = RandomSignal(n, 1), y = RandomSignal(n, 2);
  std::vector<Cplx> sum(n);
  for (size_t i = 0; i < n; ++i) sum[i] = 2.0 * x[i] + 3.0 * y[i];
  auto X = fft::Forward(x), Y = fft::Forward(y), S = fft::Forward(sum);
  std::vector<Cplx> lin(n);
  for (size_t i = 0; i < n; ++i) lin[i] = 2.0 * X[i] + 3.0 * Y[i];
  EXPECT_LT(MaxErr(S, lin), 1e-9 * n);
}

TEST(FftTest, DeltaTransformsToConstant) {
  std::vector<Cplx> x(64, Cplx(0));
  x[0] = 1;
  auto X = fft::Forward(x);
  for (const auto& v : X) EXPECT_NEAR(std::abs(v - Cplx(1, 0)), 0, 1e-12);
}

class CtMergeTest : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(CtMergeTest, MergeOfSubDftsEqualsFullDft) {
  const auto [s, m] = GetParam();
  const size_t n = s * m;
  auto x = RandomSignal(n, 17 * s + m);
  // Split into s interleaved subsequences, DFT each, merge.
  std::vector<std::vector<Cplx>> sub(s);
  for (size_t k = 0; k < s; ++k) {
    std::vector<Cplx> xk(m);
    for (size_t j = 0; j < m; ++j) xk[j] = x[k + j * s];
    sub[k] = fft::Forward(xk);
  }
  auto merged = fft::CooleyTukeyMerge(sub);
  EXPECT_LT(MaxErr(merged, fft::Forward(x)), 1e-8 * n);
}

INSTANTIATE_TEST_SUITE_P(Splits, CtMergeTest,
                         ::testing::Values(std::make_pair<size_t, size_t>(2, 64),
                                           std::make_pair<size_t, size_t>(4, 32),
                                           std::make_pair<size_t, size_t>(8, 16),
                                           std::make_pair<size_t, size_t>(3, 50),
                                           std::make_pair<size_t, size_t>(16, 8)));

TEST(FftTest, IsPowerOfTwo) {
  EXPECT_TRUE(fft::IsPowerOfTwo(1));
  EXPECT_TRUE(fft::IsPowerOfTwo(1024));
  EXPECT_FALSE(fft::IsPowerOfTwo(0));
  EXPECT_FALSE(fft::IsPowerOfTwo(3));
  EXPECT_FALSE(fft::IsPowerOfTwo(-4));
}

// ---- Kernel-level tests through a local session ------------------------------------

class KernelSessionTest : public ::testing::Test {
 protected:
  LocalRuntime rt_{1};
};

TEST_F(KernelSessionTest, AddVectors) {
  Scope s = rt_.root_scope();
  auto a = ops::Const(s, Tensor::FromVector(std::vector<double>{1, 2, 3}));
  auto b = ops::Const(s, Tensor::FromVector(std::vector<double>{10, 20, 30}));
  auto c = ops::Add(s, a, b);
  auto r = rt_.NewSession()->Run({}, {c.name()});
  ASSERT_TRUE(r.ok());
  auto v = (*r)[0].data<double>();
  EXPECT_EQ(v[0], 11);
  EXPECT_EQ(v[1], 22);
  EXPECT_EQ(v[2], 33);
}

TEST_F(KernelSessionTest, ScalarBroadcastInMul) {
  Scope s = rt_.root_scope();
  auto v = ops::Const(s, Tensor::FromVector(std::vector<double>{1, 2, 3}));
  auto k = ops::Const(s, Tensor::Scalar(2.0));
  auto times = ops::Mul(s, k, v);    // scalar * vector
  auto times2 = ops::Mul(s, v, k);   // vector * scalar
  auto r = rt_.NewSession()->Run({}, {times.name(), times2.name()});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].data<double>()[2], 6);
  EXPECT_EQ((*r)[1].data<double>()[2], 6);
}

TEST_F(KernelSessionTest, ShapeMismatchError) {
  Scope s = rt_.root_scope();
  auto a = ops::Const(s, Tensor::FromVector(std::vector<double>{1, 2}));
  auto b = ops::Const(s, Tensor::FromVector(std::vector<double>{1, 2, 3}));
  auto c = ops::Add(s, a, b);
  auto r = rt_.NewSession()->Run({}, {c.name()});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kInvalidArgument);
}

TEST_F(KernelSessionTest, DtypeMismatchError) {
  Scope s = rt_.root_scope();
  auto a = ops::Const(s, Tensor::FromVector(std::vector<double>{1}));
  auto b = ops::Const(s, Tensor::FromVector(std::vector<float>{1}));
  auto c = ops::Add(s, a, b);
  EXPECT_FALSE(rt_.NewSession()->Run({}, {c.name()}).ok());
}

TEST_F(KernelSessionTest, DivideScalars) {
  Scope s = rt_.root_scope();
  auto a = ops::Const(s, Tensor::Scalar(10.0));
  auto b = ops::Const(s, Tensor::Scalar(4.0));
  auto c = ops::Div(s, a, b);
  auto r = rt_.NewSession()->Run({}, {c.name()});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 2.5);
}

TEST_F(KernelSessionTest, DotAndReduceSum) {
  Scope s = rt_.root_scope();
  auto a = ops::Const(s, Tensor::FromVector(std::vector<double>{1, 2, 3}));
  auto b = ops::Const(s, Tensor::FromVector(std::vector<double>{4, 5, 6}));
  auto d = ops::Dot(s, a, b);
  auto sum = ops::ReduceSum(s, a);
  auto r = rt_.NewSession()->Run({}, {d.name(), sum.name()});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 32);
  EXPECT_DOUBLE_EQ((*r)[1].scalar<double>(), 6);
}

TEST_F(KernelSessionTest, SqrtAndAxpy) {
  Scope s = rt_.root_scope();
  auto x = ops::Const(s, Tensor::FromVector(std::vector<double>{1, 2}));
  auto y = ops::Const(s, Tensor::FromVector(std::vector<double>{10, 20}));
  auto alpha = ops::Const(s, Tensor::Scalar(3.0));
  auto axpy = ops::Axpy(s, alpha, x, y);
  auto root = ops::Sqrt(s, ops::Const(s, Tensor::Scalar(16.0)));
  auto r = rt_.NewSession()->Run({}, {axpy.name(), root.name()});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*r)[0].data<double>()[0], 13);
  EXPECT_DOUBLE_EQ((*r)[0].data<double>()[1], 26);
  EXPECT_DOUBLE_EQ((*r)[1].scalar<double>(), 4);
}

TEST_F(KernelSessionTest, MatMulThroughSession) {
  Scope s = rt_.root_scope();
  auto a = ops::Const(
      s, Tensor::FromVector(Shape{2, 2}, std::vector<float>{1, 2, 3, 4}));
  auto b = ops::Const(
      s, Tensor::FromVector(Shape{2, 2}, std::vector<float>{5, 6, 7, 8}));
  auto c = ops::MatMul(s, a, b);
  auto r = rt_.NewSession()->Run({}, {c.name()});
  ASSERT_TRUE(r.ok());
  EXPECT_FLOAT_EQ(((*r)[0].at<float>(0, 0)), 19);
  EXPECT_FLOAT_EQ(((*r)[0].at<float>(1, 1)), 50);
}

TEST_F(KernelSessionTest, MatMulInnerDimMismatch) {
  Scope s = rt_.root_scope();
  auto a = ops::Const(s, Tensor(DType::kF32, Shape{2, 3}));
  auto b = ops::Const(s, Tensor(DType::kF32, Shape{2, 3}));
  auto c = ops::MatMul(s, a, b);
  EXPECT_FALSE(rt_.NewSession()->Run({}, {c.name()}).ok());
}

TEST_F(KernelSessionTest, MatVec) {
  Scope s = rt_.root_scope();
  auto m = ops::Const(
      s, Tensor::FromVector(Shape{2, 3}, std::vector<double>{1, 2, 3, 4, 5, 6}));
  auto v = ops::Const(s, Tensor::FromVector(std::vector<double>{1, 1, 1}));
  auto y = ops::MatVec(s, m, v);
  auto r = rt_.NewSession()->Run({}, {y.name()});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*r)[0].data<double>()[0], 6);
  EXPECT_DOUBLE_EQ((*r)[0].data<double>()[1], 15);
}

TEST_F(KernelSessionTest, FftKernelMatchesImpl) {
  Scope s = rt_.root_scope();
  Tensor sig(DType::kC128, Shape{16});
  FillUniform(sig, 21, -1, 1);
  auto x = ops::Const(s, sig);
  auto y = ops::Fft(s, x);
  auto inv = ops::Fft(s, y, /*inverse=*/true);
  auto r = rt_.NewSession()->Run({}, {y.name(), inv.name()});
  ASSERT_TRUE(r.ok());
  const auto src = sig.data<Cplx>();
  auto ref = fft::Forward(std::vector<Cplx>(src.begin(), src.end()));
  const auto got = (*r)[0].data<Cplx>();
  for (size_t i = 0; i < 16; ++i) EXPECT_LT(std::abs(got[i] - ref[i]), 1e-10);
  const auto back = (*r)[1].data<Cplx>();
  for (size_t i = 0; i < 16; ++i) EXPECT_LT(std::abs(back[i] - src[i]), 1e-12);
}

TEST_F(KernelSessionTest, RandomUniformDeterministicPerSeed) {
  Scope s = rt_.root_scope();
  auto a = ops::RandomUniform(s, Shape{100}, DType::kF32, 42);
  auto b = ops::RandomUniform(s, Shape{100}, DType::kF32, 42);
  auto c = ops::RandomUniform(s, Shape{100}, DType::kF32, 43);
  auto r = rt_.NewSession()->Run({}, {a.name(), b.name(), c.name()});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)[0].BitwiseEquals((*r)[1]));
  EXPECT_FALSE((*r)[0].BitwiseEquals((*r)[2]));
}

// ---- Meta execution (simulation mode) -----------------------------------------------

TEST_F(KernelSessionTest, SimulateProducesMetaWithRealShapes) {
  Scope s = rt_.root_scope();
  auto a = ops::RandomUniform(s, Shape{512, 256}, DType::kF32, 1);
  auto b = ops::RandomUniform(s, Shape{256, 128}, DType::kF32, 2);
  auto c = ops::MatMul(s, a, b);
  RunOptions opts;
  opts.simulate = true;
  auto r = rt_.NewSession()->Run({}, {c.name()}, {}, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)[0].is_meta());
  EXPECT_EQ((*r)[0].shape(), Shape({512, 128}));
}

TEST_F(KernelSessionTest, SimulateStillValidatesShapes) {
  Scope s = rt_.root_scope();
  auto a = ops::RandomUniform(s, Shape{4, 5}, DType::kF32, 1);
  auto b = ops::RandomUniform(s, Shape{4, 5}, DType::kF32, 2);
  auto c = ops::MatMul(s, a, b);
  RunOptions opts;
  opts.simulate = true;
  EXPECT_FALSE(rt_.NewSession()->Run({}, {c.name()}, {}, opts).ok());
}

TEST_F(KernelSessionTest, SimulateHugeProblemNoAllocation) {
  // 65536^2 f32 = 16 GB per tensor: must succeed without touching memory.
  Scope s = rt_.root_scope();
  const int64_t n = 65536;
  auto a = ops::RandomUniform(s, Shape{n, n}, DType::kF32, 1);
  auto b = ops::RandomUniform(s, Shape{n, n}, DType::kF32, 2);
  auto c = ops::MatMul(s, a, b);
  RunOptions opts;
  opts.simulate = true;
  RunMetadata meta;
  opts.trace = true;
  auto r = rt_.NewSession()->Run({}, {c.name()}, {}, opts, &meta);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].bytes(), n * n * 4);
  // The matmul record must carry the nominal 2N^3 flops.
  bool found = false;
  for (const auto& rec : meta.nodes) {
    if (rec.op == "MatMul") {
      found = true;
      EXPECT_NEAR(rec.cost.flops, 2.0 * std::pow(static_cast<double>(n), 3),
                  1e15);
    }
  }
  EXPECT_TRUE(found);
}

// ---- Cost estimates -------------------------------------------------------------------

TEST(KernelCostTest, MatMulFlops) {
  Graph g;
  Scope s(&g);
  auto a = ops::Const(s, Tensor::Meta(DType::kF32, Shape{10, 20}), "a");
  auto b = ops::Const(s, Tensor::Meta(DType::kF32, Shape{20, 30}), "b");
  auto c = ops::MatMul(s, a, b);
  ResourceMgr rm;
  std::vector<Tensor> inputs = {Tensor::Meta(DType::kF32, Shape{10, 20}),
                                Tensor::Meta(DType::kF32, Shape{20, 30})};
  OpKernelContext ctx(c.node, inputs, &rm, true);
  auto kernel = KernelRegistry::Global().Create("MatMul", "cpu");
  ASSERT_TRUE(kernel.ok());
  auto cost = (*kernel)->Cost(ctx);
  EXPECT_DOUBLE_EQ(cost.flops, 2.0 * 10 * 20 * 30);
  EXPECT_EQ(cost.bytes_written, 10 * 30 * 4);
  EXPECT_EQ(cost.bytes_read, (10 * 20 + 20 * 30) * 4);
}

TEST(KernelRegistryTest, LookupSemantics) {
  auto& reg = KernelRegistry::Global();
  EXPECT_TRUE(reg.HasKernel("MatMul", "cpu"));
  EXPECT_TRUE(reg.HasKernel("MatMul", "gpu"));
  EXPECT_FALSE(reg.HasKernel("MatMul", "tpu"));
  EXPECT_FALSE(reg.HasKernel("NotAnOp", "cpu"));
  EXPECT_EQ(reg.Create("NotAnOp", "cpu").status().code(), Code::kNotFound);
}

}  // namespace
}  // namespace tfhpc
