file(REMOVE_RECURSE
  "CMakeFiles/ablation_stepoverhead.dir/ablation_stepoverhead.cc.o"
  "CMakeFiles/ablation_stepoverhead.dir/ablation_stepoverhead.cc.o.d"
  "ablation_stepoverhead"
  "ablation_stepoverhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stepoverhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
