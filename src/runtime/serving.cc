#include "runtime/serving.h"

#include <utility>

namespace tfhpc {

ServingController::ServingController(ServingOptions options)
    : options_(std::move(options)) {}

Status ServingController::Admit(const std::string& client_id,
                                CancellationToken* token,
                                int64_t estimated_bytes) {
  // Registered before mu_ so the callback (which takes mu_) cannot deadlock
  // against this frame, and deregistered after the wait completes.
  CancelCallback wake(token, [this] {
    MutexLock lk(mu_);
    cv_.notify_all();
  });

  MutexLock lk(mu_);
  if (token != nullptr) {
    Status ts = token->Check();
    if (!ts.ok()) return ts;  // dead on arrival: refuse before queueing
  }

  // A step that cannot fit the byte budget even on an idle server will
  // never be admittable: permanent kResourceExhausted (no [transient] tag),
  // so clients don't waste retries on it.
  if (options_.max_estimated_bytes > 0 &&
      estimated_bytes > options_.max_estimated_bytes) {
    ++stats_.rejected_oversize;
    return ResourceExhausted(
        "step estimated bytes " + std::to_string(estimated_bytes) +
        " exceed the serving memory budget " +
        std::to_string(options_.max_estimated_bytes));
  }

  // Fast path — but only when nobody is queued: arrivals must not barge
  // past tickets already waiting their fair turn.
  if (inflight_ < options_.max_inflight && queued_ == 0 &&
      BytesFitLocked(estimated_bytes)) {
    ++inflight_;
    inflight_bytes_ += estimated_bytes;
    ++stats_.admitted;
    return Status::OK();
  }

  if (queued_ >= options_.max_queued) {
    ++stats_.shed;
    return Unavailable("admission queue full (" +
                       std::to_string(options_.max_queued) +
                       " waiting); retry_after_ms=" +
                       std::to_string(options_.retry_after_ms));
  }

  Ticket ticket;
  ticket.bytes = estimated_bytes;
  queues_[client_id].push_back(&ticket);
  ++queued_;
  GrantNextLocked();  // a slot may be free right now (we just joined the line)
  cv_.notify_all();   // the grant may have landed on another waiter's ticket

  auto done = [&] {
    if (ticket.granted) return true;
    return token != nullptr && !token->Check().ok();
  };
  if (token != nullptr && token->has_deadline()) {
    cv_.wait_until(lk, token->deadline(), done);
  } else {
    cv_.wait(lk, done);
  }

  if (!ticket.granted) {
    // Cancelled or deadlined while queued: withdraw the ticket.
    RemoveTicketLocked(client_id, &ticket);
    --queued_;
    ++stats_.expired_in_queue;
    if (token != nullptr) {
      Status ts = token->Check();
      if (!ts.ok()) return ts;
    }
    return DeadlineExceeded("step deadline exceeded while queued for admission");
  }
  // Granted. If the token died in the same instant, give the slot back.
  if (token != nullptr) {
    Status ts = token->Check();
    if (!ts.ok()) {
      --inflight_;
      inflight_bytes_ -= ticket.bytes;
      ++stats_.expired_in_queue;
      GrantNextLocked();
      cv_.notify_all();
      return ts;
    }
  }
  ++stats_.admitted;
  return Status::OK();
}

void ServingController::Release(int64_t estimated_bytes) {
  MutexLock lk(mu_);
  --inflight_;
  inflight_bytes_ -= estimated_bytes;
  ++stats_.completed;
  GrantNextLocked();
  cv_.notify_all();
}

void ServingController::GrantNextLocked() {
  while (inflight_ < options_.max_inflight && queued_ > 0) {
    // Round-robin: the first non-empty client queue strictly after the
    // cursor, wrapping. Ties resolve in client-id order — deterministic and
    // starvation-free (every non-empty queue is visited once per lap).
    auto it = queues_.upper_bound(rr_cursor_);
    for (size_t lap = 0; lap <= queues_.size(); ++lap) {
      if (it == queues_.end()) it = queues_.begin();
      if (!it->second.empty()) break;
      ++it;
    }
    if (it == queues_.end() || it->second.empty()) return;  // defensive
    Ticket* t = it->second.front();
    // Byte budget headroom gates the grant. When the fair-order pick does
    // not fit, stop granting entirely (no barging by smaller later steps):
    // inflight steps completing will free bytes and re-run this loop, so
    // the large step is delayed, never starved.
    if (!BytesFitLocked(t->bytes)) return;
    it->second.pop_front();
    rr_cursor_ = it->first;
    if (it->second.empty()) queues_.erase(it);
    t->granted = true;
    ++inflight_;
    inflight_bytes_ += t->bytes;
    --queued_;
  }
}

void ServingController::RemoveTicketLocked(const std::string& client_id,
                                           Ticket* t) {
  auto it = queues_.find(client_id);
  if (it == queues_.end()) return;
  auto& dq = it->second;
  for (auto pos = dq.begin(); pos != dq.end(); ++pos) {
    if (*pos == t) {
      dq.erase(pos);
      break;
    }
  }
  if (dq.empty()) queues_.erase(it);
}

ServingStats ServingController::stats() const {
  MutexLock lk(mu_);
  ServingStats s = stats_;
  s.inflight = inflight_;
  s.queued = queued_;
  s.inflight_bytes = inflight_bytes_;
  return s;
}

}  // namespace tfhpc
