// STREAM probe: runs the real distributed STREAM application (ps + worker
// servers, assign_add pushes, verified accumulation) over all three wire
// protocols, then prints the Fig. 7-style virtual-time bandwidth estimate
// for a chosen platform model.
//
//   ./stream_probe [elements] [rounds]
#include <cstdio>
#include <cstdlib>

#include "apps/stream.h"

using namespace tfhpc;

int main(int argc, char** argv) {
  const int64_t elements = argc > 1 ? std::atoll(argv[1]) : (1 << 18);
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 20;

  std::printf("functional STREAM: %lld f32 elements x %d rounds\n",
              static_cast<long long>(elements), rounds);
  for (auto proto : {distrib::WireProtocol::kGrpc, distrib::WireProtocol::kMpi,
                     distrib::WireProtocol::kRdma}) {
    auto r = apps::RunStreamFunctional(elements, rounds, proto);
    if (!r.ok()) {
      std::fprintf(stderr, "  %-5s FAILED: %s\n",
                   distrib::WireProtocolName(proto),
                   r.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-5s verified; local wall-clock throughput %8.0f MB/s\n",
                distrib::WireProtocolName(proto), r->mbps);
  }

  std::printf("\nvirtual-time estimate on the Tegner model (128 MB messages, "
              "GPU-resident):\n");
  for (auto proto :
       {sim::Protocol::kGrpc, sim::Protocol::kMpi, sim::Protocol::kRdma}) {
    apps::StreamOptions opts;
    opts.message_bytes = 128 << 20;
    opts.rounds = 100;
    auto r = apps::SimulateStream(sim::TegnerConfig(sim::GpuKind::kK420),
                                  proto, opts);
    if (!r.ok()) return 1;
    std::printf("  %-5s %8.0f MB/s\n", sim::ProtocolName(proto), r->mbps);
  }
  return 0;
}
