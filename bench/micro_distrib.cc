// Microbenchmarks of the distributed layer: remote step dispatch, variable
// pushes (the STREAM primitive), queue RPCs, barrier rounds, ring
// allreduce, and distributed-session steps — the real-framework overheads
// the machine model's step_overhead_s abstracts.
#include <benchmark/benchmark.h>

#include <thread>

#include "apps/allreduce.h"
#include "distrib/barrier.h"
#include "distrib/dist_session.h"
#include "distrib/server.h"
#include "graph/ops.h"

namespace tfhpc::distrib {
namespace {

struct MiniCluster {
  MiniCluster() {
    wire::ClusterDef def;
    wire::JobDef workers;
    workers.name = "worker";
    workers.task_addrs = {"mb-w0:1", "mb-w1:1"};
    def.jobs = {workers};
    spec = std::make_unique<ClusterSpec>(ClusterSpec::Create(def).value());
    w0 = Server::Create({*spec, "worker", 0, 1}, &router).value();
    w1 = Server::Create({*spec, "worker", 1, 1}, &router).value();
  }
  InProcessRouter router;
  std::unique_ptr<ClusterSpec> spec;
  std::unique_ptr<Server> w0, w1;
};

void BM_RemoteVarAssignAdd(benchmark::State& state) {
  MiniCluster c;
  RemoteTask w1(&c.router, "mb-w1:1",
                static_cast<WireProtocol>(state.range(1)));
  Tensor update(DType::kF32, Shape{state.range(0)});
  for (auto _ : state) {
    auto s = w1.VarAssignAdd("bench", update);
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetBytesProcessed(state.iterations() * update.bytes());
  state.SetLabel(WireProtocolName(static_cast<WireProtocol>(state.range(1))));
}
BENCHMARK(BM_RemoteVarAssignAdd)
    ->Args({1 << 10, 0})
    ->Args({1 << 10, 2})
    ->Args({1 << 18, 0})
    ->Args({1 << 18, 2});

void BM_RemoteRunStep(benchmark::State& state) {
  MiniCluster c;
  Scope s(&c.w0->graph());
  auto x = ops::Placeholder(s, DType::kF64, Shape{}, "x");
  auto y = ops::Mul(s, x, ops::Const(s, Tensor::Scalar(2.0)));
  RemoteTask w0(&c.router, "mb-w0:1", WireProtocol::kRdma);
  for (auto _ : state) {
    auto r = w0.RunStep({{"x", Tensor::Scalar(1.0)}}, {y.name()});
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_RemoteRunStep);

void BM_RemoteQueuePingPong(benchmark::State& state) {
  MiniCluster c;
  RemoteTask w1(&c.router, "mb-w1:1", WireProtocol::kRdma);
  Tensor t = Tensor::Scalar(1.0);
  for (auto _ : state) {
    (void)w1.Enqueue("pp", t);
    auto r = w1.Dequeue("pp");
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_RemoteQueuePingPong);

void BM_RendezvousSendRecv(benchmark::State& state) {
  MiniCluster c;
  RemoteTask w1(&c.router, "mb-w1:1", WireProtocol::kRdma);
  Tensor t(DType::kF64, Shape{1 << 12});
  int64_t k = 0;
  for (auto _ : state) {
    const std::string key = "b" + std::to_string(k++);
    (void)w1.RendezvousSend(key, t);
    auto r = c.w1->resources().rendezvous().Recv(key);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetBytesProcessed(state.iterations() * t.bytes());
}
BENCHMARK(BM_RendezvousSendRecv);

void BM_BarrierRound(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  MiniCluster c;
  const int rounds = static_cast<int>(state.max_iterations);
  std::thread coordinator([&] {
    (void)QueueBarrier::RunCoordinator(&c.router, "mb-w0:1",
                                       WireProtocol::kRdma, "b", workers,
                                       rounds);
  });
  std::vector<std::thread> others;
  for (int w = 1; w < workers; ++w) {
    others.emplace_back([&, w] {
      QueueBarrier barrier(&c.router, "mb-w0:1", WireProtocol::kRdma, "b",
                           workers);
      for (int r = 0; r < rounds; ++r) {
        if (!barrier.Arrive(w).ok()) return;
      }
    });
  }
  QueueBarrier barrier(&c.router, "mb-w0:1", WireProtocol::kRdma, "b",
                       workers);
  int done = 0;
  for (auto _ : state) {
    auto r = barrier.Arrive(0);
    benchmark::DoNotOptimize(r.ok());
    ++done;
  }
  // Drain remaining coordinator rounds so threads join.
  for (int r = done; r < rounds; ++r) (void)barrier.Arrive(0);
  coordinator.join();
  for (auto& t : others) t.join();
}
BENCHMARK(BM_BarrierRound)->Arg(2)->Arg(4)->Iterations(500);

void BM_RingAllreduce(benchmark::State& state) {
  const int64_t elements = state.range(0);
  for (auto _ : state) {
    auto r = apps::RunRingAllreduceFunctional(4, elements, 1,
                                              WireProtocol::kRdma);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetBytesProcessed(state.iterations() * elements * 8);
}
BENCHMARK(BM_RingAllreduce)->Arg(1 << 10)->Arg(1 << 16);

void BM_DistributedSessionStep(benchmark::State& state) {
  MiniCluster c;
  Graph g;
  Scope s(&g);
  auto t0 = s.WithDevice("/job:worker/task:0/cpu:0");
  auto t1 = s.WithDevice("/job:worker/task:1/cpu:0");
  auto x = ops::Placeholder(t0, DType::kF64, Shape{}, "x");
  auto y = ops::Mul(t1, x, ops::Const(t1, Tensor::Scalar(3.0)));
  DeviceName dev;
  dev.job = "worker";
  dev.task = 0;
  auto session = DistributedSession::Create(&c.router, *c.spec,
                                            WireProtocol::kRdma,
                                            g.ToGraphDef(), dev)
                     .value();
  for (auto _ : state) {
    auto r = session->Run({{"x", Tensor::Scalar(2.0)}}, {y.name()});
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_DistributedSessionStep);

}  // namespace
}  // namespace tfhpc::distrib
