#include "io/tile_store.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/npy.h"

namespace tfhpc::io {
namespace {

constexpr char kManifestName[] = "manifest.txt";

Status WriteManifest(const std::string& dir, const TileStoreManifest& m) {
  std::ofstream f(dir + "/" + kManifestName, std::ios::trunc);
  if (!f) return Unavailable("cannot write manifest in " + dir);
  f << "rows " << m.rows << "\ncols " << m.cols << "\ntile_rows " << m.tile_rows
    << "\ntile_cols " << m.tile_cols << "\ndtype " << DTypeName(m.dtype)
    << "\n";
  return Status::OK();
}

Result<TileStoreManifest> ReadManifest(const std::string& dir) {
  std::ifstream f(dir + "/" + kManifestName);
  if (!f) return NotFound("no manifest in " + dir);
  TileStoreManifest m;
  std::string key, value;
  while (f >> key >> value) {
    if (key == "rows") m.rows = std::stoll(value);
    else if (key == "cols") m.cols = std::stoll(value);
    else if (key == "tile_rows") m.tile_rows = std::stoll(value);
    else if (key == "tile_cols") m.tile_cols = std::stoll(value);
    else if (key == "dtype") m.dtype = DTypeFromName(value);
  }
  if (m.rows <= 0 || m.cols <= 0 || m.tile_rows <= 0 || m.tile_cols <= 0 ||
      m.dtype == DType::kInvalid) {
    return InvalidArgument("corrupt manifest in " + dir);
  }
  return m;
}

template <typename T>
void CopyBlock(const Tensor& src, Tensor& dst, int64_t src_r0, int64_t src_c0,
               int64_t dst_r0, int64_t dst_c0, int64_t nrows, int64_t ncols) {
  const int64_t sw = src.shape().dim(1);
  const int64_t dw = dst.shape().dim(1);
  const T* s = src.data<T>().data();
  T* d = dst.mutable_data<T>();
  for (int64_t r = 0; r < nrows; ++r) {
    std::memcpy(d + (dst_r0 + r) * dw + dst_c0,
                s + (src_r0 + r) * sw + src_c0,
                static_cast<size_t>(ncols) * sizeof(T));
  }
}

void CopyBlockDyn(const Tensor& src, Tensor& dst, int64_t src_r0, int64_t src_c0,
                  int64_t dst_r0, int64_t dst_c0, int64_t nrows, int64_t ncols) {
  switch (src.dtype()) {
    case DType::kF32:
      CopyBlock<float>(src, dst, src_r0, src_c0, dst_r0, dst_c0, nrows, ncols);
      break;
    case DType::kF64:
      CopyBlock<double>(src, dst, src_r0, src_c0, dst_r0, dst_c0, nrows, ncols);
      break;
    case DType::kC128:
      CopyBlock<std::complex<double>>(src, dst, src_r0, src_c0, dst_r0, dst_c0,
                                      nrows, ncols);
      break;
    default:
      TFHPC_CHECK(false) << "TileStore: unsupported dtype";
  }
}

}  // namespace

Result<TileStore> TileStore::Create(const std::string& dir,
                                    const Tensor& matrix, int64_t tile_rows,
                                    int64_t tile_cols) {
  if (!matrix.shape().IsMatrix()) {
    return InvalidArgument("TileStore::Create needs a rank-2 tensor, got " +
                           matrix.shape().ToString());
  }
  if (tile_rows <= 0 || tile_cols <= 0) {
    return InvalidArgument("TileStore::Create: non-positive tile size");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Unavailable("cannot create dir " + dir + ": " + ec.message());

  TileStoreManifest m;
  m.rows = matrix.shape().dim(0);
  m.cols = matrix.shape().dim(1);
  m.tile_rows = tile_rows;
  m.tile_cols = tile_cols;
  m.dtype = matrix.dtype();
  TileStore store(dir, m);

  for (int64_t tr = 0; tr < m.grid_rows(); ++tr) {
    for (int64_t tc = 0; tc < m.grid_cols(); ++tc) {
      const int64_t r0 = tr * tile_rows;
      const int64_t c0 = tc * tile_cols;
      const int64_t nr = std::min(tile_rows, m.rows - r0);
      const int64_t nc = std::min(tile_cols, m.cols - c0);
      Tensor tile(matrix.dtype(), Shape{nr, nc});
      CopyBlockDyn(matrix, tile, r0, c0, 0, 0, nr, nc);
      TFHPC_RETURN_IF_ERROR(SaveNpy(store.TilePath(tr, tc), tile));
    }
  }
  TFHPC_RETURN_IF_ERROR(WriteManifest(dir, m));
  return store;
}

Result<TileStore> TileStore::Open(const std::string& dir) {
  TFHPC_ASSIGN_OR_RETURN(TileStoreManifest m, ReadManifest(dir));
  return TileStore(dir, m);
}

std::string TileStore::TilePath(int64_t tr, int64_t tc) const {
  std::ostringstream os;
  os << dir_ << "/tile_" << tr << "_" << tc << ".npy";
  return os.str();
}

Result<Tensor> TileStore::LoadTile(int64_t tr, int64_t tc) const {
  if (tr < 0 || tr >= manifest_.grid_rows() || tc < 0 ||
      tc >= manifest_.grid_cols()) {
    return OutOfRange("tile index (" + std::to_string(tr) + "," +
                      std::to_string(tc) + ") outside grid");
  }
  return LoadNpy(TilePath(tr, tc));
}

Status TileStore::StoreTile(int64_t tr, int64_t tc, const Tensor& t) const {
  return SaveNpy(TilePath(tr, tc), t);
}

Result<Tensor> TileStore::Assemble() const {
  Tensor out(manifest_.dtype, Shape{manifest_.rows, manifest_.cols});
  for (int64_t tr = 0; tr < manifest_.grid_rows(); ++tr) {
    for (int64_t tc = 0; tc < manifest_.grid_cols(); ++tc) {
      TFHPC_ASSIGN_OR_RETURN(Tensor tile, LoadTile(tr, tc));
      CopyBlockDyn(tile, out, 0, 0, tr * manifest_.tile_rows,
                   tc * manifest_.tile_cols, tile.shape().dim(0),
                   tile.shape().dim(1));
    }
  }
  return out;
}

std::vector<Tensor> InterleaveSplit(const Tensor& signal, int64_t num_tiles) {
  TFHPC_CHECK(signal.shape().IsVector());
  TFHPC_CHECK_EQ(signal.dtype(), DType::kC128);
  const int64_t n = signal.num_elements();
  TFHPC_CHECK_EQ(n % num_tiles, 0)
      << "signal length " << n << " not divisible by " << num_tiles;
  const int64_t m = n / num_tiles;
  const auto src = signal.data<std::complex<double>>();
  std::vector<Tensor> tiles;
  tiles.reserve(static_cast<size_t>(num_tiles));
  for (int64_t k = 0; k < num_tiles; ++k) {
    Tensor t(DType::kC128, Shape{m});
    auto* d = t.mutable_data<std::complex<double>>();
    for (int64_t i = 0; i < m; ++i) {
      d[i] = src[static_cast<size_t>(k + i * num_tiles)];
    }
    tiles.push_back(std::move(t));
  }
  return tiles;
}

Result<Tensor> InterleaveMerge(const std::vector<Tensor>& tiles) {
  if (tiles.empty()) return InvalidArgument("InterleaveMerge: no tiles");
  const int64_t num_tiles = static_cast<int64_t>(tiles.size());
  const int64_t m = tiles[0].num_elements();
  for (const auto& t : tiles) {
    if (t.dtype() != DType::kC128 || t.num_elements() != m) {
      return InvalidArgument("InterleaveMerge: inconsistent tiles");
    }
  }
  Tensor out(DType::kC128, Shape{m * num_tiles});
  auto* d = out.mutable_data<std::complex<double>>();
  for (int64_t k = 0; k < num_tiles; ++k) {
    const auto src = tiles[static_cast<size_t>(k)].data<std::complex<double>>();
    for (int64_t i = 0; i < m; ++i) {
      d[k + i * num_tiles] = src[static_cast<size_t>(i)];
    }
  }
  return out;
}

}  // namespace tfhpc::io
