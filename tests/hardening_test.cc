// Hardening tests: adversarial bytes against every wire-format parser (the
// surface remote peers control), executor stress under wide fan-out and
// deep chains, and concurrent-session pressure on shared resources.
#include <gtest/gtest.h>

#include <fstream>
#include <random>
#include <set>
#include <thread>

#include "distrib/server.h"
#include "graph/ops.h"
#include "io/checkpoint.h"
#include "runtime/session.h"
#include "wire/messages.h"

namespace tfhpc {
namespace {

// ---- Parser fuzz: random bytes must error, never crash or hang ------------------

std::string RandomBytes(std::mt19937_64& rng, size_t max_len) {
  std::uniform_int_distribution<size_t> len(0, max_len);
  std::uniform_int_distribution<int> byte(0, 255);
  std::string s(len(rng), '\0');
  for (char& c : s) c = static_cast<char>(byte(rng));
  return s;
}

class WireFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(WireFuzzTest, AllParsersSurviveGarbage) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 2654435761u);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string bytes = RandomBytes(rng, 256);
    (void)wire::ParseTensor(bytes);
    (void)wire::GraphDef::Parse(bytes);
    (void)wire::ClusterDef::Parse(bytes);
    (void)wire::RpcEnvelope::Parse(bytes);
    (void)wire::AttrValue::Parse(bytes.data(), bytes.size());
    (void)wire::NodeDef::Parse(bytes.data(), bytes.size());
  }
  SUCCEED();
}

TEST_P(WireFuzzTest, TruncationsOfValidMessagesSurvive) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 40503 + 1);
  // Build a realistic GraphDef and attack every prefix/mutation of it.
  Graph g;
  Scope s(&g);
  auto a = ops::RandomUniform(s, Shape{4, 4}, DType::kF32, 7);
  auto b = ops::MatMul(s, a, a);
  (void)b;
  const std::string good = g.ToGraphDef().Serialize();
  for (size_t len = 0; len < good.size(); len += 3) {
    (void)wire::GraphDef::Parse(good.substr(0, len));
  }
  std::uniform_int_distribution<size_t> pos(0, good.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int trial = 0; trial < 300; ++trial) {
    std::string bad = good;
    bad[pos(rng)] = static_cast<char>(byte(rng));
    auto r = wire::GraphDef::Parse(bad);
    if (r.ok()) {
      // A parse that survives must still produce a structurally valid graph
      // or be rejected when rebuilt.
      (void)Graph::FromGraphDef(*r);
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest, ::testing::Range(1, 5));

TEST(CheckpointFuzzTest, CorruptedCheckpointsRejectedCleanly) {
  const std::string path = "/tmp/tfhpc_fuzz_ckpt";
  std::map<std::string, Tensor> vars{{"w", Tensor(DType::kF64, Shape{16})}};
  ASSERT_TRUE(io::SaveCheckpoint(path, vars).ok());
  std::ifstream f(path, std::ios::binary);
  std::string good((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<size_t> pos(0, good.size() - 1);
  for (int trial = 0; trial < 200; ++trial) {
    std::string bad = good;
    bad[pos(rng)] ^= 0x40;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    out.close();
    (void)io::LoadCheckpoint(path);  // error or value; never crash
  }
  std::remove(path.c_str());
  SUCCEED();
}

// ---- Executor stress ---------------------------------------------------------------

TEST(ExecutorStressTest, WideFanOutAcrossManyDevices) {
  // 64 independent matmuls spread over 8 simulated GPUs in one step.
  LocalRuntime rt(8);
  Scope s = rt.root_scope();
  std::vector<std::string> fetches;
  for (int i = 0; i < 64; ++i) {
    auto dev = s.WithDevice("/gpu:" + std::to_string(i % 8));
    auto a = ops::RandomUniform(dev, Shape{16, 16}, DType::kF32,
                                static_cast<int64_t>(i));
    auto c = ops::MatMul(dev, a, a);
    fetches.push_back(c.name());
  }
  auto r = rt.NewSession()->Run({}, fetches);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 64u);
  for (const auto& t : *r) EXPECT_EQ(t.shape(), Shape({16, 16}));
}

TEST(ExecutorStressTest, DeepSerialChain) {
  // A 500-deep dependency chain must execute in order without stack or
  // scheduling pathologies.
  LocalRuntime rt(1);
  Scope s = rt.root_scope();
  Output v = ops::Const(s, Tensor::Scalar(1.0));
  auto half = ops::Const(s, Tensor::Scalar(0.5));
  for (int i = 0; i < 500; ++i) v = ops::Mul(s, v, half);
  auto r = rt.NewSession()->Run({}, {v.name()});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR((*r)[0].scalar<double>(), std::pow(0.5, 500), 1e-300);
}

TEST(ExecutorStressTest, ConcurrentSessionsShareVariablesSafely) {
  // Many threads hammer AssignAdd on one variable through separate
  // sessions; the final count must be exact (Variable locking).
  LocalRuntime rt(1);
  Scope s = rt.root_scope();
  auto v = ops::Variable(s, "counter", DType::kF64, Shape{});
  auto init = ops::Assign(s, v, ops::Const(s, Tensor::Scalar(0.0)));
  auto bump = ops::AssignAdd(s, v, ops::Const(s, Tensor::Scalar(1.0)));
  ASSERT_TRUE(rt.NewSession()->Run({}, {init.name()}).ok());

  constexpr int kThreads = 4;
  constexpr int kStepsEach = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto session = rt.NewSession();
      for (int i = 0; i < kStepsEach; ++i) {
        if (!session->Run({}, {}, {bump.node->name()}).ok()) failures++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  auto r = rt.NewSession()->Run({}, {v.name()});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), kThreads * kStepsEach);
}

TEST(ExecutorStressTest, ManyProducersOneQueue) {
  // 32 enqueues and 32 dequeues race within one step; the multiset of
  // dequeued values must equal the enqueued one.
  LocalRuntime rt(1);
  Scope s = rt.root_scope();
  std::vector<std::string> targets;
  std::vector<std::string> fetches;
  for (int i = 0; i < 32; ++i) {
    auto c = ops::Const(s, Tensor::Scalar(static_cast<double>(i)));
    targets.push_back(ops::QueueEnqueue(s, "stress", c).node->name());
    fetches.push_back(ops::QueueDequeue(s, "stress").name());
  }
  auto r = rt.NewSession()->Run({}, fetches, targets);
  ASSERT_TRUE(r.ok());
  std::multiset<double> got;
  for (const auto& t : *r) got.insert(t.scalar<double>());
  std::multiset<double> want;
  for (int i = 0; i < 32; ++i) want.insert(static_cast<double>(i));
  EXPECT_EQ(got, want);
}

// ---- Remote surface under garbage ------------------------------------------------

TEST(ServerFuzzTest, MalformedPayloadsErrorCleanly) {
  wire::ClusterDef def;
  wire::JobDef job;
  job.name = "w";
  job.task_addrs = {"fz:1"};
  def.jobs = {job};
  auto spec = distrib::ClusterSpec::Create(def).value();
  distrib::InProcessRouter router;
  auto server = distrib::Server::Create({spec, "w", 0, 0}, &router).value();

  std::mt19937_64 rng(3);
  const char* methods[] = {"ExtendGraph", "RunStep",  "Enqueue",
                           "Dequeue",     "VarWrite", "VarRead",
                           "RendezvousSend"};
  for (int trial = 0; trial < 200; ++trial) {
    wire::RpcEnvelope req;
    req.method = methods[trial % 7];
    req.payload = RandomBytes(rng, 128);
    // Dequeue with a garbage payload could block on a real queue name; the
    // decode rejects unparseable payloads, and parseable ones name a queue
    // that never fills — skip the genuinely blocking method on payloads
    // that decode successfully.
    if (req.method == "Dequeue") {
      std::string q;
      Tensor t;
      int64_t cap;
      if (distrib::DecodeQueuePayloadView(req.payload, &q, &t, &cap).ok()) {
        continue;
      }
    }
    auto resp = router.Call("fz:1", distrib::WireProtocol::kGrpc, req);
    ASSERT_TRUE(resp.ok());  // transport-level ok
    // Service must report a structured error, not crash.
    EXPECT_NE(resp->status_code, 0) << req.method;
  }
}

}  // namespace
}  // namespace tfhpc
