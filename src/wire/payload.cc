#include "wire/payload.h"

#include <cstring>

#include "core/logging.h"

namespace tfhpc::wire {

PayloadRef PayloadRef::View(std::string head, std::shared_ptr<Buffer> buffer,
                            size_t offset, size_t len) {
  PayloadRef p;
  p.head_ = std::move(head);
  if (len == 0) return p;  // empty view degenerates to inline
  TFHPC_CHECK(buffer != nullptr && offset + len <= buffer->size())
      << "payload view [" << offset << ", " << offset + len
      << ") out of buffer bounds";
  p.buffer_ = std::move(buffer);
  p.offset_ = offset;
  p.len_ = len;
  return p;
}

std::string PayloadRef::Flatten() const {
  std::string out;
  out.reserve(size());
  out.append(head_);
  if (is_view()) {
    out.append(reinterpret_cast<const char*>(view_data()), len_);
  }
  return out;
}

void PayloadRef::Detach() {
  if (!is_view()) return;
  head_ = Flatten();
  buffer_.reset();
  offset_ = len_ = 0;
}

void PayloadRef::CorruptByteForTest(size_t index, uint8_t mask) {
  Detach();
  if (index < head_.size()) {
    head_[index] = static_cast<char>(head_[index] ^ mask);
  }
}

bool PayloadRef::operator==(const PayloadRef& o) const {
  if (size() != o.size()) return false;
  std::string lhs_scratch, rhs_scratch;
  const std::string& a = Contiguous(&lhs_scratch);
  const std::string& b = o.Contiguous(&rhs_scratch);
  return a == b;
}

uint64_t PayloadChecksum(const PayloadRef& p) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&h](const uint8_t* d, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h ^= d[i];
      h *= 1099511628211ull;  // FNV prime
    }
  };
  mix(reinterpret_cast<const uint8_t*>(p.head().data()), p.head().size());
  if (p.is_view()) mix(p.view_data(), p.view_size());
  return h;
}

}  // namespace tfhpc::wire
