// Tests for compile-once step execution: the Graph mutation counter, the
// Session's signature-keyed executable cache (hit/miss/invalidation/LRU),
// the Prepare/RunPrepared split, and the placement-staleness regression the
// version counter exists to prevent.
#include <gtest/gtest.h>

#include "graph/ops.h"
#include "runtime/session.h"

namespace tfhpc {
namespace {

// ---- Graph::version() ------------------------------------------------------

TEST(GraphVersionTest, AddNodeBumpsVersion) {
  Graph g;
  Scope s(&g);
  const int64_t v0 = g.version();
  auto a = ops::Const(s, Tensor::Scalar(1.0));
  EXPECT_GT(g.version(), v0);
  const int64_t v1 = g.version();
  ops::Add(s, a, a);
  EXPECT_GT(g.version(), v1);
}

TEST(GraphVersionTest, SetNodeDeviceBumpsVersion) {
  Graph g;
  Scope s(&g);
  auto a = ops::Const(s, Tensor::Scalar(1.0));
  const int64_t v = g.version();
  ASSERT_TRUE(g.SetNodeDevice(a.node->name(), "/cpu:0").ok());
  EXPECT_GT(g.version(), v);
  EXPECT_EQ(a.node->requested_device(), "/cpu:0");
}

TEST(GraphVersionTest, SetNodeDeviceSameSpecIsNoOp) {
  Graph g;
  Scope s(&g);
  auto a = ops::Const(s.WithDevice("/cpu:0"), Tensor::Scalar(1.0));
  const int64_t v = g.version();
  ASSERT_TRUE(g.SetNodeDevice(a.node->name(), "/cpu:0").ok());
  EXPECT_EQ(g.version(), v) << "re-pinning to the same device must not "
                               "invalidate compiled executables";
}

TEST(GraphVersionTest, SetNodeDeviceUnknownNodeFails) {
  Graph g;
  EXPECT_EQ(g.SetNodeDevice("nope", "/cpu:0").code(), Code::kNotFound);
}

// ---- Placement staleness regression (the latent bug) -----------------------

// Before placements were tied to Graph::version(), a session that had placed
// a node once kept serving the old device after the node was re-pinned —
// exactly what job-level recovery does when it moves an evicted task's nodes.
TEST(PlacementStalenessTest, RepinInvalidatesCachedPlacement) {
  LocalRuntime rt(2);  // cpu:0 + gpu:0 + gpu:1
  Scope s = rt.root_scope();
  auto c = ops::Const(s.WithDevice("/gpu:0"), Tensor::Scalar(1.0));
  auto sess = rt.NewSession();
  ASSERT_EQ(sess->DevicePlacement(c.node->name()).value(),
            "/job:localhost/task:0/gpu:0");

  ASSERT_TRUE(rt.graph().SetNodeDevice(c.node->name(), "/gpu:1").ok());
  EXPECT_EQ(sess->DevicePlacement(c.node->name()).value(),
            "/job:localhost/task:0/gpu:1")
      << "placement cache served a stale device after SetNodeDevice";
}

TEST(PlacementStalenessTest, RepinnedGraphRecompilesAndRunsOnNewDevice) {
  LocalRuntime rt(2);
  Scope s = rt.root_scope();
  auto a = ops::Const(s.WithDevice("/gpu:0"), Tensor::Scalar(3.0));
  auto b = ops::Const(s.WithDevice("/gpu:0"), Tensor::Scalar(4.0));
  auto y = ops::Mul(s.WithDevice("/gpu:0"), a, b);
  auto sess = rt.NewSession();
  ASSERT_TRUE(sess->Run({}, {y.name()}).ok());
  ASSERT_EQ(sess->executable_cache_misses(), 1);

  // Move the whole computation; the cached executable is now stale.
  for (const auto* node : {a.node, b.node, y.node}) {
    ASSERT_TRUE(rt.graph().SetNodeDevice(node->name(), "/gpu:1").ok());
  }
  auto r = sess->Run({}, {y.name()});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 12.0);
  EXPECT_EQ(sess->executable_cache_misses(), 2)
      << "stale entry must recompile, not serve the old placement";
  EXPECT_EQ(sess->DevicePlacement(y.node->name()).value(),
            "/job:localhost/task:0/gpu:1");
}

// ---- RunSignature ----------------------------------------------------------

TEST(RunSignatureTest, KeyDistinguishesFieldBoundaries) {
  RunSignature a{{"x"}, {"y"}, {}};
  RunSignature b{{}, {"x", "y"}, {}};
  RunSignature c{{"x", "y"}, {}, {}};
  EXPECT_NE(a.Key(), b.Key());
  EXPECT_NE(a.Key(), c.Key());
  EXPECT_NE(b.Key(), c.Key());
  RunSignature fetch_vs_target{{}, {"y"}, {"x"}};
  RunSignature target_vs_fetch{{}, {"x"}, {"y"}};
  EXPECT_NE(fetch_vs_target.Key(), target_vs_fetch.Key());
}

// ---- Session executable cache ----------------------------------------------

class ExecutableCacheTest : public ::testing::Test {
 protected:
  // y = x * 2, z = y + 1 over a placeholder; two distinct fetchable heads.
  void SetUp() override {
    Scope s = rt_.root_scope();
    auto x = ops::Placeholder(s, DType::kF64, Shape{}, "x");
    auto two = ops::Const(s, Tensor::Scalar(2.0));
    auto one = ops::Const(s, Tensor::Scalar(1.0));
    y_ = ops::Mul(s, x, two).name();
    z_ = ops::Add(s, Output{rt_.graph().FindNode(y_), 0}, one).name();
    sess_ = rt_.NewSession();
  }

  std::map<std::string, Tensor> Feed(double v) {
    return {{"x", Tensor::Scalar(v)}};
  }

  LocalRuntime rt_{0};
  std::string y_, z_;
  std::unique_ptr<Session> sess_;
};

TEST_F(ExecutableCacheTest, RepeatSignatureHitsCache) {
  ASSERT_TRUE(sess_->Run(Feed(1), {y_}).ok());
  EXPECT_EQ(sess_->executable_cache_misses(), 1);
  EXPECT_EQ(sess_->executable_cache_hits(), 0);
  for (double v : {2.0, 3.0, 4.0}) {
    auto r = sess_->Run(Feed(v), {y_});
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), v * 2);  // values still flow
  }
  EXPECT_EQ(sess_->executable_cache_misses(), 1);
  EXPECT_EQ(sess_->executable_cache_hits(), 3);
  EXPECT_EQ(sess_->executable_cache_size(), 1u);
}

TEST_F(ExecutableCacheTest, DifferentSignaturesCompileSeparately) {
  ASSERT_TRUE(sess_->Run(Feed(1), {y_}).ok());
  ASSERT_TRUE(sess_->Run(Feed(1), {z_}).ok());
  ASSERT_TRUE(sess_->Run(Feed(1), {y_, z_}).ok());
  EXPECT_EQ(sess_->executable_cache_misses(), 3);
  EXPECT_EQ(sess_->executable_cache_size(), 3u);
}

TEST_F(ExecutableCacheTest, GraphMutationInvalidatesCachedPlan) {
  ASSERT_TRUE(sess_->Run(Feed(1), {y_}).ok());
  ASSERT_EQ(sess_->executable_cache_misses(), 1);

  // Grow the graph; the signature is unchanged but the plan is stale.
  Scope s = rt_.root_scope();
  ops::Const(s, Tensor::Scalar(9.0));
  auto r = sess_->Run(Feed(5), {y_});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 10.0);
  EXPECT_EQ(sess_->executable_cache_misses(), 2);
  // And the recompiled entry serves hits again.
  ASSERT_TRUE(sess_->Run(Feed(6), {y_}).ok());
  EXPECT_EQ(sess_->executable_cache_misses(), 2);
}

TEST_F(ExecutableCacheTest, FeedOrderDoesNotFragmentTheCache) {
  Scope s = rt_.root_scope();
  auto w = ops::Placeholder(s, DType::kF64, Shape{}, "w");
  auto sum = ops::Add(s, Output{rt_.graph().FindNode(y_), 0}, w);
  auto run = [&](std::map<std::string, Tensor> feeds) {
    auto r = sess_->Run(feeds, {sum.name()});
    ASSERT_TRUE(r.ok());
  };
  // std::map iterates sorted, so exercise Prepare directly with both orders.
  ASSERT_TRUE(sess_->Prepare({"w", "x"}, {sum.name()}).ok());
  ASSERT_TRUE(sess_->Prepare({"x", "w"}, {sum.name()}).ok());
  EXPECT_EQ(sess_->executable_cache_misses(), 1)
      << "feed keys must be canonicalized before keying the cache";
  EXPECT_EQ(sess_->executable_cache_hits(), 1);
  run({{"x", Tensor::Scalar(1.0)}, {"w", Tensor::Scalar(2.0)}});
}

TEST_F(ExecutableCacheTest, ZeroCapacityDisablesCaching) {
  sess_->set_max_cached_executables(0);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(sess_->Run(Feed(i), {y_}).ok());
  EXPECT_EQ(sess_->executable_cache_misses(), 3);
  EXPECT_EQ(sess_->executable_cache_hits(), 0);
  EXPECT_EQ(sess_->executable_cache_size(), 0u);
}

TEST_F(ExecutableCacheTest, LruEvictsOldestSignature) {
  sess_->set_max_cached_executables(2);
  ASSERT_TRUE(sess_->Run(Feed(1), {y_}).ok());       // miss: {y}
  ASSERT_TRUE(sess_->Run(Feed(1), {z_}).ok());       // miss: {z}
  ASSERT_TRUE(sess_->Run(Feed(1), {y_}).ok());       // hit:  {y} now MRU
  ASSERT_TRUE(sess_->Run(Feed(1), {y_, z_}).ok());   // miss: evicts {z}
  EXPECT_EQ(sess_->executable_cache_size(), 2u);
  ASSERT_TRUE(sess_->Run(Feed(1), {y_}).ok());       // still cached
  EXPECT_EQ(sess_->executable_cache_hits(), 2);
  ASSERT_TRUE(sess_->Run(Feed(1), {z_}).ok());       // evicted -> recompiles
  EXPECT_EQ(sess_->executable_cache_misses(), 4);
}

TEST_F(ExecutableCacheTest, PrepareThenRunPrepared) {
  auto exe = sess_->Prepare({"x"}, {y_, z_});
  ASSERT_TRUE(exe.ok());
  EXPECT_FALSE((*exe)->stale(rt_.graph()));
  auto r = sess_->RunPrepared(**exe, Feed(10));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_DOUBLE_EQ((*r)[0].scalar<double>(), 20.0);
  EXPECT_DOUBLE_EQ((*r)[1].scalar<double>(), 21.0);

  // A later mutation marks the plan stale but Prepare hands back a fresh one.
  Scope s = rt_.root_scope();
  ops::Const(s, Tensor::Scalar(0.0));
  EXPECT_TRUE((*exe)->stale(rt_.graph()));
  auto fresh = sess_->Prepare({"x"}, {y_, z_});
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE((*fresh)->stale(rt_.graph()));
}

TEST_F(ExecutableCacheTest, NodesExecutedCountsScheduledNodesOnly) {
  // Fetching y executes {two, mul}; x is fed so it is not scheduled.
  ASSERT_TRUE(sess_->Run(Feed(1), {y_}).ok());
  EXPECT_EQ(sess_->nodes_executed(), 2);
  // Fetching z executes {two, mul, one, add}.
  ASSERT_TRUE(sess_->Run(Feed(1), {z_}).ok());
  EXPECT_EQ(sess_->nodes_executed(), 6);
}

TEST_F(ExecutableCacheTest, UnknownFetchStillFailsThroughCachePath) {
  EXPECT_EQ(sess_->Run(Feed(1), {"missing"}).status().code(), Code::kNotFound);
  // The failed compile must not poison the cache.
  EXPECT_EQ(sess_->executable_cache_size(), 0u);
}

}  // namespace
}  // namespace tfhpc
