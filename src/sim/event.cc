#include "sim/event.h"

namespace tfhpc::sim {

void Simulation::ScheduleAt(SimTime t, std::function<void()> fn) {
  TFHPC_CHECK_GE(t, now_) << "scheduling into the past";
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Simulation::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the function object must be moved
  // out before pop, so copy the header and steal the callable.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ev.fn();
  return true;
}

void Simulation::Run() {
  while (Step()) {
  }
}

}  // namespace tfhpc::sim
