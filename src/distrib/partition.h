// Graph partitioning: split one graph whose nodes are placed on different
// tasks ("/job:worker/task:1/gpu:0") into per-task subgraphs, inserting
// matched _Send/_Recv pairs at every cross-task edge — exactly what
// TensorFlow's distributed runtime does before execution. Data edges become
// tensor sends; control edges become token sends (a zero scalar gated on
// the producer).
#pragma once

#include <map>
#include <vector>

#include "core/device_name.h"
#include "distrib/cluster_spec.h"
#include "graph/graph.h"

namespace tfhpc::distrib {

// One _Send the partitioner inserted: which producer it ships and which
// original nodes (on the other side of the cut) consume it. The client's
// step pruner targets a send iff at least one consumer is in the fetch
// closure and not fed — the consuming partition's own closure then pulls in
// the matching _Recv, keeping the pair matched under pruning.
struct SendDef {
  std::string name;      // the _Send node's name (producer partition)
  std::string producer;  // original producer node name
  bool control = false;  // control-edge token send vs data send
  std::vector<std::string> consumers;  // original consumer node names
};

struct PartitionResult {
  // Task address -> that task's subgraph.
  std::map<std::string, wire::GraphDef> partitions;
  // Node name -> owning task address (for routing feeds/fetches).
  std::map<std::string, std::string> node_task;
  // Producer task address -> the _Send nodes in its partition.
  std::map<std::string, std::vector<SendDef>> sends;
};

struct PartitionOptions {
  // Merge the data _Sends between one (source task, destination task) pair
  // that share an identical consumer set into a single variadic _PackedSend
  // node shipping all their tensors in one wire transfer. Grouping by
  // consumer set is what keeps pruning sound: the step planner activates a
  // send iff some consumer is in the fetch closure and not fed, so every
  // key in a packed group is active exactly when its _Recv is — no key can
  // be shipped into a partition whose pruned step never receives it.
  // Control-token sends are never packed (they are one scalar each and
  // their gating differs per producer). The _Recv side is unchanged.
  bool coalesce_sends = false;
};

// Splits `graph`. Every node's device spec is merged with `default_device`
// (which must carry a job and task) and the resulting job/task must exist
// in `cluster`. Rendezvous keys are derived from edge names, so repeated
// partitioning of the same graph is deterministic.
Result<PartitionResult> PartitionGraph(const Graph& graph,
                                       const ClusterSpec& cluster,
                                       const DeviceName& default_device,
                                       const PartitionOptions& options);

Result<PartitionResult> PartitionGraph(const Graph& graph,
                                       const ClusterSpec& cluster,
                                       const DeviceName& default_device);

}  // namespace tfhpc::distrib
