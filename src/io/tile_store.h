// TileStore: the paper's "matrices are pre-processed into tiles stored as
// .npy files" substrate (Fig. 4 / Fig. 6). A store is a directory of
// tile_<r>_<c>.npy files plus a manifest describing the logical matrix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/tensor.h"

namespace tfhpc::io {

struct TileStoreManifest {
  int64_t rows = 0;       // logical matrix rows
  int64_t cols = 0;       // logical matrix cols
  int64_t tile_rows = 0;  // tile height (last row of tiles may be shorter)
  int64_t tile_cols = 0;  // tile width
  DType dtype = DType::kInvalid;

  int64_t grid_rows() const { return (rows + tile_rows - 1) / tile_rows; }
  int64_t grid_cols() const { return (cols + tile_cols - 1) / tile_cols; }
};

class TileStore {
 public:
  // Splits `matrix` (rank 2) into tiles of tile_rows x tile_cols under
  // directory `dir` (created if missing) and writes the manifest.
  static Result<TileStore> Create(const std::string& dir, const Tensor& matrix,
                                  int64_t tile_rows, int64_t tile_cols);

  // Opens an existing store by reading its manifest.
  static Result<TileStore> Open(const std::string& dir);

  const TileStoreManifest& manifest() const { return manifest_; }
  const std::string& dir() const { return dir_; }

  std::string TilePath(int64_t tr, int64_t tc) const;
  // Loads tile (tr, tc); shape is (tile_rows', tile_cols') with edge tiles
  // clipped to the matrix bounds.
  Result<Tensor> LoadTile(int64_t tr, int64_t tc) const;
  Status StoreTile(int64_t tr, int64_t tc, const Tensor& t) const;

  // Reassembles the full matrix from tiles (test/verification helper).
  Result<Tensor> Assemble() const;

 private:
  TileStore(std::string dir, TileStoreManifest manifest)
      : dir_(std::move(dir)), manifest_(manifest) {}

  std::string dir_;
  TileStoreManifest manifest_;
};

// Splits a 1-D signal of length n into `num_tiles` interleaved tiles
// (stride-sampled, as the paper's Cooley-Tukey FFT decimation requires):
// tile k holds elements k, k+num_tiles, k+2*num_tiles, ...
std::vector<Tensor> InterleaveSplit(const Tensor& signal, int64_t num_tiles);
// Inverse of InterleaveSplit.
Result<Tensor> InterleaveMerge(const std::vector<Tensor>& tiles);

}  // namespace tfhpc::io
