#include "distrib/dist_session.h"

#include <condition_variable>
#include <mutex>
#include <thread>

namespace tfhpc::distrib {

Result<std::unique_ptr<DistributedSession>> DistributedSession::Create(
    InProcessRouter* router, const ClusterSpec& cluster, WireProtocol protocol,
    const wire::GraphDef& def, const DeviceName& default_device) {
  TFHPC_ASSIGN_OR_RETURN(std::unique_ptr<Graph> graph,
                         Graph::FromGraphDef(def));
  TFHPC_ASSIGN_OR_RETURN(PartitionResult parts,
                         PartitionGraph(*graph, cluster, default_device));

  std::unique_ptr<DistributedSession> session(
      new DistributedSession(router, protocol));
  session->node_task_ = std::move(parts.node_task);
  for (auto& [addr, part_def] : parts.partitions) {
    RemoteTask task(router, addr, protocol);
    TFHPC_RETURN_IF_ERROR(task.ExtendGraph(part_def));
    Partition p;
    p.addr = addr;
    for (const auto& nd : part_def.nodes) p.all_nodes.push_back(nd.name);
    session->partitions_.push_back(std::move(p));
  }
  return session;
}

Result<std::string> DistributedSession::TaskOf(
    const std::string& node_name) const {
  auto it = node_task_.find(node_name);
  if (it == node_task_.end()) return NotFound("unknown node " + node_name);
  return it->second;
}

Result<std::vector<Tensor>> DistributedSession::Run(
    const std::map<std::string, Tensor>& feeds,
    const std::vector<std::string>& fetches) {
  // Route feeds and fetches to their owning partitions.
  struct StepPlan {
    std::map<std::string, Tensor> feeds;
    std::vector<std::string> fetches;              // this partition's share
    std::vector<size_t> fetch_positions;           // into the global result
  };
  std::map<std::string, StepPlan> plans;
  for (const auto& p : partitions_) plans[p.addr];

  for (const auto& [key, tensor] : feeds) {
    std::string name = key;
    const size_t colon = name.find(':');
    if (colon != std::string::npos) name = name.substr(0, colon);
    auto it = node_task_.find(name);
    if (it == node_task_.end()) return NotFound("feed of unknown node " + key);
    plans[it->second].feeds.emplace(key, tensor);
  }
  for (size_t i = 0; i < fetches.size(); ++i) {
    std::string name = fetches[i];
    const size_t colon = name.find(':');
    if (colon != std::string::npos) name = name.substr(0, colon);
    auto it = node_task_.find(name);
    if (it == node_task_.end()) {
      return NotFound("fetch of unknown node " + fetches[i]);
    }
    plans[it->second].fetches.push_back(fetches[i]);
    plans[it->second].fetch_positions.push_back(i);
  }

  // Drive every partition concurrently: cross-task edges rendezvous inside
  // the servers, so partitions must run simultaneously. If any partition
  // fails, the others may be parked in _Recv waiting for tensors that will
  // never be sent — the first error triggers step cancellation (AbortStep)
  // on every peer so the whole Run unwinds instead of hanging.
  std::vector<Tensor> results(fetches.size());
  std::vector<Status> status(partitions_.size());
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;
  bool failed = false;

  std::vector<std::thread> threads;
  for (size_t pi = 0; pi < partitions_.size(); ++pi) {
    threads.emplace_back([&, pi] {
      const Partition& part = partitions_[pi];
      const StepPlan& plan = plans[part.addr];
      RemoteTask task(router_, part.addr, protocol_);
      Status st;
      auto r = task.RunStep(plan.feeds, plan.fetches, part.all_nodes);
      if (!r.ok()) {
        st = r.status();
      } else if (r->size() != plan.fetches.size()) {
        st = Internal("partition returned wrong fetch count");
      } else {
        for (size_t f = 0; f < plan.fetch_positions.size(); ++f) {
          results[plan.fetch_positions[f]] = std::move((*r)[f]);
        }
      }
      std::lock_guard<std::mutex> lk(mu);
      status[pi] = std::move(st);
      ++done;
      if (!status[pi].ok()) failed = true;
      cv.notify_all();
    });
  }

  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return done == partitions_.size() || failed; });
    if (failed && done < partitions_.size()) {
      // Cancel stragglers; their RunSteps fail with Cancelled and unwind.
      for (const Partition& part : partitions_) {
        RemoteTask(router_, part.addr, protocol_).AbortStep("peer failed");
      }
      cv.wait(lk, [&] { return done == partitions_.size(); });
    }
  }
  for (auto& t : threads) t.join();

  Status first;
  for (const Status& s : status) {
    // Prefer the root cause over Cancelled fallout from the abort.
    if (!s.ok() && (first.ok() || first.code() == Code::kCancelled)) {
      first = s;
    }
  }
  if (!first.ok()) {
    // Return the tasks to a clean state so the session stays usable.
    for (const Partition& part : partitions_) {
      RemoteTask(router_, part.addr, protocol_).ResetStep();
    }
    return first;
  }
  return results;
}

}  // namespace tfhpc::distrib
