// Liveness-layer tests: the router's fail-stop/fail-slow switches (Kill /
// Hang), the HealthMonitor lease state machine (deterministic under a fake
// clock, end-to-end under real pinger threads), the bounded LRU/TTL
// ReplayCache and the versioned durable CheckpointManager.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "distrib/client.h"
#include "distrib/health.h"
#include "distrib/server.h"
#include "io/checkpoint.h"

namespace tfhpc::distrib {
namespace {

using ::tfhpc::io::CheckpointManager;
using ::tfhpc::io::CheckpointManagerOptions;

// Registers an always-healthy echo endpoint (enough for Ping).
void RegisterEcho(InProcessRouter* router, const std::string& addr) {
  ASSERT_TRUE(router
                  ->Register(addr,
                             [](const wire::RpcEnvelope& req) {
                               wire::RpcEnvelope resp;
                               resp.method = req.method;
                               resp.request_id = req.request_id;
                               resp.payload = req.payload;
                               return resp;
                             })
                  .ok());
}

// ---- router fail-stop / fail-slow switches ---------------------------------------

TEST(LivenessSwitchTest, KillRefusesCallsUntilRevive) {
  InProcessRouter router;
  RegisterEcho(&router, "lv-a:1");
  RemoteTask task(&router, "lv-a:1", WireProtocol::kRdma);
  ASSERT_TRUE(task.Ping().ok());

  router.Kill("lv-a:1");
  EXPECT_TRUE(router.IsKilled("lv-a:1"));
  Status st = task.Ping();
  EXPECT_EQ(st.code(), Code::kUnavailable);
  EXPECT_GT(router.stats(WireProtocol::kRdma).faults_kill_refused.load(), 0);

  router.Revive("lv-a:1");
  EXPECT_FALSE(router.IsKilled("lv-a:1"));
  EXPECT_TRUE(task.Ping().ok());
}

TEST(LivenessSwitchTest, HangBlocksCallUntilUnhang) {
  InProcessRouter router;
  RegisterEcho(&router, "lv-b:1");
  router.Hang("lv-b:1");

  std::atomic<bool> returned{false};
  Status st;
  std::thread caller([&] {
    st = RemoteTask(&router, "lv-b:1", WireProtocol::kGrpc).Ping();
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(returned) << "call must block while the worker is hung";
  EXPECT_GT(router.stats(WireProtocol::kGrpc).faults_hang_blocked.load(), 0);

  router.Unhang("lv-b:1");
  caller.join();
  EXPECT_TRUE(returned);
  EXPECT_TRUE(st.ok()) << "an unhung worker serves the blocked call: "
                       << st.ToString();
}

TEST(LivenessSwitchTest, KillReleasesCallBlockedInHang) {
  // The fence property job-level recovery relies on: killing a hung address
  // aborts the RPCs parked inside it (a real crash resets the connection).
  InProcessRouter router;
  RegisterEcho(&router, "lv-c:1");
  router.Hang("lv-c:1");

  Status st;
  std::thread caller(
      [&] { st = RemoteTask(&router, "lv-c:1", WireProtocol::kRdma).Ping(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  router.Kill("lv-c:1");
  caller.join();
  EXPECT_EQ(st.code(), Code::kUnavailable) << st.ToString();
}

TEST(LivenessSwitchTest, HangCapBoundsTheBlock) {
  InProcessRouter router;
  RegisterEcho(&router, "lv-d:1");
  router.Hang("lv-d:1", /*max_block_ms=*/40);
  const auto start = std::chrono::steady_clock::now();
  Status st = RemoteTask(&router, "lv-d:1", WireProtocol::kRdma).Ping();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_EQ(st.code(), Code::kDeadlineExceeded) << st.ToString();
  EXPECT_GE(elapsed, 35);
  router.Revive("lv-d:1");
}

// ---- HealthMonitor state machine under a fake clock -----------------------------

class FakeClockMonitorTest : public ::testing::Test {
 protected:
  FakeClockMonitorTest() {
    HealthOptions opts;
    opts.heartbeat_interval_ms = 10;
    opts.suspect_after_ms = 50;
    opts.dead_after_ms = 150;
    opts.auto_start_pingers = false;  // test drives heartbeats + Evaluate
    opts.clock_ms = [this] { return now_ms_; };
    monitor_ = std::make_unique<HealthMonitor>(&router_, opts);
  }

  InProcessRouter router_;
  int64_t now_ms_ = 1000;
  std::unique_ptr<HealthMonitor> monitor_;
};

TEST_F(FakeClockMonitorTest, LeaseExpiryWalksAliveSuspectDead) {
  monitor_->Watch("w:1");
  EXPECT_EQ(monitor_->health("w:1"), TaskHealth::kAlive);

  now_ms_ += 49;  // within the suspect window
  monitor_->Evaluate();
  EXPECT_EQ(monitor_->health("w:1"), TaskHealth::kAlive);

  now_ms_ += 2;  // 51ms without an ack
  monitor_->Evaluate();
  EXPECT_EQ(monitor_->health("w:1"), TaskHealth::kSuspect);

  now_ms_ += 100;  // 151ms without an ack
  monitor_->Evaluate();
  EXPECT_EQ(monitor_->health("w:1"), TaskHealth::kDead);
  EXPECT_EQ(monitor_->DeadTasks(), std::vector<std::string>{"w:1"});
  EXPECT_EQ(monitor_->transitions("w:1"), 2);
}

TEST_F(FakeClockMonitorTest, HeartbeatRecoversASuspectFalsePositive) {
  monitor_->Watch("w:1");
  now_ms_ += 60;
  monitor_->Evaluate();
  ASSERT_EQ(monitor_->health("w:1"), TaskHealth::kSuspect);

  monitor_->RecordHeartbeat("w:1");  // the worker was only slow
  EXPECT_EQ(monitor_->health("w:1"), TaskHealth::kAlive);
  EXPECT_EQ(monitor_->lease_age_ms("w:1"), 0);

  now_ms_ += 49;  // lease is fresh again: stays alive
  monitor_->Evaluate();
  EXPECT_EQ(monitor_->health("w:1"), TaskHealth::kAlive);
}

TEST_F(FakeClockMonitorTest, DeadVerdictIsSticky) {
  monitor_->Watch("w:1");
  now_ms_ += 200;
  monitor_->Evaluate();
  ASSERT_EQ(monitor_->health("w:1"), TaskHealth::kDead);

  // A zombie heartbeat after the verdict must not resurrect the task: the
  // eviction decision has been made and the address fenced.
  monitor_->RecordHeartbeat("w:1");
  monitor_->Evaluate();
  EXPECT_EQ(monitor_->health("w:1"), TaskHealth::kDead);
}

TEST_F(FakeClockMonitorTest, ListenersSeeEveryTransition) {
  std::vector<std::string> events;
  monitor_->AddListener([&](const std::string& addr, TaskHealth from,
                            TaskHealth to) {
    events.push_back(addr + ":" + TaskHealthName(from) + "->" +
                     TaskHealthName(to));
  });
  monitor_->Watch("w:1");
  now_ms_ += 60;
  monitor_->Evaluate();
  monitor_->RecordHeartbeat("w:1");
  now_ms_ += 200;
  monitor_->Evaluate();
  // The second expiry blows straight past both windows between Evaluate
  // calls, so the sparse evaluator legitimately reports one ALIVE->DEAD
  // jump rather than synthesizing an intermediate SUSPECT it never saw.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], "w:1:ALIVE->SUSPECT");
  EXPECT_EQ(events[1], "w:1:SUSPECT->ALIVE");
  EXPECT_EQ(events[2], "w:1:ALIVE->DEAD");
}

TEST_F(FakeClockMonitorTest, UnknownAddressReadsDead) {
  EXPECT_EQ(monitor_->health("never-watched:1"), TaskHealth::kDead);
  EXPECT_EQ(monitor_->lease_age_ms("never-watched:1"), -1);
}

// ---- HealthMonitor end-to-end (pinger threads over the router) -------------------

TEST(HealthMonitorE2ETest, PingersKeepLeasesFreshUntilKill) {
  InProcessRouter router;
  RegisterEcho(&router, "hm-a:1");
  HealthOptions opts;
  opts.heartbeat_interval_ms = 5;
  opts.suspect_after_ms = 40;
  opts.dead_after_ms = 100;
  HealthMonitor monitor(&router, opts);
  monitor.Watch("hm-a:1");
  monitor.Start();

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(monitor.health("hm-a:1"), TaskHealth::kAlive)
      << "a responsive worker must stay ALIVE past the dead window";
  EXPECT_GT(monitor.heartbeats("hm-a:1"), 0);

  router.Kill("hm-a:1");  // fail-stop
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (monitor.health("hm-a:1") != TaskHealth::kDead &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(monitor.health("hm-a:1"), TaskHealth::kDead);
  monitor.Stop();
}

TEST(HealthMonitorE2ETest, HungWorkerExpiresItsLease) {
  // The pinger blocks inside the hang; the verdict must come from the lease
  // age, not from the ping returning.
  InProcessRouter router;
  RegisterEcho(&router, "hm-b:1");
  HealthOptions opts;
  opts.heartbeat_interval_ms = 5;
  opts.suspect_after_ms = 30;
  opts.dead_after_ms = 80;
  HealthMonitor monitor(&router, opts);
  monitor.Watch("hm-b:1");
  monitor.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_EQ(monitor.health("hm-b:1"), TaskHealth::kAlive);

  router.Hang("hm-b:1", /*max_block_ms=*/2000);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (monitor.health("hm-b:1") != TaskHealth::kDead &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(monitor.health("hm-b:1"), TaskHealth::kDead);

  router.Kill("hm-b:1");  // fence: releases the pinger parked in the hang
  monitor.Stop();
}

// ---- ReplayCache bounds -----------------------------------------------------------

wire::RpcEnvelope CannedResponse(const std::string& tag) {
  wire::RpcEnvelope resp;
  resp.payload = tag;
  return resp;
}

TEST(ReplayCacheBoundsTest, LruCapEvictsTheColdestEntry) {
  ReplayCache cache(ReplayCacheOptions{/*max_entries=*/2, /*ttl_ms=*/0});
  cache.Insert(1, 1, CannedResponse("a"));
  cache.Insert(1, 2, CannedResponse("b"));
  cache.Insert(1, 3, CannedResponse("c"));  // evicts (1,1)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1);

  wire::RpcEnvelope out;
  EXPECT_FALSE(cache.Lookup(1, 1, &out));
  EXPECT_TRUE(cache.Lookup(1, 2, &out));
  EXPECT_EQ(out.payload, "b");
  EXPECT_TRUE(cache.Lookup(1, 3, &out));
}

TEST(ReplayCacheBoundsTest, LookupRefreshesRecency) {
  ReplayCache cache(ReplayCacheOptions{2, 0});
  cache.Insert(1, 1, CannedResponse("a"));
  cache.Insert(1, 2, CannedResponse("b"));
  wire::RpcEnvelope out;
  ASSERT_TRUE(cache.Lookup(1, 1, &out));  // (1,1) is now the hottest
  cache.Insert(1, 3, CannedResponse("c"));  // must evict (1,2), not (1,1)
  EXPECT_TRUE(cache.Lookup(1, 1, &out));
  EXPECT_FALSE(cache.Lookup(1, 2, &out));
}

TEST(ReplayCacheBoundsTest, TtlExpiresStaleEntries) {
  ReplayCache cache(ReplayCacheOptions{/*max_entries=*/64, /*ttl_ms=*/30});
  cache.Insert(1, 1, CannedResponse("a"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  wire::RpcEnvelope out;
  EXPECT_FALSE(cache.Lookup(1, 1, &out))
      << "an entry past its retry window must expire";
  EXPECT_EQ(cache.expirations(), 1);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ReplayCacheBoundsTest, ServerHonoursConfiguredBounds) {
  // A tiny cache still dedups the *recent* retry it exists for.
  InProcessRouter router;
  auto spec = ClusterSpec::Create([] {
    wire::ClusterDef def;
    wire::JobDef job;
    job.name = "ps";
    job.task_addrs = {"rc-ps:1"};
    def.jobs = {job};
    return def;
  }());
  ASSERT_TRUE(spec.ok());
  ServerDef def{*spec, "ps", 0, 0};
  def.replay_cache_entries = 4;
  auto server = Server::Create(def, &router);
  ASSERT_TRUE(server.ok());

  RemoteTask task(&router, "rc-ps:1", WireProtocol::kGrpc);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(task.VarAssignAdd("x", Tensor::Scalar(1.0)).ok());
  }
  EXPECT_LE((*server)->replay_cache().size(), 4u);
  EXPECT_GT((*server)->replay_cache().evictions(), 0);
  EXPECT_DOUBLE_EQ(task.VarRead("x")->scalar<double>(), 32.0);
}

// ---- CheckpointManager ------------------------------------------------------------

class CheckpointManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ckpt_mgr_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static std::map<std::string, Tensor> Vars(double seed) {
    std::map<std::string, Tensor> vars;
    vars["w|a"] = Tensor::Scalar(seed);
    vars["w|b"] = Tensor::FromVector(std::vector<double>{seed, seed + 1});
    return vars;
  }

  std::string dir_;
};

TEST_F(CheckpointManagerTest, SaveRestoreRoundTripsAndVersions) {
  CheckpointManager mgr(CheckpointManagerOptions{dir_, "ckpt", 3});
  auto v1 = mgr.Save(Vars(1.0));
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  auto v2 = mgr.Save(Vars(2.0));
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v1, 1);
  EXPECT_EQ(*v2, 2);
  EXPECT_EQ(mgr.latest_version(), 2);

  auto restored = mgr.Restore(*v1);
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ(restored->at("w|a").scalar<double>(), 1.0);

  int64_t latest = 0;
  auto newest = mgr.RestoreLatest(&latest);
  ASSERT_TRUE(newest.ok());
  EXPECT_EQ(latest, 2);
  EXPECT_DOUBLE_EQ(newest->at("w|a").scalar<double>(), 2.0);
}

TEST_F(CheckpointManagerTest, RetentionDeletesRotatedVersions) {
  CheckpointManager mgr(CheckpointManagerOptions{dir_, "ckpt", 2});
  for (double s = 1; s <= 4; ++s) ASSERT_TRUE(mgr.Save(Vars(s)).ok());
  EXPECT_EQ(mgr.Versions(), (std::vector<int64_t>{3, 4}));
  EXPECT_FALSE(std::filesystem::exists(mgr.PathFor(1)));
  EXPECT_FALSE(std::filesystem::exists(mgr.PathFor(2)));
  EXPECT_TRUE(std::filesystem::exists(mgr.PathFor(4)));
  EXPECT_FALSE(mgr.Restore(1).ok()) << "rotated versions are gone";
}

TEST_F(CheckpointManagerTest, ManifestResumesTheVersionSequence) {
  {
    CheckpointManager mgr(CheckpointManagerOptions{dir_, "ckpt", 3});
    ASSERT_TRUE(mgr.Save(Vars(1.0)).ok());
    ASSERT_TRUE(mgr.Save(Vars(2.0)).ok());
  }
  // A restarted job must continue the sequence, not restart at 1 (which
  // would silently overwrite history).
  CheckpointManager resumed(CheckpointManagerOptions{dir_, "ckpt", 3});
  EXPECT_EQ(resumed.latest_version(), 2);
  auto v3 = resumed.Save(Vars(3.0));
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(*v3, 3);
  int64_t latest = 0;
  ASSERT_TRUE(resumed.RestoreLatest(&latest).ok());
  EXPECT_EQ(latest, 3);
}

TEST_F(CheckpointManagerTest, RestoreLatestFallsBackPastACorruptFile) {
  CheckpointManager mgr(CheckpointManagerOptions{dir_, "ckpt", 3});
  ASSERT_TRUE(mgr.Save(Vars(1.0)).ok());
  ASSERT_TRUE(mgr.Save(Vars(2.0)).ok());

  // Flip bytes in the middle of the newest file: its CRC no longer matches.
  {
    std::fstream f(mgr.PathFor(2),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(24);
    const char junk[4] = {'\x5a', '\x5a', '\x5a', '\x5a'};
    f.write(junk, sizeof(junk));
  }
  ASSERT_FALSE(mgr.Restore(2).ok()) << "corruption must be detected";

  int64_t latest = 0;
  auto restored = mgr.RestoreLatest(&latest);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(latest, 1) << "fallback must reach the older intact version";
  EXPECT_DOUBLE_EQ(restored->at("w|a").scalar<double>(), 1.0);
}

TEST_F(CheckpointManagerTest, AsyncSavesDrainAndLatestWins) {
  CheckpointManager mgr(CheckpointManagerOptions{dir_, "ckpt", 8});
  for (double s = 1; s <= 6; ++s) mgr.SaveAsync(Vars(s));
  ASSERT_TRUE(mgr.WaitForPending().ok());
  ASSERT_GE(mgr.saves(), 1);

  int64_t latest = 0;
  auto restored = mgr.RestoreLatest(&latest);
  ASSERT_TRUE(restored.ok());
  // Queued snapshots may be superseded (latest wins) but the final state
  // must be the last snapshot queued.
  EXPECT_DOUBLE_EQ(restored->at("w|a").scalar<double>(), 6.0);
}

// ---- checkpoint file format hardening ---------------------------------------------

TEST(CheckpointFormatTest, RejectsAMismatchedFormatVersion) {
  const std::string path = ::testing::TempDir() + "/fmt_version.ckpt";
  std::map<std::string, Tensor> vars;
  vars["x"] = Tensor::Scalar(7.0);
  ASSERT_TRUE(io::SaveCheckpoint(path, vars).ok());

  // Header starts with field 1 (version) as "0x08 <varint>"; bump the
  // version value in place.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    char tag = 0;
    f.read(&tag, 1);
    ASSERT_EQ(tag, 0x08);
    f.seekp(1);
    const char v99 = 99;
    f.write(&v99, 1);
  }
  auto loaded = io::LoadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Code::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("format version"),
            std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(CheckpointFormatTest, DetectsFlippedPayloadBytes) {
  const std::string path = ::testing::TempDir() + "/fmt_crc.ckpt";
  std::map<std::string, Tensor> vars;
  vars["weights"] =
      Tensor::FromVector(std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8});
  ASSERT_TRUE(io::SaveCheckpoint(path, vars).ok());

  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(-9, std::ios::end);  // inside the tensor bytes
    const char junk = '\x5a';
    f.write(&junk, 1);
  }
  auto loaded = io::LoadCheckpoint(path);
  EXPECT_FALSE(loaded.ok()) << "bit rot inside an entry must not load";
  std::remove(path.c_str());
}

TEST(CheckpointFormatTest, Crc32MatchesTheIeeeReferenceVector) {
  const char* kCheck = "123456789";
  EXPECT_EQ(io::Crc32(kCheck, 9), 0xCBF43926u);
  EXPECT_EQ(io::Crc32("", 0), 0u);
}

}  // namespace
}  // namespace tfhpc::distrib
