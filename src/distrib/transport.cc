#include "distrib/transport.h"

#include <cstring>

namespace tfhpc::distrib {

const char* WireProtocolName(WireProtocol p) {
  switch (p) {
    case WireProtocol::kGrpc: return "grpc";
    case WireProtocol::kMpi: return "mpi";
    case WireProtocol::kRdma: return "rdma";
  }
  return "?";
}

Status InProcessRouter::Register(const std::string& addr,
                                 ServiceHandler handler) {
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = handlers_.emplace(addr, std::move(handler));
  (void)it;
  if (!inserted) return AlreadyExists("server already bound to " + addr);
  return Status::OK();
}

void InProcessRouter::Unregister(const std::string& addr) {
  std::lock_guard<std::mutex> lk(mu_);
  handlers_.erase(addr);
}

ServiceHandler InProcessRouter::LookupHandler(const std::string& addr) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = handlers_.find(addr);
  return it == handlers_.end() ? ServiceHandler() : it->second;
}

void InProcessRouter::InjectFault(const std::string& addr,
                                  const std::string& method, Status error,
                                  int times) {
  TFHPC_CHECK(!error.ok()) << "injected fault must be an error";
  std::lock_guard<std::mutex> lk(mu_);
  faults_.push_back(Fault{addr, method, std::move(error), times});
}

void InProcessRouter::ClearFaults() {
  std::lock_guard<std::mutex> lk(mu_);
  faults_.clear();
}

Status InProcessRouter::ConsumeFault(const std::string& addr,
                                     const std::string& method) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = faults_.begin(); it != faults_.end(); ++it) {
    if (it->addr == addr && (it->method == "*" || it->method == method)) {
      Status error = it->error;
      if (--it->remaining <= 0) faults_.erase(it);
      return error;
    }
  }
  return Status::OK();
}

Result<wire::RpcEnvelope> InProcessRouter::Call(
    const std::string& addr, WireProtocol proto,
    const wire::RpcEnvelope& request) {
  ServiceHandler handler = LookupHandler(addr);
  if (!handler) return Unavailable("no server at " + addr);
  TFHPC_RETURN_IF_ERROR(ConsumeFault(addr, request.method));
  TransportStats& st = stats_[static_cast<size_t>(proto)];
  st.calls.fetch_add(1, std::memory_order_relaxed);
  st.payload_bytes.fetch_add(static_cast<int64_t>(request.payload.size()),
                             std::memory_order_relaxed);

  wire::RpcEnvelope delivered;
  switch (proto) {
    case WireProtocol::kGrpc: {
      // Full protobuf round trip of the envelope.
      const std::string frame = request.Serialize();
      st.bytes_serialized.fetch_add(static_cast<int64_t>(frame.size()),
                                    std::memory_order_relaxed);
      std::string wire_buf(frame.size(), '\0');  // the TCP copy
      std::memcpy(wire_buf.data(), frame.data(), frame.size());
      st.bytes_copied.fetch_add(static_cast<int64_t>(wire_buf.size()),
                                std::memory_order_relaxed);
      TFHPC_ASSIGN_OR_RETURN(delivered, wire::RpcEnvelope::Parse(wire_buf));
      break;
    }
    case WireProtocol::kMpi: {
      // Header serialized; payload staged (send buffer) then wired.
      wire::RpcEnvelope header = request;
      header.payload.clear();
      const std::string header_frame = header.Serialize();
      st.bytes_serialized.fetch_add(
          static_cast<int64_t>(header_frame.size()), std::memory_order_relaxed);
      std::string staging(request.payload.size(), '\0');
      std::memcpy(staging.data(), request.payload.data(),
                  request.payload.size());
      std::string recv_buf(staging.size(), '\0');
      std::memcpy(recv_buf.data(), staging.data(), staging.size());
      st.bytes_copied.fetch_add(2 * static_cast<int64_t>(staging.size()),
                                std::memory_order_relaxed);
      TFHPC_ASSIGN_OR_RETURN(delivered, wire::RpcEnvelope::Parse(header_frame));
      delivered.payload = std::move(recv_buf);
      break;
    }
    case WireProtocol::kRdma: {
      // Registered-buffer write: the payload lands in the remote buffer in
      // one copy; only the tiny header is exchanged via the side channel.
      wire::RpcEnvelope header = request;
      header.payload.clear();
      const std::string header_frame = header.Serialize();
      st.bytes_serialized.fetch_add(
          static_cast<int64_t>(header_frame.size()), std::memory_order_relaxed);
      std::string remote_buf(request.payload.size(), '\0');
      std::memcpy(remote_buf.data(), request.payload.data(),
                  request.payload.size());
      st.bytes_copied.fetch_add(static_cast<int64_t>(remote_buf.size()),
                                std::memory_order_relaxed);
      TFHPC_ASSIGN_OR_RETURN(delivered, wire::RpcEnvelope::Parse(header_frame));
      delivered.payload = std::move(remote_buf);
      break;
    }
  }

  wire::RpcEnvelope response = handler(delivered);
  // Responses ride the same protocol; count their payload too.
  st.payload_bytes.fetch_add(static_cast<int64_t>(response.payload.size()),
                             std::memory_order_relaxed);
  return response;
}

}  // namespace tfhpc::distrib
