// ClusterSpec: jobs -> task address lists (tf.train.ClusterSpec). Thin
// validated wrapper over the wire ClusterDef.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/status.h"
#include "wire/messages.h"

namespace tfhpc::distrib {

class ClusterSpec {
 public:
  static Result<ClusterSpec> Create(wire::ClusterDef def);

  const wire::ClusterDef& def() const { return def_; }
  std::vector<std::string> JobNames() const;
  // Number of tasks in `job`; 0 when absent.
  int NumTasks(const std::string& job) const;
  Result<std::string> TaskAddress(const std::string& job, int task) const;
  int TotalTasks() const;

  // Reverse lookup: the (job, task index) that owns `addr`.
  Result<std::pair<std::string, int>> FindTask(const std::string& addr) const;

  // A spec with `old_addr`'s slot reassigned to `new_addr` — job-level
  // recovery replacing a dead worker with a spare. Task indices are stable:
  // the spare assumes the failed slot, so device placements keep resolving.
  Result<ClusterSpec> WithTaskReplaced(const std::string& old_addr,
                                       const std::string& new_addr) const;

 private:
  explicit ClusterSpec(wire::ClusterDef def) : def_(std::move(def)) {}
  wire::ClusterDef def_;
};

}  // namespace tfhpc::distrib
