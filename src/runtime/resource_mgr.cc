#include "runtime/resource_mgr.h"

#include <complex>

namespace tfhpc {

Status FIFOQueue::Enqueue(Tensor t, CancellationToken* token) {
  CancelCallback wake(token, [this] {
    // Wake both CVs: the token's step may have waiters on either side.
    not_full_.notify_all();
    not_empty_.notify_all();
  });
  std::unique_lock<std::mutex> lk(mu_);
  const uint64_t entry_epoch = cancel_epoch_;
  auto ready = [&] {
    if (closed_ || cancel_epoch_ != entry_epoch) return true;
    if (token != nullptr && !token->Check().ok()) return true;
    return capacity_ == 0 || items_.size() < static_cast<size_t>(capacity_);
  };
  if (token != nullptr && token->has_deadline()) {
    if (!not_full_.wait_until(lk, token->deadline(), ready)) {
      return DeadlineExceeded("enqueue wait on queue '" + name_ +
                              "' exceeded step deadline");
    }
  } else {
    not_full_.wait(lk, ready);
  }
  if (closed_) return Cancelled("enqueue on closed queue '" + name_ + "'");
  if (cancel_epoch_ != entry_epoch) return cancel_status_;
  if (token != nullptr) {
    Status ts = token->Check();
    if (!ts.ok()) return ts;
  }
  items_.push_back(std::move(t));
  lk.unlock();
  not_empty_.notify_one();
  return Status::OK();
}

Result<Tensor> FIFOQueue::Dequeue(CancellationToken* token) {
  CancelCallback wake(token, [this] {
    not_full_.notify_all();
    not_empty_.notify_all();
  });
  std::unique_lock<std::mutex> lk(mu_);
  const uint64_t entry_epoch = cancel_epoch_;
  auto ready = [&] {
    if (closed_ || cancel_epoch_ != entry_epoch) return true;
    if (token != nullptr && !token->Check().ok()) return true;
    return !items_.empty();
  };
  if (token != nullptr && token->has_deadline()) {
    if (!not_empty_.wait_until(lk, token->deadline(), ready)) {
      return DeadlineExceeded("dequeue wait on queue '" + name_ +
                              "' exceeded step deadline");
    }
  } else {
    not_empty_.wait(lk, ready);
  }
  // Closed queues drain before failing (TF's contract); cancellation does
  // not consume an element even if one raced in.
  if (!items_.empty() && cancel_epoch_ == entry_epoch &&
      (token == nullptr || token->Check().ok())) {
    Tensor t = std::move(items_.front());
    items_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return t;
  }
  if (closed_ && items_.empty() && cancel_epoch_ == entry_epoch) {
    return OutOfRange("queue '" + name_ + "' is closed and empty");
  }
  if (cancel_epoch_ != entry_epoch) return cancel_status_;
  if (token != nullptr) {
    Status ts = token->Check();
    if (!ts.ok()) return ts;
  }
  // Closed while we waited, with elements drained by other consumers.
  return OutOfRange("queue '" + name_ + "' is closed and empty");
}

Status FIFOQueue::TryEnqueue(Tensor t, bool* accepted) {
  std::unique_lock<std::mutex> lk(mu_);
  if (closed_) return Cancelled("enqueue on closed queue '" + name_ + "'");
  if (capacity_ != 0 && items_.size() >= static_cast<size_t>(capacity_)) {
    *accepted = false;
    return Status::OK();
  }
  items_.push_back(std::move(t));
  *accepted = true;
  lk.unlock();
  not_empty_.notify_one();
  return Status::OK();
}

Result<Tensor> FIFOQueue::TryDequeue(bool* got) {
  std::unique_lock<std::mutex> lk(mu_);
  if (items_.empty()) {
    *got = false;
    if (closed_) return OutOfRange("queue '" + name_ + "' is closed and empty");
    return Tensor();
  }
  Tensor t = std::move(items_.front());
  items_.pop_front();
  *got = true;
  lk.unlock();
  not_full_.notify_one();
  return t;
}

void FIFOQueue::Close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

void FIFOQueue::CancelWaiters(Status status) {
  TFHPC_CHECK(!status.ok()) << "CancelWaiters needs an error status";
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++cancel_epoch_;
    cancel_status_ = std::move(status);
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool FIFOQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

size_t FIFOQueue::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return items_.size();
}

bool Variable::initialized() const {
  std::lock_guard<std::mutex> lk(mu_);
  return value_.valid();
}

Result<Tensor> Variable::Read() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (!value_.valid()) {
    return FailedPrecondition("variable '" + name_ + "' is uninitialized");
  }
  return value_;
}

void Variable::Write(Tensor t) {
  std::lock_guard<std::mutex> lk(mu_);
  value_ = std::move(t);
}

Result<Tensor> Variable::Accumulate(const Tensor& delta) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!value_.valid()) {
    value_ = delta.Clone();
    return value_;
  }
  if (value_.dtype() != delta.dtype() || value_.shape() != delta.shape()) {
    return InvalidArgument("variable '" + name_ + "' accumulate mismatch: " +
                           value_.shape().ToString() + " vs " +
                           delta.shape().ToString());
  }
  if (value_.is_meta() || delta.is_meta()) {
    // Simulation mode: the value is unchanged metadata.
    return value_;
  }
  // In-place add into a private clone (readers hold shallow snapshots).
  Tensor next = value_.Clone();
  const int64_t n = next.num_elements();
  switch (next.dtype()) {
    case DType::kF32: {
      auto* d = next.mutable_data<float>();
      const auto s = delta.data<float>();
      for (int64_t i = 0; i < n; ++i) d[i] += s[static_cast<size_t>(i)];
      break;
    }
    case DType::kF64: {
      auto* d = next.mutable_data<double>();
      const auto s = delta.data<double>();
      for (int64_t i = 0; i < n; ++i) d[i] += s[static_cast<size_t>(i)];
      break;
    }
    case DType::kC128: {
      auto* d = next.mutable_data<std::complex<double>>();
      const auto s = delta.data<std::complex<double>>();
      for (int64_t i = 0; i < n; ++i) d[i] += s[static_cast<size_t>(i)];
      break;
    }
    case DType::kI64: {
      auto* d = next.mutable_data<int64_t>();
      const auto s = delta.data<int64_t>();
      for (int64_t i = 0; i < n; ++i) d[i] += s[static_cast<size_t>(i)];
      break;
    }
    default:
      return Unimplemented("Accumulate for dtype " +
                           std::string(DTypeName(next.dtype())));
  }
  value_ = std::move(next);
  return value_;
}

Result<FIFOQueue*> ResourceMgr::LookupOrCreateQueue(const std::string& name,
                                                    int64_t capacity) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = queues_.find(name);
  if (it != queues_.end()) {
    if (capacity != 0 && it->second->capacity() != 0 &&
        it->second->capacity() != capacity) {
      return InvalidArgument("queue '" + name + "' exists with capacity " +
                             std::to_string(it->second->capacity()) +
                             ", requested " + std::to_string(capacity));
    }
    return it->second.get();
  }
  auto q = std::make_unique<FIFOQueue>(name, capacity);
  FIFOQueue* raw = q.get();
  queues_.emplace(name, std::move(q));
  return raw;
}

Variable* ResourceMgr::LookupOrCreateVariable(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = variables_.find(name);
  if (it != variables_.end()) return it->second.get();
  auto v = std::make_unique<Variable>(name);
  Variable* raw = v.get();
  variables_.emplace(name, std::move(v));
  return raw;
}

std::map<std::string, Tensor> ResourceMgr::VariableSnapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, Tensor> snap;
  for (const auto& [name, var] : variables_) {
    if (var->initialized()) {
      auto r = var->Read();
      if (r.ok()) snap.emplace(name, *r);
    }
  }
  return snap;
}

void ResourceMgr::RestoreVariables(const std::map<std::string, Tensor>& vars) {
  for (const auto& [name, tensor] : vars) {
    LookupOrCreateVariable(name)->Write(tensor);
  }
}

void ResourceMgr::CloseAllQueues() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, q] : queues_) q->Close();
}

void ResourceMgr::CancelAllQueueWaiters(Status status) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, q] : queues_) q->CancelWaiters(status);
}

}  // namespace tfhpc
