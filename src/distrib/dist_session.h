// DistributedSession: the client half of TensorFlow's distributed
// execution. Takes one graph with nodes placed on multiple tasks,
// partitions it (distrib/partition.h), ships each partition to its server
// once, and on every Run drives the involved partitions concurrently —
// cross-task tensors flow through the rendezvous _Send/_Recv pairs the
// partitioner inserted. Feeds and fetches are routed to the owning
// partition automatically.
//
// Compile-once, pruned steps: each (feed names, fetches) signature is
// compiled into a step plan — the fetch closure over the client graph, cut
// at fed nodes, split per partition. A partition's targets are its closure
// nodes plus the _Send nodes whose consumers (on other tasks) are in the
// closure and not fed; the consuming side's own closure pulls in the
// matching _Recv, so send/recv pairs stay matched under pruning. Partitions
// with no closure work are skipped entirely (no RPC). The plan is
// registered with each involved worker once (RegisterStep -> step handle);
// subsequent Runs of the same signature ship only the handle plus feed
// tensors, and the worker executes its cached Executable. Plans and handles
// are invalidated whenever partitions are rebuilt/re-shipped (eviction,
// shrink); a worker that lost its handle (restart, registry eviction)
// answers kNotFound and the client re-registers transparently.
//
// Fault tolerance, two levels:
//
//  * Step-level (PR 1): Run re-attempts a step that failed with a transient
//    fault. Recovery unwinds in-flight _Recvs on every task (AbortStep),
//    returns the rendezvous to a clean state (ResetStep), optionally
//    restores variables from a pre-step snapshot, and re-runs — up to a
//    configurable budget.
//
//  * Job-level (PR 2): when a HealthMonitor's lease protocol declares a
//    worker DEAD — fail-stop crash or a hang caught by the stuck-step
//    watchdog — the session evicts it: fences the address
//    (InProcessRouter::Kill), rebuilds the ClusterSpec (a spare assumes the
//    failed slot, or the cluster shrinks and the dead task's nodes are
//    re-placed on a survivor), re-partitions and diff-ships the graph,
//    restores all tasks from the newest durable checkpoint
//    (io::CheckpointManager), and resumes the step loop. A FaultReport
//    records per-worker attribution (verdict, successor, detection and
//    recovery latency) and the run's MTTR.
#pragma once

#include <memory>
#include <mutex>
#include <set>

#include "distrib/client.h"
#include "distrib/health.h"
#include "distrib/partition.h"
#include "io/checkpoint.h"
#include "optimizer/optimizer.h"

namespace tfhpc::distrib {

// Graph-level options for DistributedSession::Create. Both knobs survive
// job-level recovery: EvictAndRebuild re-partitions with the same options.
struct DistSessionOptions {
  // Run the optimizer pipeline (src/optimizer) over the client graph before
  // partitioning, in whole-graph mode: every terminal and stateful node is
  // a root, so no work is pruned. The rewritten graph is re-verified; a
  // pass bug fails Create with kInternal instead of shipping a miscompiled
  // graph.
  optimizer::OptimizerLevel optimizer_level = optimizer::OptimizerLevel::kOff;
  // Node names clients will later feed or fetch by name. The optimizer
  // never merges or fuses these away (fetching a name CSE removed would
  // otherwise fail with NotFound at Run time).
  std::vector<std::string> preserve_nodes;
  // Merge same-(source, destination, consumer-set) data sends into packed
  // single-RPC transfers (see PartitionOptions::coalesce_sends).
  bool coalesce_sends = false;
};

// Knobs for fault-tolerant Run. The defaults reproduce the historical
// fail-fast behaviour (one attempt, no RPC retries, no checkpointing, no
// liveness-driven eviction).
struct StepRecoveryOptions {
  // Total step attempts (1 = no step-level recovery).
  int max_step_attempts = 1;
  // Retry/deadline policy applied to every RPC the step issues (RunStep,
  // plus the servers' rendezvous sends are governed by ServerDef).
  RetryPolicy rpc_retry = RetryPolicy::NoRetry();
  // Per-attempt step deadline, 0 = none. Each attempt arms a fresh
  // CancellationToken with now + step_timeout_ms; the absolute deadline
  // rides every RPC the attempt issues (workers refuse already-expired
  // steps, bound their rendezvous/queue waits by it and check it at node
  // dispatch), and each RPC's retry budget is clamped to the *remaining*
  // time. Distinct from rpc_retry.deadline_ms, which re-arms per call:
  // this budget travels with the step.
  int64_t step_timeout_ms = 0;
  // When non-empty: before the first attempt all task variables are
  // snapshotted (VarSnapshot per task) into this checkpoint file; before
  // every re-attempt they are restored from it, so a step that half-applied
  // variable updates re-runs from consistent state. Keys are
  // "<task addr>|<var name>" — names may repeat across tasks.
  std::string checkpoint_path;

  // ---- job-level recovery (liveness-driven) --------------------------------
  // Lease verdicts for the watchdog and for eviction decisions. Without a
  // monitor, failed workers are only retried, never evicted.
  HealthMonitor* health = nullptr;
  // Durable checkpoint source/target. Periodic saves feed it; job-level
  // recovery restores all tasks from its newest restorable version.
  io::CheckpointManager* checkpoints = nullptr;
  // Save a checkpoint (async) every N successful steps; 0 disables.
  int checkpoint_every_n_steps = 0;
  // Hot-standby addresses, consumed in order. Each spare must already be a
  // Server registered on the router and provisioned for the job/task slot
  // it may assume (its devices resolve that slot's placements).
  std::vector<std::string> spare_addrs;
  // With no spare left: tombstone the dead slot and re-place its nodes on a
  // surviving task of the same job (shrink). Indices do not shift.
  bool allow_shrink = false;
  // Stuck-step watchdog: when a partition has not finished after this long,
  // consult `health` — a DEAD laggard is fenced (its blocked RPCs abort), a
  // merely-slow ALIVE one is left to finish. 0 disables the watchdog.
  int64_t stuck_step_timeout_ms = 0;
  int64_t watchdog_poll_ms = 10;
  // After a partition fails, how long to wait for the monitor to confirm a
  // DEAD verdict before treating the failure as transient (step retry).
  int64_t dead_verdict_wait_ms = 1000;
};

// One evicted worker: who, why, who took over, how long detection and
// recovery took.
struct WorkerFaultRecord {
  std::string addr;
  std::string verdict;      // "fail-stop" | "hung" | "lease-expired"
  std::string successor;    // spare or adoptive task addr; "" if none
  bool shrunk = false;      // true when the slot was tombstoned, not filled
  int64_t detect_ms = 0;    // step-failure (or step-start) to DEAD verdict
  int64_t recover_ms = 0;   // evict + rebuild + re-ship + restore

  std::string ToString() const;
};

// What happened to one fault-tolerant Run: which partition failed first,
// how much retrying it took, and how the step was (or wasn't) recovered.
struct FaultReport {
  int step_attempts = 0;      // attempts consumed (1 = clean first run)
  int64_t rpc_retries = 0;    // transport-level retries across all attempts
  bool checkpoint_saved = false;
  int variables_restored = 0;  // total vars restored across re-attempts
  bool recovered = false;      // true iff a re-attempt succeeded
  std::string failed_partition;  // task addr of the first failure (if any)
  Status first_error;            // root cause of the first failed attempt
  Status final_status;           // what Run returned

  // Job-level recovery attribution.
  std::vector<WorkerFaultRecord> worker_faults;
  int workers_evicted = 0;
  int64_t checkpoint_restored_version = 0;  // durable version used; 0 = none
  // Mean time to recover across this Run's eviction incidents
  // (detect_ms + recover_ms averaged); 0 when nothing was evicted.
  int64_t mttr_ms = 0;

  std::string ToString() const;
};

class DistributedSession {
 public:
  // Partitions `def` and extends every involved server's graph. The graph
  // nodes must carry device specs resolvable against `cluster` (merged with
  // `default_device`).
  static Result<std::unique_ptr<DistributedSession>> Create(
      InProcessRouter* router, const ClusterSpec& cluster,
      WireProtocol protocol, const wire::GraphDef& def,
      const DeviceName& default_device);

  // As above, plus graph-level options: optimizer pipeline before
  // partitioning and packed-send coalescing during it.
  static Result<std::unique_ptr<DistributedSession>> Create(
      InProcessRouter* router, const ClusterSpec& cluster,
      WireProtocol protocol, const wire::GraphDef& def,
      const DeviceName& default_device, const DistSessionOptions& options);

  // Runs one step across all partitions; returns fetched tensors in order.
  Result<std::vector<Tensor>> Run(const std::map<std::string, Tensor>& feeds,
                                  const std::vector<std::string>& fetches);

  // Fault-tolerant Run: same contract, plus step-level recovery and
  // (when `recovery.health` is set) job-level eviction/restore under
  // `recovery`. If `report` is non-null it is filled in either way.
  Result<std::vector<Tensor>> Run(const std::map<std::string, Tensor>& feeds,
                                  const std::vector<std::string>& fetches,
                                  const StepRecoveryOptions& recovery,
                                  FaultReport* report);

  // Snapshots every task's variables into `manager` now (synchronously).
  // Returns the version written. The step loop's periodic checkpoints use
  // the async path; this is for seeding and tests.
  Result<int64_t> SaveDurableCheckpoint(io::CheckpointManager* manager,
                                        const RetryPolicy& retry);

  int num_partitions() const { return static_cast<int>(partitions_.size()); }
  const ClusterSpec& cluster() const { return cluster_; }
  // Successful fault-tolerant steps completed (drives checkpoint cadence).
  int64_t steps_completed() const { return steps_completed_; }
  // Owning task of a node (tests / diagnostics).
  Result<std::string> TaskOf(const std::string& node_name) const;

  // ---- step-plan cache observability ---------------------------------------
  // Step plans compiled (cache misses); repeat signatures reuse a plan.
  int64_t plans_compiled() const { return plans_compiled_; }
  int64_t plan_cache_hits() const { return plan_cache_hits_; }
  // Per-partition static memory peaks recorded in this signature's step
  // plan: task addr -> static peak bytes (0 = unplannable partition).
  // Compiles and caches the plan on miss, same as Run would.
  Result<std::map<std::string, int64_t>> PartitionStaticPeaks(
      const std::map<std::string, Tensor>& feeds,
      const std::vector<std::string>& fetches);
  size_t plan_cache_size() const {
    std::lock_guard<std::mutex> lk(step_mu_);
    return step_cache_.size();
  }

 private:
  DistributedSession(InProcessRouter* router, WireProtocol protocol,
                     ClusterSpec cluster, wire::GraphDef def,
                     DeviceName default_device, DistSessionOptions options)
      : router_(router),
        protocol_(protocol),
        cluster_(std::move(cluster)),
        def_(std::move(def)),
        default_device_(default_device),
        options_(std::move(options)) {}

  struct Partition {
    std::string addr;
    std::vector<std::string> all_nodes;  // every node shipped to this task
  };

  // One compiled (feed names, fetches) signature: the per-partition share
  // of the pruned step, plus the step handles registered with the workers.
  // Only partitions with closure work appear — the rest see no RPC at all.
  struct CompiledStep {
    struct Part {
      std::string addr;
      std::vector<std::string> feed_keys;  // feed keys routed here
      std::vector<std::string> fetches;    // this partition's share
      std::vector<size_t> fetch_positions;  // into the global result
      std::vector<std::string> targets;  // closure nodes + active sends
      // Static peak bytes of this partition's share of the step (liveness
      // analysis + memory plan over the shipped partition graph, scoped to
      // this signature's feeds/fetches/targets). 0 when the partition graph
      // could not be planned (dynamic shapes, verification findings).
      int64_t static_peak_bytes = 0;
      uint64_t handle = 0;  // 0 = not registered yet (guarded by handles_mu)
    };
    std::vector<Part> parts;
    std::mutex handles_mu;  // parts run on concurrent threads
  };

  // Returns the cached plan for this signature, compiling on miss: fetch
  // closure over the client graph cut at fed nodes, split per partition
  // with active sends appended (see file comment).
  Result<std::shared_ptr<CompiledStep>> GetOrBuildStepPlan(
      const std::map<std::string, Tensor>& feeds,
      const std::vector<std::string>& fetches);

  // One step attempt across all partitions. On failure, fills
  // *failed_partition with the first failing task's address. When the
  // watchdog is armed (recovery.stuck_step_timeout_ms > 0 with a health
  // monitor), a DEAD laggard is fenced mid-step; *fenced_addr/*detect_ms
  // report it.
  Result<std::vector<Tensor>> RunOnce(
      const std::map<std::string, Tensor>& feeds,
      const std::vector<std::string>& fetches,
      const StepRecoveryOptions& recovery, int64_t* rpc_retries,
      std::string* failed_partition, std::string* fenced_addr,
      int64_t* fence_detect_ms);

  // Unwinds a failed step on every task: AbortStep (wake parked _Recvs),
  // then ResetStep (clean rendezvous). Errors from unreachable tasks are
  // ignored — a partitioned task is reset when it heals or re-fails fast.
  void AbortAndResetAllTasks();

  // Ships `parts` to the cluster: new nodes are ExtendGraph'd (per-address
  // diff against what was already shipped), partitions_/node_task_ are
  // rebuilt. Rejects a rebuild that would need to *modify* an
  // already-shipped node (only possible via shrink re-placement).
  Status ShipPartitions(const PartitionResult& parts,
                        const RetryPolicy& retry);

  // Evicts `dead_addr`: fence, rebuild the ClusterSpec (spare or shrink),
  // re-partition + diff-ship, update the health watch set. Fills
  // *record.successor/shrunk.
  Status EvictAndRebuild(const std::string& dead_addr,
                         const StepRecoveryOptions& recovery,
                         WorkerFaultRecord* record);

  // VarSnapshot every partition into "<addr>|<var>" keys.
  Result<std::map<std::string, Tensor>> SnapshotAllTasks(
      const RetryPolicy& retry, int64_t* rpc_retries);

  // Restores a "<addr>|<var>" snapshot to the (possibly remapped) owning
  // tasks; counts restored variables into `report`.
  void RestoreSnapshotMap(const std::map<std::string, Tensor>& snapshot,
                          const RetryPolicy& retry, FaultReport* report);

  // Applies addr_remap_ transitively (dead -> successor -> ...).
  std::string ResolveAddr(std::string addr) const;

  InProcessRouter* router_;
  WireProtocol protocol_;
  ClusterSpec cluster_;
  wire::GraphDef def_;          // current graph (devices rewritten on shrink)
  DeviceName default_device_;
  DistSessionOptions options_;  // partitioning options, reused on rebuilds
  std::vector<Partition> partitions_;
  std::map<std::string, std::string> node_task_;
  // Producer task -> its _Send nodes (for pruned step targeting).
  std::map<std::string, std::vector<SendDef>> send_defs_;
  // What each server has been sent, by node name — rebuilds ship diffs.
  std::map<std::string, std::map<std::string, wire::NodeDef>> shipped_;
  // Evicted address -> successor address (chains across evictions).
  std::map<std::string, std::string> addr_remap_;
  int64_t steps_completed_ = 0;

  // Signature-keyed cache of compiled step plans. Cleared whenever the
  // partitioning changes (ShipPartitions): node ownership, send sets and
  // worker-side handles are all stale after a rebuild.
  mutable std::mutex step_mu_;
  std::map<std::string, std::shared_ptr<CompiledStep>> step_cache_;
  int64_t plans_compiled_ = 0;
  int64_t plan_cache_hits_ = 0;
};

}  // namespace tfhpc::distrib
