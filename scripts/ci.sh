#!/usr/bin/env bash
# The full CI gate, runnable locally: configure + build + ctest (tier 1),
# then a ThreadSanitizer smoke over the concurrency-heavy distributed and
# recovery suites. Usage:
#
#   scripts/ci.sh           # tier-1 suite + TSan smoke
#   scripts/ci.sh --fast    # tier-1 suite only (skip the sanitizer rebuild)
#
# Builds into build/ (and build-tsan/ via scripts/sanitize.sh); both are
# incremental across runs.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==== tier 1: configure + build + ctest ===="
cmake -B "$repo/build" -S "$repo" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build "$repo/build" -j "$jobs"
(cd "$repo/build" && ctest --output-on-failure -j "$jobs")

# GraphCheck gate: lint the exported application graphs with the graphcheck
# CLI. The app graphs must come back clean (exit 0); the deliberately broken
# graph must be rejected (exit 2) — this pins the tool's exit-code contract.
echo "==== graphcheck: lint exported app graphs ===="
mkdir -p "$repo/build/graphs"
"$repo/build/examples/export_graphs" "$repo/build/graphs"
"$repo/build/tools/graphcheck" \
  "$repo/build/graphs/stream.graph" \
  "$repo/build/graphs/tiled_matmul.graph" \
  "$repo/build/graphs/cg.graph" \
  "$repo/build/graphs/fft.graph"
# Same graphs through the optimizer pipeline: every pass output must
# re-verify clean (an ERROR after optimization exits 2 = optimizer bug).
"$repo/build/tools/graphcheck" --optimize=aggressive \
  "$repo/build/graphs/stream.graph" \
  "$repo/build/graphs/tiled_matmul.graph" \
  "$repo/build/graphs/cg.graph" \
  "$repo/build/graphs/fft.graph"
rc=0
"$repo/build/tools/graphcheck" "$repo/build/graphs/broken.graph" || rc=$?
if [[ "$rc" != 2 ]]; then
  echo "graphcheck: expected exit 2 on broken.graph, got $rc" >&2
  exit 1
fi
echo "==== graphcheck: app graphs clean, broken graph rejected ===="

# Memory-planner gate: every app graph must produce a static memory plan
# (waterline report, exit 0 — GC019/GC020 advisories don't fail the gate),
# and an absurdly small budget must trip GC018 with exit 1 (valid graph
# that provably cannot fit).
echo "==== graphcheck --memory: static peak report on app graphs ===="
"$repo/build/tools/graphcheck" --memory \
  "$repo/build/graphs/stream.graph" \
  "$repo/build/graphs/tiled_matmul.graph" \
  "$repo/build/graphs/cg.graph" \
  "$repo/build/graphs/fft.graph" >/dev/null
rc=0
"$repo/build/tools/graphcheck" --memory=1024 \
  "$repo/build/graphs/stream.graph" >/dev/null || rc=$?
if [[ "$rc" != 1 ]]; then
  echo "graphcheck: expected exit 1 (GC018) on 1 KiB budget, got $rc" >&2
  exit 1
fi
echo "==== graphcheck --memory: plans computed, GC018 budget gate holds ===="

# Serving smoke: a short closed-loop multi-client run against the admission
# layer with chaos faults in the third phase. The binary itself asserts zero
# hangs (exits 2 on a stuck client) and we bound the success-path p99 to a
# sanity ceiling — overload must degrade to fast errors, not slow timeouts.
echo "==== serving smoke: load generator under saturation + faults ===="
(cd "$repo/build" && \
  ./bench/serving_load --clients 16 --duration-ms 500 --max-p99-ms 5000)
echo "==== serving smoke: zero hangs, p99 within bound ===="

# Optimizer ablation smoke: CG/FFT/elementwise-chain at off/basic/aggressive
# (reduced sizes). The binary asserts the node-count reduction floor on the
# chain graph and numeric agreement across levels, and writes
# BENCH_optimizer.json.
echo "==== optimizer ablation smoke ===="
(cd "$repo/build" && ./bench/ablation_optimizer --smoke)
echo "==== optimizer ablation: levels agree, reduction floor met ===="

# GEMM ablation smoke: packed register-tiled kernel vs the pre-PR i-k-j
# loop at small sizes. The binary gates the packed kernel's numerics
# against a naive triple-loop reference (exit 2 on divergence) and writes
# BENCH_gemm.json; the 2x speedup floor is asserted only in full mode.
echo "==== gemm ablation smoke ===="
(cd "$repo/build" && ./bench/ablation_gemm --smoke)
echo "==== gemm ablation: packed kernel matches naive reference ===="

# Memory-planner ablation smoke: app step graphs with planning on/off at
# reduced sizes. The binary asserts bit-identical fetches across modes,
# static peak >= measured peak wherever a plan exists, and an allocator-
# call reduction on at least one graph; writes BENCH_memplan.json.
echo "==== memplan ablation smoke ===="
(cd "$repo/build" && ./bench/ablation_memplan --smoke)
echo "==== memplan ablation: bit-identical, bounds sound, allocs reduced ===="

if [[ "$fast" == 1 ]]; then
  echo "==== ci: tier 1 OK (sanitizer smoke skipped) ===="
  exit 0
fi

# TSan over the suites that exercise cross-thread step execution: the
# executable cache under concurrent Runs, the distributed step path, the
# pooled allocator under concurrent alloc/free (including injected allocator
# faults, the Oom* suites), fault/liveness recovery, and the serving layer
# (admission control, token cancellation, concurrent Session::Run over one
# shared cached Executable).
echo "==== tier 2: ThreadSanitizer smoke ===="
"$repo/scripts/sanitize.sh" thread \
  'ExecutableCache|DistSession|DistStep|FaultTolerance|StepRecovery|JobRecovery|Liveness|Rendezvous|BufferPool|Serving|CancellationToken|Oom|Optimizer|Fused|Coalesce'

# ASan over the zero-copy data path: pooled buffer recycling, payload views
# holding buffer references across transport/server boundaries, in-place
# kernel forwarding — exactly the code where a lifetime bug would be a
# use-after-free rather than a test failure. The full-suite sweep stays in
# the nightly `scripts/sanitize.sh both`.
echo "==== tier 3: AddressSanitizer smoke ===="
"$repo/scripts/sanitize.sh" address \
  'BufferPool|BufferForward|TensorBuffer|Transport|ServerTest|Checkpoint|WireTensor|Oom|Fused|Coalesce'

# OOM-injection smoke: the multi-client distributed workload under an
# injected allocator fault schedule, on the instrumented build. The binary
# asserts the robustness contract itself (zero hangs, every failure a clean
# transient kResourceExhausted, process budget back to baseline) and ASan's
# leak checker asserts that an unwound OOM step released every allocation.
echo "==== tier 3b: OOM-injection smoke (ablation_oom under ASan) ===="
(cd "$repo/build-asan" && \
  ASAN_OPTIONS="detect_leaks=1 abort_on_error=1" ./bench/ablation_oom)
echo "==== OOM smoke: contract held, zero leaks ===="

# UBSan over the numeric kernels and the static-analysis layer: shape
# arithmetic, wire varint decoding and kernel index math are where a signed
# overflow or misaligned access would hide.
echo "==== tier 4: UndefinedBehaviorSanitizer smoke ===="
"$repo/scripts/sanitize.sh" undefined \
  'Kernels|ArrayKernels|GraphCheck|ShapeInference|Presize|Wire|CoreTest|Optimizer|Fused'

# clang-tidy (checks pinned in .clang-tidy, including bugprone-* and
# concurrency-*) over the analysis, optimizer and runtime subsystems and
# the CLI; the container may not ship clang-tidy, so skip-if-absent.
echo "==== tier 5: clang-tidy ===="
if command -v clang-tidy >/dev/null 2>&1; then
  clang-tidy -p "$repo/build" --quiet \
    "$repo"/src/analysis/*.cc "$repo"/src/optimizer/*.cc \
    "$repo"/src/runtime/*.cc \
    "$repo"/tools/graphcheck.cc
  echo "==== clang-tidy: clean ===="
else
  echo "==== clang-tidy not installed; skipping lint leg ===="
fi

# Clang thread-safety analysis (warnings as errors) over the annotated
# mutex holders: BufferPool / AllocFaultInjector, the Session executable
# cache, and the ServingController admission queue (core/
# thread_annotations.h). gcc has no -Wthread-safety, so the leg runs only
# when a clang++ is available; -fsyntax-only keeps it a pure analysis pass.
echo "==== tier 6: clang -Wthread-safety ===="
if command -v clang++ >/dev/null 2>&1; then
  clang++ -std=c++20 -fsyntax-only -I "$repo/src" \
    -Wthread-safety -Werror=thread-safety-analysis \
    "$repo/src/core/buffer.cc" \
    "$repo/src/runtime/serving.cc" \
    "$repo/src/runtime/session.cc"
  echo "==== thread-safety: clean ===="
else
  echo "==== clang++ not installed; skipping thread-safety leg ===="
fi

echo "==== ci: all gates passed ===="
