// Ablation: retry/backoff overhead vs injected fault rate, across the three
// wire protocols. A PS task hosts an accumulator variable; a client pushes
// STREAM-style assign_adds under a seeded chaos schedule (request drops,
// response drops, duplicates, corruption) with an aggressive retry policy.
// Correctness is asserted every row: the final accumulator value must equal
// the fault-free sum (exactly-once via server-side request dedup), so the
// numbers measure the *cost* of fault tolerance, never silent data loss.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/tensor.h"
#include "distrib/client.h"
#include "distrib/server.h"

using namespace tfhpc;           // NOLINT
using namespace tfhpc::distrib;  // NOLINT

namespace {

constexpr int kPushes = 400;

struct Row {
  double fault_rate;
  const char* proto;
  double ms_per_push;
  int64_t retries;
  int64_t faults;
  int64_t dedup_hits;
  bool exact;
};

Row RunOnce(WireProtocol proto, double fault_rate, uint64_t seed) {
  wire::ClusterDef def;
  wire::JobDef ps_job;
  ps_job.name = "ps";
  ps_job.task_addrs = {"ab-ps:1"};
  def.jobs = {ps_job};
  auto spec = ClusterSpec::Create(def).value();

  InProcessRouter router;
  auto server = Server::Create({spec, "ps", 0, 0}, &router).value();

  if (fault_rate > 0) {
    ChaosConfig chaos;
    chaos.seed = seed;
    // Split the aggregate rate over the fault kinds the retry path must
    // absorb; delays are excluded so rows measure retry cost, not sleep.
    chaos.drop_request_rate = fault_rate * 0.4;
    chaos.drop_response_rate = fault_rate * 0.3;
    chaos.duplicate_rate = fault_rate * 0.2;
    chaos.corrupt_rate = fault_rate * 0.1;
    router.EnableChaos(chaos);
  }

  RemoteTask client(&router, "ab-ps:1", proto, RetryPolicy::Aggressive(60000));
  const Tensor delta = Tensor::Scalar(1.0);

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kPushes; ++i) {
    Status st = client.VarAssignAdd("acc", delta);
    if (!st.ok()) {
      std::printf("push %d failed: %s\n", i, st.ToString().c_str());
      break;
    }
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  router.DisableChaos();

  Row row;
  row.fault_rate = fault_rate;
  row.proto = WireProtocolName(proto);
  row.ms_per_push = ms / kPushes;
  row.retries = client.retries();
  row.faults = router.stats(proto).total_faults();
  row.dedup_hits = server->dedup_hits();
  auto value = client.VarRead("acc");
  row.exact =
      value.ok() && value->scalar<double>() == static_cast<double>(kPushes);
  return row;
}

}  // namespace

int main() {
  bench::Header("ablation: retry/backoff overhead vs fault rate",
                "fault-tolerance layer (chaos transport + RetryPolicy + "
                "request dedup); exactly-once checked per row");
  std::printf("%-6s %-6s %12s %9s %8s %11s %7s\n", "fault", "proto",
              "ms/push", "retries", "faults", "dedup_hits", "exact");
  bench::Rule();
  for (double rate : {0.0, 0.05, 0.10, 0.20, 0.40}) {
    for (WireProtocol proto :
         {WireProtocol::kGrpc, WireProtocol::kMpi, WireProtocol::kRdma}) {
      Row row = RunOnce(proto, rate,
                        /*seed=*/0xfa17ull + static_cast<uint64_t>(rate * 1000));
      std::printf("%-6.2f %-6s %12.4f %9lld %8lld %11lld %7s\n",
                  row.fault_rate, row.proto, row.ms_per_push,
                  static_cast<long long>(row.retries),
                  static_cast<long long>(row.faults),
                  static_cast<long long>(row.dedup_hits),
                  row.exact ? "yes" : "NO!");
    }
  }
  bench::Rule();
  std::printf("retry policy: aggressive (1ms initial backoff, x2 to 16ms, "
              "25%% jitter, 60s deadline)\n");
  return 0;
}
