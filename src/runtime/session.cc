#include "runtime/session.h"

#include <algorithm>
#include <cstdio>

#include "analysis/verifier.h"
#include "graph/ops.h"

namespace tfhpc {

std::string RunSignature::Key() const {
  // '\x1f' (unit separator) between elements, '\x1e' (record separator)
  // between the three lists; neither can appear in a node name.
  std::string key;
  for (const auto& f : feeds) {
    key += f;
    key += '\x1f';
  }
  key += '\x1e';
  for (const auto& f : fetches) {
    key += f;
    key += '\x1f';
  }
  key += '\x1e';
  for (const auto& t : targets) {
    key += t;
    key += '\x1f';
  }
  return key;
}

Session::Session(Graph* graph, DeviceMgr* devices, ResourceMgr* resources,
                 DeviceName default_device, SessionOptions options)
    : graph_(graph),
      executor_(graph, devices, resources, std::move(default_device)),
      options_(options) {
  if (options_.alloc_faults.enabled()) {
    AllocFaultInjector::Global().Install(options_.alloc_faults);
  }
}

Result<std::shared_ptr<const Executable>> Session::Prepare(
    const std::vector<std::string>& feed_keys,
    const std::vector<std::string>& fetches,
    const std::vector<std::string>& targets) {
  // Feed *names* are a set, not a sequence: normalize so callers that pass
  // them in different orders share one cache entry.
  RunSignature sig{feed_keys, fetches, targets};
  std::sort(sig.feeds.begin(), sig.feeds.end());
  const std::string key = sig.Key();

  {
    MutexLock lk(cache_mu_);
    if (max_cached_ > 0) {
      auto it = cache_.find(key);
      if (it != cache_.end() &&
          !it->second.executable->stale(*graph_)) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second.executable;
      }
    }
  }

  // Miss (or stale): compile outside the cache lock — compiles can be slow
  // and concurrent Runs with other signatures must not serialize on them.
  cache_misses_.fetch_add(1, std::memory_order_relaxed);

  // GraphCheck: static verification + shape inference for this signature's
  // closure. Strict mode fails the compile on ERROR findings; warn mode
  // prints them. Either way, fully-known shape annotations feed Compile so
  // the executor can pre-size output buffers.
  StaticShapeMap static_shapes;
  auto collect_shapes = [&static_shapes](
                            const analysis::GraphAnalysis& analysis) {
    for (const auto& [name, slots] : analysis.annotations) {
      std::vector<std::pair<DType, Shape>> known;
      known.reserve(slots.size());
      bool all_known = !slots.empty();
      for (const auto& t : slots) {
        if (!t.fully_known()) {
          all_known = false;
          break;
        }
        known.emplace_back(t.dtype, t.shape.ToShape());
      }
      if (all_known) static_shapes.emplace(name, std::move(known));
    }
  };

  analysis::AnalysisOptions check_opts;
  check_opts.feeds = sig.feeds;
  check_opts.fetches = fetches;
  check_opts.targets = targets;

  // Static memory planning over whichever GraphDef actually compiles (the
  // session graph, or the optimizer's rewrite): liveness intervals + arena
  // plan + memory lints. GC018 (static peak over the session's step budget)
  // is an ERROR — strict mode rejects here, before any kernel or allocation
  // of the step ever runs. The plan is handed to Compile, which bakes arena
  // offsets into the Executable.
  std::unique_ptr<analysis::MemoryPlan> plan;
  auto build_plan = [&](const wire::GraphDef& gdef,
                        const analysis::GraphAnalysis& ga) -> Status {
    if (!options_.memory_planning || ga.has_errors()) return Status::OK();
    auto live = analysis::LivenessAnalysis::Compute(gdef, check_opts,
                                                    ga.annotations);
    if (!live.ok()) return Status::OK();  // structural issues: already linted
    auto planned = analysis::MemoryPlan::Plan(*live);
    if (!planned.ok()) return Status::OK();
    std::vector<analysis::Diagnostic> lints = analysis::LintMemory(
        gdef, *live, *planned, options_.step_memory_limit_bytes);
    if (options_.graph_check != GraphCheckMode::kOff) {
      if (analysis::HasErrors(lints) &&
          options_.graph_check == GraphCheckMode::kStrict) {
        std::vector<analysis::Diagnostic> errors;
        for (const auto& d : lints) {
          if (d.severity == analysis::Severity::kError) errors.push_back(d);
        }
        return InvalidArgument("graphcheck rejected the graph:\n" +
                               analysis::FormatDiagnostics(errors));
      }
      for (const auto& d : lints) {
        if (d.severity >= analysis::Severity::kWarning) {
          std::fprintf(stderr, "graphcheck: %s\n", d.ToString().c_str());
        }
      }
    }
    plan = std::make_unique<analysis::MemoryPlan>(std::move(*planned));
    return Status::OK();
  };

  const bool optimize =
      options_.optimizer_level != optimizer::OptimizerLevel::kOff;
  std::shared_ptr<const Executable> exe;
  if (optimize || options_.graph_check != GraphCheckMode::kOff) {
    // Snapshot version before serializing: a concurrent mutation at worst
    // stamps the plan older than the graph, which only forces a recompile.
    const int64_t version = graph_->version();
    const wire::GraphDef def = graph_->ToGraphDef();
    analysis::GraphAnalysis analysis = analysis::VerifyGraph(def, check_opts);
    if (options_.graph_check != GraphCheckMode::kOff) {
      if (analysis.has_errors() &&
          options_.graph_check == GraphCheckMode::kStrict) {
        std::vector<analysis::Diagnostic> errors;
        for (const auto& d : analysis.diagnostics) {
          if (d.severity == analysis::Severity::kError) errors.push_back(d);
        }
        return InvalidArgument("graphcheck rejected the graph:\n" +
                               analysis::FormatDiagnostics(errors));
      }
      for (const auto& d : analysis.diagnostics) {
        if (d.severity >= analysis::Severity::kWarning) {
          std::fprintf(stderr, "graphcheck: %s\n", d.ToString().c_str());
        }
      }
    }

    // Optimize only graphs the verifier accepted: pass preconditions assume
    // a well-formed input, and the post-pass re-verification below must be
    // able to blame the optimizer, not pre-existing breakage.
    if (optimize && !analysis.has_errors()) {
      optimizer::PipelineOptions popts;
      popts.level = options_.optimizer_level;
      popts.feeds = sig.feeds;
      popts.fetches = fetches;
      popts.targets = targets;
      TFHPC_ASSIGN_OR_RETURN(optimizer::PipelineResult rewritten,
                             optimizer::RunPassPipeline(def, popts));
      // The regression oracle: every pipeline output must re-verify. A
      // failure here is an optimizer bug and fails the compile — it must
      // never execute as a silently wrong plan.
      analysis::GraphAnalysis post =
          analysis::VerifyGraph(rewritten.graph, check_opts);
      if (post.has_errors()) {
        std::vector<analysis::Diagnostic> errors;
        for (const auto& d : post.diagnostics) {
          if (d.severity == analysis::Severity::kError) errors.push_back(d);
        }
        return Internal(
            std::string("optimizer produced an invalid graph (level ") +
            optimizer::OptimizerLevelName(options_.optimizer_level) + "):\n" +
            analysis::FormatDiagnostics(errors));
      }
      collect_shapes(post);
      TFHPC_RETURN_IF_ERROR(build_plan(rewritten.graph, post));
      TFHPC_ASSIGN_OR_RETURN(std::unique_ptr<Graph> rewritten_graph,
                             Graph::FromGraphDef(rewritten.graph));
      TFHPC_ASSIGN_OR_RETURN(
          exe, executor_.CompileGraph(
                   std::shared_ptr<const Graph>(std::move(rewritten_graph)),
                   version, sig.feeds, fetches, targets,
                   static_shapes.empty() ? nullptr : &static_shapes,
                   plan.get()));
    } else {
      collect_shapes(analysis);
      TFHPC_RETURN_IF_ERROR(build_plan(def, analysis));
    }
  }
  if (exe == nullptr) {
    TFHPC_ASSIGN_OR_RETURN(
        exe, executor_.Compile(sig.feeds, fetches, targets,
                               static_shapes.empty() ? nullptr
                                                     : &static_shapes,
                               plan.get()));
  }

  MutexLock lk(cache_mu_);
  if (max_cached_ == 0) return exe;
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // Either a stale entry we are replacing, or a concurrent compile won
    // the race; the freshest graph version wins.
    if (it->second.executable->graph_version() >= exe->graph_version()) {
      return it->second.executable;
    }
    it->second.executable = exe;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return exe;
  }
  while (cache_.size() >= max_cached_ && !lru_.empty()) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  cache_.emplace(key, CacheEntry{exe, lru_.begin()});
  return exe;
}

Result<std::vector<Tensor>> Session::RunPrepared(
    const Executable& executable, const std::map<std::string, Tensor>& feeds,
    const RunOptions& options, RunMetadata* metadata) {
  RunOptions effective = options;
  if (effective.step_memory_limit_bytes == 0) {
    effective.step_memory_limit_bytes = options_.step_memory_limit_bytes;
  }
  auto r = executor_.Execute(executable, feeds, effective, metadata);
  if (r.ok()) {
    nodes_executed_.fetch_add(executable.num_scheduled_nodes(),
                              std::memory_order_relaxed);
  }
  return r;
}

Result<std::vector<Tensor>> Session::Run(
    const std::map<std::string, Tensor>& feeds,
    const std::vector<std::string>& fetches,
    const std::vector<std::string>& targets, const RunOptions& options,
    RunMetadata* metadata) {
  std::vector<std::string> feed_keys;
  feed_keys.reserve(feeds.size());
  for (const auto& [key, tensor] : feeds) feed_keys.push_back(key);
  TFHPC_ASSIGN_OR_RETURN(std::shared_ptr<const Executable> exe,
                         Prepare(feed_keys, fetches, targets));
  return RunPrepared(*exe, feeds, options, metadata);
}

Result<std::string> Session::DevicePlacement(const std::string& node_name) {
  const Node* n = graph_->FindNode(node_name);
  if (n == nullptr) return NotFound("node '" + node_name + "' not found");
  TFHPC_ASSIGN_OR_RETURN(Device * d, executor_.PlaceNode(*n));
  return d->name_string();
}

size_t Session::executable_cache_size() const {
  MutexLock lk(cache_mu_);
  return cache_.size();
}

void Session::set_max_cached_executables(size_t n) {
  MutexLock lk(cache_mu_);
  max_cached_ = n;
  while (cache_.size() > max_cached_ && !lru_.empty()) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
}

LocalRuntime::LocalRuntime(int num_gpus, ComputeModel gpu_model)
    : devices_(DeviceMgr::CreateLocal("localhost", 0, num_gpus,
                                      std::move(gpu_model))) {}

std::unique_ptr<Session> LocalRuntime::NewSession(SessionOptions options) {
  DeviceName default_device;
  default_device.job = "localhost";
  default_device.task = 0;
  return std::make_unique<Session>(&graph_, devices_.get(), &resources_,
                                   default_device, options);
}

}  // namespace tfhpc
