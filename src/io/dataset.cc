#include "io/dataset.h"

namespace tfhpc::io {

TensorPrefetcher::TensorPrefetcher(Producer producer, size_t buffer_size)
    : producer_(std::move(producer)),
      buffer_size_(buffer_size == 0 ? 1 : buffer_size),
      thread_([this] { Loop(); }) {}

TensorPrefetcher::~TensorPrefetcher() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    cancelled_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void TensorPrefetcher::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return cancelled_ || buffer_.size() < buffer_size_; });
      if (cancelled_) return;
    }
    // Produce outside the lock: loading a tile can be slow.
    std::optional<Tensor> item = producer_();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (cancelled_) return;
      if (!item.has_value()) {
        done_ = true;
        cv_.notify_all();
        return;
      }
      buffer_.push_back(std::move(*item));
    }
    cv_.notify_all();
  }
}

std::optional<Tensor> TensorPrefetcher::Next() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] { return !buffer_.empty() || done_ || cancelled_; });
  if (buffer_.empty()) return std::nullopt;
  Tensor t = std::move(buffer_.front());
  buffer_.pop_front();
  cv_.notify_all();  // wake producer
  return t;
}

}  // namespace tfhpc::io
