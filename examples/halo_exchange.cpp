// Halo exchange with rendezvous edges: the paper's §VIII notes that the
// parameter-server model "presents a challenge when developing HPC
// applications that are based on domain decomposition". This example shows
// the extension that addresses it: explicit _Send/_Recv tensor edges
// between two worker tasks, the mechanism TensorFlow itself uses at task
// boundaries. Each worker owns half of a 1-D heat-equation domain and
// exchanges one-cell halos with its neighbour every step.
//
//   ./halo_exchange [cells_per_worker] [steps]
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "distrib/client.h"
#include "distrib/server.h"
#include "graph/ops.h"

using namespace tfhpc;

namespace {

// One explicit Jacobi step on a worker's segment with halo cells attached:
// u'[i] = u[i] + alpha * (u[i-1] - 2 u[i] + u[i+1]).
Tensor JacobiStep(const Tensor& u, double left_halo, double right_halo,
                  double alpha) {
  const int64_t n = u.num_elements();
  Tensor next(DType::kF64, Shape{n});
  const auto s = u.data<double>();
  auto* d = next.mutable_data<double>();
  for (int64_t i = 0; i < n; ++i) {
    const double lo = i == 0 ? left_halo : s[static_cast<size_t>(i - 1)];
    const double hi =
        i == n - 1 ? right_halo : s[static_cast<size_t>(i + 1)];
    d[i] = s[static_cast<size_t>(i)] +
           alpha * (lo - 2 * s[static_cast<size_t>(i)] + hi);
  }
  return next;
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t cells = argc > 1 ? std::atoll(argv[1]) : 32;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 50;
  const double alpha = 0.25;

  // Two worker tasks, in-process.
  wire::ClusterDef def;
  wire::JobDef workers;
  workers.name = "worker";
  workers.task_addrs = {"halo-w0:1", "halo-w1:1"};
  def.jobs = {workers};
  auto spec = distrib::ClusterSpec::Create(def).value();
  distrib::InProcessRouter router;
  auto w0 = distrib::Server::Create({spec, "worker", 0, 1}, &router).value();
  auto w1 = distrib::Server::Create({spec, "worker", 1, 1}, &router).value();
  distrib::Server* servers[2] = {w0.get(), w1.get()};
  const char* peer_addr[2] = {"halo-w1:1", "halo-w0:1"};

  // Initial condition: a hot spike at the global centre (the boundary
  // between the two domains), so diffusion MUST cross the halo.
  std::vector<Tensor> segment(2);
  for (int w = 0; w < 2; ++w) {
    segment[static_cast<size_t>(w)] = Tensor(DType::kF64, Shape{cells});
  }
  segment[0].mutable_data<double>()[cells - 1] = 100.0;
  segment[1].mutable_data<double>()[0] = 100.0;

  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      distrib::Server* self = servers[w];
      // Per-worker graph: one _Send of my boundary cell to the peer and
      // one _Recv of theirs, keyed per direction.
      Scope s(&self->graph());
      auto boundary = ops::Placeholder(s, DType::kF64, Shape{}, "boundary");
      const std::string out_key = "halo_from_" + std::to_string(w);
      const std::string in_key = "halo_from_" + std::to_string(1 - w);
      auto send = ops::Send(s, boundary, out_key, peer_addr[w]);
      auto recv = ops::Recv(s, in_key);
      auto session = self->NewSession();

      Tensor& u = segment[static_cast<size_t>(w)];
      for (int step = 0; step < steps; ++step) {
        // My boundary cell facing the peer.
        const double mine =
            w == 0 ? u.data<double>()[static_cast<size_t>(cells - 1)]
                   : u.data<double>()[0];
        auto r = session->Run({{"boundary", Tensor::Scalar(mine)}},
                              {recv.name()}, {send.node->name()});
        TFHPC_CHECK(r.ok()) << r.status().ToString();
        const double theirs = (*r)[0].scalar<double>();
        // Outer edges are insulated (halo = own edge value).
        const double left =
            w == 0 ? u.data<double>()[0] : theirs;
        const double right =
            w == 0 ? theirs : u.data<double>()[static_cast<size_t>(cells - 1)];
        u = JacobiStep(u, left, right, alpha);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Conservation check: insulated domain keeps total heat constant.
  double total = 0;
  for (int w = 0; w < 2; ++w) {
    for (double v : segment[static_cast<size_t>(w)].data<double>()) total += v;
  }
  std::printf("after %d steps: total heat %.6f (expected 200)\n", steps,
              total);
  std::printf("w0 tail: %.3f %.3f | w1 head: %.3f %.3f  (smooth across the "
              "task boundary)\n",
              segment[0].data<double>()[static_cast<size_t>(cells - 2)],
              segment[0].data<double>()[static_cast<size_t>(cells - 1)],
              segment[1].data<double>()[0], segment[1].data<double>()[1]);
  const bool conserved = std::abs(total - 200.0) < 1e-9;
  const bool crossed =
      segment[0].data<double>()[static_cast<size_t>(cells - 1)] > 1.0;
  std::printf("%s\n", conserved && crossed ? "halo exchange OK" : "FAILED");
  return conserved && crossed ? 0 : 1;
}
